//go:build !race

// Allocation-regression pins for the HELLO round-trip. Excluded under
// the race detector, whose instrumentation changes allocation counts.
package devp2p

import (
	"testing"

	"repro/internal/enode"
	"repro/internal/rlp"
)

func TestHelloAllocs(t *testing.T) {
	hello := &Hello{
		Version:    Version,
		Name:       "Geth/v1.8.11-stable/linux-amd64/go1.10",
		Caps:       []Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
		ListenPort: 30303,
		ID:         enode.ID{1, 2, 3},
	}

	buf := make([]byte, 0, 256)
	enc := testing.AllocsPerRun(200, func() {
		out, err := rlp.EncodeAppend(buf, hello)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if enc > 0 {
		t.Errorf("hello encode: %v allocs/op, want 0 (EncodeAppend into sized scratch)", enc)
	}

	encoded, err := rlp.EncodeToBytes(hello)
	if err != nil {
		t.Fatal(err)
	}
	var dst Hello
	dec := testing.AllocsPerRun(200, func() {
		if err := rlp.DecodeBytes(encoded, &dst); err != nil {
			t.Fatal(err)
		}
	})
	// Four allocations, all owned by the decoded value: the Name
	// string, the Caps backing array, and the two Cap.Name strings.
	if dec > 4 {
		t.Errorf("hello decode: %v allocs/op, want <= 4", dec)
	}
}
