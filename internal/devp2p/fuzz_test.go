package devp2p

import (
	"testing"

	"repro/internal/rlp"
)

// oneMsgRW replays a single framed message, as if a peer sent
// exactly one thing and hung up.
type oneMsgRW struct {
	code    uint64
	payload []byte
	read    bool
}

func (rw *oneMsgRW) ReadMsg() (uint64, []byte, error) {
	if rw.read {
		panic("fuzz target read twice")
	}
	rw.read = true
	return rw.code, rw.payload, nil
}

func (rw *oneMsgRW) WriteMsg(code uint64, payload []byte) error { return nil }

// FuzzReadHello feeds arbitrary payloads through the HELLO parse
// path — the first untrusted message of every connection the crawler
// makes, millions of times per crawl. Invariants: no panic, oversized
// payloads always rejected, and an accepted HELLO re-encodes.
func FuzzReadHello(f *testing.F) {
	hello := &Hello{
		Version:    Version,
		Name:       "Geth/v1.8.11-stable/linux-amd64/go1.10",
		Caps:       []Cap{{"eth", 62}, {"eth", 63}},
		ListenPort: 30303,
	}
	enc, err := rlp.EncodeToBytes(hello)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(HelloMsg), enc)
	f.Add(uint64(HelloMsg), []byte{})
	f.Add(uint64(HelloMsg), []byte{0xC0})
	f.Add(uint64(HelloMsg), []byte{0xBF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint64(DiscMsg), []byte{0xC1, 0x04})
	f.Add(uint64(DiscMsg), []byte{0x04})
	f.Add(uint64(PingMsg), []byte{0xC0})

	f.Fuzz(func(t *testing.T, code uint64, payload []byte) {
		h, err := ReadHello(&oneMsgRW{code: code, payload: payload})
		if err != nil {
			return
		}
		if code != HelloMsg {
			t.Fatalf("non-hello code %#x yielded a hello", code)
		}
		if len(payload) > MaxHelloSize {
			t.Fatalf("oversized hello accepted: %d bytes", len(payload))
		}
		if _, err := rlp.EncodeToBytes(h); err != nil {
			t.Fatalf("accepted hello does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeDisconnect pins DecodeDisconnect's total behavior: any
// payload maps to SOME reason, never a panic — hostile peers love
// sending garbage right before closing.
func FuzzDecodeDisconnect(f *testing.F) {
	f.Add([]byte{})           // legacy empty disconnect
	f.Add([]byte{0x04})       // bare reason byte
	f.Add([]byte{0xC1, 0x04}) // canonical list form
	f.Add([]byte{0xC0})       // empty list
	f.Add([]byte{0xC2, 0x81, 0x10})
	f.Add([]byte{0xBF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		r := DecodeDisconnect(payload)
		// The reason must be render-able (String is a total function)
		// and classifiable by the taxonomy.
		_ = r.String()
		_ = DisconnectError{r}.Error()
	})
}
