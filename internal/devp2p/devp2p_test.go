package devp2p

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/enode"
	"repro/internal/rlp"
)

// pipeRW is an in-memory MsgReadWriter pair.
type pipeRW struct {
	in  chan msg
	out chan msg
}

type msg struct {
	code    uint64
	payload []byte
}

func newPipeRW() (*pipeRW, *pipeRW) {
	a := make(chan msg, 16)
	b := make(chan msg, 16)
	return &pipeRW{in: a, out: b}, &pipeRW{in: b, out: a}
}

func (p *pipeRW) ReadMsg() (uint64, []byte, error) {
	m, ok := <-p.in
	if !ok {
		return 0, nil, errors.New("closed")
	}
	return m.code, m.payload, nil
}

func (p *pipeRW) WriteMsg(code uint64, payload []byte) error {
	p.out <- msg{code, payload}
	return nil
}

func testHello(seed int64) *Hello {
	rng := rand.New(rand.NewSource(seed))
	return &Hello{
		Version:    Version,
		Name:       "Geth/v1.7.3-stable/linux-amd64/go1.9",
		Caps:       []Cap{{"eth", 62}, {"eth", 63}},
		ListenPort: 30303,
		ID:         enode.RandomID(rng),
	}
}

func TestHelloExchange(t *testing.T) {
	a, b := newPipeRW()
	ha, hb := testHello(1), testHello(2)

	done := make(chan error, 1)
	var theirsAtB *Hello
	go func() {
		var err error
		theirsAtB, err = ExchangeHello(b, hb)
		done <- err
	}()
	theirsAtA, err := ExchangeHello(a, ha)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if theirsAtA.Name != hb.Name || theirsAtA.ID != hb.ID {
		t.Errorf("A saw %+v", theirsAtA)
	}
	if theirsAtB.ListenPort != 30303 || len(theirsAtB.Caps) != 2 {
		t.Errorf("B saw %+v", theirsAtB)
	}
}

func TestHelloMetDisconnect(t *testing.T) {
	a, b := newPipeRW()
	go SendDisconnect(b, DiscTooManyPeers) //nolint:errcheck
	_, err := ReadHello(a)
	var de DisconnectError
	if !errors.As(err, &de) {
		t.Fatalf("got %v", err)
	}
	if de.Reason != DiscTooManyPeers {
		t.Errorf("reason %v", de.Reason)
	}
}

func TestReadHelloRejectsOtherMessage(t *testing.T) {
	a, b := newPipeRW()
	go b.WriteMsg(PingMsg, []byte{0xC0}) //nolint:errcheck
	if _, err := ReadHello(a); !errors.Is(err, ErrUnexpectedMessage) {
		t.Fatalf("got %v", err)
	}
}

func TestDecodeDisconnectForms(t *testing.T) {
	// List form.
	p1, _ := rlp.EncodeToBytes([]uint64{uint64(DiscUselessPeer)})
	if r := DecodeDisconnect(p1); r != DiscUselessPeer {
		t.Errorf("list form: %v", r)
	}
	// Bare integer form.
	p2, _ := rlp.EncodeToBytes(uint64(DiscSubprotocolError))
	if r := DecodeDisconnect(p2); r != DiscSubprotocolError {
		t.Errorf("bare form: %v", r)
	}
	// Empty.
	if r := DecodeDisconnect(nil); r != DiscRequested {
		t.Errorf("empty: %v", r)
	}
	// Garbage degrades to requested.
	if r := DecodeDisconnect([]byte{0xFF, 0xFF}); r != DiscRequested {
		t.Errorf("garbage: %v", r)
	}
}

func TestReasonStrings(t *testing.T) {
	if DiscTooManyPeers.String() != "Too many peers" {
		t.Error(DiscTooManyPeers.String())
	}
	if DiscSubprotocolError.String() != "Subprotocol error" {
		t.Error(DiscSubprotocolError.String())
	}
	if got := DisconnectReason(0x42).String(); got != "Unknown(0x42)" {
		t.Error(got)
	}
	if DiscTooManyPeers.Error() == "" {
		t.Error("empty error")
	}
}

func TestMatchCaps(t *testing.T) {
	ours := []Cap{{"eth", 62}, {"eth", 63}, {"shh", 2}, {"bzz", 1}}
	theirs := []Cap{{"eth", 63}, {"les", 2}, {"shh", 2}}
	lengths := map[string]uint64{"eth": 17, "shh": 300}
	got := MatchCaps(ours, theirs, lengths)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	// Alphabetical: eth before shh.
	if got[0].Name != "eth" || got[0].Version != 63 || got[0].Offset != BaseProtocolLength || got[0].Length != 17 {
		t.Errorf("eth: %+v", got[0])
	}
	if got[1].Name != "shh" || got[1].Offset != BaseProtocolLength+17 {
		t.Errorf("shh: %+v", got[1])
	}
}

func TestMatchCapsHighestVersion(t *testing.T) {
	ours := []Cap{{"eth", 62}, {"eth", 63}}
	theirs := []Cap{{"eth", 62}, {"eth", 63}}
	got := MatchCaps(ours, theirs, nil)
	if len(got) != 1 || got[0].Version != 63 {
		t.Fatalf("got %v", got)
	}
}

func TestMatchCapsNone(t *testing.T) {
	if got := MatchCaps([]Cap{{"eth", 63}}, []Cap{{"exp", 1}}, nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCapHelpers(t *testing.T) {
	caps := []Cap{{"eth", 62}, {"eth", 63}, {"les", 2}}
	if !HasCap(caps, "eth") || HasCap(caps, "bzz") {
		t.Error("HasCap wrong")
	}
	if CapVersion(caps, "eth") != 63 || CapVersion(caps, "pip") != 0 {
		t.Error("CapVersion wrong")
	}
	if (Cap{"eth", 63}).String() != "eth/63" {
		t.Error("Cap.String wrong")
	}
}

func TestPingPongHelpers(t *testing.T) {
	a, b := newPipeRW()
	if err := SendPing(a); err != nil {
		t.Fatal(err)
	}
	code, _, err := b.ReadMsg()
	if err != nil || code != PingMsg {
		t.Fatal(code, err)
	}
	if err := SendPong(b); err != nil {
		t.Fatal(err)
	}
	code, _, err = a.ReadMsg()
	if err != nil || code != PongMsg {
		t.Fatal(code, err)
	}
}

func TestHelloRLPForwardCompat(t *testing.T) {
	// A HELLO with extra fields (from a future client) must decode.
	type futureHello struct {
		Version    uint64
		Name       string
		Caps       []Cap
		ListenPort uint64
		ID         enode.ID
		Extra1     uint64
		Extra2     []byte
	}
	fh := futureHello{Version: 6, Name: "Future/v9", ListenPort: 1, ID: enode.RandomID(rand.New(rand.NewSource(3))), Extra1: 7, Extra2: []byte("x")}
	enc, err := rlp.EncodeToBytes(&fh)
	if err != nil {
		t.Fatal(err)
	}
	var h Hello
	if err := rlp.DecodeBytes(enc, &h); err != nil {
		t.Fatal(err)
	}
	if h.Name != "Future/v9" || len(h.Rest) != 2 {
		t.Errorf("got %+v", h)
	}
}
