// Package devp2p implements the DEVp2p application-session layer that
// runs on top of an RLPx connection (§2.2 of the paper).
//
// After the RLPx handshake, each side sends a HELLO message carrying
// its node ID, DEVp2p version, client name, supported subprotocol
// capabilities, and listening port. Subprotocol messages are then
// multiplexed above the base protocol using per-capability message
// code offsets. Idle connections exchange DEVp2p PING/PONG, and
// sessions end with a DISCONNECT that may carry one of the reason
// codes tabulated in the paper's Table 1.
package devp2p

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/enode"
	"repro/internal/rlp"
)

// Base protocol message codes.
const (
	HelloMsg uint64 = 0x00
	DiscMsg  uint64 = 0x01
	PingMsg  uint64 = 0x02
	PongMsg  uint64 = 0x03
	// BaseProtocolLength is the size of the reserved base message
	// space; subprotocol codes start here.
	BaseProtocolLength uint64 = 16
)

// Version is the DEVp2p base protocol version advertised in HELLO.
// Clients of the paper's era advertise 5, which implies snappy
// compression of message payloads after the HELLO exchange; the rlpx
// package implements it (Conn.SetSnappy) and both the crawler and
// ethnode enable it when negotiated.
const Version = 5

// MaxHelloSize bounds the encoded HELLO payload accepted from a peer.
// Real HELLOs are a few hundred bytes (client name, a handful of
// caps); a multi-kilobyte one is a hostile peer padding the message,
// and is rejected before the reflection-driven RLP decode walks it.
const MaxHelloSize = 4096

// MaxDisconnectSize bounds the DISCONNECT payload worth parsing; the
// legitimate encodings are at most a few bytes.
const MaxDisconnectSize = 64

// DisconnectReason is the reason code in a DISCONNECT message.
type DisconnectReason uint64

// The reason codes of Table 1.
const (
	DiscRequested           DisconnectReason = 0x00
	DiscNetworkError        DisconnectReason = 0x01
	DiscProtocolError       DisconnectReason = 0x02
	DiscUselessPeer         DisconnectReason = 0x03
	DiscTooManyPeers        DisconnectReason = 0x04
	DiscAlreadyConnected    DisconnectReason = 0x05
	DiscIncompatibleVersion DisconnectReason = 0x06
	DiscInvalidIdentity     DisconnectReason = 0x07
	DiscQuitting            DisconnectReason = 0x08
	DiscUnexpectedIdentity  DisconnectReason = 0x09
	DiscSelf                DisconnectReason = 0x0a
	DiscReadTimeout         DisconnectReason = 0x0b
	DiscSubprotocolError    DisconnectReason = 0x10
)

var reasonNames = map[DisconnectReason]string{
	DiscRequested:           "Disconnect requested",
	DiscNetworkError:        "Network error",
	DiscProtocolError:       "Breach of protocol",
	DiscUselessPeer:         "Useless peer",
	DiscTooManyPeers:        "Too many peers",
	DiscAlreadyConnected:    "Already connected",
	DiscIncompatibleVersion: "Incompatible P2P protocol version",
	DiscInvalidIdentity:     "Invalid node identity",
	DiscQuitting:            "Client quitting",
	DiscUnexpectedIdentity:  "Unexpected identity",
	DiscSelf:                "Connected to self",
	DiscReadTimeout:         "Read timeout",
	DiscSubprotocolError:    "Subprotocol error",
}

// String implements fmt.Stringer; unknown codes print numerically,
// mirroring how Parity treats codes beyond 0x0b as "Unknown" (§3).
func (r DisconnectReason) String() string {
	if s, ok := reasonNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Unknown(0x%02x)", uint64(r))
}

// Error makes a DisconnectReason usable as an error value.
func (r DisconnectReason) Error() string { return r.String() }

// Cap is one advertised capability: a subprotocol name and version.
type Cap struct {
	Name    string
	Version uint
}

// String renders the conventional name/version form, e.g. "eth/63".
func (c Cap) String() string { return fmt.Sprintf("%s/%d", c.Name, c.Version) }

// Hello is the DEVp2p handshake message.
type Hello struct {
	Version    uint64
	Name       string // client identifier, e.g. "Geth/v1.7.3-stable/linux-amd64/go1.9"
	Caps       []Cap
	ListenPort uint64
	ID         enode.ID
	// Rest absorbs additional fields from future versions.
	Rest []rlp.RawValue `rlp:"tail"`
}

// MsgReadWriter is the framed-message transport devp2p runs over;
// *rlpx.Conn implements it.
type MsgReadWriter interface {
	ReadMsg() (code uint64, payload []byte, err error)
	WriteMsg(code uint64, payload []byte) error
}

// ValueWriter is the optional fast path a transport may offer for
// sending RLP-encoded values: *rlpx.Conn encodes straight into its
// frame scratch, skipping the intermediate payload allocation.
type ValueWriter interface {
	WriteMsgValue(code uint64, v any) error
}

// WriteValue sends one message whose payload is the RLP encoding of
// v, using the transport's ValueWriter fast path when it has one.
func WriteValue(rw MsgReadWriter, code uint64, v any) error {
	if vw, ok := rw.(ValueWriter); ok {
		return vw.WriteMsgValue(code, v)
	}
	payload, err := rlp.EncodeToBytes(v)
	if err != nil {
		return err
	}
	return rw.WriteMsg(code, payload)
}

// Errors.
var (
	ErrUnexpectedMessage = errors.New("devp2p: unexpected message before hello")
	ErrNoCommonProtocol  = errors.New("devp2p: no matching subprotocols")
	ErrMsgTooBig         = errors.New("devp2p: message exceeds size limit")
)

// DisconnectError wraps the reason a peer gave for disconnecting.
type DisconnectError struct{ Reason DisconnectReason }

func (e DisconnectError) Error() string {
	return fmt.Sprintf("devp2p: peer disconnected: %s", e.Reason)
}

// SendHello writes our HELLO message.
func SendHello(rw MsgReadWriter, h *Hello) error {
	return WriteValue(rw, HelloMsg, h)
}

// ReadHello reads the peer's HELLO, tolerating a DISCONNECT in its
// place (returned as DisconnectError — the common "Too many peers"
// case the paper's scanner must classify).
func ReadHello(rw MsgReadWriter) (*Hello, error) {
	code, payload, err := rw.ReadMsg()
	if err != nil {
		return nil, err
	}
	switch code {
	case HelloMsg:
		if len(payload) > MaxHelloSize {
			return nil, fmt.Errorf("%w: hello is %d bytes (max %d)", ErrMsgTooBig, len(payload), MaxHelloSize)
		}
		var h Hello
		if err := rlp.DecodeBytes(payload, &h); err != nil {
			return nil, fmt.Errorf("devp2p: decoding hello: %w", err)
		}
		return &h, nil
	case DiscMsg:
		return nil, DisconnectError{DecodeDisconnect(payload)}
	default:
		return nil, fmt.Errorf("%w: code %#x", ErrUnexpectedMessage, code)
	}
}

// ExchangeHello sends ours and reads theirs concurrently-safely over
// a full-duplex transport (write first, then read).
func ExchangeHello(rw MsgReadWriter, ours *Hello) (*Hello, error) {
	if err := SendHello(rw, ours); err != nil {
		return nil, err
	}
	return ReadHello(rw)
}

// SendDisconnect writes a DISCONNECT with the given reason.
func SendDisconnect(rw MsgReadWriter, reason DisconnectReason) error {
	return WriteValue(rw, DiscMsg, []uint64{uint64(reason)})
}

// DecodeDisconnect parses a DISCONNECT payload, accepting both the
// spec's list form [reason] and the bare-integer form some clients
// emit, and an empty payload (reason 0). Oversized or undecodable
// payloads degrade to DiscRequested rather than failing: the session
// is over either way, and hostile padding earns no error path.
func DecodeDisconnect(payload []byte) DisconnectReason {
	if len(payload) == 0 || len(payload) > MaxDisconnectSize {
		return DiscRequested
	}
	var list []uint64
	if err := rlp.DecodeBytes(payload, &list); err == nil {
		if len(list) == 0 {
			return DiscRequested
		}
		return DisconnectReason(list[0])
	}
	var bare uint64
	if err := rlp.DecodeBytes(payload, &bare); err == nil {
		return DisconnectReason(bare)
	}
	return DiscRequested
}

// SendPing / SendPong implement the base keepalive.
func SendPing(rw MsgReadWriter) error { return rw.WriteMsg(PingMsg, []byte{0xC0}) }

// SendPong answers a ping.
func SendPong(rw MsgReadWriter) error { return rw.WriteMsg(PongMsg, []byte{0xC0}) }

// MatchCaps computes the shared capabilities and their message-code
// offsets. Both sides sort shared caps by name (then version) and
// stack their message spaces above the base protocol, so equal HELLOs
// yield equal offsets on both ends. For equal names the highest
// shared version wins.
func MatchCaps(ours, theirs []Cap, lengths map[string]uint64) []NegotiatedCap {
	// Highest mutual version per name.
	best := map[string]uint{}
	for _, oc := range ours {
		for _, tc := range theirs {
			if oc.Name == tc.Name && oc.Version == tc.Version {
				if v, ok := best[oc.Name]; !ok || oc.Version > v {
					best[oc.Name] = oc.Version
				}
			}
		}
	}
	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []NegotiatedCap
	offset := BaseProtocolLength
	for _, name := range names {
		length := lengths[name]
		if length == 0 {
			length = 16 // conservative default message space
		}
		out = append(out, NegotiatedCap{
			Cap:    Cap{Name: name, Version: best[name]},
			Offset: offset,
			Length: length,
		})
		offset += length
	}
	return out
}

// NegotiatedCap is a shared capability with its assigned code space.
type NegotiatedCap struct {
	Cap
	Offset uint64 // first message code
	Length uint64 // number of codes reserved
}

// HasCap reports whether caps contains name at any version.
func HasCap(caps []Cap, name string) bool {
	for _, c := range caps {
		if c.Name == name {
			return true
		}
	}
	return false
}

// CapVersion returns the highest advertised version of name, or 0.
func CapVersion(caps []Cap, name string) uint {
	var v uint
	for _, c := range caps {
		if c.Name == name && c.Version > v {
			v = c.Version
		}
	}
	return v
}
