package rlp

import (
	"bytes"
	"testing"
)

// helloLike mirrors the field mix of the wire structs decoded from
// untrusted peers (devp2p.Hello, eth.Status): integers, strings,
// nested structs, and a tail absorbing unknown future fields.
type helloLike struct {
	Version uint64
	Name    string
	Caps    []capLike
	Port    uint64
	ID      [64]byte
	Rest    []RawValue `rlp:"tail"`
}

type capLike struct {
	Name    string
	Version uint
}

// FuzzDecode throws arbitrary bytes at every decoding entry point the
// crawler exposes to untrusted peers. Invariants: no panic, and for
// types with a canonical encoding, decode∘encode is the identity —
// the decoder must not accept a non-canonical form silently.
func FuzzDecode(f *testing.F) {
	// Canonical encodings of representative values.
	for _, v := range []any{
		uint64(0), uint64(127), uint64(1 << 40),
		"", "eth", "Geth/v1.8.11-stable/linux-amd64/go1.10",
		[]byte{0x80}, bytes.Repeat([]byte{0xAA}, 100),
		[]uint64{1, 2, 3},
		&helloLike{Version: 5, Name: "x", Caps: []capLike{{"eth", 63}}, Port: 30303},
	} {
		enc, err := EncodeToBytes(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Hand-picked malformed shapes: truncated sizes, huge announced
	// lengths, non-canonical single bytes, deep nesting.
	f.Add([]byte{0xB8})
	f.Add([]byte{0xBF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x81, 0x01}) // non-canonical: single byte < 0x80 wrapped in a string
	f.Add(bytes.Repeat([]byte{0xC1}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var raw RawValue
		if err := DecodeBytes(data, &raw); err == nil {
			if !bytes.Equal([]byte(raw), data) {
				t.Fatalf("RawValue lost bytes: %x != %x", raw, data)
			}
		}
		var u uint64
		if err := DecodeBytes(data, &u); err == nil {
			enc, err := EncodeToBytes(u)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("uint64 %d: decode∘encode %x != input %x (non-canonical accepted)", u, enc, data)
			}
		}
		var s string
		if err := DecodeBytes(data, &s); err == nil {
			enc, err := EncodeToBytes(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("string %q: decode∘encode mismatch", s)
			}
		}
		// Cross-check the plan codec against the reflection oracle on
		// the remaining target shapes (see plan_diff_test.go).
		diffDecode(t, data, new([]byte), new([]byte), true)
		diffDecode(t, data, new([]uint64), new([]uint64), true)
		diffDecode(t, data, new(helloLike), new(helloLike), true)

		CountValues(data) //nolint:errcheck
		SplitString(data) //nolint:errcheck
		if content, _, err := SplitList(data); err == nil {
			// Walking a valid list must terminate and stay in bounds.
			if n, err := CountValues(content); err == nil && n > len(content)+1 {
				t.Fatalf("counted %d values in %d bytes", n, len(content))
			}
		}
	})
}
