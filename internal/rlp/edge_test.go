package rlp

import (
	"bytes"
	"errors"
	"io"
	"math/big"
	"testing"
)

// Additional edge-path coverage: encoder corner cases, stream integer
// readers, and split/count error paths.

func TestEncodeNilEncoderPointer(t *testing.T) {
	// A nil pointer whose type implements Encoder encodes as an
	// empty list by convention.
	var e *customEnc
	got, err := EncodeToBytes(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xC0}) {
		t.Errorf("got %x", got)
	}
}

func TestEncoderValueReceiverViaAddress(t *testing.T) {
	// A struct FIELD of a type with pointer-receiver EncodeRLP must
	// still use the custom encoder (the encoder takes the address).
	type wrapper struct {
		C customEnc
	}
	got, err := EncodeToBytes(&wrapper{})
	if err != nil {
		t.Fatal(err)
	}
	// wrapper encodes as [ c20102 ] => c3 c2 01 02
	if !bytes.Equal(got, mustHex("c3c20102")) {
		t.Errorf("got %x", got)
	}
}

func TestEncodeNilInterface(t *testing.T) {
	if _, err := EncodeToBytes(nil); err == nil {
		t.Fatal("nil accepted")
	}
	var v any
	if _, err := EncodeToBytes([]any{v}); err == nil {
		t.Fatal("nil interface element accepted")
	}
}

func TestEncodeBigIntValue(t *testing.T) {
	// big.Int by value (not pointer).
	v := *big.NewInt(300)
	got, err := EncodeToBytes(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mustHex("82012c")) {
		t.Errorf("got %x", got)
	}
	var back big.Int
	if err := DecodeBytes(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Int64() != 300 {
		t.Errorf("got %v", back)
	}
}

func TestEncodeUnaddressableByteArray(t *testing.T) {
	m := map[string][4]byte{"k": {1, 2, 3, 4}}
	got, err := EncodeToBytes(m["k"]) // map values are unaddressable
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mustHex("8401020304")) {
		t.Errorf("got %x", got)
	}
}

func TestStreamIntegerSizes(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("08")), 0)
	if v, err := s.Uint8(); err != nil || v != 8 {
		t.Fatal(v, err)
	}
	s.Reset(bytes.NewReader(mustHex("820400")), 0)
	if v, err := s.Uint16(); err != nil || v != 1024 {
		t.Fatal(v, err)
	}
	s.Reset(bytes.NewReader(mustHex("84ffffffff")), 0)
	if v, err := s.Uint32(); err != nil || v != 0xffffffff {
		t.Fatal(v, err)
	}
	// Overflow per size.
	s.Reset(bytes.NewReader(mustHex("820400")), 0)
	if _, err := s.Uint8(); !errors.Is(err, ErrUintOverflow) {
		t.Fatal(err)
	}
}

func TestStreamBoolErrors(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("02")), 0)
	if _, err := s.Bool(); err == nil {
		t.Fatal("2 accepted as bool")
	}
}

func TestStreamBigIntCanon(t *testing.T) {
	// Leading zero byte in a big int is non-canonical.
	s := NewStream(bytes.NewReader(mustHex("820001")), 0)
	if _, err := s.BigInt(); !errors.Is(err, ErrCanonInt) {
		t.Fatal(err)
	}
}

func TestStreamListEndErrors(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("c20102")), 0)
	if err := s.ListEnd(); err == nil {
		t.Fatal("ListEnd outside list accepted")
	}
	if _, err := s.List(); err != nil {
		t.Fatal(err)
	}
	if err := s.ListEnd(); err == nil {
		t.Fatal("ListEnd with unconsumed elements accepted")
	}
}

func TestStreamSkipString(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("83646f6705")), 0)
	if err := s.Skip(); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Uint64(); err != nil || v != 5 {
		t.Fatal(v, err)
	}
}

func TestCountValuesErrors(t *testing.T) {
	if _, err := CountValues(mustHex("83ab")); err == nil {
		t.Fatal("truncated value counted")
	}
	if _, err := CountValues(mustHex("b90000")); err == nil {
		t.Fatal("non-canonical size counted")
	}
}

func TestSplitErrors(t *testing.T) {
	if _, _, err := SplitList(nil); err == nil {
		t.Fatal("empty split accepted")
	}
	if _, _, err := SplitList(mustHex("c501")); err != ErrValueTooLarge {
		t.Fatalf("list: got %v", err)
	}
	if _, _, err := SplitString(mustHex("8501")); err != ErrValueTooLarge {
		t.Fatalf("string: got %v", err)
	}
}

func TestDecodeIntoNonEmptyInterface(t *testing.T) {
	var w io.Writer
	if err := DecodeBytes(mustHex("c0"), &w); err == nil {
		t.Fatal("non-empty interface accepted")
	}
}

func TestStructTagErrors(t *testing.T) {
	type badTag struct {
		A uint `rlp:"bogus"`
	}
	if _, err := EncodeToBytes(badTag{}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	type tailNotSlice struct {
		A uint `rlp:"tail"`
	}
	if _, err := EncodeToBytes(tailNotSlice{}); err == nil {
		t.Fatal("non-slice tail accepted")
	}
	type fieldAfterTail struct {
		A []uint `rlp:"tail"`
		B uint
	}
	if _, err := EncodeToBytes(fieldAfterTail{}); err == nil {
		t.Fatal("field after tail accepted")
	}
	type optThenRequired struct {
		A uint `rlp:"optional"`
		B uint
	}
	if _, err := EncodeToBytes(optThenRequired{}); err == nil {
		t.Fatal("required after optional accepted")
	}
}

func TestRawValueRoundTrip(t *testing.T) {
	var raw RawValue
	if err := DecodeBytes(mustHex("c20102"), &raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, mustHex("c20102")) {
		t.Errorf("got %x", raw)
	}
	enc, err := EncodeToBytes(raw)
	if err != nil || !bytes.Equal(enc, mustHex("c20102")) {
		t.Fatalf("got %x, %v", enc, err)
	}
}

func TestDecoderInterfaceUsed(t *testing.T) {
	var d customDec
	if err := DecodeBytes(mustHex("2a"), &d); err != nil {
		t.Fatal(err)
	}
	if d.got != 42 {
		t.Errorf("got %d", d.got)
	}
}

type customDec struct{ got uint64 }

func (d *customDec) DecodeRLP(s *Stream) error {
	v, err := s.Uint64()
	d.got = v
	return err
}
