package rlp

import (
	"fmt"
	"io"
	"math/big"
	"reflect"
)

// byteDec is the plan decoder: a cursor over a complete input slice.
// Where Stream reads through an io.Reader with a list-end stack, the
// byte decoder passes each container's payload end down the call
// chain, so decoding allocates nothing beyond the decoded values
// themselves.
//
// Error parity with Stream is part of the contract (decode_test.go
// pins sentinels via errors.Is): EOL inside an exhausted list, io.EOF
// at an exhausted top level, ErrElemTooLarge when a value overruns
// its enclosing list (checked before the input-limit condition, like
// Stream.willRead), ErrValueTooLarge when it overruns the input, and
// the same canonicality sentinels in the same precedence order. The
// one documented exception: custom Decoder implementations run
// against a pooled sub-Stream limited to the enclosing container, so
// exotic truncation errors inside DecodeRLP may surface as
// ErrValueTooLarge where the shared-stream walker reported
// ErrElemTooLarge. Both fail; differential fuzz compares outcomes and
// values, not error identity inside custom codecs.
type byteDec struct {
	in    []byte
	pos   int
	depth int // enclosing-list count, mirrors len(Stream.stack)
}

// readHeader parses the next value header. end bounds the current
// container: the enclosing list's payload end, or len(in) at top
// level. inList selects EOL vs io.EOF at exhaustion and
// ErrElemTooLarge vs ErrValueTooLarge on overrun. For Byte kind the
// tag is the value (returned in byteval) and pos is already past it.
func (d *byteDec) readHeader(end int, inList bool) (kind Kind, size int, byteval byte, err error) {
	if d.pos >= end {
		if inList {
			return 0, 0, 0, EOL
		}
		return 0, 0, 0, io.EOF
	}
	tag := d.in[d.pos]
	d.pos++
	var size64 uint64
	switch {
	case tag < 0x80:
		return Byte, 0, tag, nil
	case tag < 0xB8:
		kind, size64 = String, uint64(tag-0x80)
	case tag < 0xC0:
		n, err := d.readSize(int(tag-0xB7), end, inList)
		if err != nil {
			return 0, 0, 0, err
		}
		kind, size64 = String, n
	case tag < 0xF8:
		kind, size64 = List, uint64(tag-0xC0)
	default:
		n, err := d.readSize(int(tag-0xF7), end, inList)
		if err != nil {
			return 0, 0, 0, err
		}
		kind, size64 = List, n
	}
	// Payload fit, in Stream.Kind's order: the element check against
	// the enclosing list first, then the input limit. The element
	// check keeps Stream's uint64-wraparound semantics — a hostile
	// size large enough to overflow pos+size skips it and is caught
	// by the limit check as ErrValueTooLarge.
	if inList {
		if pe := uint64(d.pos) + size64; pe >= uint64(d.pos) && pe > uint64(end) {
			return 0, 0, 0, ErrElemTooLarge
		}
	}
	if size64 > uint64(len(d.in)-d.pos) {
		return 0, 0, 0, ErrValueTooLarge
	}
	// size64 ≤ remaining input, so the int conversion is safe.
	return kind, int(size64), 0, nil
}

// readSize reads an n-byte big-endian size, enforcing canonical form
// in the same order Stream does: width, bounds, leading zero, then
// minimality. Payload fit is the caller's job.
func (d *byteDec) readSize(n, end int, inList bool) (uint64, error) {
	if n > 8 {
		return 0, ErrCanonSize
	}
	if n > end-d.pos {
		return 0, d.overrunErr(inList)
	}
	if d.in[d.pos] == 0 {
		return 0, ErrCanonSize
	}
	size := uint64(0)
	for i := 0; i < n; i++ {
		size = size<<8 | uint64(d.in[d.pos+i])
	}
	d.pos += n
	if size < 56 {
		return 0, ErrCanonSize
	}
	return size, nil
}

func (d *byteDec) overrunErr(inList bool) error {
	if inList {
		return ErrElemTooLarge
	}
	return ErrValueTooLarge
}

// decode executes the decode side of a compiled plan, filling v
// (which must be addressable) from the input.
func (d *byteDec) decode(p *plan, v reflect.Value, end int, inList bool) error {
	if d.depth > maxDecodeDepth {
		return fmt.Errorf("rlp: decode nesting exceeds %d levels", maxDecodeDepth)
	}
	switch p.decOp {
	case opRaw:
		start := d.pos
		kind, size, _, err := d.readHeader(end, inList)
		if err != nil {
			return err
		}
		if kind != Byte {
			d.pos += size
		}
		n := d.pos - start
		if n > end-start {
			return ErrValueTooLarge // unreachable: readHeader bounds the payload
		}
		raw := make([]byte, n)
		copy(raw, d.in[start:d.pos])
		v.SetBytes(raw)
		return nil

	case opCustom:
		if inList && d.pos >= end {
			return EOL
		}
		ps := getStream(d.in[d.pos:end])
		err := v.Addr().Interface().(Decoder).DecodeRLP(&ps.s)
		if err == nil {
			d.pos += int(ps.s.pos)
		}
		putStream(ps)
		return err

	case opBigIntPtr, opBigIntVal:
		b, err := d.bigIntBytes(end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		i := new(big.Int).SetBytes(b)
		if p.decOp == opBigIntPtr {
			v.Set(reflect.ValueOf(i))
		} else {
			v.Set(reflect.ValueOf(*i))
		}
		return nil

	case opBool:
		u, err := d.uintVal(8, end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		switch u {
		case 0:
			v.SetBool(false)
		case 1:
			v.SetBool(true)
		default:
			return fmt.Errorf("rlp: invalid boolean value %d", u)
		}
		return nil

	case opUint:
		u, err := d.uintVal(p.bits, end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		v.SetUint(u)
		return nil

	case opString:
		kind, size, _, err := d.readHeader(end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		switch kind {
		case Byte:
			v.SetString(string(d.in[d.pos-1 : d.pos]))
		case String:
			if size == 1 && d.in[d.pos] < 0x80 {
				return wrapTypeError(ErrCanonSize, p.typ)
			}
			v.SetString(string(d.in[d.pos : d.pos+size]))
			d.pos += size
		default:
			return wrapTypeError(ErrExpectedString, p.typ)
		}
		return nil

	case opBytes:
		kind, size, bv, err := d.readHeader(end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		switch kind {
		case Byte:
			v.SetBytes([]byte{bv})
		case String:
			if size == 1 && d.in[d.pos] < 0x80 {
				return wrapTypeError(ErrCanonSize, p.typ)
			}
			if size > end-d.pos {
				return wrapTypeError(ErrValueTooLarge, p.typ) // unreachable: readHeader bounds the payload
			}
			b := make([]byte, size)
			copy(b, d.in[d.pos:d.pos+size])
			d.pos += size
			v.SetBytes(b)
		default:
			return wrapTypeError(ErrExpectedString, p.typ)
		}
		return nil

	case opByteArray:
		if !v.CanAddr() {
			return fmt.Errorf("rlp: cannot decode into unaddressable array of type %v", p.typ)
		}
		kind, size, bv, err := d.readHeader(end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		// Value.Bytes on the addressable array avoids the slice-header
		// allocation Slice(0, n) would make.
		dst := v.Bytes()
		switch kind {
		case Byte:
			if len(dst) != 1 {
				return fmt.Errorf("rlp: byte string of length 1, want %d", len(dst))
			}
			dst[0] = bv
		case String:
			if size != len(dst) {
				return fmt.Errorf("rlp: byte string of length %d, want %d", size, len(dst))
			}
			copy(dst, d.in[d.pos:d.pos+size])
			d.pos += size
			if size == 1 && dst[0] < 0x80 {
				return wrapTypeError(ErrCanonSize, p.typ)
			}
		default:
			return wrapTypeError(ErrExpectedString, p.typ)
		}
		return nil

	case opList:
		if p.typ.Kind() == reflect.Array {
			return d.decodeArray(p, v, end, inList)
		}
		return d.decodeSlice(p, v, end, inList)

	case opStruct:
		return d.decodeStruct(p, v, end, inList)

	case opPtr:
		start := d.pos
		kind, size, _, err := d.readHeader(end, inList)
		if err != nil {
			return wrapTypeError(err, p.typ)
		}
		if size == 0 && kind != Byte {
			// Empty value: leave/make the pointer nil.
			v.Set(reflect.Zero(p.typ))
			return nil
		}
		// Rewind; the element op re-reads the header.
		d.pos = start
		if v.IsNil() {
			v.Set(reflect.New(p.typ.Elem()))
		}
		return d.decode(p.elem, v.Elem(), end, inList)

	case opIface:
		return d.decodeIface(v, end, inList)

	default:
		return fmt.Errorf("rlp: internal: no decode op for %v", p.typ)
	}
}

// uintVal reads an integer of at most bits width, with Stream.uint's
// exact canonicality and overflow behavior.
func (d *byteDec) uintVal(bits, end int, inList bool) (uint64, error) {
	kind, size, bv, err := d.readHeader(end, inList)
	if err != nil {
		return 0, err
	}
	switch kind {
	case Byte:
		if bv == 0 {
			return 0, ErrCanonInt
		}
		return uint64(bv), nil
	case String:
		if size > bits/8 {
			return 0, ErrUintOverflow
		}
		u, err := readInt(d.in[d.pos : d.pos+size])
		if err != nil {
			return 0, err
		}
		d.pos += size
		if size == 1 && u < 0x80 {
			return 0, ErrCanonSize
		}
		return u, nil
	default:
		return 0, ErrExpectedString
	}
}

// bigIntBytes returns the payload of an integer value without copying
// (big.Int.SetBytes copies), applying Stream.BigInt's canonicality
// checks in order: string minimality first, then leading zero.
func (d *byteDec) bigIntBytes(end int, inList bool) ([]byte, error) {
	kind, size, _, err := d.readHeader(end, inList)
	if err != nil {
		return nil, err
	}
	var b []byte
	switch kind {
	case Byte:
		b = d.in[d.pos-1 : d.pos]
	case String:
		b = d.in[d.pos : d.pos+size]
		d.pos += size
		if size == 1 && b[0] < 0x80 {
			return nil, ErrCanonSize
		}
	default:
		return nil, ErrExpectedString
	}
	if len(b) > 0 && b[0] == 0 {
		return nil, ErrCanonInt
	}
	return b, nil
}

func (d *byteDec) decodeSlice(p *plan, v reflect.Value, end int, inList bool) error {
	kind, size, _, err := d.readHeader(end, inList)
	if err != nil {
		return wrapTypeError(err, p.typ)
	}
	if kind != List {
		return wrapTypeError(ErrExpectedList, p.typ)
	}
	lend := d.pos + size
	d.depth++
	if n, cntErr := CountValues(d.in[d.pos:lend]); cntErr == nil {
		if n == 0 {
			v.Set(p.empty)
		} else {
			// Exact pre-count: zero the destination (the walker never
			// reuses old backing), then one Grow allocation with the
			// elements decoded in place. On an element error the
			// destination may hold partial data, like struct fields.
			v.SetZero()
			v.Grow(n)
			v.SetLen(n)
			for i := 0; i < n; i++ {
				if err := d.decode(p.elem, v.Index(i), lend, true); err != nil {
					return err
				}
			}
		}
	} else {
		// Malformed element header somewhere in the list: take the
		// append path so the element decode surfaces the precise
		// error the reflection walker reports.
		out := reflect.MakeSlice(p.typ, 0, 4)
		for {
			elem := reflect.New(p.typ.Elem()).Elem()
			err := d.decode(p.elem, elem, lend, true)
			if err == EOL {
				break
			}
			if err != nil {
				return err
			}
			out = reflect.Append(out, elem)
		}
		v.Set(out)
	}
	d.depth--
	return nil
}

func (d *byteDec) decodeArray(p *plan, v reflect.Value, end int, inList bool) error {
	kind, size, _, err := d.readHeader(end, inList)
	if err != nil {
		return wrapTypeError(err, p.typ)
	}
	if kind != List {
		return wrapTypeError(ErrExpectedList, p.typ)
	}
	lend := d.pos + size
	d.depth++
	n := v.Len()
	for i := 0; i < n; i++ {
		if d.pos >= lend {
			return fmt.Errorf("rlp: list has %d elements, want %d for %v", i, n, p.typ)
		}
		if err := d.decode(p.elem, v.Index(i), lend, true); err != nil {
			return err
		}
	}
	if d.pos < lend {
		return fmt.Errorf("rlp: list has more than %d elements for %v", n, p.typ)
	}
	d.depth--
	return nil
}

func (d *byteDec) decodeStruct(p *plan, v reflect.Value, end int, inList bool) error {
	kind, size, _, err := d.readHeader(end, inList)
	if err != nil {
		return wrapTypeError(err, p.typ)
	}
	if kind != List {
		return wrapTypeError(ErrExpectedList, p.typ)
	}
	lend := d.pos + size
	d.depth++
	for _, f := range p.fields {
		fv := v.Field(f.index)
		if f.tail {
			if err := d.decodeTail(f, fv, lend); err != nil {
				return err
			}
			continue
		}
		err := d.decode(f.p, fv, lend, true)
		if err == EOL {
			if f.optional {
				// Remaining optional fields keep their zero values.
				break
			}
			return fmt.Errorf("rlp: too few elements for %v (missing %s)", p.typ, f.name)
		}
		if err != nil {
			return fmt.Errorf("rlp: field %s.%s: %w", p.typ, f.name, err)
		}
	}
	if d.pos < lend {
		return fmt.Errorf("rlp: input list has too many elements for %v", p.typ)
	}
	d.depth--
	return nil
}

// decodeTail collects the remaining list elements into the tail
// slice. Like the reflection walker, element errors propagate without
// field-name wrapping, and an empty tail still sets a non-nil slice.
func (d *byteDec) decodeTail(f planField, fv reflect.Value, lend int) error {
	if n, cntErr := CountValues(d.in[d.pos:lend]); cntErr == nil {
		if n == 0 {
			fv.Set(f.empty)
			return nil
		}
		fv.SetZero()
		fv.Grow(n)
		fv.SetLen(n)
		for i := 0; i < n; i++ {
			if err := d.decode(f.p, fv.Index(i), lend, true); err != nil {
				return err
			}
		}
		return nil
	}
	out := reflect.MakeSlice(f.typ, 0, 4)
	for {
		elem := reflect.New(f.typ.Elem()).Elem()
		err := d.decode(f.p, elem, lend, true)
		if err == EOL {
			break
		}
		if err != nil {
			return err
		}
		out = reflect.Append(out, elem)
	}
	fv.Set(out)
	return nil
}

// decodeIface fills an empty interface with []byte for strings and
// []any for lists, like Stream.decodeInterface.
func (d *byteDec) decodeIface(v reflect.Value, end int, inList bool) error {
	if d.depth > maxDecodeDepth {
		return fmt.Errorf("rlp: decode nesting exceeds %d levels", maxDecodeDepth)
	}
	kind, size, bv, err := d.readHeader(end, inList)
	if err != nil {
		return err
	}
	switch kind {
	case List:
		lend := d.pos + size
		d.depth++
		vals := []any{}
		//lint:ignore wiretaint readHeader clamps size to the remaining input, so lend never exceeds len(d.in), and every iteration consumes at least the one header byte that advances pos
		for d.pos < lend {
			var elem any
			ev := reflect.ValueOf(&elem).Elem()
			if err := d.decodeIface(ev, lend, true); err != nil {
				return err
			}
			vals = append(vals, elem)
		}
		d.depth--
		v.Set(reflect.ValueOf(vals))
		return nil
	case Byte:
		v.Set(reflect.ValueOf([]byte{bv}))
		return nil
	default:
		if size == 1 && d.in[d.pos] < 0x80 {
			return ErrCanonSize
		}
		if size > end-d.pos {
			return ErrValueTooLarge // unreachable: readHeader bounds the payload
		}
		b := make([]byte, size)
		copy(b, d.in[d.pos:d.pos+size])
		d.pos += size
		v.Set(reflect.ValueOf(b))
		return nil
	}
}
