// Package rlp implements Ethereum's Recursive Length Prefix (RLP)
// serialization format.
//
// RLP encodes arbitrarily nested arrays of binary data. It is the
// canonical encoding for every message exchanged on Ethereum's wire
// protocols (discovery packets, RLPx frames, DEVp2p and eth
// subprotocol messages) as well as for blocks and transactions.
//
// The package provides a reflection-driven Encode/Decode pair modeled
// on encoding/json, plus a low-level streaming decoder (Stream) for
// protocol code that wants explicit control.
//
// Type mapping:
//
//   - uint8..uint64, uint: big-endian integer with no leading zeros
//   - *big.Int: arbitrary-size unsigned integer
//   - bool: 0x01 / empty string
//   - string, []byte: byte string
//   - [N]byte arrays: fixed-size byte string
//   - slices (other than []byte): list
//   - structs: list of the exported fields in declaration order;
//     fields tagged `rlp:"-"` are skipped, `rlp:"tail"` (last field,
//     slice type) absorbs remaining list elements, and
//     `rlp:"optional"` fields may be absent at the end of a list
//   - pointers: encoded as the pointed-to value; nil pointers encode
//     as the empty string (for byte-ish kinds) or empty list
//   - RawValue: copied verbatim
//
// Signed integers and floats are not supported, matching the
// canonical Ethereum implementation.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
	"reflect"
)

// RawValue represents an already-encoded RLP value. It is copied
// verbatim by Encode and captures one full value (including its
// header) in Decode.
type RawValue []byte

// Common errors returned by the decoder.
var (
	// ErrExpectedString is returned when a list is found where a
	// byte string was required.
	ErrExpectedString = errors.New("rlp: expected string or byte")
	// ErrExpectedList is returned when a byte string is found where
	// a list was required.
	ErrExpectedList = errors.New("rlp: expected list")
	// ErrCanonInt is returned for integers with leading zero bytes.
	ErrCanonInt = errors.New("rlp: non-canonical integer format")
	// ErrCanonSize is returned for sizes that use more bytes than
	// necessary (a non-minimal length header).
	ErrCanonSize = errors.New("rlp: non-canonical size information")
	// ErrElemTooLarge is returned when a contained value extends
	// past the end of its enclosing list.
	ErrElemTooLarge = errors.New("rlp: element is larger than containing list")
	// ErrValueTooLarge is returned when a value header announces
	// more bytes than the input holds.
	ErrValueTooLarge = errors.New("rlp: value size exceeds available input length")
	// ErrMoreThanOneValue is returned by DecodeBytes when the input
	// contains trailing bytes after the first value.
	ErrMoreThanOneValue = errors.New("rlp: input contains more than one value")
	// ErrUintOverflow is returned when decoding an integer that does
	// not fit the target type.
	ErrUintOverflow = errors.New("rlp: uint overflow")
	// ErrNegativeBigInt is returned when encoding a negative big.Int.
	ErrNegativeBigInt = errors.New("rlp: cannot encode negative big.Int")
	// EOL is returned by Stream operations when the end of the
	// current list has been reached.
	EOL = errors.New("rlp: end of list")
)

// Kind is the category of an RLP value seen by the streaming decoder.
type Kind int8

// The three RLP value kinds.
const (
	Byte   Kind = iota // single byte < 0x80, no header
	String             // byte string
	List               // list of values
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Byte:
		return "Byte"
	case String:
		return "String"
	case List:
		return "List"
	default:
		return fmt.Sprintf("Kind(%d)", int8(k))
	}
}

var (
	bigIntType   = reflect.TypeOf(new(big.Int))
	rawValueType = reflect.TypeOf(RawValue{})
)

// typeError annotates a decode error with the Go type being filled.
type typeError struct {
	typ reflect.Type
	err error
}

func (e *typeError) Error() string { return fmt.Sprintf("rlp: %v for %v", e.err, e.typ) }

func (e *typeError) Unwrap() error { return e.err }

func wrapTypeError(err error, typ reflect.Type) error {
	switch err {
	case ErrExpectedString, ErrExpectedList, ErrCanonInt, ErrCanonSize,
		ErrUintOverflow, ErrElemTooLarge, ErrValueTooLarge:
		return &typeError{typ, err}
	}
	return err
}

// fieldInfo describes one struct field relevant to RLP.
type fieldInfo struct {
	index    int
	name     string
	tail     bool
	optional bool
}

// structFields returns the RLP-visible fields of a struct type.
func structFields(typ reflect.Type) ([]fieldInfo, error) {
	var fields []fieldInfo
	seenTail := false
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("rlp")
		info := fieldInfo{index: i, name: f.Name}
		switch tag {
		case "-":
			continue
		case "":
		case "tail":
			if f.Type.Kind() != reflect.Slice {
				return nil, fmt.Errorf("rlp: tail field %s.%s must be a slice", typ, f.Name)
			}
			info.tail = true
		case "optional":
			info.optional = true
		case "nil", "nilString", "nilList":
			// Accepted for geth compatibility; pointer fields already
			// treat nil as empty, so no extra behavior is needed.
		default:
			return nil, fmt.Errorf("rlp: unknown struct tag %q on %s.%s", tag, typ, f.Name)
		}
		if seenTail {
			return nil, fmt.Errorf("rlp: field %s.%s follows tail field", typ, f.Name)
		}
		if info.tail {
			seenTail = true
		}
		fields = append(fields, info)
	}
	// Validate optional ordering: once optional, all later fields
	// must be optional or tail.
	opt := false
	for _, f := range fields {
		if f.optional {
			opt = true
		} else if opt && !f.tail {
			return nil, fmt.Errorf("rlp: non-optional field %s.%s follows optional field", typ, f.name)
		}
	}
	return fields, nil
}

// isByteArray reports whether typ is [N]byte.
func isByteArray(typ reflect.Type) bool {
	return typ.Kind() == reflect.Array && typ.Elem().Kind() == reflect.Uint8
}

// intSize returns the number of bytes needed for a big-endian
// encoding of i with no leading zeros.
func intSize(i uint64) int {
	size := 1
	for ; i >= 0x100; i >>= 8 {
		size++
	}
	return size
}

// putInt writes i big-endian with no leading zeros into b and returns
// the number of bytes written. b must have room for 8 bytes.
func putInt(b []byte, i uint64) int {
	switch {
	case i < (1 << 8):
		b[0] = byte(i)
		return 1
	case i < (1 << 16):
		b[0], b[1] = byte(i>>8), byte(i)
		return 2
	case i < (1 << 24):
		b[0], b[1], b[2] = byte(i>>16), byte(i>>8), byte(i)
		return 3
	case i < (1 << 32):
		b[0], b[1], b[2], b[3] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return 4
	case i < (1 << 40):
		b[0], b[1], b[2], b[3], b[4] = byte(i>>32), byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return 5
	case i < (1 << 48):
		b[0], b[1], b[2], b[3], b[4], b[5] = byte(i>>40), byte(i>>32), byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return 6
	case i < (1 << 56):
		b[0], b[1], b[2], b[3], b[4], b[5], b[6] = byte(i>>48), byte(i>>40), byte(i>>32), byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return 7
	default:
		b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7] = byte(i>>56), byte(i>>48), byte(i>>40), byte(i>>32), byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
		return 8
	}
}

// readInt parses a big-endian integer of the given length, enforcing
// canonical form (no leading zeros, minimal size).
func readInt(b []byte) (uint64, error) {
	switch len(b) {
	case 0:
		return 0, nil
	case 1:
		if b[0] == 0 {
			return 0, ErrCanonInt
		}
		return uint64(b[0]), nil
	default:
		if len(b) > 8 {
			return 0, ErrUintOverflow
		}
		if b[0] == 0 {
			return 0, ErrCanonInt
		}
		var v uint64
		for _, c := range b {
			v = v<<8 | uint64(c)
		}
		return v, nil
	}
}
