package rlp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/big"
	"reflect"
)

// Decoder is implemented by types that want custom RLP decoding.
type Decoder interface {
	// DecodeRLP reads one value from the stream into the receiver.
	DecodeRLP(*Stream) error
}

var decoderType = reflect.TypeOf((*Decoder)(nil)).Elem()

// Decode parses RLP-encoded data from r and stores the result in the
// value pointed to by v. v must be a non-nil pointer.
func Decode(r io.Reader, v any) error {
	s := NewStream(r, 0)
	return s.Decode(v)
}

// DecodeBytes parses RLP data from b into v. Input must contain
// exactly one value and no trailing data.
func DecodeBytes(b []byte, v any) error {
	return decodeBytesInner(b, v, true)
}

// DecodeFirst parses the first RLP value in b into v, ignoring any
// trailing bytes. Protocol code that frames several values itself
// (the discv4 packet codec tolerates trailing data for forward
// compatibility) uses this where DecodeBytes would reject the input.
func DecodeFirst(b []byte, v any) error {
	return decodeBytesInner(b, v, false)
}

func decodeBytesInner(b []byte, v any, exact bool) error {
	if v == nil {
		return errors.New("rlp: Decode target is nil")
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer {
		return fmt.Errorf("rlp: Decode target must be a pointer, got %T", v)
	}
	if rv.IsNil() {
		return errors.New("rlp: Decode target is a nil pointer")
	}
	if PlanCodecEnabled() {
		if p, err := cachedPlan(rv.Type().Elem()); err == nil {
			var d byteDec
			d.in = b
			if err := d.decode(p, rv.Elem(), len(b), false); err != nil {
				return err
			}
			if exact && d.pos < len(b) {
				return ErrMoreThanOneValue
			}
			return nil
		}
	}
	// Reflection fallback (plan backend off, or the type does not
	// compile); the stream and its reader come from a pool.
	ps := getStream(b)
	defer putStream(ps)
	if err := ps.s.Decode(v); err != nil {
		return err
	}
	if exact && ps.s.remaining() > 0 {
		return ErrMoreThanOneValue
	}
	return nil
}

// Stream is a streaming RLP decoder with explicit list handling. A
// Stream is not safe for concurrent use.
type Stream struct {
	r io.Reader

	pos            uint64 // total bytes consumed from r
	remainingBytes uint64 // bytes left in the input, if limited
	limited        bool

	// Header state for the value at the front of the stream.
	kind    Kind
	size    uint64
	kindErr error
	haveHdr bool
	byteval byte // value of a Byte-kind item

	// Stack of enclosing lists; each entry is the absolute stream
	// position at which that list's payload ends.
	stack []uint64
}

// NewStream creates a new decoding stream reading from r. If
// inputLimit is greater than zero, the stream refuses to read values
// larger than the limit; pass the input length when decoding from a
// byte slice.
func NewStream(r io.Reader, inputLimit uint64) *Stream {
	s := new(Stream)
	s.Reset(r, inputLimit)
	return s
}

// Reset discards all stream state and starts reading from r. The
// list stack's backing array is kept so pooled streams do not regrow
// it on every decode.
func (s *Stream) Reset(r io.Reader, inputLimit uint64) {
	stack := s.stack[:0]
	*s = Stream{r: r, stack: stack}
	if inputLimit > 0 {
		s.limited = true
		s.remainingBytes = inputLimit
	} else if br, ok := r.(*bytes.Reader); ok {
		s.limited = true
		s.remainingBytes = uint64(br.Len())
	} else if _, ok := r.(*bufio.Reader); ok {
		// Unlimited buffered reader: fine as-is.
	}
}

func (s *Stream) remaining() uint64 {
	if !s.limited {
		return ^uint64(0)
	}
	return s.remainingBytes
}

// Kind returns the kind and size of the next value in the stream.
// The size is the payload size and does not include the header.
func (s *Stream) Kind() (Kind, uint64, error) {
	if s.haveHdr {
		return s.kind, s.size, s.kindErr
	}
	// If inside a list and the list is exhausted, signal EOL.
	if len(s.stack) > 0 && s.pos >= s.stack[len(s.stack)-1] {
		return 0, 0, EOL
	}
	kind, size, err := s.readKind()
	s.kind, s.size, s.kindErr, s.haveHdr = kind, size, err, true
	if err == nil && len(s.stack) > 0 {
		// The header bytes already advanced pos; verify the payload
		// fits the enclosing list.
		if s.pos+size > s.stack[len(s.stack)-1] {
			s.kindErr = ErrElemTooLarge
			return s.kind, s.size, s.kindErr
		}
	}
	if err == nil && s.limited && size > s.remainingBytes {
		s.kindErr = ErrValueTooLarge
		return s.kind, s.size, s.kindErr
	}
	return s.kind, s.size, s.kindErr
}

func (s *Stream) readKind() (Kind, uint64, error) {
	b, err := s.readByte()
	if err != nil {
		if len(s.stack) == 0 {
			// At top level, end of input is a clean io.EOF; an
			// exhausted limit means the same thing.
			if err == io.ErrUnexpectedEOF || (err == ErrValueTooLarge && s.remainingBytes == 0) {
				err = io.EOF
			}
		}
		return 0, 0, err
	}
	switch {
	case b < 0x80:
		s.byteval = b
		return Byte, 0, nil
	case b < 0xB8:
		return String, uint64(b - 0x80), nil
	case b < 0xC0:
		size, err := s.readSize(b - 0xB7)
		if err != nil {
			return 0, 0, err
		}
		if size < 56 {
			return 0, 0, ErrCanonSize
		}
		return String, size, nil
	case b < 0xF8:
		return List, uint64(b - 0xC0), nil
	default:
		size, err := s.readSize(b - 0xF7)
		if err != nil {
			return 0, 0, err
		}
		if size < 56 {
			return 0, 0, ErrCanonSize
		}
		return List, size, nil
	}
}

// readSize reads an n-byte big-endian size, enforcing canonical form.
func (s *Stream) readSize(n byte) (uint64, error) {
	if n > 8 {
		return 0, ErrCanonSize
	}
	var buf [8]byte
	if err := s.readFull(buf[8-n:]); err != nil {
		return 0, err
	}
	if buf[8-n] == 0 {
		return 0, ErrCanonSize
	}
	var size uint64
	for _, c := range buf {
		size = size<<8 | uint64(c)
	}
	return size, nil
}

func (s *Stream) readByte() (byte, error) {
	var buf [1]byte
	if err := s.readFull(buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

func (s *Stream) readFull(buf []byte) error {
	if err := s.willRead(uint64(len(buf))); err != nil {
		return err
	}
	n, err := io.ReadFull(s.r, buf)
	if err == io.EOF {
		if n < len(buf) {
			err = io.ErrUnexpectedEOF
		} else {
			err = nil
		}
	}
	return err
}

// willRead accounts for n upcoming bytes against the list stack and
// the input limit.
func (s *Stream) willRead(n uint64) error {
	s.haveHdr = false
	if len(s.stack) > 0 {
		if s.pos+n > s.stack[len(s.stack)-1] {
			return ErrElemTooLarge
		}
	}
	if s.limited {
		if n > s.remainingBytes {
			return ErrValueTooLarge
		}
		s.remainingBytes -= n
	}
	s.pos += n
	return nil
}

// maxPrealloc caps the upfront allocation for a wire-declared byte
// string on an unlimited stream. A peer's header can claim any length
// up to 2^64; allocating it before a single payload byte arrives lets
// one lying frame exhaust memory. Above the cap the buffer grows only
// as bytes are actually read.
const maxPrealloc = 1 << 16

// readBytesSized returns a buffer holding size payload bytes without
// trusting the wire-declared size: limited streams have already
// checked size against the input limit in Kind, and unlimited streams
// preallocate at most maxPrealloc, growing chunk by chunk as data
// really arrives.
func (s *Stream) readBytesSized(size uint64) ([]byte, error) {
	if s.limited || size <= maxPrealloc {
		// On a limited stream Kind has verified size <= remainingBytes,
		// so the allocation is bounded by the caller-chosen input limit.
		//lint:ignore boundedalloc size was checked against the stream's input limit in Kind
		b := make([]byte, size)
		if err := s.readFull(b); err != nil {
			return nil, err
		}
		return b, nil
	}
	buf := make([]byte, 0, maxPrealloc)
	for remaining := size; remaining > 0; {
		n := remaining
		if n > maxPrealloc {
			n = maxPrealloc
		}
		chunk := make([]byte, n)
		if err := s.readFull(chunk); err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		remaining -= n
	}
	return buf, nil
}

// Bytes reads a byte string and returns its contents.
func (s *Stream) Bytes() ([]byte, error) {
	kind, size, err := s.Kind()
	if err != nil {
		return nil, err
	}
	switch kind {
	case Byte:
		s.haveHdr = false
		return []byte{s.byteval}, nil
	case String:
		b, err := s.readBytesSized(size)
		if err != nil {
			return nil, err
		}
		if size == 1 && b[0] < 0x80 {
			return nil, ErrCanonSize
		}
		return b, nil
	default:
		return nil, ErrExpectedString
	}
}

// ReadBytes reads a byte string into the provided buffer, which must
// exactly match the value size.
func (s *Stream) ReadBytes(buf []byte) error {
	kind, size, err := s.Kind()
	if err != nil {
		return err
	}
	switch kind {
	case Byte:
		if len(buf) != 1 {
			return fmt.Errorf("rlp: byte string of length 1, want %d", len(buf))
		}
		s.haveHdr = false
		buf[0] = s.byteval
		return nil
	case String:
		if uint64(len(buf)) != size {
			return fmt.Errorf("rlp: byte string of length %d, want %d", size, len(buf))
		}
		if err := s.readFull(buf); err != nil {
			return err
		}
		if size == 1 && buf[0] < 0x80 {
			return ErrCanonSize
		}
		return nil
	default:
		return ErrExpectedString
	}
}

// Raw reads one full value (header included) and returns it verbatim.
func (s *Stream) Raw() ([]byte, error) {
	kind, size, err := s.Kind()
	if err != nil {
		return nil, err
	}
	if kind == Byte {
		s.haveHdr = false
		return []byte{s.byteval}, nil
	}
	// Re-synthesize the header, then copy the payload through.
	head := make([]byte, 0, 9)
	base := byte(0x80)
	if kind == List {
		base = 0xC0
	}
	if size < 56 {
		head = append(head, base+byte(size))
	} else {
		var tmp [8]byte
		n := putInt(tmp[:], size)
		head = append(head, base+55+byte(n))
		head = append(head, tmp[:n]...)
	}
	payload, err := s.readBytesSized(size)
	if err != nil {
		return nil, err
	}
	return append(head, payload...), nil
}

// Uint64 reads an integer value of at most 8 bytes.
func (s *Stream) Uint64() (uint64, error) { return s.uint(64) }

// Uint32 reads an integer value of at most 4 bytes.
func (s *Stream) Uint32() (uint32, error) {
	v, err := s.uint(32)
	return uint32(v), err
}

// Uint16 reads an integer value of at most 2 bytes.
func (s *Stream) Uint16() (uint16, error) {
	v, err := s.uint(16)
	return uint16(v), err
}

// Uint8 reads an integer value of at most 1 byte.
func (s *Stream) Uint8() (uint8, error) {
	v, err := s.uint(8)
	return uint8(v), err
}

func (s *Stream) uint(maxbits int) (uint64, error) {
	kind, size, err := s.Kind()
	if err != nil {
		return 0, err
	}
	switch kind {
	case Byte:
		if s.byteval == 0 {
			return 0, ErrCanonInt
		}
		s.haveHdr = false
		return uint64(s.byteval), nil
	case String:
		if size > uint64(maxbits/8) {
			return 0, ErrUintOverflow
		}
		b := make([]byte, size)
		if err := s.readFull(b); err != nil {
			return 0, err
		}
		v, err := readInt(b)
		if err != nil {
			return 0, err
		}
		if size == 1 && v < 0x80 {
			return 0, ErrCanonSize
		}
		return v, nil
	default:
		return 0, ErrExpectedString
	}
}

// Bool reads a boolean (encoded as integer 0 or 1).
func (s *Stream) Bool() (bool, error) {
	v, err := s.uint(8)
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("rlp: invalid boolean value %d", v)
	}
}

// BigInt reads an arbitrary-size unsigned integer.
func (s *Stream) BigInt() (*big.Int, error) {
	b, err := s.Bytes()
	if err != nil {
		return nil, err
	}
	if len(b) > 0 && b[0] == 0 {
		return nil, ErrCanonInt
	}
	return new(big.Int).SetBytes(b), nil
}

// List begins decoding a list. Subsequent reads return the list
// elements; EOL signals the end. ListEnd must be called to leave the
// list. The returned size is the payload size in bytes.
func (s *Stream) List() (uint64, error) {
	kind, size, err := s.Kind()
	if err != nil {
		return 0, err
	}
	if kind != List {
		return 0, ErrExpectedList
	}
	s.haveHdr = false
	s.stack = append(s.stack, s.pos+size)
	return size, nil
}

// ListEnd leaves the innermost list, discarding nothing; all elements
// must already have been consumed.
func (s *Stream) ListEnd() error {
	if len(s.stack) == 0 {
		return errors.New("rlp: ListEnd called outside of a list")
	}
	if s.pos < s.stack[len(s.stack)-1] {
		return errors.New("rlp: ListEnd with unconsumed list elements")
	}
	s.stack = s.stack[:len(s.stack)-1]
	s.haveHdr = false
	return nil
}

// Skip discards the next value, including all nested content.
func (s *Stream) Skip() error {
	kind, size, err := s.Kind()
	if err != nil {
		return err
	}
	switch kind {
	case Byte:
		s.haveHdr = false
		return nil
	case String:
		return s.discard(size)
	default:
		// Consume the entire list payload as raw bytes.
		s.haveHdr = false
		s.stack = append(s.stack, s.pos+size)
		if err := s.discard(size); err != nil {
			return err
		}
		return s.ListEnd()
	}
}

func (s *Stream) discard(n uint64) error {
	if err := s.willRead(n); err != nil {
		return err
	}
	_, err := io.CopyN(io.Discard, s.r, int64(n))
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// MoreDataInList reports whether the current innermost list has
// unconsumed elements.
func (s *Stream) MoreDataInList() bool {
	return len(s.stack) > 0 && s.pos < s.stack[len(s.stack)-1]
}

// Decode reads the next value from the stream into v, which must be a
// non-nil pointer.
func (s *Stream) Decode(v any) error {
	if v == nil {
		return errors.New("rlp: Decode target is nil")
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer {
		return fmt.Errorf("rlp: Decode target must be a pointer, got %T", v)
	}
	if rv.IsNil() {
		return errors.New("rlp: Decode target is a nil pointer")
	}
	return s.decodeValue(rv.Elem())
}

const maxDecodeDepth = 1024

func (s *Stream) decodeValue(v reflect.Value) error {
	if len(s.stack) > maxDecodeDepth {
		return fmt.Errorf("rlp: decode nesting exceeds %d levels", maxDecodeDepth)
	}
	typ := v.Type()

	if typ == rawValueType {
		raw, err := s.Raw()
		if err != nil {
			return err
		}
		v.SetBytes(raw)
		return nil
	}
	if reflect.PointerTo(typ).Implements(decoderType) {
		return v.Addr().Interface().(Decoder).DecodeRLP(s)
	}
	if typ == bigIntType {
		i, err := s.BigInt()
		if err != nil {
			return wrapTypeError(err, typ)
		}
		v.Set(reflect.ValueOf(i))
		return nil
	}
	if typ.Kind() != reflect.Pointer && reflect.PointerTo(typ) == bigIntType {
		i, err := s.BigInt()
		if err != nil {
			return wrapTypeError(err, typ)
		}
		v.Set(reflect.ValueOf(*i))
		return nil
	}

	switch typ.Kind() {
	case reflect.Bool:
		b, err := s.Bool()
		if err != nil {
			return wrapTypeError(err, typ)
		}
		v.SetBool(b)
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		i, err := s.uint(typ.Bits())
		if err != nil {
			return wrapTypeError(err, typ)
		}
		v.SetUint(i)
		return nil
	case reflect.String:
		b, err := s.Bytes()
		if err != nil {
			return wrapTypeError(err, typ)
		}
		v.SetString(string(b))
		return nil
	case reflect.Slice:
		if typ.Elem().Kind() == reflect.Uint8 {
			b, err := s.Bytes()
			if err != nil {
				return wrapTypeError(err, typ)
			}
			v.SetBytes(b)
			return nil
		}
		return s.decodeSlice(v)
	case reflect.Array:
		if isByteArray(typ) {
			if !v.CanAddr() {
				return fmt.Errorf("rlp: cannot decode into unaddressable array of type %v", typ)
			}
			err := s.ReadBytes(v.Slice(0, v.Len()).Bytes())
			return wrapTypeError(err, typ)
		}
		return s.decodeArray(v)
	case reflect.Struct:
		return s.decodeStruct(v)
	case reflect.Pointer:
		return s.decodePointer(v)
	case reflect.Interface:
		if typ.NumMethod() != 0 {
			return fmt.Errorf("rlp: cannot decode into non-empty interface %v", typ)
		}
		return s.decodeInterface(v)
	default:
		return fmt.Errorf("rlp: type %v is not RLP-deserializable", typ)
	}
}

func (s *Stream) decodeSlice(v reflect.Value) error {
	if _, err := s.List(); err != nil {
		return wrapTypeError(err, v.Type())
	}
	out := reflect.MakeSlice(v.Type(), 0, 4)
	for i := 0; ; i++ {
		elem := reflect.New(v.Type().Elem()).Elem()
		err := s.decodeValue(elem)
		if err == EOL {
			break
		}
		if err != nil {
			return err
		}
		out = reflect.Append(out, elem)
	}
	v.Set(out)
	return s.ListEnd()
}

func (s *Stream) decodeArray(v reflect.Value) error {
	if _, err := s.List(); err != nil {
		return wrapTypeError(err, v.Type())
	}
	i := 0
	for ; i < v.Len(); i++ {
		err := s.decodeValue(v.Index(i))
		if err == EOL {
			return fmt.Errorf("rlp: list has %d elements, want %d for %v", i, v.Len(), v.Type())
		}
		if err != nil {
			return err
		}
	}
	// Array full: list must end now.
	if _, _, err := s.Kind(); err != EOL {
		return fmt.Errorf("rlp: list has more than %d elements for %v", v.Len(), v.Type())
	}
	return s.ListEnd()
}

func (s *Stream) decodeStruct(v reflect.Value) error {
	fields, err := structFields(v.Type())
	if err != nil {
		return err
	}
	if _, err := s.List(); err != nil {
		return wrapTypeError(err, v.Type())
	}
	for _, f := range fields {
		fv := v.Field(f.index)
		if f.tail {
			// Collect remaining elements into the tail slice.
			out := reflect.MakeSlice(fv.Type(), 0, 4)
			for {
				elem := reflect.New(fv.Type().Elem()).Elem()
				err := s.decodeValue(elem)
				if err == EOL {
					break
				}
				if err != nil {
					return err
				}
				out = reflect.Append(out, elem)
			}
			fv.Set(out)
			continue
		}
		err := s.decodeValue(fv)
		if err == EOL {
			if f.optional {
				// Remaining optional fields keep their zero values.
				break
			}
			return fmt.Errorf("rlp: too few elements for %v (missing %s)", v.Type(), f.name)
		}
		if err != nil {
			return fmt.Errorf("rlp: field %s.%s: %w", v.Type(), f.name, err)
		}
	}
	if s.MoreDataInList() {
		return fmt.Errorf("rlp: input list has too many elements for %v", v.Type())
	}
	return s.ListEnd()
}

func (s *Stream) decodePointer(v reflect.Value) error {
	// A nil value decodes into a nil pointer when the input is the
	// empty string/list; otherwise allocate and decode into it.
	kind, size, err := s.Kind()
	if err != nil {
		return wrapTypeError(err, v.Type())
	}
	if size == 0 && kind != Byte {
		// Consume the empty value and leave/make the pointer nil.
		s.haveHdr = false
		if kind == List {
			s.stack = append(s.stack, s.pos)
			if err := s.ListEnd(); err != nil {
				return err
			}
		}
		v.Set(reflect.Zero(v.Type()))
		return nil
	}
	if v.IsNil() {
		v.Set(reflect.New(v.Type().Elem()))
	}
	return s.decodeValue(v.Elem())
}

// decodeInterface fills an empty interface with []byte for strings
// and []any for lists.
func (s *Stream) decodeInterface(v reflect.Value) error {
	kind, _, err := s.Kind()
	if err != nil {
		return err
	}
	if kind == List {
		if _, err := s.List(); err != nil {
			return err
		}
		vals := []any{}
		for {
			var elem any
			ev := reflect.ValueOf(&elem).Elem()
			err := s.decodeInterface(ev)
			if err == EOL {
				break
			}
			if err != nil {
				return err
			}
			vals = append(vals, elem)
		}
		if err := s.ListEnd(); err != nil {
			return err
		}
		v.Set(reflect.ValueOf(vals))
		return nil
	}
	b, err := s.Bytes()
	if err != nil {
		return err
	}
	v.Set(reflect.ValueOf(b))
	return nil
}

// CountValues returns the number of top-level values in b.
func CountValues(b []byte) (int, error) {
	count := 0
	for len(b) > 0 {
		_, tagsize, size, err := readHead(b)
		if err != nil {
			return 0, err
		}
		// Guard tagsize+size against uint64 overflow: a hostile header
		// can announce a 2^64-1 byte value.
		if size > uint64(len(b)) || tagsize > uint64(len(b))-size {
			return 0, ErrValueTooLarge
		}
		b = b[tagsize+size:]
		count++
	}
	return count, nil
}

// SplitList splits b into the payload of a list and any remaining
// trailing bytes.
func SplitList(b []byte) (content, rest []byte, err error) {
	kind, tagsize, size, err := readHead(b)
	if err != nil {
		return nil, nil, err
	}
	if kind != List {
		return nil, nil, ErrExpectedList
	}
	if size > uint64(len(b)) || tagsize > uint64(len(b))-size {
		return nil, nil, ErrValueTooLarge
	}
	return b[tagsize : tagsize+size], b[tagsize+size:], nil
}

// SplitString splits b into the payload of a string and remaining
// trailing bytes.
func SplitString(b []byte) (content, rest []byte, err error) {
	kind, tagsize, size, err := readHead(b)
	if err != nil {
		return nil, nil, err
	}
	if kind == List {
		return nil, nil, ErrExpectedString
	}
	if kind == Byte {
		return b[:1], b[1:], nil
	}
	if size > uint64(len(b)) || tagsize > uint64(len(b))-size {
		return nil, nil, ErrValueTooLarge
	}
	return b[tagsize : tagsize+size], b[tagsize+size:], nil
}

// readHead parses the header at the start of b.
func readHead(b []byte) (kind Kind, tagsize, size uint64, err error) {
	if len(b) == 0 {
		return 0, 0, 0, io.ErrUnexpectedEOF
	}
	tag := b[0]
	switch {
	case tag < 0x80:
		return Byte, 0, 1, nil
	case tag < 0xB8:
		return String, 1, uint64(tag - 0x80), nil
	case tag < 0xC0:
		n := uint64(tag - 0xB7)
		size, err = parseSize(b[1:], n)
		return String, 1 + n, size, err
	case tag < 0xF8:
		return List, 1, uint64(tag - 0xC0), nil
	default:
		n := uint64(tag - 0xF7)
		size, err = parseSize(b[1:], n)
		return List, 1 + n, size, err
	}
}

func parseSize(b []byte, n uint64) (uint64, error) {
	if uint64(len(b)) < n {
		return 0, io.ErrUnexpectedEOF
	}
	if n > 8 {
		return 0, ErrCanonSize
	}
	if b[0] == 0 {
		return 0, ErrCanonSize
	}
	var size uint64
	for i := uint64(0); i < n; i++ {
		size = size<<8 | uint64(b[i])
	}
	if size < 56 {
		return 0, ErrCanonSize
	}
	return size, nil
}
