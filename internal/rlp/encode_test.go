package rlp

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"testing"
)

// encTest is one encoding vector: a Go value and its expected hex.
type encTest struct {
	val  any
	want string
}

// The classic vectors from the Ethereum wiki plus edge cases.
var encTests = []encTest{
	// Booleans.
	{true, "01"},
	{false, "80"},

	// Integers.
	{uint64(0), "80"},
	{uint64(1), "01"},
	{uint64(0x7f), "7f"},
	{uint64(0x80), "8180"},
	{uint64(0xff), "81ff"},
	{uint64(0x100), "820100"},
	{uint64(1024), "820400"},
	{uint64(0xffffff), "83ffffff"},
	{uint64(0xffffffff), "84ffffffff"},
	{uint64(0xffffffffff), "85ffffffffff"},
	{uint64(0xffffffffffff), "86ffffffffffff"},
	{uint64(0xffffffffffffff), "87ffffffffffffff"},
	{uint64(0xffffffffffffffff), "88ffffffffffffffff"},
	{uint8(0x80), "8180"},
	{uint16(0x8000), "828000"},
	{uint32(0), "80"},

	// Big integers.
	{big.NewInt(0), "80"},
	{big.NewInt(1), "01"},
	{big.NewInt(127), "7f"},
	{big.NewInt(128), "8180"},
	{new(big.Int).SetBytes(mustHex("102030405060708090a0b0c0d0e0f2")), "8f102030405060708090a0b0c0d0e0f2"},
	{new(big.Int).SetBytes(mustHex("0100020003000400050006000700080009000a000b000c000d000e01")), "9c0100020003000400050006000700080009000a000b000c000d000e01"},
	{(*big.Int)(nil), "80"},

	// Byte strings.
	{[]byte{}, "80"},
	{[]byte{0x00}, "00"},
	{[]byte{0x7e}, "7e"},
	{[]byte{0x7f}, "7f"},
	{[]byte{0x80}, "8180"},
	{[]byte("dog"), "83646f67"},
	{[]byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
		"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974"},
	{"dog", "83646f67"},
	{"", "80"},

	// Fixed-size byte arrays.
	{[4]byte{1, 2, 3, 4}, "8401020304"},
	{[1]byte{0x7f}, "7f"},
	{[0]byte{}, "80"},

	// Lists.
	{[]uint{}, "c0"},
	{[]uint{1, 2, 3}, "c3010203"},
	{[]any{}, "c0"},
	{[]string{"cat", "dog"}, "c88363617483646f67"},
	// The set-theoretic representation of three:
	// [ [], [[]], [ [], [[]] ] ]
	{[]any{[]any{}, []any{[]any{}}, []any{[]any{}, []any{[]any{}}}},
		"c7c0c1c0c3c0c1c0"},
	// Nested slices.
	{[][]uint{{}, {1}, {2, 3}}, "c6c0c101c20203"},

	// Structs.
	{struct{}{}, "c0"},
	{struct{ A, B uint }{1, 2}, "c20102"},
	{struct {
		A uint
		B string
	}{5, "cusp"}, "c6058463757370"},

	// Pointers.
	{ptr(uint64(5)), "05"},
	{(*uint64)(nil), "80"},
	{(*[]uint)(nil), "c0"},
	{(*struct{ A uint })(nil), "c0"},
	{ptr([]byte("dog")), "83646f67"},

	// RawValue pass-through.
	{RawValue(mustHex("c20102")), "c20102"},
}

func ptr[T any](v T) *T { return &v }

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func TestEncodeVectors(t *testing.T) {
	for i, test := range encTests {
		got, err := EncodeToBytes(test.val)
		if err != nil {
			t.Errorf("test %d (%#v): unexpected error: %v", i, test.val, err)
			continue
		}
		if hex.EncodeToString(got) != test.want {
			t.Errorf("test %d (%#v): got %x, want %s", i, test.val, got, test.want)
		}
	}
}

func TestEncodeToWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []string{"cat", "dog"}); err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(buf.Bytes()); got != "c88363617483646f67" {
		t.Errorf("got %s", got)
	}
}

func TestEncodeNegativeBigInt(t *testing.T) {
	if _, err := EncodeToBytes(big.NewInt(-1)); err != ErrNegativeBigInt {
		t.Errorf("got %v, want ErrNegativeBigInt", err)
	}
}

func TestEncodeUnsupportedTypes(t *testing.T) {
	for _, v := range []any{int(1), int64(-5), float64(1.5), map[string]string{}, make(chan int)} {
		if _, err := EncodeToBytes(v); err == nil {
			t.Errorf("expected error encoding %T", v)
		}
	}
}

func TestEncodeStructTags(t *testing.T) {
	type tagged struct {
		A uint
		B uint `rlp:"-"`
		C uint
	}
	got, err := EncodeToBytes(tagged{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(got) != "c20103" {
		t.Errorf("got %x, want c20103 (B skipped)", got)
	}
}

func TestEncodeTailField(t *testing.T) {
	type withTail struct {
		A    uint
		Rest []uint `rlp:"tail"`
	}
	got, err := EncodeToBytes(withTail{1, []uint{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Tail elements are spliced into the outer list, not nested.
	if hex.EncodeToString(got) != "c3010203" {
		t.Errorf("got %x, want c3010203", got)
	}
}

func TestEncodeOptionalFields(t *testing.T) {
	type withOpt struct {
		A uint
		B uint `rlp:"optional"`
		C uint `rlp:"optional"`
	}
	tests := []struct {
		in   withOpt
		want string
	}{
		{withOpt{1, 0, 0}, "c101"},
		{withOpt{1, 2, 0}, "c20102"},
		{withOpt{1, 0, 3}, "c3018003"}, // zero B must be kept to preserve C's position
		{withOpt{1, 2, 3}, "c3010203"},
	}
	for _, test := range tests {
		got, err := EncodeToBytes(test.in)
		if err != nil {
			t.Fatal(err)
		}
		if hex.EncodeToString(got) != test.want {
			t.Errorf("%+v: got %x, want %s", test.in, got, test.want)
		}
	}
}

func TestEncodeCustomEncoder(t *testing.T) {
	got, err := EncodeToBytes(&customEnc{})
	if err != nil {
		t.Fatal(err)
	}
	if hex.EncodeToString(got) != "c20102" {
		t.Errorf("got %x", got)
	}
}

type customEnc struct{}

var _ Encoder = (*customEnc)(nil)

func (c *customEnc) EncodeRLP(w io.Writer) error {
	_, err := w.Write(mustHex("c20102"))
	return err
}

func TestEncodeLongList(t *testing.T) {
	// A list longer than 55 bytes gets a multi-byte header.
	vals := make([]uint, 60)
	for i := range vals {
		vals[i] = 1
	}
	got, err := EncodeToBytes(vals)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xF8 || got[1] != 60 {
		t.Errorf("header = %x %x, want f8 3c", got[0], got[1])
	}
	if len(got) != 62 {
		t.Errorf("len = %d, want 62", len(got))
	}
}

func TestEncodeLongString(t *testing.T) {
	b := make([]byte, 1024)
	got, err := EncodeToBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xB9 || got[1] != 0x04 || got[2] != 0x00 {
		t.Errorf("header = %x", got[:3])
	}
}

func TestAppendUint(t *testing.T) {
	for _, i := range []uint64{0, 1, 0x7f, 0x80, 0x100, 0xffffffffffffffff} {
		want, _ := EncodeToBytes(i)
		got := AppendUint(nil, i)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendUint(%d) = %x, want %x", i, got, want)
		}
		if IntSize(i) != len(want) {
			t.Errorf("IntSize(%d) = %d, want %d", i, IntSize(i), len(want))
		}
	}
}

func BenchmarkEncodeIntSlice(b *testing.B) {
	vals := make([]uint64, 128)
	for i := range vals {
		vals[i] = uint64(i * 7777)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeToBytes(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeStruct(b *testing.B) {
	type header struct {
		ParentHash [32]byte
		Number     uint64
		Time       uint64
		Extra      []byte
	}
	h := header{Number: 4370000, Time: 1508131331, Extra: []byte("dao-hard-fork")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeToBytes(&h); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleEncodeToBytes() {
	b, _ := EncodeToBytes([]string{"cat", "dog"})
	fmt.Printf("%x\n", b)
	// Output: c88363617483646f67
}
