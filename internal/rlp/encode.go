package rlp

import (
	"fmt"
	"io"
	"math/big"
	"reflect"
)

// Encoder is implemented by types that want custom RLP encoding.
type Encoder interface {
	// EncodeRLP writes the RLP encoding of the receiver to w.
	EncodeRLP(w io.Writer) error
}

var encoderType = reflect.TypeOf((*Encoder)(nil)).Elem()

// Encode writes the RLP encoding of v to w.
func Encode(w io.Writer, v any) error {
	buf := getEncBuffer()
	defer putEncBuffer(buf)
	if err := buf.encodeValue(reflect.ValueOf(v)); err != nil {
		return err
	}
	_, err := w.Write(buf.finish())
	return err
}

// EncodeToBytes returns the RLP encoding of v.
func EncodeToBytes(v any) ([]byte, error) {
	buf := getEncBuffer()
	defer putEncBuffer(buf)
	if err := buf.encodeValue(reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return buf.finish(), nil
}

// EncodeAppend appends the RLP encoding of v to dst and returns the
// extended slice. The encode runs through a pooled buffer, so on the
// hot wire path the only allocation is growth of dst itself — callers
// that recycle dst (rlpx frame scratch, discv4 datagrams) encode with
// zero allocations.
func EncodeAppend(dst []byte, v any) ([]byte, error) {
	buf := getEncBuffer()
	defer putEncBuffer(buf)
	if err := buf.encodeValue(reflect.ValueOf(v)); err != nil {
		return dst, err
	}
	return buf.appendTo(dst), nil
}

// AppendUint appends the RLP encoding of i to b. It is a fast path
// for protocol code that frames integer message codes.
func AppendUint(b []byte, i uint64) []byte {
	if i == 0 {
		return append(b, 0x80)
	}
	if i < 0x80 {
		return append(b, byte(i))
	}
	var tmp [9]byte
	n := putInt(tmp[1:], i)
	tmp[0] = 0x80 + byte(n)
	return append(b, tmp[:n+1]...)
}

// IntSize returns the encoded size of the integer i, including the
// RLP string header.
func IntSize(i uint64) int {
	if i < 0x80 {
		return 1 // includes zero, which encodes as the 1-byte 0x80
	}
	return 1 + intSize(i)
}

// listHead marks a pending list whose payload length is unknown until
// the list is closed.
type listHead struct {
	offset int // index into encBuffer.str where the list payload starts
	size   int // total size of encoded payload, including nested headers
}

// encBuffer accumulates string data and pending list headers; headers
// are materialized in finish once all payload sizes are known. This
// is the single-pass strategy used by the canonical implementation.
type encBuffer struct {
	str    []byte     // string data, excluding list headers
	lheads []listHead // all list headers, in order of appearance
	lhsize int        // sum of encoded sizes of all list headers
	depth  int        // current nesting depth during encoding
}

func newEncBuffer() *encBuffer { return &encBuffer{} }

// reset prepares a recycled buffer for a new encode, keeping the
// backing arrays.
func (buf *encBuffer) reset() {
	buf.str = buf.str[:0]
	buf.lheads = buf.lheads[:0]
	buf.lhsize = 0
	buf.depth = 0
}

// Write implements io.Writer: custom Encoder implementations write
// their fully-encoded bytes straight into the buffer. (On error the
// enclosing encode discards the whole buffer, so partial writes are
// never observable.)
func (buf *encBuffer) Write(p []byte) (int, error) {
	buf.str = append(buf.str, p...)
	return len(p), nil
}

func (buf *encBuffer) size() int { return len(buf.str) + buf.lhsize }

// headerSize returns the encoded size of a string/list header for a
// payload of the given size.
func headerSize(payload int) int {
	if payload < 56 {
		return 1
	}
	return 1 + intSize(uint64(payload))
}

func (buf *encBuffer) writeByte(b byte) { buf.str = append(buf.str, b) }

func (buf *encBuffer) write(b []byte) { buf.str = append(buf.str, b...) }

// writeString writes an RLP string header followed by the payload.
func (buf *encBuffer) writeString(b []byte) {
	if len(b) == 1 && b[0] < 0x80 {
		buf.writeByte(b[0])
		return
	}
	buf.writeHead(0x80, len(b))
	buf.write(b)
}

// writeStr is writeString for string values, appending the payload
// directly without a []byte conversion.
func (buf *encBuffer) writeStr(s string) {
	if len(s) == 1 && s[0] < 0x80 {
		buf.writeByte(s[0])
		return
	}
	buf.writeHead(0x80, len(s))
	buf.str = append(buf.str, s...)
}

// writeHead emits a header with the given base tag (0x80 strings,
// 0xC0 lists) for a payload of the given size.
func (buf *encBuffer) writeHead(base byte, size int) {
	if size < 56 {
		buf.writeByte(base + byte(size))
		return
	}
	var tmp [9]byte
	n := putInt(tmp[1:], uint64(size))
	tmp[0] = base + 55 + byte(n)
	buf.write(tmp[:n+1])
}

func (buf *encBuffer) writeUint(i uint64) {
	if i < 0x80 {
		// Single byte below 0x80 encodes as itself; zero encodes as
		// the empty string 0x80.
		if i == 0 {
			buf.writeByte(0x80)
		} else {
			buf.writeByte(byte(i))
		}
		return
	}
	var tmp [8]byte
	n := putInt(tmp[:], i)
	buf.writeHead(0x80, n)
	buf.write(tmp[:n])
}

func (buf *encBuffer) writeBigInt(i *big.Int) error {
	if i == nil {
		buf.writeByte(0x80)
		return nil
	}
	if i.Sign() < 0 {
		return ErrNegativeBigInt
	}
	if i.BitLen() <= 64 {
		buf.writeUint(i.Uint64())
		return nil
	}
	b := i.Bytes()
	buf.writeHead(0x80, len(b))
	buf.write(b)
	return nil
}

// listStart opens a new list and returns its index for listEnd.
func (buf *encBuffer) listStart() int {
	buf.lheads = append(buf.lheads, listHead{offset: len(buf.str), size: buf.lhsize})
	return len(buf.lheads) - 1
}

// listEnd closes the list opened at index idx, computing its payload
// size (string bytes plus nested header bytes added since listStart).
func (buf *encBuffer) listEnd(idx int) {
	h := &buf.lheads[idx]
	h.size = buf.size() - h.offset - h.size
	buf.lhsize += headerSize(h.size)
}

// finish interleaves the accumulated string data with the
// materialized list headers.
func (buf *encBuffer) finish() []byte {
	//lint:ignore boundedalloc egress buffer sized by our own encoder's accounting, not peer input
	out := make([]byte, 0, buf.size())
	return buf.appendTo(out)
}

// appendTo appends the finished encoding (string data interleaved
// with materialized list headers) to dst.
func (buf *encBuffer) appendTo(dst []byte) []byte {
	strpos := 0
	for _, h := range buf.lheads {
		dst = append(dst, buf.str[strpos:h.offset]...)
		strpos = h.offset
		if h.size < 56 {
			dst = append(dst, 0xC0+byte(h.size))
		} else {
			var tmp [9]byte
			n := putInt(tmp[1:], uint64(h.size))
			tmp[0] = 0xC0 + 55 + byte(n)
			dst = append(dst, tmp[:n+1]...)
		}
	}
	return append(dst, buf.str[strpos:]...)
}

const maxEncodeDepth = 1024

func (buf *encBuffer) encode(v reflect.Value) error {
	if buf.depth > maxEncodeDepth {
		return fmt.Errorf("rlp: encode nesting exceeds %d levels", maxEncodeDepth)
	}
	if !v.IsValid() {
		return fmt.Errorf("rlp: cannot encode nil interface value")
	}
	typ := v.Type()

	// Custom encoders and special types first.
	if typ == rawValueType {
		buf.write(v.Bytes())
		return nil
	}
	if typ.Implements(encoderType) {
		if typ.Kind() == reflect.Pointer && v.IsNil() {
			buf.writeByte(0xC0)
			return nil
		}
		// EncodeRLP writes fully-encoded bytes; capture them and
		// splice verbatim.
		w := &encWriter{}
		if err := v.Interface().(Encoder).EncodeRLP(w); err != nil {
			return err
		}
		buf.write(w.data)
		return nil
	}
	if !typ.Implements(encoderType) && typ.Kind() != reflect.Pointer &&
		reflect.PointerTo(typ).Implements(encoderType) && typ != bigIntType.Elem() {
		// Pointer-receiver Encoder used for a value: take the address
		// (copying if unaddressable) so EncodeRLP applies.
		cp := reflect.New(typ)
		cp.Elem().Set(v)
		return buf.encode(cp)
	}
	if typ == bigIntType {
		return buf.writeBigInt(v.Interface().(*big.Int))
	}
	if typ.Kind() != reflect.Pointer && reflect.PointerTo(typ) == bigIntType {
		i := v.Interface().(big.Int)
		return buf.writeBigInt(&i)
	}

	switch typ.Kind() {
	case reflect.Bool:
		if v.Bool() {
			buf.writeByte(0x01)
		} else {
			buf.writeByte(0x80)
		}
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		buf.writeUint(v.Uint())
		return nil
	case reflect.String:
		buf.writeString([]byte(v.String()))
		return nil
	case reflect.Slice:
		if typ.Elem().Kind() == reflect.Uint8 && !typ.Elem().Implements(encoderType) {
			buf.writeString(v.Bytes())
			return nil
		}
		return buf.encodeList(v)
	case reflect.Array:
		if isByteArray(typ) {
			if !v.CanAddr() {
				// Copy so Slice is legal on unaddressable arrays.
				cp := reflect.New(typ).Elem()
				cp.Set(v)
				v = cp
			}
			buf.writeString(v.Slice(0, v.Len()).Bytes())
			return nil
		}
		return buf.encodeList(v)
	case reflect.Struct:
		return buf.encodeStruct(v)
	case reflect.Pointer:
		if v.IsNil() {
			return buf.encodeNilPointer(typ.Elem())
		}
		return buf.encode(v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			return fmt.Errorf("rlp: cannot encode nil interface value")
		}
		return buf.encode(v.Elem())
	default:
		return fmt.Errorf("rlp: type %v is not RLP-serializable", typ)
	}
}

// encodeNilPointer writes the conventional empty value for a nil
// pointer: empty string for string-like element types, empty list for
// list-like ones.
func (buf *encBuffer) encodeNilPointer(elem reflect.Type) error {
	switch {
	case elem.Kind() == reflect.Struct && elem != bigIntType.Elem():
		buf.writeByte(0xC0)
	case elem.Kind() == reflect.Slice && elem.Elem().Kind() != reflect.Uint8:
		buf.writeByte(0xC0)
	case elem.Kind() == reflect.Array && !isByteArray(elem):
		buf.writeByte(0xC0)
	default:
		buf.writeByte(0x80)
	}
	return nil
}

func (buf *encBuffer) encodeList(v reflect.Value) error {
	idx := buf.listStart()
	buf.depth++
	for i := 0; i < v.Len(); i++ {
		if err := buf.encode(v.Index(i)); err != nil {
			return err
		}
	}
	buf.depth--
	buf.listEnd(idx)
	return nil
}

func (buf *encBuffer) encodeStruct(v reflect.Value) error {
	fields, err := structFields(v.Type())
	if err != nil {
		return err
	}
	// Trailing optional fields holding zero values are omitted, in
	// reverse order, so that older decoders accept the output.
	last := len(fields)
	for last > 0 && fields[last-1].optional && v.Field(fields[last-1].index).IsZero() {
		last--
	}
	idx := buf.listStart()
	buf.depth++
	for _, f := range fields[:last] {
		fv := v.Field(f.index)
		if f.tail {
			// Tail fields splice their elements into the outer list.
			for i := 0; i < fv.Len(); i++ {
				if err := buf.encode(fv.Index(i)); err != nil {
					return err
				}
			}
			continue
		}
		if err := buf.encode(fv); err != nil {
			return err
		}
	}
	buf.depth--
	buf.listEnd(idx)
	return nil
}

// encWriter collects bytes written by a custom Encoder implementation.
type encWriter struct{ data []byte }

func (w *encWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
