package rlp

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// The plan codec is the default wire path: each Go type is compiled
// once into a flat program of encode/decode ops (plan.go) and cached
// here. SetPlanCodec(false) routes everything through the original
// reflection walker instead; differential tests flip the switch (or
// call the Oracle* entry points directly) to cross-check the two
// paths byte-for-byte — the same backend-switch pattern the
// secp256k1 package uses for its math/big oracle.

// planCodecOff is inverted so the zero value means "plans on" without
// an init hook.
var planCodecOff atomic.Bool

// SetPlanCodec selects the codec backend: true (the default) uses
// compiled plans with pooled buffers, false uses the reflection
// walker on every call. Not intended for concurrent flipping with
// in-flight codec calls; tests and benchmarks switch it at quiesce.
func SetPlanCodec(on bool) { planCodecOff.Store(!on) }

// PlanCodecEnabled reports whether the compiled-plan backend is
// active.
func PlanCodecEnabled() bool { return !planCodecOff.Load() }

// planInfo is a cache slot: either a compiled plan or the reason the
// type cannot be compiled (such types permanently fall back to
// reflection without retrying the compiler).
type planInfo struct {
	p   *plan
	err error
}

// planCache is an atomic-swap type cache (go-ethereum's
// rlp/typecache.go idiom): readers Load the current map with no
// locks; the writer path serializes on mu, copies the map, inserts,
// and Stores the copy. After warmup every lookup is a single atomic
// load plus a map read.
type planCache struct {
	cur atomic.Value // map[reflect.Type]*planInfo
	mu  sync.Mutex
}

var thePlanCache planCache

// cachedPlan returns the compiled plan for typ, compiling and caching
// it on first use.
func cachedPlan(typ reflect.Type) (*plan, error) {
	m, _ := thePlanCache.cur.Load().(map[reflect.Type]*planInfo)
	if info := m[typ]; info != nil {
		return info.p, info.err
	}
	return thePlanCache.generate(typ)
}

func (c *planCache) generate(typ reflect.Type) (*plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, _ := c.cur.Load().(map[reflect.Type]*planInfo)
	if info := cur[typ]; info != nil {
		// Raced with another writer between Load and Lock.
		return info.p, info.err
	}
	cc := &compileCtx{inProgress: make(map[reflect.Type]*plan)}
	p, err := cc.compile(typ)
	next := make(map[reflect.Type]*planInfo, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if err != nil {
		next[typ] = &planInfo{err: err}
	} else {
		// Every type reached during a successful compile is complete;
		// registering them all saves recompiling shared message
		// substructures (Endpoint, Cap, ...) on their own first use.
		for t, sub := range cc.inProgress {
			next[t] = &planInfo{p: sub}
		}
	}
	c.cur.Store(next)
	return p, err
}
