package rlp

import (
	"bytes"
	"io"
	"math/big"
	"reflect"
	"testing"
)

// Differential tests: the compiled-plan codec against the reflection
// oracle. Every target decodes the same input twice (DecodeBytes with
// plans on vs OracleDecodeBytes), requires identical outcomes and
// values, then re-encodes both results and requires identical bytes.
// For types without custom codecs the error text must match too —
// the plan decoder reproduces the Stream error taxonomy exactly.

// hashOrNum mirrors eth.HashOrNumber: a custom Encoder/Decoder that
// picks its wire shape (32-byte string vs integer) at runtime.
type hashOrNum struct {
	Hash   [32]byte
	Number uint64
	IsHash bool
}

func (h *hashOrNum) EncodeRLP(w io.Writer) error {
	if h.IsHash {
		return Encode(w, h.Hash)
	}
	return Encode(w, h.Number)
}

func (h *hashOrNum) DecodeRLP(s *Stream) error {
	kind, size, err := s.Kind()
	if err != nil {
		return err
	}
	if kind == String && size == 32 {
		h.IsHash = true
		return s.Decode(&h.Hash)
	}
	h.IsHash = false
	return s.Decode(&h.Number)
}

// customWrap embeds the custom codec by value (pointer-receiver
// Encoder used on an addressable value), by pointer (nil and
// non-nil), and next to plain fields.
type customWrap struct {
	Pre  uint64
	H    hashOrNum
	P    *hashOrNum
	Post string
}

// bigLike exercises both big.Int shapes plus a tail of pointers.
type bigLike struct {
	A *big.Int
	B big.Int
	C []*big.Int `rlp:"tail"`
}

// ptrLike exercises nil-pointer round-trips across element kinds.
type ptrLike struct {
	P *capLike
	N *[]uint64
	R *[4]byte
	U *uint64
	S *string
}

// optLike exercises trailing-optional omission.
type optLike struct {
	A uint64
	B uint64 `rlp:"optional"`
	C []byte `rlp:"optional"`
}

// ifaceLike exercises the dynamic (empty-interface) ops.
type ifaceLike struct {
	V any
	W []any
}

// diffDecode runs one decode through both backends and fails on any
// divergence. strictErr additionally requires identical error text
// (custom DecodeRLP implementations run on a sub-stream in the plan
// path, so their exotic truncation errors may differ in identity
// while still agreeing on failure).
func diffDecode(t *testing.T, data []byte, fast, oracle any, strictErr bool) bool {
	t.Helper()
	errF := DecodeBytes(data, fast)
	errO := OracleDecodeBytes(data, oracle)
	if (errF == nil) != (errO == nil) {
		t.Fatalf("decode outcome diverged for %T\ninput: %x\nplan:   %v\noracle: %v", fast, data, errF, errO)
	}
	if errF != nil {
		if strictErr && errF.Error() != errO.Error() {
			t.Fatalf("decode error diverged for %T\ninput: %x\nplan:   %v\noracle: %v", fast, data, errF, errO)
		}
		return false
	}
	if !reflect.DeepEqual(fast, oracle) {
		t.Fatalf("decoded values diverged for %T\ninput: %x\nplan:   %#v\noracle: %#v", fast, data, fast, oracle)
	}
	encF, errF2 := EncodeToBytes(fast)
	encO, errO2 := OracleEncodeToBytes(oracle)
	if (errF2 == nil) != (errO2 == nil) {
		t.Fatalf("re-encode outcome diverged for %T: plan %v, oracle %v", fast, errF2, errO2)
	}
	if errF2 == nil && !bytes.Equal(encF, encO) {
		t.Fatalf("re-encoded bytes diverged for %T\nplan:   %x\noracle: %x", fast, encF, encO)
	}
	return true
}

func addOracleSeeds(f *testing.F, vals ...any) {
	f.Helper()
	for _, v := range vals {
		enc, err := OracleEncodeToBytes(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
}

func FuzzPlanVsOracleStruct(f *testing.F) {
	u := uint64(7)
	addOracleSeeds(f,
		&helloLike{Version: 5, Name: "plan", Caps: []capLike{{"eth", 63}, {"snap", 1}}, Port: 30303},
		&helloLike{Rest: []RawValue{{0x80}, {0xC0}}},
		&optLike{A: 1},
		&optLike{A: 1, B: 2, C: []byte{3}},
		&ptrLike{U: &u, S: new(string)},
		&ifaceLike{V: []byte("x"), W: []any{[]byte{1}, []any{}}},
	)
	f.Add([]byte{0xC0})
	f.Add([]byte{0xC5, 0x01, 0x80, 0xC0, 0x82, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		diffDecode(t, data, new(helloLike), new(helloLike), true)
		diffDecode(t, data, new(optLike), new(optLike), true)
		diffDecode(t, data, new(ptrLike), new(ptrLike), true)
		diffDecode(t, data, new(ifaceLike), new(ifaceLike), true)
	})
}

func FuzzPlanVsOracleSlice(f *testing.F) {
	addOracleSeeds(f,
		[]uint64{0, 1, 127, 128, 1 << 40},
		[][]byte{{}, {0x80}, bytes.Repeat([]byte{0xAA}, 60)},
		[]capLike{{"eth", 62}, {"les", 2}},
		[4]uint16{1, 2, 3, 4},
		[][2]byte{{1, 2}, {3, 4}},
		[]string{"", "a", "hello world"},
	)
	f.Add([]byte{0xC3, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		diffDecode(t, data, new([]uint64), new([]uint64), true)
		diffDecode(t, data, new([][]byte), new([][]byte), true)
		diffDecode(t, data, new([]capLike), new([]capLike), true)
		diffDecode(t, data, new([4]uint16), new([4]uint16), true)
		diffDecode(t, data, new([][2]byte), new([][2]byte), true)
		diffDecode(t, data, new([]string), new([]string), true)
	})
}

func FuzzPlanVsOracleBigInt(f *testing.F) {
	big1 := new(big.Int).Lsh(big.NewInt(1), 255)
	addOracleSeeds(f,
		big.NewInt(0),
		big.NewInt(127),
		big1,
		&bigLike{A: big1, B: *big.NewInt(56), C: []*big.Int{big.NewInt(1), big1}},
	)
	f.Add([]byte{0x00})       // non-canonical zero
	f.Add([]byte{0x81, 0x00}) // leading zero byte
	f.Fuzz(func(t *testing.T, data []byte) {
		diffDecode(t, data, new(big.Int), new(big.Int), true)
		aF, aO := new(*big.Int), new(*big.Int)
		diffDecode(t, data, aF, aO, true)
		diffDecode(t, data, new(bigLike), new(bigLike), true)
	})
}

func FuzzPlanVsOracleCustom(f *testing.F) {
	hashed := hashOrNum{IsHash: true}
	copy(hashed.Hash[:], bytes.Repeat([]byte{0xEE}, 32))
	addOracleSeeds(f,
		&hashOrNum{Number: 1234},
		&hashed,
		&customWrap{Pre: 9, H: hashed, P: &hashOrNum{Number: 7}, Post: "tail"},
		&customWrap{},
	)
	f.Add([]byte{0xC0})
	f.Fuzz(func(t *testing.T, data []byte) {
		diffDecode(t, data, new(hashOrNum), new(hashOrNum), false)
		diffDecode(t, data, new(customWrap), new(customWrap), false)
	})
}

// TestPlanMatchesOracle is the deterministic core of the differential
// suite: encode a broad table of values through both backends, then
// decode the canonical bytes back through both and compare.
func TestPlanMatchesOracle(t *testing.T) {
	u := uint64(42)
	str := "addr"
	big1 := new(big.Int).Lsh(big.NewInt(99), 200)
	hashed := hashOrNum{IsHash: true}
	hashed.Hash[0] = 0x7F
	vals := []any{
		uint8(0), uint16(300), uint32(1 << 20), uint64(1 << 50), uint(7), true, false,
		"", "x", "a longer string that needs a multi-byte header because it is over fifty-five bytes long....",
		[]byte{}, []byte{0x01}, bytes.Repeat([]byte{0xAB}, 100),
		[4]byte{1, 2, 3, 4}, [1]byte{0x7F}, [0]byte{},
		[]uint64{}, []uint64{1, 2, 3},
		[][]string{{"a"}, {}},
		RawValue{0xC2, 0x01, 0x02},
		big.NewInt(0), big.NewInt(55), big.NewInt(56), big1,
		&helloLike{Version: 5, Name: "geth", Caps: []capLike{{"eth", 63}}, Port: 30303,
			Rest: []RawValue{{0x01}}},
		&optLike{A: 1}, &optLike{A: 1, B: 2}, &optLike{A: 1, B: 0, C: []byte{9}},
		&ptrLike{}, &ptrLike{U: &u, S: &str, R: &[4]byte{4, 3, 2, 1}},
		&bigLike{A: big1, C: []*big.Int{}},
		&hashOrNum{Number: 88}, &hashed,
		&customWrap{Pre: 1, H: hashed, Post: "p"},
		&ifaceLike{V: []byte{}, W: []any{[]byte{0x30}}},
	}
	for _, v := range vals {
		encF, errF := EncodeToBytes(v)
		encO, errO := OracleEncodeToBytes(v)
		if (errF == nil) != (errO == nil) {
			t.Fatalf("encode outcome diverged for %T: plan %v, oracle %v", v, errF, errO)
		}
		if errF != nil {
			continue
		}
		if !bytes.Equal(encF, encO) {
			t.Fatalf("encoded bytes diverged for %T (%#v)\nplan:   %x\noracle: %x", v, v, encF, encO)
		}
		typ := reflect.TypeOf(v)
		if typ.Kind() == reflect.Pointer {
			typ = typ.Elem()
		}
		fast := reflect.New(typ).Interface()
		oracle := reflect.New(typ).Interface()
		diffDecode(t, encF, fast, oracle, true)
	}
}

// TestPlanErrorParity pins the decoder sentinels through the plan
// path against hostile inputs (the same table decode_test.go checks),
// by requiring identical error text from both backends.
func TestPlanErrorParity(t *testing.T) {
	inputs := []string{
		"", "00", "01", "8100", "817F", "81FF", "820011", "B800", "B90037", "F80102",
		"C0", "C101", "C2820505", "83", "C3", "84646F67", "83646F67",
		"89FFFFFFFFFFFFFFFFFF", "820100", "0105", "C28080",
		"F7" + "C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0C0",
	}
	targets := []func() (any, any){
		func() (any, any) { return new(uint64), new(uint64) },
		func() (any, any) { return new(uint8), new(uint8) },
		func() (any, any) { return new(string), new(string) },
		func() (any, any) { return new([]byte), new([]byte) },
		func() (any, any) { return new([]uint), new([]uint) },
		func() (any, any) { return new([2]byte), new([2]byte) },
		func() (any, any) { return new(bool), new(bool) },
		func() (any, any) { return new(big.Int), new(big.Int) },
		func() (any, any) { return new(helloLike), new(helloLike) },
		func() (any, any) { return new(RawValue), new(RawValue) },
		func() (any, any) { return new(any), new(any) },
	}
	for _, hexIn := range inputs {
		data := mustHex(hexIn)
		for _, mk := range targets {
			fast, oracle := mk()
			diffDecode(t, data, fast, oracle, true)
		}
	}
}
