package rlp

import (
	"bytes"
	"errors"
	"io"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDecodeVectorsRoundTrip(t *testing.T) {
	// Every encoding vector must decode back to the original value.
	for i, test := range encTests {
		rv := reflect.ValueOf(test.val)
		if !rv.IsValid() || rv.Kind() == reflect.Pointer && rv.IsNil() {
			continue // nil pointers round-trip to nil; handled separately
		}
		enc := mustHex(test.want)
		target := reflect.New(rv.Type())
		if err := DecodeBytes(enc, target.Interface()); err != nil {
			t.Errorf("test %d (%s): decode error: %v", i, test.want, err)
			continue
		}
		got := target.Elem().Interface()
		if !reflect.DeepEqual(got, test.val) {
			// big.Int needs Cmp, not DeepEqual of internals.
			if bi, ok := test.val.(*big.Int); ok {
				if gbi, ok2 := got.(*big.Int); ok2 && gbi.Cmp(bi) == 0 {
					continue
				}
			}
			if b, ok := test.val.([]byte); ok && len(b) == 0 {
				if gb, ok2 := got.([]byte); ok2 && len(gb) == 0 {
					continue
				}
			}
			t.Errorf("test %d: round trip %#v -> %#v", i, test.val, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		input string
		into  any
		want  error
	}{
		// Non-canonical single byte as string size.
		{"8100", ptr([]byte{}), ErrCanonSize},
		{"817f", ptr([]byte{}), ErrCanonSize},
		// Leading zero in integer.
		{"820011", ptr(uint64(0)), ErrCanonInt},
		{"00", ptr(uint64(0)), ErrCanonInt},
		// Non-minimal length-of-length.
		{"b800", ptr([]byte{}), ErrCanonSize},
		{"b90037", ptr([]byte{}), ErrCanonSize},
		{"f80102", ptr([]uint{}), ErrCanonSize},
		// Kind mismatches.
		{"c0", ptr(uint64(0)), ErrExpectedString},
		{"c0", ptr([]byte{}), ErrExpectedString},
		{"c0", ptr(""), ErrExpectedString},
		{"83646f67", ptr([]uint{}), ErrExpectedList},
		// Overflow.
		{"89ffffffffffffffffff", ptr(uint64(0)), ErrUintOverflow},
		{"8180", ptr(uint8(0)), nil}, // 128 fits a uint8
		{"820100", ptr(uint8(0)), ErrUintOverflow},
		// Truncated input: the announced size exceeds the input.
		{"83", ptr([]byte{}), ErrValueTooLarge},
		{"c3", ptr([]uint{}), ErrValueTooLarge},
		// Element larger than containing list.
		{"c2820505", ptr([]uint{}), ErrElemTooLarge},
	}
	for _, test := range tests {
		err := DecodeBytes(mustHex(test.input), test.into)
		if test.want == nil {
			if err != nil {
				t.Errorf("input %s: unexpected error %v", test.input, err)
			}
			continue
		}
		if !errors.Is(err, test.want) {
			t.Errorf("input %s into %T: got %v, want %v", test.input, test.into, err, test.want)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	var x uint64
	err := DecodeBytes(mustHex("0105"), &x)
	if !errors.Is(err, ErrMoreThanOneValue) {
		t.Errorf("got %v, want ErrMoreThanOneValue", err)
	}
}

func TestDecodeIntoNil(t *testing.T) {
	if err := DecodeBytes(mustHex("01"), nil); err == nil {
		t.Error("expected error decoding into nil")
	}
	var p *uint64
	if err := DecodeBytes(mustHex("01"), p); err == nil {
		t.Error("expected error decoding into nil pointer")
	}
	var x uint64
	if err := DecodeBytes(mustHex("01"), x); err == nil {
		t.Error("expected error decoding into non-pointer")
	}
}

func TestDecodeStruct(t *testing.T) {
	type inner struct {
		X uint
	}
	type outer struct {
		A uint
		B string
		C inner
		D []uint
	}
	enc, err := EncodeToBytes(outer{7, "hi", inner{9}, []uint{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var got outer
	if err := DecodeBytes(enc, &got); err != nil {
		t.Fatal(err)
	}
	want := outer{7, "hi", inner{9}, []uint{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestDecodeStructErrors(t *testing.T) {
	type two struct{ A, B uint }
	// Too few elements.
	if err := DecodeBytes(mustHex("c101"), &two{}); err == nil {
		t.Error("expected error for short list")
	}
	// Too many elements.
	if err := DecodeBytes(mustHex("c3010203"), &two{}); err == nil {
		t.Error("expected error for long list")
	}
}

func TestDecodeOptionalFields(t *testing.T) {
	type withOpt struct {
		A uint
		B uint `rlp:"optional"`
	}
	var v withOpt
	if err := DecodeBytes(mustHex("c101"), &v); err != nil {
		t.Fatal(err)
	}
	if v.A != 1 || v.B != 0 {
		t.Errorf("got %+v", v)
	}
	if err := DecodeBytes(mustHex("c20102"), &v); err != nil {
		t.Fatal(err)
	}
	if v.A != 1 || v.B != 2 {
		t.Errorf("got %+v", v)
	}
}

func TestDecodeTailField(t *testing.T) {
	type withTail struct {
		A    uint
		Rest []uint `rlp:"tail"`
	}
	var v withTail
	if err := DecodeBytes(mustHex("c3010203"), &v); err != nil {
		t.Fatal(err)
	}
	if v.A != 1 || !reflect.DeepEqual(v.Rest, []uint{2, 3}) {
		t.Errorf("got %+v", v)
	}
	// Empty tail is fine.
	if err := DecodeBytes(mustHex("c101"), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Rest) != 0 {
		t.Errorf("got %+v", v)
	}
}

func TestDecodeByteArray(t *testing.T) {
	var a [4]byte
	if err := DecodeBytes(mustHex("8401020304"), &a); err != nil {
		t.Fatal(err)
	}
	if a != [4]byte{1, 2, 3, 4} {
		t.Errorf("got %x", a)
	}
	// Wrong size.
	if err := DecodeBytes(mustHex("83010203"), &a); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestDecodeInterface(t *testing.T) {
	var v any
	if err := DecodeBytes(mustHex("c88363617483646f67"), &v); err != nil {
		t.Fatal(err)
	}
	list, ok := v.([]any)
	if !ok || len(list) != 2 {
		t.Fatalf("got %#v", v)
	}
	if string(list[0].([]byte)) != "cat" || string(list[1].([]byte)) != "dog" {
		t.Errorf("got %#v", v)
	}
}

func TestDecodePointerReuse(t *testing.T) {
	var p *uint64
	if err := DecodeBytes(mustHex("05"), &p); err != nil {
		t.Fatal(err)
	}
	if p == nil || *p != 5 {
		t.Errorf("got %v", p)
	}
	// Empty value resets to nil.
	if err := DecodeBytes(mustHex("80"), &p); err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Errorf("got %v, want nil", *p)
	}
}

func TestStreamList(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("c50183040404")), 0)
	size, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if size != 5 {
		t.Errorf("size = %d, want 5", size)
	}
	if v, _ := s.Uint64(); v != 1 {
		t.Errorf("first elem = %d", v)
	}
	if b, _ := s.Bytes(); !bytes.Equal(b, []byte{4, 4, 4}) {
		t.Errorf("second elem = %x", b)
	}
	if _, _, err := s.Kind(); err != EOL {
		t.Errorf("expected EOL, got %v", err)
	}
	if err := s.ListEnd(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Kind(); err != io.EOF {
		t.Errorf("expected EOF after top-level value, got %v", err)
	}
}

func TestStreamSkip(t *testing.T) {
	// [1, [2,3], "dog"] — skip the nested list.
	enc, _ := EncodeToBytes([]any{uint(1), []uint{2, 3}, "dog"})
	s := NewStream(bytes.NewReader(enc), 0)
	if _, err := s.List(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Uint64(); v != 1 {
		t.Fatal("bad first element")
	}
	if err := s.Skip(); err != nil {
		t.Fatal(err)
	}
	b, err := s.Bytes()
	if err != nil || string(b) != "dog" {
		t.Fatalf("got %q, %v", b, err)
	}
}

func TestStreamRaw(t *testing.T) {
	enc := mustHex("c88363617483646f67")
	s := NewStream(bytes.NewReader(enc), 0)
	raw, err := s.Raw()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, enc) {
		t.Errorf("got %x, want %x", raw, enc)
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream(bytes.NewReader(mustHex("01")), 0)
	if v, _ := s.Uint64(); v != 1 {
		t.Fatal("bad")
	}
	s.Reset(bytes.NewReader(mustHex("02")), 0)
	if v, _ := s.Uint64(); v != 2 {
		t.Fatal("bad after reset")
	}
}

func TestCountValues(t *testing.T) {
	n, err := CountValues(mustHex("0102c20304"))
	if err != nil || n != 3 {
		t.Errorf("got %d, %v", n, err)
	}
}

func TestSplitList(t *testing.T) {
	content, rest, err := SplitList(mustHex("c2010205"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(content, []byte{1, 2}) || !bytes.Equal(rest, []byte{5}) {
		t.Errorf("content %x rest %x", content, rest)
	}
	if _, _, err := SplitList(mustHex("83010203")); err != ErrExpectedList {
		t.Errorf("got %v", err)
	}
}

func TestSplitString(t *testing.T) {
	content, rest, err := SplitString(mustHex("83646f6701"))
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "dog" || !bytes.Equal(rest, []byte{1}) {
		t.Errorf("content %q rest %x", content, rest)
	}
}

// Property: uint64 values always round-trip.
func TestQuickUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc, err := EncodeToBytes(v)
		if err != nil {
			return false
		}
		var out uint64
		if err := DecodeBytes(enc, &out); err != nil {
			return false
		}
		return out == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: byte strings always round-trip.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		enc, err := EncodeToBytes(b)
		if err != nil {
			return false
		}
		var out []byte
		if err := DecodeBytes(enc, &out); err != nil {
			return false
		}
		return bytes.Equal(out, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: big integers (non-negative) round-trip.
func TestQuickBigIntRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		v := new(big.Int).SetBytes(b)
		enc, err := EncodeToBytes(v)
		if err != nil {
			return false
		}
		out := new(big.Int)
		if err := DecodeBytes(enc, &out); err != nil {
			return false
		}
		return out.Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: nested string slices round-trip.
func TestQuickStringSliceRoundTrip(t *testing.T) {
	f := func(v []string) bool {
		enc, err := EncodeToBytes(v)
		if err != nil {
			return false
		}
		var out []string
		if err := DecodeBytes(enc, &out); err != nil {
			return false
		}
		if len(out) != len(v) {
			return false
		}
		for i := range v {
			if out[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the decoder never panics on arbitrary input bytes.
func TestQuickDecoderNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		var s []any
		_ = DecodeBytes(b, &s) // must not panic
		var u uint64
		_ = DecodeBytes(b, &u)
		var raw RawValue
		_ = DecodeBytes(b, &raw)
	}
}

// Property: struct encoding equals the encoding of its field list.
func TestQuickStructFieldEquivalence(t *testing.T) {
	f := func(a uint64, b []byte, c string) bool {
		type s struct {
			A uint64
			B []byte
			C string
		}
		e1, err1 := EncodeToBytes(s{a, b, c})
		e2, err2 := EncodeToBytes([]any{a, b, c})
		return err1 == nil && err2 == nil && bytes.Equal(e1, e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeDeeplyNested(t *testing.T) {
	// 2000 nested lists must be rejected, not overflow the stack.
	b := bytes.Repeat([]byte{0xC1}, 2000)
	b = append(b, 0xC0)
	var v any
	if err := DecodeBytes(b, &v); err == nil {
		t.Error("expected nesting depth error")
	}
}

func BenchmarkDecodeIntSlice(b *testing.B) {
	vals := make([]uint64, 128)
	for i := range vals {
		vals[i] = uint64(i * 7777)
	}
	enc, _ := EncodeToBytes(vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out []uint64
		if err := DecodeBytes(enc, &out); err != nil {
			b.Fatal(err)
		}
	}
}
