package rlp

import (
	"bytes"
	"reflect"
)

// Differential-oracle entry points: the original reflection codec
// with no compiled plans and no pooling, byte-for-byte the seed
// behavior. Fuzz targets and the wire benchmarks run the fast path
// against these — any divergence in output bytes, decoded values, or
// success/failure is a bug in the plan layer. The pattern matches
// internal/crypto/secp256k1's math/big oracle backend.

// OracleEncodeToBytes is EncodeToBytes on the pure reflection
// walker.
func OracleEncodeToBytes(v any) ([]byte, error) {
	buf := newEncBuffer()
	if err := buf.encode(reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return buf.finish(), nil
}

// OracleDecodeBytes is DecodeBytes on a fresh reflection Stream.
func OracleDecodeBytes(b []byte, v any) error {
	s := NewStream(bytes.NewReader(b), uint64(len(b)))
	if err := s.Decode(v); err != nil {
		return err
	}
	if s.remaining() > 0 {
		return ErrMoreThanOneValue
	}
	return nil
}
