package rlp

import (
	"fmt"
	"math/big"
	"reflect"
)

// A plan is a precompiled codec program for one Go type: the
// reflection walk (tag parsing, kind switches, interface checks) runs
// once per type in the compiler below, and the interpreters in this
// file and plan_decode.go then execute a flat op dispatch per value.
// The op set mirrors the reflection walker's dispatch order exactly —
// including its asymmetries, such as byte slices whose element type
// implements Encoder encoding as lists but decoding as byte strings —
// so the two backends are byte-for-byte interchangeable. Differential
// fuzz targets (plan_diff_test.go) hold them to that.

type op uint8

const (
	opInvalid    op = iota
	opRaw           // RawValue: spliced/copied verbatim
	opUint          // uint8..uint64, uint, uintptr
	opBool          // bool
	opString        // string
	opBytes         // []byte (and named byte-slice types)
	opByteArray     // [N]byte
	opBigIntPtr     // *big.Int
	opBigIntVal     // big.Int
	opList          // non-byte slice or array
	opStruct        // struct: list of RLP-visible fields
	opPtr           // pointer (nil ⇄ empty value)
	opIface         // empty interface; non-empty handled by dispatch
	opCustom        // type itself implements Encoder / *T implements Decoder
	opCustomAddr    // encode only: *T implements Encoder, T used by value
)

// plan is one node of the compiled codec program. Encode and decode
// ops can differ for the same type (custom codecs on one side only,
// the byte-slice asymmetry above), so both are stored.
type plan struct {
	typ   reflect.Type
	encOp op
	decOp op

	elem   *plan       // opList element, opPtr target
	fields []planField // opStruct

	bits    int  // opUint: target width in bits
	nilByte byte // opPtr encode: 0x80 or 0xC0 for a nil pointer
	ptrKind bool // opCustom encode: nil pointer writes an empty list

	// empty is a shared zero-length slice of the plan's type, set for
	// slice-kind opList plans. Decoding an empty list assigns it
	// directly instead of allocating a fresh slice header per decode;
	// with len == cap == 0 the shared backing is inert.
	empty reflect.Value
}

// planField is one RLP-visible struct field. For tail fields, p is
// the plan of the slice *element* type (tail elements splice into the
// enclosing list) and typ is the slice type itself.
type planField struct {
	index    int
	name     string
	tail     bool
	optional bool
	typ      reflect.Type
	p        *plan
	empty    reflect.Value // tail only: shared zero-length slice of typ
}

// compileCtx tracks in-progress plans so recursive types (a struct
// containing a slice of itself) compile to a cyclic plan graph
// instead of recursing forever. Depth limits are enforced at run
// time, exactly like the reflection walker.
type compileCtx struct {
	inProgress map[reflect.Type]*plan
}

func (cc *compileCtx) compile(typ reflect.Type) (*plan, error) {
	if p := cc.inProgress[typ]; p != nil {
		return p, nil
	}
	p := &plan{typ: typ}
	cc.inProgress[typ] = p
	if err := cc.fill(p, typ); err != nil {
		delete(cc.inProgress, typ)
		return nil, err
	}
	return p, nil
}

var bigIntValType = bigIntType.Elem()

// fill resolves the encode and decode ops for typ and compiles any
// child plans. Any unsupported corner returns an error, which the
// cache records so the whole type permanently falls back to the
// reflection walker — behavior there is identical by construction,
// just slower.
func (cc *compileCtx) fill(p *plan, typ reflect.Type) error {
	kind := typ.Kind()

	// Encode op, in the reflection walker's dispatch order.
	switch {
	case typ == rawValueType:
		p.encOp = opRaw
	case typ.Implements(encoderType):
		p.encOp = opCustom
		p.ptrKind = kind == reflect.Pointer
	case kind != reflect.Pointer && reflect.PointerTo(typ).Implements(encoderType) && typ != bigIntValType:
		p.encOp = opCustomAddr
	case typ == bigIntType:
		p.encOp = opBigIntPtr
	case kind != reflect.Pointer && reflect.PointerTo(typ) == bigIntType:
		p.encOp = opBigIntVal
	default:
		switch kind {
		case reflect.Bool:
			p.encOp = opBool
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
			p.encOp = opUint
		case reflect.String:
			p.encOp = opString
		case reflect.Slice:
			if typ.Elem().Kind() == reflect.Uint8 && !typ.Elem().Implements(encoderType) {
				p.encOp = opBytes
			} else {
				p.encOp = opList
			}
		case reflect.Array:
			if isByteArray(typ) {
				p.encOp = opByteArray
			} else {
				p.encOp = opList
			}
		case reflect.Struct:
			p.encOp = opStruct
		case reflect.Pointer:
			p.encOp = opPtr
		case reflect.Interface:
			p.encOp = opIface
		default:
			return fmt.Errorf("rlp: type %v is not RLP-serializable", typ)
		}
	}

	// Decode op, mirroring Stream.decodeValue.
	switch {
	case typ == rawValueType:
		p.decOp = opRaw
	case reflect.PointerTo(typ).Implements(decoderType):
		p.decOp = opCustom
	case typ == bigIntType:
		p.decOp = opBigIntPtr
	case kind != reflect.Pointer && reflect.PointerTo(typ) == bigIntType:
		p.decOp = opBigIntVal
	default:
		switch kind {
		case reflect.Bool:
			p.decOp = opBool
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
			p.decOp = opUint
			p.bits = typ.Bits()
		case reflect.String:
			p.decOp = opString
		case reflect.Slice:
			if typ.Elem().Kind() == reflect.Uint8 {
				p.decOp = opBytes
			} else {
				p.decOp = opList
			}
		case reflect.Array:
			if isByteArray(typ) {
				p.decOp = opByteArray
			} else {
				p.decOp = opList
			}
		case reflect.Struct:
			p.decOp = opStruct
		case reflect.Pointer:
			p.decOp = opPtr
		case reflect.Interface:
			if typ.NumMethod() != 0 {
				return fmt.Errorf("rlp: cannot decode into non-empty interface %v", typ)
			}
			p.decOp = opIface
		default:
			return fmt.Errorf("rlp: type %v is not RLP-deserializable", typ)
		}
	}

	// Children, by structural kind.
	if p.encOp == opList || p.decOp == opList {
		elem, err := cc.compile(typ.Elem())
		if err != nil {
			return err
		}
		p.elem = elem
		if p.decOp == opList && kind == reflect.Slice {
			p.empty = reflect.MakeSlice(typ, 0, 0)
		}
	}
	if p.encOp == opPtr || p.decOp == opPtr {
		elem, err := cc.compile(typ.Elem())
		if err != nil {
			return err
		}
		p.elem = elem
		p.nilByte = nilPointerByte(typ.Elem())
	}
	if p.encOp == opStruct || p.decOp == opStruct {
		infos, err := structFields(typ)
		if err != nil {
			return err
		}
		p.fields = make([]planField, 0, len(infos))
		for _, fi := range infos {
			ftyp := typ.Field(fi.index).Type
			ctyp := ftyp
			if fi.tail {
				ctyp = ftyp.Elem()
			}
			fp, err := cc.compile(ctyp)
			if err != nil {
				return err
			}
			pf := planField{
				index:    fi.index,
				name:     fi.name,
				tail:     fi.tail,
				optional: fi.optional,
				typ:      ftyp,
				p:        fp,
			}
			if fi.tail {
				pf.empty = reflect.MakeSlice(ftyp, 0, 0)
			}
			p.fields = append(p.fields, pf)
		}
	}
	return nil
}

// bigWordBytes is the byte width of a big.Word on this platform.
const bigWordBytes = (32 << (uint64(^big.Word(0)) >> 63)) / 8

// writeBigIntFast is writeBigInt without the i.Bytes() allocation for
// integers wider than 64 bits: the words are serialized big-endian
// straight into the buffer's string data. Output bytes are identical
// to writeBigInt (the differential fuzz targets hold both backends to
// that); only the reflection oracle keeps the allocating form.
func (buf *encBuffer) writeBigIntFast(i *big.Int) error {
	if i == nil {
		buf.writeByte(0x80)
		return nil
	}
	if i.Sign() < 0 {
		return ErrNegativeBigInt
	}
	bitlen := i.BitLen()
	if bitlen <= 64 {
		buf.writeUint(i.Uint64())
		return nil
	}
	n := (bitlen + 7) / 8
	buf.writeHead(0x80, n)
	// The append(…, make(…)…) form extends in place without a
	// temporary.
	//lint:ignore boundedalloc egress buffer: n is the byte length of a big.Int we are encoding ourselves, not peer input
	buf.str = append(buf.str, make([]byte, n)...)
	out := buf.str[len(buf.str)-n:]
	idx := n
	for _, w := range i.Bits() {
		for j := 0; j < bigWordBytes && idx > 0; j++ {
			idx--
			out[idx] = byte(w)
			w >>= 8
		}
	}
	return nil
}

// nilPointerByte is encodeNilPointer as data: the empty value written
// for a nil pointer of the given element type.
func nilPointerByte(elem reflect.Type) byte {
	switch {
	case elem.Kind() == reflect.Struct && elem != bigIntValType:
		return 0xC0
	case elem.Kind() == reflect.Slice && elem.Elem().Kind() != reflect.Uint8:
		return 0xC0
	case elem.Kind() == reflect.Array && !isByteArray(elem):
		return 0xC0
	default:
		return 0x80
	}
}

// encodeValue is the codec entry point used by Encode/EncodeToBytes/
// EncodeAppend: the compiled plan when the backend is enabled and the
// type compiles, the reflection walker otherwise.
func (buf *encBuffer) encodeValue(v reflect.Value) error {
	if PlanCodecEnabled() && v.IsValid() {
		if p, err := cachedPlan(v.Type()); err == nil {
			return buf.encodePlan(p, v)
		}
	}
	return buf.encode(v)
}

// encodePlan executes the encode side of a compiled plan against v,
// writing into buf exactly what the reflection walker would.
func (buf *encBuffer) encodePlan(p *plan, v reflect.Value) error {
	if buf.depth > maxEncodeDepth {
		return fmt.Errorf("rlp: encode nesting exceeds %d levels", maxEncodeDepth)
	}
	switch p.encOp {
	case opRaw:
		buf.write(v.Bytes())
		return nil

	case opCustom:
		if p.ptrKind && v.IsNil() {
			buf.writeByte(0xC0)
			return nil
		}
		// EncodeRLP writes fully-encoded bytes; the buffer itself is
		// the io.Writer, so they land in place with no capture copy.
		// On error the whole encode is abandoned, so partial writes
		// are unobservable.
		return v.Interface().(Encoder).EncodeRLP(buf)

	case opCustomAddr:
		pv := v
		if v.CanAddr() {
			pv = v.Addr()
		} else {
			pv = reflect.New(p.typ)
			pv.Elem().Set(v)
		}
		return pv.Interface().(Encoder).EncodeRLP(buf)

	case opBigIntPtr:
		return buf.writeBigIntFast(v.Interface().(*big.Int))

	case opBigIntVal:
		if v.CanAddr() {
			return buf.writeBigIntFast(v.Addr().Interface().(*big.Int))
		}
		i := v.Interface().(big.Int)
		return buf.writeBigIntFast(&i)

	case opBool:
		if v.Bool() {
			buf.writeByte(0x01)
		} else {
			buf.writeByte(0x80)
		}
		return nil

	case opUint:
		buf.writeUint(v.Uint())
		return nil

	case opString:
		buf.writeStr(v.String())
		return nil

	case opBytes:
		buf.writeString(v.Bytes())
		return nil

	case opByteArray:
		if !v.CanAddr() {
			// Copy so Bytes is legal on unaddressable arrays.
			cp := reflect.New(p.typ).Elem()
			cp.Set(v)
			v = cp
		}
		// Value.Bytes on the addressable array directly: unlike
		// Slice(0, n).Bytes() it does not heap-allocate a slice
		// header.
		buf.writeString(v.Bytes())
		return nil

	case opList:
		idx := buf.listStart()
		buf.depth++
		for i, n := 0, v.Len(); i < n; i++ {
			if err := buf.encodePlan(p.elem, v.Index(i)); err != nil {
				return err
			}
		}
		buf.depth--
		buf.listEnd(idx)
		return nil

	case opStruct:
		// Trailing optional zero-value fields are omitted.
		last := len(p.fields)
		for last > 0 && p.fields[last-1].optional && v.Field(p.fields[last-1].index).IsZero() {
			last--
		}
		idx := buf.listStart()
		buf.depth++
		for _, f := range p.fields[:last] {
			fv := v.Field(f.index)
			if f.tail {
				for i, n := 0, fv.Len(); i < n; i++ {
					if err := buf.encodePlan(f.p, fv.Index(i)); err != nil {
						return err
					}
				}
				continue
			}
			if err := buf.encodePlan(f.p, fv); err != nil {
				return err
			}
		}
		buf.depth--
		buf.listEnd(idx)
		return nil

	case opPtr:
		if v.IsNil() {
			buf.writeByte(p.nilByte)
			return nil
		}
		return buf.encodePlan(p.elem, v.Elem())

	case opIface:
		if v.IsNil() {
			return fmt.Errorf("rlp: cannot encode nil interface value")
		}
		// Dynamic re-dispatch on the concrete type.
		return buf.encodeValue(v.Elem())

	default:
		return fmt.Errorf("rlp: internal: no encode op for %v", p.typ)
	}
}
