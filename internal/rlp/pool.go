package rlp

import (
	"bytes"
	"sync"
)

// Pooled codec scratch. Encode buffers and fallback decode streams
// are recycled through sync.Pool so steady-state wire traffic
// allocates only the caller-visible output (the encoded []byte, the
// decoded values). Oversized buffers are dropped on return instead of
// pinning their backing arrays in the pool.

// maxPooledBuf caps the retained capacity of a recycled encode
// buffer. The wire messages this package exists for (HELLO, STATUS,
// discv4 packets) are well under 4 KiB; a one-off giant encode should
// not park megabytes in the pool.
const maxPooledBuf = 1 << 17

var encBufPool = sync.Pool{New: func() any { return new(encBuffer) }}

func getEncBuffer() *encBuffer {
	buf := encBufPool.Get().(*encBuffer)
	buf.reset()
	return buf
}

func putEncBuffer(buf *encBuffer) {
	if cap(buf.str) > maxPooledBuf {
		return
	}
	encBufPool.Put(buf)
}

// pooledStream bundles a Stream with its bytes.Reader so the
// reflection fallback and custom DecodeRLP implementations run
// without per-call allocations for the decoder machinery itself.
type pooledStream struct {
	s  Stream
	br bytes.Reader
}

var streamPool = sync.Pool{New: func() any { return new(pooledStream) }}

func getStream(b []byte) *pooledStream {
	ps := streamPool.Get().(*pooledStream)
	ps.br.Reset(b)
	ps.s.Reset(&ps.br, uint64(len(b)))
	return ps
}

func putStream(ps *pooledStream) {
	ps.br.Reset(nil) // drop the input reference while parked
	streamPool.Put(ps)
}
