package enode

import (
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/crypto/secp256k1"
)

func randomKeyID(t testing.TB, seed int64) ID {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return PubkeyID(&k.Pub)
}

func TestPubkeyIDRoundTrip(t *testing.T) {
	id := randomKeyID(t, 1)
	pub, err := id.Pubkey()
	if err != nil {
		t.Fatal(err)
	}
	if PubkeyID(pub) != id {
		t.Fatal("pubkey round trip mismatch")
	}
}

func TestPubkeyRejectsRandomID(t *testing.T) {
	// A random 64-byte string is essentially never a curve point.
	rng := rand.New(rand.NewSource(2))
	id := RandomID(rng)
	if _, err := id.Pubkey(); err == nil {
		t.Error("random ID accepted as public key")
	}
}

func TestHexID(t *testing.T) {
	id := randomKeyID(t, 3)
	parsed, err := HexID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatal("hex round trip mismatch")
	}
	// Prefixed forms.
	if p, err := HexID("0x" + id.String()); err != nil || p != id {
		t.Error("0x prefix rejected")
	}
	if p, err := HexID("enode://" + id.String()); err != nil || p != id {
		t.Error("enode:// prefix rejected")
	}
	// Invalid forms.
	if _, err := HexID("zz"); err == nil {
		t.Error("short hex accepted")
	}
	if _, err := HexID(strings.Repeat("g", 128)); err == nil {
		t.Error("non-hex accepted")
	}
}

func TestEnodeURLRoundTrip(t *testing.T) {
	id := randomKeyID(t, 4)
	n := New(id, net.ParseIP("191.235.84.50"), 30301, 30303)
	url := n.String()
	if !strings.HasPrefix(url, "enode://") {
		t.Fatalf("bad url %s", url)
	}
	if !strings.Contains(url, "discport=30301") {
		t.Fatalf("missing discport in %s", url)
	}
	back, err := ParseURL(url)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != id || back.UDP != 30301 || back.TCP != 30303 || !back.IP.Equal(n.IP) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestEnodeURLNoDiscport(t *testing.T) {
	id := randomKeyID(t, 5)
	n := New(id, net.ParseIP("10.0.0.1"), 30303, 30303)
	if strings.Contains(n.String(), "discport") {
		t.Error("discport present when equal")
	}
	back, err := ParseURL(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.UDP != 30303 {
		t.Errorf("udp = %d", back.UDP)
	}
}

func TestParseURLErrors(t *testing.T) {
	bad := []string{
		"",
		"http://foo",
		"enode://@1.2.3.4:30303",
		"enode://abcd@1.2.3.4:30303",
		"enode://" + strings.Repeat("aa", 64), // no host
		"enode://" + strings.Repeat("aa", 64) + "@nohost", // no port
		"enode://" + strings.Repeat("aa", 64) + "@1.2.3.4:99999",
		"enode://" + strings.Repeat("aa", 64) + "@1.2.3.4:30303?discport=bogus",
	}
	for _, s := range bad {
		if _, err := ParseURL(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestLogDist(t *testing.T) {
	var a, b [32]byte
	if LogDist(a, b) != 0 {
		t.Error("identical hashes should have distance 0")
	}
	b[31] = 0x01
	if d := LogDist(a, b); d != 1 {
		t.Errorf("lowest bit differs: distance %d, want 1", d)
	}
	b = [32]byte{}
	b[0] = 0x80
	if d := LogDist(a, b); d != 256 {
		t.Errorf("highest bit differs: distance %d, want 256", d)
	}
	b[0] = 0x40
	if d := LogDist(a, b); d != 255 {
		t.Errorf("second bit differs: distance %d, want 255", d)
	}
}

func TestLogDistSymmetric(t *testing.T) {
	f := func(a, b [32]byte) bool {
		return LogDist(a, b) == LogDist(b, a) && ParityLogDist(a, b) == ParityLogDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogDistTriangleish(t *testing.T) {
	// XOR metric property: d(a,c) <= max(d(a,b), d(b,c)).
	f := func(a, b, c [32]byte) bool {
		dac := LogDist(a, c)
		dab := LogDist(a, b)
		dbc := LogDist(b, c)
		maxd := dab
		if dbc > maxd {
			maxd = dbc
		}
		return dac <= maxd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityMetricDisagrees(t *testing.T) {
	// For random hashes the two metrics almost never agree; this is
	// the §6.3 incongruity. Check both the disagreement rate and the
	// distributions' very different centers.
	rng := rand.New(rand.NewSource(6))
	agree, trials := 0, 2000
	var sumG, sumP int
	for i := 0; i < trials; i++ {
		var a, b [32]byte
		rng.Read(a[:])
		rng.Read(b[:])
		g, p := LogDist(a, b), ParityLogDist(a, b)
		if g == p {
			agree++
		}
		sumG += g
		sumP += p
	}
	if agree > trials/10 {
		t.Errorf("metrics agree on %d/%d random pairs; expected rare agreement", agree, trials)
	}
	meanG, meanP := float64(sumG)/float64(trials), float64(sumP)/float64(trials)
	if meanG < 254 || meanG > 256 {
		t.Errorf("Geth metric mean %.2f, want ≈255", meanG)
	}
	if meanP < 220 || meanP > 234 {
		t.Errorf("Parity metric mean %.2f, want ≈227", meanP)
	}
}

func TestParityMetricAgreementCondition(t *testing.T) {
	// Equation (1): the metrics agree when the XOR is 2^k - 1 (all
	// low bits set), e.g. hashes differing in every bit below k.
	var a [32]byte
	for k := 1; k <= 256; k++ {
		var b [32]byte
		// b = a XOR (2^k - 1)
		for bit := 0; bit < k; bit++ {
			b[31-bit/8] |= 1 << (bit % 8)
		}
		g, p := LogDist(a, b), ParityLogDist(a, b)
		if g != k || p != k {
			t.Fatalf("k=%d: geth=%d parity=%d", k, g, p)
		}
	}
}

func TestTerminalString(t *testing.T) {
	id := randomKeyID(t, 7)
	s := id.TerminalString()
	if len(s) == 0 || len(s) >= len(id.String()) {
		t.Errorf("bad terminal string %q", s)
	}
}

func TestNodeAddrs(t *testing.T) {
	n := New(randomKeyID(t, 8), net.ParseIP("192.0.2.1"), 30301, 30303)
	if n.Addr().Port != 30301 || n.TCPAddr().Port != 30303 {
		t.Error("bad ports")
	}
	if !n.Addr().IP.Equal(net.ParseIP("192.0.2.1")) {
		t.Error("bad IP")
	}
}
