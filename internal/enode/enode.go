// Package enode defines Ethereum node identities and the enode:// URL
// scheme used to exchange node addresses.
//
// A node's identity is its 512-bit secp256k1 public key (the "node
// ID"). RLPx distance calculations operate on the Keccak-256 hash of
// the ID, not the ID itself. An enode URL carries the ID plus IP and
// port information:
//
//	enode://<128 hex chars>@10.3.58.6:30303?discport=30301
//
// The TCP port follows the colon; the optional discport query
// parameter gives the UDP discovery port when it differs.
package enode

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/crypto/keccak"
	"repro/internal/crypto/secp256k1"
)

// IDLength is the byte length of a node ID (512-bit public key).
const IDLength = 64

// ID is a node identifier: the raw X||Y public key encoding.
type ID [IDLength]byte

// Bytes returns the ID as a byte slice.
func (id ID) Bytes() []byte { return id[:] }

// String returns the full hexadecimal representation.
func (id ID) String() string { return fmt.Sprintf("%x", id[:]) }

// TerminalString returns an abbreviated form for logs.
func (id ID) TerminalString() string { return fmt.Sprintf("%x…%x", id[:4], id[60:]) }

// IsZero reports whether the ID is all zeroes.
func (id ID) IsZero() bool { return id == ID{} }

// Hash returns the Keccak-256 hash of the ID, the value RLPx distance
// is computed over.
func (id ID) Hash() [32]byte { return keccak.Sum256(id[:]) }

// PubkeyID converts a public key to a node ID.
func PubkeyID(pub *secp256k1.PublicKey) ID {
	var id ID
	copy(id[:], pub.SerializeRaw())
	return id
}

// Pubkey parses the ID back into a public key, validating that it is
// a point on the curve.
func (id ID) Pubkey() (*secp256k1.PublicKey, error) {
	return secp256k1.ParsePublicKey(id[:])
}

// HexID parses a 128-hex-character node ID, with or without an 0x or
// enode:// prefix.
func HexID(s string) (ID, error) {
	s = strings.TrimPrefix(strings.TrimPrefix(s, "enode://"), "0x")
	var id ID
	if len(s) != IDLength*2 {
		return id, fmt.Errorf("enode: ID must be %d hex chars, got %d", IDLength*2, len(s))
	}
	for i := 0; i < IDLength; i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return ID{}, fmt.Errorf("enode: invalid hex character in ID")
		}
		id[i] = hi<<4 | lo
	}
	return id, nil
}

// MustHexID is HexID that panics on error, for tests and constants.
func MustHexID(s string) ID {
	id, err := HexID(s)
	if err != nil {
		panic(err)
	}
	return id
}

func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// RandomID produces a uniformly random ID from rng. The result is
// generally not a valid curve point; it is used for lookup targets,
// matching how clients pick random discovery targets.
func RandomID(rng *rand.Rand) ID {
	var id ID
	rng.Read(id[:])
	return id
}

// Node describes a network host: identity plus addressing.
type Node struct {
	ID  ID
	IP  net.IP
	UDP uint16 // discovery port
	TCP uint16 // RLPx listening port
}

// New constructs a Node, normalizing the IP form.
func New(id ID, ip net.IP, udp, tcp uint16) *Node {
	if v4 := ip.To4(); v4 != nil {
		ip = v4
	}
	return &Node{ID: id, IP: ip, UDP: udp, TCP: tcp}
}

// Addr returns the UDP address of the node's discovery endpoint.
func (n *Node) Addr() *net.UDPAddr {
	return &net.UDPAddr{IP: n.IP, Port: int(n.UDP)}
}

// TCPAddr returns the node's RLPx endpoint.
func (n *Node) TCPAddr() *net.TCPAddr {
	return &net.TCPAddr{IP: n.IP, Port: int(n.TCP)}
}

// String encodes the node as an enode URL.
func (n *Node) String() string {
	u := url.URL{Scheme: "enode"}
	u.User = url.User(n.ID.String())
	u.Host = net.JoinHostPort(n.IP.String(), strconv.Itoa(int(n.TCP)))
	if n.UDP != n.TCP {
		u.RawQuery = "discport=" + strconv.Itoa(int(n.UDP))
	}
	return u.String()
}

// ErrInvalidURL is returned for strings that are not enode URLs.
var ErrInvalidURL = errors.New("enode: invalid enode URL")

// ParseURL decodes an enode URL into a Node.
func ParseURL(raw string) (*Node, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidURL, err)
	}
	if u.Scheme != "enode" {
		return nil, fmt.Errorf("%w: scheme %q", ErrInvalidURL, u.Scheme)
	}
	if u.User == nil {
		return nil, fmt.Errorf("%w: missing node ID", ErrInvalidURL)
	}
	id, err := HexID(u.User.String())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidURL, err)
	}
	host, portStr, err := net.SplitHostPort(u.Host)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidURL, err)
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return nil, fmt.Errorf("%w: invalid IP %q", ErrInvalidURL, host)
	}
	tcp, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("%w: invalid port %q", ErrInvalidURL, portStr)
	}
	udp := tcp
	if disc := u.Query().Get("discport"); disc != "" {
		udp, err = strconv.ParseUint(disc, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("%w: invalid discport %q", ErrInvalidURL, disc)
		}
	}
	return New(id, ip, uint16(udp), uint16(tcp)), nil
}

// MustParseURL is ParseURL that panics on error.
func MustParseURL(raw string) *Node {
	n, err := ParseURL(raw)
	if err != nil {
		panic(err)
	}
	return n
}

// LogDist returns the logarithmic XOR distance between two ID hashes
// as used by Geth: floor(log2(a XOR b)) + 1, i.e. the bit position of
// the first differing bit. Equal hashes have distance 0; the maximum
// is 256. This corresponds to the paper's "257 distinct node buckets".
func LogDist(a, b [32]byte) int {
	lz := 0
	for i := range a {
		x := a[i] ^ b[i]
		if x == 0 {
			lz += 8
			continue
		}
		for x&0x80 == 0 {
			lz++
			x <<= 1
		}
		break
	}
	return 256 - lz
}

// ParityLogDist computes the distance the way Parity v1.x did, per
// the paper's §6.3 and Appendix A: instead of taking log2 of the
// whole 256-bit XOR, Parity computed the log distance on each *byte*
// of the XOR and summed them. For uniformly random hashes the sum
// concentrates around 32·E[bitlen(byte)] ≈ 227 instead of Geth's
// geometric concentration at 256, so the two clients fundamentally
// disagree about which nodes are "close" (Figure 11). The metrics
// coincide only for values of the form y = 2^ld_G(x,0) − 1 (Eq. 1).
func ParityLogDist(a, b [32]byte) int {
	ret := 0
	for i := 0; i < 32; i++ {
		v := a[i] ^ b[i]
		for v != 0 {
			v >>= 1
			ret++
		}
	}
	return ret
}
