// Package chain provides the minimal blockchain substrate the network
// measurement stack needs: block headers, header hashing, fork rules,
// and the well-known network/genesis identifiers from the paper.
//
// NodeFinder never validates state; it only needs enough chain
// machinery to (a) identify which blockchain a peer serves (network
// ID + genesis hash), (b) check the DAO-fork block's extra-data, and
// (c) judge node freshness from best-block numbers (Figure 14).
package chain

import (
	"bytes"
	"fmt"
	"math/big"

	"repro/internal/crypto/keccak"
	"repro/internal/rlp"
)

// Hash is a 32-byte Keccak-256 hash.
type Hash [32]byte

// Hex returns the full lowercase hex form.
func (h Hash) Hex() string { return fmt.Sprintf("%x", h[:]) }

// Short returns the abbreviated form used in the paper's prose,
// e.g. "d4e567…cb8fa3".
func (h Hash) Short() string { return fmt.Sprintf("%x…%x", h[:3], h[29:]) }

// HexToHash parses a 64-char hex string (no 0x prefix required).
func HexToHash(s string) (Hash, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var h Hash
	if len(s) != 64 {
		return h, fmt.Errorf("chain: hash must be 64 hex chars, got %d", len(s))
	}
	for i := 0; i < 32; i++ {
		var b byte
		for j := 0; j < 2; j++ {
			c := s[2*i+j]
			var v byte
			switch {
			case '0' <= c && c <= '9':
				v = c - '0'
			case 'a' <= c && c <= 'f':
				v = c - 'a' + 10
			case 'A' <= c && c <= 'F':
				v = c - 'A' + 10
			default:
				return Hash{}, fmt.Errorf("chain: invalid hex char %q", c)
			}
			b = b<<4 | v
		}
		h[i] = b
	}
	return h, nil
}

// MustHexToHash panics on parse failure; for known constants.
func MustHexToHash(s string) Hash {
	h, err := HexToHash(s)
	if err != nil {
		panic(err)
	}
	return h
}

// Well-known identifiers from the paper.
var (
	// MainnetGenesisHash is the genesis of Ethereum Mainnet
	// (network ID 1): d4e567…cb8fa3 in the paper's §2.3.
	MainnetGenesisHash = MustHexToHash("d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3")
	// RopstenGenesisHash is the Ropsten testnet genesis (network 3).
	RopstenGenesisHash = MustHexToHash("41941023680923e0fe4d74a34bdac8141f2540e3ae90623718e47d66d1ca4a2d")
	// MordenGenesisHash is the retired Morden testnet genesis.
	MordenGenesisHash = MustHexToHash("0cd786a2425d16f152c658316c423e6ce1181e15c3295826d7c9904cba9ce303")
)

// Network IDs.
const (
	MainnetNetworkID uint64 = 1
	MordenNetworkID  uint64 = 2
	RopstenNetworkID uint64 = 3
	RinkebyNetworkID uint64 = 4
	KovanNetworkID   uint64 = 42
	ClassicNetworkID uint64 = 1 // Classic shares network ID 1; it differs by chain history
)

// Fork block numbers on Mainnet.
const (
	// DAOForkBlock is block 1,920,000: the hard fork of July 20,
	// 2016 that split Ethereum from Ethereum Classic.
	DAOForkBlock uint64 = 1920000
	// ByzantiumForkBlock is block 4,370,000; the paper observes
	// nodes stuck at 4,370,001 (Figure 14).
	ByzantiumForkBlock uint64 = 4370000
)

// DAOForkBlockExtra is the extra-data value ("dao-hard-fork") that
// pro-fork clients place in headers 1,920,000–1,920,009; NodeFinder
// checks it to separate Mainnet from Classic peers.
var DAOForkBlockExtra = []byte{0x64, 0x61, 0x6f, 0x2d, 0x68, 0x61, 0x72, 0x64, 0x2d, 0x66, 0x6f, 0x72, 0x6b}

// Header is an Ethereum block header. Field order matters: the header
// hash is the Keccak-256 of this exact RLP encoding.
type Header struct {
	ParentHash  Hash
	UncleHash   Hash
	Coinbase    [20]byte
	Root        Hash
	TxHash      Hash
	ReceiptHash Hash
	Bloom       [256]byte
	Difficulty  *big.Int
	Number      *big.Int
	GasLimit    uint64
	GasUsed     uint64
	Time        uint64
	Extra       []byte
	MixDigest   Hash
	Nonce       [8]byte
}

// HashValue computes the header hash.
func (h *Header) HashValue() Hash {
	enc, err := rlp.EncodeToBytes(h)
	if err != nil {
		// Headers constructed by this package always encode.
		panic("chain: header encode failed: " + err.Error())
	}
	return Hash(keccak.Sum256(enc))
}

// SupportsDAOFork reports whether a header at the DAO fork height
// carries the pro-fork extra-data.
func (h *Header) SupportsDAOFork() bool {
	return bytes.Equal(h.Extra, DAOForkBlockExtra)
}

// Chain is a simple in-memory header chain for simulated nodes. To
// keep multi-million-block chains cheap, only a sparse set of headers
// is materialized: the genesis, explicitly extended blocks, and jump
// landing points. Gaps use synthetic parent hashes derived from the
// genesis, so lookups stay consistent without storing every header.
type Chain struct {
	NetworkID uint64
	byNumber  map[uint64]*Header
	byHash    map[Hash]*Header
	head      *Header
	headHash  Hash
	genesis   Hash
	td        *big.Int
	daoFork   bool // whether this chain adopted the DAO fork
}

// Config parameterizes a synthetic chain.
type Config struct {
	NetworkID uint64
	// GenesisSeed differentiates distinct blockchains sharing a
	// network ID (the paper found 18,829 genesis hashes).
	GenesisSeed string
	// DAOFork marks the chain as pro-fork (Mainnet) rather than
	// Classic.
	DAOFork bool
	// Length is the number of blocks to build above genesis.
	Length int
	// BlockDifficulty is the per-block difficulty increment.
	BlockDifficulty int64
}

// New builds a deterministic synthetic chain.
func New(cfg Config) *Chain {
	if cfg.BlockDifficulty == 0 {
		cfg.BlockDifficulty = 131072
	}
	c := &Chain{
		NetworkID: cfg.NetworkID,
		byNumber:  make(map[uint64]*Header),
		byHash:    make(map[Hash]*Header),
		td:        new(big.Int),
		daoFork:   cfg.DAOFork,
	}
	genesis := &Header{
		Difficulty: big.NewInt(cfg.BlockDifficulty),
		Number:     big.NewInt(0),
		GasLimit:   5000,
		Extra:      []byte(cfg.GenesisSeed),
	}
	c.insert(genesis)
	c.genesis = c.headHash
	for i := 1; i <= cfg.Length; i++ {
		c.Extend()
	}
	return c
}

// insert records a header as the new head.
func (c *Chain) insert(h *Header) {
	hash := h.HashValue()
	n := h.Number.Uint64()
	c.byNumber[n] = h
	c.byHash[hash] = h
	c.head, c.headHash = h, hash
	c.td = new(big.Int).Add(c.td, h.Difficulty)
}

// Extend mines one synthetic block on the head.
func (c *Chain) Extend() *Header {
	head := c.Head()
	n := new(big.Int).Add(head.Number, big.NewInt(1))
	h := &Header{
		ParentHash: c.headHash,
		Difficulty: new(big.Int).Set(head.Difficulty),
		Number:     n,
		GasLimit:   head.GasLimit,
		Time:       head.Time + 15,
	}
	if c.daoFork && n.Uint64() >= DAOForkBlock && n.Uint64() < DAOForkBlock+10 {
		h.Extra = append([]byte(nil), DAOForkBlockExtra...)
	}
	c.insert(h)
	return h
}

// jumpTo fast-forwards the head to the given height without
// materializing intermediate headers. The landing header's parent
// hash is a synthetic value derived from the genesis and height, so
// distinct chains never collide. Total difficulty is credited for
// the skipped span.
func (c *Chain) jumpTo(number uint64) {
	head := c.Head()
	gap := number - head.Number.Uint64()
	parent := Hash(keccak.Sum256(append(c.genesis[:], byte(number>>24), byte(number>>16), byte(number>>8), byte(number))))
	h := &Header{
		ParentHash: parent,
		Difficulty: new(big.Int).Set(head.Difficulty),
		Number:     new(big.Int).SetUint64(number),
		GasLimit:   head.GasLimit,
		Time:       head.Time + 15*gap,
	}
	// Credit difficulty for the skipped blocks (gap-1 of them; the
	// landing block's own difficulty is added by insert).
	skipped := new(big.Int).Mul(head.Difficulty, new(big.Int).SetUint64(gap-1))
	c.td = new(big.Int).Add(c.td, skipped)
	c.insert(h)
}

// ExtendTo grows the chain until the head reaches the given block
// number, fast-forwarding across large gaps but materializing real
// headers near interesting heights (e.g. the DAO fork window).
func (c *Chain) ExtendTo(number uint64) {
	const window = 64
	for c.Head().Number.Uint64() < number {
		cur := c.Head().Number.Uint64()
		if number-cur > window {
			// Land shortly before the target (and before the DAO
			// window if it is in range) so real blocks cover it.
			land := number - window/2
			// Materialize real headers around the DAO fork window so
			// fork checks can be answered either way.
			if cur < DAOForkBlock && number >= DAOForkBlock && land > DAOForkBlock-window/2 {
				land = DAOForkBlock - window/2
			}
			if land > cur+1 {
				c.jumpTo(land)
				continue
			}
		}
		c.Extend()
	}
}

// Head returns the latest header.
func (c *Chain) Head() *Header { return c.head }

// HeadHash returns the hash of the latest header — the "best hash" of
// eth STATUS messages.
func (c *Chain) HeadHash() Hash { return c.headHash }

// GenesisHash returns block zero's hash.
func (c *Chain) GenesisHash() Hash { return c.genesis }

// TD returns the cumulative total difficulty.
func (c *Chain) TD() *big.Int { return new(big.Int).Set(c.td) }

// Len returns the number of materialized headers including genesis.
func (c *Chain) Len() int { return len(c.byNumber) }

// HeaderByNumber returns the header at the given height, or nil if it
// is above the head or inside a fast-forwarded gap.
func (c *Chain) HeaderByNumber(n uint64) *Header { return c.byNumber[n] }

// HeaderByHash returns the header with the given hash, or nil.
func (c *Chain) HeaderByHash(h Hash) *Header { return c.byHash[h] }

// SupportsDAOFork reports the chain's fork stance.
func (c *Chain) SupportsDAOFork() bool { return c.daoFork }

// ValidateHeaderChain performs block-header validation (§2.3): parent
// linkage, number monotonicity, and timestamp ordering, for a span of
// headers. It returns the first offending index or -1.
func ValidateHeaderChain(headers []*Header) int {
	for i := 1; i < len(headers); i++ {
		prev, cur := headers[i-1], headers[i]
		if cur.ParentHash != prev.HashValue() {
			return i
		}
		if cur.Number.Cmp(new(big.Int).Add(prev.Number, big.NewInt(1))) != 0 {
			return i
		}
		if cur.Time < prev.Time {
			return i
		}
	}
	return -1
}
