package chain

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestHexToHash(t *testing.T) {
	h, err := HexToHash("d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3")
	if err != nil {
		t.Fatal(err)
	}
	if h != MainnetGenesisHash {
		t.Fatal("mismatch")
	}
	// 0x prefix accepted.
	h2, err := HexToHash("0xd4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3")
	if err != nil || h2 != h {
		t.Fatal("0x prefix")
	}
	// Errors.
	if _, err := HexToHash("abcd"); err == nil {
		t.Error("short accepted")
	}
	if _, err := HexToHash("zz" + "d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3"[2:]); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestHashStrings(t *testing.T) {
	if MainnetGenesisHash.Hex() != "d4e56740f876aef8c010b86a40d5f56745a118d0906a34e69aec8c0db1cb8fa3" {
		t.Error(MainnetGenesisHash.Hex())
	}
	// The paper writes the genesis as d4e567…, ending cb8fa3.
	if MainnetGenesisHash.Short() != "d4e567…cb8fa3" {
		t.Error(MainnetGenesisHash.Short())
	}
}

func TestChainConstruction(t *testing.T) {
	c := New(Config{NetworkID: 1, GenesisSeed: "mainnet-sim", Length: 10})
	if c.Len() != 11 {
		t.Fatalf("len %d", c.Len())
	}
	if c.Head().Number.Uint64() != 10 {
		t.Fatalf("head number %d", c.Head().Number)
	}
	if c.GenesisHash() == (Hash{}) {
		t.Fatal("zero genesis hash")
	}
	if c.HeadHash() == c.GenesisHash() {
		t.Fatal("head equals genesis")
	}
}

func TestDistinctGenesisSeeds(t *testing.T) {
	a := New(Config{NetworkID: 1, GenesisSeed: "a"})
	b := New(Config{NetworkID: 1, GenesisSeed: "b"})
	if a.GenesisHash() == b.GenesisHash() {
		t.Fatal("different seeds share a genesis hash")
	}
	// Same seed is deterministic.
	a2 := New(Config{NetworkID: 1, GenesisSeed: "a"})
	if a.GenesisHash() != a2.GenesisHash() {
		t.Fatal("same seed differs")
	}
}

func TestTotalDifficultyGrows(t *testing.T) {
	c := New(Config{NetworkID: 1, GenesisSeed: "x"})
	td0 := c.TD()
	c.Extend()
	if c.TD().Cmp(td0) <= 0 {
		t.Fatal("TD did not grow")
	}
}

func TestHeaderLookups(t *testing.T) {
	c := New(Config{NetworkID: 1, GenesisSeed: "x", Length: 5})
	h3 := c.HeaderByNumber(3)
	if h3 == nil || h3.Number.Uint64() != 3 {
		t.Fatal("by number failed")
	}
	if got := c.HeaderByHash(h3.HashValue()); got != h3 {
		t.Fatal("by hash failed")
	}
	if c.HeaderByNumber(99) != nil {
		t.Fatal("phantom header")
	}
	if c.HeaderByHash(Hash{1}) != nil {
		t.Fatal("phantom by hash")
	}
}

func TestDAOForkExtraData(t *testing.T) {
	c := New(Config{NetworkID: 1, GenesisSeed: "mainnet", DAOFork: true})
	c.ExtendTo(DAOForkBlock + 12)
	fork := c.HeaderByNumber(DAOForkBlock)
	if fork == nil {
		t.Fatal("no fork header")
	}
	if !fork.SupportsDAOFork() {
		t.Fatal("pro-fork chain lacks dao-hard-fork extra data")
	}
	if string(fork.Extra) != "dao-hard-fork" {
		t.Fatalf("extra = %q", fork.Extra)
	}
	// Blocks outside the 10-block window have no marker.
	if c.HeaderByNumber(DAOForkBlock + 11).SupportsDAOFork() {
		t.Fatal("marker outside window")
	}

	classic := New(Config{NetworkID: 1, GenesisSeed: "mainnet", DAOFork: false})
	classic.ExtendTo(DAOForkBlock + 1)
	if classic.HeaderByNumber(DAOForkBlock).SupportsDAOFork() {
		t.Fatal("classic chain supports fork")
	}
}

func TestValidateHeaderChain(t *testing.T) {
	c := New(Config{NetworkID: 1, GenesisSeed: "v", Length: 20})
	var headers []*Header
	for i := uint64(0); i <= 20; i++ {
		headers = append(headers, c.HeaderByNumber(i))
	}
	if idx := ValidateHeaderChain(headers); idx != -1 {
		t.Fatalf("valid chain rejected at %d", idx)
	}
	// Break linkage.
	bad := append([]*Header(nil), headers...)
	broken := *bad[10]
	broken.ParentHash = Hash{0xFF}
	bad[10] = &broken
	if idx := ValidateHeaderChain(bad); idx != 10 {
		t.Fatalf("broken link found at %d, want 10", idx)
	}
}

func TestHeaderHashDeterministic(t *testing.T) {
	f := func(num uint64, extra []byte) bool {
		h := &Header{Difficulty: big.NewInt(1), Number: new(big.Int).SetUint64(num % 1e9), Extra: extra}
		return h.HashValue() == h.HashValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHeaderHashSensitivity(t *testing.T) {
	h1 := &Header{Difficulty: big.NewInt(1), Number: big.NewInt(1)}
	h2 := &Header{Difficulty: big.NewInt(1), Number: big.NewInt(2)}
	if h1.HashValue() == h2.HashValue() {
		t.Fatal("distinct headers share a hash")
	}
}
