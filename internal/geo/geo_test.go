package geo

import (
	"math"
	"math/rand"
	"net"
	"testing"
)

func TestDeterministic(t *testing.T) {
	db := NewDB()
	ip := net.IPv4(54, 12, 9, 3)
	if db.Country(ip) != db.Country(ip) {
		t.Fatal("country not deterministic")
	}
	if db.ASOf(ip) != db.ASOf(ip) {
		t.Fatal("AS not deterministic")
	}
}

func TestDistributionShape(t *testing.T) {
	// Over many uniformly random IPs the marginals must match the
	// configured shares within sampling error.
	db := NewDB()
	rng := rand.New(rand.NewSource(1))
	const n = 30000
	countryCount := map[Country]int{}
	cloud := 0
	for i := 0; i < n; i++ {
		ip := net.IPv4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		countryCount[db.Country(ip)]++
		if db.InCloud(ip) {
			cloud++
		}
	}
	usShare := float64(countryCount["US"]) / n
	if math.Abs(usShare-0.432) > 0.02 {
		t.Errorf("US share %.3f, want ≈0.432", usShare)
	}
	cnShare := float64(countryCount["CN"]) / n
	if math.Abs(cnShare-0.129) > 0.015 {
		t.Errorf("CN share %.3f, want ≈0.129", cnShare)
	}
	// Top-8 cloud ASes ≈ 44.8% of nodes.
	cloudShare := float64(cloud) / n
	if math.Abs(cloudShare-0.448) > 0.02 {
		t.Errorf("cloud share %.3f, want ≈0.448", cloudShare)
	}
}

func TestCountrySharesSumToOne(t *testing.T) {
	var sum float64
	for _, c := range PaperCountryDistribution {
		sum += c.Share
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("country shares sum to %f", sum)
	}
	sum = 0
	for _, a := range PaperASDistribution {
		sum += a.Share
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("AS shares sum to %f", sum)
	}
}

func TestIndependentMarginals(t *testing.T) {
	// Country and AS are hashed with different salts; the same IP
	// should not use the same fraction for both (check that at least
	// some IPs land in different quantiles).
	db := NewDB()
	diff := 0
	for i := 0; i < 100; i++ {
		ip := net.IPv4(10, 0, byte(i), 1)
		cFrac := hashFrac(ip, 0xC0)
		aFrac := hashFrac(ip, 0xA5)
		if math.Abs(cFrac-aFrac) > 0.01 {
			diff++
		}
	}
	if diff < 90 {
		t.Errorf("salts appear correlated: only %d/100 differ", diff)
	}
	_ = db
}
