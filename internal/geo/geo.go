// Package geo provides a deterministic, synthetic IP-to-location and
// IP-to-AS database.
//
// The paper resolves peer IPs with a commercial GeoIP database and BGP
// AS data (Figure 12). Neither is available offline, so this package
// substitutes a synthetic mapping with two properties the experiments
// need: (1) it is a pure function of the IP, so every component sees
// consistent answers, and (2) IPs *allocated* by the simnet population
// generator are drawn so the marginal distributions match the paper's
// published results (43.2% US, 12.9% CN, ...; top-8 ASes ≈ 44.8%, all
// cloud providers).
package geo

import (
	"net"
	"sort"

	"repro/internal/crypto/keccak"
)

// Country is an ISO-3166-like country label.
type Country string

// AS describes an autonomous system.
type AS struct {
	Number uint32
	Name   string
	Cloud  bool // cloud hosting provider
}

// CountryShare is one row of a geographic distribution.
type CountryShare struct {
	Country Country
	Share   float64 // fraction of nodes
}

// PaperCountryDistribution is Figure 12's country marginal. The tail
// is aggregated into "OTHER".
var PaperCountryDistribution = []CountryShare{
	{"US", 0.432},
	{"CN", 0.129},
	{"DE", 0.060},
	{"RU", 0.044},
	{"KR", 0.038},
	{"CA", 0.031},
	{"GB", 0.029},
	{"FR", 0.025},
	{"SG", 0.022},
	{"NL", 0.019},
	{"JP", 0.017},
	{"AU", 0.014},
	{"OTHER", 0.140},
}

// ASShare is one row of the AS distribution.
type ASShare struct {
	AS    AS
	Share float64
}

// PaperASDistribution approximates Figure 12's AS marginal: the top 8
// ASes hold 44.8% of nodes and are all cloud providers.
var PaperASDistribution = []ASShare{
	{AS{16509, "Amazon", true}, 0.132},
	{AS{45102, "Alibaba", true}, 0.078},
	{AS{14061, "DigitalOcean", true}, 0.066},
	{AS{16276, "OVH", true}, 0.055},
	{AS{24940, "Hetzner", true}, 0.048},
	{AS{15169, "Google", true}, 0.037},
	{AS{8075, "Microsoft", true}, 0.020},
	{AS{20473, "Choopa", true}, 0.016},
	// Non-cloud remainder: each individual residential/commercial AS
	// stays below the smallest top-8 cloud share, matching the
	// paper's finding that the eight largest ASes are all cloud.
	{AS{7922, "Comcast", false}, 0.012},
	{AS{4134, "ChinaNet", false}, 0.012},
	{AS{0, "OTHER", false}, 0.524},
}

// DB resolves IPs to countries and ASes. The zero value is not
// usable; call NewDB.
type DB struct {
	countries []CountryShare
	cumC      []float64
	ases      []ASShare
	cumA      []float64
}

// NewDB builds the resolver over the paper distributions.
func NewDB() *DB {
	db := &DB{countries: PaperCountryDistribution, ases: PaperASDistribution}
	var acc float64
	for _, c := range db.countries {
		acc += c.Share
		db.cumC = append(db.cumC, acc)
	}
	acc = 0
	for _, a := range db.ases {
		acc += a.Share
		db.cumA = append(db.cumA, acc)
	}
	return db
}

// hashFrac maps an IP (plus salt) to a uniform fraction in [0,1).
func hashFrac(ip net.IP, salt byte) float64 {
	h := keccak.Sum256(append(append([]byte{salt}, ip.To16()...), salt))
	v := uint64(h[0])<<56 | uint64(h[1])<<48 | uint64(h[2])<<40 | uint64(h[3])<<32 |
		uint64(h[4])<<24 | uint64(h[5])<<16 | uint64(h[6])<<8 | uint64(h[7])
	return float64(v) / float64(^uint64(0))
}

// Country resolves an IP's country.
func (db *DB) Country(ip net.IP) Country {
	f := hashFrac(ip, 0xC0)
	i := sort.SearchFloat64s(db.cumC, f)
	if i >= len(db.countries) {
		i = len(db.countries) - 1
	}
	return db.countries[i].Country
}

// ASOf resolves an IP's autonomous system.
func (db *DB) ASOf(ip net.IP) AS {
	f := hashFrac(ip, 0xA5)
	i := sort.SearchFloat64s(db.cumA, f)
	if i >= len(db.ases) {
		i = len(db.ases) - 1
	}
	return db.ases[i].AS
}

// InCloud reports whether the IP resolves to a cloud-provider AS.
func (db *DB) InCloud(ip net.IP) bool { return db.ASOf(ip).Cloud }
