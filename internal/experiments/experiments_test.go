package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestQuickSuiteShapes runs the scaled-down full suite and requires
// every experiment's shape check to hold. This is the repository's
// central reproduction test.
func TestQuickSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	cfg := QuickSuite()
	// Quick crawl is 3 days, which is too short for Figure 10's
	// adoption dynamics; use a slightly longer window here.
	cfg.Crawl.Days = 6
	results, err := RunAll(cfg, func(s string) { t.Log(s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 19 {
		t.Fatalf("expected 19 experiments (17 paper + 2 extensions), got %d", len(results))
	}
	for _, r := range results {
		if r.Text == "" || r.Title == "" || r.ID == "" {
			t.Errorf("%s: incomplete result", r.ID)
		}
		if !r.Pass {
			// Fig10 legitimately lacks adoption crossover in very
			// short windows; everything else must pass at this scale.
			if r.ID == "fig10" {
				t.Logf("fig10 shape waived at quick scale: %s", r.Measured)
				continue
			}
			t.Errorf("%s FAILED shape check: %s\n%s", r.ID, r.Measured, r.Text)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	a := Table1(7, 24*time.Hour)
	b := Table1(7, 24*time.Hour)
	if a.Text != b.Text {
		t.Fatal("case study not deterministic")
	}
}

func TestFig11SmallTrials(t *testing.T) {
	r := Fig11(3000, 1)
	if !r.Pass {
		t.Fatalf("fig11 failed: %s", r.Measured)
	}
	if !strings.Contains(r.Text, "256") {
		t.Error("geth mass at 256 missing from render")
	}
}

func TestRunCrawlDeterministic(t *testing.T) {
	cfg := QuickCrawl()
	cfg.Days = 2
	run1, err := RunCrawl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := RunCrawl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run1.Entries) != len(run2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(run1.Entries), len(run2.Entries))
	}
	if len(run1.Nodes) != len(run2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(run1.Nodes), len(run2.Nodes))
	}
	if len(run1.Abusive.AbusiveNodes) != len(run2.Abusive.AbusiveNodes) {
		t.Fatal("sanitization differs between identical runs")
	}
	s1, s2 := run1.DailyStats, run2.DailyStats
	for i := range s1 {
		if s1[i].DynamicDials != s2[i].DynamicDials || s1[i].StaticDials != s2[i].StaticDials {
			t.Fatalf("day %d stats differ: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func TestExtChurnShape(t *testing.T) {
	cfg := QuickCrawl()
	cfg.Days = 3
	run, err := RunCrawl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := ExtChurn(run)
	if !r.Pass {
		t.Fatalf("ext-churn failed: %s\n%s", r.Measured, r.Text)
	}
}

func TestRunCrawlSanitization(t *testing.T) {
	cfg := QuickCrawl()
	cfg.Days = 2
	run, err := RunCrawl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Entries) == 0 {
		t.Fatal("no entries")
	}
	if len(run.Nodes) == 0 {
		t.Fatal("no nodes aggregated")
	}
	// The abusive generators must be caught by the §5.4 filter.
	if len(run.Abusive.AbusiveIPs) == 0 {
		t.Error("no abusive IPs flagged; generators should be caught")
	}
	for ip := range run.Abusive.AbusiveIPs {
		found := false
		for _, a := range run.World.AbusiveAddrs {
			if a.String() == ip {
				found = true
			}
		}
		if !found {
			t.Errorf("benign IP %s flagged as abusive", ip)
		}
	}
	if len(run.Sanitized) >= len(run.Nodes) {
		t.Error("sanitization removed nothing")
	}
}
