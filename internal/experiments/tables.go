package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/devp2p"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

// Table1 reproduces the §3 disconnect-reason table from the case
// study observer models.
func Table1(seed int64, duration time.Duration) *Result {
	gcfg := simnet.DefaultGethObserver(seed)
	pcfg := simnet.DefaultParityObserver(seed)
	if duration > 0 {
		gcfg.Duration, pcfg.Duration = duration, duration
	}
	g := simnet.RunCaseStudy(gcfg)
	p := simnet.RunCaseStudy(pcfg)

	var b strings.Builder
	b.WriteString("Disconnect Msg                         recv Geth    recv Parity    sent Geth    sent Parity\n")
	reasons := []devp2p.DisconnectReason{
		devp2p.DiscTooManyPeers, devp2p.DiscSubprotocolError, devp2p.DiscRequested,
		devp2p.DiscUselessPeer, devp2p.DiscAlreadyConnected, devp2p.DiscReadTimeout, devp2p.DiscQuitting,
	}
	totGR, totPR := totalDisc(g.DiscRecv), totalDisc(p.DiscRecv)
	totGS, totPS := totalDisc(g.DiscSent), totalDisc(p.DiscSent)
	for _, r := range reasons {
		fmt.Fprintf(&b, "%-36s %9d (%5.2f%%) %9d (%5.2f%%) %10d (%5.2f%%) %10d (%5.2f%%)\n",
			r.String(),
			g.DiscRecv[r], fracOf(g.DiscRecv[r], totGR),
			p.DiscRecv[r], fracOf(p.DiscRecv[r], totPR),
			g.DiscSent[r], fracOf(g.DiscSent[r], totGS),
			p.DiscSent[r], fracOf(p.DiscSent[r], totPS))
	}
	fmt.Fprintf(&b, "%-36s %9d           %9d           %10d           %10d\n", "Total", totGR, totPR, totGS, totPS)

	gTooManySent := fracOf(g.DiscSent[devp2p.DiscTooManyPeers], totGS)
	pTooManyRecv := fracOf(p.DiscRecv[devp2p.DiscTooManyPeers], totPR)
	pass := gTooManySent > 90 && // paper: 99.59%
		pTooManyRecv > 70 && // paper: 95.19%
		p.DiscSent[devp2p.DiscSubprotocolError] == 0 && // paper: Parity never sends it
		g.DiscSent[devp2p.DiscSubprotocolError] > 0 &&
		p.DiscSent[devp2p.DiscUselessPeer] > g.DiscSent[devp2p.DiscUselessPeer] // paper: 9.98% vs 0.09%

	return &Result{
		ID:    "table1",
		Title: "Table 1: Disconnect Reasons (case study)",
		Text:  b.String(),
		PaperClaim: "Too many peers dominates: 72.55%/95.19% of received, 99.59%/88.58% of sent " +
			"(Geth/Parity); Parity sends zero Subprotocol errors but many Useless peer (9.98%)",
		Measured: fmt.Sprintf("Too many peers: %.1f%%/%.1f%% recv, %.1f%%/%.1f%% sent; Parity subproto sent=%d, useless=%d",
			fracOf(g.DiscRecv[devp2p.DiscTooManyPeers], totGR), pTooManyRecv,
			gTooManySent, fracOf(p.DiscSent[devp2p.DiscTooManyPeers], totPS),
			p.DiscSent[devp2p.DiscSubprotocolError], p.DiscSent[devp2p.DiscUselessPeer]),
		Pass: pass,
	}
}

func totalDisc(m map[devp2p.DisconnectReason]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

func fracOf(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Table2 reproduces the NodeFinder/Ethernodes intersection. It runs a
// 24-hour crawl snapshot against a world and compares with the
// in-world Ethernodes model.
func Table2(run *LongRun) *Result {
	from := run.Start
	to := from.Add(24 * time.Hour)

	// NodeFinder's verified Mainnet set from the first 24 hours.
	var nf []string
	for id, o := range run.Sanitized {
		if analysis.IsMainnet(o) && o.FirstSeen.Before(to) {
			nf = append(nf, id)
		}
	}
	// Ethernodes' genesis-filtered list, restricted to genuine
	// Mainnet identities (the paper's "actually operated on the
	// Mainnet blockchain" subset of the page).
	snap := run.World.Ethernodes(simnet.DefaultEthernodesConfig(77), from)
	var en []string
	listedTotal := len(snap.GenesisFiltered)
	lightListed := 0
	for _, id := range snap.GenesisFiltered {
		n := run.World.NodeByID(id)
		if n == nil || n.Abusive || n.Network != run.World.Mainnet {
			continue
		}
		if n.Service == simnet.SvcLES || n.Service == simnet.SvcPIP {
			// Light-protocol nodes: genuinely on Mainnet and listed
			// by Ethernodes, but NodeFinder cannot STATUS-verify
			// them — the paper's §5.3 explanation for most of the
			// nodes EN had and NF lacked. They stay in EN's genuine
			// set, guaranteeing an EN-only remainder.
			lightListed++
		}
		en = append(en, id.String())
	}

	ix := analysis.Intersect(en, nf)
	reach, unreach := reachabilitySplit(run, nf)

	var b strings.Builder
	fmt.Fprintf(&b, "Ethernodes listed (network-1 page):    %6d\n", listedTotal)
	fmt.Fprintf(&b, "  of which light-protocol (les/pip):   %6d  (unverifiable by NodeFinder, §5.3)\n", lightListed)
	fmt.Fprintf(&b, "Ethernodes genuine Mainnet (EN):       %6d\n", ix.ENTotal)
	fmt.Fprintf(&b, "NodeFinder verified Mainnet (NF):      %6d\n", ix.NFTotal)
	fmt.Fprintf(&b, "Overlap (EN∩NF):                       %6d (%.1f%% of EN)\n", ix.Overlap, ix.ENCoverage*100)
	fmt.Fprintf(&b, "EN-only (missed by NF):                %6d\n", ix.ENOnly)
	fmt.Fprintf(&b, "NF-only (missed by EN):                %6d\n", ix.NFOnly)
	fmt.Fprintf(&b, "NF reachable (NFR):                    %6d\n", reach)
	fmt.Fprintf(&b, "NF unreachable (NFU):                  %6d\n", unreach)

	ratio := 0.0
	if ix.ENTotal > 0 {
		ratio = float64(ix.NFTotal) / float64(ix.ENTotal)
	}
	pass := ix.NFTotal > ix.ENTotal && // NodeFinder finds more
		ix.ENCoverage > 0.6 && // covers most of EN (paper 81.8%)
		unreach > 0 // NF sees NAT'd nodes via incoming

	return &Result{
		ID:    "table2",
		Title: "Table 2: NodeFinder vs Ethernodes intersection (24h snapshot)",
		Text:  b.String(),
		PaperClaim: "NF=16,831 vs EN=4,717 genuine Mainnet (3.6x); overlap covers 81.8% of EN; " +
			"NFU=10,880 unreachable nodes seen only via incoming connections",
		Measured: fmt.Sprintf("NF=%d vs EN=%d (%.1fx); overlap %.1f%% of EN; NFU=%d",
			ix.NFTotal, ix.ENTotal, ratio, ix.ENCoverage*100, unreach),
		Pass: pass,
	}
}

func reachabilitySplit(run *LongRun, ids []string) (reachable, unreachable int) {
	for _, id := range ids {
		o := run.Sanitized[id]
		if o == nil {
			continue
		}
		// A node is reachable from NF's perspective if any outbound
		// dial ever produced its HELLO.
		r := false
		for _, e := range o.Entries {
			if e.Hello != nil && e.ConnType != mlog.ConnIncoming {
				r = true
				break
			}
		}
		if r {
			reachable++
		} else {
			unreachable++
		}
	}
	return reachable, unreachable
}

// Table3 reproduces the DEVp2p services census.
func Table3(run *LongRun) *Result {
	rows := analysis.ServiceCensus(run.Sanitized)
	ethShare := 0.0
	for _, r := range rows {
		if r.Key == "eth" {
			ethShare = r.Fraction
		}
	}
	pass := len(rows) > 3 && rows[0].Key == "eth" && ethShare > 0.88 && ethShare < 0.98
	return &Result{
		ID:         "table3",
		Title:      "Table 3: DEVp2p services",
		Text:       renderShares("Service (protocol)", rows, 12),
		PaperClaim: "eth is 93.98% of DEVp2p; tail of bzz (1.85%), les (1.24%), exp, istanbul, shh, dbix, pip, mc, ele, 30 others",
		Measured:   fmt.Sprintf("eth %s across %d services", pct(ethShare), len(rows)),
		Pass:       pass,
	}
}

// Table4 reproduces the Mainnet client census.
func Table4(run *LongRun) *Result {
	mainnet := analysis.MainnetSubset(run.Sanitized)
	rows := analysis.ClientCensus(mainnet)
	var geth, parity float64
	for _, r := range rows {
		switch r.Key {
		case "Geth":
			geth = r.Fraction
		case "Parity":
			parity = r.Fraction
		}
	}
	pass := len(rows) >= 3 && rows[0].Key == "Geth" &&
		geth > 0.68 && geth < 0.85 && parity > 0.10 && parity < 0.25
	return &Result{
		ID:         "table4",
		Title:      "Table 4: Mainnet clients",
		Text:       renderShares("Client", rows, 10),
		PaperClaim: "Geth 76.6%, Parity 17.0%, 31 others 6.4% (ethereumjs third at 5.2%)",
		Measured:   fmt.Sprintf("Geth %s, Parity %s over %d Mainnet nodes", pct(geth), pct(parity), len(mainnet)),
		Pass:       pass,
	}
}

// Table5 reproduces the version-stability census.
func Table5(run *LongRun) *Result {
	mainnet := analysis.MainnetSubset(run.Sanitized)
	geth := analysis.Versions(mainnet, "Geth")
	parity := analysis.Versions(mainnet, "Parity")

	var b strings.Builder
	fmt.Fprintf(&b, "Geth:   %d nodes, %.1f%% stable\n", geth.Total, geth.StableShare*100)
	b.WriteString(renderShares("  top Geth versions", geth.Versions, 10))
	fmt.Fprintf(&b, "Parity: %d nodes, %.1f%% stable\n", parity.Total, parity.StableShare*100)
	b.WriteString(renderShares("  top Parity versions", parity.Versions, 10))

	pass := geth.StableShare > 0.7 && // paper: 81.9%
		parity.StableShare < geth.StableShare && // Parity's mixed channels
		parity.StableShare > 0.3 && parity.StableShare < 0.75 // paper: 56.2%
	return &Result{
		ID:         "table5",
		Title:      "Table 5: Client versions (stable vs unstable)",
		Text:       b.String(),
		PaperClaim: "Geth 81.9% stable; Parity 56.2% stable; Parity's distribution sparser (weekly mixed-channel releases)",
		Measured:   fmt.Sprintf("Geth %s stable (%d versions); Parity %s stable (%d versions)", pct(geth.StableShare), len(geth.Versions), pct(parity.StableShare), len(parity.Versions)),
		Pass:       pass,
	}
}

// Table6 reproduces the network size comparison.
func Table6(run *LongRun) *Result {
	from := run.Start
	to := from.Add(24 * time.Hour)
	mainnet := analysis.MainnetSubset(run.Sanitized)
	nfCount := analysis.UniqueInWindow(mainnet, from, to)

	snap := run.World.Ethernodes(simnet.DefaultEthernodesConfig(77), from)
	enCount := 0
	for _, id := range snap.GenesisFiltered {
		n := run.World.NodeByID(id)
		if n != nil && !n.Abusive && n.Network == run.World.Mainnet {
			enCount++
		}
	}

	rows := analysis.NetworkSizeTable(nfCount, enCount)
	var b strings.Builder
	b.WriteString("Network                                      Date         Size\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %-10s %7d\n", r.Network, r.Date, r.Size)
	}
	fmt.Fprintf(&b, "\n(Scaled world: paper-constant rows retain the paper's absolute values;\n")
	fmt.Fprintf(&b, " the NodeFinder/Ethernodes ratio is the comparable quantity: %.2fx)\n", ratioOf(nfCount, enCount))

	pass := nfCount > enCount && ratioOf(nfCount, enCount) > 1.5
	return &Result{
		ID:         "table6",
		Title:      "Table 6: P2P network size",
		Text:       b.String(),
		PaperClaim: "NodeFinder sees 15,454 vs Ethernodes 4,717 (≈2.3-3.3x more); Bitcoin 10,454; Gnutella (2002) 62,586",
		Measured:   fmt.Sprintf("NodeFinder %d vs Ethernodes %d (%.2fx) in the scaled world", nfCount, enCount, ratioOf(nfCount, enCount)),
		Pass:       pass,
	}
}

func ratioOf(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
