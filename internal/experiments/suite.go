package experiments

import (
	"fmt"
	"time"
)

// SuiteConfig selects the scale of a full regeneration.
type SuiteConfig struct {
	Crawl CrawlConfig
	// CaseStudyDuration overrides the §3 observers' 7-day run.
	CaseStudyDuration time.Duration
	// Fig11Trials is the distance-metric sample count (paper: 100K).
	Fig11Trials int
	Seed        int64
}

// DefaultSuite matches the paper's parameters at laptop scale.
func DefaultSuite() SuiteConfig {
	return SuiteConfig{
		Crawl:       DefaultCrawl(),
		Fig11Trials: 100_000,
		Seed:        2018,
	}
}

// QuickSuite is a fast configuration for tests and benchmarks. The
// case study keeps its full 7 days (it is cheap and needs the
// initial-sync phase to finish for the message-mix shape).
func QuickSuite() SuiteConfig {
	return SuiteConfig{
		Crawl:       QuickCrawl(),
		Fig11Trials: 5_000,
		Seed:        2018,
	}
}

// RunAll regenerates every table and figure.
func RunAll(cfg SuiteConfig, progress func(string)) ([]*Result, error) {
	if progress == nil {
		progress = func(string) {}
	}
	progress("running case study (Table 1, Figures 2-4)")
	results := []*Result{
		Table1(cfg.Seed, cfg.CaseStudyDuration),
		Fig2And3(cfg.Seed, cfg.CaseStudyDuration),
		Fig4(cfg.Seed, cfg.CaseStudyDuration),
	}

	progress(fmt.Sprintf("crawling simulated world (%d nodes, %d days)", cfg.Crawl.BaseNodes, cfg.Crawl.Days))
	run, err := RunCrawl(cfg.Crawl)
	if err != nil {
		return nil, err
	}
	progress(fmt.Sprintf("crawl complete: %d log entries, %d identities (%d abusive removed)",
		len(run.Entries), len(run.Nodes), len(run.Abusive.AbusiveNodes)))

	progress("analyzing crawl (Tables 2-6, Figures 5-10, 12-14)")
	results = append(results,
		Fig5(run),
		Fig6And7(run),
		Fig8(run),
		Table2(run),
		Table3(run),
		Fig9(run),
		Table4(run),
		Table5(run),
		Fig10(run),
		Table6(run),
		Fig12(run),
		Fig13(run),
		Fig14(run),
	)

	progress("computing distance-metric distributions (Figure 11)")
	results = append(results, Fig11(cfg.Fig11Trials, cfg.Seed))

	progress("running extension analyses")
	results = append(results, ExtChurn(run))
	// Multi-instance consistency at reduced scale (the crawl above
	// already cost the bulk of the budget).
	results = append(results, ExtMultiInstance(cfg.Seed+900, 5, cfg.Crawl.BaseNodes/3, 24))
	return results, nil
}
