// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulated world plus the real NodeFinder
// scheduling logic. Each experiment returns a Result holding the
// rendered rows/series, the paper's published value, the measured
// value, and a shape check (who wins / rough proportions), which
// cmd/experiments assembles into EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

// Result is one regenerated table or figure.
type Result struct {
	ID         string // e.g. "table1", "fig11"
	Title      string
	Text       string // rendered rows/series
	PaperClaim string
	Measured   string
	Pass       bool
}

// LongRun is a completed crawl of a simulated world; several
// experiments share one.
type LongRun struct {
	World   *simnet.World
	Finder  *nodefinder.Finder
	Entries []*mlog.Entry
	Nodes   map[string]*analysis.NodeObservation
	// Sanitized is the post-§5.4 dataset.
	Sanitized map[string]*analysis.NodeObservation
	Abusive   *analysis.SanitizeResult
	Days      int
	Start     time.Time

	// DailyStats samples the Finder counters once per sim-day.
	DailyStats []nodefinder.Stats
}

// CrawlConfig scales a crawl.
type CrawlConfig struct {
	Seed      int64
	BaseNodes int
	Days      int
	// IncomingMean is the inbound connection inter-arrival mean.
	IncomingMean time.Duration
}

// DefaultCrawl is the full-scale (laptop) configuration used by
// cmd/experiments.
func DefaultCrawl() CrawlConfig {
	return CrawlConfig{Seed: 2018, BaseNodes: 1200, Days: 82, IncomingMean: 20 * time.Second}
}

// QuickCrawl is the scaled-down configuration used by benchmarks and
// tests.
func QuickCrawl() CrawlConfig {
	return CrawlConfig{Seed: 2018, BaseNodes: 250, Days: 3, IncomingMean: 30 * time.Second}
}

// RunCrawl builds a world, runs NodeFinder against it for the
// configured number of virtual days, and aggregates the log.
func RunCrawl(cfg CrawlConfig) (*LongRun, error) {
	wcfg := simnet.DefaultConfig(cfg.Seed)
	wcfg.BaseNodes = cfg.BaseNodes
	w := simnet.NewWorld(wcfg)

	col := mlog.NewCollector()
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(cfg.Seed + 1),
		Dialer:    w.NewDialer(cfg.Seed + 2),
		Log:       col,
		Seed:      cfg.Seed + 3,
	})
	if err != nil {
		return nil, err
	}
	gen := w.StartIncoming(f, cfg.IncomingMean, cfg.Seed+4)
	f.Start()

	run := &LongRun{World: w, Finder: f, Days: cfg.Days, Start: wcfg.Start}
	for d := 0; d < cfg.Days; d++ {
		w.Clock.Advance(24 * time.Hour)
		run.DailyStats = append(run.DailyStats, f.Stats())
	}
	f.Stop()
	gen.Stop()

	run.Entries = col.Entries()
	run.Nodes = analysis.Aggregate(run.Entries)
	run.Abusive = analysis.Sanitize(run.Nodes)
	run.Sanitized = run.Abusive.Kept
	return run, nil
}

// --- rendering helpers ---

// renderShares renders ranked Share rows as an aligned text table.
func renderShares(title string, rows []analysis.Share, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "  … %d more rows\n", len(rows)-limit)
			break
		}
		fmt.Fprintf(&b, "  %-42s %8d  %6.2f%%\n", r.Key, r.Count, r.Fraction*100)
	}
	return b.String()
}

// renderSeries renders a daily series compactly.
func renderSeries(name string, s *analysis.DailySeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (mean %.1f/day):\n  ", name, s.Mean())
	for i, v := range s.Days {
		fmt.Fprintf(&b, "%g", v)
		if i != len(s.Days)-1 {
			b.WriteString(" ")
		}
		if (i+1)%14 == 0 {
			b.WriteString("\n  ")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
