package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

// Extension experiments: analyses the paper motivates (churn
// comparison with the file-sharing literature, the §5.4 spam
// population's one-shot behavior) but does not tabulate. They are
// reported separately in EXPERIMENTS.md.

// ExtChurn measures availability dynamics and checks the paper's
// qualitative claims: the abusive population is dominated by one-shot
// identities ("80% of them were seen only once", §5.4) while the
// sanitized population keeps returning.
func ExtChurn(run *LongRun) *Result {
	clean := analysis.Churn(run.Sanitized)

	// Churn over only the removed (abusive) identities.
	abusiveObs := map[string]*analysis.NodeObservation{}
	for id := range run.Abusive.AbusiveNodes {
		if o, ok := run.Nodes[id]; ok {
			abusiveObs[id] = o
		}
	}
	spam := analysis.Churn(abusiveObs)

	var b strings.Builder
	fmt.Fprintf(&b, "Sanitized population:\n")
	fmt.Fprintf(&b, "  one-shot identities:    %5.1f%%\n", clean.OneShotFraction*100)
	fmt.Fprintf(&b, "  returning identities:   %5.1f%%\n", clean.ReturningFraction*100)
	fmt.Fprintf(&b, "  median session length:  %6.0f min\n", clean.SessionCDF.P(0.5))
	fmt.Fprintf(&b, "  p90 session length:     %6.0f min\n", clean.SessionCDF.P(0.9))
	fmt.Fprintf(&b, "Abusive population (removed by §5.4):\n")
	fmt.Fprintf(&b, "  one-shot identities:    %5.1f%%\n", spam.OneShotFraction*100)
	fmt.Fprintf(&b, "  median session length:  %6.0f min\n", spam.SessionCDF.P(0.5))

	pass := spam.OneShotFraction > 0.5 && // spam identities barely return
		clean.ReturningFraction > spam.ReturningFraction &&
		clean.SessionCDF.P(0.9) > spam.SessionCDF.P(0.9)
	return &Result{
		ID:         "ext-churn",
		Title:      "Extension: churn and session dynamics",
		Text:       b.String(),
		PaperClaim: "80% of the top abusive IP's identities were seen only once and none lived past 30 minutes (§5.4); genuine nodes keep returning across the measurement",
		Measured: fmt.Sprintf("abusive one-shot %.0f%% vs sanitized returning %.0f%%",
			spam.OneShotFraction*100, clean.ReturningFraction*100),
		Pass: pass,
	}
}

// ExtMultiInstance reproduces the methodology behind §5's deployment
// of 30 NodeFinder instances and the §5.2 internal-validation claim
// that instances behave consistently: several independent crawlers
// share one world; their discovery rates must agree closely, and
// their union must out-cover any single instance (the reason for
// running many).
func ExtMultiInstance(seed int64, instances, baseNodes, hours int) *Result {
	wcfg := simnet.DefaultConfig(seed)
	wcfg.BaseNodes = baseNodes
	w := simnet.NewWorld(wcfg)

	finders := make([]*nodefinder.Finder, instances)
	cols := make([]*mlog.Collector, instances)
	for i := range finders {
		cols[i] = mlog.NewCollector()
		f, err := nodefinder.New(nodefinder.Config{
			Clock:     w.Clock,
			Discovery: w.NewDiscovery(seed + int64(i)*17),
			Dialer:    w.NewDialer(seed + int64(i)*31),
			Log:       cols[i],
			Seed:      seed + int64(i)*53,
		})
		if err != nil {
			return &Result{ID: "ext-multi", Title: "Extension: multi-instance consistency", Text: err.Error()}
		}
		finders[i] = f
		f.Start()
	}
	w.Clock.Advance(time.Duration(hours) * time.Hour)
	for _, f := range finders {
		f.Stop()
	}

	// Per-instance discovery rates and coverage.
	var rates []float64
	union := map[string]bool{}
	minCover, maxCover := math.MaxInt, 0
	var b strings.Builder
	fmt.Fprintf(&b, "%d instances, %d world nodes, %d virtual hours\n", instances, baseNodes, hours)
	for i, f := range finders {
		st := f.Stats()
		rate := float64(st.DiscoveryAttempts) / float64(hours)
		rates = append(rates, rate)
		seen := map[string]bool{}
		for _, e := range cols[i].Entries() {
			if e.Succeeded() || e.DisconnectReason != nil {
				seen[e.NodeID] = true
				union[e.NodeID] = true
			}
		}
		if len(seen) < minCover {
			minCover = len(seen)
		}
		if len(seen) > maxCover {
			maxCover = len(seen)
		}
		fmt.Fprintf(&b, "  instance %d: %.0f lookups/h, %d responsive nodes seen\n", i, rate, len(seen))
	}
	fmt.Fprintf(&b, "union coverage: %d responsive nodes (best single: %d)\n", len(union), maxCover)

	// Consistency: coefficient of variation of lookup rates.
	mean, varsum := 0.0, 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	for _, r := range rates {
		varsum += (r - mean) * (r - mean)
	}
	cv := math.Sqrt(varsum/float64(len(rates))) / mean
	fmt.Fprintf(&b, "lookup-rate coefficient of variation: %.3f\n", cv)

	pass := cv < 0.10 && // instances behave consistently (§5.2)
		len(union) > maxCover && // many vantage points see more
		minCover > 0
	return &Result{
		ID:         "ext-multi",
		Title:      "Extension: multi-instance consistency (§5.2 methodology)",
		Text:       b.String(),
		PaperClaim: "30 instances made ≈304 discovery attempts/hour each with visibly constant rates; running many instances increases coverage",
		Measured:   fmt.Sprintf("%d instances, rate CV %.3f, union %d vs best single %d", instances, cv, len(union), maxCover),
		Pass:       pass,
	}
}
