package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/enode"
	"repro/internal/geo"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
)

// Fig2And3 reproduces the case-study message mix: TRANSACTIONS must
// dominate received traffic once synced, and Geth must send far more
// transactions than Parity.
func Fig2And3(seed int64, duration time.Duration) *Result {
	gcfg := simnet.DefaultGethObserver(seed)
	pcfg := simnet.DefaultParityObserver(seed)
	if duration > 0 {
		gcfg.Duration, pcfg.Duration = duration, duration
	}
	g := simnet.RunCaseStudy(gcfg)
	p := simnet.RunCaseStudy(pcfg)

	var b strings.Builder
	b.WriteString("Received message totals (Geth observer):\n")
	b.WriteString(renderMsgMap(g.MsgRecv))
	b.WriteString("Sent message totals (Geth observer):\n")
	b.WriteString(renderMsgMap(g.MsgSent))
	b.WriteString("Received message totals (Parity observer):\n")
	b.WriteString(renderMsgMap(p.MsgRecv))
	b.WriteString("Sent message totals (Parity observer):\n")
	b.WriteString(renderMsgMap(p.MsgSent))

	txDominateG := g.MsgRecv["TRANSACTIONS"] > g.MsgRecv["BLOCK_HEADERS"] &&
		g.MsgRecv["TRANSACTIONS"] > g.MsgRecv["NEW_BLOCK_HASHES"]
	gethSendsMore := g.MsgSent["TRANSACTIONS"] > 2*p.MsgSent["TRANSACTIONS"]
	pass := txDominateG && gethSendsMore
	return &Result{
		ID:         "fig2-3",
		Title:      "Figures 2-3: Case-study message mix",
		Text:       b.String(),
		PaperClaim: "TRANSACTIONS dominate network I/O after sync; Geth (broadcast-to-all) sends far more than Parity (√n relay)",
		Measured: fmt.Sprintf("Geth recv TX=%d vs HEADERS=%d; sent TX Geth=%d vs Parity=%d",
			g.MsgRecv["TRANSACTIONS"], g.MsgRecv["BLOCK_HEADERS"], g.MsgSent["TRANSACTIONS"], p.MsgSent["TRANSACTIONS"]),
		Pass: pass,
	}
}

func renderMsgMap(m map[string]uint64) string {
	var b strings.Builder
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&b, "  %-20s %12d\n", k, m[k])
	}
	return b.String()
}

// Fig4 reproduces peer convergence: Geth→25, Parity→50 in minutes,
// high occupancy thereafter.
func Fig4(seed int64, duration time.Duration) *Result {
	gcfg := simnet.DefaultGethObserver(seed)
	pcfg := simnet.DefaultParityObserver(seed)
	if duration > 0 {
		gcfg.Duration, pcfg.Duration = duration, duration
	}
	g := simnet.RunCaseStudy(gcfg)
	p := simnet.RunCaseStudy(pcfg)

	var b strings.Builder
	fmt.Fprintf(&b, "Geth:   time-to-full=%v  occupancy=%.1f%%  cap=25\n", g.TimeToFull, g.OccupancyFraction*100)
	fmt.Fprintf(&b, "Parity: time-to-full=%v  occupancy=%.1f%%  cap=50\n", p.TimeToFull, p.OccupancyFraction*100)
	b.WriteString("Peer-count series (every 12h, Geth then Parity):\n  ")
	for i, s := range g.PeerSeries {
		if i%24 == 0 {
			fmt.Fprintf(&b, "%d ", s.Peers)
		}
	}
	b.WriteString("\n  ")
	for i, s := range p.PeerSeries {
		if i%24 == 0 {
			fmt.Fprintf(&b, "%d ", s.Peers)
		}
	}
	b.WriteString("\n")

	pass := g.TimeToFull < time.Hour && p.TimeToFull < time.Hour &&
		g.OccupancyFraction > 0.97 && g.OccupancyFraction < 1.0 &&
		p.OccupancyFraction > 0.85 && p.OccupancyFraction < 0.99 &&
		g.OccupancyFraction > p.OccupancyFraction // Parity dips more (91.5% vs 99.1%)
	return &Result{
		ID:         "fig4",
		Title:      "Figure 4: Peer convergence",
		Text:       b.String(),
		PaperClaim: "Default peer limits reached within minutes; at cap 99.1% (Geth) and 91.5% (Parity) of the time",
		Measured: fmt.Sprintf("full in %v/%v; occupancy %.1f%%/%.1f%%",
			g.TimeToFull, p.TimeToFull, g.OccupancyFraction*100, p.OccupancyFraction*100),
		Pass: pass,
	}
}

// Fig5 reproduces discovery and dial attempt rates.
func Fig5(run *LongRun) *Result {
	dyn, stat := analysis.DialAttemptSeries(run.Entries, run.Start, run.Days)
	// Discovery attempts per hour from the daily Finder samples.
	var perHour float64
	if len(run.DailyStats) > 0 {
		last := run.DailyStats[len(run.DailyStats)-1]
		perHour = float64(last.DiscoveryAttempts) / (float64(run.Days) * 24)
	}

	// Dial:discovery ratio stability: coefficient of variation of the
	// per-day dial counts over the stable period.
	var b strings.Builder
	fmt.Fprintf(&b, "Discovery attempts: %.0f/hour per instance (paper: ≈304, normal client ≈180)\n", perHour)
	b.WriteString(renderSeries("Dynamic dials", dyn))
	b.WriteString(renderSeries("Static dials", stat))

	pass := perHour > 180 && perHour < 900 // faster than a normal client, bounded by the 4s interval
	return &Result{
		ID:         "fig5",
		Title:      "Figure 5: Discovery and dynamic-dial attempts",
		Text:       b.String(),
		PaperClaim: "≈304 discovery attempts/hour/instance (vs 180 for a normal client, <900 4s-interval bound); dial rate proportional to discovery rate",
		Measured:   fmt.Sprintf("%.0f lookups/hour; %.0f dynamic dials/day mean", perHour, dyn.Mean()),
		Pass:       pass,
	}
}

// Fig6And7 reproduces unique nodes dialed and responding per day.
func Fig6And7(run *LongRun) *Result {
	dialed, resp := analysis.DialSeries(run.Entries, run.Start, run.Days)
	var b strings.Builder
	b.WriteString(renderSeries("Unique nodes dynamic-dialed/day", dialed))
	b.WriteString(renderSeries("Unique nodes responding/day", resp))

	// Responding fraction: the paper saw 10,919/34,730 ≈ 31%; the
	// dominant losses are offline and NAT'd addresses.
	frac := 0.0
	if dialed.Mean() > 0 {
		frac = resp.Mean() / dialed.Mean()
	}
	pass := dialed.Mean() > 0 && frac > 0.10 && frac < 0.75
	return &Result{
		ID:         "fig6-7",
		Title:      "Figures 6-7: Nodes dialed vs responding",
		Text:       b.String(),
		PaperClaim: "34,730 unique nodes dialed/day; 10,919 responding/day (≈31%); both stable across the measurement",
		Measured:   fmt.Sprintf("%.0f dialed/day, %.0f responding/day (%.0f%%)", dialed.Mean(), resp.Mean(), frac*100),
		Pass:       pass,
	}
}

// Fig8 reproduces the bootstrap-node dial accounting: ≤48 static
// dials/day (30-minute interval), a few dynamic.
func Fig8(run *LongRun) *Result {
	// Pick the node with the most static dials as the "bootstrap".
	staticCount := map[string]int{}
	for _, e := range run.Entries {
		if e.ConnType == mlog.ConnStaticDial {
			staticCount[e.NodeID]++
		}
	}
	bootID, best := "", 0
	for id, c := range staticCount {
		if c > best {
			bootID, best = id, c
		}
	}
	if bootID == "" {
		return &Result{ID: "fig8", Title: "Figure 8: Bootstrap dials", Text: "no static dials recorded", Pass: false}
	}
	dyn, stat := analysis.NodeDialSeries(run.Entries, bootID, run.Start, run.Days)

	var b strings.Builder
	fmt.Fprintf(&b, "Most-redialed node: %s…\n", bootID[:16])
	b.WriteString(renderSeries("Static dials to it per day", stat))
	b.WriteString(renderSeries("Dynamic dials to it per day", dyn))

	maxDay := 0.0
	for _, v := range stat.Days {
		if v > maxDay {
			maxDay = v
		}
	}
	pass := stat.Mean() > 20 && maxDay <= 48 && dyn.Mean() < stat.Mean()
	return &Result{
		ID:         "fig8",
		Title:      "Figure 8: Dials to a single known node",
		Text:       b.String(),
		PaperClaim: "≈44 static + ≈6 dynamic dials/day to the bootstrap node; static ≤48/day (30-minute re-dial interval)",
		Measured:   fmt.Sprintf("%.1f static/day (max %.0f), %.1f dynamic/day", stat.Mean(), maxDay, dyn.Mean()),
		Pass:       pass,
	}
}

// Fig9 reproduces the network/genesis diversity census.
func Fig9(run *LongRun) *Result {
	nc := analysis.Networks(run.Sanitized)
	var b strings.Builder
	fmt.Fprintf(&b, "Distinct networks: %d   Distinct genesis hashes: %d\n", nc.DistinctNetworks, nc.DistinctGenesis)
	fmt.Fprintf(&b, "Single-peer networks: %d   Mainnet-genesis impostors: %d\n", nc.SinglePeerNetworks, nc.MainnetGenesisImpostors)
	b.WriteString(renderShares("Top networks", nc.Networks, 8))

	pass := nc.DistinctNetworks > 5 &&
		nc.Networks[0].Key == "1 (Mainnet/Classic)" &&
		nc.SinglePeerNetworks > 0 &&
		nc.MainnetGenesisImpostors > 0
	return &Result{
		ID:         "fig9",
		Title:      "Figure 9: Ethereum networks and genesis hashes",
		Text:       b.String(),
		PaperClaim: "4,076 networks / 18,829 genesis hashes; network 1 dominant; 1,402 single-peer networks; 10,497 non-Mainnet peers advertising the Mainnet genesis",
		Measured: fmt.Sprintf("%d networks / %d genesis hashes; %d single-peer; %d impostors (scaled world)",
			nc.DistinctNetworks, nc.DistinctGenesis, nc.SinglePeerNetworks, nc.MainnetGenesisImpostors),
		Pass: pass,
	}
}

// Fig10 reproduces version-adoption dynamics.
func Fig10(run *LongRun) *Result {
	vs := analysis.VersionAdoption(run.Entries, "Geth", run.Start, run.Days)
	var b strings.Builder
	b.WriteString("Geth version node-counts per day (rows: versions):\n")
	for _, v := range vs.Versions {
		row := vs.Counts[v]
		// Compact: print every 7th day.
		fmt.Fprintf(&b, "  %-16s ", v)
		for d := 0; d < len(row); d += 7 {
			fmt.Fprintf(&b, "%4.0f", row[d])
		}
		b.WriteString("\n")
	}

	// Shape: a version released mid-window must rise after release
	// while its predecessor declines.
	pass := adoptionShapeHolds(vs, run.Days)

	// §6.2's stragglers metric on the last day.
	releaseNames := make([]string, len(simnet.GethReleases))
	for i, r := range simnet.GethReleases {
		releaseNames[i] = r.Version
	}
	oldShare := analysis.OlderThanShare(run.Entries, "Geth", releaseNames, "v1.8.11-stable",
		run.Start.Add(time.Duration(run.Days-1)*24*time.Hour))

	return &Result{
		ID:         "fig10",
		Title:      "Figure 10: Geth version adoption over time",
		Text:       b.String(),
		PaperClaim: "New releases ramp up as predecessors decline; 68.3% still ran versions older than 2 iterations on the last day",
		Measured:   fmt.Sprintf("adoption crossover present=%v; %.1f%% older than v1.8.11 on final day", pass, oldShare*100),
		Pass:       pass,
	}
}

// adoptionShapeHolds checks that some mid-window release grows while
// an older one shrinks.
func adoptionShapeHolds(vs *analysis.VersionSeries, days int) bool {
	if days < 14 {
		return len(vs.Versions) > 0 // too short to see dynamics
	}
	grew, shrank := false, false
	for _, v := range vs.Versions {
		row := vs.Counts[v]
		early := avg(row[:days/4])
		late := avg(row[3*days/4:])
		if late > early+1 {
			grew = true
		}
		if early > late+1 {
			shrank = true
		}
	}
	return grew && shrank
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fig11 reproduces the Geth-vs-Parity distance metric disparity:
// 100K random node-ID pairs through both metrics.
func Fig11(trials int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	gethHist := map[int]int{}
	parityHist := map[int]int{}
	agree := 0
	for i := 0; i < trials; i++ {
		a, b := enode.RandomID(rng).Hash(), enode.RandomID(rng).Hash()
		g, p := enode.LogDist(a, b), enode.ParityLogDist(a, b)
		gethHist[g]++
		parityHist[p]++
		if g == p {
			agree++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Trials: %d   Metric agreement: %.4f%%\n", trials, 100*float64(agree)/float64(trials))
	b.WriteString("Distance histogram (distance: geth-count parity-count):\n")
	var keys []int
	seen := map[int]bool{}
	for k := range gethHist {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	for k := range parityHist {
		if !seen[k] {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	sort.Ints(keys)
	for _, k := range keys {
		if gethHist[k] == 0 && parityHist[k] < trials/1000 {
			continue // compress the tail
		}
		fmt.Fprintf(&b, "  %3d: %7d %7d\n", k, gethHist[k], parityHist[k])
	}

	gMean, pMean := histMean(gethHist), histMean(parityHist)
	pass := gMean > 254 && pMean > 210 && pMean < 240 &&
		float64(agree)/float64(trials) < 0.05
	return &Result{
		ID:         "fig11",
		Title:      "Figure 11: Geth vs Parity XOR distance metrics",
		Text:       b.String(),
		PaperClaim: "Geth's log-distance concentrates at 256 (geometric); Parity's byte-sum metric centers near 227 — the metrics almost never agree (§6.3)",
		Measured:   fmt.Sprintf("geth mean %.1f, parity mean %.1f, agreement %.3f%%", gMean, pMean, 100*float64(agree)/float64(trials)),
		Pass:       pass,
	}
}

func histMean(h map[int]int) float64 {
	sum, n := 0, 0
	for k, c := range h {
		sum += k * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Fig12 reproduces the geographic and AS distribution of Mainnet
// nodes.
func Fig12(run *LongRun) *Result {
	mainnet := analysis.MainnetSubset(run.Sanitized)
	gc := analysis.Geography(mainnet, geo.NewDB())
	var b strings.Builder
	b.WriteString(renderShares("Countries", gc.Countries, 10))
	b.WriteString(renderShares("ASes", gc.ASes, 10))
	fmt.Fprintf(&b, "Top-8 AS share: %.1f%% (all cloud: %v)\n", gc.Top8ASShare*100, gc.Top8AllCloud)

	var us, cn float64
	for _, r := range gc.Countries {
		switch r.Key {
		case "US":
			us = r.Fraction
		case "CN":
			cn = r.Fraction
		}
	}
	pass := len(gc.Countries) > 0 && gc.Countries[0].Key == "US" &&
		us > 0.33 && us < 0.53 && cn > 0.07 && cn < 0.19 &&
		gc.Top8ASShare > 0.33
	// The all-cloud property needs a large enough sample for the
	// small cloud ASes to outrank the residential tail.
	if len(mainnet) >= 800 {
		pass = pass && gc.Top8AllCloud
	}
	return &Result{
		ID:         "fig12",
		Title:      "Figure 12: Geography and AS distribution",
		Text:       b.String(),
		PaperClaim: "US 43.2%, CN 12.9% of Mainnet nodes; top 8 ASes hold 44.8% and are all cloud providers",
		Measured:   fmt.Sprintf("US %s, CN %s; top-8 AS %.1f%% all-cloud=%v", pct(us), pct(cn), gc.Top8ASShare*100, gc.Top8AllCloud),
		Pass:       pass,
	}
}

// Fig13 reproduces the latency distribution of Mainnet peers.
func Fig13(run *LongRun) *Result {
	mainnet := analysis.MainnetSubset(run.Sanitized)
	cdf := analysis.LatencyCDF(mainnet)
	var b strings.Builder
	fmt.Fprintf(&b, "Samples: %d\n", cdf.Len())
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Fprintf(&b, "  p%-4.0f %8.1f ms\n", q*100, cdf.P(q))
	}
	median := cdf.P(0.5)
	pass := cdf.Len() > 0 && median > 20 && median < 400 &&
		cdf.P(0.9) > median // heavy right tail
	return &Result{
		ID:         "fig13",
		Title:      "Figure 13: Peer latency CDF",
		Text:       b.String(),
		PaperClaim: "Latency distribution comparable to other P2P systems: most peers within a few hundred ms of the US vantage, long tail for remote/overloaded peers",
		Measured:   fmt.Sprintf("median %.0f ms, p90 %.0f ms over %d peers", median, cdf.P(0.9), cdf.Len()),
		Pass:       pass,
	}
}

// Fig14 reproduces node freshness.
func Fig14(run *LongRun) *Result {
	mainnet := analysis.MainnetSubset(run.Sanitized)
	fr := analysis.Freshness(mainnet, run.World.Mainnet.HeadAt)
	var b strings.Builder
	fmt.Fprintf(&b, "Stale fraction (> %d blocks behind): %.1f%%\n", analysis.StaleThresholdBlocks, fr.StaleFraction*100)
	fmt.Fprintf(&b, "Nodes stuck at block 4,370,001 (Byzantium+1): %d\n", fr.StuckAtByzantium)
	b.WriteString("Lag CDF (blocks behind head):\n")
	for _, q := range []float64{0.25, 0.5, 0.667, 0.75, 0.9} {
		fmt.Fprintf(&b, "  p%-5.1f %12.0f\n", q*100, fr.LagCDF.P(q))
	}

	pass := fr.StaleFraction > 0.20 && fr.StaleFraction < 0.50
	// The Byzantium-stuck cluster is ~2% of Mainnet; only require it
	// when the sample is big enough to expect one.
	if len(mainnet) >= 400 {
		pass = pass && fr.StuckAtByzantium > 0
	}
	return &Result{
		ID:         "fig14",
		Title:      "Figure 14: Node freshness",
		Text:       b.String(),
		PaperClaim: "32.7% of Mainnet nodes stale; 141 nodes stuck at block 4,370,001 (first post-Byzantium block)",
		Measured:   fmt.Sprintf("%.1f%% stale; %d stuck at Byzantium+1", fr.StaleFraction*100, fr.StuckAtByzantium),
		Pass:       pass,
	}
}
