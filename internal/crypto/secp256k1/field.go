package secp256k1

import (
	"encoding/binary"
	"math/big"
	"math/bits"
)

// fieldElement is an integer modulo the field prime
// p = 2^256 − 2^32 − 977, stored as four little-endian uint64 limbs.
// Every operation leaves its result fully reduced (< p), so equality
// is plain limb comparison. Like the rest of this package the
// arithmetic is variable-time by design: this is a measurement stack,
// not a wallet (see DESIGN.md).
type fieldElement struct {
	n [4]uint64
}

// pC is 2^256 − p = 2^32 + 977. Because p is this close to 2^256,
// reduction is "folding": v mod p = low 256 bits + pC * high bits.
const pC = 0x1000003D1

var (
	feZero = fieldElement{}
	feOne  = fieldElement{n: [4]uint64{1, 0, 0, 0}}
	feB    = fieldElement{n: [4]uint64{7, 0, 0, 0}} // curve constant b

	feP = fieldElement{n: [4]uint64{
		0xFFFFFFFEFFFFFC2F, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF,
	}}

	// Exponents for Fermat inversion (p−2) and the Tonelli shortcut
	// square root ((p+1)/4; valid because p ≡ 3 mod 4). Both are
	// derived from the big.Int P in initFieldConstants so the limb
	// forms cannot drift from the authoritative parameters.
	fePMinus2 [4]uint64
	feSqrtExp [4]uint64
)

func initFieldConstants() {
	fePMinus2 = limbsFromBig(new(big.Int).Sub(P, big.NewInt(2)))
	sqrtExp := new(big.Int).Add(P, big.NewInt(1))
	sqrtExp.Rsh(sqrtExp, 2)
	feSqrtExp = limbsFromBig(sqrtExp)
}

// limbsFromBig converts a non-negative big.Int < 2^256 to limbs.
func limbsFromBig(x *big.Int) [4]uint64 {
	var b [32]byte
	x.FillBytes(b[:])
	var l [4]uint64
	for i := 0; i < 4; i++ {
		l[i] = binary.BigEndian.Uint64(b[(3-i)*8:])
	}
	return l
}

func limbsToBig(l *[4]uint64) *big.Int {
	var b [32]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint64(b[(3-i)*8:], l[i])
	}
	return new(big.Int).SetBytes(b[:])
}

// setBytes loads a 32-byte big-endian value, reducing mod p. A single
// conditional subtraction suffices because 2^256 < 2p.
func (r *fieldElement) setBytes(b *[32]byte) {
	for i := 0; i < 4; i++ {
		r.n[i] = binary.BigEndian.Uint64(b[(3-i)*8:])
	}
	r.condSubP()
}

func (r *fieldElement) bytes() [32]byte {
	var b [32]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint64(b[(3-i)*8:], r.n[i])
	}
	return b
}

// setBig loads a big.Int in [0, 2^256), reducing mod p.
func (r *fieldElement) setBig(x *big.Int) {
	r.n = limbsFromBig(x)
	r.condSubP()
}

func (r *fieldElement) toBig() *big.Int { return limbsToBig(&r.n) }

func (r *fieldElement) isZero() bool {
	return r.n[0]|r.n[1]|r.n[2]|r.n[3] == 0
}

func (r *fieldElement) isOdd() bool { return r.n[0]&1 == 1 }

func (r *fieldElement) equal(a *fieldElement) bool { return r.n == a.n }

func (r *fieldElement) gteP() bool {
	for i := 3; i >= 0; i-- {
		if r.n[i] > feP.n[i] {
			return true
		}
		if r.n[i] < feP.n[i] {
			return false
		}
	}
	return true
}

// condSubP subtracts p once if r ≥ p. Subtracting p is adding pC and
// discarding the 2^256 carry.
func (r *fieldElement) condSubP() {
	if !r.gteP() {
		return
	}
	var c uint64
	r.n[0], c = bits.Add64(r.n[0], pC, 0)
	r.n[1], c = bits.Add64(r.n[1], 0, c)
	r.n[2], c = bits.Add64(r.n[2], 0, c)
	r.n[3], _ = bits.Add64(r.n[3], 0, c)
}

// add sets r = a + b mod p. Result aliasing is allowed.
func (r *fieldElement) add(a, b *fieldElement) {
	var c uint64
	n0, c := bits.Add64(a.n[0], b.n[0], 0)
	n1, c := bits.Add64(a.n[1], b.n[1], c)
	n2, c := bits.Add64(a.n[2], b.n[2], c)
	n3, c := bits.Add64(a.n[3], b.n[3], c)
	// Fold the 2^256 overflow bit: 2^256 ≡ pC. With canonical inputs
	// the folded sum cannot overflow again (a+b−2^256+pC < 2^256).
	n0, c2 := bits.Add64(n0, c*pC, 0)
	n1, c2 = bits.Add64(n1, 0, c2)
	n2, c2 = bits.Add64(n2, 0, c2)
	n3, _ = bits.Add64(n3, 0, c2)
	r.n = [4]uint64{n0, n1, n2, n3}
	r.condSubP()
}

// sub sets r = a − b mod p. Result aliasing is allowed.
func (r *fieldElement) sub(a, b *fieldElement) {
	n0, br := bits.Sub64(a.n[0], b.n[0], 0)
	n1, br := bits.Sub64(a.n[1], b.n[1], br)
	n2, br := bits.Sub64(a.n[2], b.n[2], br)
	n3, br := bits.Sub64(a.n[3], b.n[3], br)
	if br != 0 {
		// Wrapped: the register value is a−b+2^256; subtracting pC
		// yields a−b+p, which is in range and cannot underflow.
		n0, br = bits.Sub64(n0, pC, 0)
		n1, br = bits.Sub64(n1, 0, br)
		n2, br = bits.Sub64(n2, 0, br)
		n3, _ = bits.Sub64(n3, 0, br)
	}
	r.n = [4]uint64{n0, n1, n2, n3}
}

// neg sets r = −a mod p.
func (r *fieldElement) neg(a *fieldElement) {
	if a.isZero() {
		*r = feZero
		return
	}
	var br uint64
	r.n[0], br = bits.Sub64(feP.n[0], a.n[0], 0)
	r.n[1], br = bits.Sub64(feP.n[1], a.n[1], br)
	r.n[2], br = bits.Sub64(feP.n[2], a.n[2], br)
	r.n[3], _ = bits.Sub64(feP.n[3], a.n[3], br)
}

// mulSmall sets r = a * k mod p for a small constant k (used for the
// 2·, 3·, 4·, 8· steps of the point formulas).
func (r *fieldElement) mulSmall(a *fieldElement, k uint64) {
	var carry uint64
	var n [4]uint64
	for i := 0; i < 4; i++ {
		h, lo := bits.Mul64(a.n[i], k)
		v, c := bits.Add64(lo, carry, 0)
		n[i] = v
		carry = h + c
	}
	// carry < k; fold carry*pC.
	h, lo := bits.Mul64(carry, pC)
	var c uint64
	n[0], c = bits.Add64(n[0], lo, 0)
	n[1], c = bits.Add64(n[1], h, c)
	n[2], c = bits.Add64(n[2], 0, c)
	n[3], c = bits.Add64(n[3], 0, c)
	n[0] += c * pC // a second wrap leaves the low limb tiny
	r.n = n
	r.condSubP()
}

// mul sets r = a · b mod p. Result aliasing is allowed.
func (r *fieldElement) mul(a, b *fieldElement) {
	var t [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a.n[i], b.n[j])
			v, c1 := bits.Add64(t[i+j], lo, 0)
			v, c2 := bits.Add64(v, carry, 0)
			t[i+j] = v
			// hi + c1 + c2 cannot overflow: the full accumulation
			// product + limb + carry is at most 2^128 − 1.
			carry = hi + c1 + c2
		}
		t[i+4] = carry
	}
	r.reduce512(&t)
}

// sqr sets r = a² mod p.
func (r *fieldElement) sqr(a *fieldElement) { r.mul(a, a) }

// reduce512 reduces a 512-bit product into r using two pC folds.
func (r *fieldElement) reduce512(t *[8]uint64) {
	// First fold: s = t[0..3] + pC * t[4..7]. pC is 33 bits, so the
	// running carry stays below 2^34.
	var s [4]uint64
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(t[4+i], pC)
		v, c1 := bits.Add64(t[i], lo, 0)
		v, c2 := bits.Add64(v, carry, 0)
		s[i] = v
		carry = hi + c1 + c2
	}
	// Second fold: carry*pC < 2^67.
	hi, lo := bits.Mul64(carry, pC)
	var c uint64
	s[0], c = bits.Add64(s[0], lo, 0)
	s[1], c = bits.Add64(s[1], hi, c)
	s[2], c = bits.Add64(s[2], 0, c)
	s[3], c = bits.Add64(s[3], 0, c)
	// If that still wrapped, the remaining value is < 2^67, so one
	// more single-limb fold is exact.
	s[0] += c * pC
	r.n = s
	r.condSubP()
}

// pow sets r = a^exp mod p using a 4-bit fixed window (≈255 squarings
// plus 64 multiplies); exp is little-endian limbs.
func (r *fieldElement) pow(a *fieldElement, exp *[4]uint64) {
	var table [16]fieldElement
	table[0] = feOne
	table[1] = *a
	for i := 2; i < 16; i++ {
		table[i].mul(&table[i-1], a)
	}
	acc := feOne
	started := false
	for i := 3; i >= 0; i-- {
		for shift := 60; shift >= 0; shift -= 4 {
			if started {
				acc.sqr(&acc)
				acc.sqr(&acc)
				acc.sqr(&acc)
				acc.sqr(&acc)
			}
			nib := (exp[i] >> uint(shift)) & 15
			if nib != 0 {
				acc.mul(&acc, &table[nib])
				started = true
			}
		}
	}
	*r = acc
}

// inv sets r = a⁻¹ mod p via Fermat's little theorem (a^(p−2));
// inv(0) = 0.
func (r *fieldElement) inv(a *fieldElement) { r.pow(a, &fePMinus2) }

// sqrt sets r to a square root of a and reports whether a is a
// quadratic residue. p ≡ 3 (mod 4), so the candidate is a^((p+1)/4).
func (r *fieldElement) sqrt(a *fieldElement) bool {
	var cand, check fieldElement
	cand.pow(a, &feSqrtExp)
	check.sqr(&cand)
	if !check.equal(a) {
		return false
	}
	*r = cand
	return true
}
