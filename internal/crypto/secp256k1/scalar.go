package secp256k1

import (
	"encoding/binary"
	"math/big"
	"math/bits"
)

// scalar is an integer modulo the group order N, stored as four
// little-endian uint64 limbs in plain (non-Montgomery) form and kept
// fully reduced. Multiplication round-trips through Montgomery form
// internally; N is not close enough to 2^256 for the field's cheap
// folding reduction.
type scalar struct {
	n [4]uint64
}

var (
	scN = scalar{n: [4]uint64{
		0xBFD25E8CD0364141, 0xBAAEDCE6AF48A03B, 0xFFFFFFFFFFFFFFFE, 0xFFFFFFFFFFFFFFFF,
	}}
	scOne = scalar{n: [4]uint64{1, 0, 0, 0}}

	// Montgomery machinery, derived from the big.Int N in
	// initScalarConstants: R² mod N (for entering Montgomery form),
	// R mod N (the Montgomery one), −N⁻¹ mod 2^64, plus the plain
	// constants N−2 (Fermat inversion exponent) and (N−1)/2 (low-S
	// threshold).
	scRR      scalar
	scRmodN   scalar
	scNPrime  uint64
	scNMinus2 [4]uint64
	scHalfN   scalar
)

func initScalarConstants() {
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	scRmodN.n = limbsFromBig(new(big.Int).Mod(r, N))
	scRR.n = limbsFromBig(new(big.Int).Mod(new(big.Int).Mul(r, r), N))
	scNMinus2 = limbsFromBig(new(big.Int).Sub(N, big.NewInt(2)))
	scHalfN.n = limbsFromBig(halfN)

	// −N⁻¹ mod 2^64 by Newton iteration: each step doubles the number
	// of correct low bits of the inverse.
	inv := scN.n[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - scN.n[0]*inv
	}
	scNPrime = -inv
}

// setBytes loads a 32-byte big-endian value, reducing mod N. One
// conditional subtraction suffices because 2^256 < 2N.
func (r *scalar) setBytes(b *[32]byte) {
	for i := 0; i < 4; i++ {
		r.n[i] = binary.BigEndian.Uint64(b[(3-i)*8:])
	}
	r.condSubN()
}

// setBig loads a big.Int in [0, 2^256), reducing mod N.
func (r *scalar) setBig(x *big.Int) {
	r.n = limbsFromBig(x)
	r.condSubN()
}

func (r *scalar) toBig() *big.Int { return limbsToBig(&r.n) }

// putBytes writes the canonical 32-byte big-endian form into b.
func (r *scalar) putBytes(b []byte) {
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint64(b[(3-i)*8:], r.n[i])
	}
}

func (r *scalar) isZero() bool { return r.n[0]|r.n[1]|r.n[2]|r.n[3] == 0 }

func (r *scalar) equal(a *scalar) bool { return r.n == a.n }

// isHigh reports s > (N−1)/2, the non-canonical half for low-S.
func (r *scalar) isHigh() bool { return r.cmp(&scHalfN) > 0 }

func (r *scalar) cmp(a *scalar) int {
	for i := 3; i >= 0; i-- {
		if r.n[i] > a.n[i] {
			return 1
		}
		if r.n[i] < a.n[i] {
			return -1
		}
	}
	return 0
}

func (r *scalar) gteN() bool { return r.cmp(&scN) >= 0 }

func (r *scalar) condSubN() {
	if !r.gteN() {
		return
	}
	var br uint64
	r.n[0], br = bits.Sub64(r.n[0], scN.n[0], 0)
	r.n[1], br = bits.Sub64(r.n[1], scN.n[1], br)
	r.n[2], br = bits.Sub64(r.n[2], scN.n[2], br)
	r.n[3], _ = bits.Sub64(r.n[3], scN.n[3], br)
}

// add sets r = a + b mod N. Result aliasing is allowed.
func (r *scalar) add(a, b *scalar) {
	var c uint64
	r.n[0], c = bits.Add64(a.n[0], b.n[0], 0)
	r.n[1], c = bits.Add64(a.n[1], b.n[1], c)
	r.n[2], c = bits.Add64(a.n[2], b.n[2], c)
	r.n[3], c = bits.Add64(a.n[3], b.n[3], c)
	if c != 0 || r.gteN() {
		// With canonical inputs a+b < 2N, so one subtraction is
		// enough; a 2^256 carry cancels against the borrow.
		var br uint64
		r.n[0], br = bits.Sub64(r.n[0], scN.n[0], 0)
		r.n[1], br = bits.Sub64(r.n[1], scN.n[1], br)
		r.n[2], br = bits.Sub64(r.n[2], scN.n[2], br)
		r.n[3], _ = bits.Sub64(r.n[3], scN.n[3], br)
	}
}

// neg sets r = −a mod N.
func (r *scalar) neg(a *scalar) {
	if a.isZero() {
		*r = scalar{}
		return
	}
	var br uint64
	r.n[0], br = bits.Sub64(scN.n[0], a.n[0], 0)
	r.n[1], br = bits.Sub64(scN.n[1], a.n[1], br)
	r.n[2], br = bits.Sub64(scN.n[2], a.n[2], br)
	r.n[3], _ = bits.Sub64(scN.n[3], a.n[3], br)
}

// montMul sets r = a · b · R⁻¹ mod N (CIOS Montgomery multiplication,
// R = 2^256). Result aliasing is allowed.
func montMul(r, a, b *scalar) {
	var t [4]uint64
	var tExtra, tHi uint64 // limbs 4 and 5 of the accumulator
	for i := 0; i < 4; i++ {
		// t += a[i] * b
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a.n[i], b.n[j])
			v, c1 := bits.Add64(t[j], lo, 0)
			v, c2 := bits.Add64(v, carry, 0)
			t[j] = v
			carry = hi + c1 + c2
		}
		var c uint64
		tExtra, c = bits.Add64(tExtra, carry, 0)
		tHi += c

		// t = (t + m·N) / 2^64 with m chosen to zero the low limb.
		m := t[0] * scNPrime
		hi, lo := bits.Mul64(m, scN.n[0])
		_, c1 := bits.Add64(t[0], lo, 0)
		carry = hi + c1
		for j := 1; j < 4; j++ {
			hi, lo = bits.Mul64(m, scN.n[j])
			v, c2 := bits.Add64(t[j], lo, 0)
			v, c3 := bits.Add64(v, carry, 0)
			t[j-1] = v
			carry = hi + c2 + c3
		}
		var c4 uint64
		t[3], c4 = bits.Add64(tExtra, carry, 0)
		tExtra = tHi + c4
		tHi = 0
	}
	r.n = t
	if tExtra != 0 || r.gteN() {
		// The CIOS invariant keeps the result below 2N, so a single
		// subtraction restores canonical form (tExtra absorbs the
		// borrow when set).
		var br uint64
		r.n[0], br = bits.Sub64(r.n[0], scN.n[0], 0)
		r.n[1], br = bits.Sub64(r.n[1], scN.n[1], br)
		r.n[2], br = bits.Sub64(r.n[2], scN.n[2], br)
		r.n[3], _ = bits.Sub64(r.n[3], scN.n[3], br)
	}
}

// mul sets r = a · b mod N for plain-form scalars.
func (r *scalar) mul(a, b *scalar) {
	var aR scalar
	montMul(&aR, a, &scRR) // aR = a·R
	montMul(r, &aR, b)     // aR·b·R⁻¹ = a·b
}

// inverse sets r = a⁻¹ mod N via Fermat (a^(N−2)) with a 4-bit window
// over Montgomery form; inverse(0) = 0.
func (r *scalar) inverse(a *scalar) {
	var aR scalar
	montMul(&aR, a, &scRR)
	var table [16]scalar
	table[0] = scRmodN // Montgomery one
	table[1] = aR
	for i := 2; i < 16; i++ {
		montMul(&table[i], &table[i-1], &aR)
	}
	acc := scRmodN
	started := false
	for i := 3; i >= 0; i-- {
		for shift := 60; shift >= 0; shift -= 4 {
			if started {
				montMul(&acc, &acc, &acc)
				montMul(&acc, &acc, &acc)
				montMul(&acc, &acc, &acc)
				montMul(&acc, &acc, &acc)
			}
			nib := (scNMinus2[i] >> uint(shift)) & 15
			if nib != 0 {
				montMul(&acc, &acc, &table[nib])
				started = true
			}
		}
	}
	montMul(r, &acc, &scOne) // leave Montgomery form
}

// wnafWidth is the window width used for variable-base and dual
// multiplication: odd digits in ±{1..15}, eight precomputed points.
const wnafWidth = 5

// wnaf returns the width-w non-adjacent form of s, least significant
// digit first, with trailing zeros trimmed.
func (s *scalar) wnaf(w uint) []int8 {
	// A fifth limb absorbs the temporary overflow when a negative
	// digit is added back.
	var k [5]uint64
	copy(k[:4], s.n[:])
	out := make([]int8, 0, 257)
	mask := uint64(1)<<w - 1
	half := int64(1) << (w - 1)
	for k[0]|k[1]|k[2]|k[3]|k[4] != 0 {
		var d int64
		if k[0]&1 == 1 {
			d = int64(k[0] & mask)
			if d > half {
				d -= int64(1) << w
			}
			if d > 0 {
				limbsSubSmall(&k, uint64(d))
			} else {
				limbsAddSmall(&k, uint64(-d))
			}
		}
		out = append(out, int8(d))
		limbsShr1(&k)
	}
	// Trim leading (most-significant) zeros so callers skip empty
	// doubling iterations.
	for len(out) > 0 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

func limbsSubSmall(k *[5]uint64, v uint64) {
	var br uint64
	k[0], br = bits.Sub64(k[0], v, 0)
	k[1], br = bits.Sub64(k[1], 0, br)
	k[2], br = bits.Sub64(k[2], 0, br)
	k[3], br = bits.Sub64(k[3], 0, br)
	k[4], _ = bits.Sub64(k[4], 0, br)
}

func limbsAddSmall(k *[5]uint64, v uint64) {
	var c uint64
	k[0], c = bits.Add64(k[0], v, 0)
	k[1], c = bits.Add64(k[1], 0, c)
	k[2], c = bits.Add64(k[2], 0, c)
	k[3], c = bits.Add64(k[3], 0, c)
	k[4], _ = bits.Add64(k[4], 0, c)
}

func limbsShr1(k *[5]uint64) {
	for i := 0; i < 4; i++ {
		k[i] = k[i]>>1 | k[i+1]<<63
	}
	k[4] >>= 1
}
