package secp256k1

import (
	"errors"
	"fmt"
	"math/big"
)

// SignatureLength is the byte length of a recoverable signature:
// 32-byte R, 32-byte S, 1-byte recovery id.
const SignatureLength = 65

// Sign produces a recoverable ECDSA signature of a 32-byte message
// hash. The result is r || s || v where v ∈ {0, 1} identifies which
// of the two candidate public keys is the signer's — the format RLPx
// discovery packets carry. S is canonicalized to the lower half of
// the group order so signatures are unique.
func Sign(priv *PrivateKey, hash []byte) ([]byte, error) {
	if len(hash) != 32 {
		return nil, fmt.Errorf("secp256k1: hash must be 32 bytes, got %d", len(hash))
	}
	var z, d scalar
	z.setBig(hashToInt(hash))
	d.setBig(priv.D)
	for attempt := 0; attempt < 100; attempt++ {
		k := rfc6979Nonce(priv, hash, attempt)
		rp := active.scalarBaseMult(k)
		var r scalar
		r.setBig(rp.X) // rp.X < p < 2N, so this is rp.X mod N
		if r.isZero() {
			continue
		}
		// s = k⁻¹ (z + r·d) mod N
		var ks, kinv, s scalar
		ks.setBig(k)
		kinv.inverse(&ks)
		s.mul(&r, &d)
		s.add(&s, &z)
		s.mul(&s, &kinv)
		if s.isZero() {
			continue
		}
		// Recovery id: bit 0 is the parity of R.y, bit 1 set if
		// R.x >= N (astronomically rare).
		v := byte(rp.Y.Bit(0))
		if rp.X.Cmp(N) >= 0 {
			v |= 2
		}
		// Enforce low-S; flipping s negates the parity bit.
		if s.isHigh() {
			s.neg(&s)
			v ^= 1
		}
		sig := make([]byte, SignatureLength)
		r.putBytes(sig[:32])
		s.putBytes(sig[32:64])
		sig[64] = v
		return sig, nil
	}
	return nil, errors.New("secp256k1: could not produce signature")
}

// Verify checks a 64- or 65-byte signature (recovery id ignored)
// against a 32-byte hash and public key. The two scalar products are
// computed in a single Shamir pass: u1·G + u2·Q.
func Verify(pub *PublicKey, hash, sig []byte) bool {
	if len(hash) != 32 || (len(sig) != 64 && len(sig) != 65) {
		return false
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:64])
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(N) >= 0 || s.Cmp(N) >= 0 {
		return false
	}
	var z, rs, ss, w, u1, u2 scalar
	z.setBig(hashToInt(hash))
	rs.setBig(r)
	ss.setBig(s)
	w.inverse(&ss)
	u1.mul(&z, &w)
	u2.mul(&rs, &w)
	p := active.doubleScalarBaseMult(u1.toBig(), &pub.Point, u2.toBig())
	if p.IsInfinity() {
		return false
	}
	return new(big.Int).Mod(p.X, N).Cmp(r) == 0
}

// RecoverPubkey returns the public key that produced the given
// recoverable signature over hash. sig is r || s || v. The recovery
// equation Q = r⁻¹(s·R − z·G) is evaluated as one Shamir pass over
// (−z·r⁻¹)·G + (s·r⁻¹)·R.
func RecoverPubkey(hash, sig []byte) (*PublicKey, error) {
	if len(hash) != 32 {
		return nil, fmt.Errorf("secp256k1: hash must be 32 bytes, got %d", len(hash))
	}
	if len(sig) != SignatureLength {
		return nil, fmt.Errorf("secp256k1: signature must be %d bytes, got %d", SignatureLength, len(sig))
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:64])
	v := sig[64]
	if v > 3 {
		return nil, fmt.Errorf("secp256k1: invalid recovery id %d", v)
	}
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(N) >= 0 || s.Cmp(N) >= 0 {
		return nil, errors.New("secp256k1: signature values out of range")
	}

	// R.x = r (+ N if bit 1 of v set); recover R.y from the curve
	// equation using the parity in bit 0.
	x := new(big.Int).Set(r)
	if v&2 != 0 {
		x.Add(x, N)
	}
	if x.Cmp(P) >= 0 {
		return nil, errors.New("secp256k1: recovery x out of field range")
	}
	y, err := liftX(x, v&1 == 1)
	if err != nil {
		return nil, err
	}
	rp := &Point{x, y}

	// Q = r⁻¹ (s·R − z·G) = (−z·r⁻¹)·G + (s·r⁻¹)·R
	var z, rs, ss, rinv, u1, u2 scalar
	z.setBig(hashToInt(hash))
	rs.setBig(r)
	ss.setBig(s)
	rinv.inverse(&rs)
	u1.mul(&z, &rinv)
	u1.neg(&u1)
	u2.mul(&ss, &rinv)
	q := active.doubleScalarBaseMult(u1.toBig(), rp, u2.toBig())
	if q.IsInfinity() {
		return nil, errors.New("secp256k1: recovered point at infinity")
	}
	pub := &PublicKey{*q}
	if !pub.OnCurve() {
		return nil, errors.New("secp256k1: recovered point not on curve")
	}
	return pub, nil
}

// liftX computes a curve point's y coordinate from x, choosing the
// root with the requested parity. The square root runs on the
// fixed-limb field (p ≡ 3 mod 4, so y = (x³+7)^((p+1)/4)).
func liftX(x *big.Int, odd bool) (*big.Int, error) {
	var xf, y2, y fieldElement
	xf.setBig(x)
	y2.sqr(&xf)
	y2.mul(&y2, &xf)
	y2.add(&y2, &feB)
	if !y.sqrt(&y2) {
		return nil, errors.New("secp256k1: x is not on the curve")
	}
	if y.isOdd() != odd {
		y.neg(&y)
	}
	return y.toBig(), nil
}
