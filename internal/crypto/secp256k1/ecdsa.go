package secp256k1

import (
	"errors"
	"fmt"
	"math/big"
)

// SignatureLength is the byte length of a recoverable signature:
// 32-byte R, 32-byte S, 1-byte recovery id.
const SignatureLength = 65

// Sign produces a recoverable ECDSA signature of a 32-byte message
// hash. The result is r || s || v where v ∈ {0, 1} identifies which
// of the two candidate public keys is the signer's — the format RLPx
// discovery packets carry. S is canonicalized to the lower half of
// the group order so signatures are unique.
func Sign(priv *PrivateKey, hash []byte) ([]byte, error) {
	if len(hash) != 32 {
		return nil, fmt.Errorf("secp256k1: hash must be 32 bytes, got %d", len(hash))
	}
	z := hashToInt(hash)
	for attempt := 0; attempt < 100; attempt++ {
		k := rfc6979Nonce(priv, hash, attempt)
		rp := ScalarBaseMult(k)
		r := new(big.Int).Mod(rp.X, N)
		if r.Sign() == 0 {
			continue
		}
		// s = k⁻¹ (z + r·d) mod N
		kinv := new(big.Int).ModInverse(k, N)
		s := new(big.Int).Mul(r, priv.D)
		s.Add(s, z)
		s.Mul(s, kinv)
		s.Mod(s, N)
		if s.Sign() == 0 {
			continue
		}
		// Recovery id: bit 0 is the parity of R.y, bit 1 set if
		// R.x >= N (astronomically rare).
		v := byte(rp.Y.Bit(0))
		if rp.X.Cmp(N) >= 0 {
			v |= 2
		}
		// Enforce low-S; flipping s negates the parity bit.
		if s.Cmp(halfN) > 0 {
			s.Sub(N, s)
			v ^= 1
		}
		sig := make([]byte, SignatureLength)
		r.FillBytes(sig[:32])
		s.FillBytes(sig[32:64])
		sig[64] = v
		return sig, nil
	}
	return nil, errors.New("secp256k1: could not produce signature")
}

// Verify checks a 64- or 65-byte signature (recovery id ignored)
// against a 32-byte hash and public key.
func Verify(pub *PublicKey, hash, sig []byte) bool {
	if len(hash) != 32 || (len(sig) != 64 && len(sig) != 65) {
		return false
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:64])
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(N) >= 0 || s.Cmp(N) >= 0 {
		return false
	}
	z := hashToInt(hash)
	w := new(big.Int).ModInverse(s, N)
	u1 := new(big.Int).Mul(z, w)
	u1.Mod(u1, N)
	u2 := new(big.Int).Mul(r, w)
	u2.Mod(u2, N)
	p := Add(ScalarBaseMult(u1), ScalarMult(&pub.Point, u2))
	if p.IsInfinity() {
		return false
	}
	return new(big.Int).Mod(p.X, N).Cmp(r) == 0
}

// RecoverPubkey returns the public key that produced the given
// recoverable signature over hash. sig is r || s || v.
func RecoverPubkey(hash, sig []byte) (*PublicKey, error) {
	if len(hash) != 32 {
		return nil, fmt.Errorf("secp256k1: hash must be 32 bytes, got %d", len(hash))
	}
	if len(sig) != SignatureLength {
		return nil, fmt.Errorf("secp256k1: signature must be %d bytes, got %d", SignatureLength, len(sig))
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:64])
	v := sig[64]
	if v > 3 {
		return nil, fmt.Errorf("secp256k1: invalid recovery id %d", v)
	}
	if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(N) >= 0 || s.Cmp(N) >= 0 {
		return nil, errors.New("secp256k1: signature values out of range")
	}

	// R.x = r (+ N if bit 1 of v set); recover R.y from the curve
	// equation using the parity in bit 0.
	x := new(big.Int).Set(r)
	if v&2 != 0 {
		x.Add(x, N)
	}
	if x.Cmp(P) >= 0 {
		return nil, errors.New("secp256k1: recovery x out of field range")
	}
	y, err := liftX(x, v&1 == 1)
	if err != nil {
		return nil, err
	}
	rp := &Point{x, y}

	// Q = r⁻¹ (s·R − z·G)
	z := hashToInt(hash)
	rinv := new(big.Int).ModInverse(r, N)
	sR := ScalarMult(rp, s)
	zG := ScalarBaseMult(z)
	q := ScalarMult(Add(sR, Neg(zG)), rinv)
	if q.IsInfinity() {
		return nil, errors.New("secp256k1: recovered point at infinity")
	}
	pub := &PublicKey{*q}
	if !pub.OnCurve() {
		return nil, errors.New("secp256k1: recovered point not on curve")
	}
	return pub, nil
}

// liftX computes a curve point's y coordinate from x, choosing the
// root with the requested parity.
func liftX(x *big.Int, odd bool) (*big.Int, error) {
	// y² = x³ + 7; P ≡ 3 (mod 4), so y = (x³+7)^((P+1)/4).
	y2 := new(big.Int).Mul(x, x)
	y2.Mul(y2, x)
	y2.Add(y2, B)
	y2.Mod(y2, P)
	exp := new(big.Int).Add(P, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(y2, exp, P)
	// Check that it is actually a square root.
	check := new(big.Int).Mul(y, y)
	check.Mod(check, P)
	if check.Cmp(y2) != 0 {
		return nil, errors.New("secp256k1: x is not on the curve")
	}
	if (y.Bit(0) == 1) != odd {
		y.Sub(P, y)
	}
	return y, nil
}
