package secp256k1

// affinePoint is a curve point in affine coordinates over
// fieldElement. It cannot represent the point at infinity; tables
// only ever hold finite points.
type affinePoint struct {
	x, y fieldElement
}

// jacPoint is a curve point in Jacobian projective coordinates
// (x = X/Z², y = Y/Z³) over fieldElement. Z = 0 — the zero value —
// is the point at infinity.
type jacPoint struct {
	x, y, z fieldElement
}

func (p *jacPoint) isInf() bool { return p.z.isZero() }

func (p *jacPoint) setAffine(a *affinePoint) {
	p.x = a.x
	p.y = a.y
	p.z = feOne
}

// negAssign replaces p with −p.
func (p *jacPoint) negAssign() {
	p.y.neg(&p.y)
}

// toAffine converts to affine coordinates; ok is false at infinity.
func (p *jacPoint) toAffine() (a affinePoint, ok bool) {
	if p.isInf() {
		return affinePoint{}, false
	}
	var zinv, zinv2, zinv3 fieldElement
	zinv.inv(&p.z)
	zinv2.sqr(&zinv)
	zinv3.mul(&zinv2, &zinv)
	a.x.mul(&p.x, &zinv2)
	a.y.mul(&p.y, &zinv3)
	return a, true
}

// double sets r = 2a using the a=0 doubling formulas (dbl-2007-a),
// the same schedule as the math/big oracle. Aliasing is allowed.
func (r *jacPoint) double(a *jacPoint) {
	if a.isInf() || a.y.isZero() {
		*r = jacPoint{}
		return
	}
	var A, B, C, D, E, F, t fieldElement
	A.sqr(&a.x) // X²
	B.sqr(&a.y) // Y²
	C.sqr(&B)   // Y⁴

	// D = 2((X+B)² − A − C)
	D.add(&a.x, &B)
	D.sqr(&D)
	D.sub(&D, &A)
	D.sub(&D, &C)
	D.add(&D, &D)

	// E = 3A; F = E²
	E.add(&A, &A)
	E.add(&E, &A)
	F.sqr(&E)

	var x3, y3, z3 fieldElement
	// X3 = F − 2D
	x3.sub(&F, &D)
	x3.sub(&x3, &D)
	// Y3 = E(D − X3) − 8C
	y3.sub(&D, &x3)
	y3.mul(&y3, &E)
	t.mulSmall(&C, 8)
	y3.sub(&y3, &t)
	// Z3 = 2YZ
	z3.mul(&a.y, &a.z)
	z3.add(&z3, &z3)

	r.x, r.y, r.z = x3, y3, z3
}

// add sets r = a + b (general Jacobian addition, add-2007-bl).
// Aliasing is allowed.
func (r *jacPoint) add(a, b *jacPoint) {
	if a.isInf() {
		*r = *b
		return
	}
	if b.isInf() {
		*r = *a
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2 fieldElement
	z1z1.sqr(&a.z)
	z2z2.sqr(&b.z)
	u1.mul(&a.x, &z2z2)
	u2.mul(&b.x, &z1z1)
	s1.mul(&a.y, &b.z)
	s1.mul(&s1, &z2z2)
	s2.mul(&b.y, &a.z)
	s2.mul(&s2, &z1z1)

	if u1.equal(&u2) {
		if !s1.equal(&s2) {
			*r = jacPoint{} // P + (−P)
			return
		}
		r.double(a)
		return
	}

	var h, i, j, rr, v fieldElement
	h.sub(&u2, &u1)
	i.add(&h, &h)
	i.sqr(&i)
	j.mul(&h, &i)
	rr.sub(&s2, &s1)
	rr.add(&rr, &rr)
	v.mul(&u1, &i)

	var x3, y3, z3, t fieldElement
	x3.sqr(&rr)
	x3.sub(&x3, &j)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)

	y3.sub(&v, &x3)
	y3.mul(&y3, &rr)
	t.mul(&s1, &j)
	t.add(&t, &t)
	y3.sub(&y3, &t)

	z3.add(&a.z, &b.z)
	z3.sqr(&z3)
	z3.sub(&z3, &z1z1)
	z3.sub(&z3, &z2z2)
	z3.mul(&z3, &h)

	r.x, r.y, r.z = x3, y3, z3
}

// addMixed sets r = a + b for an affine b (madd-2007-bl, Z2 = 1),
// saving four multiplications over the general form. Aliasing of r
// and a is allowed.
func (r *jacPoint) addMixed(a *jacPoint, b *affinePoint) {
	if a.isInf() {
		r.setAffine(b)
		return
	}
	var z1z1, u2, s2 fieldElement
	z1z1.sqr(&a.z)
	u2.mul(&b.x, &z1z1)
	s2.mul(&b.y, &a.z)
	s2.mul(&s2, &z1z1)

	if a.x.equal(&u2) {
		if !a.y.equal(&s2) {
			*r = jacPoint{}
			return
		}
		r.double(a)
		return
	}

	var h, hh, i, j, rr, v fieldElement
	h.sub(&u2, &a.x)
	hh.sqr(&h)
	i.mulSmall(&hh, 4)
	j.mul(&h, &i)
	rr.sub(&s2, &a.y)
	rr.add(&rr, &rr)
	v.mul(&a.x, &i)

	var x3, y3, z3, t fieldElement
	x3.sqr(&rr)
	x3.sub(&x3, &j)
	x3.sub(&x3, &v)
	x3.sub(&x3, &v)

	y3.sub(&v, &x3)
	y3.mul(&y3, &rr)
	t.mul(&a.y, &j)
	t.add(&t, &t)
	y3.sub(&y3, &t)

	// Z3 = (Z1+H)² − Z1Z1 − HH = 2·Z1·H
	z3.add(&a.z, &h)
	z3.sqr(&z3)
	z3.sub(&z3, &z1z1)
	z3.sub(&z3, &hh)

	r.x, r.y, r.z = x3, y3, z3
}

// batchToAffine normalizes a slice of finite Jacobian points with a
// single field inversion (Montgomery's trick): one inv plus three
// multiplies per point instead of one inv each.
func batchToAffine(ps []jacPoint) []affinePoint {
	n := len(ps)
	out := make([]affinePoint, n)
	if n == 0 {
		return out
	}
	// prefix[i] = z_0 · z_1 · … · z_i
	prefix := make([]fieldElement, n)
	prefix[0] = ps[0].z
	for i := 1; i < n; i++ {
		prefix[i].mul(&prefix[i-1], &ps[i].z)
	}
	var inv fieldElement
	inv.inv(&prefix[n-1])
	for i := n - 1; i >= 0; i-- {
		var zinv fieldElement
		if i == 0 {
			zinv = inv
		} else {
			zinv.mul(&inv, &prefix[i-1])
			inv.mul(&inv, &ps[i].z)
		}
		var zinv2, zinv3 fieldElement
		zinv2.sqr(&zinv)
		zinv3.mul(&zinv2, &zinv)
		out[i].x.mul(&ps[i].x, &zinv2)
		out[i].y.mul(&ps[i].y, &zinv3)
	}
	return out
}
