package secp256k1

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// deterministic test RNG
func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func testKey(t testing.TB, seed int64) *PrivateKey {
	t.Helper()
	k, err := GenerateKey(testRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBasePointOnCurve(t *testing.T) {
	g := &Point{Gx, Gy}
	if !g.OnCurve() {
		t.Fatal("base point not on curve")
	}
}

func TestGroupOrder(t *testing.T) {
	// N*G must be the point at infinity.
	if p := ScalarBaseMult(N); !p.IsInfinity() {
		t.Fatal("N*G != infinity")
	}
	// (N-1)*G + G = infinity.
	nm1 := new(big.Int).Sub(N, big.NewInt(1))
	p := Add(ScalarBaseMult(nm1), &Point{Gx, Gy})
	if !p.IsInfinity() {
		t.Fatal("(N-1)*G + G != infinity")
	}
}

func TestScalarMultKnownVector(t *testing.T) {
	// 2*G, a standard published value.
	p := ScalarBaseMult(big.NewInt(2))
	wantX, _ := new(big.Int).SetString("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5", 16)
	wantY, _ := new(big.Int).SetString("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a", 16)
	if p.X.Cmp(wantX) != 0 || p.Y.Cmp(wantY) != 0 {
		t.Errorf("2G = (%x, %x)", p.X, p.Y)
	}
}

func TestAddCommutes(t *testing.T) {
	a := ScalarBaseMult(big.NewInt(1234567))
	b := ScalarBaseMult(big.NewInt(7654321))
	if !Add(a, b).Equal(Add(b, a)) {
		t.Fatal("addition not commutative")
	}
}

func TestAddMatchesScalar(t *testing.T) {
	// kG + mG == (k+m)G
	k := big.NewInt(998877)
	m := big.NewInt(112233)
	lhs := Add(ScalarBaseMult(k), ScalarBaseMult(m))
	rhs := ScalarBaseMult(new(big.Int).Add(k, m))
	if !lhs.Equal(rhs) {
		t.Fatal("kG + mG != (k+m)G")
	}
}

func TestDoubleViaAdd(t *testing.T) {
	g := &Point{Gx, Gy}
	if !Add(g, g).Equal(ScalarBaseMult(big.NewInt(2))) {
		t.Fatal("G+G != 2G")
	}
}

func TestNegation(t *testing.T) {
	p := ScalarBaseMult(big.NewInt(42))
	if !Add(p, Neg(p)).IsInfinity() {
		t.Fatal("P + (-P) != infinity")
	}
}

func TestQuickScalarHomomorphism(t *testing.T) {
	f := func(a, b uint64) bool {
		ka := new(big.Int).SetUint64(a%1e9 + 1)
		kb := new(big.Int).SetUint64(b%1e9 + 1)
		lhs := Add(ScalarBaseMult(ka), ScalarBaseMult(kb))
		rhs := ScalarBaseMult(new(big.Int).Add(ka, kb))
		return lhs.Equal(rhs)
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeyGeneration(t *testing.T) {
	k := testKey(t, 1)
	if !k.Pub.OnCurve() {
		t.Fatal("public key not on curve")
	}
	if k.D.Sign() <= 0 || k.D.Cmp(N) >= 0 {
		t.Fatal("private scalar out of range")
	}
}

func TestKeySerializationRoundTrip(t *testing.T) {
	k := testKey(t, 2)

	raw := k.Pub.SerializeRaw()
	if len(raw) != 64 {
		t.Fatalf("raw length %d", len(raw))
	}
	p1, err := ParsePublicKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(&k.Pub.Point) {
		t.Fatal("raw round trip mismatch")
	}

	unc := k.Pub.SerializeUncompressed()
	if len(unc) != 65 || unc[0] != 0x04 {
		t.Fatalf("bad uncompressed form %x", unc[:2])
	}
	p2, err := ParsePublicKey(unc)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Equal(&k.Pub.Point) {
		t.Fatal("uncompressed round trip mismatch")
	}

	kb := k.Bytes()
	k2, err := PrivateKeyFromBytes(kb)
	if err != nil {
		t.Fatal(err)
	}
	if k2.D.Cmp(k.D) != 0 {
		t.Fatal("private key round trip mismatch")
	}
}

func TestParsePublicKeyRejectsInvalid(t *testing.T) {
	if _, err := ParsePublicKey(make([]byte, 64)); err == nil {
		t.Error("accepted all-zero key")
	}
	if _, err := ParsePublicKey(make([]byte, 10)); err == nil {
		t.Error("accepted short key")
	}
	bad := testKey(t, 3).Pub.SerializeUncompressed()
	bad[0] = 0x02
	if _, err := ParsePublicKey(bad); err == nil {
		t.Error("accepted compressed prefix")
	}
	// Corrupt Y so the point is off-curve.
	bad2 := testKey(t, 4).Pub.SerializeRaw()
	bad2[63] ^= 1
	if _, err := ParsePublicKey(bad2); err == nil {
		t.Error("accepted off-curve point")
	}
}

func TestSignVerify(t *testing.T) {
	k := testKey(t, 5)
	hash := sha256.Sum256([]byte("ethereum network peers"))
	sig, err := Sign(k, hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureLength {
		t.Fatalf("sig length %d", len(sig))
	}
	if !Verify(&k.Pub, hash[:], sig) {
		t.Fatal("valid signature rejected")
	}
	// Mutations must fail.
	bad := append([]byte(nil), sig...)
	bad[10] ^= 1
	if Verify(&k.Pub, hash[:], bad) {
		t.Fatal("corrupted signature accepted")
	}
	otherHash := sha256.Sum256([]byte("different"))
	if Verify(&k.Pub, otherHash[:], sig) {
		t.Fatal("signature accepted for wrong hash")
	}
	other := testKey(t, 6)
	if Verify(&other.Pub, hash[:], sig) {
		t.Fatal("signature accepted for wrong key")
	}
}

func TestSignDeterministic(t *testing.T) {
	k := testKey(t, 7)
	hash := sha256.Sum256([]byte("rfc6979"))
	s1, err1 := Sign(k, hash[:])
	s2, err2 := Sign(k, hash[:])
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("signatures are not deterministic")
	}
}

func TestSignLowS(t *testing.T) {
	k := testKey(t, 8)
	for i := 0; i < 20; i++ {
		hash := sha256.Sum256([]byte{byte(i)})
		sig, err := Sign(k, hash[:])
		if err != nil {
			t.Fatal(err)
		}
		s := new(big.Int).SetBytes(sig[32:64])
		if s.Cmp(halfN) > 0 {
			t.Fatalf("signature %d has high S", i)
		}
	}
}

func TestRecoverPubkey(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		k := testKey(t, seed)
		hash := sha256.Sum256([]byte{byte(seed)})
		sig, err := Sign(k, hash[:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverPubkey(hash[:], sig)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Equal(&k.Pub.Point) {
			t.Fatalf("seed %d: recovered wrong key", seed)
		}
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	hash := sha256.Sum256([]byte("x"))
	if _, err := RecoverPubkey(hash[:], make([]byte, 65)); err == nil {
		t.Error("accepted zero signature")
	}
	sig := make([]byte, 65)
	sig[64] = 9
	if _, err := RecoverPubkey(hash[:], sig); err == nil {
		t.Error("accepted invalid recovery id")
	}
	if _, err := RecoverPubkey(hash[:5], make([]byte, 65)); err == nil {
		t.Error("accepted short hash")
	}
}

func TestSharedSecretAgreement(t *testing.T) {
	a := testKey(t, 30)
	b := testKey(t, 31)
	s1, err := SharedSecret(a, &b.Pub)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SharedSecret(b, &a.Pub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("ECDH secrets disagree")
	}
	if len(s1) != 32 {
		t.Fatalf("secret length %d", len(s1))
	}
	c := testKey(t, 32)
	s3, _ := SharedSecret(a, &c.Pub)
	if bytes.Equal(s1, s3) {
		t.Fatal("distinct peers produced equal secrets")
	}
}

func BenchmarkSign(b *testing.B) {
	k := testKey(b, 40)
	hash := sha256.Sum256([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(k, hash[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	k := testKey(b, 41)
	hash := sha256.Sum256([]byte("bench"))
	sig, _ := Sign(k, hash[:])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Verify(&k.Pub, hash[:], sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkECDH(b *testing.B) {
	k1 := testKey(b, 42)
	k2 := testKey(b, 43)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SharedSecret(k1, &k2.Pub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoverPubkey(b *testing.B) {
	k := testKey(b, 44)
	hash := sha256.Sum256([]byte("bench recover"))
	sig, err := Sign(k, hash[:])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverPubkey(hash[:], sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarBaseMult(b *testing.B) {
	k := testKey(b, 45)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarBaseMult(k.D)
	}
}

func BenchmarkScalarMult(b *testing.B) {
	k := testKey(b, 46)
	p := testKey(b, 47)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarMult(&p.Pub.Point, k.D)
	}
}
