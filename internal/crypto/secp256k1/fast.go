package secp256k1

import "math/big"

// backend is the small interface separating the public API from the
// point-arithmetic implementation. The package runs on fastBackend
// (fixed-limb field, precomputed tables, wNAF/Shamir); oracleBackend
// in oracle.go is the original math/big path, retained as the
// reference for differential tests. Scalars handed to a backend must
// already be reduced mod N.
type backend interface {
	scalarMult(p *Point, k *big.Int) *Point
	scalarBaseMult(k *big.Int) *Point
	add(p, q *Point) *Point
	// doubleScalarBaseMult returns k1·G + k2·p in a single pass.
	doubleScalarBaseMult(k1 *big.Int, p *Point, k2 *big.Int) *Point
}

// active is the backend behind the exported functions. Differential
// tests swap it temporarily; nothing else writes it after init.
var active backend = fastBackend{}

// fastBackend implements backend on the fixed-limb arithmetic.
type fastBackend struct{}

func pointToJac(p *Point) jacPoint {
	if p.IsInfinity() {
		return jacPoint{}
	}
	var j jacPoint
	j.x.setBig(p.X)
	j.y.setBig(p.Y)
	j.z = feOne
	return j
}

func jacToPoint(j *jacPoint) *Point {
	a, ok := j.toAffine()
	if !ok {
		return &Point{}
	}
	return &Point{X: a.x.toBig(), Y: a.y.toBig()}
}

func (fastBackend) scalarBaseMult(k *big.Int) *Point {
	var s scalar
	s.setBig(k)
	j := scalarBaseMultJac(&s)
	return jacToPoint(&j)
}

func (fastBackend) scalarMult(p *Point, k *big.Int) *Point {
	if p.IsInfinity() {
		return &Point{}
	}
	var s scalar
	s.setBig(k)
	pj := pointToJac(p)
	j := scalarMultJac(&pj, &s)
	return jacToPoint(&j)
}

func (fastBackend) add(p, q *Point) *Point {
	pj, qj := pointToJac(p), pointToJac(q)
	var r jacPoint
	r.add(&pj, &qj)
	return jacToPoint(&r)
}

func (fastBackend) doubleScalarBaseMult(k1 *big.Int, p *Point, k2 *big.Int) *Point {
	var s1, s2 scalar
	s1.setBig(k1)
	s2.setBig(k2)
	pj := pointToJac(p)
	j := doubleScalarMultJac(&s1, &pj, &s2)
	return jacToPoint(&j)
}
