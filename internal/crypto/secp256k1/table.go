package secp256k1

// Precomputed base-point tables, built once at package init from the
// authoritative big.Int parameters.
//
//   - gTable[w][d-1] = d · 16^w · G for d ∈ 1..15: a 4-bit windowed
//     decomposition of G multiples. ScalarBaseMult becomes at most 64
//     mixed additions with no doublings at all.
//   - gOdd[i] = (2i+1) · G for i ∈ 0..7: the odd multiples used by
//     the width-5 wNAF half of Shamir dual multiplication (Verify,
//     RecoverPubkey).
//
// Memory: 64·15 affine points · 64 bytes = 60 KiB, built in well
// under a millisecond thanks to batch normalization.
var (
	gTable [64][15]affinePoint
	gOdd   [8]affinePoint
)

func init() {
	initFieldConstants()
	initScalarConstants()
	buildBaseTables()
}

func buildBaseTables() {
	var g affinePoint
	g.x.setBig(Gx)
	g.y.setBig(Gy)

	// windowBase walks 16^w·G; every table entry stays finite because
	// d·16^w < N for all d ≤ 15, w ≤ 63.
	var windowBase jacPoint
	windowBase.setAffine(&g)
	jacs := make([]jacPoint, 0, 64*15)
	for w := 0; w < 64; w++ {
		entry := windowBase
		jacs = append(jacs, entry)
		for d := 2; d <= 15; d++ {
			entry.add(&entry, &windowBase)
			jacs = append(jacs, entry)
		}
		windowBase.double(&windowBase)
		windowBase.double(&windowBase)
		windowBase.double(&windowBase)
		windowBase.double(&windowBase)
	}
	aff := batchToAffine(jacs)
	for w := 0; w < 64; w++ {
		copy(gTable[w][:], aff[w*15:(w+1)*15])
	}
	for i := 0; i < 8; i++ {
		gOdd[i] = gTable[0][2*i] // (2i+1)·G
	}
}

// scalarBaseMultJac computes k·G by walking the windowed table: one
// mixed addition per non-zero nibble of k.
func scalarBaseMultJac(k *scalar) jacPoint {
	var acc jacPoint
	for w := 0; w < 64; w++ {
		nib := (k.n[w/16] >> uint((w%16)*4)) & 15
		if nib != 0 {
			acc.addMixed(&acc, &gTable[w][nib-1])
		}
	}
	return acc
}

// scalarMultJac computes k·P with width-5 wNAF: ~256 doublings plus
// ~43 additions against eight precomputed odd multiples of P.
func scalarMultJac(p *jacPoint, k *scalar) jacPoint {
	naf := k.wnaf(wnafWidth)
	if len(naf) == 0 || p.isInf() {
		return jacPoint{}
	}
	var tbl [8]jacPoint // 1P, 3P, …, 15P
	tbl[0] = *p
	var dbl jacPoint
	dbl.double(p)
	for i := 1; i < 8; i++ {
		tbl[i].add(&tbl[i-1], &dbl)
	}
	var acc jacPoint
	for i := len(naf) - 1; i >= 0; i-- {
		acc.double(&acc)
		if d := naf[i]; d > 0 {
			acc.add(&acc, &tbl[d/2])
		} else if d < 0 {
			neg := tbl[(-d)/2]
			neg.negAssign()
			acc.add(&acc, &neg)
		}
	}
	return acc
}

// doubleScalarMultJac computes u1·G + u2·Q in one Shamir/Straus
// interleaved pass: a single shared doubling chain, with G digits
// resolved as cheap mixed additions against the static gOdd table and
// Q digits against eight odd multiples of Q.
func doubleScalarMultJac(u1 *scalar, q *jacPoint, u2 *scalar) jacPoint {
	naf1 := u1.wnaf(wnafWidth)
	naf2 := u2.wnaf(wnafWidth)
	var qtbl [8]jacPoint // 1Q, 3Q, …, 15Q
	if q.isInf() {
		naf2 = nil
	} else if len(naf2) > 0 {
		qtbl[0] = *q
		var dbl jacPoint
		dbl.double(q)
		for i := 1; i < 8; i++ {
			qtbl[i].add(&qtbl[i-1], &dbl)
		}
	}
	n := len(naf1)
	if len(naf2) > n {
		n = len(naf2)
	}
	var acc jacPoint
	for i := n - 1; i >= 0; i-- {
		acc.double(&acc)
		if i < len(naf1) {
			if d := naf1[i]; d > 0 {
				acc.addMixed(&acc, &gOdd[d/2])
			} else if d < 0 {
				neg := gOdd[(-d)/2]
				neg.y.neg(&neg.y)
				acc.addMixed(&acc, &neg)
			}
		}
		if i < len(naf2) {
			if d := naf2[i]; d > 0 {
				acc.add(&acc, &qtbl[d/2])
			} else if d < 0 {
				neg := qtbl[(-d)/2]
				neg.negAssign()
				acc.add(&acc, &neg)
			}
		}
	}
	return acc
}
