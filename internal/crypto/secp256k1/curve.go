// Package secp256k1 implements the secp256k1 elliptic curve and the
// ECDSA operations Ethereum's network stack depends on: key
// generation, deterministic signing (RFC 6979), verification, public
// key recovery from signatures, and ECDH shared-secret computation.
//
// Ethereum node IDs are secp256k1 public keys; RLPx discovery packets
// are ECDSA-signed with recoverable signatures; and the RLPx transport
// handshake derives its symmetric keys from secp256k1 ECDH. Point
// arithmetic runs on a dedicated fixed-limb field implementation
// (field.go, scalar.go) with precomputed base-point tables and
// wNAF/Shamir multi-scalar multiplication (table.go); the original
// math/big implementation is retained in oracle.go as a
// differential-test reference. Neither path is constant-time and must
// not be used to protect real funds; this package exists to drive a
// protocol measurement stack.
package secp256k1

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Curve parameters (SEC 2: y² = x³ + 7 over F_p).
var (
	// P is the field prime 2^256 - 2^32 - 977.
	P, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f", 16)
	// N is the order of the base point G.
	N, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141", 16)
	// B is the constant term of the curve equation.
	B = big.NewInt(7)
	// Gx, Gy are the base point coordinates.
	Gx, _ = new(big.Int).SetString("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798", 16)
	Gy, _ = new(big.Int).SetString("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8", 16)

	halfN = new(big.Int).Rsh(N, 1)
)

// Point is an affine point on the curve. The zero value is the point
// at infinity.
type Point struct {
	X, Y *big.Int
}

// IsInfinity reports whether p is the point at infinity.
func (p *Point) IsInfinity() bool { return p.X == nil || p.Y == nil }

// Equal reports whether two points are the same affine point.
func (p *Point) Equal(q *Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() == q.IsInfinity()
	}
	return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0
}

// OnCurve reports whether p satisfies y² = x³ + 7 (mod P).
func (p *Point) OnCurve() bool {
	if p.IsInfinity() {
		return false
	}
	if p.X.Sign() < 0 || p.X.Cmp(P) >= 0 || p.Y.Sign() < 0 || p.Y.Cmp(P) >= 0 {
		return false
	}
	y2 := new(big.Int).Mul(p.Y, p.Y)
	y2.Mod(y2, P)
	x3 := new(big.Int).Mul(p.X, p.X)
	x3.Mul(x3, p.X)
	x3.Add(x3, B)
	x3.Mod(x3, P)
	return y2.Cmp(x3) == 0
}

// ScalarMult returns k*p for a point p and scalar k.
func ScalarMult(p *Point, k *big.Int) *Point {
	k = new(big.Int).Mod(k, N)
	if k.Sign() == 0 || p.IsInfinity() {
		return &Point{}
	}
	return active.scalarMult(p, k)
}

// ScalarBaseMult returns k*G.
func ScalarBaseMult(k *big.Int) *Point {
	k = new(big.Int).Mod(k, N)
	if k.Sign() == 0 {
		return &Point{}
	}
	return active.scalarBaseMult(k)
}

// Add returns p + q in affine coordinates.
func Add(p, q *Point) *Point {
	return active.add(p, q)
}

// Neg returns -p.
func Neg(p *Point) *Point {
	if p.IsInfinity() {
		return &Point{}
	}
	return &Point{new(big.Int).Set(p.X), new(big.Int).Sub(P, p.Y)}
}

// PrivateKey is a secp256k1 private key with its public point.
type PrivateKey struct {
	D   *big.Int
	Pub PublicKey
}

// PublicKey is a point on the curve.
type PublicKey struct {
	Point
}

// GenerateKey creates a private key using entropy from rand.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	buf := make([]byte, 32)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, fmt.Errorf("secp256k1: reading entropy: %w", err)
		}
		d := new(big.Int).SetBytes(buf)
		if d.Sign() > 0 && d.Cmp(N) < 0 {
			return PrivateKeyFromScalar(d)
		}
	}
}

// PrivateKeyFromScalar builds a key pair from a scalar in [1, N-1].
func PrivateKeyFromScalar(d *big.Int) (*PrivateKey, error) {
	if d.Sign() <= 0 || d.Cmp(N) >= 0 {
		return nil, errors.New("secp256k1: scalar out of range")
	}
	pub := ScalarBaseMult(d)
	return &PrivateKey{D: new(big.Int).Set(d), Pub: PublicKey{*pub}}, nil
}

// PrivateKeyFromBytes parses a 32-byte big-endian scalar.
func PrivateKeyFromBytes(b []byte) (*PrivateKey, error) {
	if len(b) != 32 {
		return nil, fmt.Errorf("secp256k1: private key must be 32 bytes, got %d", len(b))
	}
	return PrivateKeyFromScalar(new(big.Int).SetBytes(b))
}

// Bytes returns the 32-byte big-endian scalar.
func (k *PrivateKey) Bytes() []byte {
	out := make([]byte, 32)
	k.D.FillBytes(out)
	return out
}

// SerializeUncompressed returns the 65-byte 0x04-prefixed encoding.
func (p *PublicKey) SerializeUncompressed() []byte {
	out := make([]byte, 65)
	out[0] = 0x04
	p.X.FillBytes(out[1:33])
	p.Y.FillBytes(out[33:65])
	return out
}

// SerializeRaw returns the 64-byte X||Y encoding used for Ethereum
// node IDs (no prefix byte).
func (p *PublicKey) SerializeRaw() []byte {
	out := make([]byte, 64)
	p.X.FillBytes(out[:32])
	p.Y.FillBytes(out[32:])
	return out
}

// ParsePublicKey accepts 65-byte (0x04-prefixed) or 64-byte raw
// encodings and validates that the point is on the curve.
func ParsePublicKey(b []byte) (*PublicKey, error) {
	switch len(b) {
	case 65:
		if b[0] != 0x04 {
			return nil, fmt.Errorf("secp256k1: unsupported public key prefix 0x%02x", b[0])
		}
		b = b[1:]
	case 64:
	default:
		return nil, fmt.Errorf("secp256k1: invalid public key length %d", len(b))
	}
	p := &PublicKey{Point{
		X: new(big.Int).SetBytes(b[:32]),
		Y: new(big.Int).SetBytes(b[32:]),
	}}
	if !p.OnCurve() {
		return nil, errors.New("secp256k1: point not on curve")
	}
	return p, nil
}

// SharedSecret computes the ECDH shared secret: the X coordinate of
// d*Q, as a 32-byte value. This is the agreement used by RLPx/ECIES.
func SharedSecret(priv *PrivateKey, pub *PublicKey) ([]byte, error) {
	if pub == nil || pub.IsInfinity() {
		return nil, errors.New("secp256k1: nil public key")
	}
	p := ScalarMult(&pub.Point, priv.D)
	if p.IsInfinity() {
		return nil, errors.New("secp256k1: ECDH produced point at infinity")
	}
	out := make([]byte, 32)
	p.X.FillBytes(out)
	return out, nil
}

// hmacDRBG implements the RFC 6979 deterministic nonce generator over
// HMAC-SHA256.
func rfc6979Nonce(priv *PrivateKey, hash []byte, attempt int) *big.Int {
	x := priv.Bytes()
	h := bits2octets(hash)

	v := make([]byte, 32)
	k := make([]byte, 32)
	for i := range v {
		v[i] = 0x01
	}
	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}
	k = mac(k, v, []byte{0x00}, x, h)
	v = mac(k, v)
	k = mac(k, v, []byte{0x01}, x, h)
	v = mac(k, v)

	for i := 0; ; i++ {
		v = mac(k, v)
		t := new(big.Int).SetBytes(v)
		if t.Sign() > 0 && t.Cmp(N) < 0 {
			if i >= attempt {
				return t
			}
		}
		k = mac(k, v, []byte{0x00})
		v = mac(k, v)
	}
}

// bits2octets reduces the hash modulo N per RFC 6979 §2.3.
func bits2octets(hash []byte) []byte {
	z := hashToInt(hash)
	z.Mod(z, N)
	out := make([]byte, 32)
	z.FillBytes(out)
	return out
}

// hashToInt converts a hash to an integer, truncating to the bit
// length of N as per SEC 1 §4.1.3.
func hashToInt(hash []byte) *big.Int {
	orderBytes := (N.BitLen() + 7) / 8
	if len(hash) > orderBytes {
		hash = hash[:orderBytes]
	}
	z := new(big.Int).SetBytes(hash)
	excess := len(hash)*8 - N.BitLen()
	if excess > 0 {
		z.Rsh(z, uint(excess))
	}
	return z
}
