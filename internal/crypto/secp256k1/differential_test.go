package secp256k1

// Differential tests: every operation of the fixed-limb fast path is
// checked against independent arithmetic — math/big for field and
// scalar ops, the retained oracleBackend for point ops. The Fuzz*
// functions are `go test -fuzz`-compatible; under plain `go test`
// they run their seed corpus, which deliberately includes the
// boundary values 0, 1, p−1, p, N−1, N and all-ones.

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"testing"
)

// fuzzSeeds are 32-byte big-endian boundary values every fuzz target
// seeds with (pairwise).
func fuzzSeeds() [][32]byte {
	mk := func(x *big.Int) (b [32]byte) {
		x.FillBytes(b[:])
		return
	}
	var ones [32]byte
	for i := range ones {
		ones[i] = 0xFF
	}
	return [][32]byte{
		mk(big.NewInt(0)),
		mk(big.NewInt(1)),
		mk(big.NewInt(2)),
		mk(new(big.Int).Sub(P, big.NewInt(1))),
		mk(P),
		mk(new(big.Int).Add(P, big.NewInt(1))),
		mk(new(big.Int).Sub(N, big.NewInt(1))),
		mk(N),
		mk(halfN),
		ones,
	}
}

func to32(b []byte) (out [32]byte) {
	copy(out[32-min32(len(b)):], b[:min32(len(b))])
	return
}

func min32(n int) int {
	if n > 32 {
		return 32
	}
	return n
}

// checkFieldPair cross-checks every field op on one input pair.
func checkFieldPair(t *testing.T, ab, bb [32]byte) {
	t.Helper()
	var fa, fb fieldElement
	fa.setBytes(&ab)
	fb.setBytes(&bb)
	ba := new(big.Int).Mod(new(big.Int).SetBytes(ab[:]), P)
	bbi := new(big.Int).Mod(new(big.Int).SetBytes(bb[:]), P)

	if fa.toBig().Cmp(ba) != 0 {
		t.Fatalf("setBytes: %x != %x", fa.toBig(), ba)
	}

	var r fieldElement
	r.add(&fa, &fb)
	want := new(big.Int).Mod(new(big.Int).Add(ba, bbi), P)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("add(%x, %x) = %x, want %x", ba, bbi, r.toBig(), want)
	}

	r.sub(&fa, &fb)
	want = new(big.Int).Mod(new(big.Int).Sub(ba, bbi), P)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("sub(%x, %x) = %x, want %x", ba, bbi, r.toBig(), want)
	}

	r.mul(&fa, &fb)
	want = new(big.Int).Mod(new(big.Int).Mul(ba, bbi), P)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("mul(%x, %x) = %x, want %x", ba, bbi, r.toBig(), want)
	}

	r.sqr(&fa)
	want = new(big.Int).Mod(new(big.Int).Mul(ba, ba), P)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("sqr(%x) = %x, want %x", ba, r.toBig(), want)
	}

	r.neg(&fa)
	want = new(big.Int).Mod(new(big.Int).Neg(ba), P)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("neg(%x) = %x, want %x", ba, r.toBig(), want)
	}

	for _, k := range []uint64{2, 3, 4, 8} {
		r.mulSmall(&fa, k)
		want = new(big.Int).Mod(new(big.Int).Mul(ba, new(big.Int).SetUint64(k)), P)
		if r.toBig().Cmp(want) != 0 {
			t.Errorf("mulSmall(%x, %d) = %x, want %x", ba, k, r.toBig(), want)
		}
	}

	if ba.Sign() != 0 {
		r.inv(&fa)
		want = new(big.Int).ModInverse(ba, P)
		if r.toBig().Cmp(want) != 0 {
			t.Errorf("inv(%x) = %x, want %x", ba, r.toBig(), want)
		}
	}

	// sqrt(a²) must return a root whose square is a².
	var sq, root fieldElement
	sq.sqr(&fa)
	if !root.sqrt(&sq) {
		t.Errorf("sqrt rejected the square of %x", ba)
	} else {
		var back fieldElement
		back.sqr(&root)
		if !back.equal(&sq) {
			t.Errorf("sqrt(%x)² = %x", sq.toBig(), back.toBig())
		}
	}
}

// checkScalarPair cross-checks every scalar op on one input pair.
func checkScalarPair(t *testing.T, ab, bb [32]byte) {
	t.Helper()
	var sa, sb scalar
	sa.setBytes(&ab)
	sb.setBytes(&bb)
	ba := new(big.Int).Mod(new(big.Int).SetBytes(ab[:]), N)
	bbi := new(big.Int).Mod(new(big.Int).SetBytes(bb[:]), N)

	if sa.toBig().Cmp(ba) != 0 {
		t.Fatalf("scalar setBytes: %x != %x", sa.toBig(), ba)
	}

	var r scalar
	r.add(&sa, &sb)
	want := new(big.Int).Mod(new(big.Int).Add(ba, bbi), N)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("scalar add(%x, %x) = %x, want %x", ba, bbi, r.toBig(), want)
	}

	r.mul(&sa, &sb)
	want = new(big.Int).Mod(new(big.Int).Mul(ba, bbi), N)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("scalar mul(%x, %x) = %x, want %x", ba, bbi, r.toBig(), want)
	}

	r.neg(&sa)
	want = new(big.Int).Mod(new(big.Int).Neg(ba), N)
	if r.toBig().Cmp(want) != 0 {
		t.Errorf("scalar neg(%x) = %x, want %x", ba, r.toBig(), want)
	}

	if ba.Sign() != 0 {
		r.inverse(&sa)
		want = new(big.Int).ModInverse(ba, N)
		if r.toBig().Cmp(want) != 0 {
			t.Errorf("scalar inverse(%x) = %x, want %x", ba, r.toBig(), want)
		}
	}

	if got, want := sa.isHigh(), ba.Cmp(halfN) > 0; got != want {
		t.Errorf("isHigh(%x) = %v, want %v", ba, got, want)
	}
}

// checkPointPair cross-checks fast point arithmetic against the
// math/big oracle for one scalar pair.
func checkPointPair(t *testing.T, kb, mb [32]byte) {
	t.Helper()
	oracle := oracleBackend{}
	fast := fastBackend{}
	k := new(big.Int).Mod(new(big.Int).SetBytes(kb[:]), N)
	m := new(big.Int).Mod(new(big.Int).SetBytes(mb[:]), N)

	wantKG := oracle.scalarBaseMult(k)
	gotKG := fast.scalarBaseMult(k)
	if !gotKG.Equal(wantKG) {
		t.Fatalf("scalarBaseMult(%x) mismatch", k)
	}
	wantMG := oracle.scalarBaseMult(m)

	if !wantKG.IsInfinity() {
		got := fast.scalarMult(wantKG, m)
		want := oracle.scalarMult(wantKG, m)
		if !got.Equal(want) {
			t.Errorf("scalarMult(%x·G, %x) mismatch", k, m)
		}
	}

	got := fast.add(wantKG, wantMG)
	want := oracle.add(wantKG, wantMG)
	if !got.Equal(want) {
		t.Errorf("add(%x·G, %x·G) mismatch", k, m)
	}

	if !wantMG.IsInfinity() {
		got = fast.doubleScalarBaseMult(k, wantMG, m)
		want = oracle.doubleScalarBaseMult(k, wantMG, m)
		if !got.Equal(want) {
			t.Errorf("doubleScalarBaseMult(%x, %x·G, %x) mismatch", k, m, m)
		}
	}
}

func TestFieldDifferentialEdgeAndRandom(t *testing.T) {
	seeds := fuzzSeeds()
	for _, a := range seeds {
		for _, b := range seeds {
			checkFieldPair(t, a, b)
		}
	}
	rng := testRand(1001)
	for i := 0; i < 200; i++ {
		var a, b [32]byte
		rng.Read(a[:])
		rng.Read(b[:])
		checkFieldPair(t, a, b)
	}
}

func TestScalarDifferentialEdgeAndRandom(t *testing.T) {
	seeds := fuzzSeeds()
	for _, a := range seeds {
		for _, b := range seeds {
			checkScalarPair(t, a, b)
		}
	}
	rng := testRand(1002)
	for i := 0; i < 200; i++ {
		var a, b [32]byte
		rng.Read(a[:])
		rng.Read(b[:])
		checkScalarPair(t, a, b)
	}
}

func TestPointDifferentialEdgeAndRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle point arithmetic is slow")
	}
	seeds := fuzzSeeds()
	// The oracle is ~1.5 ms per multiplication, so pair edges with a
	// fixed partner instead of the full cross product.
	partner := to32([]byte{0x42, 0x42, 0x42})
	for _, a := range seeds {
		checkPointPair(t, a, partner)
	}
	rng := testRand(1003)
	for i := 0; i < 8; i++ {
		var a, b [32]byte
		rng.Read(a[:])
		rng.Read(b[:])
		checkPointPair(t, a, b)
	}
}

// TestWNAFReconstruction rebuilds scalars from their wNAF digits.
func TestWNAFReconstruction(t *testing.T) {
	rng := testRand(1004)
	check := func(k *big.Int) {
		var s scalar
		s.setBig(k)
		naf := s.wnaf(wnafWidth)
		sum := new(big.Int)
		for i := len(naf) - 1; i >= 0; i-- {
			sum.Lsh(sum, 1)
			sum.Add(sum, big.NewInt(int64(naf[i])))
		}
		if sum.Cmp(s.toBig()) != 0 {
			t.Fatalf("wNAF of %x reconstructs to %x", s.toBig(), sum)
		}
		// Non-adjacency: no two consecutive non-zero digits.
		for i := 1; i < len(naf); i++ {
			if naf[i] != 0 && naf[i-1] != 0 {
				t.Fatalf("adjacent non-zero wNAF digits for %x", s.toBig())
			}
		}
	}
	check(big.NewInt(0))
	check(big.NewInt(1))
	check(new(big.Int).Sub(N, big.NewInt(1)))
	for i := 0; i < 100; i++ {
		var b [32]byte
		rng.Read(b[:])
		check(new(big.Int).SetBytes(b[:]))
	}
}

// TestSignDifferentialBackends checks that signatures produced on the
// fast backend and on the oracle are byte-identical (RFC 6979 makes
// signing deterministic) and cross-verify.
func TestSignDifferentialBackends(t *testing.T) {
	k := testKey(t, 77)
	hash := sha256.Sum256([]byte("differential backends"))

	fastSig, err := Sign(k, hash[:])
	if err != nil {
		t.Fatal(err)
	}

	active = oracleBackend{}
	defer func() { active = fastBackend{} }()
	oracleSig, err := Sign(k, hash[:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fastSig, oracleSig) {
		t.Fatalf("fast sig %x != oracle sig %x", fastSig, oracleSig)
	}
	// Verify and recover the fast signature while the oracle backend
	// is active.
	if !Verify(&k.Pub, hash[:], fastSig) {
		t.Error("oracle backend rejected fast signature")
	}
	rec, err := RecoverPubkey(hash[:], fastSig)
	if err != nil || !rec.Equal(&k.Pub.Point) {
		t.Errorf("oracle backend failed to recover from fast signature: %v", err)
	}
}

func FuzzFieldArithmetic(f *testing.F) {
	seeds := fuzzSeeds()
	for i := range seeds {
		f.Add(seeds[i][:], seeds[(i+1)%len(seeds)][:])
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkFieldPair(t, to32(a), to32(b))
	})
}

func FuzzScalarArithmetic(f *testing.F) {
	seeds := fuzzSeeds()
	for i := range seeds {
		f.Add(seeds[i][:], seeds[(i+1)%len(seeds)][:])
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkScalarPair(t, to32(a), to32(b))
	})
}

func FuzzPointArithmetic(f *testing.F) {
	// Few seeds: each case runs four oracle multiplications at
	// ~1.5 ms apiece.
	f.Add([]byte{0x01}, []byte{0x02})
	f.Add(fuzzSeeds()[6][:], fuzzSeeds()[9][:]) // N−1, all-ones
	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkPointPair(t, to32(a), to32(b))
	})
}
