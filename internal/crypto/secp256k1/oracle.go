package secp256k1

import "math/big"

// oracleBackend is the original math/big Jacobian implementation,
// retained verbatim as the reference oracle for the fixed-limb fast
// path. It is roughly 20× slower and exists so differential and fuzz
// tests can check every fast operation against independent
// arithmetic; nothing on the hot path uses it.
type oracleBackend struct{}

// jacobian is a point in Jacobian projective coordinates:
// x = X/Z², y = Y/Z³. Z = 0 is the point at infinity.
type jacobian struct {
	x, y, z *big.Int
}

func toJacobian(p *Point) *jacobian {
	if p.IsInfinity() {
		return &jacobian{new(big.Int), new(big.Int), new(big.Int)}
	}
	return &jacobian{new(big.Int).Set(p.X), new(big.Int).Set(p.Y), big.NewInt(1)}
}

func (j *jacobian) toAffine() *Point {
	if j.z.Sign() == 0 {
		return &Point{}
	}
	zinv := new(big.Int).ModInverse(j.z, P)
	zinv2 := new(big.Int).Mul(zinv, zinv)
	zinv2.Mod(zinv2, P)
	x := new(big.Int).Mul(j.x, zinv2)
	x.Mod(x, P)
	zinv3 := zinv2.Mul(zinv2, zinv)
	zinv3.Mod(zinv3, P)
	y := new(big.Int).Mul(j.y, zinv3)
	y.Mod(y, P)
	return &Point{x, y}
}

// double returns 2*j using the standard dbl-2007-a formulas
// specialized for a = 0.
func (j *jacobian) double() *jacobian {
	if j.z.Sign() == 0 || j.y.Sign() == 0 {
		return &jacobian{new(big.Int), new(big.Int), new(big.Int)}
	}
	a := new(big.Int).Mul(j.x, j.x) // X²
	a.Mod(a, P)
	b := new(big.Int).Mul(j.y, j.y) // Y²
	b.Mod(b, P)
	c := new(big.Int).Mul(b, b) // Y⁴
	c.Mod(c, P)

	// D = 2*((X+B)² - A - C)
	d := new(big.Int).Add(j.x, b)
	d.Mul(d, d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Lsh(d, 1)
	d.Mod(d, P)

	// E = 3*A; F = E² - 2*D
	e := new(big.Int).Lsh(a, 1)
	e.Add(e, a)
	e.Mod(e, P)
	f := new(big.Int).Mul(e, e)
	f.Sub(f, new(big.Int).Lsh(d, 1))
	f.Mod(f, P)

	x3 := f
	y3 := new(big.Int).Sub(d, f)
	y3.Mul(y3, e)
	y3.Sub(y3, new(big.Int).Lsh(c, 3))
	y3.Mod(y3, P)
	z3 := new(big.Int).Mul(j.y, j.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, P)
	return &jacobian{normalize(x3), normalize(y3), z3}
}

// add returns j + q (mixed/general Jacobian addition).
func (j *jacobian) add(q *jacobian) *jacobian {
	if j.z.Sign() == 0 {
		return &jacobian{new(big.Int).Set(q.x), new(big.Int).Set(q.y), new(big.Int).Set(q.z)}
	}
	if q.z.Sign() == 0 {
		return &jacobian{new(big.Int).Set(j.x), new(big.Int).Set(j.y), new(big.Int).Set(j.z)}
	}
	z1z1 := new(big.Int).Mul(j.z, j.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(q.z, q.z)
	z2z2.Mod(z2z2, P)
	u1 := new(big.Int).Mul(j.x, z2z2)
	u1.Mod(u1, P)
	u2 := new(big.Int).Mul(q.x, z1z1)
	u2.Mod(u2, P)
	s1 := new(big.Int).Mul(j.y, q.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, P)
	s2 := new(big.Int).Mul(q.y, j.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, P)

	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			// P + (-P) = infinity
			return &jacobian{new(big.Int), new(big.Int), new(big.Int)}
		}
		return j.double()
	}

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, P)
	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, P)
	jj := new(big.Int).Mul(h, i)
	jj.Mod(jj, P)
	r := new(big.Int).Sub(s2, s1)
	r.Lsh(r, 1)
	r.Mod(r, P)
	v := new(big.Int).Mul(u1, i)
	v.Mod(v, P)

	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, jj)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	x3.Mod(x3, P)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	t := new(big.Int).Mul(s1, jj)
	t.Lsh(t, 1)
	y3.Sub(y3, t)
	y3.Mod(y3, P)

	z3 := new(big.Int).Add(j.z, q.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, P)
	return &jacobian{normalize(x3), normalize(y3), normalize(z3)}
}

func normalize(v *big.Int) *big.Int {
	if v.Sign() < 0 {
		v.Add(v, P)
	}
	return v
}

func (oracleBackend) scalarMult(p *Point, k *big.Int) *Point {
	if k.Sign() == 0 || p.IsInfinity() {
		return &Point{}
	}
	acc := &jacobian{new(big.Int), new(big.Int), new(big.Int)}
	base := toJacobian(p)
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if k.Bit(i) == 1 {
			acc = acc.add(base)
		}
	}
	return acc.toAffine()
}

func (o oracleBackend) scalarBaseMult(k *big.Int) *Point {
	return o.scalarMult(&Point{Gx, Gy}, k)
}

func (oracleBackend) add(p, q *Point) *Point {
	return toJacobian(p).add(toJacobian(q)).toAffine()
}

func (o oracleBackend) doubleScalarBaseMult(k1 *big.Int, p *Point, k2 *big.Int) *Point {
	return o.add(o.scalarBaseMult(k1), o.scalarMult(p, k2))
}
