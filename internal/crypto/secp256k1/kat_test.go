package secp256k1

import (
	"crypto/sha256"
	"encoding/hex"
	"math/big"
	"testing"
)

// TestRFC6979KnownVector checks the deterministic-nonce signer
// against the widely published secp256k1 RFC 6979 vector (private
// key 0x01, message "Satoshi Nakamoto"). Matching it end-to-end
// validates the nonce generator, scalar arithmetic, and low-S
// canonicalization against independent implementations.
func TestRFC6979KnownVector(t *testing.T) {
	k, err := PrivateKeyFromScalar(big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256([]byte("Satoshi Nakamoto"))
	sig, err := Sign(k, h[:])
	if err != nil {
		t.Fatal(err)
	}
	wantR := "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
	wantS := "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
	if got := hex.EncodeToString(sig[:32]); got != wantR {
		t.Errorf("r = %s, want %s", got, wantR)
	}
	if got := hex.EncodeToString(sig[32:64]); got != wantS {
		t.Errorf("s = %s, want %s", got, wantS)
	}
	// The recoverable form must also verify and recover.
	if !Verify(&k.Pub, h[:], sig) {
		t.Error("vector signature does not verify")
	}
	rec, err := RecoverPubkey(h[:], sig)
	if err != nil || !rec.Equal(&k.Pub.Point) {
		t.Errorf("recovery failed: %v", err)
	}
}
