// Package ecies implements the Elliptic Curve Integrated Encryption
// Scheme as profiled by RLPx, Ethereum's transport handshake.
//
// RLPx encrypts its auth and ack handshake messages with
// ECIES(secp256k1, SHA-256 concat-KDF, AES-128-CTR, HMAC-SHA256).
// The ciphertext layout is:
//
//	0x04 || ephemeral pubkey (64) || IV (16) || ciphertext || MAC (32)
//
// The MAC covers IV || ciphertext with an optional shared-info
// suffix s2; RLPx uses the encrypted message length prefix as s2 in
// the EIP-8 framing.
package ecies

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"repro/internal/crypto/secp256k1"
)

// Overhead is the number of bytes ECIES adds to a plaintext:
// 65-byte ephemeral key, 16-byte IV, 32-byte MAC.
const Overhead = 65 + 16 + 32

// ErrInvalidMAC is returned when the authentication tag check fails.
var ErrInvalidMAC = errors.New("ecies: invalid message authentication code")

// ErrTooShort is returned for ciphertexts below the minimum size.
var ErrTooShort = errors.New("ecies: ciphertext too short")

// kdf derives length bytes from the shared secret z and shared info
// s1 using the NIST SP 800-56 concatenation KDF with SHA-256.
func kdf(z, s1 []byte, length int) []byte {
	out := make([]byte, 0, length+sha256.Size)
	var counter uint32 = 1
	for len(out) < length {
		h := sha256.New()
		var ctr [4]byte
		ctr[0] = byte(counter >> 24)
		ctr[1] = byte(counter >> 16)
		ctr[2] = byte(counter >> 8)
		ctr[3] = byte(counter)
		h.Write(ctr[:])
		h.Write(z)
		h.Write(s1)
		out = h.Sum(out)
		counter++
	}
	return out[:length]
}

// deriveKeys splits KDF output into the 16-byte AES key and the
// SHA-256-hashed MAC key.
func deriveKeys(z, s1 []byte) (ke, km []byte) {
	k := kdf(z, s1, 32)
	ke = k[:16]
	kmRaw := sha256.Sum256(k[16:32])
	return ke, kmRaw[:]
}

func messageTag(km, ivCiphertext, s2 []byte) []byte {
	mac := hmac.New(sha256.New, km)
	mac.Write(ivCiphertext)
	mac.Write(s2)
	return mac.Sum(nil)
}

// Encrypt encrypts msg for the owner of pub. s1 feeds the KDF and s2
// feeds the MAC; either may be nil. rand supplies the ephemeral key
// and IV.
func Encrypt(rand io.Reader, pub *secp256k1.PublicKey, msg, s1, s2 []byte) ([]byte, error) {
	eph, err := secp256k1.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("ecies: ephemeral key: %w", err)
	}
	z, err := secp256k1.SharedSecret(eph, pub)
	if err != nil {
		return nil, fmt.Errorf("ecies: ECDH: %w", err)
	}
	ke, km := deriveKeys(z, s1)

	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rand, iv); err != nil {
		return nil, fmt.Errorf("ecies: IV: %w", err)
	}
	block, err := aes.NewCipher(ke)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, len(msg))
	cipher.NewCTR(block, iv).XORKeyStream(ct, msg)

	out := make([]byte, 0, Overhead+len(msg))
	out = append(out, eph.Pub.SerializeUncompressed()...)
	out = append(out, iv...)
	out = append(out, ct...)
	out = append(out, messageTag(km, out[65:], s2)...)
	return out, nil
}

// Decrypt reverses Encrypt using the recipient's private key.
func Decrypt(priv *secp256k1.PrivateKey, ct, s1, s2 []byte) ([]byte, error) {
	if len(ct) < Overhead {
		return nil, ErrTooShort
	}
	ephPub, err := secp256k1.ParsePublicKey(ct[:65])
	if err != nil {
		return nil, fmt.Errorf("ecies: ephemeral key: %w", err)
	}
	z, err := secp256k1.SharedSecret(priv, ephPub)
	if err != nil {
		return nil, fmt.Errorf("ecies: ECDH: %w", err)
	}
	ke, km := deriveKeys(z, s1)

	body := ct[65 : len(ct)-32]
	tag := ct[len(ct)-32:]
	if !hmac.Equal(tag, messageTag(km, body, s2)) {
		return nil, ErrInvalidMAC
	}

	block, err := aes.NewCipher(ke)
	if err != nil {
		return nil, err
	}
	iv, payload := body[:aes.BlockSize], body[aes.BlockSize:]
	out := make([]byte, len(payload))
	cipher.NewCTR(block, iv).XORKeyStream(out, payload)
	return out, nil
}
