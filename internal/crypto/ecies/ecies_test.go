package ecies

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto/secp256k1"
)

func testKey(t testing.TB, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey(t, 1)
	rng := rand.New(rand.NewSource(2))
	msg := []byte("RLPx auth message body")
	ct, err := Encrypt(rng, &k.Pub, msg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != len(msg)+Overhead {
		t.Fatalf("ciphertext length %d, want %d", len(ct), len(msg)+Overhead)
	}
	pt, err := Decrypt(k, ct, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("got %q", pt)
	}
}

func TestSharedInfo(t *testing.T) {
	k := testKey(t, 3)
	rng := rand.New(rand.NewSource(4))
	msg := []byte("with shared info")
	s1, s2 := []byte("kdf-info"), []byte("mac-info")
	ct, err := Encrypt(rng, &k.Pub, msg, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k, ct, s1, nil); err != ErrInvalidMAC {
		t.Errorf("wrong s2: got %v, want ErrInvalidMAC", err)
	}
	if _, err := Decrypt(k, ct, nil, s2); err == nil {
		t.Error("wrong s1 accepted")
	}
	pt, err := Decrypt(k, ct, s1, s2)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("got %q, %v", pt, err)
	}
}

func TestTamperDetection(t *testing.T) {
	k := testKey(t, 5)
	rng := rand.New(rand.NewSource(6))
	ct, err := Encrypt(rng, &k.Pub, []byte("payload"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{65, 70, 81, len(ct) - 33, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[pos] ^= 1
		if _, err := Decrypt(k, bad, nil, nil); err == nil {
			t.Errorf("tampered byte %d accepted", pos)
		}
	}
}

func TestWrongRecipient(t *testing.T) {
	k1, k2 := testKey(t, 7), testKey(t, 8)
	rng := rand.New(rand.NewSource(9))
	ct, err := Encrypt(rng, &k1.Pub, []byte("secret"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(k2, ct, nil, nil); err == nil {
		t.Error("wrong key decrypted successfully")
	}
}

func TestShortCiphertext(t *testing.T) {
	k := testKey(t, 10)
	if _, err := Decrypt(k, make([]byte, Overhead-1), nil, nil); err != ErrTooShort {
		t.Errorf("got %v, want ErrTooShort", err)
	}
}

func TestEmptyMessage(t *testing.T) {
	k := testKey(t, 11)
	rng := rand.New(rand.NewSource(12))
	ct, err := Encrypt(rng, &k.Pub, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Decrypt(k, ct, nil, nil)
	if err != nil || len(pt) != 0 {
		t.Fatalf("got %q, %v", pt, err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	k := testKey(t, 13)
	rng := rand.New(rand.NewSource(14))
	f := func(msg []byte) bool {
		ct, err := Encrypt(rng, &k.Pub, msg, nil, nil)
		if err != nil {
			return false
		}
		pt, err := Decrypt(k, ct, nil, nil)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestKDFLengths(t *testing.T) {
	z := []byte{1, 2, 3}
	for _, n := range []int{1, 16, 31, 32, 33, 64, 100} {
		out := kdf(z, nil, n)
		if len(out) != n {
			t.Errorf("kdf length %d: got %d", n, len(out))
		}
	}
	// Different shared info must produce different keys.
	if bytes.Equal(kdf(z, []byte("a"), 32), kdf(z, []byte("b"), 32)) {
		t.Error("kdf ignores shared info")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	k := testKey(b, 20)
	rng := rand.New(rand.NewSource(21))
	msg := make([]byte, 194) // typical RLPx auth body size
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(rng, &k.Pub, msg, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	k := testKey(b, 22)
	rng := rand.New(rand.NewSource(23))
	msg := make([]byte, 194)
	ct, _ := Encrypt(rng, &k.Pub, msg, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(k, ct, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
