// Package keccak implements the legacy Keccak hash family used by
// Ethereum.
//
// Ethereum adopted Keccak before NIST finalized SHA-3, so it uses the
// original Keccak padding (domain byte 0x01) rather than the SHA-3
// padding (0x06). All Ethereum identifiers that the network protocols
// depend on — node distance keys (Keccak-256 of the node ID), block
// and genesis hashes, RLPx MAC states — use this legacy variant.
//
// The implementation is a straightforward sponge over Keccak-f[1600]
// with no assembly; it favors clarity and has no dependencies beyond
// the standard library.
package keccak

import "hash"

// Size256 is the byte length of a Keccak-256 digest.
const Size256 = 32

// Size512 is the byte length of a Keccak-512 digest.
const Size512 = 64

// roundConstants for Keccak-f[1600] (24 rounds).
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y].
var rotc = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// keccakF1600 applies the 24-round Keccak-f permutation in place.
func keccakF1600(a *[25]uint64) {
	var b [25]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// rho and pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl(a[x+5*y], rotc[x][y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// digest is the sponge state implementing hash.Hash. Unabsorbed
// input lives in storage[:bufLen]; tracking a length instead of a
// slice keeps the struct free of interior pointers, so copies are
// plain value copies and escape analysis can keep short-lived
// digests (Sum256, Sum snapshots) on the stack.
type digest struct {
	state   [25]uint64
	rate    int  // sponge rate in bytes (block size)
	size    int  // output size in bytes
	dsbyte  byte // domain separation + first padding byte
	bufLen  int  // bytes of storage holding unabsorbed input
	storage [136]byte
}

// New256 returns a legacy Keccak-256 hash (Ethereum's variant, NOT
// NIST SHA3-256).
func New256() hash.Hash { return newDigest(136, Size256, 0x01) }

// New512 returns a legacy Keccak-512 hash.
func New512() hash.Hash { return newDigest(72, Size512, 0x01) }

// NewSHA3_256 returns a NIST SHA3-256 hash (domain byte 0x06),
// provided for comparison and tests.
func NewSHA3_256() hash.Hash { return newDigest(136, Size256, 0x06) }

func newDigest(rate, size int, dsbyte byte) *digest {
	d := &digest{}
	d.init(rate, size, dsbyte)
	return d
}

func (d *digest) init(rate, size int, dsbyte byte) {
	d.rate, d.size, d.dsbyte = rate, size, dsbyte
}

// Sum256 computes the legacy Keccak-256 digest of data. The sponge
// state lives on the stack and finalize squeezes straight into out,
// so a call performs no heap allocation.
func Sum256(data []byte) [Size256]byte {
	var out [Size256]byte
	var d digest
	d.init(136, Size256, 0x01)
	d.Write(data)
	d.finalize(out[:0])
	return out
}

// Sum512 computes the legacy Keccak-512 digest of data without heap
// allocation.
func Sum512(data []byte) [Size512]byte {
	var out [Size512]byte
	var d digest
	d.init(72, Size512, 0x01)
	d.Write(data)
	d.finalize(out[:0])
	return out
}

func (d *digest) Size() int { return d.size }

func (d *digest) BlockSize() int { return d.rate }

func (d *digest) Reset() {
	d.state = [25]uint64{}
	d.bufLen = 0
}

func (d *digest) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := d.rate - d.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(d.storage[d.bufLen:], p[:space])
		d.bufLen += space
		p = p[space:]
		if d.bufLen == d.rate {
			d.absorb()
		}
	}
	return n, nil
}

// absorb XORs a full rate-sized block into the state and permutes.
func (d *digest) absorb() {
	for i := 0; i < d.rate/8; i++ {
		d.state[i] ^= le64(d.storage[i*8:])
	}
	keccakF1600(&d.state)
	d.bufLen = 0
}

// Sum appends the digest to b without disturbing the running state:
// the sponge is a plain value, so a stack copy snapshots it.
func (d *digest) Sum(b []byte) []byte {
	dup := *d
	return dup.finalize(b)
}

func (d *digest) finalize(b []byte) []byte {
	// Pad: dsbyte, zeros, final 0x80 (multi-rate padding pad10*1).
	d.storage[d.bufLen] = d.dsbyte
	for i := d.bufLen + 1; i < d.rate; i++ {
		d.storage[i] = 0
	}
	d.storage[d.rate-1] |= 0x80
	d.absorb()

	// Squeeze directly into b, growing it only if it lacks capacity;
	// Sum(buf[:0]) with enough room is allocation-free.
	total := len(b) + d.size
	var ret []byte
	if cap(b) >= total {
		ret = b[:total]
	} else {
		ret = make([]byte, total)
		copy(ret, b)
	}
	out := ret[total-d.size:]
	n := 0
	for n < d.size {
		chunk := d.rate
		if d.size-n < chunk {
			chunk = d.size - n
		}
		for i := 0; i < (chunk+7)/8; i++ {
			putLE64(out[n+i*8:], d.state[i])
		}
		n += chunk
		if n < d.size {
			keccakF1600(&d.state)
		}
	}
	return ret
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8 && i < len(b); i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
