package keccak

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Known-answer tests. The legacy (pre-NIST) Keccak vectors are the
// ones Ethereum depends on; e.g. Keccak-256("") is the well-known
// empty hash that appears throughout the Ethereum state trie.

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestKeccak256KAT(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{"hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"},
		{"The quick brown fox jumps over the lazy dog",
			"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
	}
	for _, test := range tests {
		got := Sum256([]byte(test.in))
		if hex.EncodeToString(got[:]) != test.want {
			t.Errorf("Keccak256(%q) = %x, want %s", test.in, got, test.want)
		}
	}
}

func TestKeccak512KAT(t *testing.T) {
	got := Sum512(nil)
	want := "0eab42de4c3ceb9235fc91acffe746b29c29a8c366b7c60e4e67c466f36a4304" +
		"c00fa9caf9d87976ba469bcbe06713b435f091ef2769fb160cdab33d3670680e"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("Keccak512(\"\") = %x, want %s", got, want)
	}
}

func TestSHA3Variant(t *testing.T) {
	// The NIST SHA-3 padding must give different results; this guards
	// against accidentally using the wrong domain byte for Ethereum.
	tests := []struct{ in, want string }{
		{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
		{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	}
	for _, test := range tests {
		h := NewSHA3_256()
		h.Write([]byte(test.in))
		got := h.Sum(nil)
		if hex.EncodeToString(got) != test.want {
			t.Errorf("SHA3-256(%q) = %x, want %s", test.in, got, test.want)
		}
	}
	if Sum256(nil) == [32]byte(fromHex32(t, "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a")) {
		t.Error("legacy Keccak must differ from SHA3")
	}
}

func fromHex32(t *testing.T, s string) (out [32]byte) {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 32 {
		t.Fatalf("bad hex %q", s)
	}
	copy(out[:], b)
	return out
}

func TestIncrementalWrite(t *testing.T) {
	// Writing in arbitrary chunk sizes must match a single write.
	data := make([]byte, 1000)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	want := Sum256(data)

	for _, chunk := range []int{1, 3, 7, 64, 135, 136, 137, 999} {
		h := New256()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk %d: got %x, want %x", chunk, got, want)
		}
	}
}

func TestSumDoesNotDisturbState(t *testing.T) {
	h := New256()
	h.Write([]byte("part one"))
	mid := h.Sum(nil)
	mid2 := h.Sum(nil)
	if !bytes.Equal(mid, mid2) {
		t.Error("repeated Sum differs")
	}
	h.Write([]byte(" part two"))
	final := h.Sum(nil)
	want := Sum256([]byte("part one part two"))
	if !bytes.Equal(final, want[:]) {
		t.Errorf("state disturbed by Sum: got %x, want %x", final, want)
	}
}

func TestReset(t *testing.T) {
	h := New256()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum(nil)
	want := Sum256([]byte("abc"))
	if !bytes.Equal(got, want[:]) {
		t.Errorf("Reset did not clear state")
	}
}

func TestSizes(t *testing.T) {
	if New256().Size() != 32 || New256().BlockSize() != 136 {
		t.Error("bad 256 sizes")
	}
	if New512().Size() != 64 || New512().BlockSize() != 72 {
		t.Error("bad 512 sizes")
	}
}

// Property: hashing is deterministic and collision-free on distinct
// short inputs (sanity, not a cryptographic claim).
func TestQuickDeterminism(t *testing.T) {
	f := func(b []byte) bool {
		return Sum256(b) == Sum256(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a single flipped bit changes the digest.
func TestQuickBitFlipChangesDigest(t *testing.T) {
	f := func(b []byte, pos uint) bool {
		if len(b) == 0 {
			return true
		}
		orig := Sum256(b)
		i := int(pos % uint(len(b)))
		mut := append([]byte(nil), b...)
		mut[i] ^= 1 << (pos % 8)
		return Sum256(mut) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The MAC path in rlpx calls Sum into a reused scratch buffer for
// every frame, and discv4 hashes every datagram twice with Sum256 —
// both rely on finalize squeezing in place instead of allocating.
func TestSum256Allocs(t *testing.T) {
	data := make([]byte, 300)
	allocs := testing.AllocsPerRun(100, func() {
		Sum256(data)
	})
	if allocs != 0 {
		t.Errorf("Sum256 allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSum512Allocs(t *testing.T) {
	data := make([]byte, 300)
	allocs := testing.AllocsPerRun(100, func() {
		Sum512(data)
	})
	if allocs != 0 {
		t.Errorf("Sum512 allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSumIntoCapacityAllocs(t *testing.T) {
	d := New256()
	d.Write([]byte("rolling mac state"))
	buf := make([]byte, 0, Size256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = d.Sum(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Sum into capacity allocates %.1f objects per call, want 0", allocs)
	}
}

// Sum must still append after an arbitrary prefix, growing only when
// the capacity runs out.
func TestSumAppendSemantics(t *testing.T) {
	msg := []byte("append semantics")
	want := Sum256(msg)

	d := New256()
	d.Write(msg)
	prefix := []byte{0xAA, 0xBB}
	got := d.Sum(prefix)
	if len(got) != 2+Size256 || got[0] != 0xAA || got[1] != 0xBB {
		t.Fatalf("prefix disturbed: %x", got[:2])
	}
	if !bytes.Equal(got[2:], want[:]) {
		t.Errorf("digest after prefix = %x, want %x", got[2:], want)
	}

	// Exact capacity: result must reuse the backing array.
	buf := make([]byte, 2, 2+Size256)
	copy(buf, prefix)
	got2 := d.Sum(buf)
	if &got2[0] != &buf[:1][0] {
		t.Error("Sum reallocated despite sufficient capacity")
	}
	if !bytes.Equal(got2[2:], want[:]) {
		t.Errorf("in-place digest = %x, want %x", got2[2:], want)
	}
}

func BenchmarkKeccak256_136(b *testing.B) {
	data := make([]byte, 136)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkKeccak256_4K(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
