package nodedb

import (
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/enode"
)

var t0 = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

func node(rng *rand.Rand) *enode.Node {
	return enode.New(enode.RandomID(rng), net.IPv4(10, 0, byte(rng.Intn(256)), byte(rng.Intn(254)+1)), 30303, 30303)
}

func TestEnsureAndGet(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(1))
	n := node(rng)
	r := db.Ensure(n, t0)
	if r.FirstSeen != t0 {
		t.Error("first seen wrong")
	}
	if db.Get(n.ID) != r || db.Len() != 1 {
		t.Error("get/len wrong")
	}
	// Second ensure refreshes, does not duplicate.
	r2 := db.Ensure(n, t0.Add(time.Hour))
	if r2 != r || db.Len() != 1 {
		t.Error("duplicate record")
	}
	if r2.FirstSeen != t0 {
		t.Error("first seen overwritten")
	}
}

func TestDialAndSuccessCounters(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(2))
	n := node(rng)
	db.RecordDial(n, t0)
	db.RecordDial(n, t0.Add(time.Minute))
	db.RecordSuccess(n, t0.Add(time.Minute))
	r := db.Get(n.ID)
	if r.DialCount != 2 || r.SuccessCount != 1 {
		t.Errorf("counters %d/%d", r.DialCount, r.SuccessCount)
	}
	if !r.Static {
		t.Error("success did not promote to static")
	}
	if r.LastDial != t0.Add(time.Minute) {
		t.Error("last dial wrong")
	}
}

func TestStaticNodesSortedAndFiltered(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(3))
	var static []*enode.Node
	for i := 0; i < 20; i++ {
		n := node(rng)
		db.RecordDial(n, t0)
		if i%2 == 0 {
			db.RecordSuccess(n, t0)
			static = append(static, n)
		}
	}
	got := db.StaticNodes()
	if len(got) != len(static) {
		t.Fatalf("static count %d, want %d", len(got), len(static))
	}
	for i := 1; i < len(got); i++ {
		if string(got[i-1].ID.Bytes()) >= string(got[i].ID.Bytes()) {
			t.Fatal("not sorted")
		}
	}
}

func TestExpireStale(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(4))
	fresh, stale := node(rng), node(rng)
	db.RecordSuccess(fresh, t0.Add(23*time.Hour))
	db.RecordSuccess(stale, t0)
	removed := db.ExpireStale(t0.Add(24*time.Hour+time.Minute), 24*time.Hour)
	if removed != 1 {
		t.Fatalf("removed %d", removed)
	}
	if db.Get(stale.ID).Static {
		t.Error("stale still static")
	}
	if !db.Get(fresh.ID).Static {
		t.Error("fresh demoted")
	}
	// Record retained for analysis even after demotion.
	if db.Len() != 2 {
		t.Error("record dropped")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(5))
	var ids []enode.ID
	for i := 0; i < 10; i++ {
		n := node(rng)
		db.RecordDial(n, t0.Add(time.Duration(i)*time.Minute))
		if i < 5 {
			db.RecordSuccess(n, t0.Add(time.Hour))
		}
		ids = append(ids, n.ID)
	}
	path := filepath.Join(t.TempDir(), "nodes.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.Load(path); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 10 {
		t.Fatalf("loaded %d", db2.Len())
	}
	for i, id := range ids {
		r := db2.Get(id)
		if r == nil {
			t.Fatalf("missing record %d", i)
		}
		if (i < 5) != r.Static {
			t.Errorf("record %d static=%v", i, r.Static)
		}
		if r.ID != id {
			t.Error("ID not restored")
		}
	}
	// StaticNodes regeneration after restart — the paper's stated
	// purpose for the database.
	if len(db2.StaticNodes()) != 5 {
		t.Errorf("static list %d", len(db2.StaticNodes()))
	}
}

func TestLoadErrors(t *testing.T) {
	db := New()
	if err := db.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAllOrdering(t *testing.T) {
	db := New()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5; i++ {
		db.Ensure(node(rng), t0.Add(time.Duration(5-i)*time.Hour))
	}
	all := db.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].FirstSeen.After(all[i].FirstSeen) {
			t.Fatal("All not time-ordered")
		}
	}
}
