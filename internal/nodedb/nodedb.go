// Package nodedb is NodeFinder's persistent node database (§4).
//
// The paper's crawler stores every address it has dialed together
// with last-dialed timestamps, so that the StaticNodes list can be
// regenerated after a restart, and removes addresses whose last
// successful TCP connection is older than 24 hours. This package
// implements that store: an in-memory index with optional JSON
// snapshot persistence.
package nodedb

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/enode"
)

// Record is the stored state for one node.
type Record struct {
	ID  enode.ID `json:"-"`
	IDx string   `json:"id"` // hex form for JSON
	IP  net.IP   `json:"ip"`
	UDP uint16   `json:"udp"`
	TCP uint16   `json:"tcp"`

	FirstSeen       time.Time `json:"firstSeen"`
	LastDial        time.Time `json:"lastDial"`
	LastSuccess     time.Time `json:"lastSuccess"` // last successful TCP connection
	DialCount       int       `json:"dialCount"`
	SuccessCount    int       `json:"successCount"`
	Static          bool      `json:"static"` // member of the StaticNodes list
	LastDisconnects string    `json:"lastDisconnect,omitempty"`
}

// Node converts a record back to an enode.Node.
func (r *Record) Node() *enode.Node { return enode.New(r.ID, r.IP, r.UDP, r.TCP) }

// DB is the node database. Safe for concurrent use.
type DB struct {
	mu    sync.RWMutex
	nodes map[enode.ID]*Record
}

// New creates an empty database.
func New() *DB {
	return &DB{nodes: make(map[enode.ID]*Record)}
}

// Ensure returns the record for a node, creating it on first sight.
func (db *DB) Ensure(n *enode.Node, now time.Time) *Record {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.nodes[n.ID]
	if !ok {
		r = &Record{ID: n.ID, IDx: n.ID.String(), FirstSeen: now}
		//lint:ignore wiretaint the census exists to record every distinct peer ID; growth is bounded by the real network's size and evicting entries would erase the measurement
		db.nodes[n.ID] = r
	}
	// Refresh endpoint data.
	r.IP, r.UDP, r.TCP = n.IP, n.UDP, n.TCP
	return r
}

// Get returns the record for an ID, or nil.
func (db *DB) Get(id enode.ID) *Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nodes[id]
}

// Len returns the number of known nodes.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.nodes)
}

// RecordDial notes a dial attempt.
func (db *DB) RecordDial(n *enode.Node, now time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.nodes[n.ID]
	if !ok {
		r = &Record{ID: n.ID, IDx: n.ID.String(), FirstSeen: now, IP: n.IP, UDP: n.UDP, TCP: n.TCP}
		db.nodes[n.ID] = r
	}
	r.LastDial = now
	r.DialCount++
}

// RecordSuccess notes a successful TCP connection and promotes the
// node to the StaticNodes list — the paper's "successful
// dynamic-dials are automatically added to StaticNodes".
func (db *DB) RecordSuccess(n *enode.Node, now time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.nodes[n.ID]
	if !ok {
		r = &Record{ID: n.ID, IDx: n.ID.String(), FirstSeen: now, IP: n.IP, UDP: n.UDP, TCP: n.TCP}
		db.nodes[n.ID] = r
	}
	r.LastSuccess = now
	r.SuccessCount++
	r.Static = true
}

// StaticNodes returns the current static list, sorted by ID for
// determinism.
func (db *DB) StaticNodes() []*enode.Node {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*enode.Node
	for _, r := range db.nodes {
		if r.Static {
			out = append(out, r.Node())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].ID.Bytes()) < string(out[j].ID.Bytes())
	})
	return out
}

// ExpireStale demotes nodes whose last successful connection is older
// than maxAge (the paper uses 24 hours) and returns how many were
// removed from the static list.
func (db *DB) ExpireStale(now time.Time, maxAge time.Duration) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for _, r := range db.nodes {
		if r.Static && now.Sub(r.LastSuccess) > maxAge {
			r.Static = false
			removed++
		}
	}
	return removed
}

// Save writes a JSON snapshot to path.
func (db *DB) Save(path string) error {
	db.mu.RLock()
	records := make([]*Record, 0, len(db.nodes))
	for _, r := range db.nodes {
		records = append(records, r)
	}
	db.mu.RUnlock()
	sort.Slice(records, func(i, j int) bool { return records[i].IDx < records[j].IDx })
	data, err := json.MarshalIndent(records, "", " ")
	if err != nil {
		return fmt.Errorf("nodedb: marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("nodedb: write: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot written by Save, replacing current contents.
func (db *DB) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("nodedb: read: %w", err)
	}
	var records []*Record
	if err := json.Unmarshal(data, &records); err != nil {
		return fmt.Errorf("nodedb: unmarshal: %w", err)
	}
	nodes := make(map[enode.ID]*Record, len(records))
	for _, r := range records {
		id, err := enode.HexID(r.IDx)
		if err != nil {
			return fmt.Errorf("nodedb: record %q: %w", r.IDx, err)
		}
		r.ID = id
		nodes[id] = r
	}
	db.mu.Lock()
	db.nodes = nodes
	db.mu.Unlock()
	return nil
}

// All returns every record (copies of the pointers; treat as
// read-only), sorted by first-seen time then ID.
func (db *DB) All() []*Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Record, 0, len(db.nodes))
	for _, r := range db.nodes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return out[i].IDx < out[j].IDx
	})
	return out
}
