package discv4

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/enode"
)

// Table parameters.
const (
	// BucketCount is the number of distance buckets: log distances
	// 0..256 give 257 distinct values (§2.1).
	BucketCount = 257
	// BucketSize is k, the per-bucket capacity.
	BucketSize = 16
	// maxReplacements bounds each bucket's replacement cache.
	maxReplacements = 10
)

// DistanceFunc computes a bucket index from two ID hashes. The
// default is the Geth metric (enode.LogDist); passing
// enode.ParityLogDist reproduces Parity's buggy byte-summing metric
// for the §6.3 friction experiments.
type DistanceFunc func(a, b [32]byte) int

// tableEntry wraps a node with liveness bookkeeping.
type tableEntry struct {
	node      *enode.Node
	addedAt   time.Time
	lastPong  time.Time
	liveCheck int // consecutive failed liveness checks
}

// Table is the Kademlia-style routing table. It is safe for
// concurrent use.
type Table struct {
	mu       sync.Mutex
	self     enode.ID
	selfHash [32]byte
	dist     DistanceFunc
	buckets  [BucketCount]bucket
	rng      *rand.Rand
	count    int
}

type bucket struct {
	entries      []*tableEntry // sorted by last activity, most recent first
	replacements []*enode.Node
}

// NewTable creates a routing table for the given local node ID. If
// dist is nil the Geth log-distance metric is used.
func NewTable(self enode.ID, dist DistanceFunc, seed int64) *Table {
	if dist == nil {
		dist = enode.LogDist
	}
	return &Table{
		self:     self,
		selfHash: self.Hash(),
		dist:     dist,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Self returns the local node ID.
func (t *Table) Self() enode.ID { return t.self }

// Len returns the total number of nodes in the table.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// bucketIndex returns the bucket for a remote ID. Distance 0 (self)
// maps to bucket 0, which stays empty in practice.
func (t *Table) bucketIndex(id enode.ID) int {
	d := t.dist(t.selfHash, id.Hash())
	if d < 0 {
		d = 0
	}
	if d >= BucketCount {
		d = BucketCount - 1
	}
	return d
}

// AddSeenNode inserts a node observed on the network. If the bucket
// is full the node goes to the replacement cache, implementing
// Kademlia's prefer-old-nodes policy. It reports whether the node
// entered the main bucket.
func (t *Table) AddSeenNode(n *enode.Node, now time.Time) bool {
	if n.ID == t.self {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[t.bucketIndex(n.ID)]
	for _, e := range b.entries {
		if e.node.ID == n.ID {
			// Refresh endpoint information.
			e.node = n
			return true
		}
	}
	if len(b.entries) < BucketSize {
		b.entries = append(b.entries, &tableEntry{node: n, addedAt: now})
		t.count++
		b.removeReplacement(n.ID)
		return true
	}
	b.addReplacement(n)
	return false
}

// AddVerifiedNode inserts a node that has answered a ping, marking it
// live. Verified nodes move to the front of their bucket.
func (t *Table) AddVerifiedNode(n *enode.Node, now time.Time) bool {
	if !t.AddSeenNode(n, now) {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[t.bucketIndex(n.ID)]
	for i, e := range b.entries {
		if e.node.ID == n.ID {
			e.lastPong = now
			e.liveCheck = 0
			// Move to front (most recently active).
			copy(b.entries[1:i+1], b.entries[:i])
			b.entries[0] = e
			return true
		}
	}
	return false
}

// FailLiveness records a failed liveness check. After enough failures
// the node is evicted and replaced from the cache — Kademlia's
// eviction of unresponsive old nodes.
func (t *Table) FailLiveness(id enode.ID) {
	const maxFails = 3
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[t.bucketIndex(id)]
	for i, e := range b.entries {
		if e.node.ID == id {
			e.liveCheck++
			if e.liveCheck >= maxFails {
				b.entries = append(b.entries[:i], b.entries[i+1:]...)
				t.count--
				if len(b.replacements) > 0 {
					r := b.replacements[len(b.replacements)-1]
					b.replacements = b.replacements[:len(b.replacements)-1]
					b.entries = append(b.entries, &tableEntry{node: r})
					t.count++
				}
			}
			return
		}
	}
}

// Remove deletes a node outright.
func (t *Table) Remove(id enode.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[t.bucketIndex(id)]
	for i, e := range b.entries {
		if e.node.ID == id {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			t.count--
			return
		}
	}
}

// Contains reports whether the table holds the given node.
func (t *Table) Contains(id enode.ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.buckets[t.bucketIndex(id)]
	for _, e := range b.entries {
		if e.node.ID == id {
			return true
		}
	}
	return false
}

// Closest returns the n table nodes closest to target under the
// table's distance metric.
func (t *Table) Closest(target enode.ID, n int) []*enode.Node {
	targetHash := target.Hash()
	t.mu.Lock()
	//lint:ignore boundedalloc t.count is bounded by the table's fixed bucket capacity (17*16 entries)
	all := make([]*enode.Node, 0, t.count)
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			all = append(all, e.node)
		}
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		return t.dist(all[i].ID.Hash(), targetHash) < t.dist(all[j].ID.Hash(), targetHash)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Random returns up to n randomly chosen table nodes.
func (t *Table) Random(n int) []*enode.Node {
	t.mu.Lock()
	//lint:ignore boundedalloc t.count is bounded by the table's fixed bucket capacity (17*16 entries)
	all := make([]*enode.Node, 0, t.count)
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			all = append(all, e.node)
		}
	}
	t.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	t.mu.Unlock()
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// All returns every node in the table.
func (t *Table) All() []*enode.Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore boundedalloc t.count is bounded by the table's fixed bucket capacity (17*16 entries)
	all := make([]*enode.Node, 0, t.count)
	for i := range t.buckets {
		for _, e := range t.buckets[i].entries {
			all = append(all, e.node)
		}
	}
	return all
}

// BucketLoad returns the occupancy of each bucket, for diagnostics
// and the distance-distribution experiments.
func (t *Table) BucketLoad() [BucketCount]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out [BucketCount]int
	for i := range t.buckets {
		out[i] = len(t.buckets[i].entries)
	}
	return out
}

func (b *bucket) addReplacement(n *enode.Node) {
	for _, r := range b.replacements {
		if r.ID == n.ID {
			return
		}
	}
	if len(b.replacements) >= maxReplacements {
		copy(b.replacements, b.replacements[1:])
		b.replacements = b.replacements[:len(b.replacements)-1]
	}
	b.replacements = append(b.replacements, n)
}

func (b *bucket) removeReplacement(id enode.ID) {
	for i, r := range b.replacements {
		if r.ID == id {
			b.replacements = append(b.replacements[:i], b.replacements[i+1:]...)
			return
		}
	}
}
