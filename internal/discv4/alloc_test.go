//go:build !race

// Allocation-regression pins for the discovery wire path. The plan
// codec (internal/rlp) makes ping encode into a reused buffer
// allocation-free and bounds decode to the two net.IP backings it
// must hand to the caller; these tests fail if a change regresses
// that. Excluded under the race detector, whose instrumentation
// changes allocation counts.
package discv4

import (
	"net"
	"testing"

	"repro/internal/rlp"
)

func TestPingAllocs(t *testing.T) {
	ping := &Ping{
		Version:    Version,
		From:       Endpoint{IP: net.IP{10, 0, 0, 1}, UDP: 30303, TCP: 30303},
		To:         Endpoint{IP: net.IP{10, 0, 0, 2}, UDP: 30304, TCP: 30304},
		Expiration: 1700000000,
	}

	buf := make([]byte, 0, 256)
	enc := testing.AllocsPerRun(200, func() {
		out, err := rlp.EncodeAppend(buf, ping)
		if err != nil {
			t.Fatal(err)
		}
		_ = out
	})
	if enc > 0 {
		t.Errorf("ping encode: %v allocs/op, want 0 (EncodeAppend into sized scratch)", enc)
	}

	encoded, err := rlp.EncodeToBytes(ping)
	if err != nil {
		t.Fatal(err)
	}
	var dst Ping
	dec := testing.AllocsPerRun(200, func() {
		if err := rlp.DecodeFirst(encoded, &dst); err != nil {
			t.Fatal(err)
		}
	})
	// Two allocations: the From.IP and To.IP backings owned by the
	// decoded value.
	if dec > 2 {
		t.Errorf("ping decode: %v allocs/op, want <= 2", dec)
	}
}
