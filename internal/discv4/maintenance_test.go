package discv4

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/enode"
)

func TestLastInRandomBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := NewTable(enode.RandomID(rng), nil, 1)
	if tab.LastInRandomBucket(rng) != nil {
		t.Fatal("empty table returned a node")
	}
	var added []*enode.Node
	for i := 0; i < 30; i++ {
		n := randomNode(rng)
		tab.AddSeenNode(n, time.Now())
		added = append(added, n)
	}
	got := tab.LastInRandomBucket(rng)
	if got == nil {
		t.Fatal("nil from populated table")
	}
	found := false
	for _, n := range added {
		if n.ID == got.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("returned node not in table")
	}
}

func TestRevalidationEvictsDeadNode(t *testing.T) {
	// a revalidates; its table holds one live node and one dead one.
	key := testKey(t, 60)
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Listen(UDPConn{conn}, Config{
		Key:                key,
		AnnounceTCP:        30303,
		RespTimeout:        150 * time.Millisecond,
		RevalidateInterval: 100 * time.Millisecond,
		Seed:               60,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	_, liveNode := newLoopbackTransport(t, 61, nil)
	deadNode := enode.New(enode.RandomID(rand.New(rand.NewSource(62))), net.IPv4(127, 0, 0, 1), 9, 9)
	a.table.AddSeenNode(liveNode, time.Now())
	a.table.AddSeenNode(deadNode, time.Now())

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !a.table.Contains(deadNode.ID) {
			if !a.table.Contains(liveNode.ID) {
				t.Fatal("live node was evicted too")
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("dead node never evicted by revalidation")
}

func TestRefreshLoopPopulatesTable(t *testing.T) {
	// A bootstrap plus members; a fresh transport with refresh
	// enabled should learn members without anyone calling Lookup
	// explicitly.
	boot, bootNode := newLoopbackTransport(t, 70, nil)
	_ = boot
	var members []*enode.Node
	for i := 0; i < 4; i++ {
		m, n := newLoopbackTransport(t, 71+int64(i), []*enode.Node{bootNode})
		if err := m.Ping(bootNode); err != nil {
			t.Fatal(err)
		}
		members = append(members, n)
	}

	key := testKey(t, 80)
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Listen(UDPConn{conn}, Config{
		Key:             key,
		AnnounceTCP:     30303,
		Bootnodes:       []*enode.Node{bootNode},
		RespTimeout:     300 * time.Millisecond,
		RefreshInterval: 200 * time.Millisecond,
		Seed:            80,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Ping(bootNode); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		learned := 0
		for _, m := range members {
			if fresh.Table().Contains(m.ID) {
				learned++
			}
		}
		if learned >= 2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("refresh loop never discovered members")
}
