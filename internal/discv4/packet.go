// Package discv4 implements RLPx node discovery (discovery protocol
// v4), the UDP layer of Ethereum's network stack.
//
// Discovery is a Kademlia variant with five differences from the
// original DHT, all reproduced here as the paper describes (§2.1):
// no data storage, 512-bit node IDs, IDs doubling as public keys,
// XOR distance computed over the Keccak-256 hash of the ID, and a
// log2 distance metric yielding 257 distinct buckets.
//
// Wire format of every packet:
//
//	hash(32) || signature(65) || packet-type(1) || RLP payload
//
// where hash = Keccak256(signature || type || payload) and the
// signature is a recoverable secp256k1 signature over
// Keccak256(type || payload). The sender's node ID is recovered from
// the signature, so packets are self-authenticating.
package discv4

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/crypto/keccak"
	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/rlp"
)

// Packet type codes.
const (
	PingPacket byte = iota + 1
	PongPacket
	FindnodePacket
	NeighborsPacket
)

// Version is the discovery protocol version carried in ping packets.
const Version = 4

const (
	macSize  = 32
	sigSize  = secp256k1.SignatureLength
	headSize = macSize + sigSize
)

// Wire layer errors.
var (
	ErrPacketTooSmall = errors.New("discv4: packet too small")
	ErrBadHash        = errors.New("discv4: bad packet hash")
	ErrExpired        = errors.New("discv4: packet expired")
	ErrBadSignature   = errors.New("discv4: invalid signature")
	ErrUnknownPacket  = errors.New("discv4: unknown packet type")
)

// Endpoint is the RLP node endpoint structure: IP plus both ports.
type Endpoint struct {
	IP  net.IP
	UDP uint16
	TCP uint16
}

// NewEndpoint builds an Endpoint from a UDP address and TCP port.
func NewEndpoint(addr *net.UDPAddr, tcpPort uint16) Endpoint {
	ip := addr.IP.To4()
	if ip == nil {
		ip = addr.IP
	}
	return Endpoint{IP: ip, UDP: uint16(addr.Port), TCP: tcpPort}
}

// Ping is the liveness probe. Expiration is an absolute Unix time
// after which receivers drop the packet.
type Ping struct {
	Version    uint
	From, To   Endpoint
	Expiration uint64
	Rest       []rlp.RawValue `rlp:"tail"` // forward compatibility
}

// Pong answers a ping; ReplyTok echoes the ping's packet hash.
type Pong struct {
	To         Endpoint
	ReplyTok   []byte
	Expiration uint64
	Rest       []rlp.RawValue `rlp:"tail"`
}

// Findnode asks for the k closest nodes to Target.
type Findnode struct {
	Target     enode.ID
	Expiration uint64
	Rest       []rlp.RawValue `rlp:"tail"`
}

// Neighbors carries the response node list.
type Neighbors struct {
	Nodes      []RPCNode
	Expiration uint64
	Rest       []rlp.RawValue `rlp:"tail"`
}

// RPCNode is the node record as transmitted in neighbors packets.
type RPCNode struct {
	IP  net.IP
	UDP uint16
	TCP uint16
	ID  enode.ID
}

// Node converts an RPCNode to an enode.Node.
func (r RPCNode) Node() *enode.Node {
	return enode.New(r.ID, r.IP, r.UDP, r.TCP)
}

// RPCNodeFrom converts an enode.Node to its wire form.
func RPCNodeFrom(n *enode.Node) RPCNode {
	return RPCNode{IP: n.IP, UDP: n.UDP, TCP: n.TCP, ID: n.ID}
}

// packetTypeOf returns the type byte for a payload struct.
func packetTypeOf(pkt any) (byte, error) {
	switch pkt.(type) {
	case *Ping:
		return PingPacket, nil
	case *Pong:
		return PongPacket, nil
	case *Findnode:
		return FindnodePacket, nil
	case *Neighbors:
		return NeighborsPacket, nil
	default:
		return 0, fmt.Errorf("discv4: cannot encode %T", pkt)
	}
}

// EncodePacket signs and frames a discovery packet. It returns the
// full datagram and the packet hash (used as the pong reply token).
func EncodePacket(priv *secp256k1.PrivateKey, pkt any) (datagram, hash []byte, err error) {
	ptype, err := packetTypeOf(pkt)
	if err != nil {
		return nil, nil, err
	}
	// Encode the payload directly behind the packet header instead of
	// into a temporary: one buffer, one allocation for the datagram.
	b := make([]byte, headSize+1, headSize+1+256)
	b[headSize] = ptype
	b, err = rlp.EncodeAppend(b, pkt)
	if err != nil {
		return nil, nil, fmt.Errorf("discv4: encoding payload: %w", err)
	}

	toSign := keccak.Sum256(b[headSize:])
	sig, err := secp256k1.Sign(priv, toSign[:])
	if err != nil {
		return nil, nil, fmt.Errorf("discv4: signing: %w", err)
	}
	copy(b[macSize:], sig)
	h := keccak.Sum256(b[macSize:])
	copy(b, h[:])
	return b, h[:], nil
}

// DecodePacket verifies and parses a datagram. It returns the decoded
// payload, the sender's recovered node ID, and the packet hash.
func DecodePacket(buf []byte) (pkt any, fromID enode.ID, hash []byte, err error) {
	if len(buf) < headSize+1 {
		return nil, enode.ID{}, nil, ErrPacketTooSmall
	}
	h := keccak.Sum256(buf[macSize:])
	if !bytes.Equal(h[:], buf[:macSize]) {
		return nil, enode.ID{}, nil, ErrBadHash
	}
	toSign := keccak.Sum256(buf[headSize:])
	pub, err := secp256k1.RecoverPubkey(toSign[:], buf[macSize:headSize])
	if err != nil {
		return nil, enode.ID{}, nil, fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	fromID = enode.PubkeyID(pub)

	var dec any
	switch ptype := buf[headSize]; ptype {
	case PingPacket:
		dec = new(Ping)
	case PongPacket:
		dec = new(Pong)
	case FindnodePacket:
		dec = new(Findnode)
	case NeighborsPacket:
		dec = new(Neighbors)
	default:
		return nil, fromID, h[:], fmt.Errorf("%w: %d", ErrUnknownPacket, ptype)
	}
	// DecodeFirst, like the stream decoder it replaces, tolerates
	// trailing bytes after the first value — real clients pad
	// discovery payloads for forward compatibility.
	if err := rlp.DecodeFirst(buf[headSize+1:], dec); err != nil {
		return nil, fromID, h[:], fmt.Errorf("discv4: decoding payload: %w", err)
	}
	return dec, fromID, h[:], nil
}

// expired reports whether an absolute Unix timestamp is in the past.
func expired(ts uint64, now time.Time) bool {
	return ts < uint64(now.Unix())
}
