package discv4

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/enode"
)

func randomNode(rng *rand.Rand) *enode.Node {
	id := enode.RandomID(rng)
	ip := net.IPv4(byte(rng.Intn(223)+1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254)+1))
	return enode.New(id, ip, 30303, 30303)
}

func TestTableAddAndContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	self := enode.RandomID(rng)
	tab := NewTable(self, nil, 1)
	n := randomNode(rng)
	if !tab.AddSeenNode(n, time.Now()) {
		t.Fatal("add failed")
	}
	if !tab.Contains(n.ID) {
		t.Fatal("node missing")
	}
	if tab.Len() != 1 {
		t.Fatalf("len %d", tab.Len())
	}
	// Adding self is rejected.
	if tab.AddSeenNode(enode.New(self, net.IPv4(1, 1, 1, 1), 1, 1), time.Now()) {
		t.Fatal("self added")
	}
	// Duplicate add refreshes, does not grow.
	tab.AddSeenNode(n, time.Now())
	if tab.Len() != 1 {
		t.Fatalf("len after dup %d", tab.Len())
	}
}

func TestTableBucketOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	self := enode.RandomID(rng)
	tab := NewTable(self, nil, 2)
	// Generate many nodes in the SAME bucket by brute force: random
	// nodes overwhelmingly land in high buckets, so just add lots and
	// verify no bucket exceeds BucketSize.
	for i := 0; i < 2000; i++ {
		tab.AddSeenNode(randomNode(rng), time.Now())
	}
	load := tab.BucketLoad()
	for i, n := range load {
		if n > BucketSize {
			t.Fatalf("bucket %d overflow: %d", i, n)
		}
	}
	if tab.Len() == 0 {
		t.Fatal("table empty")
	}
}

func TestTableEvictionPolicy(t *testing.T) {
	// Kademlia favors old nodes: a full bucket rejects new entries
	// into the replacement cache; only repeated liveness failure of
	// an old node lets a replacement in.
	rng := rand.New(rand.NewSource(3))
	self := enode.RandomID(rng)
	tab := NewTable(self, nil, 3)

	// Fill one specific bucket: find nodes with the same bucket index.
	var target int = -1
	var members []*enode.Node
	for len(members) < BucketSize+1 {
		n := randomNode(rng)
		d := tab.bucketIndex(n.ID)
		if target == -1 {
			target = d
		}
		if d == target {
			members = append(members, n)
		}
	}
	for _, n := range members[:BucketSize] {
		if !tab.AddSeenNode(n, time.Now()) {
			t.Fatal("bucket filled early")
		}
	}
	extra := members[BucketSize]
	if tab.AddSeenNode(extra, time.Now()) {
		t.Fatal("full bucket accepted new node")
	}
	if tab.Contains(extra.ID) {
		t.Fatal("extra in main bucket")
	}
	// Fail an old node 3 times; the replacement should take its place.
	victim := members[0]
	for i := 0; i < 3; i++ {
		tab.FailLiveness(victim.ID)
	}
	if tab.Contains(victim.ID) {
		t.Fatal("victim still present")
	}
	if !tab.Contains(extra.ID) {
		t.Fatal("replacement not promoted")
	}
}

func TestTableClosestOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	self := enode.RandomID(rng)
	tab := NewTable(self, nil, 4)
	for i := 0; i < 200; i++ {
		tab.AddSeenNode(randomNode(rng), time.Now())
	}
	target := enode.RandomID(rng)
	th := target.Hash()
	closest := tab.Closest(target, 16)
	if len(closest) == 0 {
		t.Fatal("no nodes")
	}
	for i := 1; i < len(closest); i++ {
		if enode.LogDist(closest[i-1].ID.Hash(), th) > enode.LogDist(closest[i].ID.Hash(), th) {
			t.Fatal("closest not sorted by distance")
		}
	}
	// Every returned node must be at least as close as any node not
	// returned.
	maxIn := enode.LogDist(closest[len(closest)-1].ID.Hash(), th)
	for _, n := range tab.All() {
		in := false
		for _, c := range closest {
			if c.ID == n.ID {
				in = true
				break
			}
		}
		if !in && enode.LogDist(n.ID.Hash(), th) < maxIn {
			t.Fatal("a closer node was omitted")
		}
	}
}

func TestTableParityMetric(t *testing.T) {
	// A table built with the Parity metric files the same nodes into
	// very different buckets than the Geth metric — the root of the
	// §6.3 friction.
	rng := rand.New(rand.NewSource(5))
	self := enode.RandomID(rng)
	gethTab := NewTable(self, enode.LogDist, 5)
	parityTab := NewTable(self, enode.ParityLogDist, 5)
	nodes := make([]*enode.Node, 500)
	for i := range nodes {
		nodes[i] = randomNode(rng)
		gethTab.AddSeenNode(nodes[i], time.Now())
		parityTab.AddSeenNode(nodes[i], time.Now())
	}
	g, p := gethTab.BucketLoad(), parityTab.BucketLoad()
	// Geth's fullest buckets sit at the very top of the range
	// (distance ≈ 256); Parity's mass centers near 227. Compare the
	// load-weighted mean bucket index of each table.
	mean := func(load [BucketCount]int) float64 {
		sum, n := 0, 0
		for i, c := range load {
			sum += i * c
			n += c
		}
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(n)
	}
	gm, pm := mean(g), mean(p)
	if gm < 248 {
		t.Errorf("geth mean bucket %.1f, want ≥248", gm)
	}
	if pm > 240 || pm < 210 {
		t.Errorf("parity mean bucket %.1f, want ≈227", pm)
	}
}

func TestTableRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := NewTable(enode.RandomID(rng), nil, 6)
	for i := 0; i < 50; i++ {
		tab.AddSeenNode(randomNode(rng), time.Now())
	}
	r := tab.Random(10)
	if len(r) != 10 {
		t.Fatalf("got %d nodes", len(r))
	}
	seen := map[enode.ID]bool{}
	for _, n := range r {
		if seen[n.ID] {
			t.Fatal("duplicate in random sample")
		}
		seen[n.ID] = true
	}
}

func TestTableRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := NewTable(enode.RandomID(rng), nil, 7)
	n := randomNode(rng)
	tab.AddSeenNode(n, time.Now())
	tab.Remove(n.ID)
	if tab.Contains(n.ID) || tab.Len() != 0 {
		t.Fatal("remove failed")
	}
	// Removing a missing node is a no-op.
	tab.Remove(n.ID)
}

func TestAddVerifiedMovesToFront(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := NewTable(enode.RandomID(rng), nil, 8)
	a, b := randomNode(rng), randomNode(rng)
	tab.AddSeenNode(a, time.Now())
	tab.AddSeenNode(b, time.Now())
	if !tab.AddVerifiedNode(b, time.Now()) {
		t.Fatal("verify failed")
	}
	// b should now be resistant to a single liveness failure reset.
	tab.FailLiveness(b.ID)
	if !tab.Contains(b.ID) {
		t.Fatal("one failure evicted node")
	}
}
