package discv4

import (
	"net"
	"testing"
	"time"
)

// benchPing is a representative discovery packet: every crawl dial is
// preceded by at least one ping/pong exchange, so the sign-on-encode
// and recover-on-decode below are the discovery layer's crypto cost.
func benchPing() *Ping {
	return &Ping{
		Version:    Version,
		From:       Endpoint{IP: net.IPv4(10, 0, 0, 1), UDP: 30301, TCP: 30303},
		To:         Endpoint{IP: net.IPv4(10, 0, 0, 2), UDP: 30301, TCP: 30303},
		Expiration: uint64(time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC).Unix()),
	}
}

func BenchmarkPacketEncode(b *testing.B) {
	k := testKey(b, 90)
	ping := benchPing()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EncodePacket(k, ping); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPacketDecode(b *testing.B) {
	k := testKey(b, 91)
	dgram, _, err := EncodePacket(k, benchPing())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodePacket(dgram); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketSignRoundTrip is the full encode+decode pair — one
// signature and one recovery — i.e. the per-packet crypto budget of
// the discv4 wire protocol.
func BenchmarkPacketSignRoundTrip(b *testing.B) {
	k := testKey(b, 92)
	ping := benchPing()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dgram, _, err := EncodePacket(k, ping)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := DecodePacket(dgram); err != nil {
			b.Fatal(err)
		}
	}
}
