package discv4

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/enode"
)

// The §6.3 scenario: a Geth node whose lookup is answered from
// Parity-metric tables converges worse than one answered from
// Geth-metric tables — the paper's "unintentional eclipse". This test
// quantifies that effect offline: it simulates the iterative lookup
// using table-backed FIND_NODE answers without sockets.

// simulatedLookup walks an iterative lookup where each queried node
// answers from its own routing table (built with the given metric).
// It returns the best (smallest) true log-distance to the target
// reached after the given number of rounds.
func simulatedLookup(t *testing.T, metric DistanceFunc, rounds int, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := time.Now()

	// A 600-node network where every node's table is built with the
	// SAME metric (all-Geth or all-Parity world).
	nodes := make([]*enode.Node, 600)
	for i := range nodes {
		nodes[i] = randomNode(rng)
	}
	tables := make(map[enode.ID]*Table, len(nodes))
	for _, n := range nodes {
		tab := NewTable(n.ID, metric, seed)
		// Each node knows a random subset of the network.
		for j := 0; j < 120; j++ {
			tab.AddSeenNode(nodes[rng.Intn(len(nodes))], now)
		}
		tables[n.ID] = tab
	}

	target := enode.RandomID(rng)
	targetHash := target.Hash()

	// The querying node starts from 3 random entry points and always
	// evaluates candidates with the CORRECT (Geth) metric, as a Geth
	// node would.
	asked := map[enode.ID]bool{}
	frontier := []*enode.Node{nodes[0], nodes[1], nodes[2]}
	best := 257
	for r := 0; r < rounds; r++ {
		var next []*enode.Node
		for _, n := range frontier {
			if asked[n.ID] {
				continue
			}
			asked[n.ID] = true
			tab := tables[n.ID]
			if tab == nil {
				continue
			}
			// The queried node answers with ITS OWN metric's idea of
			// "closest" — this is where the Parity bug bites.
			next = append(next, tab.Closest(target, BucketSize)...)
		}
		for _, n := range next {
			if d := enode.LogDist(n.ID.Hash(), targetHash); d < best {
				best = d
			}
		}
		// Keep the α closest unasked candidates (by the true metric).
		frontier = pickClosest(next, targetHash, LookupAlpha, asked)
		if len(frontier) == 0 {
			break
		}
	}
	return best
}

func pickClosest(nodes []*enode.Node, targetHash [32]byte, k int, asked map[enode.ID]bool) []*enode.Node {
	var out []*enode.Node
	for _, n := range nodes {
		if !asked[n.ID] {
			out = append(out, n)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if enode.LogDist(out[j].ID.Hash(), targetHash) < enode.LogDist(out[i].ID.Hash(), targetHash) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestParityTablesDegradeLookups(t *testing.T) {
	// Average converged distance over several seeds.
	const trials = 5
	var gethSum, paritySum int
	for s := int64(0); s < trials; s++ {
		gethSum += simulatedLookup(t, enode.LogDist, 6, 100+s)
		paritySum += simulatedLookup(t, enode.ParityLogDist, 6, 100+s)
	}
	gethAvg := float64(gethSum) / trials
	parityAvg := float64(paritySum) / trials
	t.Logf("converged log-distance: geth-metric tables %.1f, parity-metric tables %.1f", gethAvg, parityAvg)
	// Parity-metric answers must be no better, and typically worse:
	// they do not help a correct lookup converge.
	if parityAvg < gethAvg {
		t.Errorf("parity tables converged better (%.1f) than geth tables (%.1f)?", parityAvg, gethAvg)
	}
}
