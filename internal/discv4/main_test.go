package discv4

import (
	"os"
	"testing"

	"repro/internal/rlp"
)

// TestMain honors RLP_BACKEND=reflect so the packet benchmarks can be
// run — and profiled — under the reflection walker the compiled codec
// plans replaced:
//
//	RLP_BACKEND=reflect go test -run '^$' -bench Packet -cpuprofile old.prof .
//
// The before/after profile table in DESIGN.md comes from this switch.
func TestMain(m *testing.M) {
	if os.Getenv("RLP_BACKEND") == "reflect" {
		rlp.SetPlanCodec(false)
	}
	os.Exit(m.Run())
}
