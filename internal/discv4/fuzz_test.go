package discv4

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
)

// FuzzDecodePacket throws arbitrary datagrams at the discovery
// packet parser — the single most exposed decoder in the crawler,
// fed directly from an unauthenticated UDP socket. Invariants: no
// panic, and for the valid seed packets the round trip recovers the
// signer.
func FuzzDecodePacket(f *testing.F) {
	key, err := secp256k1.GenerateKey(rand.New(rand.NewSource(42)))
	if err != nil {
		f.Fatal(err)
	}
	exp := uint64(time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC).Unix())
	ep := Endpoint{IP: net.IPv4(10, 0, 0, 1), UDP: 30303, TCP: 30303}
	var target enode.ID
	target[0] = 0xAB
	for _, pkt := range []any{
		&Ping{Version: Version, From: ep, To: ep, Expiration: exp},
		&Pong{To: ep, ReplyTok: make([]byte, 32), Expiration: exp},
		&Findnode{Target: target, Expiration: exp},
		&Neighbors{Nodes: []RPCNode{{IP: ep.IP, UDP: 30303, TCP: 30303, ID: target}}, Expiration: exp},
	} {
		datagram, _, err := EncodePacket(key, pkt)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(datagram)
	}
	// Malformed shapes: undersized, type byte only, huge RLP length
	// announcements past a correct-looking head.
	f.Add([]byte{})
	f.Add(make([]byte, headSize))
	f.Add(append(make([]byte, headSize), 0x01))
	f.Add(append(append(make([]byte, headSize), PingPacket), 0xBF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, fromID, hash, err := DecodePacket(data)
		if err != nil {
			return
		}
		// A packet that verifies must have a plausible shape: a known
		// payload type, a 32-byte hash, and a non-zero recovered ID
		// (the zero ID has no valid public key).
		switch pkt.(type) {
		case *Ping, *Pong, *Findnode, *Neighbors:
		default:
			t.Fatalf("accepted packet decoded to %T", pkt)
		}
		if len(hash) != macSize {
			t.Fatalf("hash length %d", len(hash))
		}
		if fromID == (enode.ID{}) {
			t.Fatal("accepted packet with zero sender ID")
		}
	})
}
