package discv4

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/crypto/keccak"
	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
)

func testKey(t testing.TB, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPacketRoundTrip(t *testing.T) {
	k := testKey(t, 1)
	wantID := enode.PubkeyID(&k.Pub)

	ping := &Ping{
		Version:    Version,
		From:       Endpoint{IP: net.IPv4(10, 0, 0, 1), UDP: 30301, TCP: 30303},
		To:         Endpoint{IP: net.IPv4(10, 0, 0, 2), UDP: 30301, TCP: 30303},
		Expiration: uint64(time.Now().Add(20 * time.Second).Unix()),
	}
	dgram, hash, err := EncodePacket(k, ping)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 32 {
		t.Fatalf("hash length %d", len(hash))
	}
	pkt, fromID, gotHash, err := DecodePacket(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if fromID != wantID {
		t.Error("sender ID not recovered")
	}
	if string(gotHash) != string(hash) {
		t.Error("hash mismatch")
	}
	got, ok := pkt.(*Ping)
	if !ok {
		t.Fatalf("decoded %T", pkt)
	}
	if got.Version != Version || got.From.UDP != 30301 || !got.From.IP.Equal(ping.From.IP) {
		t.Errorf("decoded %+v", got)
	}
}

func TestPacketTypes(t *testing.T) {
	k := testKey(t, 2)
	id := enode.PubkeyID(&testKey(t, 3).Pub)
	exp := uint64(time.Now().Add(time.Minute).Unix())
	pkts := []any{
		&Ping{Version: 4, Expiration: exp},
		&Pong{ReplyTok: []byte{1, 2, 3}, Expiration: exp},
		&Findnode{Target: id, Expiration: exp},
		&Neighbors{Nodes: []RPCNode{{IP: net.IPv4(1, 2, 3, 4), UDP: 1, TCP: 2, ID: id}}, Expiration: exp},
	}
	for _, pkt := range pkts {
		dgram, _, err := EncodePacket(k, pkt)
		if err != nil {
			t.Fatalf("%T: %v", pkt, err)
		}
		dec, _, _, err := DecodePacket(dgram)
		if err != nil {
			t.Fatalf("%T: decode: %v", pkt, err)
		}
		if want, got := pkt, dec; want == got {
			t.Fatal("expected distinct values")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	k := testKey(t, 4)
	dgram, _, err := EncodePacket(k, &Ping{Version: 4, Expiration: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Too small.
	if _, _, _, err := DecodePacket(dgram[:headSize]); err != ErrPacketTooSmall {
		t.Errorf("short: %v", err)
	}
	// Corrupt hash.
	bad := append([]byte(nil), dgram...)
	bad[0] ^= 1
	if _, _, _, err := DecodePacket(bad); err != ErrBadHash {
		t.Errorf("hash: %v", err)
	}
	// Corrupt signature (and fix hash so it passes the hash check):
	// recoverable signatures usually still recover *some* key, so the
	// packet must attribute to a different sender, never the original.
	_, origID, _, err := DecodePacket(dgram)
	if err != nil {
		t.Fatal(err)
	}
	bad2 := append([]byte(nil), dgram...)
	bad2[macSize+3] ^= 0xFF
	rehash(bad2)
	if _, badID, _, err := DecodePacket(bad2); err == nil && badID == origID {
		t.Error("corrupt signature still attributed to original sender")
	}
	// Unknown packet type.
	bad3 := append([]byte(nil), dgram...)
	bad3[headSize] = 0x77
	rehash(bad3)
	if _, _, _, err := DecodePacket(bad3); err == nil {
		t.Error("accepted unknown packet type")
	}
}

// rehash fixes up the packet hash after mutation below it.
func rehash(b []byte) {
	h := keccak.Sum256(b[macSize:])
	copy(b, h[:])
}

func TestEncodeUnknownType(t *testing.T) {
	k := testKey(t, 5)
	if _, _, err := EncodePacket(k, struct{}{}); err == nil {
		t.Error("accepted unknown payload type")
	}
}

func TestForwardCompatibleTail(t *testing.T) {
	// Packets with extra trailing list elements (future fields) must
	// still decode; the Rest tail absorbs them.
	k := testKey(t, 6)
	dgram, _, err := EncodePacket(k, &Pong{
		ReplyTok:   []byte{9},
		Expiration: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := DecodePacket(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if dec.(*Pong).Expiration != 42 {
		t.Error("bad decode")
	}
}

func TestExpired(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	if !expired(999_999, now) {
		t.Error("past timestamp not expired")
	}
	if expired(1_000_001, now) {
		t.Error("future timestamp expired")
	}
}
