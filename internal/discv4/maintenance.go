package discv4

import (
	"math/rand"
	"time"

	"repro/internal/enode"
)

// Maintenance implements Kademlia's table upkeep: periodic liveness
// revalidation of old entries (the eviction policy §2.1 describes —
// "only adds a new node if the least recently active pre-existing
// node is not lively") and periodic refresh lookups that keep buckets
// populated.
//
// Both loops are optional; Config.RevalidateInterval and
// Config.RefreshInterval enable them. NodeFinder runs its own lookup
// loop, so it leaves refresh disabled; ethnode instances enable both
// to behave like normal clients.

// LastInRandomBucket returns the least-recently-active entry of a
// randomly chosen non-empty bucket, or nil when the table is empty.
func (t *Table) LastInRandomBucket(rng *rand.Rand) *enode.Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	var nonEmpty []int
	for i := range t.buckets {
		if len(t.buckets[i].entries) > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	b := &t.buckets[nonEmpty[rng.Intn(len(nonEmpty))]]
	return b.entries[len(b.entries)-1].node
}

// startMaintenance launches the enabled loops.
func (t *Transport) startMaintenance() {
	if t.cfg.RevalidateInterval > 0 {
		t.wg.Add(1)
		go t.revalidateLoop()
	}
	if t.cfg.RefreshInterval > 0 {
		t.wg.Add(1)
		go t.refreshLoop()
	}
}

// revalidateLoop pings the least recently active entry of a random
// bucket; repeated failures evict the node in favor of its
// replacement-cache successor.
func (t *Transport) revalidateLoop() {
	defer t.wg.Done()
	rng := rand.New(rand.NewSource(t.cfg.Seed ^ 0x2e7a11))
	ticker := time.NewTicker(t.cfg.RevalidateInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
			n := t.table.LastInRandomBucket(rng)
			if n == nil {
				continue
			}
			// Ping handles both outcomes: success re-verifies, and
			// failure counts toward eviction.
			t.Ping(n) //nolint:errcheck // failure path is FailLiveness
		}
	}
}

// refreshLoop performs periodic lookups: one toward the node's own
// ID (populating nearby buckets) and one toward a random target.
func (t *Transport) refreshLoop() {
	defer t.wg.Done()
	rng := rand.New(rand.NewSource(t.cfg.Seed ^ 0x42e42e))
	ticker := time.NewTicker(t.cfg.RefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
			t.Lookup(t.selfID)
			t.Lookup(enode.RandomID(rng))
		}
	}
}
