package discv4

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/enode"
	"repro/internal/metrics"
)

// Default protocol timing constants, mirroring the values the paper
// lists for Geth 1.7.3 (§4).
const (
	DefaultRespTimeout = 500 * time.Millisecond
	// DefaultExpiration is how far in the future packets are dated.
	DefaultExpiration = 20 * time.Second
	// BondExpiration is how long an endpoint proof (pong) stays
	// valid; findnode from unbonded peers is ignored.
	BondExpiration = 24 * time.Hour
	// LookupAlpha is the lookup concurrency factor α.
	LookupAlpha = 3
	// maxNeighborsPerPacket keeps neighbors datagrams under the UDP
	// size limit.
	maxNeighborsPerPacket = 12
)

// PacketConn abstracts the datagram socket so the transport runs over
// real UDP or the in-memory netsim fabric.
type PacketConn interface {
	ReadFrom(p []byte) (n int, addr *net.UDPAddr, err error)
	WriteTo(p []byte, addr *net.UDPAddr) (n int, err error)
	LocalAddr() *net.UDPAddr
	Close() error
}

// UDPConn adapts *net.UDPConn to PacketConn.
type UDPConn struct{ *net.UDPConn }

// ReadFrom implements PacketConn.
func (c UDPConn) ReadFrom(p []byte) (int, *net.UDPAddr, error) {
	return c.UDPConn.ReadFromUDP(p)
}

// WriteTo implements PacketConn.
func (c UDPConn) WriteTo(p []byte, addr *net.UDPAddr) (int, error) {
	return c.UDPConn.WriteToUDP(p, addr)
}

// LocalAddr implements PacketConn.
func (c UDPConn) LocalAddr() *net.UDPAddr {
	return c.UDPConn.LocalAddr().(*net.UDPAddr)
}

// Config configures a discovery transport.
type Config struct {
	Key *secp256k1.PrivateKey
	// AnnounceTCP is the TCP (RLPx) port advertised in pings.
	AnnounceTCP uint16
	// Bootnodes seed the table.
	Bootnodes []*enode.Node
	// Distance overrides the bucket metric (nil = Geth metric).
	Distance DistanceFunc
	// RespTimeout bounds waits for pong/neighbors replies.
	RespTimeout time.Duration
	// RevalidateInterval enables periodic liveness checks of old
	// bucket entries (zero disables).
	RevalidateInterval time.Duration
	// RefreshInterval enables periodic self/random refresh lookups
	// (zero disables).
	RefreshInterval time.Duration
	// Seed feeds the table's internal shuffling.
	Seed int64
	// Metrics, when non-nil, receives live protocol telemetry
	// (packets in/out by type, table occupancy, bond failures,
	// lookup convergence). Nil disables instrumentation.
	Metrics *metrics.Registry
}

// Transport is a running discovery endpoint.
type Transport struct {
	conn   PacketConn
	priv   *secp256k1.PrivateKey
	selfID enode.ID
	cfg    Config
	table  *Table

	mu      sync.Mutex
	pending []*pendingReply
	// bonds tracks the last time we received a pong from a node
	// (our proof of their endpoint) and sent one to them.
	bondsRecv map[enode.ID]time.Time
	bondsSent map[enode.ID]time.Time

	wg     sync.WaitGroup
	closed chan struct{}

	// Stats counts protocol events for the measurement experiments.
	stats Stats
	// metrics mirrors stats into the registry for live telemetry;
	// always non-nil (instruments are nil when disabled).
	metrics *transportMetrics
}

// transportMetrics holds the transport's resolved instruments.
type transportMetrics struct {
	packetsIn    *metrics.CounterVec // by packet type
	packetsOut   *metrics.CounterVec
	badPackets   *metrics.Counter
	expired      *metrics.Counter
	unsolicited  *metrics.Counter
	lookups      *metrics.Counter
	lookupNodes  *metrics.Histogram // convergence: result size per lookup
	bondFailures *metrics.Counter
}

func newTransportMetrics(r *metrics.Registry, table *Table) *transportMetrics {
	if r != nil {
		r.GaugeFunc("discv4.table_size", func() int64 { return int64(table.Len()) })
	}
	return &transportMetrics{
		packetsIn:    r.CounterVec("discv4.packets_in"),
		packetsOut:   r.CounterVec("discv4.packets_out"),
		badPackets:   r.Counter("discv4.bad_packets"),
		expired:      r.Counter("discv4.expired_packets"),
		unsolicited:  r.Counter("discv4.unsolicited_replies"),
		lookups:      r.Counter("discv4.lookups"),
		lookupNodes:  r.Histogram("discv4.lookup_nodes"),
		bondFailures: r.Counter("discv4.bond_failures"),
	}
}

// packetName maps a decoded packet to its telemetry label.
func packetName(pkt any) string {
	switch pkt.(type) {
	case *Ping:
		return "ping"
	case *Pong:
		return "pong"
	case *Findnode:
		return "findnode"
	case *Neighbors:
		return "neighbors"
	default:
		return "unknown"
	}
}

// Stats are cumulative protocol counters.
type Stats struct {
	PingsSent, PongsSent, FindnodesSent, NeighborsSent      uint64
	PingsRecv, PongsRecv, FindnodesRecv, NeighborsRecv      uint64
	BadPackets, ExpiredPackets, UnsolicitedReplies, Lookups uint64
}

type pendingReply struct {
	from     enode.ID
	ptype    byte
	deadline time.Time
	// matched is called with each candidate packet; it returns
	// (consumed, done). done removes the entry.
	matched func(pkt any) (bool, bool)
	errc    chan error
}

// Listen starts a discovery transport on conn.
func Listen(conn PacketConn, cfg Config) (*Transport, error) {
	if cfg.Key == nil {
		return nil, errors.New("discv4: config requires a private key")
	}
	if cfg.RespTimeout == 0 {
		cfg.RespTimeout = DefaultRespTimeout
	}
	selfID := enode.PubkeyID(&cfg.Key.Pub)
	t := &Transport{
		conn:      conn,
		priv:      cfg.Key,
		selfID:    selfID,
		cfg:       cfg,
		table:     NewTable(selfID, cfg.Distance, cfg.Seed),
		bondsRecv: make(map[enode.ID]time.Time),
		bondsSent: make(map[enode.ID]time.Time),
		closed:    make(chan struct{}),
	}
	t.metrics = newTransportMetrics(cfg.Metrics, t.table)
	for _, bn := range cfg.Bootnodes {
		t.table.AddSeenNode(bn, time.Now())
	}
	t.wg.Add(2)
	go t.readLoop()
	go t.expireLoop()
	t.startMaintenance()
	return t, nil
}

// Self returns the local node ID.
func (t *Transport) Self() enode.ID { return t.selfID }

// Table exposes the routing table.
func (t *Transport) Table() *Table { return t.table }

// Stats returns a snapshot of the protocol counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Close shuts the transport down and waits for its goroutines.
func (t *Transport) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
	}
	close(t.closed)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

func (t *Transport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 1500)
	for {
		n, from, err := t.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			// Transient errors: keep reading unless closed.
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		t.handlePacket(buf[:n], from)
	}
}

// expireLoop sweeps timed-out pending replies.
func (t *Transport) expireLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-t.closed:
			t.mu.Lock()
			for _, p := range t.pending {
				//lint:ignore locknet errc is buffered (cap 1) and each pending entry resolves once, so the send cannot block
				p.errc <- errors.New("discv4: transport closed") //lint:ignore boundedchan cap-1 reply slot filled exactly once per pending entry; the send can never block
			}
			t.pending = nil
			t.mu.Unlock()
			return
		case now := <-tick.C:
			t.mu.Lock()
			kept := t.pending[:0]
			for _, p := range t.pending {
				if now.After(p.deadline) {
					//lint:ignore locknet errc is buffered (cap 1) and each pending entry resolves once, so the send cannot block
					p.errc <- errTimeout //lint:ignore boundedchan cap-1 reply slot filled exactly once per pending entry; the send can never block
				} else {
					kept = append(kept, p)
				}
			}
			t.pending = kept
			t.mu.Unlock()
		}
	}
}

var errTimeout = errors.New("discv4: reply timeout")

func (t *Transport) handlePacket(buf []byte, from *net.UDPAddr) {
	pkt, fromID, hash, err := DecodePacket(buf)
	if err != nil {
		t.mu.Lock()
		t.stats.BadPackets++
		t.mu.Unlock()
		t.metrics.badPackets.Inc()
		return
	}
	t.metrics.packetsIn.Inc(packetName(pkt))
	now := time.Now()
	switch p := pkt.(type) {
	case *Ping:
		t.mu.Lock()
		t.stats.PingsRecv++
		t.mu.Unlock()
		if expired(p.Expiration, now) {
			t.countExpired()
			return
		}
		t.handlePing(p, fromID, from, hash)
	case *Pong:
		t.mu.Lock()
		t.stats.PongsRecv++
		t.mu.Unlock()
		if expired(p.Expiration, now) {
			t.countExpired()
			return
		}
		t.mu.Lock()
		t.bondsRecv[fromID] = now
		t.mu.Unlock()
		t.deliver(fromID, PongPacket, p)
	case *Findnode:
		t.mu.Lock()
		t.stats.FindnodesRecv++
		t.mu.Unlock()
		if expired(p.Expiration, now) {
			t.countExpired()
			return
		}
		t.handleFindnode(p, fromID, from)
	case *Neighbors:
		t.mu.Lock()
		t.stats.NeighborsRecv++
		t.mu.Unlock()
		if expired(p.Expiration, now) {
			t.countExpired()
			return
		}
		t.deliver(fromID, NeighborsPacket, p)
	}
}

func (t *Transport) countExpired() {
	t.mu.Lock()
	t.stats.ExpiredPackets++
	t.mu.Unlock()
	t.metrics.expired.Inc()
}

func (t *Transport) handlePing(p *Ping, fromID enode.ID, from *net.UDPAddr, hash []byte) {
	pong := &Pong{
		To:         NewEndpoint(from, p.From.TCP),
		ReplyTok:   hash,
		Expiration: uint64(time.Now().Add(DefaultExpiration).Unix()),
	}
	t.send(from, pong)
	t.mu.Lock()
	t.stats.PongsSent++
	lastPong, bonded := t.bondsRecv[fromID]
	t.bondsSent[fromID] = time.Now()
	t.mu.Unlock()

	n := enode.New(fromID, from.IP, uint16(from.Port), p.From.TCP)
	t.table.AddSeenNode(n, time.Now())
	// Ping back to complete the bond if we have no recent proof of
	// their endpoint.
	if !bonded || time.Since(lastPong) > BondExpiration {
		go t.Ping(n) //nolint:errcheck // best-effort bond completion
	}
}

func (t *Transport) handleFindnode(p *Findnode, fromID enode.ID, from *net.UDPAddr) {
	t.mu.Lock()
	lastPong, bonded := t.bondsRecv[fromID]
	t.mu.Unlock()
	if !bonded || time.Since(lastPong) > BondExpiration {
		// Unbonded sender: ignoring prevents amplification attacks.
		return
	}
	closest := t.table.Closest(p.Target, BucketSize)
	exp := uint64(time.Now().Add(DefaultExpiration).Unix())
	for i := 0; i < len(closest); i += maxNeighborsPerPacket {
		end := i + maxNeighborsPerPacket
		if end > len(closest) {
			end = len(closest)
		}
		resp := &Neighbors{Expiration: exp}
		for _, n := range closest[i:end] {
			resp.Nodes = append(resp.Nodes, RPCNodeFrom(n))
		}
		t.send(from, resp)
		t.mu.Lock()
		t.stats.NeighborsSent++
		t.mu.Unlock()
	}
}

// deliver routes a reply packet to pending waiters.
func (t *Transport) deliver(from enode.ID, ptype byte, pkt any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	matched := false
	kept := t.pending[:0]
	for _, p := range t.pending {
		if p.from == from && p.ptype == ptype {
			consumed, done := p.matched(pkt)
			matched = matched || consumed
			if done {
				//lint:ignore locknet errc is buffered (cap 1) and each pending entry resolves once, so the send cannot block
				p.errc <- nil //lint:ignore boundedchan cap-1 reply slot filled exactly once per pending entry; the send can never block
				continue
			}
		}
		kept = append(kept, p)
	}
	t.pending = kept
	if !matched {
		t.stats.UnsolicitedReplies++
		t.metrics.unsolicited.Inc()
	}
}

// expect registers interest in a future reply.
func (t *Transport) expect(from enode.ID, ptype byte, matched func(any) (bool, bool)) chan error {
	p := &pendingReply{
		from:     from,
		ptype:    ptype,
		deadline: time.Now().Add(t.cfg.RespTimeout),
		matched:  matched,
		errc:     make(chan error, 1),
	}
	t.mu.Lock()
	t.pending = append(t.pending, p)
	t.mu.Unlock()
	return p.errc
}

func (t *Transport) send(to *net.UDPAddr, pkt any) {
	dgram, _, err := EncodePacket(t.priv, pkt)
	if err != nil {
		return
	}
	t.conn.WriteTo(dgram, to) //nolint:errcheck // UDP send is fire and forget
	t.metrics.packetsOut.Inc(packetName(pkt))
}

// Ping sends a ping and waits for the matching pong.
func (t *Transport) Ping(n *enode.Node) error {
	self := t.conn.LocalAddr()
	ping := &Ping{
		Version:    Version,
		From:       NewEndpoint(self, t.cfg.AnnounceTCP),
		To:         NewEndpoint(n.Addr(), n.TCP),
		Expiration: uint64(time.Now().Add(DefaultExpiration).Unix()),
	}
	dgram, hash, err := EncodePacket(t.priv, ping)
	if err != nil {
		return err
	}
	errc := t.expect(n.ID, PongPacket, func(pkt any) (bool, bool) {
		pong := pkt.(*Pong)
		if len(pong.ReplyTok) > 0 && string(pong.ReplyTok) != string(hash) {
			return false, false
		}
		return true, true
	})
	if _, err := t.conn.WriteTo(dgram, n.Addr()); err != nil {
		return fmt.Errorf("discv4: sending ping: %w", err)
	}
	t.mu.Lock()
	t.stats.PingsSent++
	t.mu.Unlock()
	t.metrics.packetsOut.Inc("ping")
	if err := t.await(errc); err != nil {
		t.table.FailLiveness(n.ID)
		t.metrics.bondFailures.Inc()
		return err
	}
	t.table.AddVerifiedNode(n, time.Now())
	return nil
}

// await waits for a pending reply, unblocking if the transport shuts
// down first (the expire loop stops sweeping after close).
func (t *Transport) await(errc chan error) error {
	select {
	case err := <-errc:
		return err
	case <-t.closed:
		return errors.New("discv4: transport closed")
	}
}

// ensureBond pings the node unless a recent pong proves its endpoint.
func (t *Transport) ensureBond(n *enode.Node) error {
	t.mu.Lock()
	lastPong, ok := t.bondsRecv[n.ID]
	t.mu.Unlock()
	if ok && time.Since(lastPong) < BondExpiration {
		return nil
	}
	return t.Ping(n)
}

// Findnode queries n for its k closest nodes to target. A first
// attempt may race the peer's reverse bond (our pong to its
// bond-completing ping can still be in flight when the FINDNODE
// arrives, so the peer drops it); one retry absorbs that window.
func (t *Transport) Findnode(n *enode.Node, target enode.ID) ([]*enode.Node, error) {
	nodes, err := t.findnodeOnce(n, target)
	if err != nil && len(nodes) == 0 {
		nodes, err = t.findnodeOnce(n, target)
	}
	return nodes, err
}

func (t *Transport) findnodeOnce(n *enode.Node, target enode.ID) ([]*enode.Node, error) {
	if err := t.ensureBond(n); err != nil {
		return nil, fmt.Errorf("discv4: bonding with %s: %w", n.ID.TerminalString(), err)
	}
	req := &Findnode{
		Target:     target,
		Expiration: uint64(time.Now().Add(DefaultExpiration).Unix()),
	}
	var (
		mu    sync.Mutex
		nodes []*enode.Node
	)
	errc := t.expect(n.ID, NeighborsPacket, func(pkt any) (bool, bool) {
		resp := pkt.(*Neighbors)
		mu.Lock()
		for _, rn := range resp.Nodes {
			nodes = append(nodes, rn.Node())
		}
		done := len(nodes) >= BucketSize
		mu.Unlock()
		return true, done
	})
	t.send(n.Addr(), req)
	t.mu.Lock()
	t.stats.FindnodesSent++
	t.mu.Unlock()
	err := t.await(errc)
	mu.Lock()
	defer mu.Unlock()
	if err != nil && len(nodes) == 0 {
		t.table.FailLiveness(n.ID)
		return nil, err
	}
	// Partial results before the timeout are still useful.
	for _, found := range nodes {
		t.table.AddSeenNode(found, time.Now())
	}
	return nodes, nil
}

// Lookup performs the iterative Kademlia convergence toward target
// and returns the closest nodes found. This is the "node discovery"
// operation whose rate Figure 5 measures.
func (t *Transport) Lookup(target enode.ID) []*enode.Node {
	t.mu.Lock()
	t.stats.Lookups++
	t.mu.Unlock()
	t.metrics.lookups.Inc()
	result := t.lookup(target)
	t.metrics.lookupNodes.Observe(uint64(len(result)))
	return result
}

func (t *Transport) lookup(target enode.ID) []*enode.Node {
	targetHash := target.Hash()
	asked := map[enode.ID]bool{t.selfID: true}
	seen := map[enode.ID]bool{}
	result := t.table.Closest(target, BucketSize)
	for _, n := range result {
		seen[n.ID] = true
	}

	for {
		// Pick the α closest unasked nodes.
		var batch []*enode.Node
		for _, n := range result {
			if !asked[n.ID] {
				asked[n.ID] = true
				batch = append(batch, n)
				if len(batch) == LookupAlpha {
					break
				}
			}
		}
		if len(batch) == 0 {
			return result
		}
		var (
			mu      sync.Mutex
			wg      sync.WaitGroup
			learned []*enode.Node
		)
		for _, n := range batch {
			n := n
			wg.Add(1)
			go func() {
				defer wg.Done()
				found, err := t.Findnode(n, target)
				if err != nil {
					return
				}
				mu.Lock()
				learned = append(learned, found...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		for _, n := range learned {
			if !seen[n.ID] && n.ID != t.selfID {
				seen[n.ID] = true
				result = append(result, n)
			}
		}
		sort.Slice(result, func(i, j int) bool {
			di := enode.LogDist(result[i].ID.Hash(), targetHash)
			dj := enode.LogDist(result[j].ID.Hash(), targetHash)
			return di < dj
		})
		if len(result) > BucketSize {
			result = result[:BucketSize]
		}
	}
}
