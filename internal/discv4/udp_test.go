package discv4

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/enode"
)

// newLoopbackTransport starts a transport on an ephemeral loopback
// UDP port.
func newLoopbackTransport(t *testing.T, seed int64, boot []*enode.Node) (*Transport, *enode.Node) {
	t.Helper()
	key := testKey(t, seed)
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Listen(UDPConn{conn}, Config{
		Key:         key,
		AnnounceTCP: 30303,
		Bootnodes:   boot,
		RespTimeout: 700 * time.Millisecond, // generous: CI machines stall under load
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	addr := conn.LocalAddr().(*net.UDPAddr)
	self := enode.New(tr.Self(), addr.IP, uint16(addr.Port), 30303)
	return tr, self
}

func TestPingPong(t *testing.T) {
	a, _ := newLoopbackTransport(t, 1, nil)
	_, bNode := newLoopbackTransport(t, 2, nil)

	if err := a.Ping(bNode); err != nil {
		t.Fatalf("ping: %v", err)
	}
	st := a.Stats()
	if st.PingsSent == 0 || st.PongsRecv == 0 {
		t.Errorf("stats %+v", st)
	}
	if !a.table.Contains(bNode.ID) {
		t.Error("pinged node not in table")
	}
}

func TestPingTimeout(t *testing.T) {
	a, _ := newLoopbackTransport(t, 3, nil)
	// Point at a black-hole address (reserved TEST-NET).
	ghost := enode.New(enode.RandomID(rand.New(rand.NewSource(9))), net.IPv4(127, 0, 0, 1), 9, 9)
	start := time.Now()
	if err := a.Ping(ghost); err == nil {
		t.Fatal("ping to ghost succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestFindnodeRequiresBond(t *testing.T) {
	a, aNode := newLoopbackTransport(t, 4, nil)
	b, bNode := newLoopbackTransport(t, 5, nil)

	// Seed b's table so it has something to return.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 5; i++ {
		b.table.AddSeenNode(randomNode(rng), time.Now())
	}
	_ = aNode

	// After bonding (Findnode pings first), the query must succeed.
	nodes, err := a.Findnode(bNode, enode.RandomID(rng))
	if err != nil {
		t.Fatalf("findnode: %v", err)
	}
	if len(nodes) == 0 {
		t.Fatal("no nodes returned")
	}
}

func TestLookupConverges(t *testing.T) {
	// Build a small mesh: one bootstrap plus 8 members that all know
	// the bootstrap; lookups starting from one member must discover
	// the others through iterative findnode.
	boot, bootNode := newLoopbackTransport(t, 20, nil)
	_ = boot
	var members []*Transport
	var memberNodes []*enode.Node
	for i := 0; i < 8; i++ {
		tr, n := newLoopbackTransport(t, 30+int64(i), []*enode.Node{bootNode})
		members = append(members, tr)
		memberNodes = append(memberNodes, n)
	}
	// Everyone pings the bootstrap so its table fills.
	for _, m := range members {
		if err := m.Ping(bootNode); err != nil {
			t.Fatalf("bootstrap ping: %v", err)
		}
	}
	// A lookup from member 0 should learn most other members.
	rng := rand.New(rand.NewSource(11))
	found := map[enode.ID]bool{}
	for i := 0; i < 5; i++ {
		for _, n := range members[0].Lookup(enode.RandomID(rng)) {
			found[n.ID] = true
		}
		hits := 0
		for _, n := range memberNodes[1:] {
			if found[n.ID] || members[0].table.Contains(n.ID) {
				hits++
			}
		}
		if hits >= 4 {
			return
		}
	}
	t.Fatalf("lookups discovered fewer than 4/7 members")
}

func TestTransportCloseIdempotent(t *testing.T) {
	a, _ := newLoopbackTransport(t, 40, nil)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPacketCounted(t *testing.T) {
	a, aNode := newLoopbackTransport(t, 41, nil)
	// Fire garbage at the socket.
	conn, err := net.DialUDP("udp4", nil, aNode.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not a discovery packet at all, just noise"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().BadPackets > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("bad packet never counted")
}
