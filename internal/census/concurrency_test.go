package census_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/census"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/testutil/leakcheck"
)

// TestSnapshotSwapUnderLoad hammers the handler from many goroutines
// while the daemon keeps publishing new epochs and ingesting entries.
// Run with -race this is the proof of the lock-free read path: no
// reader ever sees a torn snapshot, an error status, or an epoch that
// moves backwards.
func TestSnapshotSwapUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	clk := simclock.NewSimulated(t0)
	reg := metrics.New()
	d := census.NewDaemon(census.DaemonConfig{Clock: clk, Metrics: reg})
	for i := 0; i < 100; i++ {
		d.Record(helloEntry(fmt.Sprintf("n%03d", i), fmt.Sprintf("10.1.%d.%d", i/250, i%250),
			"Geth/v1.8.10-stable", t0.Add(time.Duration(i)*time.Second)))
	}
	d.Start()
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	paths := []string{
		"/", "/v1/summary", "/v1/clients", "/v1/geo", "/v1/networks",
		"/v1/series/churn", "/v1/series/arrivals", "/v1/series/churn?last=2",
		"/v1/nodes/n000", "/metrics",
	}
	const workers = 32
	const perWorker = 40 // >1k requests in flight across the run
	errs := make(chan error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			<-start
			lastEpoch := -1
			for i := 0; i < perWorker; i++ {
				target := paths[(w+i)%len(paths)]
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
				if rr.Code != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", target, rr.Code, rr.Body.Bytes())
					return
				}
				if es := rr.Header().Get("X-Census-Epoch"); es != "" {
					epoch, err := strconv.Atoi(es)
					if err != nil {
						errs <- fmt.Errorf("%s: bad epoch header %q", target, es)
						return
					}
					if epoch < lastEpoch {
						errs <- fmt.Errorf("%s: epoch went backwards: %d after %d", target, epoch, lastEpoch)
						return
					}
					lastEpoch = epoch
				}
			}
		}(w)
	}
	close(start)

	// Publish epochs as fast as the readers can consume them, feeding
	// fresh entries so consecutive snapshots genuinely differ.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	extra := 0
	for publishing := true; publishing; {
		select {
		case <-done:
			publishing = false
		default:
			d.Record(helloEntry(fmt.Sprintf("x%04d", extra), "10.9.9.9",
				"Parity-Ethereum/v2.0.1-stable", clk.Now()))
			extra++
			clk.Advance(census.DefaultInterval)
		}
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	d.Stop()
	if d.Current().Epoch < 1 {
		t.Fatalf("load ran against a single epoch (epoch %d); swap path untested", d.Current().Epoch)
	}
}

// TestDaemonStartStopLifecycle: Stop cancels the tick timer (nothing
// left on the clock), freezes the published epoch, and a restart
// resumes publishing. leakcheck proves the whole lifecycle spawns no
// goroutines.
func TestDaemonStartStopLifecycle(t *testing.T) {
	leakcheck.Check(t)
	clk := simclock.NewSimulated(t0)
	d := census.NewDaemon(census.DaemonConfig{Clock: clk})
	d.Start()
	clk.Advance(2 * census.DefaultInterval)
	if got := d.Current().Epoch; got != 2 {
		t.Fatalf("epoch = %d after two intervals, want 2", got)
	}

	d.Stop()
	if n := clk.PendingCount(); n != 0 {
		t.Errorf("%d timers still scheduled after Stop", n)
	}
	clk.Advance(5 * census.DefaultInterval)
	if got := d.Current().Epoch; got != 2 {
		t.Errorf("epoch advanced to %d after Stop", got)
	}

	d.Start()
	clk.Advance(census.DefaultInterval)
	if got := d.Current().Epoch; got <= 2 {
		t.Errorf("epoch = %d after restart, want publishing resumed", got)
	}
	d.Stop()
}

// TestSoakServedSeriesReconcilesWithMlog is the acceptance soak: a
// deterministic-seed simulated crawl feeds the census daemon through
// an mlog.Tee while a Collector keeps the raw log. After hours of
// virtual crawling, the served totals and the served churn series
// must reconcile EXACTLY — not approximately — with what the raw log
// says, because daemon and auditor share the same epoch code over the
// same ordered records.
func TestSoakServedSeriesReconcilesWithMlog(t *testing.T) {
	leakcheck.Check(t)
	const seed = 11
	reg := metrics.New()
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = 250
	w := simnet.NewWorld(cfg)

	col := mlog.NewCollector()
	d := census.NewDaemon(census.DaemonConfig{
		Clock:   w.Clock,
		Geo:     geo.NewDB(),
		Metrics: reg,
	})
	d.Start() // anchor the epoch grid at the crawl start

	dialer := w.NewDialer(seed + 2)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer,
		Log:       mlog.Tee{col, d},
		Metrics:   reg,
		Seed:      seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := w.StartIncoming(f, 30*time.Second, seed+4)
	f.Start()
	w.Clock.Advance(4 * time.Hour)
	f.Stop()
	gen.Stop()

	// Final out-of-band publish so daemon and collector have seen the
	// identical entry set.
	snap := d.Publish()
	d.Stop()

	entries := col.Entries()
	if len(entries) == 0 {
		t.Fatal("simulated crawl produced no mlog entries")
	}

	// Totals reconcile against a from-scratch aggregation of the log.
	nodes := analysis.Aggregate(entries)
	if got, want := snap.Totals.Identities, len(nodes); got != want {
		t.Errorf("served identities = %d, want %d (from mlog)", got, want)
	}
	responsive := 0
	for _, o := range nodes {
		if o.Responsive {
			responsive++
		}
	}
	if got := snap.Totals.Responsive; got != responsive {
		t.Errorf("served responsive = %d, want %d (from mlog)", got, responsive)
	}

	// The served series reconciles point-for-point with an independent
	// recomputation over the raw log.
	want := analysis.EpochSeries(entries, snap.Start, snap.Interval, len(snap.Points))
	if len(snap.Points) == 0 {
		t.Fatal("served series is empty after 4h of crawling")
	}
	for i, got := range snap.Points {
		if got != want[i] {
			t.Errorf("series[%d]: served %+v != recomputed %+v", i, got, want[i])
		}
	}
	arrivedTotal := 0
	for _, p := range snap.Points {
		arrivedTotal += p.Arrived
	}
	if arrivedTotal == 0 {
		t.Error("series shows zero arrivals over the whole crawl")
	}
}
