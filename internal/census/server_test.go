package census_test

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/census"
	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
)

var update = flag.Bool("update", false, "rewrite golden files")

// t0 anchors every deterministic fixture (the paper's crawl window).
var t0 = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

func helloEntry(id, ip, client string, at time.Time) *mlog.Entry {
	return &mlog.Entry{
		Time:      at,
		NodeID:    id,
		IP:        ip,
		ConnType:  mlog.ConnDynamicDial,
		LatencyUS: 1500,
		Hello:     &mlog.HelloInfo{Version: 5, ClientName: client, Caps: []string{"eth/63"}},
	}
}

// fixtureEntries is a tiny hand-built world exercising every census
// dimension: a Mainnet Geth node that upgrades mid-crawl, a Ropsten
// Parity node that departs, a DISCONNECT-only arrival, and a dead
// address.
func fixtureEntries() []*mlog.Entry {
	mainnet := chain.MainnetGenesisHash.Hex()

	ge1 := helloEntry("aa", "52.1.2.3", "Geth/v1.8.10-stable/linux-amd64/go1.10", t0.Add(5*time.Minute))
	ge1.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: 1, GenesisHash: mainnet, BestBlock: 5550000}
	ge1.DAOFork = "supported"

	ge2 := helloEntry("aa", "52.1.2.3", "Geth/v1.8.11-stable/linux-amd64/go1.10", t0.Add(35*time.Minute))
	ge2.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: 1, GenesisHash: mainnet, BestBlock: 5550180}
	ge2.DAOFork = "supported"

	pa := helloEntry("bb", "13.5.6.7", "Parity-Ethereum/v2.0.1-stable", t0.Add(6*time.Minute))
	pa.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: 3, GenesisHash: "0x41941023680923e0fe4d74a34bdac8141f2540e3ae90623718e47d66d1ca4a2d"}
	pa.DAOFork = "unknown"
	pa.LatencyUS = 8200

	dc := &mlog.Entry{Time: t0.Add(36 * time.Minute), NodeID: "cc", IP: "99.9.9.9", ConnType: mlog.ConnDynamicDial}
	reason := uint64(0x04)
	dc.DisconnectReason = &reason

	dead := &mlog.Entry{Time: t0.Add(7 * time.Minute), NodeID: "dd", IP: "10.0.0.1", ConnType: mlog.ConnDynamicDial, Err: "connection refused"}

	return []*mlog.Entry{ge1, pa, dead, ge2, dc}
}

// fixture publishes four epochs of the hand-built world: epoch 0 at
// Start, then ticks at +30m, +60m, +90m, leaving two finalized
// windows in the served series.
func fixture(t *testing.T, reg *metrics.Registry) (*census.Daemon, *simclock.Simulated) {
	t.Helper()
	clk := simclock.NewSimulated(t0)
	d := census.NewDaemon(census.DaemonConfig{
		Clock:   clk,
		Geo:     geo.NewDB(),
		Metrics: reg,
	})
	for _, e := range fixtureEntries() {
		d.Record(e)
	}
	d.Start()
	clk.Advance(3 * census.DefaultInterval)
	t.Cleanup(d.Stop)
	return d, clk
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("response differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestHandlerGoldens drives every endpoint, success and failure,
// through the handler and pins the exact JSON bodies.
func TestHandlerGoldens(t *testing.T) {
	reg := metrics.New()
	d, _ := fixture(t, reg)
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	tests := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		golden     string
	}{
		{"index", "GET", "/", "", 200, "index"},
		{"summary", "GET", "/v1/summary", "", 200, "summary"},
		{"clients", "GET", "/v1/clients", "", 200, "clients"},
		{"geo", "GET", "/v1/geo", "", 200, "geo"},
		{"networks", "GET", "/v1/networks", "", 200, "networks"},
		{"series-churn", "GET", "/v1/series/churn", "", 200, "series_churn"},
		{"series-arrivals", "GET", "/v1/series/arrivals", "", 200, "series_arrivals"},
		{"series-last", "GET", "/v1/series/churn?last=1", "", 200, "series_churn_last1"},
		{"series-last-zero", "GET", "/v1/series/arrivals?last=0", "", 200, "series_arrivals_last0"},
		{"node-found", "GET", "/v1/nodes/aa", "", 200, "node_aa"},
		{"node-disconnect-only", "GET", "/v1/nodes/cc", "", 200, "node_cc"},
		{"node-missing", "GET", "/v1/nodes/ffff", "", 404, "node_missing"},
		{"unknown-path", "GET", "/v1/nope", "", 404, "not_found"},
		{"method-not-allowed", "POST", "/v1/summary", "", 405, "method_not_allowed"},
		{"bad-query", "GET", "/v1/series/churn?last=banana", "", 400, "bad_query"},
		{"bad-query-negative", "GET", "/v1/series/arrivals?last=-3", "", 400, "bad_query_negative"},
		{"body-too-large", "GET", "/v1/summary", strings.Repeat("x", 5<<10), 413, "body_too_large"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.target, body)
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d\nbody: %s", rr.Code, tc.wantStatus, rr.Body.Bytes())
			}
			if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			checkGolden(t, tc.golden, rr.Body.Bytes())
		})
	}
}

// TestMetricsGolden pins /metrics on a fresh fixture where the only
// request ever made is the one under test, so every instrument value
// is deterministic.
func TestMetricsGolden(t *testing.T) {
	reg := metrics.New()
	d, _ := fixture(t, reg)
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.Bytes())
	}
	checkGolden(t, "metrics", rr.Body.Bytes())
}

// TestUnavailableBeforeFirstPublish: every data endpoint is 503 with
// a JSON body until the daemon publishes.
func TestUnavailableBeforeFirstPublish(t *testing.T) {
	reg := metrics.New()
	d := census.NewDaemon(census.DaemonConfig{Clock: simclock.NewSimulated(t0), Metrics: reg})
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	for _, target := range []string{"/", "/v1/summary", "/v1/series/churn", "/v1/nodes/aa"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		if rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s: status = %d, want 503", target, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", target, ct)
		}
	}
	checkGolden(t, "unavailable", func() []byte {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/summary", nil))
		return rr.Body.Bytes()
	}())
}

// TestETagLifecycle: a cached body carries a strong epoch-keyed ETag;
// polling with If-None-Match costs a 304 until the next publish
// invalidates it.
func TestETagLifecycle(t *testing.T) {
	reg := metrics.New()
	d, _ := fixture(t, reg)
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/summary", nil))
	etag := rr.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"census-`) {
		t.Fatalf("ETag = %q, want strong census-<epoch> tag", etag)
	}

	req := httptest.NewRequest("GET", "/v1/summary", nil)
	req.Header.Set("If-None-Match", etag)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", rr.Code)
	}
	if rr.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rr.Body.Bytes())
	}
	if got := reg.Snapshot().Counter("census.http_not_modified"); got != 1 {
		t.Errorf("not_modified counter = %d, want 1", got)
	}

	// A new epoch invalidates the tag: same If-None-Match now misses.
	d.Publish()
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("post-publish status = %d, want 200", rr.Code)
	}
	if got := rr.Header().Get("ETag"); got == etag {
		t.Errorf("ETag unchanged across publish: %q", got)
	}
}

// TestHeadRequests: HEAD is answered from the same cache with
// headers only.
func TestHeadRequests(t *testing.T) {
	reg := metrics.New()
	d, _ := fixture(t, reg)
	h := census.NewHandler(census.ServerConfig{Source: d, Metrics: reg})

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("HEAD", "/v1/summary", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Body.Len() != 0 {
		t.Errorf("HEAD returned a body (%d bytes)", rr.Body.Len())
	}
	if rr.Header().Get("Content-Length") == "0" || rr.Header().Get("Content-Length") == "" {
		t.Errorf("Content-Length = %q, want the cached body size", rr.Header().Get("Content-Length"))
	}
}
