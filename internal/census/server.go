package census

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/simclock"
)

// SnapshotSource yields the snapshot to serve; *Daemon implements it.
// Current must be safe for concurrent use and may return nil before
// the first publish (served as 503).
type SnapshotSource interface {
	Current() *Snapshot
}

// DefaultMaxBodyBytes bounds request bodies. Every endpoint is a GET;
// a body at all is suspect, a large one is rejected outright.
const DefaultMaxBodyBytes = 4 << 10

// ServerConfig configures the HTTP layer.
type ServerConfig struct {
	Source SnapshotSource
	// Metrics is served by /metrics and also receives the server's own
	// request instruments; nil disables both.
	Metrics *metrics.Registry
	// Clock times request handling for the latency histogram; nil
	// disables latency observation (counters still work).
	Clock simclock.Clock
	// MaxBodyBytes overrides DefaultMaxBodyBytes when positive.
	MaxBodyBytes int64
}

// NewHandler builds the census HTTP API:
//
//	GET /                   index (endpoint list)
//	GET /v1/summary         headline totals
//	GET /v1/clients         client/service/version censuses
//	GET /v1/geo             country and AS distributions
//	GET /v1/networks        network/genesis/fork censuses
//	GET /v1/series/churn    epoch churn series (?last=N)
//	GET /v1/series/arrivals arrivals view of the series (?last=N)
//	GET /v1/nodes/{id}      per-identity lookup
//	GET /metrics            live instrument snapshot
//
// Static endpoints serve bytes pre-marshaled at publish time, tagged
// with a strong ETag derived from the snapshot epoch; If-None-Match
// turns a poll against an unchanged epoch into a 304 with no body.
// Handlers never lock and never marshal on the cached path.
func NewHandler(cfg ServerConfig) http.Handler {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &server{
		src:         cfg.Source,
		reg:         cfg.Metrics,
		clock:       cfg.Clock,
		maxBody:     cfg.MaxBodyBytes,
		requests:    cfg.Metrics.CounterVec("census.http_requests"),
		statuses:    cfg.Metrics.CounterVec("census.http_status"),
		notModified: cfg.Metrics.Counter("census.http_not_modified"),
		latencyUS:   cfg.Metrics.Histogram("census.http_latency_us"),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/summary", s.get("summary", s.cachedPayload(epSummary)))
	mux.HandleFunc("/v1/clients", s.get("clients", s.cachedPayload(epClients)))
	mux.HandleFunc("/v1/geo", s.get("geo", s.cachedPayload(epGeo)))
	mux.HandleFunc("/v1/networks", s.get("networks", s.cachedPayload(epNetworks)))
	mux.HandleFunc("/v1/series/churn", s.get("series_churn", s.series(epSeriesChurn)))
	mux.HandleFunc("/v1/series/arrivals", s.get("series_arrivals", s.series(epSeriesArrivals)))
	mux.HandleFunc("/v1/nodes/{id}", s.get("node", s.node))
	mux.HandleFunc("/metrics", s.get("metrics", s.metrics))
	mux.HandleFunc("/", s.get("index", s.index))
	s.mux = mux
	return s
}

type server struct {
	src     SnapshotSource
	reg     *metrics.Registry
	clock   simclock.Clock
	maxBody int64
	mux     *http.ServeMux

	requests    *metrics.CounterVec
	statuses    *metrics.CounterVec
	notModified *metrics.Counter
	latencyUS   *metrics.Histogram
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter records the status code for the per-class counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// get wraps an endpoint handler with the shared request policy:
// per-endpoint accounting, method gating (GET/HEAD only), and request
// body bounds. The endpoint counter is resolved once at construction,
// not per request.
func (s *server) get(label string, h http.HandlerFunc) http.HandlerFunc {
	count := s.requests.WithLabel(label)
	return func(w http.ResponseWriter, r *http.Request) {
		count.Inc()
		var began time.Time
		timed := s.clock != nil
		if timed {
			began = s.clock.Now()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		switch {
		case r.Method != http.MethodGet && r.Method != http.MethodHead:
			sw.Header().Set("Allow", "GET, HEAD")
			s.writeError(sw, http.StatusMethodNotAllowed, "method not allowed")
		case r.ContentLength > s.maxBody:
			s.writeError(sw, http.StatusRequestEntityTooLarge, "request body too large")
		default:
			if r.Body != nil && r.Body != http.NoBody {
				r.Body = http.MaxBytesReader(sw, r.Body, s.maxBody)
			}
			h(sw, r)
		}
		s.statuses.WithLabel(statusClass(sw.status)).Inc()
		if timed {
			s.latencyUS.Observe(uint64(s.clock.Since(began) / time.Microsecond))
		}
	}
}

// cachedPayload serves a snapshot's pre-marshaled body for one
// endpoint index: a header write and one byte copy, no locks, no
// allocation beyond the ResponseWriter's own.
func (s *server) cachedPayload(ep int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := s.src.Current()
		if snap == nil {
			s.writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
			return
		}
		s.writeCached(w, r, snap, snap.cached[ep])
	}
}

func (s *server) writeCached(w http.ResponseWriter, r *http.Request, snap *Snapshot, body []byte) {
	h := w.Header()
	h.Set("ETag", snap.etag)
	h.Set("X-Census-Epoch", strconv.FormatUint(snap.Epoch, 10))
	if r.Header.Get("If-None-Match") == snap.etag {
		s.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(body)
	}
}

// series serves the churn/arrivals payloads. Without a query it is a
// pure cached-bytes path; ?last=N re-slices to the most recent N
// windows and marshals per request (the one deliberately dynamic
// view).
func (s *server) series(ep int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := s.src.Current()
		if snap == nil {
			s.writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
			return
		}
		q := r.URL.Query()
		if !q.Has("last") {
			s.writeCached(w, r, snap, snap.cached[ep])
			return
		}
		last, err := strconv.Atoi(q.Get("last"))
		if err != nil || last < 0 {
			s.writeError(w, http.StatusBadRequest, "last must be a non-negative integer")
			return
		}
		points := snap.Points
		if last < len(points) {
			points = points[len(points)-last:]
		}
		switch ep {
		case epSeriesChurn:
			s.writeJSON(w, snap, churnPayload{
				Epoch:           snap.Epoch,
				Start:           snap.Start,
				IntervalSeconds: snap.Interval.Seconds(),
				Points:          points,
			})
		default:
			arrivals := make([]arrivalPoint, len(points))
			for i, pt := range points {
				arrivals[i] = arrivalPoint{Epoch: pt.Epoch, Start: pt.Start, Arrived: pt.Arrived, Alive: pt.Alive}
			}
			s.writeJSON(w, snap, arrivalsPayload{Epoch: snap.Epoch, Points: arrivals})
		}
	}
}

// node serves the per-identity lookup.
func (s *server) node(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Current()
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	id := r.PathValue("id")
	ns := snap.Node(id)
	if ns == nil {
		s.writeError(w, http.StatusNotFound, "unknown node")
		return
	}
	s.writeJSON(w, snap, ns)
}

// metrics serves the live registry — always marshal-on-demand, since
// instruments move between snapshots.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, nil, s.reg.Snapshot())
}

// index serves the endpoint list at exactly "/"; anything else that
// fell through the mux is a JSON 404.
func (s *server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		s.writeError(w, http.StatusNotFound, "no such endpoint")
		return
	}
	snap := s.src.Current()
	if snap == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	s.writeCached(w, r, snap, snap.cached[epIndex])
}

func (s *server) writeJSON(w http.ResponseWriter, snap *Snapshot, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encode failed")
		return
	}
	buf = append(buf, '\n')
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if snap != nil {
		h.Set("X-Census-Epoch", strconv.FormatUint(snap.Epoch, 10))
	}
	h.Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

func (s *server) writeError(w http.ResponseWriter, code int, msg string) {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	body = append(body, '\n')
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
