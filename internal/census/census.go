// Package census turns the NodeFinder measurement log into a served
// longitudinal census: a daemon slices the log into fixed epochs on a
// simclock tick, builds an immutable Snapshot of the ecosystem
// censuses (§6) plus the epoch churn series, and an HTTP layer serves
// the snapshot without ever blocking the daemon.
//
// The serving design is read-mostly and allocation-bounded: every
// endpoint's response body is marshaled once at publish time and
// stored inside the Snapshot, snapshots swap atomically, and handlers
// write the pre-built bytes. Readers never take a lock and never
// marshal on the hot path.
package census

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/nodefinder/mlog"
)

// Cached endpoint payload indices inside a Snapshot.
const (
	epIndex = iota
	epSummary
	epClients
	epGeo
	epNetworks
	epSeriesChurn
	epSeriesArrivals
	numEndpoints
)

// Row caps keep cached payloads bounded no matter how adversarial the
// population is (the paper saw 18k distinct genesis hashes). Headline
// distinct counts are always served alongside, so truncation is
// visible, never silent.
const (
	maxShareRows   = 20
	maxVersionRows = 12
)

// share is analysis.Share with JSON tags for serving.
type share struct {
	Key      string  `json:"key"`
	Count    int     `json:"count"`
	Fraction float64 `json:"fraction"`
}

func toShares(rows []analysis.Share, max int) []share {
	if len(rows) > max {
		rows = rows[:max]
	}
	out := make([]share, len(rows))
	for i, r := range rows {
		out[i] = share{Key: r.Key, Count: r.Count, Fraction: r.Fraction}
	}
	return out
}

// rankCounts is analysis' rank ordering for locally-computed count
// maps: count descending, ties by key.
func rankCounts(counts map[string]int) []share {
	total := 0
	for _, c := range counts {
		total += c
	}
	rows := make([]share, 0, len(counts))
	for k, c := range counts {
		f := 0.0
		if total > 0 {
			f = float64(c) / float64(total)
		}
		rows = append(rows, share{Key: k, Count: c, Fraction: f})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

// Totals are the headline population counts of one snapshot.
type Totals struct {
	// Identities is every node ID the log has seen.
	Identities int `json:"identities"`
	// Responsive answered with a HELLO or DISCONNECT at least once.
	Responsive int `json:"responsive"`
	// DEVp2p completed the DEVp2p handshake (decoded HELLO).
	DEVp2p int `json:"devp2p"`
	// WithStatus also completed the eth STATUS exchange.
	WithStatus int `json:"withStatus"`
	// Mainnet are verified Mainnet nodes (network 1, Mainnet genesis,
	// pro-fork DAO check).
	Mainnet int `json:"mainnet"`
}

// NodeSummary is the per-identity lookup record served by
// /v1/nodes/{id}.
type NodeSummary struct {
	ID          string    `json:"id"`
	IP          string    `json:"ip,omitempty"`
	Country     string    `json:"country,omitempty"`
	AS          string    `json:"as,omitempty"`
	Cloud       bool      `json:"cloud,omitempty"`
	Responsive  bool      `json:"responsive"`
	FirstSeen   time.Time `json:"firstSeen"`
	LastSeen    time.Time `json:"lastSeen"`
	Client      string    `json:"client,omitempty"`
	Caps        []string  `json:"caps,omitempty"`
	NetworkID   uint64    `json:"networkID,omitempty"`
	GenesisHash string    `json:"genesisHash,omitempty"`
	BestBlock   uint64    `json:"bestBlock,omitempty"`
	DAOFork     string    `json:"daoFork,omitempty"`
	LatencyMS   float64   `json:"latencyMS,omitempty"`
	Mainnet     bool      `json:"mainnet"`
	Entries     int       `json:"entries"`
}

// Snapshot is one immutable published census. All exported fields and
// the cached payloads are written once by BuildSnapshot and never
// mutated afterwards, so a *Snapshot may be shared across any number
// of concurrent readers without synchronization.
type Snapshot struct {
	// Epoch counts published snapshots, starting at 0 when the daemon
	// starts. It keys every response cache: a new epoch is the only
	// event that invalidates a cached body.
	Epoch uint64
	// Time is the snapshot's build time, Start the series origin.
	Time  time.Time
	Start time.Time
	// Interval is the epoch width.
	Interval time.Duration
	Totals   Totals
	// Points is the finalized churn series: one interval behind Time,
	// so every in-flight dial of a finalized window has landed.
	Points []analysis.EpochPoint

	nodes  map[string]*NodeSummary
	ids    []string
	cached [numEndpoints][]byte
	etag   string
}

// ETag returns the strong entity tag shared by every cached payload
// of this snapshot.
func (s *Snapshot) ETag() string { return s.etag }

// Node returns the summary for a node ID, or nil.
func (s *Snapshot) Node(id string) *NodeSummary { return s.nodes[id] }

// NodeIDs returns all known IDs in sorted order. The slice is shared
// and must not be mutated.
func (s *Snapshot) NodeIDs() []string { return s.ids }

// Payload returns the pre-marshaled body for a cached endpoint index.
func (s *Snapshot) Payload(ep int) []byte { return s.cached[ep] }

// Endpoints in the order served by the index payload.
var endpointPaths = []string{
	"/v1/summary",
	"/v1/clients",
	"/v1/geo",
	"/v1/networks",
	"/v1/series/churn",
	"/v1/series/arrivals",
	"/v1/nodes/{id}",
	"/metrics",
}

// BuildParams feed one BuildSnapshot call.
type BuildParams struct {
	Epoch uint64
	// Now is the build time; Start/Interval define the epoch grid.
	Now      time.Time
	Start    time.Time
	Interval time.Duration
	// Entries is the cumulative measurement log, in record order.
	Entries []*mlog.Entry
	// Geo resolves node IPs; nil disables geography.
	Geo *geo.DB
	// MaxPoints, when positive, bounds the served series to the most
	// recent windows.
	MaxPoints int
}

type summaryPayload struct {
	Epoch            uint64    `json:"epoch"`
	Time             time.Time `json:"time"`
	Start            time.Time `json:"start"`
	IntervalSeconds  float64   `json:"intervalSeconds"`
	Totals           Totals    `json:"totals"`
	EpochsFinalized  int       `json:"epochsFinalized"`
	DistinctNetworks int       `json:"distinctNetworks"`
	DistinctGenesis  int       `json:"distinctGenesis"`
}

type versionPayload struct {
	Client      string  `json:"client"`
	Total       int     `json:"total"`
	StableShare float64 `json:"stableShare"`
	Top         []share `json:"top"`
}

type clientsPayload struct {
	Epoch    uint64           `json:"epoch"`
	Clients  []share          `json:"clients"`
	Services []share          `json:"services"`
	Versions []versionPayload `json:"versions"`
}

type geoPayload struct {
	Epoch        uint64  `json:"epoch"`
	Countries    []share `json:"countries"`
	ASes         []share `json:"ases"`
	Top8ASShare  float64 `json:"top8ASShare"`
	Top8AllCloud bool    `json:"top8AllCloud"`
}

type networksPayload struct {
	Epoch                   uint64  `json:"epoch"`
	Networks                []share `json:"networks"`
	GenesisHashes           []share `json:"genesisHashes"`
	DistinctNetworks        int     `json:"distinctNetworks"`
	DistinctGenesis         int     `json:"distinctGenesis"`
	SinglePeerNetworks      int     `json:"singlePeerNetworks"`
	MainnetGenesisImpostors int     `json:"mainnetGenesisImpostors"`
	Forks                   []share `json:"forks"`
}

type churnPayload struct {
	Epoch           uint64                `json:"epoch"`
	Start           time.Time             `json:"start"`
	IntervalSeconds float64               `json:"intervalSeconds"`
	Points          []analysis.EpochPoint `json:"points"`
}

// arrivalPoint is the arrivals view of one epoch window.
type arrivalPoint struct {
	Epoch   int       `json:"epoch"`
	Start   time.Time `json:"start"`
	Arrived int       `json:"arrived"`
	Alive   int       `json:"alive"`
}

type arrivalsPayload struct {
	Epoch  uint64         `json:"epoch"`
	Points []arrivalPoint `json:"points"`
}

type indexPayload struct {
	Service   string   `json:"service"`
	Epoch     uint64   `json:"epoch"`
	Endpoints []string `json:"endpoints"`
}

// BuildSnapshot aggregates the log and marshals every endpoint
// payload eagerly, so serving is a byte copy.
func BuildSnapshot(p BuildParams) *Snapshot {
	nodes := analysis.Aggregate(p.Entries)

	s := &Snapshot{
		Epoch:    p.Epoch,
		Time:     p.Now,
		Start:    p.Start,
		Interval: p.Interval,
		etag:     fmt.Sprintf("%q", fmt.Sprintf("census-%d", p.Epoch)),
	}

	// Finalized windows lag the build time by one interval: entries
	// carry the dial's start time but land in the log at dial end, so
	// the newest window may still be filling. One interval (30 min
	// nominal) dwarfs the bounded dial timeout, guaranteeing a
	// finalized window's entry set is complete — this is what lets a
	// served series reconcile exactly against the raw log.
	finalized := 0
	if p.Interval > 0 {
		finalized = int(p.Now.Sub(p.Start)/p.Interval) - 1
		if finalized < 0 {
			finalized = 0
		}
	}
	s.Points = analysis.EpochSeries(p.Entries, p.Start, p.Interval, finalized)
	if p.MaxPoints > 0 && len(s.Points) > p.MaxPoints {
		s.Points = s.Points[len(s.Points)-p.MaxPoints:]
	}

	for _, o := range nodes {
		s.Totals.Identities++
		if o.Responsive {
			s.Totals.Responsive++
		}
		if len(o.Caps) > 0 {
			s.Totals.DEVp2p++
		}
		if o.HasStatus {
			s.Totals.WithStatus++
		}
		if analysis.IsMainnet(o) {
			s.Totals.Mainnet++
		}
	}

	s.nodes = make(map[string]*NodeSummary, len(nodes))
	s.ids = make([]string, 0, len(nodes))
	for id, o := range nodes {
		ns := &NodeSummary{
			ID:         id,
			IP:         o.IP,
			Responsive: o.Responsive,
			FirstSeen:  o.FirstSeen,
			LastSeen:   o.LastSeen,
			Client:     o.ClientName,
			Caps:       o.Caps,
			DAOFork:    o.DAOFork,
			Mainnet:    analysis.IsMainnet(o),
			Entries:    len(o.Entries),
			LatencyMS:  float64(o.LatencyUS) / 1000,
		}
		if o.HasStatus {
			ns.NetworkID = o.NetworkID
			ns.GenesisHash = o.GenesisHash
			ns.BestBlock = o.BestBlock
		}
		if p.Geo != nil {
			if ip := net.ParseIP(o.IP); ip != nil {
				ns.Country = string(p.Geo.Country(ip))
				as := p.Geo.ASOf(ip)
				ns.AS = as.Name
				ns.Cloud = as.Cloud
			}
		}
		s.nodes[id] = ns
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)

	nets := analysis.Networks(nodes)

	s.cached[epSummary] = marshal(summaryPayload{
		Epoch:            p.Epoch,
		Time:             p.Now,
		Start:            p.Start,
		IntervalSeconds:  p.Interval.Seconds(),
		Totals:           s.Totals,
		EpochsFinalized:  len(s.Points),
		DistinctNetworks: nets.DistinctNetworks,
		DistinctGenesis:  nets.DistinctGenesis,
	})

	mainnet := analysis.MainnetSubset(nodes)
	s.cached[epClients] = marshal(clientsPayload{
		Epoch:    p.Epoch,
		Clients:  toShares(analysis.ClientCensus(mainnet), maxShareRows),
		Services: toShares(analysis.ServiceCensus(nodes), maxShareRows),
		Versions: []versionPayload{
			versionRows(mainnet, "Geth"),
			versionRows(mainnet, "Parity"),
		},
	})

	gp := geoPayload{Epoch: p.Epoch, Countries: []share{}, ASes: []share{}}
	if p.Geo != nil {
		gc := analysis.Geography(nodes, p.Geo)
		gp.Countries = toShares(gc.Countries, maxShareRows)
		gp.ASes = toShares(gc.ASes, maxShareRows)
		gp.Top8ASShare = gc.Top8ASShare
		gp.Top8AllCloud = gc.Top8AllCloud
	}
	s.cached[epGeo] = marshal(gp)

	forks := map[string]int{}
	for _, o := range nodes {
		if !o.HasStatus {
			continue
		}
		stance := o.DAOFork
		if stance == "" {
			stance = "unchecked"
		}
		forks[stance]++
	}
	s.cached[epNetworks] = marshal(networksPayload{
		Epoch:                   p.Epoch,
		Networks:                toShares(nets.Networks, maxShareRows),
		GenesisHashes:           toShares(nets.GenesisHashes, maxShareRows),
		DistinctNetworks:        nets.DistinctNetworks,
		DistinctGenesis:         nets.DistinctGenesis,
		SinglePeerNetworks:      nets.SinglePeerNetworks,
		MainnetGenesisImpostors: nets.MainnetGenesisImpostors,
		Forks:                   rankCounts(forks),
	})

	s.cached[epSeriesChurn] = marshal(churnPayload{
		Epoch:           p.Epoch,
		Start:           p.Start,
		IntervalSeconds: p.Interval.Seconds(),
		Points:          s.Points,
	})

	arrivals := make([]arrivalPoint, len(s.Points))
	for i, pt := range s.Points {
		arrivals[i] = arrivalPoint{Epoch: pt.Epoch, Start: pt.Start, Arrived: pt.Arrived, Alive: pt.Alive}
	}
	s.cached[epSeriesArrivals] = marshal(arrivalsPayload{Epoch: p.Epoch, Points: arrivals})

	s.cached[epIndex] = marshal(indexPayload{
		Service:   "censusd",
		Epoch:     p.Epoch,
		Endpoints: endpointPaths,
	})

	return s
}

func versionRows(nodes map[string]*analysis.NodeObservation, client string) versionPayload {
	vc := analysis.Versions(nodes, client)
	return versionPayload{
		Client:      vc.Client,
		Total:       vc.Total,
		StableShare: vc.StableShare,
		Top:         toShares(vc.Versions, maxVersionRows),
	}
}

// marshal encodes a payload struct built entirely from local types;
// encoding cannot fail, so a failure is a programming error.
func marshal(v any) []byte {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic("census: marshal: " + err.Error())
	}
	return append(buf, '\n')
}
