package census

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
)

// DefaultInterval is the paper's census cadence: the crawler's
// liveness analysis works on 30-minute windows.
const DefaultInterval = 30 * time.Minute

// DaemonConfig configures a census Daemon.
type DaemonConfig struct {
	// Clock drives the publish schedule. On a simulated clock the
	// daemon ticks in virtual time, which makes whole-crawl soak tests
	// deterministic.
	Clock simclock.Clock
	// Interval is the epoch width; 0 means DefaultInterval.
	Interval time.Duration
	// Geo resolves node IPs for the geography census; nil disables it.
	Geo *geo.DB
	// Metrics receives the daemon's own instruments; nil disables.
	Metrics *metrics.Registry
	// MaxPoints, when positive, bounds the served churn series to the
	// most recent windows.
	MaxPoints int
}

// Daemon ingests measurement-log entries (it is an mlog.Sink, meant
// to sit in a Tee next to the persistent log writer) and publishes an
// immutable Snapshot every interval. Publication is a single atomic
// pointer swap: readers calling Current never contend with the
// builder, and a reader holding an old snapshot keeps a fully
// consistent view until it drops it.
type Daemon struct {
	cfg DaemonConfig

	mu      sync.Mutex
	pending []*mlog.Entry
	entries []*mlog.Entry
	epoch   uint64
	start   time.Time
	timer   simclock.Timer
	started bool
	stopped bool

	cur atomic.Pointer[Snapshot]

	recorded  *metrics.Counter
	published *metrics.Counter
	buildUS   *metrics.Histogram
}

// NewDaemon creates a daemon; call Start to begin the tick schedule.
func NewDaemon(cfg DaemonConfig) *Daemon {
	if cfg.Clock == nil {
		cfg.Clock = simclock.System{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	d := &Daemon{
		cfg:       cfg,
		recorded:  cfg.Metrics.Counter("census.entries_recorded"),
		published: cfg.Metrics.Counter("census.snapshots_published"),
		buildUS:   cfg.Metrics.Histogram("census.build_us"),
	}
	cfg.Metrics.GaugeFunc("census.epoch", func() int64 {
		if s := d.Current(); s != nil {
			return int64(s.Epoch)
		}
		return -1
	})
	cfg.Metrics.GaugeFunc("census.identities", func() int64 {
		if s := d.Current(); s != nil {
			return int64(s.Totals.Identities)
		}
		return 0
	})
	return d
}

// Record implements mlog.Sink. Entries recorded before Start are
// buffered and included from the first snapshot onwards.
func (d *Daemon) Record(e *mlog.Entry) {
	d.mu.Lock()
	d.pending = append(d.pending, e)
	d.mu.Unlock()
	d.recorded.Inc()
}

// Start anchors the epoch grid at the clock's current time, publishes
// the epoch-0 snapshot immediately, and schedules the periodic ticks.
// Starting twice is a no-op.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.stopped = false
	d.start = d.cfg.Clock.Now()
	d.timer = d.cfg.Clock.AfterFunc(d.cfg.Interval, d.tick)
	d.mu.Unlock()
	d.publish()
}

// Stop cancels the tick schedule. The last published snapshot stays
// current; Publish may still be called for a final out-of-band one.
func (d *Daemon) Stop() {
	d.mu.Lock()
	d.stopped = true
	d.started = false
	t := d.timer
	d.timer = nil
	d.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}

// Current returns the latest snapshot, or nil before the first
// publish. It never blocks.
func (d *Daemon) Current() *Snapshot { return d.cur.Load() }

// Publish forces an out-of-band snapshot (the next epoch number) and
// returns it.
func (d *Daemon) Publish() *Snapshot {
	d.publish()
	return d.Current()
}

func (d *Daemon) tick() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.timer = d.cfg.Clock.AfterFunc(d.cfg.Interval, d.tick)
	d.mu.Unlock()
	d.publish()
}

func (d *Daemon) publish() {
	d.mu.Lock()
	if d.start.IsZero() {
		// Publish before Start: anchor the grid here.
		d.start = d.cfg.Clock.Now()
	}
	d.entries = append(d.entries, d.pending...)
	d.pending = d.pending[:0]
	epoch := d.epoch
	d.epoch++
	// The slice header copy is safe to read outside the lock: entries
	// is append-only, and appends never write below our length.
	entries := d.entries
	start := d.start
	d.mu.Unlock()

	t := d.cfg.Clock.Now()
	snap := BuildSnapshot(BuildParams{
		Epoch:     epoch,
		Now:       t,
		Start:     start,
		Interval:  d.cfg.Interval,
		Entries:   entries,
		Geo:       d.cfg.Geo,
		MaxPoints: d.cfg.MaxPoints,
	})
	d.buildUS.Observe(uint64(d.cfg.Clock.Since(t) / time.Microsecond))
	d.cur.Store(snap)
	d.published.Inc()
}
