package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives every instrument kind from many
// goroutines; run under -race this is the package's primary
// correctness gate, and the final values check that no increment is
// lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		rounds  = 2000
	)
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer.counter")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist")
			v := r.CounterVec("hammer.vec")
			for i := 0; i < rounds; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
				if w%2 == 0 {
					v.Inc("even")
				} else {
					v.WithLabel("odd").Inc()
				}
				// Interleave snapshots to race reads against writes.
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	want := uint64(workers * rounds)
	if got := r.Counter("hammer.counter").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != int64(want) {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := r.Histogram("hammer.hist").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	vec := r.CounterVec("hammer.vec").Values()
	if got := vec["even"] + vec["odd"]; got != want {
		t.Errorf("vec sum = %d, want %d", got, want)
	}
}

// TestSnapshotDeterminism checks that snapshots taken with no
// intervening writes are identical, both structurally and as encoded
// JSON bytes.
func TestSnapshotDeterminism(t *testing.T) {
	r := New()
	r.Counter("a").Add(3)
	r.CounterVec("dials").Add("static-dial", 7)
	r.CounterVec("dials").Add("dynamic-dial", 9)
	r.Gauge("known").Set(-4)
	r.GaugeFunc("computed", func() int64 { return 42 })
	h := r.Histogram("lat")
	h.Observe(0)
	h.Observe(100)
	h.Observe(100000)

	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%#v\n%#v", s1, s2)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON encodings differ:\n%s\n%s", j1, j2)
	}

	var buf1, buf2 bytes.Buffer
	if _, err := s1.WriteTo(&buf1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatalf("human encodings differ:\n%s\n%s", buf1.String(), buf2.String())
	}
	if !strings.Contains(buf1.String(), "dials{static-dial}") {
		t.Errorf("human output missing vec member:\n%s", buf1.String())
	}
}

// TestJSONRoundTrip encodes a snapshot and decodes it back into an
// identical structure.
func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("conns").Add(123)
	r.CounterVec("errs").Add("tcp-timeout", 5)
	r.Gauge("table").Set(256)
	h := r.Histogram("rtt_us")
	for _, v := range []uint64{1, 2, 3, 500, 80000, 15_000_000} {
		h.Observe(v)
	}
	orig := r.Snapshot()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, &decoded) {
		t.Fatalf("round trip mismatch:\norig    %#v\ndecoded %#v", orig, &decoded)
	}
}

// TestNilSafety exercises the disabled path: a nil registry hands
// out nil instruments whose methods all no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter retained a value")
	}
	g := r.Gauge("y")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge retained a value")
	}
	h := r.Histogram("z")
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil histogram retained observations")
	}
	v := r.CounterVec("w")
	v.Inc("a")
	v.WithLabel("b").Add(2)
	if v.Values() != nil {
		t.Error("nil vec retained values")
	}
	r.GaugeFunc("f", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %#v", s)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote output: %q", buf.String())
	}
}

// TestHistogramShape checks bucket boundaries, mean, and quantile
// estimates against known observations.
func TestHistogramShape(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0 (le 0)
	h.Observe(1)    // bucket 1 (le 1)
	h.Observe(7)    // bucket 3 (le 7)
	h.Observe(1000) // bucket 10 (le 1023)
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 1008 {
		t.Fatalf("count=%d sum=%d, want 4/1008", s.Count, s.Sum)
	}
	wantBuckets := []Bucket{{0, 1}, {1, 1}, {7, 1}, {1023, 1}}
	if !reflect.DeepEqual(s.Buckets, wantBuckets) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, wantBuckets)
	}
	if m := s.Mean(); m != 252 {
		t.Errorf("mean = %v, want 252", m)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("p0 = %d, want 0", q)
	}
	if q := s.Quantile(0.99); q != 1023 {
		t.Errorf("p99 = %d, want 1023", q)
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
}

// TestCounterSum checks vec-family addressing in snapshots.
func TestCounterSum(t *testing.T) {
	r := New()
	r.CounterVec("finder.conns").Add("dynamic-dial", 10)
	r.CounterVec("finder.conns").Add("static-dial", 5)
	r.CounterVec("finder.conns").Add("incoming", 2)
	r.Counter("finder.connsX").Add(100) // must NOT match the family
	s := r.Snapshot()
	if got := s.CounterSum("finder.conns"); got != 17 {
		t.Errorf("CounterSum = %d, want 17", got)
	}
	if got := s.Counter("finder.conns{static-dial}"); got != 5 {
		t.Errorf("member lookup = %d, want 5", got)
	}
}

// TestRegistryIdentity confirms the registry hands back the same
// instrument for the same name.
func TestRegistryIdentity(t *testing.T) {
	r := New()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
	if r.CounterVec("v") != r.CounterVec("v") {
		t.Error("CounterVec not idempotent")
	}
	v := r.CounterVec("v")
	if v.WithLabel("l") != v.WithLabel("l") {
		t.Error("WithLabel not idempotent")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}

func BenchmarkVecResolvedInc(b *testing.B) {
	r := New()
	c := r.CounterVec("v").WithLabel("dynamic-dial")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
