package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestQuantileSummaryEdges pins the nearest-rank quantile estimate at
// the bucket edges the serving layer's gates depend on: an empty
// histogram, a single observation, observations split exactly across
// a bucket boundary, and the q=0/q=1 extremes.
func TestQuantileSummaryEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		s := h.Snapshot()
		if got := s.Summary(); got != (QuantileSummary{}) {
			t.Errorf("empty summary = %+v, want zeros", got)
		}
	})

	t.Run("single", func(t *testing.T) {
		var h Histogram
		h.Observe(300)
		// 300 lands in bucket [256,511]; every quantile reports its
		// upper bound.
		want := QuantileSummary{P50: 511, P90: 511, P99: 511}
		if got := h.Snapshot().Summary(); got != want {
			t.Errorf("summary = %+v, want %+v", got, want)
		}
	})

	t.Run("boundary-split", func(t *testing.T) {
		// 50 observations in bucket le=1, 50 in bucket le=3. With
		// nearest-rank, rank(0.5)=ceil(50)=50 is still inside the
		// first bucket; anything above crosses into the second.
		var h Histogram
		for i := 0; i < 50; i++ {
			h.Observe(1)
		}
		for i := 0; i < 50; i++ {
			h.Observe(2)
		}
		s := h.Snapshot()
		want := QuantileSummary{P50: 1, P90: 3, P99: 3}
		if got := s.Summary(); got != want {
			t.Errorf("summary = %+v, want %+v", got, want)
		}
		if q := s.Quantile(0.51); q != 3 {
			t.Errorf("p51 = %d, want 3 (crosses bucket boundary)", q)
		}
		if q := s.Quantile(0); q != 1 {
			t.Errorf("p0 = %d, want 1 (rank clamps to first observation)", q)
		}
		if q := s.Quantile(1); q != 3 {
			t.Errorf("p100 = %d, want 3", q)
		}
	})

	t.Run("heavy-tail", func(t *testing.T) {
		// 99 fast observations and one huge outlier: p99 must stay in
		// the fast bucket (rank 99 of 100), only p100 sees the tail.
		var h Histogram
		for i := 0; i < 99; i++ {
			h.Observe(100) // bucket le=127
		}
		h.Observe(1 << 30)
		s := h.Snapshot()
		if got := s.Quantiles.P99; got != 127 {
			t.Errorf("p99 = %d, want 127", got)
		}
		if q := s.Quantile(1); q != 1<<31-1 {
			t.Errorf("p100 = %d, want %d", q, 1<<31-1)
		}
	})
}

// TestQuantileSummaryJSON checks that the summary is embedded in the
// histogram's JSON (so /metrics consumers never re-derive bucket
// math) and that Snapshot fills it consistently with Summary().
func TestQuantileSummaryJSON(t *testing.T) {
	r := New()
	h := r.Histogram("serve.latency_us")
	for _, v := range []uint64{10, 20, 40, 80, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["serve.latency_us"]
	if hs.Quantiles != hs.Summary() {
		t.Errorf("Snapshot quantiles %+v != Summary() %+v", hs.Quantiles, hs.Summary())
	}

	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"quantiles":{"p50":`) {
		t.Errorf("marshaled snapshot missing quantile summary: %s", buf)
	}

	var decoded Snapshot
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if got := decoded.Histograms["serve.latency_us"].Quantiles; got != hs.Quantiles {
		t.Errorf("round-tripped quantiles = %+v, want %+v", got, hs.Quantiles)
	}
}
