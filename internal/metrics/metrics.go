// Package metrics is a small, dependency-free, allocation-light
// instrumentation library for the crawler's hot paths.
//
// Design constraints, in order:
//
//  1. Race-free under `go test -race`: every instrument is built on
//     sync/atomic; the only locks are the registry's (taken at
//     registration and snapshot time, never per-observation) and the
//     CounterVec label map's RWMutex (read-locked per lookup, but
//     callers are expected to resolve labels once and hold the
//     *Counter).
//  2. Near-zero cost when disabled: every instrument method is
//     nil-receiver-safe, and a nil *Registry hands out nil
//     instruments, so `counter.Inc()` on an unconfigured crawler is a
//     single predictable branch. Call sites never need to check.
//  3. No dependencies beyond the standard library, and no
//     allocations on the observation path.
//
// Instruments: Counter (monotonic), Gauge (settable), Histogram
// (fixed power-of-two buckets, suited to microsecond latencies
// spanning seven orders of magnitude), and CounterVec (a counter per
// label value, e.g. per mlog.ConnType).
package metrics

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down. The zero
// value is ready to use; a nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per possible bit length of a uint64
// (bucket 0 holds exact zeros), giving fixed log-scale (power-of-two)
// bucket boundaries with no configuration and O(1) lock-free inserts.
const histBuckets = 65

// Histogram counts observations in fixed power-of-two buckets:
// bucket i (i ≥ 1) holds values v with 2^(i-1) ≤ v < 2^i; bucket 0
// holds v == 0. The zero value is ready to use; nil no-ops.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration in microseconds (negative
// durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Microseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's current state. Under concurrent
// writers the bucket counts are each individually atomic; the
// aggregate may be mid-update, which is fine for telemetry.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), Count: n})
	}
	s.Quantiles = s.Summary()
	return s
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Only
// non-empty buckets are materialized. Quantiles carries the standard
// p50/p90/p99 summary so JSON consumers (the census /metrics endpoint,
// benchserve's gate math) never re-derive bucket arithmetic.
type HistogramSnapshot struct {
	Count     uint64          `json:"count"`
	Sum       uint64          `json:"sum"`
	Quantiles QuantileSummary `json:"quantiles"`
	Buckets   []Bucket        `json:"buckets,omitempty"`
}

// QuantileSummary is the marshalable p50/p90/p99 digest of a
// histogram, in the histogram's native unit (microseconds for
// latency histograms).
type QuantileSummary struct {
	P50 uint64 `json:"p50"`
	P90 uint64 `json:"p90"`
	P99 uint64 `json:"p99"`
}

// Summary computes the standard quantile digest from the buckets.
func (s HistogramSnapshot) Summary() QuantileSummary {
	return QuantileSummary{
		P50: s.Quantile(0.50),
		P90: s.Quantile(0.90),
		P99: s.Quantile(0.99),
	}
}

// Bucket is one non-empty histogram bucket: Count observations with
// value ≤ Le (and greater than the previous bucket's bound).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound
// of the bucket where the cumulative count crosses q·Count. With
// power-of-two buckets the estimate is within 2× of the true value,
// which is enough to tell a 300 µs RTT from a 15 s timeout.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	// Nearest-rank: the smallest bucket whose cumulative count
	// reaches ceil(q·Count).
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// CounterVec is a family of counters keyed by one label value (for
// example, dial counts by mlog.ConnType). Resolve the label once
// with WithLabel and hold the *Counter on hot paths; Inc is the
// convenience form. A nil *CounterVec no-ops.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// WithLabel returns the counter for label, creating it on first use.
func (v *CounterVec) WithLabel(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[label]; c != nil {
		return c
	}
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	c = &Counter{}
	v.m[label] = c
	return c
}

// Inc adds one to the counter for label.
func (v *CounterVec) Inc(label string) { v.WithLabel(label).Inc() }

// Add adds n to the counter for label.
func (v *CounterVec) Add(label string, n uint64) { v.WithLabel(label).Add(n) }

// Values returns a copy of the current per-label counts.
func (v *CounterVec) Values() map[string]uint64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.m))
	for label, c := range v.m {
		out[label] = c.Value()
	}
	return out
}
