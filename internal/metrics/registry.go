package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of instruments. Instruments are
// registered lazily: asking for a name creates it on first use and
// returns the same instance afterwards, so independent subsystems can
// share counters by agreeing on names.
//
// A nil *Registry is the disabled state: every getter returns a nil
// instrument (whose methods no-op) and Snapshot returns an empty
// snapshot. This lets call sites instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	vecs     map[string]*CounterVec
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		vecs:     make(map[string]*CounterVec),
	}
}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// snapshot time (e.g. the size of a table guarded by its own lock).
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the labeled counter family registered under
// name. Snapshots render each member as name{label}.
func (r *Registry) CounterVec(name string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.vecs[name]
	if v == nil {
		v = &CounterVec{}
		r.vecs[name] = v
	}
	return v
}

// Snapshot is a point-in-time copy of every instrument, shaped for
// JSON. Map keys marshal in sorted order, so encoding the same
// snapshot is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's value from the snapshot; vec members
// are addressed as name{label}.
func (s *Snapshot) Counter(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// CounterSum sums every counter whose name is prefix or starts with
// prefix{ — i.e. a whole CounterVec family.
func (s *Snapshot) CounterSum(prefix string) uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for name, v := range s.Counters {
		if name == prefix || strings.HasPrefix(name, prefix+"{") {
			sum += v
		}
	}
	return sum
}

// Snapshot captures the current value of every instrument. GaugeFunc
// callbacks run outside the registry lock, so they may consult other
// locked structures (node DBs, routing tables) freely.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	fns := map[string]func() int64{}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, v := range r.vecs {
		for label, n := range v.Values() {
			s.Counters[name+"{"+label+"}"] = n
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	r.mu.Unlock()
	for name, fn := range fns {
		s.Gauges[name] = fn()
	}
	return s
}

// WriteTo writes a human-readable snapshot, one instrument per line,
// sorted by name. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteJSON writes the snapshot as a single JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// WriteTo writes the snapshot in a human-readable aligned format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := write("counter  %-46s %12d\n", name, s.Counters[name]); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := write("gauge    %-46s %12d\n", name, s.Gauges[name]); err != nil {
			return total, err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		q := h.Quantiles
		if err := write("hist     %-46s count=%d mean=%.0f p50=%d p90=%d p99=%d\n",
			name, h.Count, h.Mean(), q.P50, q.P90, q.P99); err != nil {
			return total, err
		}
	}
	return total, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
