package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testAnalyzers configures every analyzer against the lintest golden
// universe under testdata/src.
func testAnalyzers() []Analyzer {
	return []Analyzer{
		&BoundedAlloc{Packages: []string{"lintest/boundedalloc"}},
		&Wallclock{
			Packages: []string{"lintest/wallclock", "lintest/suppress"},
			AllowFiles: map[string]string{
				"wallclock/allowed/allowed.go": "exercises the allowlist escape hatch",
			},
		},
		&ErrTaxonomy{
			Transports:     []string{"lintest/errtaxonomy/transport"},
			ClassifierPkg:  "lintest/errtaxonomy/classify",
			ClassifierFunc: "Classify",
			EnumTypes:      []string{"lintest/errtaxonomy/classify.Kind"},
		},
		&ErrTaxonomy{
			Transports:     []string{"lintest/errtaxclean/transport"},
			ClassifierPkg:  "lintest/errtaxclean/classify",
			ClassifierFunc: "Classify",
			EnumTypes:      []string{"lintest/errtaxclean/classify.Kind"},
		},
		&LockNet{},
		&ConnClose{},
		&GoroutineLife{Packages: []string{"lintest/goroutinelife"}},
		&DeadlineFlow{Packages: []string{"lintest/deadlineflow"}},
		&WireSym{
			Packages: []string{"lintest/wiresym"},
			RLPPkg:   "lintest/rlp",
		},
		&FrozenPublish{Packages: []string{"lintest/frozenpublish"}},
		&SharedState{Packages: []string{"lintest/sharedstate"}},
		&BoundedChan{Packages: []string{"lintest/boundedchan"}},
		&WireTaint{
			SourcePackages:  []string{"lintest/wiretaint/codec"},
			ReportPackages:  []string{"lintest/wiretaint"},
			EntropyPackages: []string{"lintest/wiretaint/entropy"},
		},
	}
}

// wantSpec is one expectation parsed from a // want or // wantnext
// comment: a finding on the given line whose "analyzer: message"
// rendering matches the regexp.
type wantSpec struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantToken = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses // want "re" ... (same line) and // wantnext
// "re" ... (following line) annotations out of the loaded packages.
func collectWants(t *testing.T, pkgs []*Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					offset := 0
					switch {
					case strings.HasPrefix(text, "wantnext "):
						offset = 1
						text = strings.TrimPrefix(text, "wantnext ")
					case strings.HasPrefix(text, "want "):
						text = strings.TrimPrefix(text, "want ")
					default:
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					quoted := wantToken.FindAllString(text, -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					for _, q := range quoted {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line + offset, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}

// TestGolden runs every analyzer over the lintest universe and checks
// the findings against the // want annotations: every finding must be
// expected, every expectation must fire, and the clean twin packages
// must stay silent (any stray finding there is unexpected by
// construction).
func TestGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, "lintest")
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading lintest universe: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected the full lintest universe, loaded only %d packages", len(pkgs))
	}

	findings := Run(l, pkgs, testAnalyzers())
	wants := collectWants(t, pkgs)

	perAnalyzer := make(map[string]int)
	for _, f := range findings {
		perAnalyzer[f.Analyzer]++
		rendered := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(rendered) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q never reported", w.file, w.line, w.raw)
		}
	}

	// Each analyzer must demonstrate at least two findings in its bad
	// package; the suppression machinery ("lint") must demonstrate its
	// three malformed-directive shapes.
	for name, minimum := range map[string]int{
		"boundedalloc":  2,
		"wallclock":     2,
		"errtaxonomy":   2,
		"locknet":       2,
		"connclose":     2,
		"goroutinelife": 3,
		"deadlineflow":  3,
		"wiresym":       6,
		"lint":          5,
		"frozenpublish": 3,
		"sharedstate":   3,
		"boundedchan":   3,
		"wiretaint":     9,
	} {
		if perAnalyzer[name] < minimum {
			t.Errorf("analyzer %s reported %d findings in the golden universe, want at least %d",
				name, perAnalyzer[name], minimum)
		}
	}

	// No finding may escape a clean twin.
	for _, f := range findings {
		if strings.Contains(f.Pos.Filename, string(filepath.Separator)+"clean"+string(filepath.Separator)) ||
			strings.Contains(f.Pos.Filename, "errtaxclean") {
			t.Errorf("clean twin is not silent: %s", f)
		}
	}
}
