package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/ir"
)

// WireSym verifies encode/decode symmetry for the RLP wire messages:
// a message type the module can put on the wire must also be readable
// back, with a matching shape and with its input bounded. Asymmetry
// here is a silent census-corruption bug — the peer answers, we
// mis-parse, the record looks like a protocol error and the node
// disappears from the measurement.
//
// Four rules, over the configured message-defining packages:
//
//  1. Custom codec pairing: a type declaring EncodeRLP must declare
//     DecodeRLP and vice versa (a one-sided custom codec means the
//     generic reflection path silently handles the other direction
//     with a different wire shape).
//  2. Round-trip existence: every named struct type from a configured
//     package that flows into rlp.EncodeToBytes/rlp.Encode somewhere
//     in the module must also flow into rlp.DecodeBytes /
//     rlp.Decode / Stream.Decode somewhere. `any`-typed encode
//     helpers (discv4's EncodePacket) are resolved through reaching
//     definitions and call-site argument types.
//  3. Shape symmetry per message code: when one function references a
//     message-code constant (…Msg / …Packet) and encodes type T, and
//     another references the same constant and decodes, some decoded
//     type must match T's field shape (count, order, kinds). Extra
//     decode fallbacks (DecodeDisconnect's bare-uint form) are
//     allowed.
//  4. Bounded decode input: a decode site in a configured package
//     must be size-guarded — a len() check on the payload earlier in
//     the function, or an rlp.NewStream with a non-zero input limit.
//     *rlp.Stream parameters are exempt (the stream carries its
//     creator's limit).
type WireSym struct {
	// Packages are the message-defining packages whose types and
	// consts are checked. Encode/decode site collection spans the
	// whole module.
	Packages []string
	// RLPPkg is the import path of the rlp codec package.
	RLPPkg string
}

// Name implements Analyzer.
func (w *WireSym) Name() string { return "wiresym" }

// Doc implements Analyzer.
func (w *WireSym) Doc() string {
	return "every RLP-encoded message type needs a bounded, shape-matching decode counterpart"
}

// wsSite is one resolved encode or decode of a concrete type. fn is
// the function where the concrete type was known (a caller, when an
// `any`-typed helper parameter was chased) — that is what message-code
// pairing keys on; host is the function physically containing the
// codec call — that is what the bounds check scans.
type wsSite struct {
	fn   *ir.Func
	host *ir.Func
	typ  types.Type
	pos  token.Pos
	call *ast.CallExpr
}

type wsChecker struct {
	prog     *ir.Program
	rlpPkg   string
	packages []string
	encodes  []wsSite
	decodes  []wsSite
	defuse   map[*ir.Func]*ir.DefUse
}

// Run implements Analyzer.
func (w *WireSym) Run(l *Loader, pkgs []*Package) []Finding {
	wc := &wsChecker{
		prog:     l.Program(pkgs),
		rlpPkg:   w.RLPPkg,
		packages: w.Packages,
		defuse:   make(map[*ir.Func]*ir.DefUse),
	}
	var findings []Finding
	findings = append(findings, w.checkCodecPairing(pkgs)...)
	wc.collectSites()
	findings = append(findings, wc.checkRoundTrip(w.Name())...)
	findings = append(findings, wc.checkShapes(w.Name(), pkgs)...)
	findings = append(findings, wc.checkBounds(w.Name())...)
	return findings
}

// checkCodecPairing enforces rule 1 on every named type declared in
// the configured packages.
func (w *WireSym) checkCodecPairing(pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if !matchesAny(pkg.Path, w.Packages) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			hasEnc := lookupMethod(types.NewPointer(named), "EncodeRLP")
			hasDec := lookupMethod(types.NewPointer(named), "DecodeRLP")
			if hasEnc == hasDec {
				continue
			}
			missing, present := "DecodeRLP", "EncodeRLP"
			if hasDec {
				missing, present = "EncodeRLP", "DecodeRLP"
			}
			findings = append(findings, Finding{
				Pos:      pkg.Fset.Position(tn.Pos()),
				Analyzer: w.Name(),
				Message: fmt.Sprintf("type %s declares %s but not %s: a one-sided custom codec desynchronizes the wire shape from the reflection path",
					name, present, missing),
			})
		}
	}
	return findings
}

func (wc *wsChecker) defUseOf(f *ir.Func) *ir.DefUse {
	if du, ok := wc.defuse[f]; ok {
		return du
	}
	du := ir.BuildDefUse(f)
	wc.defuse[f] = du
	return du
}

// collectSites finds every rlp encode/decode call in the module and
// resolves the concrete type(s) of the value argument.
func (wc *wsChecker) collectSites() {
	for _, f := range wc.prog.Funcs {
		for _, cs := range f.Calls {
			call := cs.Call
			enc, dec, argIdx := wc.classifyRLPCall(f, call)
			if !enc && !dec {
				continue
			}
			if argIdx >= len(call.Args) {
				continue
			}
			sites := wc.resolveConcrete(f, call.Args[argIdx], call, 0)
			for i := range sites {
				sites[i].host = f
			}
			if enc {
				wc.encodes = append(wc.encodes, sites...)
			} else {
				wc.decodes = append(wc.decodes, sites...)
			}
		}
	}
}

// classifyRLPCall recognizes the codec entry points and returns which
// argument carries the value.
func (wc *wsChecker) classifyRLPCall(f *ir.Func, call *ast.CallExpr) (enc, dec bool, argIdx int) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, false, 0
	}
	obj := ir.CalleeOf(f.Pkg, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != wc.rlpPkg {
		return false, false, 0
	}
	switch sel.Sel.Name {
	case "EncodeToBytes", "OracleEncodeToBytes":
		return true, false, 0
	case "EncodeAppend":
		// rlp.EncodeAppend(dst, v): the value rides in the second
		// argument, after the destination buffer.
		return true, false, 1
	case "Encode":
		// rlp.Encode(w, v); Stream has no Encode method so package
		// function is the only shape.
		return true, false, 1
	case "DecodeBytes", "DecodeFirst", "OracleDecodeBytes":
		return false, true, 1
	case "Decode":
		if fn.Type().(*types.Signature).Recv() != nil {
			return false, true, 0 // (*Stream).Decode(v)
		}
		return false, true, 1 // rlp.Decode(r, v)
	}
	return false, false, 0
}

// resolveConcrete maps a value expression to concrete type sites. For
// interface-typed expressions it chases reaching definitions and, for
// parameters, caller argument types — so discv4's
// EncodePacket(priv, pkt any) attributes Ping/Pong/… to the callers
// that pass them.
func (wc *wsChecker) resolveConcrete(f *ir.Func, e ast.Expr, call *ast.CallExpr, depth int) []wsSite {
	if depth > 6 {
		return nil
	}
	e = unparen(e)
	t := f.Pkg.Info.TypeOf(e)
	if t != nil {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return []wsSite{{fn: f, typ: deref(t), pos: e.Pos(), call: call}}
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := f.Pkg.Info.Uses[e]
		if obj == nil {
			return nil
		}
		if idx, isRecv, ok := paramIndex(f, obj); ok && !isRecv {
			// Chase every module caller's argument at this position.
			var sites []wsSite
			for _, cs := range wc.prog.Callers[f] {
				if idx < len(cs.Call.Args) {
					sites = append(sites, wc.resolveConcrete(cs.Caller, cs.Call.Args[idx], cs.Call, depth+1)...)
				}
			}
			return sites
		}
		// Local: every definition's RHS.
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		var sites []wsSite
		for _, rhs := range wc.defUseOf(f).AllRHS(v) {
			if rhs == nil || rhs == e {
				continue
			}
			sites = append(sites, wc.resolveConcrete(f, rhs, call, depth+1)...)
		}
		return sites
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return wc.resolveConcrete(f, e.X, call, depth+1)
		}
	case *ast.CallExpr:
		// new(T) is the decode idiom; resolve to T.
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			if t := f.Pkg.Info.TypeOf(e.Args[0]); t != nil {
				return []wsSite{{fn: f, typ: deref(t), pos: e.Pos(), call: call}}
			}
		}
	}
	return nil
}

func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedStructIn returns the named struct type when t is one defined
// in a configured package.
func (wc *wsChecker) namedStructIn(t types.Type) *types.Named {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !matchesAny(obj.Pkg().Path(), wc.packages) {
		return nil
	}
	return named
}

// checkRoundTrip enforces rule 2: encoded message types must be
// decodable somewhere in the module.
func (wc *wsChecker) checkRoundTrip(analyzer string) []Finding {
	decoded := make(map[*types.TypeName]bool)
	for _, site := range wc.decodes {
		if named := wc.namedStructIn(site.typ); named != nil {
			decoded[named.Obj()] = true
		}
	}
	reported := make(map[*types.TypeName]bool)
	var findings []Finding
	for _, site := range wc.encodes {
		named := wc.namedStructIn(site.typ)
		if named == nil || decoded[named.Obj()] || reported[named.Obj()] {
			continue
		}
		reported[named.Obj()] = true
		findings = append(findings, Finding{
			Pos:      site.fn.Position(site.pos),
			Analyzer: analyzer,
			Message: fmt.Sprintf("message type %s is RLP-encoded here but nothing in the module decodes it: the wire format has no reader, so round-trip symmetry is unverifiable",
				named.Obj().Name()),
		})
	}
	return findings
}

// checkShapes enforces rule 3 via message-code constants.
func (wc *wsChecker) checkShapes(analyzer string, pkgs []*Package) []Finding {
	consts := wc.messageConsts(pkgs)
	if len(consts) == 0 {
		return nil
	}
	// Which functions reference which message consts.
	refs := make(map[*ir.Func]map[types.Object]bool)
	for _, f := range wc.prog.Funcs {
		for _, file := range []*ast.BlockStmt{f.Body} {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := f.Pkg.Info.Uses[id]
				if obj == nil || !consts[obj] {
					return true
				}
				if refs[f] == nil {
					refs[f] = make(map[types.Object]bool)
				}
				refs[f][obj] = true
				return true
			})
		}
	}
	encBy := make(map[types.Object][]wsSite)
	decBy := make(map[types.Object][]wsSite)
	for _, site := range wc.encodes {
		for c := range refs[site.fn] {
			encBy[c] = append(encBy[c], site)
		}
	}
	for _, site := range wc.decodes {
		for c := range refs[site.fn] {
			decBy[c] = append(decBy[c], site)
		}
	}

	var findings []Finding
	var constObjs []types.Object
	for c := range encBy {
		constObjs = append(constObjs, c)
	}
	sort.Slice(constObjs, func(i, j int) bool { return constObjs[i].Name() < constObjs[j].Name() })
	for _, c := range constObjs {
		encs, decs := encBy[c], decBy[c]
		if len(decs) == 0 {
			continue // existence is rule 2's job; a const may be send-only here
		}
		for _, enc := range encs {
			named := wc.namedStructIn(enc.typ)
			if named == nil {
				continue
			}
			matched := false
			for _, dec := range decs {
				if shapeCompatible(named, deref(dec.typ)) {
					matched = true
					break
				}
			}
			if !matched {
				findings = append(findings, Finding{
					Pos:      enc.fn.Position(enc.pos),
					Analyzer: analyzer,
					Message: fmt.Sprintf("message code %s: encoder writes %s but no decoder under the same code matches its field shape (count/order/kinds)",
						c.Name(), named.Obj().Name()),
				})
			}
		}
	}
	return findings
}

// messageConsts gathers integer constants named …Msg or …Packet from
// the configured packages.
func (wc *wsChecker) messageConsts(pkgs []*Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, pkg := range pkgs {
		if !matchesAny(pkg.Path, wc.packages) {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			cn, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			if !strings.HasSuffix(name, "Msg") && !strings.HasSuffix(name, "Packet") {
				continue
			}
			if cn.Val().Kind() != constant.Int {
				continue
			}
			out[cn] = true
		}
	}
	return out
}

// shapeCompatible compares an encoded struct against a decoded type:
// identical named types match; otherwise the exported field sequences
// must agree in count, order, and kind.
func shapeCompatible(enc *types.Named, dec types.Type) bool {
	if decNamed, ok := dec.(*types.Named); ok && decNamed.Obj() == enc.Obj() {
		return true
	}
	decStruct, ok := dec.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	encStruct := enc.Underlying().(*types.Struct)
	encFields := wireFields(encStruct)
	decFields := wireFields(decStruct)
	if len(encFields) != len(decFields) {
		return false
	}
	for i := range encFields {
		if wireKind(encFields[i].Type()) != wireKind(decFields[i].Type()) {
			return false
		}
	}
	return true
}

// wireFields lists the exported fields, which is what the rlp codec
// serializes, in declaration order.
func wireFields(s *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < s.NumFields(); i++ {
		if f := s.Field(i); f.Exported() {
			out = append(out, f)
		}
	}
	return out
}

// wireKind buckets a field type by its RLP wire form.
func wireKind(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsBoolean != 0:
			return "uint" // bools encode as 0/1
		case info&types.IsInteger != 0:
			return "uint"
		case info&types.IsString != 0:
			return "bytes"
		}
		return "other"
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return "bytes"
		}
		return "list"
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return "bytes"
		}
		return "list"
	case *types.Struct:
		return "list"
	case *types.Pointer:
		return wireKind(u.Elem())
	}
	return "other"
}

// checkBounds enforces rule 4 on decode sites in configured packages.
func (wc *wsChecker) checkBounds(analyzer string) []Finding {
	var findings []Finding
	seen := make(map[*ast.CallExpr]bool)
	for _, site := range wc.decodes {
		if !matchesAny(site.host.Pkg.Path, wc.packages) || seen[site.call] {
			continue
		}
		seen[site.call] = true
		f := site.host
		sel, ok := unparen(site.call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		obj := ir.CalleeOf(f.Pkg, site.call)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		switch fn.Name() {
		case "DecodeBytes", "DecodeFirst", "OracleDecodeBytes":
			buf := unparen(site.call.Args[0])
			if !lenGuardBefore(f, buf, site.call.Pos()) {
				findings = append(findings, Finding{
					Pos:      f.Position(site.call.Pos()),
					Analyzer: analyzer,
					Message:  fmt.Sprintf("rlp.%s on a payload with no earlier len() bound: a hostile peer sizes this allocation — check the payload length against the message's cap first", fn.Name()),
				})
			}
		case "Decode":
			if fn.Type().(*types.Signature).Recv() != nil {
				// (*Stream).Decode: the stream must carry a limit.
				if !wc.streamLimited(f, sel.X) {
					findings = append(findings, Finding{
						Pos:      f.Position(site.call.Pos()),
						Analyzer: analyzer,
						Message:  "Stream.Decode on a stream with no input limit: construct it with rlp.NewStream(r, limit) sized from the message cap",
					})
				}
			} else {
				findings = append(findings, Finding{
					Pos:      f.Position(site.call.Pos()),
					Analyzer: analyzer,
					Message:  "rlp.Decode reads an unbounded io.Reader: use DecodeBytes after a size check, or NewStream with an input limit",
				})
			}
		}
	}
	return findings
}

// lenGuardBefore reports whether f contains, before pos, a len(x)
// call on the same object as buf inside a comparison (the size-guard
// idiom `if len(payload) > MaxSize { return ... }`).
func lenGuardBefore(f *ir.Func, buf ast.Expr, pos token.Pos) bool {
	bufObj := exprObject(f, buf)
	guarded := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if guarded || n == nil || n.Pos() >= pos {
			return !guarded
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			call, ok := unparen(side).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" {
				continue
			}
			if bufObj != nil && exprObject(f, call.Args[0]) == bufObj {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// exprObject resolves an expression to the object it names, when it
// is a plain identifier (possibly sliced: buf[a:b] guards len(buf)).
func exprObject(f *ir.Func, e ast.Expr) types.Object {
	e = unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		e = unparen(sl.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := f.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return f.Pkg.Info.Defs[id]
}

// streamLimited: the Stream expression is a *rlp.Stream parameter
// (limit set by the creator), or a local built by rlp.NewStream with
// a non-zero limit argument.
func (wc *wsChecker) streamLimited(f *ir.Func, stream ast.Expr) bool {
	stream = unparen(stream)
	id, ok := stream.(*ast.Ident)
	if !ok {
		return true // field/complex expression: conservatively trust it
	}
	obj := f.Pkg.Info.Uses[id]
	if obj == nil {
		return true
	}
	if _, _, isParam := paramIndex(f, obj); isParam {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	rhss := wc.defUseOf(f).AllRHS(v)
	for _, rhs := range rhss {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if calleeName(call) != "NewStream" || len(call.Args) < 2 {
			continue
		}
		limit := unparen(call.Args[1])
		if lit, ok := limit.(*ast.BasicLit); ok && lit.Value == "0" {
			return false
		}
		if tv, ok := f.Pkg.Info.Types[limit]; ok && tv.Value != nil {
			if v, exact := constant.Uint64Val(tv.Value); exact && v == 0 {
				return false
			}
		}
		return true
	}
	return true
}
