package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/ir"
)

// FrozenPublish enforces the census Snapshot contract on every
// publish point in the module: once a value is made visible to other
// goroutines — stored into an atomic.Pointer/atomic.Value or sent on
// a channel — no field, slice element, or map entry reachable from it
// may be written again by the publisher. Readers of a published
// snapshot take no lock; the only thing making that sound is that the
// object graph behind the pointer never changes. Until now that was a
// convention; this analyzer makes it a compile-time invariant.
//
// The check runs per publishing function on the ir.Escape alias
// analysis:
//
//  1. Find publish sites: atomic Store calls, channel sends of
//     reference values, and calls into module functions that
//     transitively publish a parameter (SummaryCache-memoized).
//  2. Take the may-alias class of the published roots.
//  3. Walk every statement CFG-reachable after the publish (loops
//     count: a Store inside a loop freezes the value for the next
//     iteration too) and flag writes through any alias: field/index
//     assignments, ++/--, delete/clear/copy/append, and calls into
//     module functions whose summary says they mutate that argument
//     or receiver.
//
// Rebinding the variable to a fresh object (snap = build()) kills the
// freeze along paths the rebind dominates — the standard
// publish-in-a-loop shape stays clean. So does copying before
// publishing (c := *p): value copies never join the alias class.
type FrozenPublish struct {
	// Packages restricts where publish sites are sought; empty means
	// every module package. Callee traversal always crosses the whole
	// module.
	Packages []string
}

// Name implements Analyzer.
func (fp *FrozenPublish) Name() string { return "frozenpublish" }

// Doc implements Analyzer.
func (fp *FrozenPublish) Doc() string {
	return "no writes reachable from a value after it is published via atomic Store or channel send"
}

// Run implements Analyzer.
func (fp *FrozenPublish) Run(l *Loader, pkgs []*Package) []Finding {
	prog := l.Program(pkgs)
	c := &frozenChecker{
		prog: prog,
		escs: make(map[*ir.Func]*ir.Escape),
		doms: make(map[*ir.Func][]*ir.BitSet),
		sums: ir.NewSummaryCache(),
	}
	var findings []Finding
	for _, f := range prog.Funcs {
		if len(fp.Packages) > 0 && !matchesAny(f.Pkg.Path, fp.Packages) {
			continue
		}
		findings = append(findings, c.checkFunc(fp.Name(), f)...)
	}
	return findings
}

type frozenChecker struct {
	prog *ir.Program
	escs map[*ir.Func]*ir.Escape
	doms map[*ir.Func][]*ir.BitSet
	sums *ir.SummaryCache
}

func (c *frozenChecker) escapeOf(f *ir.Func) *ir.Escape {
	e, ok := c.escs[f]
	if !ok {
		e = ir.BuildEscape(f)
		c.escs[f] = e
	}
	return e
}

func (c *frozenChecker) domOf(f *ir.Func) []*ir.BitSet {
	d, ok := c.doms[f]
	if !ok {
		d = ir.Dominators(f)
		c.doms[f] = d
	}
	return d
}

// stmtAt pins a block-resident statement to its CFG coordinates.
type stmtAt struct {
	s   ast.Stmt
	b   *ir.Block
	idx int
}

// pubSite is one point where an alias class becomes visible to other
// goroutines.
type pubSite struct {
	at    stmtAt
	pos   token.Pos
	what  string
	roots []*types.Var
}

func (c *frozenChecker) checkFunc(analyzer string, f *ir.Func) []Finding {
	pubs := c.publishSites(f)
	if len(pubs) == 0 {
		return nil
	}
	esc := c.escapeOf(f)
	dom := c.domOf(f)
	var findings []Finding
	for _, pub := range pubs {
		class := make(map[*types.Var]bool)
		for _, r := range pub.roots {
			for _, v := range esc.AliasVars(r) {
				class[v] = true
			}
		}
		after := afterStmts(f, pub.at.b, pub.at.idx)
		rebinds := collectRebinds(f, after, class)
		pubLine := f.Position(pub.pos).Line
		for _, at := range after {
			for _, hit := range c.writeHits(f, at.s, class) {
				if killedByRebind(dom, rebinds, hit.root, at) {
					continue
				}
				findings = append(findings, Finding{
					Pos:      f.Position(hit.pos),
					Analyzer: analyzer,
					Message: fmt.Sprintf("%s after %s published it (line %d): published values are frozen; copy, then publish",
						hit.desc, pub.what, pubLine),
				})
			}
		}
	}
	return findings
}

// publishSites scans f's simple block-resident statements for atomic
// Stores, reference-valued channel sends, and calls that transitively
// publish an argument.
func (c *frozenChecker) publishSites(f *ir.Func) []pubSite {
	esc := c.escapeOf(f)
	pkg := f.Pkg
	var pubs []pubSite
	for _, b := range f.Blocks {
		for idx, s := range b.Nodes {
			if !simpleStmt(s) {
				continue
			}
			at := stmtAt{s: s, b: b, idx: idx}
			if send, ok := s.(*ast.SendStmt); ok {
				if roots := esc.ValueRoots(send.Value); len(roots) > 0 {
					pubs = append(pubs, pubSite{
						at:    at,
						pos:   send.Pos(),
						what:  fmt.Sprintf("the send on %s", types.ExprString(send.Chan)),
						roots: roots,
					})
				}
				continue
			}
			inspectShallow(s, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if arg := ir.AtomicStoreArg(pkg, call); arg != nil {
					if roots := esc.ValueRoots(arg); len(roots) > 0 {
						recv := "?"
						if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
							recv = types.ExprString(sel.X)
						}
						pubs = append(pubs, pubSite{
							at:    at,
							pos:   call.Pos(),
							what:  fmt.Sprintf("the atomic Store on %s", recv),
							roots: roots,
						})
					}
					return
				}
				// A module callee that publishes its parameter makes the
				// call site a publish site for the matching argument.
				callee := c.moduleCallee(pkg, call)
				if callee == nil {
					return
				}
				for argIdx, arg := range call.Args {
					roots := esc.ValueRoots(arg)
					if len(roots) == 0 {
						continue
					}
					pv := paramAt(callee, argIdx)
					if pv == nil || !c.publishesParam(callee, pv) {
						continue
					}
					pubs = append(pubs, pubSite{
						at:    at,
						pos:   call.Pos(),
						what:  fmt.Sprintf("the publishing call to %s", callee.Name),
						roots: roots,
					})
				}
			})
		}
	}
	return pubs
}

// publishesParam reports whether callee (transitively) publishes the
// object its parameter pv points to — stores it atomically, sends it,
// or passes it onward to a function that does.
func (c *frozenChecker) publishesParam(callee *ir.Func, pv *types.Var) bool {
	kind := fmt.Sprintf("frozenpublish.pub.%d", pv.Pos())
	return c.sums.Memo(callee, kind, false, func() bool {
		esc := c.escapeOf(callee)
		pkg := callee.Pkg
		class := make(map[*types.Var]bool)
		for _, v := range esc.AliasVars(pv) {
			class[v] = true
		}
		inClass := func(roots []*types.Var) bool {
			for _, r := range roots {
				if class[r] {
					return true
				}
			}
			return false
		}
		for _, b := range callee.Blocks {
			for _, s := range b.Nodes {
				if !simpleStmt(s) {
					continue
				}
				if send, ok := s.(*ast.SendStmt); ok {
					if inClass(esc.ValueRoots(send.Value)) {
						return true
					}
					continue
				}
				found := false
				inspectShallow(s, func(n ast.Node) {
					call, ok := n.(*ast.CallExpr)
					if !ok || found {
						return
					}
					if arg := ir.AtomicStoreArg(pkg, call); arg != nil {
						if inClass(esc.ValueRoots(arg)) {
							found = true
						}
						return
					}
					sub := c.moduleCallee(pkg, call)
					if sub == nil {
						return
					}
					for argIdx, arg := range call.Args {
						if !inClass(esc.ValueRoots(arg)) {
							continue
						}
						if spv := paramAt(sub, argIdx); spv != nil && c.publishesParam(sub, spv) {
							found = true
						}
					}
				})
				if found {
					return true
				}
			}
		}
		return false
	})
}

// writeHit is one statement mutating a frozen alias class.
type writeHit struct {
	pos  token.Pos
	root *types.Var
	desc string
}

// writeHits reports the mutations of any variable in class performed
// by one simple statement: writes through a field/index/deref chain,
// ++/--, mutating builtins, and calls whose interprocedural summary
// mutates the matching parameter or receiver.
func (c *frozenChecker) writeHits(f *ir.Func, s ast.Stmt, class map[*types.Var]bool) []writeHit {
	if !simpleStmt(s) {
		return nil
	}
	pkg := f.Pkg
	var hits []writeHit
	chainHit := func(expr ast.Expr, desc string) {
		base := unparen(expr)
		switch base.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if root := ir.RootVar(pkg, base); root != nil && class[root] {
				hits = append(hits, writeHit{pos: expr.Pos(), root: root, desc: fmt.Sprintf(desc, types.ExprString(expr))})
			}
		}
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			chainHit(lhs, "write to %s")
		}
	case *ast.IncDecStmt:
		chainHit(s.X, "write to %s")
	}
	inspectShallow(s, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
				switch b.Name() {
				case "delete", "clear", "copy", "append":
					if len(call.Args) == 0 {
						return
					}
					if root := ir.RootVar(pkg, call.Args[0]); root != nil && class[root] {
						hits = append(hits, writeHit{
							pos:  call.Pos(),
							root: root,
							desc: fmt.Sprintf("builtin %s mutates %s", b.Name(), types.ExprString(call.Args[0])),
						})
					}
				}
				return
			}
		}
		callee := c.moduleCallee(pkg, call)
		if callee == nil {
			return
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := ir.RootVar(pkg, sel.X); root != nil && class[root] {
				if rv := ir.RecvVar(callee); rv != nil && c.mutatesParam(callee, rv) {
					hits = append(hits, writeHit{
						pos:  call.Pos(),
						root: root,
						desc: fmt.Sprintf("call to %s mutates %s", callee.Name, types.ExprString(sel.X)),
					})
				}
			}
		}
		for argIdx, arg := range call.Args {
			root := ir.RootVar(pkg, arg)
			if root == nil || !class[root] {
				continue
			}
			if pv := paramAt(callee, argIdx); pv != nil && c.mutatesParam(callee, pv) {
				hits = append(hits, writeHit{
					pos:  call.Pos(),
					root: root,
					desc: fmt.Sprintf("call to %s mutates %s", callee.Name, types.ExprString(arg)),
				})
			}
		}
	})
	return hits
}

// mutatesParam reports whether callee (transitively) writes through
// the object graph reachable from pv.
func (c *frozenChecker) mutatesParam(callee *ir.Func, pv *types.Var) bool {
	kind := fmt.Sprintf("frozenpublish.mut.%d", pv.Pos())
	return c.sums.Memo(callee, kind, false, func() bool {
		esc := c.escapeOf(callee)
		class := make(map[*types.Var]bool)
		for _, v := range esc.AliasVars(pv) {
			class[v] = true
		}
		for _, b := range callee.Blocks {
			for _, s := range b.Nodes {
				if len(c.writeHits(callee, s, class)) > 0 {
					return true
				}
			}
		}
		return false
	})
}

// moduleCallee resolves call to a module-local function with a body.
func (c *frozenChecker) moduleCallee(pkg *ir.SourcePackage, call *ast.CallExpr) *ir.Func {
	obj := ir.CalleeOf(pkg, call)
	if obj == nil {
		return nil
	}
	return c.prog.FuncOf[obj]
}

// paramAt maps a call-site argument index onto callee's parameter
// variable, folding variadic overflow onto the last parameter.
func paramAt(callee *ir.Func, argIdx int) *types.Var {
	params := ir.ParamVars(callee)
	if len(params) == 0 {
		return nil
	}
	if argIdx >= len(params) {
		argIdx = len(params) - 1
	}
	return params[argIdx]
}

// simpleStmt reports whether s is a non-compound statement: compound
// forms (if/for/switch/select/...) appear in the CFG both as header
// nodes and as their lowered body statements, so publish/write
// scanning sticks to the simple forms to visit each operation exactly
// once. Go conditions are expressions, so no mutation hides in a
// header.
func simpleStmt(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		return false
	}
	return true
}

// reachableBlocks returns every block reachable from b by one or more
// CFG edges (b itself is included exactly when it sits in a cycle).
func reachableBlocks(b *ir.Block) map[*ir.Block]bool {
	seen := make(map[*ir.Block]bool)
	stack := append([]*ir.Block(nil), b.Succs...)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// afterStmts lists every block-resident statement that can execute
// after position (b, idx): the rest of b, all of b again when b is in
// a cycle, and every statement of every reachable block, in
// deterministic block order.
func afterStmts(f *ir.Func, b *ir.Block, idx int) []stmtAt {
	reach := reachableBlocks(b)
	var out []stmtAt
	if reach[b] {
		for i, s := range b.Nodes {
			out = append(out, stmtAt{s: s, b: b, idx: i})
		}
	} else {
		for i := idx + 1; i < len(b.Nodes); i++ {
			out = append(out, stmtAt{s: b.Nodes[i], b: b, idx: i})
		}
	}
	for _, blk := range f.Blocks {
		if blk == b || !reach[blk] {
			continue
		}
		for i, s := range blk.Nodes {
			out = append(out, stmtAt{s: s, b: blk, idx: i})
		}
	}
	return out
}

// rebind is a plain-identifier assignment giving a class variable a
// fresh value.
type rebind struct {
	at stmtAt
	v  *types.Var
}

// collectRebinds finds the post-publish statements that rebind a
// class variable wholesale (x = ... / x := ...), which un-freezes
// that variable along dominated paths.
func collectRebinds(f *ir.Func, after []stmtAt, class map[*types.Var]bool) []rebind {
	pkg := f.Pkg
	var out []rebind
	for _, at := range after {
		as, ok := at.s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var v *types.Var
			if dv, ok := pkg.Info.Defs[id].(*types.Var); ok {
				v = dv
			} else if uv, ok := pkg.Info.Uses[id].(*types.Var); ok {
				v = uv
			}
			if v != nil && class[v] {
				out = append(out, rebind{at: at, v: v})
			}
		}
	}
	return out
}

// killedByRebind reports whether a rebind of hit's root variable
// dominates the write at `at`, i.e. the write provably targets the
// fresh object, not the published one.
func killedByRebind(dom []*ir.BitSet, rebinds []rebind, root *types.Var, at stmtAt) bool {
	for _, r := range rebinds {
		if r.v != root {
			continue
		}
		if r.at.b == at.b {
			if r.at.idx < at.idx {
				return true
			}
			continue
		}
		if ir.Dominates(dom, r.at.b, at.b) {
			return true
		}
	}
	return false
}
