package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ErrTaxonomy enforces the failure-taxonomy contract: the census
// (Tables 1–6) buckets every connection outcome through a single
// classifier, so (a) every sentinel error a transport package can
// surface must be reachable from that classifier's switch — otherwise
// a new failure mode silently lands in the catch-all bucket — and (b)
// enum-style switches over the taxonomy's types must be exhaustive,
// so adding a connection type or outcome class cannot leave a
// consumer silently dropping records.
type ErrTaxonomy struct {
	// Transports are the import paths whose exported Err* sentinels
	// must be classifiable.
	Transports []string
	// ClassifierPkg/ClassifierFunc name the classifier, e.g.
	// repro/internal/nodefinder's OutcomeClass.
	ClassifierPkg  string
	ClassifierFunc string
	// EnumTypes are fully qualified string/integer enum types
	// ("pkgpath.TypeName") whose switches must cover every declared
	// constant or carry a default.
	EnumTypes []string
}

// Name implements Analyzer.
func (e *ErrTaxonomy) Name() string { return "errtaxonomy" }

// Doc implements Analyzer.
func (e *ErrTaxonomy) Doc() string {
	return "transport sentinels must be classifiable and taxonomy switches exhaustive"
}

// Run implements Analyzer.
func (e *ErrTaxonomy) Run(l *Loader, pkgs []*Package) []Finding {
	var findings []Finding
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}

	classifier := byPath[e.ClassifierPkg]
	var classifierObj types.Object
	var classifierBody *ast.BlockStmt
	if classifier != nil {
		classifierObj = classifier.Types.Scope().Lookup(e.ClassifierFunc)
		classifierBody = findFuncBody(classifier, e.ClassifierFunc)
	}
	if classifierObj == nil || classifierBody == nil {
		if len(e.Transports) > 0 {
			findings = append(findings, Finding{
				Pos:      token.Position{Filename: e.ClassifierPkg},
				Analyzer: e.Name(),
				Message:  fmt.Sprintf("classifier %s.%s not found", e.ClassifierPkg, e.ClassifierFunc),
			})
		}
		return findings
	}

	// Objects the classifier body references, and the string literals
	// it can return.
	used := make(map[types.Object]bool)
	ast.Inspect(classifierBody, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := classifier.Info.Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	returnedClasses := stringLiteralReturns(classifierBody)

	// (a) Sentinel reachability.
	for _, tp := range e.Transports {
		pkg := byPath[tp]
		if pkg == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || !v.Exported() || !strings.HasPrefix(name, "Err") || !isErrorType(v.Type()) {
				continue
			}
			if !used[obj] {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(v.Pos()),
					Analyzer: e.Name(),
					Message: fmt.Sprintf("sentinel %s.%s is not handled by %s.%s: every transport failure must map into the outcome taxonomy",
						pkg.Types.Name(), name, classifier.Types.Name(), e.ClassifierFunc),
				})
			}
		}
	}

	// Resolve enum types to their constant sets.
	type enum struct {
		typ    types.Type
		consts []types.Object
	}
	var enums []enum
	for _, qualified := range e.EnumTypes {
		i := strings.LastIndex(qualified, ".")
		if i < 0 {
			continue
		}
		pkg := byPath[qualified[:i]]
		if pkg == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup(qualified[i+1:])
		if obj == nil {
			continue
		}
		en := enum{typ: obj.Type()}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), en.typ) {
				en.consts = append(en.consts, c)
			}
		}
		if len(en.consts) > 0 {
			enums = append(enums, en)
		}
	}

	// (b) Switch exhaustiveness, module-wide.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tagTV, ok := pkg.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				for _, en := range enums {
					if !types.Identical(tagTV.Type, en.typ) {
						continue
					}
					covered, hasDefault := coveredCases(pkg, sw)
					if hasDefault {
						return true
					}
					var missing []string
					for _, c := range en.consts {
						if !covered[c.Name()] {
							missing = append(missing, c.Name())
						}
					}
					if len(missing) > 0 {
						sort.Strings(missing)
						findings = append(findings, Finding{
							Pos:      pkg.Fset.Position(sw.Pos()),
							Analyzer: e.Name(),
							Message: fmt.Sprintf("switch over %s is not exhaustive: missing %s (add the cases or a default)",
								typeShort(en.typ), strings.Join(missing, ", ")),
						})
					}
					return true
				}
				// Switches over the classifier's result must cover every
				// class string it can return (or carry a default).
				if call, ok := sw.Tag.(*ast.CallExpr); ok && len(returnedClasses) > 0 {
					if callee := calleeObject(pkg, call); callee == classifierObj {
						covered, hasDefault := coveredStringCases(pkg, sw)
						if hasDefault {
							return true
						}
						var missing []string
						for class := range returnedClasses {
							if !covered[class] {
								missing = append(missing, class)
							}
						}
						if len(missing) > 0 {
							sort.Strings(missing)
							findings = append(findings, Finding{
								Pos:      pkg.Fset.Position(sw.Pos()),
								Analyzer: e.Name(),
								Message: fmt.Sprintf("switch over %s(...) result misses classes %s (add them or a default)",
									e.ClassifierFunc, strings.Join(missing, ", ")),
							})
						}
					}
				}
				return true
			})
		}
	}
	return findings
}

// findFuncBody locates a top-level function's body by name.
func findFuncBody(pkg *Package, name string) *ast.BlockStmt {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn.Body
			}
		}
	}
	return nil
}

// stringLiteralReturns collects every string literal returned
// anywhere in body (the classifier returns its classes as literals).
// Returns inside nested function literals are ignored.
func stringLiteralReturns(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if lit, ok := res.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					out[s] = true
				}
			}
		}
		return true
	})
	return out
}

// coveredCases returns the named constants referenced by the switch's
// case expressions and whether a default clause exists.
func coveredCases(pkg *Package, sw *ast.SwitchStmt) (map[string]bool, bool) {
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			expr = unparen(expr)
			var id *ast.Ident
			switch v := expr.(type) {
			case *ast.Ident:
				id = v
			case *ast.SelectorExpr:
				id = v.Sel
			}
			if id != nil {
				if obj := pkg.Info.Uses[id]; obj != nil {
					covered[obj.Name()] = true
				}
			}
		}
	}
	return covered, hasDefault
}

// coveredStringCases returns the string-literal case values and
// whether a default clause exists.
func coveredStringCases(pkg *Package, sw *ast.SwitchStmt) (map[string]bool, bool) {
	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil {
				covered[strings.Trim(tv.Value.String(), `"`)] = true
			}
		}
	}
	return covered, hasDefault
}

// calleeObject resolves the object a call expression invokes, if it
// is a plain function or selector call.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fn]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fn.Sel]
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// typeShort renders a type without its full package path.
func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
