package ir

import (
	"go/ast"
	"go/types"
)

// Program is the whole-module IR: every function and literal's CFG
// plus the static call graph connecting them.
type Program struct {
	Pkgs  []*SourcePackage
	Funcs []*Func
	// FuncOf maps a declared function/method object to its Func.
	FuncOf map[types.Object]*Func
	// LitOf maps a function literal to its Func.
	LitOf map[*ast.FuncLit]*Func
	// Callers lists the resolved call sites targeting each Func.
	Callers map[*Func][]*CallSite
}

// BuildProgram constructs CFGs for every function declaration and
// literal in pkgs and links the static call graph. Packages must all
// share one token.FileSet.
func BuildProgram(pkgs []*SourcePackage) *Program {
	p := &Program{
		Pkgs:    pkgs,
		FuncOf:  make(map[types.Object]*Func),
		LitOf:   make(map[*ast.FuncLit]*Func),
		Callers: make(map[*Func][]*CallSite),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					obj := pkg.Info.Defs[fd.Name]
					f := BuildFunc(pkg, obj, fd, nil)
					p.Funcs = append(p.Funcs, f)
					if obj != nil {
						p.FuncOf[obj] = f
					}
				}
				// Literals can appear anywhere — including in var
				// initializers outside any FuncDecl — so walk the
				// whole declaration.
				ast.Inspect(decl, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						f := BuildFunc(pkg, nil, nil, lit)
						p.Funcs = append(p.Funcs, f)
						p.LitOf[lit] = f
					}
					return true
				})
			}
		}
	}
	// Resolve call sites now that every Func exists.
	for _, f := range p.Funcs {
		for _, cs := range f.Calls {
			cs.CalleeObj = CalleeOf(f.Pkg, cs.Call)
			if cs.CalleeObj != nil {
				cs.Callee = p.FuncOf[cs.CalleeObj]
			} else if lit, ok := unparenExpr(cs.Call.Fun).(*ast.FuncLit); ok {
				cs.Callee = p.LitOf[lit]
			}
			if cs.Callee != nil {
				p.Callers[cs.Callee] = append(p.Callers[cs.Callee], cs)
			}
		}
	}
	return p
}

// CalleeOf statically resolves a call expression's target object:
// plain function calls, method calls, qualified package calls, and
// method expressions. Dynamic calls through function values return
// nil.
func CalleeOf(pkg *SourcePackage, call *ast.CallExpr) types.Object {
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj() // method value/call
		}
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return obj // qualified pkg.Fn or method expression
		}
	}
	return nil
}

// ResolveSpawn resolves the function started by a go statement: a
// declared function/method, a named literal, or an inline literal.
// Returns the module-local Func when available (else nil) plus the
// callee object (nil for literals and dynamic values).
func (p *Program) ResolveSpawn(pkg *SourcePackage, g *ast.GoStmt) (*Func, types.Object) {
	call := g.Call
	if lit, ok := unparenExpr(call.Fun).(*ast.FuncLit); ok {
		return p.LitOf[lit], nil
	}
	obj := CalleeOf(pkg, call)
	if obj != nil {
		return p.FuncOf[obj], obj
	}
	return nil, nil
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
