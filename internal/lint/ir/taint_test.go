package ir

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// taintRecv is the unit-test source hook: any call to a function named
// recv returns peer-controlled data.
func taintRecv(pkg *SourcePackage, call *ast.CallExpr, callee types.Object) (string, bool, []int, bool) {
	if callee != nil && callee.Name() == "recv" {
		return "peer", true, nil, true
	}
	return "", false, nil, false
}

func wireEngine(prog *Program) *TaintAnalysis {
	return &TaintAnalysis{Prog: prog, Mode: ModeWire, SourceCall: taintRecv}
}

// sinksByFunc indexes resolved sinks by the short name of the function
// they were recorded in.
func sinksByFunc(sinks []TaintSink) map[string][]TaintSink {
	out := make(map[string][]TaintSink)
	for _, s := range sinks {
		name := s.Fn.Name
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		out[name] = append(out[name], s)
	}
	return out
}

// TestTaintSummaryMemoization pins the summary cache: a callee's facts
// are computed on demand while walking its caller, the cached pointer
// is returned on every later query, and a recursive cycle still
// converges to one cached summary per function.
func TestTaintSummaryMemoization(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func helper(n int) []int { return make([]int, n) }
func caller1() []int { return helper(1) }
func caller2() []int { return helper(2) }
func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}
func pong(n int) int { return ping(n) }`)
	a := wireEngine(prog)
	helper := funcByName(t, prog, "helper")

	a.Facts(funcByName(t, prog, "caller1"))
	cached, ok := a.facts[helper]
	if !ok || cached == nil {
		t.Fatal("walking caller1 must compute and cache helper's summary on demand")
	}
	if got := a.Facts(helper); got != cached {
		t.Error("Facts(helper) must return the pointer cached during caller1's walk")
	}
	a.Facts(funcByName(t, prog, "caller2"))
	if got := a.Facts(helper); got != cached {
		t.Error("a second caller must reuse helper's memoized summary, not recompute it")
	}
	if len(cached.Sinks) != 1 || cached.Sinks[0].Kind != SinkAlloc {
		t.Fatalf("helper summary must hold its one alloc sink, got %v", cached.Sinks)
	}
	if cached.Sinks[0].Val.Params != 1 {
		t.Errorf("helper's sink must carry the param-0 obligation, got mask %b", cached.Sinks[0].Val.Params)
	}

	ping := funcByName(t, prog, "ping")
	pong := funcByName(t, prog, "pong")
	ft1 := a.Facts(ping)
	if ft2 := a.Facts(ping); ft2 != ft1 {
		t.Error("recursive function must still memoize to a single summary")
	}
	if a.facts[pong] == nil {
		t.Error("the cycle partner must end up cached too")
	}
	if got := a.Facts(pong); got != a.facts[pong] {
		t.Error("Facts(pong) must return the cached cycle-partner summary")
	}
}

// TestTaintThroughAlias pins the MayAliasTight fallback: the walker's
// switch-clause states are discarded, so the only way taint survives
// `case: view = feed` is the flow-insensitive tight-alias class. A
// variable aliasing only bounded data must stay silent.
func TestTaintThroughAlias(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func recv() []int { return nil }
func classify(kind int) []int {
	feed := recv()
	var view []int
	switch kind {
	case 1:
		view = feed
	}
	return make([]int, view[0])
}
func classifyClean(kind int) []int {
	feed := recv()
	_ = feed
	local := []int{1, 2}
	var view2 []int
	switch kind {
	case 1:
		view2 = local
	}
	return make([]int, view2[0])
}`)
	byFn := sinksByFunc(wireEngine(prog).Run())
	got := byFn["classify"]
	if len(got) != 1 || got[0].Kind != SinkAlloc {
		t.Fatalf("classify must report exactly its alloc sink, got %v", got)
	}
	if got[0].Val.T != TaintWire || got[0].Val.Src != "peer" {
		t.Errorf("alias-recovered taint must be wire from the peer source, got %+v", got[0].Val)
	}
	if len(byFn["classifyClean"]) != 0 {
		t.Errorf("aliasing only bounded data must stay silent, got %v", byFn["classifyClean"])
	}
}

// TestTaintSanitizerDominance pins guard placement: an oversize check
// dominating the sink sanitizes, the same check after the sink does
// not, and a "bound" that is itself wire sanitizes nothing.
func TestTaintSanitizerDominance(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func recv() []int { return nil }
func guarded() []int {
	data := recv()
	n := data[0]
	if n > 64 {
		return nil
	}
	return make([]int, n)
}
func unguarded() []int {
	data := recv()
	n := data[0]
	out := make([]int, n)
	if n > 64 {
		return nil
	}
	return out
}
func wireBound() []int {
	data := recv()
	n := data[0]
	m := data[1]
	if n > m {
		return nil
	}
	return make([]int, n)
}`)
	byFn := sinksByFunc(wireEngine(prog).Run())
	if len(byFn["guarded"]) != 0 {
		t.Errorf("a dominating oversize guard must sanitize, got %v", byFn["guarded"])
	}
	if len(byFn["unguarded"]) != 1 {
		t.Errorf("a guard after the allocation must not sanitize, got %v", byFn["unguarded"])
	}
	if len(byFn["wireBound"]) != 1 {
		t.Errorf("a comparison against a peer-chosen bound must not sanitize, got %v", byFn["wireBound"])
	}
}

// TestTaintWitnessChain pins interprocedural resolution: a sink fed by
// a parameter obligation resolves through the recorded call-site
// arguments, and the chain lists every hop sink-outward.
func TestTaintWitnessChain(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func recv() []int { return nil }
func sink(n int) []int { return make([]int, n) }
func relay(m int) []int { return sink(m) }
func entry() []int {
	data := recv()
	return relay(data[0])
}`)
	sinks := wireEngine(prog).Run()
	if len(sinks) != 1 {
		t.Fatalf("want exactly one resolved sink, got %v", sinks)
	}
	s := sinks[0]
	if !strings.HasSuffix(s.Fn.Name, ".sink") || s.Kind != SinkAlloc || s.Expr != "n" {
		t.Fatalf("finding must land on sink's allocation, got %+v", s.SinkRecord)
	}
	if s.Val.T != TaintWire || s.Val.Src != "peer" {
		t.Fatalf("resolved value must be wire from the peer source, got %+v", s.Val)
	}
	if len(s.Chain) != 2 {
		t.Fatalf("chain must record both hops, got %v", s.Chain)
	}
	if !strings.Contains(s.Chain[0], "param n of") || !strings.Contains(s.Chain[0], "relay") {
		t.Errorf("first hop must name sink's param and relay's call site, got %q", s.Chain[0])
	}
	if !strings.Contains(s.Chain[1], "param m of") || !strings.Contains(s.Chain[1], "entry") {
		t.Errorf("second hop must name relay's param and entry's call site, got %q", s.Chain[1])
	}
}

// TestTaintPessimisticCalleeClamp pins the boundedalloc upgrade: in
// pessimistic mode a clamp inside a callee bounds the call site, while
// an unclamped parameter still reports.
func TestTaintPessimisticCalleeClamp(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func clampTo(n int) int {
	if n > 64 {
		return 64
	}
	return n
}
func usesClamp(x int) []int { return make([]int, clampTo(x)) }
func usesRaw(x int) []int   { return make([]int, x) }`)
	byFn := sinksByFunc((&TaintAnalysis{Prog: prog, Mode: ModePessimistic}).Run())
	if len(byFn["usesClamp"]) != 0 {
		t.Errorf("a clamp inside the callee must bound the call site, got %v", byFn["usesClamp"])
	}
	if len(byFn["usesRaw"]) != 1 {
		t.Errorf("an unclamped parameter must stay a pessimistic finding, got %v", byFn["usesRaw"])
	}
}
