package ir

import (
	"go/ast"
	"strings"
	"testing"
)

// useOf finds the use of name inside the first block-resident
// statement whose source text starts with fragment.
func useOf(t *testing.T, f *Func, fragment, name string) *ast.Ident {
	t.Helper()
	for _, b := range f.Blocks {
		for _, s := range b.Nodes {
			if !strings.HasPrefix(stmtText(f.Pkg.Fset, s), fragment) {
				continue
			}
			var found *ast.Ident
			ast.Inspect(s, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == name && found == nil {
					if _, isUse := f.Pkg.Info.Uses[id]; isUse {
						found = id
					}
				}
				return found == nil
			})
			if found != nil {
				return found
			}
		}
	}
	t.Fatalf("no use of %q inside a statement starting with %q", name, fragment)
	return nil
}

// rhsTexts renders reaching RHS expressions as source text; nil
// entries (parameter/range defs) render as "<nil>".
func rhsTexts(f *Func, exprs []ast.Expr) []string {
	var out []string
	for _, e := range exprs {
		if e == nil {
			out = append(out, "<nil>")
			continue
		}
		out = append(out, stmtText(f.Pkg.Fset, e))
	}
	return out
}

func wantRHS(t *testing.T, f *Func, got []ast.Expr, want ...string) {
	t.Helper()
	texts := rhsTexts(f, got)
	if len(texts) != len(want) {
		t.Fatalf("reaching defs = %v, want %v", texts, want)
	}
	have := make(map[string]bool, len(texts))
	for _, s := range texts {
		have[s] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("reaching defs = %v, want %v", texts, want)
		}
	}
}

// TestDefUseKillSameBlock pins the single-block function: a later
// assignment in the same block kills the earlier one.
func TestDefUseKillSameBlock(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func kill() int {
	x := 1
	x = 2
	return x
}`)
	f := funcByName(t, prog, "kill")
	d := BuildDefUse(f)
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "return x", "x")), "2")
}

// TestDefUseBranchMerge pins the union meet: both branch assignments
// reach the join, and both kill the initial def.
func TestDefUseBranchMerge(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func merge(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`)
	f := funcByName(t, prog, "merge")
	d := BuildDefUse(f)
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "return x", "x")), "2", "3")
}

// TestDefUseSelfLoop pins the fixpoint on a cyclic CFG: the loop-body
// assignment reaches its own right-hand side on the next iteration,
// alongside the pre-loop def for the first one.
func TestDefUseSelfLoop(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func loop(n int) int {
	x := 1
	for i := 0; i < n; i++ {
		x = x + 1
	}
	return x
}`)
	f := funcByName(t, prog, "loop")
	d := BuildDefUse(f)
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "x = x + 1", "x")), "1", "x + 1")
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "return x", "x")), "1", "x + 1")
}

// TestDefUseUnreachableBlock pins behavior on dead code: a def inside
// an unreachable block still reaches a later use in that block, and
// nothing leaks in from the live region.
func TestDefUseUnreachableBlock(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func dead() int {
	y := 7
	_ = y
	return y
	x := 2
	return x
}`)
	f := funcByName(t, prog, "dead")
	if b := blockContaining(t, f, "x := 2"); !b.Unreachable() {
		t.Fatal("fixture block after return must be unreachable")
	}
	d := BuildDefUse(f)
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "return x", "x")), "2")
}

// TestDefUseParamAndRangeDefs pins the nil-RHS definitions: parameters
// are live at entry and range variables define per iteration.
func TestDefUseParamAndRangeDefs(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func sum(xs []int) int {
	t := 0
	for _, v := range xs {
		t = t + v
	}
	return t
}`)
	f := funcByName(t, prog, "sum")
	d := BuildDefUse(f)
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "t = t + v", "v")), "<nil>")
	wantRHS(t, f, d.ReachingRHS(useOf(t, f, "for _, v := range xs", "xs")), "<nil>")
}
