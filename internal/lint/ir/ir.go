// Package ir is the lint driver's "SSA-lite" intermediate
// representation: a statement-granularity control-flow graph per
// function, def-use information, dominators, a static call graph, and
// a generic forward/backward dataflow solver — everything the
// interprocedural analyzers (goroutinelife, deadlineflow, wiresym)
// need, built only on go/ast and go/types because the container is
// offline and golang.org/x/tools is unavailable.
//
// The IR is deliberately not full SSA: values are not renamed, and
// expressions are not lowered. Blocks hold the original statements in
// order, so analyzers keep working directly against syntax with
// resolved types, and the CFG supplies what syntax alone cannot:
// which statements can follow which, which loops exist, and which
// definitions reach a use.
package ir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SourcePackage is the slice of a type-checked package the IR needs.
// The lint loader converts its own Package values into this shape so
// ir does not import the driver (the driver imports ir).
type SourcePackage struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Func is one analyzed function: a declaration or a function literal.
// Literals are independent Funcs — a closure's body is never part of
// its enclosing function's CFG.
type Func struct {
	Pkg  *SourcePackage
	Name string // diagnostic name, e.g. "pkg.(*T).Method" or "pkg.func@12"
	// Obj is the declared function object (nil for literals).
	Obj types.Object
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt

	Blocks []*Block
	Entry  *Block
	Exit   *Block // synthetic: every return/fall-off edge targets it

	// Calls are the static call sites appearing in this function's
	// body (excluding nested literals' bodies).
	Calls []*CallSite

	// stmtBlock maps each block-resident statement to its block.
	stmtBlock map[ast.Stmt]*Block
}

// Position renders a position within the function's file set.
func (f *Func) Position(pos token.Pos) token.Position {
	return f.Pkg.Fset.Position(pos)
}

// Block is one basic-ish block: a maximal run of statements with no
// internal control transfer. Nodes hold statements in source order;
// conditions of branches live in the block that evaluates them.
type Block struct {
	Index int
	Nodes []ast.Stmt
	Succs []*Block
	Preds []*Block

	// LoopStmt is the for/range statement whose header this block is,
	// when the block is a loop header (nil otherwise). Analyzers use
	// it to recognize bounded counting loops.
	LoopStmt ast.Stmt

	unreachable bool
}

// Unreachable reports whether no path from the entry reaches b.
func (b *Block) Unreachable() bool { return b.unreachable }

// CallSite is one static call expression inside a Func.
type CallSite struct {
	Caller *Func
	Block  *Block
	Call   *ast.CallExpr
	// CalleeObj is the resolved callee object when the call target is
	// an identifier, selector, or method expression the type checker
	// resolved; nil for dynamic calls through function values.
	CalleeObj types.Object
	// Callee is the module-local Func for CalleeObj, or the literal's
	// Func for immediately-invoked literals; nil for external or
	// dynamic targets.
	Callee *Func
}

// BlockOf returns the block holding stmt, or nil when stmt is not a
// block-resident statement of f (e.g. it sits in a nested literal).
func (f *Func) BlockOf(stmt ast.Stmt) *Block { return f.stmtBlock[stmt] }

// EnclosingStmt returns the outermost block-resident statement of f
// that contains pos, together with its block. It is how analyzers map
// an arbitrary expression node back onto the CFG.
func (f *Func) EnclosingStmt(pos token.Pos) (ast.Stmt, *Block) {
	for _, b := range f.Blocks {
		for _, s := range b.Nodes {
			if s.Pos() <= pos && pos < s.End() {
				return s, b
			}
		}
	}
	return nil, nil
}

// funcName builds the diagnostic name for a declaration.
func funcName(pkg *SourcePackage, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkg.Path + "." + decl.Name.Name
	}
	recv := "?"
	switch t := decl.Recv.List[0].Type.(type) {
	case *ast.Ident:
		recv = t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			recv = "*" + id.Name
		}
	}
	return fmt.Sprintf("%s.(%s).%s", pkg.Path, recv, decl.Name.Name)
}

func litName(pkg *SourcePackage, lit *ast.FuncLit) string {
	pos := pkg.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s.func@%d", pkg.Path, pos.Line)
}
