package ir

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the flow-insensitive alias/escape analysis the
// concurrency analyzers (frozenpublish, sharedstate) build on. Per
// function it answers two questions:
//
//   - May-alias: which local variables can reach the same object? The
//     analysis runs union-find over *types.Var, merging classes on
//     every assignment that copies a reference (pointer, slice, map,
//     chan, interface, func) or takes an address. Value copies
//     (`c := *p`, struct assignment) deliberately do NOT merge — that
//     is what makes "copy, then publish" a recognizably safe idiom.
//   - Escape: through which operations does an object leave the
//     current goroutine or frame? Each alias class accumulates
//     EscapeSites: go-statement arguments and captures, channel
//     sends, atomic.Pointer/atomic.Value Stores, stores reachable
//     from package-level variables, plain call arguments, returns.
//
// The analysis is deliberately conservative in the may direction for
// aliasing (a selector or index read merges with its base: a value
// pulled out of a struct may share the struct's reachable heap) and
// in the must direction for escapes (a call result is treated as a
// fresh object; interprocedural effects are the analyzers' job via
// SummaryCache).
type Escape struct {
	f      *Func
	parent map[*types.Var]*types.Var
	sites  map[*types.Var][]EscapeSite // keyed by class representative
	all    map[*types.Var]bool         // every var ever observed

	// tparent is a second, tighter union-find: classes merge only
	// through flows that preserve the value's own backing storage —
	// whole-value copies, conversions, address-of, reslicing, append
	// to the same slice. Element extraction (range values, x[i]) and
	// element insertion (append args, composite literals) do NOT
	// merge: a slice that merely contains the same pointers is not
	// the same container. MayAliasTight answers over this relation.
	tparent map[*types.Var]*types.Var
}

// EscapeKind classifies how a value leaves its owning goroutine/frame.
type EscapeKind uint8

const (
	// EscGoArg: passed as an argument (or receiver) of a go'd call.
	EscGoArg EscapeKind = iota
	// EscGoCapture: captured by a function literal started with go.
	EscGoCapture
	// EscChanSend: sent on a channel.
	EscChanSend
	// EscAtomicStore: published via an atomic.Value/atomic.Pointer
	// Store method.
	EscAtomicStore
	// EscGlobal: stored into, or read out of, a package-level variable.
	EscGlobal
	// EscArg: passed to an ordinary (non-go) call.
	EscArg
	// EscReturn: returned to the caller.
	EscReturn
)

func (k EscapeKind) String() string {
	switch k {
	case EscGoArg:
		return "go-arg"
	case EscGoCapture:
		return "go-capture"
	case EscChanSend:
		return "chan-send"
	case EscAtomicStore:
		return "atomic-store"
	case EscGlobal:
		return "global"
	case EscArg:
		return "arg"
	case EscReturn:
		return "return"
	}
	return "?"
}

// CrossesGoroutine reports whether this escape kind makes the object
// visible to another goroutine (as opposed to merely another frame).
func (k EscapeKind) CrossesGoroutine() bool {
	switch k {
	case EscGoArg, EscGoCapture, EscChanSend, EscAtomicStore, EscGlobal:
		return true
	}
	return false
}

// EscapeSite is one program point where an alias class escapes.
type EscapeSite struct {
	Kind EscapeKind
	Pos  token.Pos
}

// BuildEscape runs the alias/escape analysis over f's body. Nested
// function literals are skipped — each literal is its own Func with
// its own Escape; the capture relationship is visible to the spawner
// through FreeVars and the EscGoCapture sites recorded here.
func BuildEscape(f *Func) *Escape {
	e := &Escape{
		f:       f,
		parent:  make(map[*types.Var]*types.Var),
		sites:   make(map[*types.Var][]EscapeSite),
		all:     make(map[*types.Var]bool),
		tparent: make(map[*types.Var]*types.Var),
	}
	if f.Body == nil {
		return e
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			e.assign(n)
		case *ast.ValueSpec:
			if len(n.Values) == len(n.Names) {
				for i, name := range n.Names {
					e.flow(name, n.Values[i], true)
				}
			}
		case *ast.RangeStmt:
			// Key/value pull (possibly reference-typed) elements out of
			// the ranged container: may-alias with its root, but never
			// tight-alias — an element is not its container.
			for _, kv := range []ast.Expr{n.Key, n.Value} {
				if kv != nil {
					e.flow(kv, n.X, false)
				}
			}
		case *ast.SendStmt:
			for _, v := range e.ValueRoots(n.Value) {
				e.mark(v, EscChanSend, n.Pos())
			}
		case *ast.GoStmt:
			e.goStmt(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				for _, v := range e.ValueRoots(r) {
					e.mark(v, EscReturn, r.Pos())
				}
			}
		case *ast.CallExpr:
			e.call(n)
		}
		return true
	})
	return e
}

// rep returns the class representative of v with path compression.
func (e *Escape) rep(v *types.Var) *types.Var {
	r := v
	for {
		p, ok := e.parent[r]
		if !ok || p == r {
			break
		}
		r = p
	}
	for v != r {
		next := e.parent[v]
		e.parent[v] = r
		v = next
	}
	return r
}

func (e *Escape) union(a, b *types.Var) {
	if a == nil || b == nil {
		return
	}
	e.all[a], e.all[b] = true, true
	ra, rb := e.rep(a), e.rep(b)
	if ra == rb {
		return
	}
	// Deterministic root choice: earliest declaration wins.
	if rb.Pos() < ra.Pos() {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	e.sites[ra] = append(e.sites[ra], e.sites[rb]...)
	delete(e.sites, rb)
}

func (e *Escape) mark(v *types.Var, kind EscapeKind, pos token.Pos) {
	if v == nil {
		return
	}
	e.all[v] = true
	r := e.rep(v)
	e.sites[r] = append(e.sites[r], EscapeSite{Kind: kind, Pos: pos})
}

// assign merges alias classes across an assignment.
func (e *Escape) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		// Compound assignments (+=, etc.) operate on scalars/strings;
		// no reference flows.
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			e.flow(s.Lhs[i], s.Rhs[i], true)
		}
	}
	// Multi-value RHS is a call or map/chan/type-assert comma-ok: the
	// results are fresh objects as far as this frame can prove.
}

// flow records the effect of one lhs = rhs pair: the reference roots
// of rhs become reachable from lhs's root. When tight is set and the
// rhs preserves backing storage, the tight relation merges too.
func (e *Escape) flow(lhs, rhs ast.Expr, tight bool) {
	roots := e.ValueRoots(rhs)
	if len(roots) == 0 {
		return
	}
	pkg := e.f.Pkg
	switch base := unparenExpr(lhs).(type) {
	case *ast.Ident:
		if base.Name == "_" {
			return
		}
		lv := objVar(pkg, base)
		if lv == nil {
			return
		}
		for _, r := range roots {
			e.union(lv, r)
		}
		if tight {
			if tr := e.tightRoot(rhs); tr != nil {
				e.tunion(lv, tr)
			}
		}
		e.markIfGlobal(lv, lhs.Pos())
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		// Heap store: rhs becomes reachable from the written object.
		lb := RootVar(pkg, lhs)
		if lb == nil {
			return
		}
		for _, r := range roots {
			e.union(lb, r)
		}
		e.markIfGlobal(lb, lhs.Pos())
	}
}

// markIfGlobal records an EscGlobal site when v is package-level: the
// whole alias class is now reachable by any goroutine.
func (e *Escape) markIfGlobal(v *types.Var, pos token.Pos) {
	if v != nil && isGlobalVar(v) {
		e.mark(v, EscGlobal, pos)
	}
}

// goStmt records escapes through a go statement: call arguments, the
// receiver of a go'd method call, and every variable captured by a
// go'd literal.
func (e *Escape) goStmt(g *ast.GoStmt) {
	call := g.Call
	if lit, ok := unparenExpr(call.Fun).(*ast.FuncLit); ok {
		for _, v := range FreeVars(e.f.Pkg, lit) {
			e.mark(v, EscGoCapture, g.Pos())
		}
	}
	if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
		if v := RootVar(e.f.Pkg, sel.X); v != nil {
			e.mark(v, EscGoArg, g.Pos())
		}
	}
	for _, a := range call.Args {
		for _, v := range e.ValueRoots(a) {
			e.mark(v, EscGoArg, a.Pos())
		}
	}
}

// call records escapes through an ordinary call: an atomic Store
// publishes its argument; any other call weakly escapes its reference
// arguments (and method receiver) to the callee.
func (e *Escape) call(c *ast.CallExpr) {
	pkg := e.f.Pkg
	if arg := AtomicStoreArg(pkg, c); arg != nil {
		for _, v := range e.ValueRoots(arg) {
			e.mark(v, EscAtomicStore, c.Pos())
		}
		return
	}
	// Builtins and conversions move values inside the frame only.
	if id, ok := unparenExpr(c.Fun).(*ast.Ident); ok {
		if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
			return
		}
	}
	if tv, ok := pkg.Info.Types[c.Fun]; ok && tv.IsType() {
		return
	}
	if sel, ok := unparenExpr(c.Fun).(*ast.SelectorExpr); ok {
		if v := RootVar(pkg, sel.X); v != nil {
			e.mark(v, EscArg, c.Pos())
		}
	}
	for _, a := range c.Args {
		for _, v := range e.ValueRoots(a) {
			e.mark(v, EscArg, a.Pos())
		}
	}
}

// ValueRoots returns the local/package variables whose reachable heap
// the value of expr may share: the alias-relevant roots of a
// reference-producing expression. Value copies and call results
// return nil (fresh objects).
func (e *Escape) ValueRoots(expr ast.Expr) []*types.Var {
	pkg := e.f.Pkg
	switch x := unparenExpr(expr).(type) {
	case *ast.Ident:
		if v := objVar(pkg, x); v != nil && isRefLike(pkg.Info.TypeOf(x)) {
			return []*types.Var{v}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &v aliases v regardless of v's own type; &T{...} reaches
			// each reference element of the literal.
			if cl, ok := unparenExpr(x.X).(*ast.CompositeLit); ok {
				return e.compositeRoots(cl)
			}
			if v := RootVar(pkg, x.X); v != nil {
				return []*types.Var{v}
			}
		}
	case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
		// A reference read out of an object may share that object's
		// heap; a value copy (struct load) does not.
		ex := x.(ast.Expr)
		if isRefLike(pkg.Info.TypeOf(ex)) {
			if v := RootVar(pkg, ex); v != nil {
				return []*types.Var{v}
			}
		}
	case *ast.CallExpr:
		if id, ok := unparenExpr(x.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "append" {
				var out []*types.Var
				for _, a := range x.Args {
					out = append(out, e.ValueRoots(a)...)
				}
				return out
			}
		}
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return e.ValueRoots(x.Args[0])
		}
	case *ast.CompositeLit:
		return e.compositeRoots(x)
	}
	return nil
}

func (e *Escape) compositeRoots(cl *ast.CompositeLit) []*types.Var {
	var out []*types.Var
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		out = append(out, e.ValueRoots(el)...)
	}
	return out
}

func (e *Escape) trep(v *types.Var) *types.Var {
	r := v
	for {
		p, ok := e.tparent[r]
		if !ok || p == r {
			break
		}
		r = p
	}
	for v != r {
		next := e.tparent[v]
		e.tparent[v] = r
		v = next
	}
	return r
}

func (e *Escape) tunion(a, b *types.Var) {
	if a == nil || b == nil {
		return
	}
	ra, rb := e.trep(a), e.trep(b)
	if ra == rb {
		return
	}
	if rb.Pos() < ra.Pos() {
		ra, rb = rb, ra
	}
	e.tparent[rb] = ra
}

// tightRoot resolves the variable whose backing storage the value of
// expr IS (not merely contains): whole-value reads, conversions,
// address-of, type assertions, reslicing, and append-to-same-slice
// preserve container identity; element extraction and fresh
// allocations return nil.
func (e *Escape) tightRoot(expr ast.Expr) *types.Var {
	pkg := e.f.Pkg
	switch x := unparenExpr(expr).(type) {
	case *ast.Ident:
		if v := objVar(pkg, x); v != nil && isRefLike(pkg.Info.TypeOf(x)) {
			return v
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, isLit := unparenExpr(x.X).(*ast.CompositeLit); isLit {
				return nil // fresh object
			}
			return RootVar(pkg, x.X)
		}
	case *ast.SelectorExpr:
		// The value stored in s.f lives in s's reachable heap.
		if isRefLike(pkg.Info.TypeOf(x)) {
			return RootVar(pkg, x)
		}
	case *ast.SliceExpr:
		// x[i:j] shares x's backing array.
		if isRefLike(pkg.Info.TypeOf(x)) {
			return RootVar(pkg, x.X)
		}
	case *ast.TypeAssertExpr:
		if isRefLike(pkg.Info.TypeOf(x)) {
			return RootVar(pkg, x.X)
		}
	case *ast.CallExpr:
		if id, ok := unparenExpr(x.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && len(x.Args) > 0 {
				// append may grow in place: the result shares arg0's
				// backing; the appended elements do not become it.
				return e.tightRoot(x.Args[0])
			}
		}
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return e.tightRoot(x.Args[0])
		}
	}
	return nil
}

// MayAliasTight reports whether a and b may be the same container —
// aliased through backing-preserving flows only. Implies MayAlias.
func (e *Escape) MayAliasTight(a, b *types.Var) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	return e.trep(a) == e.trep(b)
}

// MayAlias reports whether a and b can reach the same object.
func (e *Escape) MayAlias(a, b *types.Var) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	return e.rep(a) == e.rep(b)
}

// AliasVars returns every observed variable in v's alias class
// (including v itself), ordered by declaration position.
func (e *Escape) AliasVars(v *types.Var) []*types.Var {
	if v == nil {
		return nil
	}
	r := e.rep(v)
	out := []*types.Var{}
	seen := false
	for x := range e.all {
		if e.rep(x) == r {
			out = append(out, x)
			if x == v {
				seen = true
			}
		}
	}
	if !seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Sites returns the escape sites recorded for v's alias class.
func (e *Escape) Sites(v *types.Var) []EscapeSite {
	if v == nil {
		return nil
	}
	return e.sites[e.rep(v)]
}

// SharedWithGoroutine reports whether v's alias class escapes to
// another goroutine (go arg/capture, channel send, atomic store, or a
// package-level variable).
func (e *Escape) SharedWithGoroutine(v *types.Var) bool {
	for _, s := range e.Sites(v) {
		if s.Kind.CrossesGoroutine() {
			return true
		}
	}
	return false
}

// Escapes reports whether v's alias class escapes the frame at all.
func (e *Escape) Escapes(v *types.Var) bool { return len(e.Sites(v)) > 0 }

// AtomicStoreArg returns the stored value when call is a Store method
// call on a sync/atomic type (atomic.Value, atomic.Pointer[T], the
// scalar wrappers), else nil.
func AtomicStoreArg(pkg *SourcePackage, call *ast.CallExpr) ast.Expr {
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return call.Args[0]
}

// FreeVars returns the variables a function literal captures from
// enclosing scopes: every identifier used in its body that resolves
// to a non-field, non-package-level variable declared outside the
// literal. Sorted by declaration position for determinism.
func FreeVars(pkg *SourcePackage, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isGlobalVar(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// RootVar resolves the base variable an expression chain is rooted
// at: x, x.f, x[i], *x, &x.f, T(x) all root at x. Returns nil when
// the chain bottoms out in a call, a literal, or anything else with
// no variable identity. Package-level variables are returned too;
// callers that need locals must filter with isGlobalVar/IsGlobalVar.
func RootVar(pkg *SourcePackage, expr ast.Expr) *types.Var {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		case *ast.SelectorExpr:
			// Qualified reference to another package's variable.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
						return v
					}
					return nil
				}
			}
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			expr = x.X
		case *ast.CallExpr:
			// Type conversions preserve the operand's identity.
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				expr = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return objVar(pkg, x)
		default:
			return nil
		}
	}
}

// RecvVar returns the declared receiver variable of f, or nil.
func RecvVar(f *Func) *types.Var {
	if f.Decl == nil || f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 {
		return nil
	}
	names := f.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	if v, ok := f.Pkg.Info.Defs[names[0]].(*types.Var); ok {
		return v
	}
	return nil
}

// ParamVars returns f's declared parameters in order (receiver
// excluded — see RecvVar). Unnamed and blank parameters contribute
// nil placeholders so indexes line up with call-site arguments.
func ParamVars(f *Func) []*types.Var {
	var ft *ast.FuncType
	if f.Decl != nil {
		ft = f.Decl.Type
	} else {
		ft = f.Lit.Type
	}
	var out []*types.Var
	if ft.Params == nil {
		return out
	}
	for _, fl := range ft.Params.List {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range fl.Names {
			if v, ok := f.Pkg.Info.Defs[n].(*types.Var); ok {
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
		}
	}
	return out
}

// IsGlobalVar reports whether v is a package-level variable.
func IsGlobalVar(v *types.Var) bool { return isGlobalVar(v) }

func isGlobalVar(v *types.Var) bool {
	return v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// objVar resolves an identifier to its variable object (use or def),
// excluding struct fields.
func objVar(pkg *SourcePackage, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// isRefLike reports whether values of t carry references: mutating
// through one copy is visible through another.
func isRefLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}
