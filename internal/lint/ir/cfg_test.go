package ir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fixtureText holds the last parsed fixture source so tests can map
// AST nodes back to their source text by offset.
var fixtureText string

// parseFixture type-checks one source string into a SourcePackage and
// returns the built Program. Fixtures must be import-free (the test
// deliberately avoids go/importer, which needs compiled export data).
func parseFixture(t *testing.T, src string) (*SourcePackage, *Program) {
	t.Helper()
	fixtureText = src
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("fixture", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	sp := &SourcePackage{
		Path:  "fixture",
		Fset:  fset,
		Files: []*ast.File{file},
		Info:  info,
		Types: tpkg,
	}
	return sp, BuildProgram([]*SourcePackage{sp})
}

func funcByName(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name || strings.HasSuffix(f.Name, "."+name) {
			return f
		}
	}
	t.Fatalf("function %q not found in program", name)
	return nil
}

func stmtText(fset *token.FileSet, n ast.Node) string {
	return fixtureText[fset.Position(n.Pos()).Offset:fset.Position(n.End()).Offset]
}

// blockContaining finds the block holding the statement whose source
// text starts with the given fragment.
func blockContaining(t *testing.T, f *Func, fragment string) *Block {
	t.Helper()
	for _, b := range f.Blocks {
		for _, s := range b.Nodes {
			if strings.HasPrefix(stmtText(f.Pkg.Fset, s), fragment) {
				return b
			}
		}
	}
	t.Fatalf("no block-resident statement starts with %q", fragment)
	return nil
}

// reaches reports whether CFG block b can reach target.
func reaches(b, target *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(cur *Block) bool {
		if cur == target {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		for _, s := range cur.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(b)
}

func TestCFGBranches(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func branches(x int) int {
	y := 0
	if x > 0 {
		y = 1
	} else {
		y = 2
	}
	return y
}`)
	f := funcByName(t, prog, "branches")

	if !reaches(f.Entry, f.Exit) {
		t.Fatalf("entry does not reach exit")
	}
	condBlock := blockContaining(t, f, "if x > 0")
	if len(condBlock.Succs) != 2 {
		t.Fatalf("if block has %d successors, want 2", len(condBlock.Succs))
	}
	thenB := blockContaining(t, f, "y = 1")
	elseB := blockContaining(t, f, "y = 2")
	if thenB == elseB {
		t.Fatalf("then and else share a block")
	}
	retB := blockContaining(t, f, "return y")
	if !reaches(thenB, retB) || !reaches(elseB, retB) {
		t.Fatalf("arms do not rejoin at the return")
	}
	if reaches(thenB, elseB) || reaches(elseB, thenB) {
		t.Fatalf("branch arms must not reach each other")
	}

	// Dominance: the condition block dominates both arms and the
	// return; neither arm dominates the return.
	dom := Dominators(f)
	if !Dominates(dom, condBlock, thenB) || !Dominates(dom, condBlock, retB) {
		t.Fatalf("condition block should dominate arms and join")
	}
	if Dominates(dom, thenB, retB) || Dominates(dom, elseB, retB) {
		t.Fatalf("a single arm must not dominate the join")
	}
}

func TestCFGLoops(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func loops(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	for {
		if total > 100 {
			break
		}
		total++
	}
	return total
}`)
	f := funcByName(t, prog, "loops")

	var headers []*Block
	for _, b := range f.Blocks {
		if b.LoopStmt != nil {
			headers = append(headers, b)
		}
	}
	if len(headers) != 2 {
		t.Fatalf("got %d loop headers, want 2", len(headers))
	}
	// The bounded loop's body has a back edge to its header.
	body := blockContaining(t, f, "total += xs[i]")
	if !reaches(body, headers[0]) {
		t.Fatalf("counting-loop body has no back edge to its header")
	}
	// break exits the infinite loop: entry still reaches the return.
	retB := blockContaining(t, f, "return total")
	if !reaches(f.Entry, retB) {
		t.Fatalf("break does not exit the infinite loop")
	}
	// A condition-less for has no fall-through edge out of its
	// header: its only successor is the body.
	inf := headers[1]
	if len(inf.Succs) != 1 {
		t.Fatalf("condition-less for header has %d successors, want 1 (the body)", len(inf.Succs))
	}
}

func TestCFGDefersAndReturns(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func deferred(c bool) (out int) {
	defer func() { out++ }()
	if c {
		return 1
	}
	return 2
}`)
	f := funcByName(t, prog, "deferred")

	r1 := blockContaining(t, f, "return 1")
	r2 := blockContaining(t, f, "return 2")
	for _, r := range []*Block{r1, r2} {
		found := false
		for _, s := range r.Succs {
			if s == f.Exit {
				found = true
			}
		}
		if !found {
			t.Fatalf("return block %d does not edge to exit", r.Index)
		}
	}
	// The defer statement stays in the entry block; the deferred
	// literal's body is its own Func, not part of this CFG.
	d := blockContaining(t, f, "defer func")
	if d != f.Entry {
		t.Fatalf("defer not placed in entry block")
	}
	lits := 0
	for _, fn := range prog.Funcs {
		if fn.Lit != nil {
			lits++
		}
	}
	if lits != 1 {
		t.Fatalf("got %d literal Funcs, want 1", lits)
	}
}

func TestCFGMethodValuesAndCallGraph(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func direct(c *counter) { c.bump() }

func viaValue(c *counter) {
	f := c.bump
	f()
}`)
	bump := funcByName(t, prog, "(*counter).bump")
	direct := funcByName(t, prog, "direct")
	viaValue := funcByName(t, prog, "viaValue")

	// The direct method call resolves to bump's Func.
	if len(direct.Calls) != 1 || direct.Calls[0].Callee != bump {
		t.Fatalf("direct method call did not resolve to bump")
	}
	// Callers map is the reverse edge.
	found := false
	for _, cs := range prog.Callers[bump] {
		if cs.Caller == direct {
			found = true
		}
	}
	if !found {
		t.Fatalf("Callers[bump] missing the direct call site")
	}
	// The method-value invocation f() is dynamic: CalleeObj nil. But
	// reaching defs recover the bound method from the definition.
	var dyn *CallSite
	for _, cs := range viaValue.Calls {
		if id, ok := cs.Call.Fun.(*ast.Ident); ok && id.Name == "f" {
			dyn = cs
		}
	}
	if dyn == nil {
		t.Fatalf("method-value call site not recorded")
	}
	if dyn.CalleeObj != nil || dyn.Callee != nil {
		t.Fatalf("method-value call should be unresolved statically")
	}
	du := BuildDefUse(viaValue)
	id := dyn.Call.Fun.(*ast.Ident)
	rhs := du.ReachingRHS(id)
	if len(rhs) != 1 {
		t.Fatalf("got %d reaching defs for f, want 1", len(rhs))
	}
	sel, ok := rhs[0].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "bump" {
		t.Fatalf("reaching def of f is not the c.bump method value")
	}
}

func TestCFGSwitchSelectUnreachable(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func sw(x int, ch chan int) int {
	switch x {
	case 1:
		return 1
	case 2:
		x++
	default:
		x--
	}
	select {
	case v := <-ch:
		return v
	case ch <- x:
	}
	return x
}

func dead() int {
	for {
		break
	}
	return 1
}`)
	f := funcByName(t, prog, "sw")
	tag := blockContaining(t, f, "switch x")
	if len(tag.Succs) != 3 { // three clauses; default present → no fall edge
		t.Fatalf("switch tag block has %d successors, want 3", len(tag.Succs))
	}
	sel := blockContaining(t, f, "select {")
	if len(sel.Succs) != 2 {
		t.Fatalf("select block has %d successors, want 2", len(sel.Succs))
	}
	retB := blockContaining(t, f, "return x")
	if !reaches(f.Entry, retB) {
		t.Fatalf("fall-through switch cases do not rejoin")
	}

	// Reachability marking: everything in dead() is reachable (break
	// exits the loop), and no reachable function block is marked.
	g := funcByName(t, prog, "dead")
	for _, b := range g.Blocks {
		if len(b.Nodes) > 0 && b.Unreachable() {
			t.Fatalf("block %d wrongly marked unreachable", b.Index)
		}
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func labeled(xs [][]int) int {
	total := 0
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	if total == 0 {
		goto done
	}
	total *= 2
done:
	return total
}`)
	f := funcByName(t, prog, "labeled")
	retB := blockContaining(t, f, "return total")
	// break outer jumps past both loops to the tail.
	brk := blockContaining(t, f, "break outer")
	if !reaches(brk, retB) {
		t.Fatalf("break outer does not reach the function tail")
	}
	// continue outer re-enters the outer range header.
	cont := blockContaining(t, f, "continue outer")
	var outerHead *Block
	for _, b := range f.Blocks {
		if rs, ok := b.LoopStmt.(*ast.RangeStmt); ok && strings.HasPrefix(stmtText(f.Pkg.Fset, rs), "for _, row") {
			outerHead = b
		}
	}
	if outerHead == nil {
		t.Fatalf("outer range header not found")
	}
	direct := false
	for _, s := range cont.Succs {
		if s == outerHead {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("continue outer does not edge to the outer loop header")
	}
	// goto done lands on the labeled return.
	gt := blockContaining(t, f, "goto done")
	if !reaches(gt, retB) {
		t.Fatalf("goto done does not reach the labeled return")
	}
	// The skipped statement must not sit on the goto path.
	dbl := blockContaining(t, f, "total *= 2")
	for _, s := range gt.Succs {
		if s == dbl {
			t.Fatalf("goto done must not fall into the skipped statement")
		}
	}
}
