package ir

// SummaryCache memoizes per-function boolean facts computed by
// interprocedural analyses ("does this function block on a
// termination signal", "does this function arm a deadline on
// parameter i", ...). Recursion through the call graph is broken by a
// visiting set: a query that re-enters a function already on the
// stack yields the analyzer-chosen cycle default, and that
// provisional answer is NOT cached, so an eventual non-cyclic query
// recomputes it properly.
type SummaryCache struct {
	vals     map[summaryKey]bool
	visiting map[summaryKey]bool
	depth    int
}

type summaryKey struct {
	f    *Func
	kind string
}

// maxSummaryDepth bounds interprocedural recursion; beyond it the
// cycle default is returned. Sixteen frames is far deeper than any
// real call chain in this module.
const maxSummaryDepth = 16

func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		vals:     make(map[summaryKey]bool),
		visiting: make(map[summaryKey]bool),
	}
}

// Memo returns the cached value of kind for f, computing it with
// compute on a miss. cycleDefault is returned (uncached) when the
// query cycles back into an in-progress computation or exceeds the
// depth bound.
func (c *SummaryCache) Memo(f *Func, kind string, cycleDefault bool, compute func() bool) bool {
	key := summaryKey{f: f, kind: kind}
	if v, ok := c.vals[key]; ok {
		return v
	}
	if c.visiting[key] || c.depth >= maxSummaryDepth {
		return cycleDefault
	}
	c.visiting[key] = true
	c.depth++
	v := compute()
	c.depth--
	delete(c.visiting, key)
	c.vals[key] = v
	return v
}
