package ir

import (
	"go/ast"
	"go/types"
	"testing"
)

// localVar finds the unique *types.Var named name declared anywhere in
// the fixture (fixtures use unique names per variable on purpose).
func localVar(t *testing.T, sp *SourcePackage, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for _, obj := range sp.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.Name() != name {
			continue
		}
		if found != nil && found != v {
			t.Fatalf("variable name %q is ambiguous in fixture", name)
		}
		found = v
	}
	if found == nil {
		t.Fatalf("no variable named %q in fixture", name)
	}
	return found
}

// TestEscapeAliasThroughCopy pins the basic union: an ident copy
// aliases both loosely and tightly, and an unrelated local does not.
func TestEscapeAliasThroughCopy(t *testing.T) {
	sp, prog := parseFixture(t, `package fixture
type box struct{ n int }
func copies() {
	a := &box{}
	b := a
	c := &box{}
	_, _ = b, c
}`)
	f := funcByName(t, prog, "copies")
	e := BuildEscape(f)
	a, b, c := localVar(t, sp, "a"), localVar(t, sp, "b"), localVar(t, sp, "c")
	if !e.MayAlias(a, b) || !e.MayAliasTight(a, b) {
		t.Error("ident copy must alias under both relations")
	}
	if e.MayAlias(a, c) || e.MayAliasTight(a, c) {
		t.Error("independent allocations must not alias")
	}
}

// TestEscapeTightExcludesElementFlows pins the difference between the
// two relations: range-element and index extraction reach the
// container loosely (same object graph) but not tightly (a slice that
// merely contains a pointer is not the same container).
func TestEscapeTightExcludesElementFlows(t *testing.T) {
	sp, prog := parseFixture(t, `package fixture
type box struct{ n int }
func elems(items []*box) {
	var last *box
	for _, it := range items {
		last = it
	}
	first := items[0]
	tail := items[1:]
	_, _, _ = last, first, tail
}`)
	f := funcByName(t, prog, "elems")
	e := BuildEscape(f)
	items := localVar(t, sp, "items")
	it := localVar(t, sp, "it")
	last := localVar(t, sp, "last")
	first := localVar(t, sp, "first")
	tail := localVar(t, sp, "tail")

	if !e.MayAlias(it, items) {
		t.Error("range element must alias its container loosely")
	}
	if e.MayAliasTight(it, items) {
		t.Error("range element must NOT alias its container tightly")
	}
	if !e.MayAliasTight(last, it) {
		t.Error("ident copy of the element must stay tight")
	}
	if e.MayAliasTight(first, items) {
		t.Error("index extraction must NOT be a tight flow")
	}
	if !e.MayAlias(first, items) {
		t.Error("index extraction must still be a loose flow")
	}
	if !e.MayAliasTight(tail, items) {
		t.Error("a reslice shares the backing array: tight flow required")
	}
}

// TestEscapeGoroutineCapture pins SharedWithGoroutine and Sites: a
// free variable of a go-literal crosses the goroutine boundary, a
// plain local does not escape at all.
func TestEscapeGoroutineCapture(t *testing.T) {
	sp, prog := parseFixture(t, `package fixture
func spawn() {
	shared := map[int]int{}
	private := 0
	go func() {
		shared[0] = 1
	}()
	private++
	_ = private
}`)
	f := funcByName(t, prog, "spawn")
	e := BuildEscape(f)
	shared, private := localVar(t, sp, "shared"), localVar(t, sp, "private")

	if !e.SharedWithGoroutine(shared) {
		t.Error("captured map must be shared with the goroutine")
	}
	if !e.Escapes(shared) {
		t.Error("captured map must have at least one escape site")
	}
	crossing := false
	for _, site := range e.Sites(shared) {
		if site.Kind.CrossesGoroutine() {
			crossing = true
		}
	}
	if !crossing {
		t.Error("capture site must be marked as crossing a goroutine")
	}
	if e.Escapes(private) || e.SharedWithGoroutine(private) {
		t.Error("uncaptured local must not escape")
	}
}

// TestFreeVars pins the capture set of a literal: variables bound
// outside the literal appear, literal-local declarations do not.
func TestFreeVars(t *testing.T) {
	sp, prog := parseFixture(t, `package fixture
func outer() {
	captured := 1
	alsoCaptured := 2
	fn := func() int {
		inner := 3
		return captured + alsoCaptured + inner
	}
	_ = fn
}`)
	f := funcByName(t, prog, "outer")
	var lit *ast.FuncLit
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok && lit == nil {
			lit = l
		}
		return lit == nil
	})
	if lit == nil {
		t.Fatal("fixture must contain a func literal")
	}
	got := make(map[*types.Var]bool)
	for _, v := range FreeVars(f.Pkg, lit) {
		got[v] = true
	}
	if !got[localVar(t, sp, "captured")] || !got[localVar(t, sp, "alsoCaptured")] {
		t.Errorf("FreeVars missed a captured variable: %v", got)
	}
	if got[localVar(t, sp, "inner")] {
		t.Error("FreeVars must not include literal-local declarations")
	}
}

// TestRootAndParamVars pins the selector-root walk and the
// receiver/parameter enumeration used by the spawn analysis.
func TestRootAndParamVars(t *testing.T) {
	sp, prog := parseFixture(t, `package fixture
type inner struct{ n int }
type holder struct{ in *inner }
func (h *holder) bump(delta int, tag string) {
	h.in.n += delta
	_ = tag
}`)
	f := funcByName(t, prog, "bump")
	h := localVar(t, sp, "h")

	if got := RecvVar(f); got != h {
		t.Fatalf("RecvVar = %v, want receiver h", got)
	}
	params := ParamVars(f)
	names := make(map[string]bool, len(params))
	for _, p := range params {
		names[p.Name()] = true
	}
	if !names["delta"] || !names["tag"] || len(params) != 2 {
		t.Fatalf("ParamVars = %v, want delta and tag", names)
	}

	// The write target h.in.n roots at the receiver.
	var sel *ast.SelectorExpr
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok && sel == nil {
			sel = s
		}
		return sel == nil
	})
	if sel == nil {
		t.Fatal("fixture must contain a selector")
	}
	if got := RootVar(f.Pkg, sel); got != h {
		t.Fatalf("RootVar(h.in.n...) = %v, want h", got)
	}
}
