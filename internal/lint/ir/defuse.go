package ir

import (
	"go/ast"
	"go/token"
	"go/types"
)

// definition is one static assignment of a value to a variable.
type definition struct {
	v     *types.Var
	rhs   ast.Expr // nil for parameter / range / type-switch defs
	block *Block
	pos   token.Pos
}

// DefUse holds reaching-definition facts for one function: which
// assignments to a variable may reach a given program point. It is a
// may-analysis (union meet), so "the defs reaching this use" is the
// complete set of RHS expressions the variable can hold there.
type DefUse struct {
	f    *Func
	defs []definition
	// byVar indexes the universe by variable.
	byVar map[*types.Var][]int
	in    []*BitSet // reaching defs at block entry
}

// BuildDefUse computes reaching definitions for f.
func BuildDefUse(f *Func) *DefUse {
	d := &DefUse{f: f, byVar: make(map[*types.Var][]int)}
	d.collectDefs()

	problem := Problem{
		Dir:       Forward,
		MeetUnion: true,
		Bits:      len(d.defs),
		Boundary:  d.entryFacts(),
		Transfer: func(b *Block, in *BitSet) *BitSet {
			return d.transferBlock(b, in, nil)
		},
	}
	d.in, _ = Solve(f, problem)
	return d
}

// entryFacts marks parameter (and named-result/receiver) defs live at
// function entry.
func (d *DefUse) entryFacts() *BitSet {
	s := NewBitSet(len(d.defs))
	for i, def := range d.defs {
		if def.block == nil { // parameter-style def
			s.Set(i)
		}
	}
	return s
}

// collectDefs enumerates every definition in the function body and
// its parameters.
func (d *DefUse) collectDefs() {
	info := d.f.Pkg.Info
	addDef := func(v *types.Var, rhs ast.Expr, blk *Block, pos token.Pos) {
		idx := len(d.defs)
		d.defs = append(d.defs, definition{v: v, rhs: rhs, block: blk, pos: pos})
		d.byVar[v] = append(d.byVar[v], idx)
	}

	// Parameters, receiver, named results: defined at entry.
	var fields []*ast.Field
	var ftype *ast.FuncType
	if d.f.Decl != nil {
		ftype = d.f.Decl.Type
		if d.f.Decl.Recv != nil {
			fields = append(fields, d.f.Decl.Recv.List...)
		}
	} else if d.f.Lit != nil {
		ftype = d.f.Lit.Type
	}
	if ftype != nil {
		if ftype.Params != nil {
			fields = append(fields, ftype.Params.List...)
		}
		if ftype.Results != nil {
			fields = append(fields, ftype.Results.List...)
		}
	}
	for _, fld := range fields {
		for _, name := range fld.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				addDef(v, nil, nil, name.Pos())
			}
		}
	}

	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
		return nil
	}

	for _, blk := range d.f.Blocks {
		for _, s := range blk.Nodes {
			switch s := s.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, l := range s.Lhs {
						if v := lhsVar(l); v != nil {
							addDef(v, s.Rhs[i], blk, l.Pos())
						}
					}
				} else if len(s.Rhs) == 1 {
					// x, err := f(): every LHS is defined by the call.
					for _, l := range s.Lhs {
						if v := lhsVar(l); v != nil {
							addDef(v, s.Rhs[0], blk, l.Pos())
						}
					}
				}
			case *ast.DeclStmt:
				gd, ok := s.Decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						addDef(v, rhs, blk, name.Pos())
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if e == nil {
						continue
					}
					if v := lhsVar(e); v != nil {
						addDef(v, nil, blk, e.Pos())
					}
				}
			case *ast.TypeSwitchStmt:
				// `switch y := x.(type)`: implicit per-clause vars are
				// recorded under Info.Implicits; model the assign
				// itself as defining from x.
				if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
					if v := lhsVar(as.Lhs[0]); v != nil {
						addDef(v, as.Rhs[0], blk, as.Lhs[0].Pos())
					}
				}
			case *ast.IncDecStmt:
				if v := lhsVar(s.X); v != nil {
					addDef(v, s.X, blk, s.X.Pos())
				}
			}
		}
	}
}

// transferBlock applies gen/kill for blk. When stop is non-nil the
// walk halts before that statement, yielding the facts holding at its
// entry (used for intra-block precision).
func (d *DefUse) transferBlock(blk *Block, facts *BitSet, stop ast.Stmt) *BitSet {
	for _, s := range blk.Nodes {
		if s == stop {
			break
		}
		for i, def := range d.defs {
			if def.block == blk && def.pos >= s.Pos() && def.pos < s.End() {
				// Kill every other def of the same variable, gen this.
				for _, j := range d.byVar[def.v] {
					facts.Clear(j)
				}
				facts.Set(i)
			}
		}
	}
	return facts
}

// ReachingRHS returns the RHS expressions of every definition of use's
// variable that may reach the statement containing use. A nil entry
// means a parameter/range definition with no syntactic RHS. Returns
// nil when use does not resolve to a function-local variable.
func (d *DefUse) ReachingRHS(use *ast.Ident) []ast.Expr {
	v, ok := d.f.Pkg.Info.Uses[use].(*types.Var)
	if !ok {
		return nil
	}
	stmt, blk := d.f.EnclosingStmt(use.Pos())
	if blk == nil {
		// Not block-resident (nested literal): fall back to every def.
		return d.AllRHS(v)
	}
	facts := d.transferBlock(blk, d.in[blk.Index].Copy(), stmt)
	var out []ast.Expr
	facts.ForEach(func(i int) {
		if d.defs[i].v == v {
			out = append(out, d.defs[i].rhs)
		}
	})
	if out == nil {
		// The variable is defined outside this function (captured or
		// package-level); report every local def as a may-set.
		return d.AllRHS(v)
	}
	return out
}

// AllRHS returns every RHS ever assigned to v in this function,
// flow-insensitively.
func (d *DefUse) AllRHS(v *types.Var) []ast.Expr {
	var out []ast.Expr
	for _, i := range d.byVar[v] {
		out = append(out, d.defs[i].rhs)
	}
	return out
}
