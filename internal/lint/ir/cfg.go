package ir

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BuildFunc constructs the CFG for one function declaration or
// literal. The body is required (declarations without bodies —
// assembly stubs — have no CFG).
func BuildFunc(pkg *SourcePackage, obj types.Object, decl *ast.FuncDecl, lit *ast.FuncLit) *Func {
	f := &Func{Pkg: pkg, Obj: obj, Decl: decl, Lit: lit, stmtBlock: make(map[ast.Stmt]*Block)}
	switch {
	case decl != nil:
		f.Name = funcName(pkg, decl)
		f.Body = decl.Body
	case lit != nil:
		f.Name = litName(pkg, lit)
		f.Body = lit.Body
	}
	b := &cfgBuilder{f: f, labels: make(map[string]*labelFrame)}
	f.Entry = b.newBlock()
	f.Exit = &Block{Index: -1}
	b.cur = f.Entry
	b.stmtList(f.Body.List)
	// Fall off the end of the body: implicit return.
	b.edgeTo(f.Exit)
	f.Exit.Index = len(f.Blocks)
	f.Blocks = append(f.Blocks, f.Exit)
	markReachable(f)
	return f
}

// cfgBuilder threads the "current block" through statement lowering.
type cfgBuilder struct {
	f   *Func
	cur *Block // nil when the current position is unreachable

	// breakTargets / continueTargets are innermost-last stacks of the
	// blocks a plain break/continue jumps to.
	breakTargets    []*Block
	continueTargets []*Block
	labels          map[string]*labelFrame

	// labeledInner names the label wrapping the next loop/switch
	// built, so `continue L` / `break L` resolve to its targets.
	labeledInner string
}

// labelFrame resolves labeled break/continue/goto.
type labelFrame struct {
	// head is the goto target (the labeled statement's first block).
	head *Block
	// brk / cont are set while the labeled loop/switch is being built.
	brk, cont *Block
	// pendingGotos collects forward gotos seen before the label.
	pendingGotos []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// edge links from→to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeTo links the current block to target (no-op when unreachable).
func (b *cfgBuilder) edgeTo(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
}

// startBlock makes target the current block.
func (b *cfgBuilder) startBlock(target *Block) { b.cur = target }

// add appends a statement to the current block. Statements in
// unreachable positions are attached to a fresh orphan block so
// analyzers can still find them (marked unreachable afterwards).
func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, s)
	b.f.stmtBlock[s] = b.cur
	b.recordCalls(s)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s) // the condition is evaluated here
		condBlock := b.cur
		thenBlock := b.newBlock()
		join := b.newBlock()
		edge(condBlock, thenBlock)
		b.startBlock(thenBlock)
		b.stmtList(s.Body.List)
		b.edgeTo(join)
		if s.Else != nil {
			elseBlock := b.newBlock()
			edge(condBlock, elseBlock)
			b.startBlock(elseBlock)
			b.stmt(s.Else)
			b.edgeTo(join)
		} else {
			edge(condBlock, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		head.LoopStmt = s
		b.edgeTo(head)
		b.startBlock(head)
		b.addToBlock(head, s) // condition evaluated at the head
		body := b.newBlock()
		exit := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, exit)
		}
		b.pushLoop(s, exit, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edgeTo(head) // back edge
		b.popLoop()
		b.startBlock(exit)

	case *ast.RangeStmt:
		head := b.newBlock()
		head.LoopStmt = s
		b.edgeTo(head)
		b.startBlock(head)
		b.addToBlock(head, s) // range expression + key/value assignment
		body := b.newBlock()
		exit := b.newBlock()
		edge(head, body)
		edge(head, exit)
		b.pushLoop(s, exit, head)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.edgeTo(head)
		b.popLoop()
		b.startBlock(exit)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		b.add(s)
		selBlock := b.cur
		join := b.newBlock()
		b.pushBreakOnly(s, join)
		for _, clause := range s.Body.List {
			comm := clause.(*ast.CommClause)
			cb := b.newBlock()
			edge(selBlock, cb)
			b.startBlock(cb)
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edgeTo(join)
		}
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successor.
		}
		b.popLoop()
		b.startBlock(join)

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.f.Exit)
		b.startBlock(nil)

	case *ast.BranchStmt:
		b.add(s)
		b.branchStmt(s)

	case *ast.LabeledStmt:
		frame := b.labelFrame(s.Label.Name)
		head := b.newBlock()
		frame.head = head
		for _, g := range frame.pendingGotos {
			edge(g, head)
		}
		frame.pendingGotos = nil
		b.edgeTo(head)
		b.startBlock(head)
		b.labeledInner = s.Label.Name
		b.stmt(s.Stmt)
		b.labeledInner = ""

	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)
		if terminatesFlow(b.f.Pkg, s) {
			b.edgeTo(b.f.Exit)
			b.startBlock(nil)
		}

	default:
		b.add(s)
	}
}

func (b *cfgBuilder) labelFrame(name string) *labelFrame {
	fr, ok := b.labels[name]
	if !ok {
		fr = &labelFrame{}
		b.labels[name] = fr
	}
	return fr
}

func (b *cfgBuilder) pushLoop(s ast.Stmt, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if b.labeledInner != "" {
		fr := b.labelFrame(b.labeledInner)
		fr.brk, fr.cont = brk, cont
		b.labeledInner = ""
	}
}

func (b *cfgBuilder) pushBreakOnly(s ast.Stmt, brk *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, nil)
	if b.labeledInner != "" {
		fr := b.labelFrame(b.labeledInner)
		fr.brk = brk
		b.labeledInner = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			target = b.labelFrame(s.Label.Name).brk
		} else if n := len(b.breakTargets); n > 0 {
			target = b.breakTargets[n-1]
		}
		if target != nil {
			b.edgeTo(target)
		}
		b.startBlock(nil)
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			target = b.labelFrame(s.Label.Name).cont
		} else {
			for i := len(b.continueTargets) - 1; i >= 0; i-- {
				if b.continueTargets[i] != nil {
					target = b.continueTargets[i]
					break
				}
			}
		}
		if target != nil {
			b.edgeTo(target)
		}
		b.startBlock(nil)
	case token.GOTO:
		if s.Label != nil {
			fr := b.labelFrame(s.Label.Name)
			if fr.head != nil {
				b.edgeTo(fr.head)
			} else if b.cur != nil {
				fr.pendingGotos = append(fr.pendingGotos, b.cur)
			}
		}
		b.startBlock(nil)
	case token.FALLTHROUGH:
		// Handled by switchStmt's clause chaining.
	}
}

// switchStmt lowers expression and type switches identically at the
// block level: tag evaluation, one block per case clause, a shared
// join; fallthrough chains a clause into the next.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var body *ast.BlockStmt
	var initStmt ast.Stmt
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		initStmt, body = sw.Init, sw.Body
	case *ast.TypeSwitchStmt:
		initStmt, body = sw.Init, sw.Body
	}
	if initStmt != nil {
		b.stmt(initStmt)
	}
	b.add(s)
	tagBlock := b.cur
	join := b.newBlock()
	b.pushBreakOnly(s, join)

	hasDefault := false
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, cl := range clauses {
		clause := cl.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		edge(tagBlock, blocks[i])
		b.startBlock(blocks[i])
		b.stmtList(clause.Body)
		// fallthrough transfers into the next clause's block.
		if n := len(clause.Body); n > 0 {
			if br, ok := clause.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.edgeTo(blocks[i+1])
				b.startBlock(nil)
				continue
			}
		}
		b.edgeTo(join)
	}
	if !hasDefault {
		edge(tagBlock, join)
	}
	b.popLoop()
	b.startBlock(join)
}

// addToBlock appends s to a specific block (loop headers hold their
// own for/range statement).
func (b *cfgBuilder) addToBlock(blk *Block, s ast.Stmt) {
	blk.Nodes = append(blk.Nodes, s)
	if _, ok := b.f.stmtBlock[s]; !ok {
		b.f.stmtBlock[s] = blk
	}
	b.recordCalls(s)
}

// recordCalls registers every call expression directly inside s
// (not descending into nested function literals).
func (b *cfgBuilder) recordCalls(s ast.Stmt) {
	blk := b.cur
	if blk == nil {
		blk = b.f.stmtBlock[s]
	}
	// Loop headers pass their statement via addToBlock before cur
	// moves; prefer the mapped block.
	if mapped, ok := b.f.stmtBlock[s]; ok {
		blk = mapped
	}
	skipBody := func(n ast.Node) bool {
		_, isLit := n.(*ast.FuncLit)
		return isLit
	}
	// For compound statements (if/for/switch...) only the headline
	// expressions belong to this block; their bodies are lowered into
	// their own blocks and re-visited there. Restrict the walk.
	var exprs []ast.Node
	switch s := s.(type) {
	case *ast.IfStmt:
		exprs = append(exprs, s.Cond)
	case *ast.ForStmt:
		if s.Cond != nil {
			exprs = append(exprs, s.Cond)
		}
	case *ast.RangeStmt:
		exprs = append(exprs, s.X)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			exprs = append(exprs, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		exprs = append(exprs, s.Assign)
	case *ast.SelectStmt:
		// Comm statements are added to clause blocks separately.
	case *ast.LabeledStmt:
		// Inner statement handled on its own.
	default:
		exprs = append(exprs, s)
	}
	for _, root := range exprs {
		if root == nil {
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if skipBody(n) {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				b.f.Calls = append(b.f.Calls, &CallSite{Caller: b.f, Block: blk, Call: call})
			}
			return true
		})
	}
}

// terminatesFlow reports whether a simple statement never lets
// control continue: panic(...), os.Exit(...), runtime.Goexit().
func terminatesFlow(pkg *SourcePackage, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "panic" {
			if obj := pkg.Info.Uses[fn]; obj == nil || obj.Parent() == types.Universe {
				return true
			}
		}
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			if obj, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				path := obj.Imported().Path()
				name := fn.Sel.Name
				if (path == "os" && name == "Exit") || (path == "runtime" && name == "Goexit") {
					return true
				}
			}
		}
	}
	return false
}

// markReachable flags blocks no entry path reaches.
func markReachable(f *Func) {
	seen := make([]bool, len(f.Blocks))
	var stack []*Block
	stack = append(stack, f.Entry)
	seen[f.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	for _, blk := range f.Blocks {
		blk.unreachable = !seen[blk.Index]
	}
}
