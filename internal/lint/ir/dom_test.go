package ir

import "testing"

// TestDominatorsSingleBlock pins the degenerate CFG: a straight-line
// body lowers to the entry block plus the synthetic exit, and the
// entry's dominator set is exactly itself.
func TestDominatorsSingleBlock(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func add(a, b int) int {
	c := a + b
	return c
}`)
	f := funcByName(t, prog, "add")
	dom := Dominators(f)

	entry := f.Entry
	count := 0
	dom[entry.Index].ForEach(func(int) { count++ })
	if count != 1 || !dom[entry.Index].Has(entry.Index) {
		t.Fatalf("entry dominator set = %d blocks, want exactly itself", count)
	}
	for _, b := range f.Blocks {
		if !Dominates(dom, entry, b) {
			t.Errorf("entry must dominate block %d", b.Index)
		}
		if len(b.Nodes) > 0 && b != entry {
			t.Errorf("straight-line body spread statements into block %d", b.Index)
		}
	}
}

// TestDominatorsDiamond pins the if/else shape: neither arm dominates
// the join, while entry dominates everything.
func TestDominatorsDiamond(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func pick(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	f := funcByName(t, prog, "pick")
	dom := Dominators(f)

	then := blockContaining(t, f, "x = 1")
	els := blockContaining(t, f, "x = 2")
	join := blockContaining(t, f, "return x")
	for _, arm := range []*Block{then, els} {
		if Dominates(dom, arm, join) {
			t.Errorf("branch arm %d must not dominate the join", arm.Index)
		}
	}
	if !Dominates(dom, f.Entry, join) || !Dominates(dom, f.Entry, then) || !Dominates(dom, f.Entry, els) {
		t.Error("entry must dominate both arms and the join")
	}
}

// TestDominatorsSelfLoop pins a body block that is (transitively) its
// own predecessor: it must still be strictly dominated by the entry
// and never dominate it back.
func TestDominatorsSelfLoop(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func spin() {
	n := 0
	for {
		n++
	}
}`)
	f := funcByName(t, prog, "spin")
	dom := Dominators(f)

	body := blockContaining(t, f, "n++")
	if !reaches(body, body) {
		t.Fatal("loop body must be in a CFG cycle with itself")
	}
	if !Dominates(dom, f.Entry, body) {
		t.Error("entry must dominate the loop body")
	}
	if Dominates(dom, body, f.Entry) {
		t.Error("loop body must not dominate the entry")
	}
	// A block always dominates itself.
	if !Dominates(dom, body, body) {
		t.Error("self-domination must hold inside the cycle")
	}
}

// TestDominatorsUnreachableBlock pins the documented ⊤ convention:
// code after a return keeps the full dominator set ("no constraint"),
// and the builder marks it unreachable.
func TestDominatorsUnreachableBlock(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func dead() int {
	return 1
	x := 2
	return x
}`)
	f := funcByName(t, prog, "dead")
	dom := Dominators(f)

	u := blockContaining(t, f, "x := 2")
	if !u.Unreachable() {
		t.Fatal("block after return must be marked unreachable")
	}
	for _, b := range f.Blocks {
		if !Dominates(dom, b, u) {
			t.Errorf("unreachable block must keep top: missing dominator %d", b.Index)
		}
	}
	if Dominates(dom, u, f.Entry) {
		t.Error("unreachable block must not dominate the entry")
	}
}
