package ir

// BitSet is a fixed-capacity bit vector used as the dataflow lattice
// element. The zero value of makeBitSet(n) is the empty set.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set with capacity for n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

func (s *BitSet) Len() int { return s.n }

func (s *BitSet) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

func (s *BitSet) Set(i int) {
	if i >= 0 && i < s.n {
		s.words[i/64] |= 1 << uint(i%64)
	}
}

func (s *BitSet) Clear(i int) {
	if i >= 0 && i < s.n {
		s.words[i/64] &^= 1 << uint(i%64)
	}
}

// Copy returns an independent copy of s.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Fill sets every bit (the ⊤ element for intersection problems).
func (s *BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask the tail so Equal stays meaningful.
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << uint(rem)) - 1
	}
}

// UnionWith s |= o; reports whether s changed.
func (s *BitSet) UnionWith(o *BitSet) bool {
	changed := false
	for i := range s.words {
		next := s.words[i] | o.words[i]
		if next != s.words[i] {
			s.words[i] = next
			changed = true
		}
	}
	return changed
}

// IntersectWith s &= o; reports whether s changed.
func (s *BitSet) IntersectWith(o *BitSet) bool {
	changed := false
	for i := range s.words {
		next := s.words[i] & o.words[i]
		if next != s.words[i] {
			s.words[i] = next
			changed = true
		}
	}
	return changed
}

// DiffWith s &^= o.
func (s *BitSet) DiffWith(o *BitSet) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports set equality.
func (s *BitSet) Equal(o *BitSet) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (s *BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			bit := w & -w
			i := wi*64 + trailingZeros(bit)
			fn(i)
			w &^= bit
		}
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// Direction of a dataflow problem.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem is a classic iterative bit-vector dataflow problem over a
// function's CFG. Facts are indices into a problem-defined universe.
type Problem struct {
	Dir Direction
	// MeetUnion selects the meet operator: true = union (may
	// analyses: reaching defs, "armed on some path"), false =
	// intersection (must analyses: dominators, available facts).
	MeetUnion bool
	// Bits is the size of the fact universe.
	Bits int
	// Boundary is the entry fact (Forward: entry block in-set;
	// Backward: exit block out-set). Nil means empty.
	Boundary *BitSet
	// Transfer computes out = fn(block, in) by mutating and returning
	// the provided set (already a copy of the meet result).
	Transfer func(b *Block, in *BitSet) *BitSet
}

// Solve runs the worklist algorithm to a fixed point and returns the
// in/out fact sets per block (indexed by Block.Index). For Backward
// problems "in" is the fact set at block entry in execution order —
// i.e. the solver's output — and "out" the set at block exit.
func Solve(f *Func, p Problem) (in, out []*BitSet) {
	n := len(f.Blocks)
	in = make([]*BitSet, n)
	out = make([]*BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(p.Bits)
		out[i] = NewBitSet(p.Bits)
		if !p.MeetUnion {
			in[i].Fill()
			out[i].Fill()
		}
	}

	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBitSet(p.Bits)
	}

	// Normalize direction: treat everything as forward over
	// pred/succ selected by Dir.
	preds := func(b *Block) []*Block { return b.Preds }
	succs := func(b *Block) []*Block { return b.Succs }
	start := f.Entry
	if p.Dir == Backward {
		preds, succs = succs, preds
		start = f.Exit
	}

	work := make([]*Block, 0, n)
	inWork := make([]bool, n)
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range f.Blocks {
		push(b)
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		// Meet over predecessors (in normalized direction).
		meet := NewBitSet(p.Bits)
		if b == start {
			meet = boundary.Copy()
		} else if ps := preds(b); len(ps) == 0 {
			// Unreachable in this direction: empty for union,
			// ⊤ for intersection (no constraint).
			if !p.MeetUnion {
				meet.Fill()
			}
		} else {
			if !p.MeetUnion {
				meet.Fill()
			}
			for _, pb := range ps {
				if p.MeetUnion {
					meet.UnionWith(out[pb.Index])
				} else {
					meet.IntersectWith(out[pb.Index])
				}
			}
		}
		in[b.Index] = meet
		next := p.Transfer(b, meet.Copy())
		if !next.Equal(out[b.Index]) {
			out[b.Index] = next
			for _, sb := range succs(b) {
				push(sb)
			}
		}
	}

	if p.Dir == Backward {
		// Present results in execution order: in = facts holding at
		// block entry = the solver's "out" in reversed orientation.
		return out, in
	}
	return in, out
}
