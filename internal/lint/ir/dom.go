package ir

// Dominators computes the dominator sets for f's blocks with the
// classic iterative bit-vector formulation: a block B dominates block
// C when every path from entry to C passes through B. The result is
// indexed by Block.Index; dom[c].Has(b) means block b dominates block
// c. Unreachable blocks dominate nothing and are dominated by
// everything (⊤), which analyzers should treat as "no constraint".
func Dominators(f *Func) []*BitSet {
	n := len(f.Blocks)
	dom := make([]*BitSet, n)
	for i := 0; i < n; i++ {
		dom[i] = NewBitSet(n)
		dom[i].Fill()
	}
	entry := f.Entry.Index
	dom[entry] = NewBitSet(n)
	dom[entry].Set(entry)

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			if b.Index == entry {
				continue
			}
			next := NewBitSet(n)
			next.Fill()
			any := false
			for _, p := range b.Preds {
				next.IntersectWith(dom[p.Index])
				any = true
			}
			if !any {
				continue // unreachable: keep ⊤
			}
			next.Set(b.Index)
			if !next.Equal(dom[b.Index]) {
				dom[b.Index] = next
				changed = true
			}
		}
	}
	return dom
}

// Dominates reports whether block a dominates block b given the sets
// from Dominators.
func Dominates(dom []*BitSet, a, b *Block) bool {
	return dom[b.Index].Has(a.Index)
}
