package ir

import (
	"go/ast"
	"strings"
	"testing"
)

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(130)
	b := NewBitSet(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	b.Set(64)
	b.Set(100)

	if !a.Has(129) || a.Has(128) {
		t.Fatalf("Set/Has across word boundaries broken")
	}
	c := a.Copy()
	if changed := c.UnionWith(b); !changed {
		t.Fatalf("union should report change")
	}
	for _, i := range []int{0, 64, 100, 129} {
		if !c.Has(i) {
			t.Fatalf("union missing bit %d", i)
		}
	}
	d := a.Copy()
	d.IntersectWith(b)
	if !d.Has(64) || d.Has(0) || d.Has(129) {
		t.Fatalf("intersection wrong")
	}
	d.Clear(64)
	if !d.Empty() {
		t.Fatalf("expected empty after clearing the only bit")
	}
	full := NewBitSet(130)
	full.Fill()
	got := 0
	full.ForEach(func(int) { got++ })
	if got != 130 {
		t.Fatalf("Fill+ForEach visited %d bits, want 130", got)
	}
	if full.Has(130) || full.Has(-1) {
		t.Fatalf("out-of-range Has must be false")
	}
}

// TestSolveForwardMay checks a reaching-definitions-style forward/
// union problem: facts generated in one branch survive to the join.
func TestSolveForwardMay(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	fn := funcByName(t, prog, "f")
	du := BuildDefUse(fn)

	ret := blockContaining(t, fn, "return x")
	var use *ast.Ident
	ast.Inspect(ret.Nodes[len(ret.Nodes)-1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" {
			use = id
		}
		return true
	})
	rhs := du.ReachingRHS(use)
	if len(rhs) != 2 {
		t.Fatalf("got %d reaching defs at the join, want 2 (both branches)", len(rhs))
	}
	// Inside the then-branch, only the re-assignment reaches.
	_ = rhs
}

// TestSolveKill checks that a later def kills an earlier one on a
// straight-line path.
func TestSolveKill(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func g() int {
	x := 1
	x = 2
	return x
}`)
	fn := funcByName(t, prog, "g")
	du := BuildDefUse(fn)
	ret := blockContaining(t, fn, "return x")
	var use *ast.Ident
	ast.Inspect(ret.Nodes[len(ret.Nodes)-1], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" {
			use = id
		}
		return true
	})
	rhs := du.ReachingRHS(use)
	if len(rhs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (the overwrite)", len(rhs))
	}
	if lit, ok := rhs[0].(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Fatalf("surviving def is not the overwrite")
	}
}

// TestSolveLoopFixpoint: defs flowing around a back edge reach the
// loop header without infinite iteration.
func TestSolveLoopFixpoint(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func h(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = x + i
	}
	return x
}`)
	fn := funcByName(t, prog, "h")
	du := BuildDefUse(fn)
	// The use of x inside the loop body sees both the init and the
	// loop-carried def.
	body := blockContaining(t, fn, "x = x + i")
	var use *ast.Ident
	ast.Inspect(body.Nodes[0], func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		ast.Inspect(as.Rhs[0], func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == "x" {
				use = id
			}
			return true
		})
		return true
	})
	rhs := du.ReachingRHS(use)
	if len(rhs) != 2 {
		t.Fatalf("loop body use sees %d defs, want 2 (init + carried)", len(rhs))
	}
}

// TestSolveBackwardMust exercises the backward/intersection mode with
// a tiny liveness-style problem: a fact holds at a block iff it holds
// on every path to the exit.
func TestSolveBackwardMust(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func b(c bool) int {
	x := 0
	if c {
		x = 1
		return x
	}
	x = 2
	return x
}`)
	fn := funcByName(t, prog, "b")

	// Universe: one fact per block, "this block lies on the path".
	// Transfer: out ∪ {self}; backward+union reachability-to-exit.
	bits := len(fn.Blocks)
	in, _ := Solve(fn, Problem{
		Dir:       Backward,
		MeetUnion: true,
		Bits:      bits,
		Transfer: func(blk *Block, facts *BitSet) *BitSet {
			facts.Set(blk.Index)
			return facts
		},
	})
	// Every reachable block with statements must be able to reach exit.
	for _, blk := range fn.Blocks {
		if blk.Unreachable() || blk == fn.Exit {
			continue
		}
		if !in[blk.Index].Has(blk.Index) {
			t.Fatalf("block %d missing its own backward fact", blk.Index)
		}
	}

	// Must-mode: a fact injected only on ONE return path does not
	// survive the intersection at the branch point.
	r1 := blockContaining(t, fn, "return x")
	inMust, _ := Solve(fn, Problem{
		Dir:       Backward,
		MeetUnion: false,
		Bits:      1,
		Transfer: func(blk *Block, facts *BitSet) *BitSet {
			if blk == r1 {
				facts.Set(0)
			}
			return facts
		},
	})
	condBlock := blockContaining(t, fn, "if c")
	if inMust[condBlock.Index].Has(0) {
		t.Fatalf("must-fact present on only one path survived the meet")
	}
}

func TestSummaryCacheCycles(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}`)
	even := funcByName(t, prog, "even")
	odd := funcByName(t, prog, "odd")

	cache := NewSummaryCache()
	computes := 0
	var query func(f *Func) bool
	query = func(f *Func) bool {
		return cache.Memo(f, "test", false, func() bool {
			computes++
			// Recurse into every resolved callee: cycles must hit the
			// visiting guard, not recurse forever.
			for _, cs := range f.Calls {
				if cs.Callee != nil {
					query(cs.Callee)
				}
			}
			return true
		})
	}
	if !query(even) {
		t.Fatalf("summary query returned cycle default at top level")
	}
	if computes != 2 {
		t.Fatalf("computed %d summaries, want 2 (even, odd once each)", computes)
	}
	// Second query hits the cache.
	before := computes
	query(odd)
	if computes != before {
		t.Fatalf("cache miss on repeat query")
	}
}

func TestFuncNaming(t *testing.T) {
	_, prog := parseFixture(t, `package fixture
type T struct{}
func (T) V()       {}
func (t *T) P()    {}
func Plain()       {}
var f = func() {}
`)
	for _, want := range []string{"fixture.(T).V", "fixture.(*T).P", "fixture.Plain"} {
		funcByName(t, prog, want)
	}
	lits := 0
	for _, fn := range prog.Funcs {
		if fn.Lit != nil && strings.Contains(fn.Name, "func@") {
			lits++
		}
	}
	if lits != 1 {
		t.Fatalf("package-level literal not built, got %d", lits)
	}
}
