package ir

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the interprocedural taint engine the wire-facing
// analyzers (wiretaint, boundedalloc, boundedchan) share. It answers
// one question per value: can a remote peer have chosen this number?
//
// The lattice is three-point — Bounded < Unknown < Wire — plus a
// parameter mask that defers the answer to the call sites:
//
//   - Bounded: a constant, a small fixed-width integer, len/cap of
//     in-memory data, or a value a dominating guard clamped.
//   - Unknown: the engine cannot see where the value came from. In a
//     pessimistic client (boundedalloc) unknown means "the peer picked
//     it"; in the wire client unknown stays silent because the finding
//     could not name its source.
//   - Wire: the value provably derives from bytes that crossed the
//     trust boundary (a conn read, a decode result, a tainted entry
//     parameter), with the source recorded for the witness chain.
//
// Params is a bitmask of the enclosing function's parameters the value
// copies its taint from: a parameter starts as {Bounded, 1<<i}, and a
// sink fed such a value becomes an obligation that Run resolves by
// walking the recorded call-site arguments (ParamWire), producing the
// interprocedural witness chain. A clamp anywhere clears the mask —
// which is exactly how a guard inside a callee sanitizes every caller.
//
// Per-function facts (result taint, pointee effects, recorded
// call-site arguments, sink obligations) are memoized summaries;
// recursion through the call graph is broken with a visiting set the
// same way SummaryCache does it, so cyclic queries see a conservative
// stub that is never cached.

// Taint is the value lattice: Bounded < Unknown < Wire.
type Taint uint8

const (
	// TaintBounded: provably capped independent of peer input.
	TaintBounded Taint = iota
	// TaintUnknown: provenance invisible to the engine.
	TaintUnknown
	// TaintWire: derives from bytes a remote peer controls.
	TaintWire
)

func (t Taint) String() string {
	switch t {
	case TaintBounded:
		return "bounded"
	case TaintUnknown:
		return "unknown"
	case TaintWire:
		return "wire"
	}
	return "?"
}

// recvParam is the Params bit standing for the method receiver.
const recvParam = 63

// TVal is one value's taint: the lattice point, the parameter mask the
// value inherits taint through, and — when wire — the source that
// tainted it.
type TVal struct {
	T      Taint
	Params uint64
	Src    string
	SrcPos token.Pos
}

// BoundedVal is the lattice bottom.
func BoundedVal() TVal { return TVal{T: TaintBounded} }

// UnknownVal is the no-provenance point.
func UnknownVal() TVal { return TVal{T: TaintUnknown} }

// WireVal marks a value as peer-controlled, recording its source.
func WireVal(src string, pos token.Pos) TVal {
	return TVal{T: TaintWire, Src: src, SrcPos: pos}
}

// Join is the lattice join: max taint, union of parameter masks. When
// both sides are wire the earlier source wins, keeping witness chains
// deterministic regardless of evaluation order.
func (a TVal) Join(b TVal) TVal {
	out := TVal{T: a.T, Params: a.Params | b.Params, Src: a.Src, SrcPos: a.SrcPos}
	if b.T > out.T {
		out.T = b.T
	}
	switch {
	case a.T == TaintWire && b.T == TaintWire:
		if b.SrcPos != token.NoPos && (a.SrcPos == token.NoPos || b.SrcPos < a.SrcPos) {
			out.Src, out.SrcPos = b.Src, b.SrcPos
		}
	case a.T == TaintWire:
		// keep a's source
	case b.T == TaintWire:
		out.Src, out.SrcPos = b.Src, b.SrcPos
	}
	return out
}

// BoundedStrict reports whether the value is bounded with no deferred
// parameter dependency — the only verdict a pessimistic client trusts.
func (a TVal) BoundedStrict() bool { return a.T == TaintBounded && a.Params == 0 }

// wireish reports whether a value is wire now or could resolve to wire
// through a parameter.
func wireish(v TVal) bool { return v.T == TaintWire || v.Params != 0 }

// TaintMode selects the client contract.
type TaintMode uint8

const (
	// ModePessimistic is boundedalloc's contract: no content tracking
	// (element/field reads and external results are Unknown), loops
	// walked once, and every recorded sink whose value is not strictly
	// bounded is a finding. This pins the original flow-sensitive
	// boundedness walk, with one deliberate upgrade: module-local call
	// results resolve through callee summaries, so a clamp inside a
	// callee now bounds the call site.
	ModePessimistic TaintMode = iota
	// ModeWire is wiretaint's contract: sources inject TaintWire,
	// element/field reads propagate it, loops run to a cheap two-pass
	// fixpoint, and only sinks that provably reach wire (directly or
	// through resolved parameter obligations) are findings.
	ModeWire
)

// SinkKind classifies what resource a tainted value would size.
type SinkKind uint8

const (
	// SinkAlloc: make() slice length/capacity or map size hint.
	SinkAlloc SinkKind = iota
	// SinkLoop: a loop trip count (for-condition bound, range-over-int).
	SinkLoop
	// SinkMapKey: an insertion key into a long-lived map.
	SinkMapKey
	// SinkSleep: a time.Sleep/timer/deadline duration.
	SinkSleep
	// SinkSpawn: a goroutine started inside a wire-bounded loop.
	SinkSpawn
	// SinkChanCap: make(chan) capacity.
	SinkChanCap
	// SinkReadAll: io.ReadAll, pessimistic mode only (no bound at all).
	SinkReadAll
)

func (k SinkKind) String() string {
	switch k {
	case SinkAlloc:
		return "alloc"
	case SinkLoop:
		return "loop"
	case SinkMapKey:
		return "mapkey"
	case SinkSleep:
		return "sleep"
	case SinkSpawn:
		return "spawn"
	case SinkChanCap:
		return "chancap"
	case SinkReadAll:
		return "readall"
	}
	return "?"
}

// SinkRecord is one sink observation inside a function: what kind of
// resource, where, the offending expression, and the taint that
// reached it at walk time.
type SinkRecord struct {
	Kind SinkKind
	Pos  token.Pos
	Fn   *Func
	Expr string
	Val  TVal
}

// TaintSink is a resolved finding: a sink whose value is (or resolved
// to) peer-controlled, with the interprocedural witness chain when the
// taint entered through parameters.
type TaintSink struct {
	SinkRecord
	// Chain lists, sink-outward, how the taint crossed call sites:
	// "param n of F ← G (file:line)".
	Chain []string
}

// FuncTaint is the memoized per-function summary.
type FuncTaint struct {
	// Results holds the joined taint of each result position.
	Results []TVal
	// Effects is the mask of parameters (and recvParam) whose pointee
	// content this function wire-taints (e.g. Read(buf) fills buf with
	// peer bytes).
	Effects   uint64
	EffectSrc string
	EffectPos token.Pos
	// ArgVals / RecvVals record the taint of every resolved call
	// site's arguments, the raw material for ParamWire queries.
	ArgVals  map[*CallSite][]TVal
	RecvVals map[*CallSite]TVal
	// Sinks are the sink observations recorded while walking.
	Sinks []SinkRecord

	sinkIdx map[sinkKey]int
}

type sinkKey struct {
	pos  token.Pos
	kind SinkKind
}

// taintMaxDepth bounds interprocedural recursion (cycles are broken by
// the visiting set; the depth guard is a backstop).
const taintMaxDepth = 64

// TaintAnalysis is one engine run over a Program.
type TaintAnalysis struct {
	Prog *Program
	Mode TaintMode

	// SourceCall classifies a call as a trust-boundary source (wire
	// mode). src names the source; taintsResult taints every result;
	// taintArgs lists argument indices whose pointee content becomes
	// wire (conn.Read(buf) → [0]). ok=false falls through to normal
	// call handling.
	SourceCall func(pkg *SourcePackage, call *ast.CallExpr, callee types.Object) (src string, taintsResult bool, taintArgs []int, ok bool)

	// EntryParam marks a parameter as wire at function entry (wire
	// mode): the trust-boundary roots, e.g. the []byte input of an
	// exported decoder in a wire package.
	EntryParam func(f *Func, i int, v *types.Var) (src string, ok bool)

	// CallCheck, when set, replaces the pessimistic-mode default sink
	// checks: it receives every call expression once, plus a predicate
	// evaluating strict boundedness in the current flow state. This is
	// how boundedchan reuses the guard/clamp tracking for channel
	// capacities.
	CallCheck func(f *Func, call *ast.CallExpr, bounded func(ast.Expr) bool)

	facts    map[*Func]*FuncTaint
	visiting map[*Func]bool
	depth    int
	escapes  map[*Func]*Escape
	pwMemo   map[pwKey]pwResult
	pwVis    map[pwKey]bool
}

type pwKey struct {
	f   *Func
	idx int
}

type pwResult struct {
	val   TVal
	chain []string
	ok    bool
}

func (a *TaintAnalysis) init() {
	if a.facts == nil {
		a.facts = make(map[*Func]*FuncTaint)
		a.visiting = make(map[*Func]bool)
		a.escapes = make(map[*Func]*Escape)
		a.pwMemo = make(map[pwKey]pwResult)
		a.pwVis = make(map[pwKey]bool)
	}
}

// Facts returns f's taint summary, computing and memoizing it on first
// use. A query that cycles back into an in-progress computation (or
// exceeds the depth bound) gets an empty stub that is NOT cached, so a
// later top-level query recomputes properly.
func (a *TaintAnalysis) Facts(f *Func) *FuncTaint {
	a.init()
	if ft, ok := a.facts[f]; ok {
		return ft
	}
	if a.visiting[f] || a.depth >= taintMaxDepth {
		return &FuncTaint{}
	}
	a.visiting[f] = true
	a.depth++
	ft := a.compute(f)
	a.depth--
	delete(a.visiting, f)
	a.facts[f] = ft
	return ft
}

func (a *TaintAnalysis) escapeOf(f *Func) *Escape {
	if e, ok := a.escapes[f]; ok {
		return e
	}
	e := BuildEscape(f)
	a.escapes[f] = e
	return e
}

// Run computes facts for every function and resolves sink obligations
// into findings: pessimistic mode reports every sink not strictly
// bounded; wire mode reports sinks whose value is wire, or whose
// parameter mask resolves to wire through the recorded call-site
// arguments (yielding the witness chain). Results are position-sorted.
func (a *TaintAnalysis) Run() []TaintSink {
	a.init()
	for _, f := range a.Prog.Funcs {
		a.Facts(f)
	}
	var out []TaintSink
	for _, f := range a.Prog.Funcs {
		ft := a.facts[f]
		if ft == nil {
			continue
		}
		for _, s := range ft.Sinks {
			switch a.Mode {
			case ModePessimistic:
				if !s.Val.BoundedStrict() {
					out = append(out, TaintSink{SinkRecord: s})
				}
			case ModeWire:
				if s.Val.T == TaintWire {
					out = append(out, TaintSink{SinkRecord: s})
				} else if s.Val.Params != 0 {
					if val, chain, ok := a.paramsWire(f, s.Val.Params); ok {
						rec := s
						rec.Val = val
						out = append(out, TaintSink{SinkRecord: rec, Chain: chain})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// ParamWire reports whether parameter idx of f (recvParam for the
// receiver) receives a wire-tainted argument at any call site,
// returning the wire value and the sink-outward witness chain.
func (a *TaintAnalysis) ParamWire(f *Func, idx int) (TVal, []string, bool) {
	a.init()
	key := pwKey{f: f, idx: idx}
	if r, ok := a.pwMemo[key]; ok {
		return r.val, r.chain, r.ok
	}
	if a.pwVis[key] {
		return TVal{}, nil, false
	}
	a.pwVis[key] = true
	val, chain, ok := a.paramWireUncached(f, idx)
	delete(a.pwVis, key)
	a.pwMemo[key] = pwResult{val: val, chain: chain, ok: ok}
	return val, chain, ok
}

func (a *TaintAnalysis) paramWireUncached(f *Func, idx int) (TVal, []string, bool) {
	for _, cs := range a.Prog.Callers[f] {
		ft := a.facts[cs.Caller]
		if ft == nil {
			continue
		}
		var av TVal
		have := false
		if idx == recvParam {
			av, have = ft.RecvVals[cs]
		} else if args, ok := ft.ArgVals[cs]; ok {
			av, have = argForParam(f, idx, args)
		}
		if !have {
			continue
		}
		link := fmt.Sprintf("param %s of %s ← %s (%s)",
			paramName(f, idx), f.Name, cs.Caller.Name, shortPos(f.Pkg.Fset, cs.Call.Pos()))
		if av.T == TaintWire {
			return av, []string{link}, true
		}
		if av.Params != 0 {
			if val, chain, ok := a.paramsWire(cs.Caller, av.Params); ok {
				return val, append([]string{link}, chain...), true
			}
		}
	}
	return TVal{}, nil, false
}

// paramsWire resolves a whole parameter mask: the first bit that
// resolves to wire wins.
func (a *TaintAnalysis) paramsWire(f *Func, mask uint64) (TVal, []string, bool) {
	for i := 0; i < 64; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if val, chain, ok := a.ParamWire(f, i); ok {
			return val, chain, ok
		}
	}
	return TVal{}, nil, false
}

// argForParam maps a parameter index onto recorded argument values,
// folding a variadic tail into its single parameter.
func argForParam(f *Func, idx int, args []TVal) (TVal, bool) {
	sig := funcSig(f)
	if sig != nil && sig.Variadic() && idx == sig.Params().Len()-1 {
		if idx >= len(args) {
			return BoundedVal(), true // empty variadic call
		}
		out := args[idx]
		for _, v := range args[idx+1:] {
			out = out.Join(v)
		}
		return out, true
	}
	if idx < len(args) {
		return args[idx], true
	}
	return TVal{}, false
}

func paramName(f *Func, idx int) string {
	if idx == recvParam {
		return "receiver"
	}
	params := ParamVars(f)
	if idx < len(params) && params[idx] != nil {
		return params[idx].Name()
	}
	return fmt.Sprintf("#%d", idx)
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func funcSig(f *Func) *types.Signature {
	if f.Obj != nil {
		if s, ok := f.Obj.Type().(*types.Signature); ok {
			return s
		}
	}
	if f.Lit != nil {
		if tv, ok := f.Pkg.Info.Types[f.Lit]; ok {
			if s, ok := tv.Type.(*types.Signature); ok {
				return s
			}
		}
	}
	return nil
}

// compute walks f's body flow-sensitively and assembles its summary.
func (a *TaintAnalysis) compute(f *Func) *FuncTaint {
	ft := &FuncTaint{
		ArgVals:  make(map[*CallSite][]TVal),
		RecvVals: make(map[*CallSite]TVal),
		sinkIdx:  make(map[sinkKey]int),
	}
	if f.Body == nil {
		return ft
	}
	w := &taintWalker{
		a:       a,
		f:       f,
		ft:      ft,
		csOf:    make(map[*ast.CallExpr]*CallSite, len(f.Calls)),
		pidx:    make(map[*types.Var]int),
		checked: make(map[*ast.CallExpr]bool),
	}
	for _, cs := range f.Calls {
		w.csOf[cs.Call] = cs
	}
	w.resultVars, w.numResults = resultInfo(f)

	state := make(taintState)
	params := ParamVars(f)
	for i, p := range params {
		if p == nil || i >= recvParam {
			continue
		}
		state[p] = TVal{T: TaintBounded, Params: 1 << i}
		w.pidx[p] = i
	}
	if rv := RecvVar(f); rv != nil {
		state[rv] = TVal{T: TaintBounded, Params: 1 << recvParam}
		w.pidx[rv] = recvParam
	}
	if a.Mode == ModeWire && a.EntryParam != nil {
		for i, p := range params {
			if p == nil {
				continue
			}
			if src, ok := a.EntryParam(f, i, p); ok {
				state[p] = WireVal(src, p.Pos())
			}
		}
	}
	w.walkStmts(f.Body.List, state)
	return ft
}

func resultInfo(f *Func) (vars []*types.Var, n int) {
	var ftype *ast.FuncType
	if f.Decl != nil {
		ftype = f.Decl.Type
	} else {
		ftype = f.Lit.Type
	}
	if ftype.Results == nil {
		return nil, 0
	}
	for _, fl := range ftype.Results.List {
		if len(fl.Names) == 0 {
			vars = append(vars, nil)
			n++
			continue
		}
		for _, nm := range fl.Names {
			v, _ := f.Pkg.Info.Defs[nm].(*types.Var)
			vars = append(vars, v)
			n++
		}
	}
	return vars, n
}

// taintState maps in-scope objects to their current taint. Absent
// means Unknown.
type taintState map[types.Object]TVal

func cloneState(s taintState) taintState {
	c := make(taintState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinStates is the branch-merge join; a variable tracked on only one
// side joins with Unknown (matching the original intersect semantics:
// bounded only when bounded on both paths, wire when wire on either).
func joinStates(a, b taintState) taintState {
	out := make(taintState, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = va.Join(vb)
		} else {
			out[k] = va.Join(UnknownVal())
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = vb.Join(UnknownVal())
		}
	}
	return out
}

func replaceState(dst, src taintState) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}

type taintWalker struct {
	a    *TaintAnalysis
	f    *Func
	ft   *FuncTaint
	csOf map[*ast.CallExpr]*CallSite
	pidx map[*types.Var]int

	resultVars []*types.Var
	numResults int

	// loopTaint stacks the trip-count taint of enclosing wire-bounded
	// loops, for the spawn sink.
	loopTaint []TVal

	// checked dedupes CallCheck hook firings per call node.
	checked map[*ast.CallExpr]bool
}

func (w *taintWalker) record(kind SinkKind, pos token.Pos, expr string, val TVal) {
	key := sinkKey{pos: pos, kind: kind}
	if i, ok := w.ft.sinkIdx[key]; ok {
		w.ft.Sinks[i].Val = w.ft.Sinks[i].Val.Join(val)
		return
	}
	w.ft.sinkIdx[key] = len(w.ft.Sinks)
	w.ft.Sinks = append(w.ft.Sinks, SinkRecord{Kind: kind, Pos: pos, Fn: w.f, Expr: expr, Val: val})
}

// lookup resolves an object's current taint. In wire mode a miss on a
// reference-typed variable falls back to its tight alias class: a
// reslice of a wire buffer is the same wire buffer.
func (w *taintWalker) lookup(obj types.Object, state taintState) TVal {
	if v, ok := state[obj]; ok {
		return v
	}
	if w.a.Mode == ModeWire {
		if tv, ok := obj.(*types.Var); ok && isRefLike(tv.Type()) {
			esc := w.a.escapeOf(w.f)
			out := UnknownVal()
			found := false
			for o, v := range state {
				ov, ok := o.(*types.Var)
				if !ok || ov == tv {
					continue
				}
				if esc.MayAliasTight(tv, ov) {
					out = out.Join(v)
					found = true
				}
			}
			if found {
				return out
			}
		}
	}
	return UnknownVal()
}

// walkStmts processes a statement list sequentially, mutating state in
// place as facts are established.
func (w *taintWalker) walkStmts(list []ast.Stmt, state taintState) {
	for _, stmt := range list {
		w.walkStmt(stmt, state)
	}
}

func (w *taintWalker) walkStmt(stmt ast.Stmt, state taintState) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scan(rhs, state)
		}
		w.applyAssign(s, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.scan(v, state)
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						if obj := w.f.Pkg.Info.Defs[name]; obj != nil {
							state[obj] = w.eval(vs.Values[i], state)
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		w.walkIf(s, state)
	case *ast.ForStmt:
		w.walkFor(s, state)
	case *ast.RangeStmt:
		w.walkRange(s, state)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			w.scan(s.Tag, state)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				inner := cloneState(state)
				if s.Tag == nil {
					// Tagless switch: a clause body runs under its own
					// condition's truth.
					for _, cond := range clause.List {
						w.applyFacts(inner, state, cond, true)
					}
				}
				w.walkStmts(clause.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CaseClause); ok {
				w.walkStmts(inner.Body, cloneState(state))
				return false
			}
			return true
		})
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				if clause.Comm != nil {
					w.walkStmt(clause.Comm, cloneState(state))
				}
				w.walkStmts(clause.Body, cloneState(state))
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, state)
	case *ast.ExprStmt:
		w.scan(s.X, state)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, state)
		}
		w.addReturn(s, state)
	case *ast.DeferStmt:
		w.scan(s.Call, state)
	case *ast.GoStmt:
		w.scan(s.Call, state)
		if w.a.Mode == ModeWire && len(w.loopTaint) > 0 {
			top := w.loopTaint[0]
			for _, v := range w.loopTaint[1:] {
				top = top.Join(v)
			}
			w.record(SinkSpawn, s.Pos(), types.ExprString(s.Call.Fun), top)
		}
	case *ast.SendStmt:
		w.scan(s.Chan, state)
		w.scan(s.Value, state)
	case *ast.IncDecStmt:
		w.scan(s.X, state)
		if idx, ok := unparenExpr(s.X).(*ast.IndexExpr); ok {
			w.checkMapKey(idx, state)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, state)
	}
}

// addReturn joins this return's values into the function's result
// summary (naked returns read the named result variables).
func (w *taintWalker) addReturn(s *ast.ReturnStmt, state taintState) {
	if w.numResults == 0 {
		return
	}
	vals := make([]TVal, 0, w.numResults)
	switch {
	case len(s.Results) == w.numResults:
		for _, r := range s.Results {
			vals = append(vals, w.eval(r, state))
		}
	case len(s.Results) == 1 && w.numResults > 1:
		if call, ok := unparenExpr(s.Results[0]).(*ast.CallExpr); ok {
			vals = append(vals, w.evalCallExpr(call, state)...)
		}
	case len(s.Results) == 0:
		for _, rv := range w.resultVars {
			if rv != nil {
				vals = append(vals, w.lookup(rv, state))
			} else {
				vals = append(vals, UnknownVal())
			}
		}
	}
	if len(vals) != w.numResults {
		vals = make([]TVal, w.numResults)
		for i := range vals {
			vals[i] = UnknownVal()
		}
	}
	if w.ft.Results == nil {
		w.ft.Results = vals
		return
	}
	for i := range w.ft.Results {
		if i < len(vals) {
			w.ft.Results[i] = w.ft.Results[i].Join(vals[i])
		}
	}
}

// walkIf handles the two guard idioms that establish boundedness:
// abort-on-oversize and clamp. The post-state is the join of the
// branch exit states, where a terminating branch (return, panic,
// break/continue/goto) contributes nothing.
func (w *taintWalker) walkIf(s *ast.IfStmt, state taintState) {
	if s.Init != nil {
		w.walkStmt(s.Init, state)
	}
	w.scan(s.Cond, state)

	bodySet := cloneState(state)
	w.applyFacts(bodySet, state, s.Cond, true)
	w.walkStmts(s.Body.List, bodySet)

	elseSet := cloneState(state)
	w.applyFacts(elseSet, state, s.Cond, false)
	if s.Else != nil {
		w.walkStmt(s.Else, elseSet)
	}

	bodyTerm := Terminates(s.Body)
	elseTerm := s.Else != nil && StmtTerminates(s.Else)

	var after taintState
	switch {
	case bodyTerm && elseTerm:
		after = elseSet // unreachable fallthrough; keep something sane
	case bodyTerm:
		after = elseSet
	case elseTerm:
		after = bodySet
	default:
		after = joinStates(bodySet, elseSet)
	}
	replaceState(state, after)
}

// walkFor handles for-loops: the loop-bound sink, the guard facts of
// the condition, and (wire mode) a second body pass so loop-carried
// taint reaches sinks earlier in the body.
func (w *taintWalker) walkFor(s *ast.ForStmt, state taintState) {
	inner := cloneState(state)
	if s.Init != nil {
		w.walkStmt(s.Init, inner)
	}
	pushed := false
	if s.Cond != nil {
		w.scan(s.Cond, inner)
		if w.a.Mode == ModeWire {
			if bv, bexpr, ok := w.loopBound(s.Cond, inner); ok && wireish(bv) {
				w.record(SinkLoop, s.For, types.ExprString(bexpr), bv)
				w.loopTaint = append(w.loopTaint, bv)
				pushed = true
			}
		}
		w.applyFacts(inner, inner, s.Cond, true)
	}
	if s.Post != nil {
		w.walkStmt(s.Post, inner)
	}
	preBody := cloneState(inner)
	w.walkStmts(s.Body.List, inner)
	if w.a.Mode == ModeWire {
		second := joinStates(preBody, inner)
		if s.Cond != nil {
			w.applyFacts(second, second, s.Cond, true)
		}
		w.walkStmts(s.Body.List, second)
		replaceState(state, joinStates(state, second))
	}
	if pushed {
		w.loopTaint = w.loopTaint[:len(w.loopTaint)-1]
	}
}

func (w *taintWalker) walkRange(s *ast.RangeStmt, state taintState) {
	w.scan(s.X, state)
	inner := cloneState(state)
	pushed := false
	if w.a.Mode == ModeWire {
		xv := w.eval(s.X, state)
		xt := w.f.Pkg.Info.TypeOf(s.X)
		if xt != nil {
			if b, ok := xt.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				// range over an integer: the trip count IS the value.
				if wireish(xv) {
					w.record(SinkLoop, s.For, types.ExprString(s.X), xv)
					w.loopTaint = append(w.loopTaint, xv)
					pushed = true
				}
			}
		}
		w.bindRangeVars(s, xv, inner)
	}
	preBody := cloneState(inner)
	w.walkStmts(s.Body.List, inner)
	if w.a.Mode == ModeWire {
		second := joinStates(preBody, inner)
		w.bindRangeVars(s, w.eval(s.X, second), second)
		w.walkStmts(s.Body.List, second)
		replaceState(state, joinStates(state, second))
	}
	if pushed {
		w.loopTaint = w.loopTaint[:len(w.loopTaint)-1]
	}
}

// bindRangeVars taints the key/value variables of a range loop: slice
// and string indices are bounded by in-memory data; elements (and map
// keys) carry the container's taint.
func (w *taintWalker) bindRangeVars(s *ast.RangeStmt, xv TVal, state taintState) {
	xt := w.f.Pkg.Info.TypeOf(s.X)
	isMap := false
	if xt != nil {
		_, isMap = xt.Underlying().(*types.Map)
	}
	if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
		if obj := w.rangeVarObj(id); obj != nil {
			if isMap {
				state[obj] = xv
			} else {
				state[obj] = BoundedVal()
			}
		}
	}
	if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := w.rangeVarObj(id); obj != nil {
			state[obj] = xv
		}
	}
}

func (w *taintWalker) rangeVarObj(id *ast.Ident) types.Object {
	if obj := w.f.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.f.Pkg.Info.Uses[id]
}

// loopBound picks the tightest conjunct bound of a loop condition:
// `i < n && i < max` is bounded by min(n, max), so the least-tainted
// comparison side wins. Reported only when no conjunct is bounded.
func (w *taintWalker) loopBound(cond ast.Expr, state taintState) (TVal, ast.Expr, bool) {
	var cmps []*ast.BinaryExpr
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		switch x := unparenExpr(e).(type) {
		case *ast.BinaryExpr:
			if x.Op == token.LAND {
				collect(x.X)
				collect(x.Y)
				return
			}
			cmps = append(cmps, x)
		}
	}
	collect(cond)
	found := false
	var best TVal
	var bestE ast.Expr
	rank := func(v TVal) int {
		switch {
		case v.BoundedStrict():
			return 0
		case v.T == TaintBounded:
			return 1
		case v.T == TaintUnknown:
			return 2
		}
		return 3
	}
	for _, cmp := range cmps {
		var bound ast.Expr
		switch cmp.Op {
		case token.LSS, token.LEQ:
			// loop runs while i < bound: the right side caps the trips.
			bound = cmp.Y
		case token.GTR, token.GEQ:
			// loop runs while x > floor: the left side's magnitude caps.
			bound = cmp.X
		default:
			continue
		}
		v := w.eval(bound, state)
		if !found || rank(v) < rank(best) {
			best, bestE, found = v, bound, true
		}
	}
	return best, bestE, found
}

// applyFacts installs the guard facts cond establishes under truth
// into dst, evaluating bound expressions against evalIn (the pre-guard
// state). In wire mode a comparison against a wire value sanitizes
// nothing: `if n < m` with peer-chosen m is not a cap.
func (w *taintWalker) applyFacts(dst, evalIn taintState, cond ast.Expr, truth bool) {
	for _, fact := range condFacts(w.f.Pkg, cond, truth) {
		if w.a.Mode == ModeWire && fact.Bound != nil {
			if w.eval(fact.Bound, evalIn).T == TaintWire {
				continue
			}
		}
		dst[fact.Obj] = BoundedVal()
	}
}

// applyAssign updates taint for an assignment.
func (w *taintWalker) applyAssign(s *ast.AssignStmt, state taintState) {
	// Multi-value from a single call (x, err := f()): resolve each
	// result through the callee summary.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if call, ok := unparenExpr(s.Rhs[0]).(*ast.CallExpr); ok {
			vals := w.evalCallExpr(call, state)
			for i, lhs := range s.Lhs {
				v := UnknownVal()
				if i < len(vals) {
					v = vals[i]
				}
				w.assignOne(lhs, v, state)
			}
			return
		}
		// Comma-ok (map index, type assert, channel receive): the value
		// carries the container's taint; ok is a bool.
		v0 := w.eval(s.Rhs[0], state)
		w.assignOne(s.Lhs[0], v0, state)
		if len(s.Lhs) == 2 {
			w.assignOne(s.Lhs[1], UnknownVal(), state)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			if obj := w.lhsObject(lhs); obj != nil {
				delete(state, obj)
			}
			continue
		}
		rhs := s.Rhs[i]
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			w.assignOne(lhs, w.eval(rhs, state), state)
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.SHL_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// x op= y joins both sides: bounded only if both were.
			obj := w.lhsObject(lhs)
			if obj != nil {
				state[obj] = w.lookup(obj, state).Join(w.eval(rhs, state))
			}
			w.assignThrough(lhs, w.eval(rhs, state), state)
		case token.REM_ASSIGN, token.AND_ASSIGN:
			// x %= y and x &= y are capped by whichever side is tighter.
			obj := w.lhsObject(lhs)
			if obj != nil {
				cur := w.lookup(obj, state)
				y := w.eval(rhs, state)
				state[obj] = minTV(cur, y)
			}
		case token.QUO_ASSIGN, token.SHR_ASSIGN:
			// x /= y and x >>= y never increase x.
		default:
			if obj := w.lhsObject(lhs); obj != nil {
				delete(state, obj)
			}
		}
		if idx, ok := unparenExpr(lhs).(*ast.IndexExpr); ok {
			w.checkMapKey(idx, state)
		}
	}
}

// minTV picks the tighter of two caps (lower lattice point wins).
func minTV(a, b TVal) TVal {
	ra := int(a.T)
	rb := int(b.T)
	if ra == rb {
		if a.Params != 0 && b.Params == 0 {
			return b
		}
		return a
	}
	if ra < rb {
		return a
	}
	return b
}

// assignOne writes val to an lvalue: plain identifiers rebind; element
// and field stores taint the written-through root (wire mode) and feed
// the map-key sink.
func (w *taintWalker) assignOne(lhs ast.Expr, val TVal, state taintState) {
	if obj := w.lhsObject(lhs); obj != nil {
		state[obj] = val
		return
	}
	if idx, ok := unparenExpr(lhs).(*ast.IndexExpr); ok {
		w.checkMapKey(idx, state)
	}
	w.assignThrough(lhs, val, state)
}

// assignThrough propagates a wire store through a field/element/deref
// write to the root variable's taint, recording a pointee effect when
// the root is a parameter.
func (w *taintWalker) assignThrough(lhs ast.Expr, val TVal, state taintState) {
	if w.a.Mode != ModeWire || !wireish(val) {
		return
	}
	switch unparenExpr(lhs).(type) {
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
	default:
		return
	}
	root := RootVar(w.f.Pkg, lhs)
	if root == nil {
		return
	}
	state[root] = w.lookup(root, state).Join(val)
	if val.T == TaintWire {
		if pi, ok := w.pidx[root]; ok {
			w.ft.Effects |= 1 << pi
			if w.ft.EffectSrc == "" {
				w.ft.EffectSrc, w.ft.EffectPos = val.Src, val.SrcPos
			}
		}
	}
}

func (w *taintWalker) lhsObject(lhs ast.Expr) types.Object {
	id, ok := unparenExpr(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.f.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.f.Pkg.Info.Uses[id]
}

// checkMapKey records a map-key sink: a wire-tainted key inserted into
// a map that outlives the frame (global, field, or caller-owned).
func (w *taintWalker) checkMapKey(idx *ast.IndexExpr, state taintState) {
	if w.a.Mode != ModeWire {
		return
	}
	t := w.f.Pkg.Info.TypeOf(idx.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	kv := w.eval(idx.Index, state)
	if !wireish(kv) {
		return
	}
	if !w.longLived(idx.X) {
		return
	}
	w.record(SinkMapKey, idx.Pos(), types.ExprString(idx.Index), kv)
}

// longLived reports whether a map expression plausibly outlives the
// current frame: package-level, parameter/receiver-owned, reached
// through a field or call — anything but a plain local.
func (w *taintWalker) longLived(mapExpr ast.Expr) bool {
	root := RootVar(w.f.Pkg, mapExpr)
	if root == nil {
		return true // call result or untracked origin: cannot prove local
	}
	if IsGlobalVar(root) {
		return true
	}
	if _, ok := w.pidx[root]; ok {
		return true
	}
	if _, ok := unparenExpr(mapExpr).(*ast.Ident); !ok {
		return true // field chains: x.m, x.f.m
	}
	return false
}

// scan visits every call expression inside expr (skipping nested
// function literals, which are independent Funcs) so sinks, sources,
// and call-site argument recording happen even for calls whose value
// the surrounding statement discards.
func (w *taintWalker) scan(expr ast.Expr, state taintState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.evalCallExpr(call, state)
		}
		return true
	})
}

// eval computes the taint of an expression in the current state.
func (w *taintWalker) eval(expr ast.Expr, state taintState) TVal {
	expr = unparenExpr(expr)
	if tv, ok := w.f.Pkg.Info.Types[expr]; ok {
		// Compile-time constants are bounded by definition.
		if tv.Value != nil {
			return BoundedVal()
		}
		// Small fixed-width integers cannot express an attacker-sized
		// length: a byte tops out at 255, a uint16 at 65535.
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok {
			switch basic.Kind() {
			case types.Bool, types.Int8, types.Uint8, types.Int16, types.Uint16:
				return BoundedVal()
			}
		}
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := w.f.Pkg.Info.Uses[e]; obj != nil {
			return w.lookup(obj, state)
		}
		if obj := w.f.Pkg.Info.Defs[e]; obj != nil {
			return w.lookup(obj, state)
		}
		return UnknownVal()
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM, token.AND:
			// v % c ∈ [0, c); v & c ≤ c: capped by the right side.
			return w.eval(e.Y, state)
		case token.QUO, token.SHR:
			// v / c ≤ v; v >> c ≤ v.
			return w.eval(e.X, state)
		case token.ADD, token.SUB, token.MUL, token.SHL, token.OR, token.XOR, token.AND_NOT:
			return w.eval(e.X, state).Join(w.eval(e.Y, state))
		default:
			return UnknownVal()
		}
	case *ast.UnaryExpr:
		return w.eval(e.X, state)
	case *ast.CallExpr:
		vals := w.evalCallExpr(e, state)
		if len(vals) > 0 {
			return vals[0]
		}
		return BoundedVal()
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
		// Content reads: the element/field of a wire container is wire.
		// Pessimistic mode does not track content, matching the original
		// walk (a field or element read is simply not provably bounded).
		if w.a.Mode != ModeWire {
			return UnknownVal()
		}
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			return w.eval(ta.X, state)
		}
		if root := RootVar(w.f.Pkg, e.(ast.Expr)); root != nil {
			return w.lookup(root, state)
		}
		return UnknownVal()
	case *ast.CompositeLit:
		if w.a.Mode != ModeWire {
			return UnknownVal()
		}
		out := BoundedVal()
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = out.Join(w.eval(el, state))
		}
		return out
	case *ast.FuncLit:
		if w.a.Mode == ModeWire {
			return BoundedVal()
		}
		return UnknownVal()
	}
	return UnknownVal()
}

// evalCallExpr handles every call shape: builtins (with the alloc and
// capacity sink checks), conversions, trust-boundary sources, local
// calls resolved through summaries, and opaque externals. It returns
// one TVal per result.
func (w *taintWalker) evalCallExpr(call *ast.CallExpr, state taintState) []TVal {
	// The CallCheck hook replaces the default pessimistic sink checks
	// (boundedchan plugs its capacity rule in here), firing once per
	// call node.
	if w.a.CallCheck != nil && !w.checked[call] {
		w.checked[call] = true
		w.a.CallCheck(w.f, call, func(e ast.Expr) bool {
			return w.eval(e, state).BoundedStrict()
		})
	}
	fun := unparenExpr(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.f.Pkg.Info.Uses[id].(*types.Builtin); ok {
			return w.evalBuiltin(b, call, state)
		}
	}
	if tv, ok := w.f.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion: as tainted as its operand.
		if len(call.Args) == 1 {
			return []TVal{w.eval(call.Args[0], state)}
		}
		return []TVal{UnknownVal()}
	}
	return w.evalRealCall(call, state)
}

func (w *taintWalker) evalBuiltin(b *types.Builtin, call *ast.CallExpr, state taintState) []TVal {
	switch b.Name() {
	case "len", "cap":
		// Bounded by data already in memory: the peer paid for those
		// bytes, so sizing by them cannot be inflated beyond them.
		return []TVal{BoundedVal()}
	case "min":
		// min is bounded if any argument is.
		anyStrict := false
		out := UnknownVal()
		for i, arg := range call.Args {
			v := w.eval(arg, state)
			if v.BoundedStrict() {
				anyStrict = true
			}
			if i == 0 {
				out = v
			} else {
				out = minTV(out, v)
			}
		}
		if anyStrict {
			return []TVal{BoundedVal()}
		}
		if w.a.Mode == ModeWire {
			return []TVal{out}
		}
		return []TVal{UnknownVal()}
	case "make":
		w.checkMakeSinks(call, state)
		if w.a.Mode == ModeWire {
			// The made container starts zeroed: fresh, bounded content.
			return []TVal{BoundedVal()}
		}
		return []TVal{UnknownVal()}
	case "append":
		if w.a.Mode == ModeWire {
			out := BoundedVal()
			for _, arg := range call.Args {
				out = out.Join(w.eval(arg, state))
			}
			return []TVal{out}
		}
		return []TVal{UnknownVal()}
	case "copy":
		if w.a.Mode == ModeWire && len(call.Args) == 2 {
			w.taintContent(call.Args[0], w.eval(call.Args[1], state), state)
		}
		// copy's count result is capped by len of both slices.
		if w.a.Mode == ModeWire {
			return []TVal{BoundedVal()}
		}
		return []TVal{UnknownVal()}
	case "new":
		if w.a.Mode == ModeWire {
			return []TVal{BoundedVal()}
		}
		return []TVal{UnknownVal()}
	default:
		return []TVal{UnknownVal()}
	}
}

// checkMakeSinks records the allocation-size sinks of a make call:
// slice length/capacity and map size hints (SinkAlloc), channel
// capacities (SinkChanCap, wire mode — pessimistic capacity checking
// belongs to boundedchan via CallCheck).
func (w *taintWalker) checkMakeSinks(call *ast.CallExpr, state taintState) {
	if w.a.CallCheck != nil || len(call.Args) < 2 {
		return
	}
	tv, ok := w.f.Pkg.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	var kind SinkKind
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		kind = SinkAlloc
	case *types.Map:
		if w.a.Mode != ModeWire {
			return // the original walk checked slices only
		}
		kind = SinkAlloc
	case *types.Chan:
		if w.a.Mode != ModeWire {
			return
		}
		kind = SinkChanCap
	default:
		return
	}
	// Report the first offending size argument, like the original walk.
	var offender ast.Expr
	var oval TVal
	for _, arg := range call.Args[1:] {
		v := w.eval(arg, state)
		bad := false
		if w.a.Mode == ModeWire {
			bad = wireish(v)
		} else {
			bad = !v.BoundedStrict()
		}
		if bad {
			offender, oval = arg, v
			break
		}
	}
	if offender == nil {
		return
	}
	w.record(kind, call.Pos(), types.ExprString(offender), oval)
}

// evalRealCall models a non-builtin, non-conversion call: source
// hooks, local summaries, or the opaque-external default.
func (w *taintWalker) evalRealCall(call *ast.CallExpr, state taintState) []TVal {
	pkg := w.f.Pkg
	n := w.callResultCount(call)
	argVals := make([]TVal, len(call.Args))
	for i, arg := range call.Args {
		argVals[i] = w.eval(arg, state)
	}
	var recvVal TVal
	hasRecv := false
	if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := pkg.Info.Selections[sel]; isSel {
			recvVal = w.eval(sel.X, state)
			hasRecv = true
		}
	}
	callee := CalleeOf(pkg, call)

	// io.ReadAll never has a bound; pessimistic mode flags every call.
	if w.a.Mode == ModePessimistic && w.a.CallCheck == nil && isReadAllCall(pkg, call) {
		w.record(SinkReadAll, call.Pos(), "io.ReadAll", UnknownVal())
	}

	if w.a.Mode == ModeWire {
		// Duration/deadline sink: a peer-chosen sleep parks the slot.
		if di := durationArgIndex(callee); di >= 0 && di < len(argVals) {
			if wireish(argVals[di]) {
				w.record(SinkSleep, call.Pos(), types.ExprString(call.Args[di]), argVals[di])
			}
		}
		// Trust-boundary source?
		if w.a.SourceCall != nil {
			if src, taintsResult, taintArgs, ok := w.a.SourceCall(pkg, call, callee); ok {
				wv := WireVal(src, call.Pos())
				for _, ti := range taintArgs {
					if ti >= 0 && ti < len(call.Args) {
						w.taintContent(call.Args[ti], wv, state)
					}
				}
				out := make([]TVal, n)
				for i := range out {
					if taintsResult {
						out[i] = wv
					} else {
						// Read-style count results are capped by the buffer.
						out[i] = BoundedVal()
					}
				}
				return out
			}
		}
	}

	// Module-local callee: record the call-site argument taint (the
	// raw material for witness chains) and resolve the summary.
	if cs := w.csOf[call]; cs != nil && cs.Callee != nil {
		w.ft.ArgVals[cs] = append([]TVal(nil), argVals...)
		if hasRecv {
			w.ft.RecvVals[cs] = recvVal
		}
		sum := w.a.Facts(cs.Callee)
		if w.a.Mode == ModeWire && sum.Effects != 0 {
			ev := WireVal(sum.EffectSrc, sum.EffectPos)
			for i := 0; i < recvParam; i++ {
				if sum.Effects&(1<<i) != 0 && i < len(call.Args) {
					w.taintContent(call.Args[i], ev, state)
				}
			}
			if sum.Effects&(1<<recvParam) != 0 && hasRecv {
				if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
					w.taintContent(sel.X, ev, state)
				}
			}
		}
		out := make([]TVal, n)
		for i := range out {
			if i < len(sum.Results) {
				out[i] = w.resolveResult(sum.Results[i], cs.Callee, argVals, recvVal, hasRecv)
			} else {
				out[i] = UnknownVal()
			}
		}
		return out
	}

	// Opaque external or dynamic call.
	out := make([]TVal, n)
	if w.a.Mode == ModePessimistic {
		for i := range out {
			out[i] = UnknownVal()
		}
		return out
	}
	// Size/shape metadata of in-memory data is bounded — the method
	// twin of the len/cap builtins. v.Len() of a decoded slice, a
	// big.Int's BitLen, reflect's Type/Kind/NumField: none can exceed
	// what the peer already paid to materialize in memory, and the set
	// of program types is finite. Only external callees take this
	// shortcut; a module-local method named Len resolves through its
	// summary, which knows whether it really returns a capped value.
	if fn, ok := callee.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sig.Params().Len() == 0 {
			switch fn.Name() {
			case "Len", "Cap", "Size", "BitLen", "Kind", "Type", "NumField", "NumMethod", "NumIn", "NumOut":
				for i := range out {
					out[i] = BoundedVal()
				}
				return out
			}
		}
	}
	// Wire default: the result of an unknown function over wire data
	// is wire (binary.BigEndian.Uint64(hdr), strconv.Atoi(s), ...);
	// otherwise unknown, keeping parameter obligations alive.
	j := UnknownVal()
	for _, av := range argVals {
		j = j.Join(av)
	}
	if hasRecv {
		j = j.Join(recvVal)
	}
	for i := range out {
		out[i] = j
	}
	return out
}

// resolveResult substitutes call-site argument taint into a callee
// result summary: {Bounded, param i} resolved against a wire argument
// is wire.
func (w *taintWalker) resolveResult(tv TVal, callee *Func, argVals []TVal, recvVal TVal, hasRecv bool) TVal {
	out := TVal{T: tv.T, Src: tv.Src, SrcPos: tv.SrcPos}
	if tv.Params == 0 {
		return out
	}
	for i := 0; i < recvParam; i++ {
		if tv.Params&(1<<i) == 0 {
			continue
		}
		if av, ok := argForParam(callee, i, argVals); ok {
			out = out.Join(av)
		} else if out.T < TaintUnknown {
			out.T = TaintUnknown
		}
	}
	if tv.Params&(1<<recvParam) != 0 {
		if hasRecv {
			out = out.Join(recvVal)
		} else if out.T < TaintUnknown {
			out.T = TaintUnknown
		}
	}
	return out
}

// taintContent joins tv into the variable backing argExpr — the model
// for "this call fills that buffer with peer bytes". A parameter root
// becomes a pointee effect in the summary.
func (w *taintWalker) taintContent(argExpr ast.Expr, tv TVal, state taintState) {
	root := RootVar(w.f.Pkg, argExpr)
	if root == nil {
		return
	}
	state[root] = w.lookup(root, state).Join(tv)
	if tv.T == TaintWire {
		if pi, ok := w.pidx[root]; ok {
			w.ft.Effects |= 1 << pi
			if w.ft.EffectSrc == "" {
				w.ft.EffectSrc, w.ft.EffectPos = tv.Src, tv.SrcPos
			}
		}
	}
}

func (w *taintWalker) callResultCount(call *ast.CallExpr) int {
	tv, ok := w.f.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if t, ok := tv.Type.(*types.Tuple); ok {
		return t.Len()
	}
	return 1
}

// isReadAllCall reports whether call invokes io.ReadAll (or the legacy
// io/ioutil.ReadAll).
func isReadAllCall(pkg *SourcePackage, call *ast.CallExpr) bool {
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "ReadAll" || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "io" || fn.Pkg().Path() == "io/ioutil"
}

// durationArgIndex returns the argument index carrying a duration or
// deadline for the std time-park APIs, or -1.
func durationArgIndex(callee types.Object) int {
	fn, ok := callee.(*types.Func)
	if !ok {
		return -1
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case pkgPath == "time" && !isMethod:
		switch fn.Name() {
		case "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return 0
		}
	case isMethod:
		switch fn.Name() {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			return 0
		case "Reset":
			if pkgPath == "time" {
				return 0
			}
		}
	case pkgPath == "context" && fn.Name() == "WithTimeout":
		return 1
	}
	return -1
}

// BoundFact is one object a condition proves bounded, plus the
// expression doing the bounding (nil when structural).
type BoundFact struct {
	Obj   types.Object
	Bound ast.Expr
}

// condFacts extracts the objects proven bounded when cond evaluates to
// the given truth value. For truth=true it decomposes && chains (all
// operands hold); for truth=false it decomposes || chains (all
// negations hold). A comparison bounds the variable on its small side:
// `v < cap` bounds v when true; `v > cap` bounds v when false.
func condFacts(pkg *SourcePackage, cond ast.Expr, truth bool) []BoundFact {
	cond = unparenExpr(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth {
				return append(condFacts(pkg, e.X, true), condFacts(pkg, e.Y, true)...)
			}
			return nil
		case token.LOR:
			if !truth {
				return append(condFacts(pkg, e.X, false), condFacts(pkg, e.Y, false)...)
			}
			return nil
		case token.LSS, token.LEQ:
			// x < y: true bounds x by y, false bounds y by x.
			if truth {
				return boundFacts(pkg, e.X, e.Y)
			}
			return boundFacts(pkg, e.Y, e.X)
		case token.GTR, token.GEQ:
			// x > y: true bounds y by x, false bounds x by y.
			if truth {
				return boundFacts(pkg, e.Y, e.X)
			}
			return boundFacts(pkg, e.X, e.Y)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return condFacts(pkg, e.X, !truth)
		}
	}
	return nil
}

func boundFacts(pkg *SourcePackage, small, big ast.Expr) []BoundFact {
	var out []BoundFact
	for _, obj := range identObjects(pkg, small) {
		out = append(out, BoundFact{Obj: obj, Bound: big})
	}
	return out
}

// identObjects returns the object behind expr if it is a plain
// identifier (possibly through a conversion like uint64(v)).
func identObjects(pkg *SourcePackage, expr ast.Expr) []types.Object {
	expr = unparenExpr(expr)
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			expr = unparenExpr(call.Args[0])
		}
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return []types.Object{obj}
		}
	}
	return nil
}

// Terminates reports whether a block always transfers control away
// (return, panic, or branch) at its end.
func Terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	return StmtTerminates(block.List[len(block.List)-1])
}

// StmtTerminates reports whether stmt always transfers control away.
func StmtTerminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return Terminates(s)
	case *ast.IfStmt:
		return Terminates(s.Body) && s.Else != nil && StmtTerminates(s.Else)
	}
	return false
}

// DescribeSource renders a TVal's source for a finding message.
func (a TVal) DescribeSource(fset *token.FileSet) string {
	if a.Src == "" {
		return "wire data"
	}
	if a.SrcPos == token.NoPos {
		return a.Src
	}
	return fmt.Sprintf("%s at %s", a.Src, shortPos(fset, a.SrcPos))
}

// ChainString renders a witness chain for a finding message.
func ChainString(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return "; path: " + strings.Join(chain, " ← ")
}
