package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/ir"
)

// WireTaint reports every path where a value a remote peer controls
// reaches a resource sink without a dominating cap: the
// interprocedural generalization of boundedalloc from one sink kind
// (make sizes) to the whole class of peer-sized resources.
//
// Sources — bytes crossing the trust boundary:
//
//   - any Read(p []byte) (int, error) method call (net.Conn and every
//     reader layered over it), plus io.ReadFull/io.ReadAtLeast: the
//     filled buffer's content is wire
//   - cross-package calls into the wire codecs' exported
//     Decode*/Read*/Parse*/Unmarshal* APIs: results and pointer
//     out-args are wire (rlp.DecodeBytes, devp2p.ReadHello,
//     snappy.DecodeCapped, ...)
//   - inside a source package itself, the []byte parameters of those
//     exported decode entry points are wire at function entry
//
// Sanitizers are the engine's boundedness proofs — clamps, oversize
// guards, ≤16-bit prefix widths, len/cap, min — lifted into memoized
// per-function summaries so a clamp inside a callee sanitizes every
// call site.
//
// Sinks are kinded: allocation sizes, loop trip counts, insertion
// keys of long-lived maps (nodedb, Finder suppression tables), timer
// and deadline durations, goroutine spawns inside wire-bounded loops,
// and channel capacities. Each finding names the source and, when the
// taint crossed function boundaries, the call-site witness chain.
type WireTaint struct {
	// SourcePackages are the wire codecs: their exported decode APIs
	// inject taint at cross-package call sites, and their own decode
	// entry-point parameters are tainted at entry.
	SourcePackages []string
	// ReportPackages restricts where findings are reported — the wire
	// packages plus the long-lived stores peer-derived values land in.
	ReportPackages []string
	// EntropyPackages are package-path prefixes whose Read-shaped
	// calls produce entropy or digest output rather than peer bytes
	// (crypto, math/rand, hash, the module's own crypto primitives).
	// Read methods defined in them are not sources, and nothing called
	// from inside them is: a key generator reading its entropy stream
	// must not taint every key-carrying config downstream.
	EntropyPackages []string
}

// Name implements Analyzer.
func (wt *WireTaint) Name() string { return "wiretaint" }

// Doc implements Analyzer.
func (wt *WireTaint) Doc() string {
	return "peer-controlled values must be capped before sizing allocations, loops, maps, timers, spawns, or queues"
}

// Run implements Analyzer.
func (wt *WireTaint) Run(l *Loader, pkgs []*Package) []Finding {
	eng := &ir.TaintAnalysis{
		Prog:       l.Program(pkgs),
		Mode:       ir.ModeWire,
		SourceCall: wt.sourceCall,
		EntryParam: wt.entryParam,
	}
	var findings []Finding
	for _, sink := range eng.Run() {
		if !matchesAny(sink.Fn.Pkg.Path, wt.ReportPackages) {
			continue
		}
		fset := sink.Fn.Pkg.Fset
		findings = append(findings, Finding{
			Pos:      fset.Position(sink.Pos),
			Analyzer: wt.Name(),
			Message: fmt.Sprintf("wire-tainted %s: %s derives from %s%s",
				kindPhrase(sink.Kind), sink.Expr, sink.Val.DescribeSource(fset), ir.ChainString(sink.Chain)),
		})
	}
	return findings
}

func kindPhrase(k ir.SinkKind) string {
	switch k {
	case ir.SinkAlloc:
		return "allocation size"
	case ir.SinkLoop:
		return "loop bound"
	case ir.SinkMapKey:
		return "long-lived map key"
	case ir.SinkSleep:
		return "timer/deadline duration"
	case ir.SinkSpawn:
		return "goroutine spawn count"
	case ir.SinkChanCap:
		return "channel capacity"
	}
	return k.String()
}

// decodeEntryName reports whether name is a decode-shaped exported
// API: the prefixes under which the wire codecs hand peer bytes to
// their callers.
func decodeEntryName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	for _, prefix := range []string{"Decode", "Read", "Parse", "Unmarshal"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// sourceCall classifies trust-boundary calls for the engine.
func (wt *WireTaint) sourceCall(pkg *ir.SourcePackage, call *ast.CallExpr, callee types.Object) (string, bool, []int, bool) {
	fn, ok := callee.(*types.Func)
	if !ok {
		return "", false, nil, false
	}
	// Inside an entropy package nothing reads peer bytes.
	if matchesAny(pkg.Path, wt.EntropyPackages) {
		return "", false, nil, false
	}
	sig, _ := fn.Type().(*types.Signature)

	// reader.Read(buf): the canonical conn-read shape. Every reader in
	// a wire package sits over peer bytes — except the entropy and
	// digest readers, whose output the peer never chose.
	if sig != nil && sig.Recv() != nil && fn.Name() == "Read" &&
		sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) {
		if fn.Pkg() != nil && matchesAny(fn.Pkg().Path(), wt.EntropyPackages) {
			return "", false, nil, false
		}
		return "conn read", false, []int{0}, true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" && sig != nil && sig.Recv() == nil {
		switch fn.Name() {
		case "ReadFull", "ReadAtLeast":
			if len(call.Args) > 0 && wt.entropyExpr(pkg, call.Args[0]) {
				return "", false, nil, false
			}
			return "io." + fn.Name(), false, []int{1}, true
		}
	}

	// Cross-package call into a wire codec's exported decode API: the
	// results and pointer/interface out-args carry decoded peer fields.
	// Intra-package calls resolve through summaries instead, so the
	// witness chain inside a codec stays precise.
	if fn.Pkg() != nil && fn.Pkg().Path() != pkg.Path &&
		matchesAny(fn.Pkg().Path(), wt.SourcePackages) && decodeEntryName(fn.Name()) {
		// Decode targets are pointers (&v) or empty interfaces (any).
		// A non-empty interface param is an input — the reader being
		// decoded FROM — and tainting it would smear the whole conn.
		var outs []int
		if sig != nil {
			n := sig.Params().Len()
			if n > len(call.Args) {
				n = len(call.Args)
			}
			for i := 0; i < n; i++ {
				switch u := sig.Params().At(i).Type().Underlying().(type) {
				case *types.Pointer:
					outs = append(outs, i)
				case *types.Interface:
					if u.NumMethods() == 0 {
						outs = append(outs, i)
					}
				}
			}
		}
		return fn.Pkg().Name() + "." + fn.Name(), true, outs, true
	}
	return "", false, nil, false
}

// entropyExpr reports whether e is an entropy stream: a value whose
// named type, or whose package-level variable (crypto/rand.Reader),
// lives in an entropy package.
func (wt *WireTaint) entropyExpr(pkg *ir.SourcePackage, e ast.Expr) bool {
	if t := pkg.Info.TypeOf(e); t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil &&
			matchesAny(n.Obj().Pkg().Path(), wt.EntropyPackages) {
			return true
		}
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			matchesAny(v.Pkg().Path(), wt.EntropyPackages) {
			return true
		}
	}
	return false
}

// entryParam taints the []byte inputs of a source package's exported
// decode entry points: inside rlp, the `data` of DecodeBytes IS the
// wire.
func (wt *WireTaint) entryParam(f *ir.Func, i int, v *types.Var) (string, bool) {
	if f.Obj == nil || f.Decl == nil {
		return "", false
	}
	if !matchesAny(f.Pkg.Path, wt.SourcePackages) {
		return "", false
	}
	if !decodeEntryName(f.Obj.Name()) {
		return "", false
	}
	if !isByteSlice(v.Type()) {
		return "", false
	}
	return fmt.Sprintf("wire input %s of %s", v.Name(), f.Name), true
}
