package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint/ir"
)

// BoundedChan pins the Finder shard-queue discipline: queues between
// goroutines must be bounded AND never silently become back-pressure
// points.
//
// Two rules:
//
//   - Every make(chan T, n) capacity must be provably capped — a
//     constant, a small fixed-width integer, or a value clamped by a
//     dominating guard. The capacity check plugs into the shared
//     ir.TaintAnalysis engine (the same one boundedalloc runs on), so
//     `if n > max { n = max }` clamping works here too — including a
//     clamp inside a module-local callee. An attacker- or config-sized
//     capacity is a hidden unbounded buffer.
//
//   - Every send into a channel the package visibly made buffered
//     must sit under a select with an escape arm (a default clause or
//     a receive case such as a timeout or ctx.Done()). A plain send
//     into a bounded queue blocks the producer exactly when the queue
//     is doing its job; the shard queues drop-and-count instead.
//
// Channels whose construction is not visible in the package
// (parameters, fields assigned elsewhere) and unbuffered channels
// (where blocking is the point of the rendezvous) are exempt from the
// send rule.
type BoundedChan struct {
	// Packages restricts the check; empty means every module package.
	Packages []string
}

// Name implements Analyzer.
func (b *BoundedChan) Name() string { return "boundedchan" }

// Doc implements Analyzer.
func (b *BoundedChan) Doc() string {
	return "channel capacities must be constant or clamped; sends into bounded queues need a select escape arm"
}

// Run implements Analyzer.
func (b *BoundedChan) Run(l *Loader, pkgs []*Package) []Finding {
	checkers := make(map[string]*chanChecker, len(pkgs))
	var order []*chanChecker
	for _, pkg := range pkgs {
		if len(b.Packages) > 0 && !matchesAny(pkg.Path, b.Packages) {
			continue
		}
		c := &chanChecker{pkg: pkg, analyzer: b.Name(), buffered: make(map[types.Object]bool)}
		c.collectChans()
		checkers[pkg.Path] = c
		order = append(order, c)
	}
	// One engine pass over the whole module supplies the flow-sensitive
	// boundedness state (guards, clamps, callee-summary caps) that the
	// capacity check consults at every make(chan) site.
	eng := &ir.TaintAnalysis{
		Prog: l.Program(pkgs),
		Mode: ir.ModePessimistic,
		CallCheck: func(f *ir.Func, call *ast.CallExpr, bounded func(ast.Expr) bool) {
			c := checkers[f.Pkg.Path]
			if c == nil {
				return
			}
			c.checkCap(call, bounded)
		},
	}
	eng.Run()
	var findings []Finding
	for _, c := range order {
		for _, file := range c.pkg.Files {
			for _, body := range funcBodies(file) {
				c.checkSends(body.List, nil)
			}
		}
		findings = append(findings, c.findings...)
	}
	return findings
}

type chanChecker struct {
	pkg      *Package
	analyzer string
	findings []Finding

	// buffered maps channel-holding objects (locals and struct
	// fields) to whether the make that created them had a capacity.
	buffered map[types.Object]bool
}

// collectChans records, for every object the package assigns a
// visible make(chan), whether that channel is buffered. An object
// assigned both ways keeps the buffered verdict: one buffered
// assignment is enough to demand the send discipline.
func (c *chanChecker) collectChans() {
	for _, file := range c.pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					buf, ok := c.makeChanBuffered(rhs)
					if !ok {
						continue
					}
					if obj := c.chanTarget(s.Lhs[i]); obj != nil {
						c.record(obj, buf)
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, v := range s.Values {
					buf, ok := c.makeChanBuffered(v)
					if !ok {
						continue
					}
					if obj := c.pkg.Info.Defs[s.Names[i]]; obj != nil {
						c.record(obj, buf)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range s.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					buf, ok := c.makeChanBuffered(kv.Value)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						if obj := c.pkg.Info.Uses[key]; obj != nil {
							c.record(obj, buf)
						}
					}
				}
			}
			return true
		})
	}
}

func (c *chanChecker) record(obj types.Object, buffered bool) {
	if buffered {
		c.buffered[obj] = true
	} else if _, seen := c.buffered[obj]; !seen {
		c.buffered[obj] = false
	}
}

// makeChanBuffered reports whether expr is make(chan T[, n]) and, if
// so, whether it is buffered (a capacity argument that is not the
// constant zero).
func (c *chanChecker) makeChanBuffered(expr ast.Expr) (buffered, isMakeChan bool) {
	call, ok := unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false, false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false, false
	}
	if b, ok := c.pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false, false
	}
	tv, ok := c.pkg.Info.Types[call.Args[0]]
	if !ok {
		return false, false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true
	}
	if capTV, ok := c.pkg.Info.Types[call.Args[1]]; ok && capTV.Value != nil && capTV.Value.String() == "0" {
		return false, true
	}
	return true, true
}

// chanTarget resolves the object a channel assignment lands in: a
// plain identifier's var or the struct field of a selector.
func (c *chanChecker) chanTarget(lhs ast.Expr) types.Object {
	switch e := unparen(lhs).(type) {
	case *ast.Ident:
		if obj := c.pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		return c.pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		if v, ok := c.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// chanObj resolves the object behind a channel expression at a send
// site (ident or field selector).
func (c *chanChecker) chanObj(expr ast.Expr) types.Object {
	switch e := unparen(expr).(type) {
	case *ast.Ident:
		return c.pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		if v, ok := c.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// checkCap is the taint engine's CallCheck hook: every make(chan T, n)
// capacity must pass the engine's boundedness proof in the flow state
// holding at the call site.
func (c *chanChecker) checkCap(call *ast.CallExpr, bounded func(ast.Expr) bool) {
	if _, isMakeChan := c.makeChanBuffered(call); !isMakeChan || len(call.Args) < 2 {
		return
	}
	if !bounded(call.Args[1]) {
		c.findings = append(c.findings, Finding{
			Pos:      c.pkg.Fset.Position(call.Pos()),
			Analyzer: c.analyzer,
			Message: fmt.Sprintf("channel capacity %s is not provably capped: use a constant or clamp it before make",
				types.ExprString(call.Args[1])),
		})
	}
}

// checkSends walks statements looking for sends on known-buffered
// channels outside a select escape. escaped carries the send
// statements that are comm clauses of a select WITH an escape arm.
func (c *chanChecker) checkSends(list []ast.Stmt, escaped map[*ast.SendStmt]bool) {
	for _, stmt := range list {
		c.checkSendStmt(stmt, escaped)
	}
}

func (c *chanChecker) checkSendStmt(stmt ast.Stmt, escaped map[*ast.SendStmt]bool) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		c.checkSend(s, escaped[s])
	case *ast.SelectStmt:
		hasEscape := selectHasEscape(s)
		inner := make(map[*ast.SendStmt]bool, len(escaped))
		for k, v := range escaped {
			inner[k] = v
		}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := clause.Comm.(*ast.SendStmt); ok && hasEscape {
				inner[send] = true
			}
			if clause.Comm != nil {
				c.checkSendStmt(clause.Comm, inner)
			}
			c.checkSends(clause.Body, escaped)
		}
	case *ast.BlockStmt:
		c.checkSends(s.List, escaped)
	case *ast.IfStmt:
		if s.Init != nil {
			c.checkSendStmt(s.Init, escaped)
		}
		c.checkSends(s.Body.List, escaped)
		if s.Else != nil {
			c.checkSendStmt(s.Else, escaped)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.checkSendStmt(s.Init, escaped)
		}
		if s.Post != nil {
			c.checkSendStmt(s.Post, escaped)
		}
		c.checkSends(s.Body.List, escaped)
	case *ast.RangeStmt:
		c.checkSends(s.Body.List, escaped)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.checkSendStmt(s.Init, escaped)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.checkSends(clause.Body, escaped)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.checkSends(clause.Body, escaped)
			}
		}
	case *ast.LabeledStmt:
		c.checkSendStmt(s.Stmt, escaped)
	case *ast.DeferStmt, *ast.GoStmt:
		// Function literals inside are walked as their own bodies by
		// funcBodies; nothing to do here.
	}
}

// checkSend reports a send on a visibly-buffered channel that is not
// under a select escape arm.
func (c *chanChecker) checkSend(s *ast.SendStmt, inEscape bool) {
	obj := c.chanObj(s.Chan)
	if obj == nil {
		return
	}
	buffered, known := c.buffered[obj]
	if !known || !buffered {
		return
	}
	if inEscape {
		return
	}
	c.findings = append(c.findings, Finding{
		Pos:      c.pkg.Fset.Position(s.Pos()),
		Analyzer: c.analyzer,
		Message: fmt.Sprintf("blocking send on bounded channel %s: put it under a select with a default or timeout arm so a full queue degrades instead of stalling the producer",
			types.ExprString(s.Chan)),
	})
}

// selectHasEscape reports whether a select can complete without the
// send succeeding: a default clause, or a receive case (timeout,
// ctx.Done(), shutdown signal).
func selectHasEscape(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		clause, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			return true // default clause
		}
		switch comm := clause.Comm.(type) {
		case *ast.ExprStmt, *ast.AssignStmt:
			_ = comm
			return true // receive arm
		}
	}
	return false
}
