package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/ir"
)

// GoroutineLife verifies that every goroutine spawned in the
// configured packages has a provable termination signal. The crawler
// holds thousands of concurrent handshakes; a goroutine that loops
// without a shutdown path outlives its dial slot and leaks until the
// process dies — the exact failure class leakcheck catches at test
// time, promoted here to a compile-time finding.
//
// The check is interprocedural over the IR call graph. A spawned
// function fails when it — or any module function it transitively
// calls — contains an exitless CFG cycle with no termination signal.
// An exitless cycle is one no edge leaves (no break, no return, no
// condition): it runs forever unless something inside it blocks until
// shutdown. Termination signals are the operations that unblock on
// teardown:
//
//   - a channel receive or select (a closed channel — ctx.Done(),
//     t.closed — makes them return immediately)
//   - range over a channel (ends when the channel closes)
//   - a Read/Write/Accept-shaped call on a closable value (closing
//     the conn/listener fails the call and the loop's error path)
//   - a call to a module function that itself contains such a signal
//
// Loops with exit edges are not flagged: whether a conditional break
// fires is the halting problem, and the paper's loops of that shape
// (bounded header reads, retry counters) all terminate by
// construction.
type GoroutineLife struct {
	// Packages restricts where `go` statements are checked. Callee
	// traversal still crosses into any module package.
	Packages []string
}

// Name implements Analyzer.
func (g *GoroutineLife) Name() string { return "goroutinelife" }

// Doc implements Analyzer.
func (g *GoroutineLife) Doc() string {
	return "every spawned goroutine must have a provable termination signal"
}

// Run implements Analyzer.
func (g *GoroutineLife) Run(l *Loader, pkgs []*Package) []Finding {
	prog := l.Program(pkgs)
	gl := &glifeChecker{
		prog:     prog,
		memo:     make(map[*ir.Func]glVerdict),
		visiting: make(map[*ir.Func]bool),
		sigCache: ir.NewSummaryCache(),
	}

	var findings []Finding
	for _, f := range prog.Funcs {
		if !matchesAny(f.Pkg.Path, g.Packages) {
			continue
		}
		for _, blk := range f.Blocks {
			for _, s := range blk.Nodes {
				gostmt, ok := s.(*ast.GoStmt)
				if !ok {
					continue
				}
				findings = append(findings, gl.checkSpawn(g.Name(), f, gostmt)...)
			}
		}
	}
	return findings
}

// glVerdict is the memoized termination result for one function.
type glVerdict struct {
	ok    bool
	pos   token.Pos // offending loop position
	fname string    // function holding the offending loop
}

type glifeChecker struct {
	prog     *ir.Program
	memo     map[*ir.Func]glVerdict
	visiting map[*ir.Func]bool
	sigCache *ir.SummaryCache
	depth    int
}

func (gl *glifeChecker) checkSpawn(analyzer string, spawner *ir.Func, g *ast.GoStmt) []Finding {
	spawned, obj := gl.prog.ResolveSpawn(spawner.Pkg, g)
	if spawned == nil {
		if obj != nil && obj.Pkg() != nil && obj.Pkg() != spawner.Pkg.Types {
			// Resolved to a function outside the module (std or an
			// unloaded package): nothing to prove against.
			return nil
		}
		return []Finding{{
			Pos:      spawner.Position(g.Pos()),
			Analyzer: analyzer,
			Message:  "goroutine target cannot be statically resolved; spawn a named function or literal so its termination signal is checkable",
		}}
	}
	v := gl.terminates(spawned)
	if v.ok {
		return nil
	}
	where := ""
	if v.fname != spawned.Name {
		where = fmt.Sprintf(" (via %s, %s)", v.fname, spawner.Position(v.pos))
	}
	return []Finding{{
		Pos:      spawner.Position(g.Pos()),
		Analyzer: analyzer,
		Message: fmt.Sprintf("goroutine %s loops forever with no termination signal%s: add a ctx.Done/closed-channel select or read from a closable conn",
			spawned.Name, where),
	}}
}

// terminates decides whether f (and everything it calls) is free of
// exitless signal-less cycles. Recursion through the call graph
// treats in-progress functions as OK — a cycle in the call graph is a
// recursion pattern, not a spawned loop.
func (gl *glifeChecker) terminates(f *ir.Func) glVerdict {
	if v, ok := gl.memo[f]; ok {
		return v
	}
	if gl.visiting[f] || gl.depth > 32 {
		return glVerdict{ok: true}
	}
	gl.visiting[f] = true
	gl.depth++
	v := gl.computeTerminates(f)
	gl.depth--
	delete(gl.visiting, f)
	gl.memo[f] = v
	return v
}

func (gl *glifeChecker) computeTerminates(f *ir.Func) glVerdict {
	for _, loop := range exitlessCycles(f) {
		if !gl.loopHasSignal(f, loop) {
			pos := f.Body.Pos()
			hdr := loop.header
			if len(hdr.Nodes) > 0 {
				pos = hdr.Nodes[0].Pos()
			} else if hdr.LoopStmt != nil {
				pos = hdr.LoopStmt.Pos()
			}
			return glVerdict{ok: false, pos: pos, fname: f.Name}
		}
	}
	for _, cs := range f.Calls {
		if cs.Callee == nil {
			continue
		}
		if sub := gl.terminates(cs.Callee); !sub.ok {
			return sub
		}
	}
	return glVerdict{ok: true}
}

// cycle is one natural loop: the header plus every block on a path
// from the back edge's source back to the header.
type cycle struct {
	header *ir.Block
	blocks map[*ir.Block]bool
}

// exitlessCycles finds the natural loops of f no edge leaves.
func exitlessCycles(f *ir.Func) []cycle {
	dom := ir.Dominators(f)
	var out []cycle
	for _, u := range f.Blocks {
		if u.Unreachable() {
			continue
		}
		for _, h := range u.Succs {
			if !ir.Dominates(dom, h, u) {
				continue // not a back edge
			}
			// Natural loop of back edge u→h: h plus blocks reaching u
			// without passing through h.
			set := map[*ir.Block]bool{h: true, u: true}
			stack := []*ir.Block{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range b.Preds {
					if !set[p] {
						set[p] = true
						stack = append(stack, p)
					}
				}
			}
			exitless := true
			for b := range set {
				for _, s := range b.Succs {
					if !set[s] {
						exitless = false
					}
				}
			}
			if exitless {
				out = append(out, cycle{header: h, blocks: set})
			}
		}
	}
	return out
}

// loopHasSignal reports whether any statement inside the cycle is a
// termination signal.
func (gl *glifeChecker) loopHasSignal(f *ir.Func, c cycle) bool {
	for b := range c.blocks {
		for _, s := range b.Nodes {
			if gl.stmtHasSignal(f, s) {
				return true
			}
		}
	}
	return false
}

// stmtHasSignal inspects one block-resident statement shallowly (not
// descending into nested literals — their bodies are separate Funcs).
func (gl *glifeChecker) stmtHasSignal(f *ir.Func, s ast.Stmt) bool {
	// The statement forms that block until shutdown by construction.
	switch s := s.(type) {
	case *ast.SelectStmt:
		return true
	case *ast.RangeStmt:
		if t := f.Pkg.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	found := false
	inspectShallow(s, func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // channel receive
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if gl.callHasSignal(f, n) {
				found = true
			}
		}
	})
	return found
}

// callHasSignal: a Read/Write/Accept-shaped call on a closable
// receiver, or a call into a module function containing a signal.
func (gl *glifeChecker) callHasSignal(f *ir.Func, call *ast.CallExpr) bool {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		ioShaped := strings.HasPrefix(name, "Read") || strings.HasPrefix(name, "Write") ||
			strings.HasPrefix(name, "Accept")
		if ioShaped {
			if t := f.Pkg.Info.TypeOf(sel.X); t != nil && hasCloseMethod(t) {
				return true
			}
		}
	}
	obj := ir.CalleeOf(f.Pkg, call)
	if obj == nil {
		return false
	}
	callee := gl.prog.FuncOf[obj]
	if callee == nil {
		return false
	}
	return gl.funcHasSignal(callee)
}

// funcHasSignal: does the function (transitively) contain a
// termination signal anywhere?
func (gl *glifeChecker) funcHasSignal(f *ir.Func) bool {
	return gl.sigCache.Memo(f, "glife.signal", false, func() bool {
		for _, b := range f.Blocks {
			for _, s := range b.Nodes {
				if gl.stmtHasSignal(f, s) {
					return true
				}
			}
		}
		return false
	})
}

// hasCloseMethod reports whether t (or *t) has a Close method —
// conns, listeners, packet conns, files.
func hasCloseMethod(t types.Type) bool {
	if lookupMethod(t, "Close") {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return lookupMethod(types.NewPointer(t), "Close")
	}
	return false
}

func lookupMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	if obj == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc
}
