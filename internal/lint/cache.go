package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The result cache makes repeat `repolint -cache` runs cheap: the
// expensive phase is type-checking the module plus the std packages it
// touches, so a run whose every input file is byte-identical to the
// previous run reuses that run's findings without loading anything.
//
// The unit of hashing is the package (all of its non-test source
// files), but the unit of reuse is the whole module: the dataflow
// analyzers are interprocedural, so an edit in one package can
// create or remove findings in packages that did not change — reusing
// per-package findings would be unsound. A single changed package
// therefore forces a full re-analysis; the per-package digests exist
// to make the hit/miss decision precise and to report a hit rate that
// tells the operator *what* invalidated the cache.

// cacheVersion invalidates persisted caches when the digest or
// finding schema changes shape.
const cacheVersion = 1

// CacheFile is one persisted lint run.
type CacheFile struct {
	// Version is cacheVersion at write time.
	Version int `json:"version"`
	// Config fingerprints the analyzer set; see CacheConfig.
	Config string `json:"config"`
	// Packages maps import path to the digest of its source file set.
	Packages map[string]string `json:"packages"`
	// Findings are the (already root-relative) findings of that run.
	Findings []Finding `json:"findings"`
}

// ToolchainFingerprint identifies the Go toolchain a run analyzed
// under. The loader type-checks std from $GOROOT source, so findings
// depend on the toolchain as much as on the module: upgrading Go can
// change std signatures (and therefore dataflow through them) without
// touching a single module file. The fingerprint folds in the running
// toolchain version, the GOROOT the loader will read std from (the
// go/build resolution, which honours $GOROOT), and the content of
// that tree's VERSION file so a re-pointed or patched GOROOT misses
// even when the binary was built by the same release.
func ToolchainFingerprint() string {
	goroot := build.Default.GOROOT
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", runtime.Version(), goroot)
	if data, err := os.ReadFile(filepath.Join(goroot, "VERSION")); err == nil {
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// CacheConfig fingerprints everything apart from module source content
// that determines the findings: the module, the toolchain whose std
// sources feed type-checking, and which analyzers ran.
func CacheConfig(modulePath string, analyzers []Analyzer) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return fmt.Sprintf("v%d|%s|%s|%s",
		cacheVersion, ToolchainFingerprint(), modulePath, strings.Join(names, ","))
}

// DigestPackages hashes every module package's source file set by
// content. Only file bytes and names feed the digest — not mtimes —
// so touched-but-identical files still hit.
func DigestPackages(l *Loader) (map[string]string, error) {
	paths, err := l.ListPackages()
	if err != nil {
		return nil, err
	}
	digests := make(map[string]string, len(paths))
	for _, p := range paths {
		files, err := l.SourceFiles(p)
		if err != nil {
			return nil, err
		}
		sort.Strings(files)
		h := sha256.New()
		for _, file := range files {
			data, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", l.RelPath(file), len(data))
			h.Write(data)
		}
		digests[p] = hex.EncodeToString(h.Sum(nil))
	}
	return digests, nil
}

// LoadCache reads a previous run's record. A missing, unreadable, or
// schema-incompatible file is a cold cache, not an error.
func LoadCache(path string) *CacheFile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var c CacheFile
	if err := json.Unmarshal(data, &c); err != nil || c.Version != cacheVersion {
		return nil
	}
	return &c
}

// Hits compares a fresh digest map against the cached one and reports
// how many packages are unchanged. ok is true only when every package
// matches in both directions (no edits, no additions, no deletions)
// and the analyzer config is identical — the only condition under
// which reusing the cached findings is sound.
func (c *CacheFile) Hits(config string, digests map[string]string) (hits, total int, ok bool) {
	total = len(digests)
	for p, d := range digests {
		if c.Packages[p] == d {
			hits++
		}
	}
	ok = c.Config == config && hits == total && len(c.Packages) == total && total > 0
	return hits, total, ok
}

// SaveCache persists a run. Failures are returned, not fatal: a lint
// run that cannot write its cache is still a valid lint run.
func SaveCache(path, config string, digests map[string]string, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	c := CacheFile{Version: cacheVersion, Config: config, Packages: digests, Findings: findings}
	data, err := json.MarshalIndent(&c, "", "\t")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
