package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/ir"
)

// ConnClose verifies that every net.Conn acquired from a dial- or
// accept-shaped call has Close reachable on all exit paths of the
// acquiring function. A crawler dials millions of addresses; one exit
// path that drops a conn without Close is a file-descriptor leak that
// only shows up days into an 82-day run.
//
// The check is per-function and deliberately conservative about
// ownership transfer: a conn that escapes — returned, passed as a
// call argument, captured by a closure, stored into a struct, slice,
// map, or channel — is considered handed off, and the analyzer stops
// tracking it. For conns that stay local, every return statement
// after the acquisition (and the implicit fall-off-the-end exit) must
// be covered by a Close: either a defer conn.Close() that has already
// executed on the path to the return, or a direct conn.Close() call
// on that path. Returns inside the idiomatic `if err != nil` guard of
// the acquisition itself are exempt — there is no conn on that path.
type ConnClose struct{}

// Name implements Analyzer.
func (cc *ConnClose) Name() string { return "connclose" }

// Doc implements Analyzer.
func (cc *ConnClose) Doc() string {
	return "every net.Conn from a dialer must have Close reachable on all exit paths"
}

// Run implements Analyzer.
func (cc *ConnClose) Run(l *Loader, pkgs []*Package) []Finding {
	connType, err := l.StdType("net", "Conn")
	if err != nil {
		return []Finding{{Analyzer: cc.Name(), Message: fmt.Sprintf("cannot resolve net.Conn: %v", err)}}
	}
	connIface, ok := connType.Underlying().(*types.Interface)
	if !ok {
		return []Finding{{Analyzer: cc.Name(), Message: "net.Conn is not an interface?"}}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, body := range funcBodies(file) {
				findings = append(findings, checkConnClose(pkg, body, connIface, cc.Name())...)
			}
		}
	}
	return findings
}

// acquisition is one tracked `conn, err := dial(...)` site.
type acquisition struct {
	obj    types.Object // the conn variable
	errObj types.Object // the paired error variable, if any
	pos    token.Pos
	callee string
}

func checkConnClose(pkg *Package, body *ast.BlockStmt, conn *types.Interface, analyzer string) []Finding {
	var findings []Finding
	var acqs []acquisition

	// Pass 1: find acquisitions at any depth of this function body
	// (skipping nested function literals, which are analyzed as their
	// own functions by the driver).
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeName(call)
		low := strings.ToLower(callee)
		if !strings.Contains(low, "dial") && !strings.Contains(low, "accept") {
			return
		}
		tv, ok := pkg.Info.Types[call]
		if !ok {
			return
		}
		first := tv.Type
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			if tuple.Len() == 0 {
				return
			}
			first = tuple.At(0).Type()
		}
		if !implementsConn(first, conn) {
			return
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		a := acquisition{obj: obj, pos: as.Pos(), callee: callee}
		if len(as.Lhs) > 1 {
			if errID, ok := unparen(as.Lhs[1]).(*ast.Ident); ok && errID.Name != "_" {
				if eo := pkg.Info.Defs[errID]; eo != nil {
					a.errObj = eo
				} else {
					a.errObj = pkg.Info.Uses[errID]
				}
			}
		}
		acqs = append(acqs, a)
	})

	for _, a := range acqs {
		if f, leak := analyzeAcquisition(pkg, body, a, analyzer); leak {
			findings = append(findings, f)
		}
	}
	return findings
}

func analyzeAcquisition(pkg *Package, body *ast.BlockStmt, a acquisition, analyzer string) (Finding, bool) {
	escaped := false
	var closes []closeSite   // conn.Close() / defer conn.Close() sites
	var returns []returnSite // return statements after acquisition

	collectUses(pkg, body, a, &escaped, &closes)
	if escaped {
		return Finding{}, false
	}
	collectReturns(pkg, body, a, &returns)

	// The implicit exit at the end of the function counts as a return
	// unless the body already ends in a terminating statement.
	if !ir.Terminates(body) {
		returns = append(returns, returnSite{pos: body.End(), path: []*ast.BlockStmt{body}})
	}

	if len(closes) == 0 {
		return Finding{
			Pos:      pkg.Fset.Position(a.pos),
			Analyzer: analyzer,
			Message: fmt.Sprintf("net.Conn %s from %s is never closed in this function and does not escape: add defer %s.Close()",
				a.obj.Name(), a.callee, a.obj.Name()),
		}, true
	}
	for _, ret := range returns {
		if ret.pos <= a.pos {
			continue
		}
		if ret.errGuarded {
			continue
		}
		if coveredByClose(closes, ret) {
			continue
		}
		return Finding{
			Pos:      pkg.Fset.Position(ret.pos),
			Analyzer: analyzer,
			Message: fmt.Sprintf("exit path drops net.Conn %s (from %s) without Close: move Close before this return or defer it at the acquisition",
				a.obj.Name(), a.callee),
		}, true
	}
	return Finding{}, false
}

type closeSite struct {
	pos      token.Pos
	deferred bool
	path     []*ast.BlockStmt // enclosing blocks, outermost first
}

type returnSite struct {
	pos        token.Pos
	errGuarded bool
	path       []*ast.BlockStmt
}

// collectUses records Close calls on the conn and whether it escapes.
func collectUses(pkg *Package, body *ast.BlockStmt, a acquisition, escaped *bool, closes *[]closeSite) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		// A closure capturing the conn is ownership transfer.
		if fl, ok := n.(*ast.FuncLit); ok {
			if usesObject(pkg, fl, a.obj) {
				*escaped = true
			}
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != a.obj {
			return true
		}
		use := classifyUse(pkg, stack, id)
		switch use {
		case useClose:
			deferred := false
			var path []*ast.BlockStmt
			for _, anc := range stack {
				if b, ok := anc.(*ast.BlockStmt); ok {
					path = append(path, b)
				}
				if _, ok := anc.(*ast.DeferStmt); ok {
					deferred = true
				}
			}
			*closes = append(*closes, closeSite{pos: id.Pos(), deferred: deferred, path: path})
		case useEscape:
			*escaped = true
		}
		return true
	})
}

type useKind int

const (
	useBenign useKind = iota // receiver of a method call, shadow, etc.
	useClose                 // conn.Close()
	useEscape                // argument, return value, stored, sent
)

// classifyUse decides what a single identifier occurrence does with
// the conn. stack holds the ancestors, innermost last (ending at id).
func classifyUse(pkg *Package, stack []ast.Node, id *ast.Ident) useKind {
	// Walk outward from the identifier.
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			// conn.Something — method call or field access via the
			// conn. Close is what we are looking for; every other
			// method (SetDeadline, RemoteAddr, Read...) neither closes
			// nor transfers ownership.
			if parent.X == id || containsNode(parent.X, id) {
				if parent.Sel.Name == "Close" {
					return useClose
				}
				return useBenign
			}
			return useBenign
		case *ast.CallExpr:
			// Bare identifier as a call argument: handed off.
			for _, arg := range parent.Args {
				if arg == stack[i+1] {
					return useEscape
				}
			}
			return useBenign
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
			return useEscape
		case *ast.AssignStmt:
			// conn on the RHS of another assignment: aliased away.
			for _, rhs := range parent.Rhs {
				if rhs == stack[i+1] {
					return useEscape
				}
			}
			return useBenign
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ParenExpr, *ast.TypeAssertExpr:
			// Comparisons (conn != nil) and guards are benign; keep
			// walking outward only for wrappers that matter.
			continue
		default:
			continue
		}
	}
	return useBenign
}

// collectReturns gathers return statements after the acquisition with
// their block paths and err-guard status.
func collectReturns(pkg *Package, body *ast.BlockStmt, a acquisition, out *[]returnSite) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		site := returnSite{pos: ret.Pos()}
		for _, anc := range stack {
			if b, ok := anc.(*ast.BlockStmt); ok {
				site.path = append(site.path, b)
			}
			if ifs, ok := anc.(*ast.IfStmt); ok && a.errObj != nil && isErrNilCheck(pkg, ifs.Cond, a.errObj) {
				site.errGuarded = true
			}
		}
		*out = append(*out, site)
		return true
	})
}

// coveredByClose reports whether some Close site dominates the
// return: the Close appears earlier and its enclosing block is an
// ancestor of (or the same as) the return's innermost block, so every
// lexical path from the Close's position to the return passes it. A
// deferred Close covers the return the same way — once the defer
// statement has executed, the conn is closed on any exit.
func coveredByClose(closes []closeSite, ret returnSite) bool {
	for _, c := range closes {
		if c.pos >= ret.pos {
			continue
		}
		if len(c.path) == 0 {
			continue
		}
		inner := c.path[len(c.path)-1]
		for _, rb := range ret.path {
			if rb == inner {
				return true
			}
		}
	}
	return false
}

// isErrNilCheck matches `err != nil` (or `nil != err`) against the
// tracked error object, including inside || chains, which cover
// idioms like `if err != nil || conn == nil`.
func isErrNilCheck(pkg *Package, cond ast.Expr, errObj types.Object) bool {
	cond = unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.LOR {
		return isErrNilCheck(pkg, be.X, errObj) || isErrNilCheck(pkg, be.Y, errObj)
	}
	if be.Op != token.NEQ {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && pkg.Info.Uses[id] == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X))
}

// implementsConn reports whether t is (or implements) net.Conn.
func implementsConn(t types.Type, conn *types.Interface) bool {
	if types.Implements(t, conn) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), conn)
	}
	return false
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// usesObject reports whether node references obj.
func usesObject(pkg *Package, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// containsNode reports whether target appears within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// inspectShallow visits nodes without descending into function
// literals.
func inspectShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		visit(n)
		return true
	})
}
