package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockNet reports mutexes held across net.Conn reads/writes or
// blocking channel operations. A peer controls how long a conn read
// blocks (up to the socket deadline — 30 s for a frame read), so a
// lock held across one turns a single slow peer into a stall of every
// goroutine contending for that lock. TestChaosCrawl can only find
// this shape probabilistically; the analyzer finds it by construction.
//
// The analysis walks each function's statements in order, tracking
// the set of mutexes locked (by receiver expression). While the set
// is non-empty it flags: Read/Write calls on values implementing
// net.Conn, io.ReadFull/ReadAll/Copy/CopyN calls passed such a value,
// channel sends and receives, and select statements without a default
// clause. A deferred Unlock keeps the mutex held for the remainder of
// the function, which is exactly the property the analyzer cares
// about.
type LockNet struct{}

// Name implements Analyzer.
func (ln *LockNet) Name() string { return "locknet" }

// Doc implements Analyzer.
func (ln *LockNet) Doc() string {
	return "no mutex may be held across net.Conn I/O or blocking channel ops"
}

// Run implements Analyzer.
func (ln *LockNet) Run(l *Loader, pkgs []*Package) []Finding {
	connType, err := l.StdType("net", "Conn")
	if err != nil {
		return []Finding{{Analyzer: ln.Name(), Message: fmt.Sprintf("cannot resolve net.Conn: %v", err)}}
	}
	connIface, ok := connType.Underlying().(*types.Interface)
	if !ok {
		return []Finding{{Analyzer: ln.Name(), Message: "net.Conn is not an interface?"}}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, body := range funcBodies(file) {
				w := &lockWalker{pkg: pkg, analyzer: ln.Name(), conn: connIface}
				w.walkStmts(body.List, map[string]bool{})
				findings = append(findings, w.findings...)
			}
		}
	}
	return findings
}

type lockWalker struct {
	pkg      *Package
	analyzer string
	conn     *types.Interface
	findings []Finding
}

func cloneHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// heldNames renders the held set for messages.
func heldNames(held map[string]bool) string {
	out := ""
	for k := range held {
		if out != "" {
			out += ", "
		}
		out += k
	}
	return out
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held map[string]bool) {
	for _, stmt := range list {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := w.mutexOp(call); ok {
				switch name {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
		}
		w.checkBlocking(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() means the mutex stays held for the rest of
		// the function; any blocking op that follows is inside the
		// critical section. Other deferred calls run after the lock is
		// released, so their bodies are not checked against this set.
		if _, name, ok := w.mutexOp(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkBlocking(rhs, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(s.Pos(), "channel send", held)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
				hasDefault = true
			}
		}
		if len(held) > 0 && !hasDefault {
			w.report(s.Pos(), "blocking select", held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				w.walkStmts(clause.Body, cloneHeld(held))
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkBlocking(s.Cond, held)
		w.walkStmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		inner := cloneHeld(held)
		if s.Init != nil {
			w.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkBlocking(s.Cond, inner)
		}
		w.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		inner := cloneHeld(held)
		// Ranging over a channel blocks per iteration.
		if tv, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && len(inner) > 0 {
				w.report(s.Pos(), "range over channel", inner)
			}
		}
		w.walkStmts(s.Body.List, inner)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkBlocking(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				w.walkStmts(clause.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				w.walkStmts(clause.Body, cloneHeld(held))
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkBlocking(r, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's critical
		// section.
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// mutexOp reports whether call is sync.Mutex/RWMutex Lock/Unlock
// (or RLock/RUnlock), returning the receiver's expression string.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// checkBlocking scans an expression for operations that can block on
// a peer while a mutex is held.
func (w *lockWalker) checkBlocking(expr ast.Expr, held map[string]bool) {
	if expr == nil || len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.report(e.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			w.checkCall(e, held)
		}
		return true
	})
}

// checkCall flags conn I/O calls made while a lock is held.
func (w *lockWalker) checkCall(call *ast.CallExpr, held map[string]bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	// Direct Read/Write on a net.Conn implementer.
	if fn.Name() == "Read" || fn.Name() == "Write" {
		if tv, ok := w.pkg.Info.Types[sel.X]; ok && w.isConn(tv.Type) {
			w.report(call.Pos(), fmt.Sprintf("%s.%s on net.Conn", types.ExprString(sel.X), fn.Name()), held)
			return
		}
	}
	// io helpers that block on a conn argument.
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" {
		switch fn.Name() {
		case "ReadFull", "ReadAll", "Copy", "CopyN", "ReadAtLeast":
			for _, arg := range call.Args {
				if tv, ok := w.pkg.Info.Types[arg]; ok && w.isConn(tv.Type) {
					w.report(call.Pos(), fmt.Sprintf("io.%s on net.Conn %s", fn.Name(), types.ExprString(arg)), held)
					return
				}
			}
		}
	}
}

// isConn reports whether t (or *t) implements net.Conn.
func (w *lockWalker) isConn(t types.Type) bool {
	if types.Implements(t, w.conn) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), w.conn) {
			return true
		}
	}
	return false
}

func (w *lockWalker) report(pos token.Pos, what string, held map[string]bool) {
	w.findings = append(w.findings, Finding{
		Pos:      w.pkg.Fset.Position(pos),
		Analyzer: w.analyzer,
		Message: fmt.Sprintf("%s while holding mutex %s: a slow peer can stall every contender on this lock",
			what, heldNames(held)),
	})
}
