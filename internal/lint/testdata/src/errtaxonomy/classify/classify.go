// Package classify holds the taxonomy: the classifier function, an
// enum consumers switch over, and both compliant and defective
// switches for errtaxonomy to judge.
package classify

import (
	"errors"

	"lintest/errtaxonomy/transport"
)

// Kind is the enum type switches must exhaust.
type Kind string

// The declared Kind values.
const (
	KindDial     Kind = "dial"
	KindStatic   Kind = "static"
	KindIncoming Kind = "incoming"
)

// Classify buckets a transport error; it knows only ErrHandled, so
// the other transport sentinels are unreachable from the taxonomy.
func Classify(err error) string {
	if errors.Is(err, transport.ErrHandled) {
		return "handled"
	}
	return "other"
}

// Describe drops KindIncoming on the floor.
func Describe(k Kind) string {
	switch k { // want "switch over classify.Kind is not exhaustive: missing KindIncoming"
	case KindDial:
		return "dial"
	case KindStatic:
		return "static"
	}
	return ""
}

// Covered enumerates every Kind value.
func Covered(k Kind) string {
	switch k {
	case KindDial, KindStatic, KindIncoming:
		return "known"
	}
	return ""
}

// Defaulted is exempt through its default clause.
func Defaulted(k Kind) string {
	switch k {
	case KindDial:
		return "dial"
	default:
		return "any"
	}
}

// Buckets switches over the classifier's result without covering
// every class it can return.
func Buckets(err error) int {
	switch Classify(err) { // want "misses classes other"
	case "handled":
		return 1
	}
	return 0
}

// BucketsAll covers every returned class.
func BucketsAll(err error) int {
	switch Classify(err) {
	case "handled":
		return 1
	case "other":
		return 2
	}
	return 0
}
