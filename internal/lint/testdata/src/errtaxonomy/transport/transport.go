// Package transport declares sentinels in the style of the repo's
// wire packages. Two of them never reach the classifier — errtaxonomy
// must point at their declarations.
package transport

import "errors"

// Sentinel failures this transport can surface.
var (
	ErrHandled   = errors.New("transport: handled failure")
	ErrForgotten = errors.New("transport: forgotten failure") // want "sentinel transport.ErrForgotten is not handled"
	ErrOrphan    = errors.New("transport: orphan failure")    // want "sentinel transport.ErrOrphan is not handled"
)
