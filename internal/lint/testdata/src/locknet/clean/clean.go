// Package clean is locknet's silent twin: state is snapshotted under
// the lock, I/O happens outside it, and in-section channel use is
// non-blocking.
package clean

import (
	"net"
	"sync"
)

// Peer copies under the lock and performs I/O lock-free.
type Peer struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
	out  chan []byte
}

// Send snapshots state inside the critical section, then writes after
// releasing the lock.
func (p *Peer) Send(msg []byte) error {
	p.mu.Lock()
	data := append([]byte(nil), p.buf...)
	p.mu.Unlock()
	data = append(data, msg...)
	_, err := p.conn.Write(data)
	return err
}

// TrySend stays non-blocking inside the critical section via the
// select default.
func (p *Peer) TrySend(msg []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.out <- msg:
		return true
	default:
		return false
	}
}
