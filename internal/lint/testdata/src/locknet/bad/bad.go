// Package bad holds mutexes across peer-controlled operations — the
// stall shapes locknet exists to catch.
package bad

import (
	"net"
	"sync"
)

// Peer serializes access with a mutex.
type Peer struct {
	mu   sync.Mutex
	conn net.Conn
	out  chan []byte
	seq  uint64
}

// Send writes to the conn while holding the lock: a slow peer blocks
// every other Send.
func (p *Peer) Send(msg []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	_, err := p.conn.Write(msg) // want "p.conn.Write on net.Conn while holding mutex p.mu"
	return err
}

// Queue performs a blocking channel send inside the critical section.
func (p *Peer) Queue(msg []byte) {
	p.mu.Lock()
	p.out <- msg // want "channel send while holding mutex p.mu"
	p.mu.Unlock()
}

// Wait blocks on a receive with the lock held.
func (p *Peer) Wait(ready chan struct{}) {
	p.mu.Lock()
	<-ready // want "channel receive while holding mutex p.mu"
	p.mu.Unlock()
}
