// Package clean is boundedalloc's silent twin: every allocation is
// capped by a dominating guard, a small fixed-width prefix type, or
// in-memory data the peer cannot inflate.
package clean

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxFrame = 1 << 16

// ErrTooBig rejects oversized declarations.
var ErrTooBig = errors.New("clean: frame too big")

// ReadChecked aborts on the oversize branch before allocating.
func ReadChecked(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, ErrTooBig
	}
	buf := make([]byte, size)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// ReadClamped clamps the declared size instead of rejecting it.
func ReadClamped(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		size = maxFrame
	}
	buf := make([]byte, size)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// ReadShort trusts a two-byte prefix, which cannot exceed 65535.
func ReadShort(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(hdr[:])
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// CopyBounded sizes by len, which reflects data already in memory.
func CopyBounded(src []byte) []byte {
	dst := make([]byte, len(src))
	copy(dst, src)
	return dst
}

// MinBounded caps with the min builtin.
func MinBounded(declared int) []byte {
	return make([]byte, min(declared, maxFrame))
}
