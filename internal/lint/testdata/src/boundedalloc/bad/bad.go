// Package bad demonstrates the allocation shapes boundedalloc must
// flag: a peer-declared length reaching make() unchecked, and an
// unbounded slurp of a peer-controlled stream.
package bad

import (
	"encoding/binary"
	"io"
)

// ReadFrame allocates whatever the peer's header declared.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, size) // want "make sized by size"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// Drain trusts the reader to stop on its own.
func Drain(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want "io.ReadAll reads until EOF with no size bound"
}

// Entries preallocates a peer-declared element count.
func Entries(r io.Reader) ([]uint64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint64(hdr[:])
	out := make([]uint64, 0, count) // want "make sized by count"
	for i := uint64(0); i < count; i++ {
		out = append(out, i)
	}
	return out, nil
}

// CheckedTooLate guards the size only after the allocation happened.
func CheckedTooLate(r io.Reader, limit uint64) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint64(hdr[:])
	buf := make([]byte, size) // want "make sized by size"
	if size > limit {
		return nil, io.ErrUnexpectedEOF
	}
	return buf, nil
}
