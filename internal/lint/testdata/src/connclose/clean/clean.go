// Package clean is connclose's silent twin: every dialed conn is
// either deferred-closed, closed on each path, or visibly handed off
// to another owner.
package clean

import "net"

// Probe defers Close at the acquisition.
func Probe(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := make([]byte, 16)
	_, err = conn.Read(buf)
	return err
}

// Open transfers ownership to the caller.
func Open(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// Serve hands the conn to a helper that owns it from then on.
func Serve(addr string, handle func(net.Conn)) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	handle(conn)
	return nil
}

// Sequential closes explicitly before every exit.
func Sequential(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	_, err = conn.Write([]byte("ping"))
	conn.Close()
	return err
}
