// Package bad leaks connections: conns acquired from dial calls whose
// Close is missing entirely or unreachable on some exit path.
package bad

import "net"

// Probe never closes the conn it dialed.
func Probe(addr string) error {
	conn, err := net.Dial("tcp", addr) // want "never closed in this function"
	if err != nil {
		return err
	}
	_, err = conn.Write([]byte("ping"))
	return err
}

// Handshake closes on the failure path but leaks on success.
func Handshake(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err != nil {
		conn.Close()
		return err
	}
	return nil // want "exit path drops net.Conn conn"
}
