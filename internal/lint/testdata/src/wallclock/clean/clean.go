// Package clean is wallclock's silent twin: time reaches it only
// through an injected clock, and the only time-package identifiers
// used are value arithmetic (Duration constants, Time methods), which
// the analyzer must not confuse with clock reads.
package clean

import "time"

// Clock is the injected time source; observing time through it is the
// sanctioned pattern.
type Clock interface {
	Now() time.Time
	Since(time.Time) time.Duration
}

const tick = 50 * time.Millisecond

// Elapsed uses only the injected clock and time.Time methods —
// now.After here is Time.After the comparison, not the forbidden
// package function.
func Elapsed(c Clock, start time.Time) time.Duration {
	now := c.Now()
	if now.After(start) {
		return now.Sub(start)
	}
	return c.Since(start) + tick
}
