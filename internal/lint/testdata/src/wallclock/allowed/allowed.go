// Package allowed is excused from the wallclock contract by the
// harness allowlist, the per-file escape hatch for code that only
// ever runs against real sockets.
package allowed

import "time"

// Stamp reads the real clock; the allowlist keeps this silent.
func Stamp() time.Time { return time.Now() }
