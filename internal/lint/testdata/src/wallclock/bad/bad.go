// Package bad observes the wall clock directly in a clocked package —
// every site below must be flagged.
package bad

import "time"

// Poll spins on real time.
func Poll(done chan struct{}) time.Duration {
	start := time.Now()               // want "time.Now in clocked package bad"
	time.Sleep(10 * time.Millisecond) // want "time.Sleep in clocked package bad"
	select {
	case <-done:
	case <-time.After(time.Second): // want "time.After in clocked package bad"
	}
	return time.Since(start) // want "time.Since in clocked package bad"
}

// Schedule arms real timers.
func Schedule(fn func()) *time.Timer {
	t := time.NewTimer(time.Minute) // want "time.NewTimer in clocked package bad"
	time.AfterFunc(time.Minute, fn) // want "time.AfterFunc in clocked package bad"
	return t
}
