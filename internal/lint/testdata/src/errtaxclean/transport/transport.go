// Package transport is errtaxonomy's silent twin on the sentinel
// side: every sentinel below is classifiable.
package transport

import "errors"

// Sentinel failures, all reachable from the classifier.
var (
	ErrAlpha = errors.New("transport: alpha")
	ErrBeta  = errors.New("transport: beta")
)
