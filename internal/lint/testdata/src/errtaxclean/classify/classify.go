// Package classify is errtaxonomy's silent twin on the consumer side:
// the classifier handles every sentinel and all switches exhaust
// their enums.
package classify

import (
	"errors"

	"lintest/errtaxclean/transport"
)

// Kind is the enum type consumers switch over.
type Kind string

// The declared Kind values.
const (
	KindDial     Kind = "dial"
	KindIncoming Kind = "incoming"
)

// Classify buckets every transport sentinel.
func Classify(err error) string {
	switch {
	case errors.Is(err, transport.ErrAlpha):
		return "alpha"
	case errors.Is(err, transport.ErrBeta):
		return "beta"
	}
	return "other"
}

// Describe covers every Kind.
func Describe(k Kind) string {
	switch k {
	case KindDial:
		return "dial"
	case KindIncoming:
		return "incoming"
	}
	return ""
}

// Buckets covers every class Classify returns.
func Buckets(err error) int {
	switch Classify(err) {
	case "alpha":
		return 1
	case "beta":
		return 2
	case "other":
		return 3
	}
	return 0
}
