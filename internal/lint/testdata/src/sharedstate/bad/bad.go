// Package bad demonstrates sharedstate violations: state reached from
// more than one goroutine without a consistent guard. Shapes covered:
// a captured variable written by the goroutine and its spawner with
// no lock, a struct field the goroutine guards but the spawner does
// not (lockset mismatch), two sibling goroutines disagreeing about a
// shared map's mutex, and a pointer passed as a go-call argument with
// unguarded writes on both sides.
package bad

import "sync"

// CapturedCounter races a captured integer between the goroutine and
// the spawner.
func CapturedCounter() int {
	n := 0
	go func() {
		n++ // want "n is shared with the goroutine"
	}()
	n++
	return n
}

type server struct {
	mu    sync.Mutex
	conns int
}

// Run guards conns in the goroutine but writes it bare afterwards:
// the locksets do not intersect.
func (s *server) Run() {
	go s.loop()
	s.conns++ // want "field conns of s is shared with the goroutine"
}

func (s *server) loop() {
	for i := 0; i < 10; i++ {
		s.mu.Lock()
		s.conns++
		s.mu.Unlock()
	}
}

// Siblings spawns two goroutines over one map; only the first takes
// the mutex.
func Siblings() {
	m := make(map[int]int)
	var mu sync.Mutex
	go func() {
		mu.Lock()
		m[1] = 1
		mu.Unlock()
	}()
	go func() { // want "memory reached through m is shared with the sibling goroutine"
		m[2] = 2
	}()
}

type counter struct{ hits int }

// SpawnArg shares a pointer with a named go'd function; both sides
// write the field with no guard at all.
func SpawnArg() {
	c := &counter{}
	go bump(c)
	c.hits++ // want "field hits of c is shared with the goroutine"
}

func bump(c *counter) {
	c.hits++
}
