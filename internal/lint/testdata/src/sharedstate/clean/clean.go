// Package clean is the silent twin of sharedstate/bad: the same
// sharing shapes made race-free by a mutex held on both sides, a
// join (wg.Wait / channel receive) before the spawner touches the
// state, confinement before the go statement, and Go 1.22
// per-iteration variables.
package clean

import "sync"

type server struct {
	mu    sync.Mutex
	conns int
}

// Run and loop both hold s.mu: the normalized locksets intersect.
func (s *server) Run() {
	go s.loop()
	s.mu.Lock()
	s.conns++
	s.mu.Unlock()
}

func (s *server) loop() {
	for i := 0; i < 10; i++ {
		s.mu.Lock()
		s.conns++
		s.mu.Unlock()
	}
}

// JoinedCounter writes the captured variable only after wg.Wait, so
// the accesses cannot overlap the goroutine's.
func JoinedCounter() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++
	}()
	wg.Wait()
	n++
	return n
}

// ReceiveJoin uses a channel receive as the happens-after edge.
func ReceiveJoin() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 42
		close(done)
	}()
	<-done
	return n
}

// ConfinedBeforeGo finishes every spawner-side access before the go
// statement; afterwards the goroutine owns the map alone.
func ConfinedBeforeGo() {
	m := make(map[int]int)
	m[0] = 1
	go func() {
		m[1] = 2
	}()
}

// PerIterationVar re-declares the loop variable, so each goroutine
// captures a fresh per-iteration instance nobody else touches.
func PerIterationVar(items []*server) {
	for _, it := range items {
		it := it
		go func() {
			it.mu.Lock()
			it.conns++
			it.mu.Unlock()
		}()
	}
}

// ReadOnlySharing never writes: read/read sharing is not a race.
func ReadOnlySharing(cfg map[string]string) {
	go func() {
		_ = cfg["a"]
	}()
	_ = cfg["b"]
}
