// Package bad breaks wire symmetry every way the analyzer knows: a
// one-sided custom codec, encodes with no decode counterpart (direct
// and through an any-typed helper), a shape mismatch under a shared
// message code, and unbounded decode inputs.
package bad

import (
	"bytes"
	"io"

	"lintest/rlp"
)

// Lopsided customizes only the encode direction; the reflection path
// would decode a different wire shape.
// wantnext "declares EncodeRLP but not DecodeRLP"
type Lopsided struct {
	X uint64
}

// EncodeRLP is the lone half of the codec.
func (l *Lopsided) EncodeRLP(w io.Writer) error { return nil }

// Orphan goes out on the wire and nothing reads it back.
type Orphan struct {
	A uint64
	B string
}

// SendOrphan is the only codec touch point for Orphan.
func SendOrphan(w *bytes.Buffer) {
	rlp.Encode(w, &Orphan{A: 1, B: "x"}) // want "nothing in the module decodes it"
}

// Ghost is encoded only through an any-typed helper: the analyzer
// resolves the concrete type at the caller.
type Ghost struct {
	G uint64
}

func encodeAny(w *bytes.Buffer, v interface{}) error {
	return rlp.Encode(w, v)
}

// SendGhost feeds the helper a type with no decoder.
func SendGhost(w *bytes.Buffer) {
	encodeAny(w, &Ghost{G: 2}) // want "message type Ghost is RLP-encoded"
}

// PingMsg ties the mismatched encoder and decoder together.
const PingMsg = 0x01

// PingOut is what goes out under PingMsg.
type PingOut struct {
	Seq     uint64
	Payload []byte
	Extra   string
}

// PingIn is what the decoder under PingMsg expects — one field, not
// three.
type PingIn struct {
	Seq uint64
}

// SendPing encodes three fields under PingMsg.
func SendPing(w *bytes.Buffer) {
	code := uint64(PingMsg)
	_ = code
	rlp.Encode(w, &PingOut{Seq: 9}) // want "no decoder under the same code matches its field shape"
}

// RecvPing decodes one field under PingMsg.
func RecvPing(payload []byte) {
	if len(payload) > 1024 {
		return
	}
	code := uint64(PingMsg)
	_ = code
	var in PingIn
	rlp.DecodeBytes(payload, &in)
}

// decodePingOut keeps PingOut round-trippable in principle (rule 2)
// while staying out of the PingMsg pairing — it references no message
// code.
func decodePingOut(payload []byte) {
	if len(payload) > 1024 {
		return
	}
	var out PingOut
	rlp.DecodeBytes(payload, &out)
}

// RecvUnbounded decodes a payload nothing ever measured.
func RecvUnbounded(payload []byte) {
	var in PingIn
	rlp.DecodeBytes(payload, &in) // want "no earlier len"
}

// RecvReader decodes straight off a reader with no limit anywhere.
func RecvReader(r io.Reader) {
	var in PingIn
	rlp.Decode(r, &in) // want "unbounded io.Reader"
}

// RecvNoLimit builds a stream with the limit explicitly disabled.
func RecvNoLimit(r io.Reader) {
	s := rlp.NewStream(r, 0)
	var in PingIn
	s.Decode(&in) // want "no input limit"
}
