// Package clean keeps wire symmetry: paired custom codecs, encodes
// with decode counterparts (including one resolved through a local
// interface variable), a shape-compatible decode twin under a shared
// message code, and every decode input bounded.
package clean

import (
	"bytes"
	"io"

	"lintest/rlp"
)

const maxEchoSize = 1 << 10

// EchoMsg pairs the echo encoder with its decoders.
const EchoMsg = 0x02

// Paired customizes both directions of its codec.
type Paired struct {
	N uint64
}

// EncodeRLP writes the custom form.
func (p *Paired) EncodeRLP(w io.Writer) error { return nil }

// DecodeRLP reads it back.
func (p *Paired) DecodeRLP(s *rlp.Stream) error { return nil }

// Echo round-trips through the reflection path.
type Echo struct {
	N    uint64
	Body []byte
}

// EchoAck matches Echo's wire shape — uint then byte string — without
// sharing the type.
type EchoAck struct {
	Seq  uint64
	Data []byte
}

// SendEcho encodes under EchoMsg.
func SendEcho(w *bytes.Buffer) {
	code := uint64(EchoMsg)
	_ = code
	rlp.Encode(w, &Echo{N: 1})
}

// RecvEcho decodes a shape twin under the same code: compatible field
// count, order, and kinds satisfy the pairing.
func RecvEcho(payload []byte) {
	if len(payload) > maxEchoSize {
		return
	}
	code := uint64(EchoMsg)
	_ = code
	var ack EchoAck
	rlp.DecodeBytes(payload, &ack)
}

// recvEchoDirect decodes Echo itself through an interface local — the
// new(T) idiom the analyzer resolves via reaching definitions.
func recvEchoDirect(payload []byte) {
	if len(payload) > maxEchoSize {
		return
	}
	var v interface{} = new(Echo)
	rlp.DecodeBytes(payload, v)
}

// DecodeFrom decodes off a stream parameter: the creator set the
// limit, so the site is exempt.
func DecodeFrom(s *rlp.Stream) error {
	var e Echo
	return s.Decode(&e)
}

// DecodeLimited builds its own stream with a real input cap.
func DecodeLimited(r io.Reader) error {
	s := rlp.NewStream(r, maxEchoSize)
	var e Echo
	return s.Decode(&e)
}
