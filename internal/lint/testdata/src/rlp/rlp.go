// Package rlp is a codec stub for the wiresym golden fixtures: the
// analyzer recognizes these entry points by package path and name, so
// only the signatures matter here.
package rlp

import "io"

// EncodeToBytes serializes v.
func EncodeToBytes(v interface{}) ([]byte, error) { return nil, nil }

// Encode serializes v to w.
func Encode(w io.Writer, v interface{}) error { return nil }

// DecodeBytes parses b into v.
func DecodeBytes(b []byte, v interface{}) error { return nil }

// Decode parses r into v.
func Decode(r io.Reader, v interface{}) error { return nil }

// Stream is a resumable decoder with an input limit.
type Stream struct {
	r     io.Reader
	limit uint64
}

// NewStream wraps r with an input byte limit; 0 disables the limit.
func NewStream(r io.Reader, limit uint64) *Stream {
	return &Stream{r: r, limit: limit}
}

// Decode parses the next value from the stream into v.
func (s *Stream) Decode(v interface{}) error { return nil }
