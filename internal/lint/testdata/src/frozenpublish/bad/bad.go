// Package bad demonstrates frozen-after-publish violations: every
// function publishes a value (atomic Store, channel send, or a call
// that publishes) and then mutates its reachable object graph. Shapes
// covered: a direct field write after an atomic Store, a write
// through an alias of the published pointer, a slice element write
// after a channel send, a mutating builtin after a send, a mutating
// helper call after a Store, and a write after an interprocedural
// publishing call.
package bad

import "sync/atomic"

// Snapshot mirrors the census snapshot shape: published behind an
// atomic pointer, read lock-free.
type Snapshot struct {
	Count int
	Items []int
}

// DirectWriteAfterStore mutates the snapshot it just published.
func DirectWriteAfterStore(p *atomic.Pointer[Snapshot]) {
	s := &Snapshot{Count: 1}
	p.Store(s)
	s.Count = 2 // want "write to s\\.Count after the atomic Store on p"
}

// AliasWriteAfterStore mutates the published object through a second
// variable aliasing it — the union-find must see through the copy.
func AliasWriteAfterStore(p *atomic.Pointer[Snapshot]) {
	s := &Snapshot{}
	alias := s
	p.Store(s)
	alias.Count++ // want "write to alias\\.Count after the atomic Store on p"
}

// ElementWriteAfterSend rewrites a slice element after handing the
// slice to another goroutine over a channel.
func ElementWriteAfterSend(out chan<- []int) {
	buf := []int{1, 2, 3}
	out <- buf
	buf[0] = 9 // want "write to buf\\[0\\] after the send on out"
}

// BuiltinMutateAfterSend mutates a sent map with a builtin.
func BuiltinMutateAfterSend(out chan<- map[string]int, m map[string]int) {
	out <- m
	delete(m, "gone") // want "builtin delete mutates m after the send on out"
}

func scrub(s *Snapshot) {
	s.Count = 0
}

// HelperMutateAfterStore mutates the published object through a
// helper whose interprocedural summary says it writes its parameter.
func HelperMutateAfterStore(p *atomic.Pointer[Snapshot]) {
	s := &Snapshot{Count: 3}
	p.Store(s)
	scrub(s) // want "call to .*scrub mutates s after the atomic Store on p"
}

func publish(p *atomic.Pointer[Snapshot], s *Snapshot) {
	p.Store(s)
}

// WriteAfterPublishingCall publishes through a helper, so the call
// site itself is the publish point the later write violates.
func WriteAfterPublishingCall(p *atomic.Pointer[Snapshot]) {
	s := &Snapshot{}
	publish(p, s)
	s.Items = append(s.Items, 1) // want "write to s\\.Items after the publishing call to .*publish" "builtin append mutates s\\.Items after the publishing call to .*publish"
}
