// Package clean is the silent twin of frozenpublish/bad: every
// function publishes, but respects the freeze — copy-on-write before
// publishing, rebinding to a fresh object inside a publish loop, and
// mutating only objects outside the published alias class.
package clean

import "sync/atomic"

// Snapshot mirrors the bad twin's shape.
type Snapshot struct {
	Count int
	Items []int
}

// CopyThenPublish is the census idiom: build a private copy, publish
// it, keep mutating only the template. The value copy must not join
// the published alias class.
func CopyThenPublish(p *atomic.Pointer[Snapshot], tmpl *Snapshot) {
	c := *tmpl
	c.Count++
	p.Store(&c)
	tmpl.Count++ // the template was never published
}

// PublishLoop rebinds the variable to a fresh object every iteration
// before mutating it, so each Store freezes an object that is never
// touched again.
func PublishLoop(p *atomic.Pointer[Snapshot], rounds int) {
	var s *Snapshot
	for i := 0; i < rounds; i++ {
		s = &Snapshot{}
		s.Count = i
		p.Store(s)
	}
}

// SendThenMutateOther sends one slice and mutates a different one.
func SendThenMutateOther(out chan<- []int) {
	a := []int{1}
	b := []int{2}
	out <- a
	b[0] = 3
	_ = b
}

// HelperOnFreshObject calls the mutating helper on an object that was
// never published.
func HelperOnFreshObject(p *atomic.Pointer[Snapshot]) {
	s := &Snapshot{}
	p.Store(s)
	other := &Snapshot{}
	reset(other)
}

func reset(s *Snapshot) {
	s.Count = 0
}

// ReadAfterPublish only reads the published object, which is always
// allowed.
func ReadAfterPublish(p *atomic.Pointer[Snapshot]) int {
	s := &Snapshot{Count: 7}
	p.Store(s)
	return s.Count + len(s.Items)
}
