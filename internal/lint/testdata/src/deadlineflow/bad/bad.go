// Package bad performs conn I/O reachable from a dial with no
// deadline armed on any path: directly, through a helper that reads
// its parameter, and through a method reading a wrapped conn field.
package bad

import "net"

// Probe dials and reads with nothing bounding the read: a peer that
// accepts and never sends a byte pins this function forever.
func Probe(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	buf := make([]byte, 128)
	conn.Read(buf) // want "conn.Read on conn from Dial runs with no deadline on any path"
}

// pull reads its parameter without arming; the obligation travels to
// every call site.
func pull(conn net.Conn) {
	buf := make([]byte, 64)
	conn.Read(buf)
}

// ProbeIndirect feeds a fresh unarmed dial into pull.
func ProbeIndirect(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	pull(conn) // want "call to .*pull \\(which reads/writes without arming\\) on conn from Dial"
}

// wire wraps the socket behind an interface field, the rlpx frameRW
// shape.
type wire struct {
	fd net.Conn
}

// pump reads through the wrapped field; the obligation lands on the
// receiver.
func (w *wire) pump() {
	buf := make([]byte, 32)
	w.fd.Read(buf)
}

// RunWire builds the wrapper around an unarmed dial and pumps it.
func RunWire(addr string) {
	fd, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer fd.Close()
	w := &wire{fd: fd}
	w.pump() // want "call to .*pump \\(which reads/writes without arming\\) on conn from Dial"
}
