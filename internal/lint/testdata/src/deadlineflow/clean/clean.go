// Package clean performs the same dial-then-I/O shapes as the bad
// twin, every one bounded: direct arming, conditional (may-path)
// arming, arming delegated to helpers, a close watchdog, and the
// conn-wrapper pass-through exemption.
package clean

import (
	"io"
	"net"
	"time"
)

// Armed is the baseline: dial, arm, read.
func Armed(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 128)
	conn.Read(buf)
}

// ArmedConditionally uses the zero-disables idiom: some path arms, so
// the may-path analysis stays silent.
func ArmedConditionally(addr string, timeout time.Duration) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
	}
	buf := make([]byte, 16)
	conn.Read(buf)
}

// armAndRead arms before reading, so it carries no obligation to its
// callers.
func armAndRead(conn net.Conn, d time.Duration) {
	conn.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 16)
	conn.Read(buf)
}

// Delegated hands the fresh conn to a self-arming helper.
func Delegated(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	armAndRead(conn, time.Second)
}

// armConn only arms; callers count a call to it as arming because a
// conn flows in.
func armConn(conn net.Conn, d time.Duration) {
	conn.SetDeadline(time.Now().Add(d))
}

// ArmedViaHelper arms through armConn before reading.
func ArmedViaHelper(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	armConn(conn, time.Second)
	buf := make([]byte, 8)
	conn.Read(buf)
}

// Watched bounds the read with a close watchdog instead of a
// deadline — the simclock idiom for virtually-clocked code.
func Watched(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	t := time.AfterFunc(3*time.Second, func() { conn.Close() })
	defer t.Stop()
	buf := make([]byte, 64)
	conn.Read(buf)
}

// FullRead covers the io helper entry points.
func FullRead(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 32)
	io.ReadFull(conn, buf)
}

// loggingConn is a pass-through wrapper: it implements net.Conn, so
// arming the wrapper arms the wrapped socket and its Read method is
// exempt from carrying an obligation.
type loggingConn struct {
	net.Conn
	n int
}

func (c *loggingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n += n
	return n, err
}

// Wrapped arms the wrapper, then reads through it.
func Wrapped(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	defer conn.Close()
	lc := &loggingConn{Conn: conn}
	lc.SetDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	lc.Read(buf)
}
