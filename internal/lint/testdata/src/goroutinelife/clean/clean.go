// Package clean spawns only goroutines with provable termination
// signals: channel receives, selects, closable-conn reads, bounded
// loops, and std-library targets outside the module's proof scope.
package clean

import (
	"net"
	"sync"
)

// Receiver loops forever but blocks on a channel receive each
// iteration: closing ch unblocks and the zero value drains through.
func Receiver(ch chan int) {
	total := 0
	go func() {
		for {
			total += <-ch
		}
	}()
}

// Selector loops forever around a select: a closed done channel makes
// the first case fire immediately.
func Selector(done chan struct{}, in chan string) {
	go func() {
		for {
			select {
			case <-done:
				return
			case s := <-in:
				_ = s
			}
		}
	}()
}

// Ranger drains a channel; the loop ends when the channel closes.
func Ranger(in chan []byte) {
	go func() {
		n := 0
		for b := range in {
			n += len(b)
		}
	}()
}

// ConnReader loops on a conn read: closing the conn fails the read,
// which is the shutdown path the crawler uses for its serve loops.
func ConnReader(conn net.Conn) {
	go func() {
		buf := make([]byte, 256)
		for {
			conn.Read(buf)
		}
	}()
}

// ConnReaderIndirect reaches the closable read through a named helper.
func ConnReaderIndirect(conn net.Conn) {
	go drain(conn)
}

func drain(conn net.Conn) {
	buf := make([]byte, 64)
	for {
		conn.Read(buf)
	}
}

// Bounded spawns a loop with an exit edge: whether it fires is not the
// analyzer's problem, termination-by-construction is assumed.
func Bounded(items []int) {
	go func() {
		sum := 0
		for i := 0; i < len(items); i++ {
			sum += items[i]
		}
	}()
}

// StdTarget spawns a function from outside the module: nothing to
// prove against, the spawn is skipped.
func StdTarget(wg *sync.WaitGroup) {
	wg.Add(1)
	go wg.Done()
}
