// Package bad leaks goroutines: spawned loops with no exit edge and
// no termination signal, directly and through callees, plus a spawn
// target the analyzer cannot resolve.
package bad

// Spin spawns a literal that loops forever doing arithmetic: no
// channel, no conn, no way out.
func Spin() {
	n := 0
	go func() { // want "loops forever with no termination signal"
		for {
			n++
		}
	}()
	_ = n
}

// SpinIndirect spawns a named function whose forever-loop hides one
// call deeper — the interprocedural case.
func SpinIndirect() {
	go pump() // want "loops forever with no termination signal.*via"
}

func pump() {
	grind()
}

func grind() {
	total := 0
	for {
		total += 2
	}
}

// SpinDynamic spawns through a slice element the analyzer cannot
// resolve statically.
func SpinDynamic(handlers []func()) {
	go handlers[0]() // want "cannot be statically resolved"
}
