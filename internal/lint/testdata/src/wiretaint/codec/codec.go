// Package codec is the golden universe's wire codec: wiretaint is
// configured with this package as a source, so its exported decode
// APIs inject taint at cross-package call sites and the []byte
// parameters of those entry points are wire at function entry.
package codec

import "encoding/binary"

// Frame is a decoded frame header: every field is peer-chosen.
type Frame struct {
	Size  uint64
	Delay uint64
}

// DecodeFrame parses a frame header out of wire bytes. It has no
// sinks of its own; callers receive a wire-tainted Frame.
func DecodeFrame(data []byte) Frame {
	if len(data) < 16 {
		return Frame{}
	}
	return Frame{
		Size:  binary.BigEndian.Uint64(data[0:8]),
		Delay: binary.BigEndian.Uint64(data[8:16]),
	}
}

// DecodeList preallocates the element count the peer declared: the
// entry-parameter taint root, caught inside the source package itself.
func DecodeList(data []byte) []uint64 {
	if len(data) < 8 {
		return nil
	}
	n := binary.BigEndian.Uint64(data)
	out := make([]uint64, 0, n)      // want "wire-tainted allocation size: n derives from wire input data of [\\w./]*DecodeList"
	for i := uint64(0); i < n; i++ { // want "wire-tainted loop bound: n derives from wire input data of [\\w./]*DecodeList"
		out = append(out, i)
	}
	return out
}
