// Package bad demonstrates every sink kind wiretaint must flag: a
// peer-controlled value sizing an allocation, bounding a loop, keying
// a long-lived map, setting a timer, multiplying goroutines, and
// sizing a channel — plus taint that crosses a function boundary and
// is reported with its call-site witness chain.
package bad

import (
	"encoding/binary"
	"io"
	"time"

	"lintest/wiretaint/codec"
)

// ReadFrame sizes its buffer by whatever the decoded header declared.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	f := codec.DecodeFrame(hdr)
	buf := make([]byte, f.Size) // want "wire-tainted allocation size: f.Size derives from codec.DecodeFrame"
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DrainCount loops as many times as the peer asked.
func DrainCount(r io.Reader) []byte {
	hdr := make([]byte, 4)
	if _, err := r.Read(hdr); err != nil {
		return nil
	}
	n := binary.BigEndian.Uint32(hdr)
	var out []byte
	for i := uint32(0); i < n; i++ { // want "wire-tainted loop bound: n derives from conn read"
		out = append(out, byte(i))
	}
	return out
}

// seen outlives every call: a long-lived index.
var seen = make(map[uint64]int)

// Record indexes the long-lived map by a peer-chosen ID.
func Record(r io.Reader) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	id := binary.BigEndian.Uint64(hdr)
	seen[id]++ // want "wire-tainted long-lived map key: id derives from io.ReadFull"
}

// Backoff sleeps however long the peer requested.
func Backoff(r io.Reader) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	delay := binary.BigEndian.Uint64(hdr)
	time.Sleep(time.Duration(delay)) // want "wire-tainted timer/deadline duration: time.Duration\\(delay\\)"
}

// FanOut spawns one goroutine per peer-declared shard.
func FanOut(r io.Reader) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	shards := binary.BigEndian.Uint32(hdr)
	for i := uint32(0); i < shards; i++ { // want "wire-tainted loop bound: shards"
		go work() // want "wire-tainted goroutine spawn count: work"
	}
}

func work() {}

// Queue sizes the work queue by the peer's declared backlog.
func Queue(r io.Reader) chan []byte {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil
	}
	backlog := binary.BigEndian.Uint32(hdr)
	return make(chan []byte, backlog) // want "wire-tainted channel capacity: backlog"
}

// grow allocates whatever count its caller resolved: the finding is
// reported here, with the witness chain naming Relay's call site.
func grow(count uint64) []uint64 {
	return make([]uint64, count) // want "wire-tainted allocation size: count derives from io.ReadFull at bad.go:\\d+; path: param count of [\\w./]*grow ← [\\w./]*Relay \\(bad.go:\\d+\\)"
}

// Relay passes the peer's count straight through to grow.
func Relay(r io.Reader) []uint64 {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil
	}
	count := binary.BigEndian.Uint64(hdr)
	return grow(count)
}

// census is the one map that is allowed to grow with the network.
var census = make(map[uint64]int)

// Census records every peer that ever spoke. The map-key finding is
// real, but the growth IS the measurement, so it carries a justified
// suppression and stays silent.
func Census(r io.Reader) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	id := binary.BigEndian.Uint64(hdr)
	//lint:ignore wiretaint the census map is the measurement: it must grow with every distinct peer
	census[id]++
}
