// Package clean mirrors every shape in the bad twin with a sanitizer
// the engine must recognize: an abort-on-oversize guard, the clamp
// idiom, a frame-local map, a clamp inside a callee (sanitizing
// through the memoized summary), the min builtin, a 16-bit length
// prefix, and an exempted entropy reader. It must stay silent.
package clean

import (
	"encoding/binary"
	"errors"
	"io"
	"time"

	"lintest/wiretaint/codec"
	"lintest/wiretaint/entropy"
)

const (
	maxFrame   = 1 << 16
	maxCount   = 1024
	maxBacklog = 256
	maxDelay   = time.Second
)

var errOversize = errors.New("frame too large")

// ReadFrame aborts on an oversize declaration before allocating.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	f := codec.DecodeFrame(hdr)
	size := f.Size
	if size > maxFrame {
		return nil, errOversize
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DrainCount clamps the trip count before looping.
func DrainCount(r io.Reader) []byte {
	hdr := make([]byte, 4)
	if _, err := r.Read(hdr); err != nil {
		return nil
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxCount {
		n = maxCount
	}
	var out []byte
	for i := uint32(0); i < n; i++ {
		out = append(out, byte(i))
	}
	return out
}

// Record tallies peer IDs in a frame-local map that dies with the
// call: a wire key into a short-lived map is not a resource leak.
func Record(r io.Reader) int {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0
	}
	id := binary.BigEndian.Uint64(hdr)
	local := make(map[uint64]int)
	local[id]++
	return len(local)
}

// Backoff clamps the peer's requested delay to the local budget.
func Backoff(r io.Reader) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	delay := time.Duration(binary.BigEndian.Uint64(hdr))
	if delay > maxDelay {
		delay = maxDelay
	}
	time.Sleep(delay)
}

// clamp caps any peer count at the census budget: the callee-side
// sanitizer whose memoized summary bounds every call site.
func clamp(n uint64) uint64 {
	if n > maxCount {
		return maxCount
	}
	return n
}

// FanOut spawns at most clamp(shards) workers: the clamp inside the
// callee sanitizes this call site through its summary.
func FanOut(r io.Reader) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return
	}
	shards := clamp(binary.BigEndian.Uint64(hdr))
	for i := uint64(0); i < shards; i++ {
		go work()
	}
}

func work() {}

// Queue caps the queue depth with the min builtin.
func Queue(r io.Reader) chan []byte {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil
	}
	backlog := binary.BigEndian.Uint32(hdr)
	return make(chan []byte, min(int(backlog), maxBacklog))
}

// Prefix reads a 2-byte length prefix: 16 bits cannot express a
// hostile allocation, so the width itself is the sanitizer.
func Prefix(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(hdr)
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// Seed sizes a table from the entropy stream, not the wire: the
// exempted reader is the node's own randomness, so the count is not
// peer-chosen and no finding fires.
func Seed(src *entropy.Reader) []uint64 {
	var buf [8]byte
	if _, err := src.Read(buf[:]); err != nil {
		return nil
	}
	n := binary.BigEndian.Uint64(buf[:])
	out := make([]uint64, n)
	for i := range out {
		out[i] = n
	}
	return out
}
