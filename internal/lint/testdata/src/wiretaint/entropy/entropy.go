// Package entropy is the golden universe's randomness source: its
// reader has the Read([]byte) (int, error) shape of a conn read, but
// wiretaint is configured to exempt it — the bytes it produces were
// never chosen by a peer.
package entropy

// Reader yields locally generated pseudo-randomness.
type Reader struct{ state uint64 }

// Read fills p with bytes no remote peer controls.
func (r *Reader) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}
