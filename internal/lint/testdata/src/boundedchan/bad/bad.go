// Package bad demonstrates boundedchan violations: channel capacities
// the analyzer cannot prove bounded, and blocking sends into visibly
// buffered queues. Shapes covered: a capacity taken straight from a
// parameter, a plain send on a locally made buffered channel, a
// select whose every arm is a send (no escape), and a buffered struct
// field sent to without a select.
package bad

type queue struct {
	jobs chan int
}

// newQueue sizes the queue from an unclamped parameter.
func newQueue(depth int) *queue {
	return &queue{jobs: make(chan int, depth)} // want "channel capacity depth is not provably capped"
}

// push is a plain send into the bounded field queue.
func (q *queue) push(v int) {
	q.jobs <- v // want "blocking send on bounded channel q\\.jobs"
}

// localPlain sends into a local buffered channel with nothing to
// stop it blocking when full.
func localPlain() int {
	ch := make(chan int, 8)
	ch <- 1 // want "blocking send on bounded channel ch"
	return <-ch
}

// selectNoEscape has only send arms: when both queues are full the
// select blocks exactly like a bare send.
func selectNoEscape() {
	a := make(chan int, 4)
	b := make(chan int, 4)
	select {
	case a <- 1: // want "blocking send on bounded channel a"
	case b <- 2: // want "blocking send on bounded channel b"
	}
}
