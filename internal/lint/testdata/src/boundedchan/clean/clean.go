// Package clean is the silent twin of boundedchan/bad: constant and
// clamped capacities, sends under selects with escape arms, blocking
// sends on unbuffered channels (where the rendezvous is the point),
// and channels whose construction the package cannot see.
package clean

const maxDepth = 64

type queue struct {
	jobs chan int
}

// newQueue clamps the requested depth before sizing the channel.
func newQueue(depth int) *queue {
	if depth > maxDepth {
		depth = maxDepth
	}
	return &queue{jobs: make(chan int, depth)}
}

// tryPush drops on a full queue instead of blocking.
func (q *queue) tryPush(v int) bool {
	select {
	case q.jobs <- v:
		return true
	default:
		return false
	}
}

// pushOrCancel escapes through a receive arm.
func (q *queue) pushOrCancel(v int, cancel <-chan struct{}) bool {
	select {
	case q.jobs <- v:
		return true
	case <-cancel:
		return false
	}
}

// constantCap uses a compile-time capacity and a select with default.
func constantCap() {
	ch := make(chan int, 16)
	select {
	case ch <- 1:
	default:
	}
}

// unbuffered sends block by design: the channel is a rendezvous.
func unbuffered() {
	ch := make(chan int)
	go func() { <-ch }()
	ch <- 1
}

// unknownOrigin cannot see where the channel came from, so the send
// discipline is the caller's contract.
func unknownOrigin(out chan<- int) {
	out <- 1
}
