// Package suppress exercises the //lint:ignore machinery: a justified
// directive silences its finding, while directives missing a reason or
// naming an unknown analyzer are findings themselves and silence
// nothing.
package suppress

import "time"

// Good carries a written reason, so its clock read stays silent.
func Good() time.Time {
	//lint:ignore wallclock this package exercises the suppression machinery
	return time.Now()
}

// MissingReason shows a bare directive: the directive is reported and
// the clock read underneath is still flagged.
func MissingReason() time.Time {
	// wantnext "carries no reason"
	//lint:ignore wallclock
	return time.Now() // want "time.Now in clocked package suppress"
}

// UnknownAnalyzer references a checker that does not exist.
func UnknownAnalyzer() time.Time {
	// wantnext "unknown analyzer"
	//lint:ignore notreal this analyzer does not exist
	return time.Now() // want "time.Now in clocked package suppress"
}

// Nameless shows a directive with no analyzer at all.
func Nameless() time.Time {
	// wantnext "names no analyzer"
	//lint:ignore
	return time.Now() // want "time.Now in clocked package suppress"
}

// Stale carries a fully justified directive with nothing left to
// silence — the clock read it once excused is gone — so the directive
// itself is reported.
func Stale() time.Time {
	// wantnext "no longer suppresses any finding"
	//lint:ignore wallclock the clock read this excused was removed
	return time.Time{}
}

// StaleWire carries a justified wiretaint directive over an
// allocation the taint engine proves constant-sized: nothing is left
// to silence, so the directive itself is reported.
func StaleWire() []byte {
	// wantnext "no longer suppresses any finding"
	//lint:ignore wiretaint the peer-sized allocation this excused was rewritten to a fixed frame
	return make([]byte, 64)
}
