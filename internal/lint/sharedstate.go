package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/ir"
)

// SharedState flags struct fields and captured variables reached from
// more than one goroutine without a consistent guard. For every go
// statement in the configured packages it determines what the spawned
// goroutine shares with its spawner — captured variables of a go'd
// literal, reference arguments and the receiver of a go'd call — then
// compares the accesses on both sides (and between sibling goroutines
// of the same spawner):
//
//   - every access must hold one common mutex (a lockset walk reusing
//     locknet's tracking, with the lock name normalized over the
//     shared root so `t.mu` in the goroutine matches `s.mu` in the
//     spawner), or
//   - every access must go through sync/atomic (atomic-typed fields
//     and sync.* fields are self-synchronizing and skipped), or
//   - the spawner must confine the value: accesses only before the go
//     statement, or provably after a join (a wg.Wait() or channel
//     receive that dominates the access).
//
// A data race needs a write, so read/read sharing is never flagged.
// The check is direct-access only on each side (method calls on the
// shared object are not expanded); := redefinitions are fresh
// per-iteration variables and do not count as writes to the captured
// one. Aliases within each side are folded through ir.Escape, so
// copying the root into another variable does not hide an access.
type SharedState struct {
	// Packages restricts where go statements are checked; empty means
	// every module package.
	Packages []string
}

// Name implements Analyzer.
func (ss *SharedState) Name() string { return "sharedstate" }

// Doc implements Analyzer.
func (ss *SharedState) Doc() string {
	return "state reached from more than one goroutine must be mutex-guarded, atomic, or confined"
}

// Run implements Analyzer.
func (ss *SharedState) Run(l *Loader, pkgs []*Package) []Finding {
	prog := l.Program(pkgs)
	c := &sharedChecker{
		prog: prog,
		escs: make(map[*ir.Func]*ir.Escape),
		doms: make(map[*ir.Func][]*ir.BitSet),
	}
	var findings []Finding
	for _, f := range prog.Funcs {
		if len(ss.Packages) > 0 && !matchesAny(f.Pkg.Path, ss.Packages) {
			continue
		}
		findings = append(findings, c.checkSpawner(ss.Name(), f)...)
	}
	return findings
}

type sharedChecker struct {
	prog *ir.Program
	escs map[*ir.Func]*ir.Escape
	doms map[*ir.Func][]*ir.BitSet
}

func (c *sharedChecker) escapeOf(f *ir.Func) *ir.Escape {
	e, ok := c.escs[f]
	if !ok {
		e = ir.BuildEscape(f)
		c.escs[f] = e
	}
	return e
}

func (c *sharedChecker) domOf(f *ir.Func) []*ir.BitSet {
	d, ok := c.doms[f]
	if !ok {
		d = ir.Dominators(f)
		c.doms[f] = d
	}
	return d
}

// spawnInfo is one go statement with its resolved target and the
// values shared across it.
type spawnInfo struct {
	g     *ast.GoStmt
	at    stmtAt
	fn    *ir.Func // spawned function (nil when unresolvable)
	roots []sharedRoot
}

// sharedRoot pairs the spawner-side variable with the goroutine-side
// variable naming the same object (identical for captures).
type sharedRoot struct {
	spawnerVar *types.Var
	goVar      *types.Var
}

// ssAccess is one access to a shared root on one side.
type ssAccess struct {
	field  *types.Var // nil: the variable itself / its pointee
	write  bool
	atomic bool // performed through a sync/atomic package call
	held   map[string]bool
	pos    token.Pos
}

func (c *sharedChecker) checkSpawner(analyzer string, f *ir.Func) []Finding {
	spawns := c.spawnsOf(f)
	if len(spawns) == 0 {
		return nil
	}
	var findings []Finding
	for _, sp := range spawns {
		if sp.fn == nil {
			continue
		}
		for _, root := range sp.roots {
			capture := root.spawnerVar == root.goVar
			goAccs := c.goroutineAccesses(sp.fn, root.goVar, capture)
			if len(goAccs) == 0 {
				continue
			}
			spAccs := c.spawnerAccessesAfter(f, sp, root.spawnerVar, capture)
			findings = append(findings, c.judge(analyzer, f, sp, root, goAccs, spAccs)...)
		}
	}
	// Sibling goroutines of one spawner racing each other.
	for i := 0; i < len(spawns); i++ {
		for j := i + 1; j < len(spawns); j++ {
			findings = append(findings, c.judgeSiblings(analyzer, f, spawns[i], spawns[j])...)
		}
	}
	return findings
}

// spawnsOf collects every go statement of f with its shared roots.
func (c *sharedChecker) spawnsOf(f *ir.Func) []spawnInfo {
	pkg := f.Pkg
	esc := c.escapeOf(f)
	var out []spawnInfo
	for _, b := range f.Blocks {
		for idx, s := range b.Nodes {
			g, ok := s.(*ast.GoStmt)
			if !ok {
				continue
			}
			sp := spawnInfo{g: g, at: stmtAt{s: s, b: b, idx: idx}}
			spawned, _ := c.prog.ResolveSpawn(pkg, g)
			sp.fn = spawned
			if spawned != nil {
				if lit, isLit := unparen(g.Call.Fun).(*ast.FuncLit); isLit {
					for _, v := range ir.FreeVars(pkg, lit) {
						sp.roots = append(sp.roots, sharedRoot{spawnerVar: v, goVar: v})
					}
				} else if sel, isSel := unparen(g.Call.Fun).(*ast.SelectorExpr); isSel {
					if rv := ir.RecvVar(spawned); rv != nil && isRefLikeType(rv.Type()) {
						if sv := ir.RootVar(pkg, sel.X); sv != nil {
							sp.roots = append(sp.roots, sharedRoot{spawnerVar: sv, goVar: rv})
						}
					}
				}
				params := ir.ParamVars(spawned)
				for argIdx, arg := range g.Call.Args {
					if argIdx >= len(params) || params[argIdx] == nil {
						continue
					}
					pv := params[argIdx]
					if !isRefLikeType(pv.Type()) {
						continue
					}
					if sv := ir.RootVar(pkg, arg); sv != nil {
						sp.roots = append(sp.roots, sharedRoot{spawnerVar: sv, goVar: pv})
					}
				}
				_ = esc
			}
			out = append(out, sp)
		}
	}
	return out
}

// goroutineAccesses collects every direct access to root (or an
// alias of it) inside the spawned function's body.
func (c *sharedChecker) goroutineAccesses(fn *ir.Func, root *types.Var, capture bool) []ssAccess {
	esc := c.escapeOf(fn)
	var accs []ssAccess
	walkHeld(fn.Pkg, fn.Body.List, map[string]bool{}, func(node ast.Node, held map[string]bool) {
		collectAccesses(fn.Pkg, node, held, esc, root, capture, func(a ssAccess) {
			accs = append(accs, a)
		})
	})
	return accs
}

// spawnerAccessesAfter collects the spawner's direct accesses to root
// that can run concurrently with the goroutine: statements reachable
// after the go statement, minus those behind a dominating join
// (wg.Wait or a channel receive).
func (c *sharedChecker) spawnerAccessesAfter(f *ir.Func, sp spawnInfo, root *types.Var, capture bool) []ssAccess {
	esc := c.escapeOf(f)
	dom := c.domOf(f)
	after := afterStmts(f, sp.at.b, sp.at.idx)
	afterSet := make(map[ast.Stmt]stmtAt, len(after))
	for _, at := range after {
		afterSet[at.s] = at
	}
	joins := joinStmts(f, after)
	var accs []ssAccess
	walkHeld(f.Pkg, f.Body.List, map[string]bool{}, func(node ast.Node, held map[string]bool) {
		collectAccesses(f.Pkg, node, held, esc, root, capture, func(a ssAccess) {
			st := enclosingNarrow(f, a.pos)
			if st == nil {
				return
			}
			at, ok := afterSet[st]
			if !ok || st == ast.Stmt(sp.g) {
				return
			}
			if isJoined(dom, joins, at) {
				return
			}
			accs = append(accs, a)
		})
	})
	return accs
}

// judge compares goroutine-side and spawner-side accesses per
// field and reports unguarded write sharing.
func (c *sharedChecker) judge(analyzer string, f *ir.Func, sp spawnInfo, root sharedRoot, goAccs, spAccs []ssAccess) []Finding {
	if len(spAccs) == 0 {
		return nil
	}
	goLine := f.Position(sp.g.Pos()).Line
	var findings []Finding
	for _, field := range sharedFields(goAccs, spAccs) {
		ga := filterField(goAccs, field)
		sa := filterField(spAccs, field)
		if len(ga) == 0 || len(sa) == 0 {
			continue
		}
		all := append(append([]ssAccess(nil), ga...), sa...)
		if !anyWrite(all) || guarded(all) {
			continue
		}
		findings = append(findings, Finding{
			Pos:      f.Position(firstWritePos(all)),
			Analyzer: analyzer,
			Message: fmt.Sprintf("%s is shared with the goroutine spawned at line %d but not consistently guarded (goroutine holds {%s}, spawner holds {%s}): hold one mutex on both sides, use sync/atomic, or confine it before the go statement",
				accessDesc(field, root.spawnerVar), goLine, commonHeldList(ga), commonHeldList(sa)),
		})
	}
	return findings
}

// judgeSiblings checks two goroutines spawned by the same function
// against each other over the roots they both receive.
func (c *sharedChecker) judgeSiblings(analyzer string, f *ir.Func, a, b spawnInfo) []Finding {
	if a.fn == nil || b.fn == nil {
		return nil
	}
	esc := c.escapeOf(f)
	var findings []Finding
	for _, ra := range a.roots {
		for _, rb := range b.roots {
			if !esc.MayAlias(ra.spawnerVar, rb.spawnerVar) {
				continue
			}
			ga := c.goroutineAccesses(a.fn, ra.goVar, ra.spawnerVar == ra.goVar)
			gb := c.goroutineAccesses(b.fn, rb.goVar, rb.spawnerVar == rb.goVar)
			if len(ga) == 0 || len(gb) == 0 {
				continue
			}
			lineA := f.Position(a.g.Pos()).Line
			for _, field := range sharedFields(ga, gb) {
				fa := filterField(ga, field)
				fb := filterField(gb, field)
				if len(fa) == 0 || len(fb) == 0 {
					continue
				}
				all := append(append([]ssAccess(nil), fa...), fb...)
				if !anyWrite(all) || guarded(all) {
					continue
				}
				findings = append(findings, Finding{
					Pos:      f.Position(b.g.Pos()),
					Analyzer: analyzer,
					Message: fmt.Sprintf("%s is shared with the sibling goroutine spawned at line %d but not consistently guarded (this goroutine holds {%s}, sibling holds {%s}): hold one mutex in both goroutines or use sync/atomic",
						accessDesc(field, ra.spawnerVar), lineA, commonHeldList(fb), commonHeldList(fa)),
				})
			}
		}
	}
	return findings
}

// accessDesc renders the storage a finding is about: a struct field,
// memory reached through the shared value, or (when the key is the
// root itself) the captured variable.
func accessDesc(field, root *types.Var) string {
	switch {
	case field == nil:
		return fmt.Sprintf("memory reached through %s", root.Name())
	case field == root:
		return root.Name()
	default:
		return fmt.Sprintf("field %s of %s", field.Name(), root.Name())
	}
}

// sharedFields lists the distinct field keys present on both sides,
// ordered deterministically (nil key — the variable itself — first).
func sharedFields(a, b []ssAccess) []*types.Var {
	onA := make(map[*types.Var]bool)
	for _, x := range a {
		onA[x.field] = true
	}
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	for _, x := range b {
		if onA[x.field] && !seen[x.field] {
			seen[x.field] = true
			out = append(out, x.field)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := token.NoPos, token.NoPos
		if out[i] != nil {
			pi = out[i].Pos()
		}
		if out[j] != nil {
			pj = out[j].Pos()
		}
		return pi < pj
	})
	return out
}

func filterField(accs []ssAccess, field *types.Var) []ssAccess {
	var out []ssAccess
	for _, a := range accs {
		if a.field == field {
			out = append(out, a)
		}
	}
	return out
}

func anyWrite(accs []ssAccess) bool {
	for _, a := range accs {
		if a.write {
			return true
		}
	}
	return false
}

func firstWritePos(accs []ssAccess) token.Pos {
	best := token.NoPos
	for _, a := range accs {
		if a.write && (best == token.NoPos || a.pos < best) {
			best = a.pos
		}
	}
	if best == token.NoPos && len(accs) > 0 {
		best = accs[0].pos
	}
	return best
}

// guarded reports whether the access set is consistently protected:
// every access is atomic, or one normalized lock is held at every
// access.
func guarded(accs []ssAccess) bool {
	allAtomic := true
	for _, a := range accs {
		if !a.atomic {
			allAtomic = false
			break
		}
	}
	if allAtomic {
		return true
	}
	var common map[string]bool
	for _, a := range accs {
		if a.atomic {
			// An atomic access holds no lock; mixing atomic and plain
			// accesses to the same field is itself a race.
			return false
		}
		if common == nil {
			common = cloneHeld(a.held)
			continue
		}
		for k := range common {
			if !a.held[k] {
				delete(common, k)
			}
		}
	}
	return len(common) > 0
}

// commonHeldList renders the locks held at every access of one side.
func commonHeldList(accs []ssAccess) string {
	var common map[string]bool
	for _, a := range accs {
		if common == nil {
			common = cloneHeld(a.held)
			continue
		}
		for k := range common {
			if !a.held[k] {
				delete(common, k)
			}
		}
	}
	keys := make([]string, 0, len(common))
	for k := range common {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// joinStmts finds the statements in the after-region that
// happen-after the goroutine's work: sync.WaitGroup.Wait calls,
// channel receives, and ranges over channels.
func joinStmts(f *ir.Func, after []stmtAt) []stmtAt {
	pkg := f.Pkg
	var out []stmtAt
	for _, at := range after {
		if rs, ok := at.s.(*ast.RangeStmt); ok {
			if t := pkg.Info.TypeOf(rs.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out = append(out, at)
				}
			}
			continue
		}
		if !simpleStmt(at.s) {
			continue
		}
		found := false
		inspectShallow(at.s, func(n ast.Node) {
			if found {
				return
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					found = true
				}
			case *ast.CallExpr:
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						found = true
					}
				}
			}
		})
		if found {
			out = append(out, at)
		}
	}
	return out
}

// isJoined reports whether a join dominates the access at `at`.
func isJoined(dom []*ir.BitSet, joins []stmtAt, at stmtAt) bool {
	for _, j := range joins {
		if j.b == at.b {
			if j.idx < at.idx {
				return true
			}
			continue
		}
		if ir.Dominates(dom, j.b, at.b) {
			return true
		}
	}
	return false
}

// enclosingNarrow maps pos to the narrowest block-resident statement
// containing it (EnclosingStmt returns the first, which for a
// position inside an if-body is the whole IfStmt header).
func enclosingNarrow(f *ir.Func, pos token.Pos) ast.Stmt {
	var best ast.Stmt
	for _, b := range f.Blocks {
		for _, s := range b.Nodes {
			if s.Pos() <= pos && pos < s.End() {
				if best == nil || (s.Pos() >= best.Pos() && s.End() <= best.End()) {
					best = s
				}
			}
		}
	}
	return best
}

// walkHeld walks a statement list in source order tracking the set of
// held mutexes exactly like locknet does (defer Unlock keeps the lock
// held; branches run under a clone), invoking cb for every simple
// statement and every compound-statement headline expression.
func walkHeld(pkg *ir.SourcePackage, list []ast.Stmt, held map[string]bool, cb func(node ast.Node, held map[string]bool)) {
	for _, stmt := range list {
		walkHeldStmt(pkg, stmt, held, cb)
	}
}

func walkHeldStmt(pkg *ir.SourcePackage, stmt ast.Stmt, held map[string]bool, cb func(node ast.Node, held map[string]bool)) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := syncLockOp(pkg, call); ok {
				switch name {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
		}
		cb(s, held)
	case *ast.DeferStmt:
		if _, name, ok := syncLockOp(pkg, s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			return // lock stays held for the rest of the function
		}
		cb(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkHeldStmt(pkg, s.Init, held, cb)
		}
		cb(s.Cond, held)
		walkHeld(pkg, s.Body.List, cloneHeld(held), cb)
		if s.Else != nil {
			walkHeldStmt(pkg, s.Else, cloneHeld(held), cb)
		}
	case *ast.ForStmt:
		inner := cloneHeld(held)
		if s.Init != nil {
			walkHeldStmt(pkg, s.Init, inner, cb)
		}
		if s.Cond != nil {
			cb(s.Cond, inner)
		}
		walkHeld(pkg, s.Body.List, inner, cb)
		if s.Post != nil {
			walkHeldStmt(pkg, s.Post, inner, cb)
		}
	case *ast.RangeStmt:
		cb(s.X, held)
		walkHeld(pkg, s.Body.List, cloneHeld(held), cb)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkHeldStmt(pkg, s.Init, held, cb)
		}
		if s.Tag != nil {
			cb(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				walkHeld(pkg, clause.Body, cloneHeld(held), cb)
			}
		}
	case *ast.TypeSwitchStmt:
		cb(s.Assign, held)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				walkHeld(pkg, clause.Body, cloneHeld(held), cb)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				inner := cloneHeld(held)
				if clause.Comm != nil {
					walkHeldStmt(pkg, clause.Comm, inner, cb)
				}
				walkHeld(pkg, clause.Body, inner, cb)
			}
		}
	case *ast.BlockStmt:
		walkHeld(pkg, s.List, held, cb)
	case *ast.LabeledStmt:
		walkHeldStmt(pkg, s.Stmt, held, cb)
	case nil:
	default:
		// Assign, Send, IncDec, Return, Decl, Go, Branch, Empty.
		cb(s, held)
	}
}

// syncLockOp mirrors locknet's mutexOp against an ir.SourcePackage.
func syncLockOp(pkg *ir.SourcePackage, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// collectAccesses finds direct accesses to variables selected by
// match inside one statement or headline expression, classifying
// each as read/write/atomic and stamping the (normalized) lockset.
//
// Three access classes, told apart by the field key so only accesses
// to the same storage pair up:
//
//   - field accesses (x.f) key on the field object and match any
//     alias of the root: both sides touch the pointee's field.
//   - memory accesses (x[i], *p, append(x, ...)) key on nil and match
//     any alias: both sides touch storage reached through the value.
//   - cell accesses (the bare identifier: n++, reading n) key on the
//     root variable itself and only count for a closure-captured
//     root, where both goroutines literally share the variable's
//     storage. Rebinding a local *alias* is private to its own
//     binding and is not an access at all.
//
// Field accesses match on MayAlias (a pointer read out of anywhere in
// the class can reach the struct); raw-memory accesses match on
// MayAliasTight so two slices that merely contain the same element
// pointers are not mistaken for the same backing array.
func collectAccesses(pkg *ir.SourcePackage, node ast.Node, held map[string]bool, esc *ir.Escape, root *types.Var, capture bool, emit func(ssAccess)) {
	match := func(v *types.Var) bool { return esc.MayAlias(v, root) }
	matchMem := func(v *types.Var) bool { return esc.MayAliasTight(v, root) }
	selW, cellW, memW := writeTargets(pkg, node)
	atomicRanges := atomicCallRanges(pkg, node)
	norm := normalizeHeld(held, root.Name())
	skipIdents := make(map[*ast.Ident]bool)
	record := func(field *types.Var, write bool, pos token.Pos) {
		emit(ssAccess{
			field:  field,
			write:  write,
			atomic: inRanges(atomicRanges, pos),
			held:   norm,
			pos:    pos,
		})
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			base, ok := stripToIdent(n.X)
			if !ok {
				return true
			}
			skipIdents[base] = true
			v := objVarOf(pkg, base)
			if v == nil || !match(v) {
				return true
			}
			field, isField := pkg.Info.Uses[n.Sel].(*types.Var)
			if !isField || !field.IsField() {
				return true // method or package selector: not a field access
			}
			if selfSyncType(field.Type()) {
				return true
			}
			write := selW[n]
			if isChanType(field.Type()) && !write {
				return true // channel reads are synchronization, not data
			}
			record(field, write, n.Pos())
		case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
			var baseExpr ast.Expr
			switch x := n.(type) {
			case *ast.IndexExpr:
				baseExpr = x.X
			case *ast.SliceExpr:
				baseExpr = x.X
			case *ast.StarExpr:
				baseExpr = x.X
			}
			base, ok := stripToIdent(baseExpr)
			if !ok {
				return true
			}
			skipIdents[base] = true
			v := objVarOf(pkg, base)
			if v == nil || !matchMem(v) || selfSyncType(v.Type()) {
				return true
			}
			record(nil, memW[base], n.Pos())
		case *ast.Ident:
			if skipIdents[n] {
				return true
			}
			if _, isDef := pkg.Info.Defs[n]; isDef {
				return true // declaration site, not an access
			}
			v := objVarOf(pkg, n)
			if v == nil || selfSyncType(v.Type()) {
				return true
			}
			if memW[n] && matchMem(v) {
				// append/delete/clear/copy through a bare identifier
				// writes the structure the value references.
				record(nil, true, n.Pos())
				return true
			}
			if !capture || v != root {
				return true // an alias's own binding is private storage
			}
			write := cellW[n]
			if isChanType(v.Type()) && !write {
				return true
			}
			record(root, write, n.Pos())
		}
		return true
	})
}

// writeTargets analyzes a statement for the expressions it writes:
// the innermost field selector of each written chain (selW), plain
// identifiers rebound wholesale (cellW), and identifiers whose
// referenced storage is written through an index, deref, or mutating
// builtin (memW). A := defining a genuinely new variable is not a
// write to any shared one (per-iteration loop variables are fresh
// instances).
func writeTargets(pkg *ir.SourcePackage, node ast.Node) (selW map[*ast.SelectorExpr]bool, cellW, memW map[*ast.Ident]bool) {
	selW = make(map[*ast.SelectorExpr]bool)
	cellW = make(map[*ast.Ident]bool)
	memW = make(map[*ast.Ident]bool)
	markWrite := func(expr ast.Expr, define, forceMem bool) {
		sel, id, mem := writeChain(expr)
		if sel != nil {
			selW[sel] = true
			return
		}
		if id == nil {
			return
		}
		if mem || forceMem {
			memW[id] = true
			return
		}
		if define {
			if _, isDef := pkg.Info.Defs[id]; isDef {
				return // fresh variable
			}
		}
		cellW[id] = true
	}
	stmt, ok := node.(ast.Stmt)
	if !ok {
		return selW, cellW, memW
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			markWrite(lhs, s.Tok == token.DEFINE, false)
		}
	case *ast.IncDecStmt:
		markWrite(s.X, false, false)
	}
	inspectShallow(stmt, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
				switch b.Name() {
				case "delete", "clear", "copy", "append":
					if len(call.Args) > 0 {
						markWrite(call.Args[0], false, true)
					}
				}
			}
		}
	})
	return selW, cellW, memW
}

// writeChain walks a written expression down to the innermost field
// selector rooted at a plain identifier, or the identifier itself.
// mem reports whether the write goes through the identifier's value
// (an index or deref) rather than rebinding the identifier:
// `x.f[i].g = v` writes through field f of x; `x[i] = v` and
// `*x = v` write storage x references; `x = v` rebinds x.
func writeChain(expr ast.Expr) (sel *ast.SelectorExpr, id *ast.Ident, mem bool) {
	cur := expr
	through := false
	for {
		switch x := unparen(cur).(type) {
		case *ast.IndexExpr:
			cur, through = x.X, true
		case *ast.SliceExpr:
			cur, through = x.X, true
		case *ast.StarExpr:
			cur, through = x.X, true
		case *ast.SelectorExpr:
			if base, ok := stripToIdent(x.X); ok {
				return x, base, false
			}
			cur = x.X
		case *ast.Ident:
			return nil, x, through
		default:
			return nil, nil, false
		}
	}
}

// stripToIdent unwraps parens and derefs down to a plain identifier.
func stripToIdent(expr ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// atomicCallRanges returns the source ranges of calls into the
// sync/atomic package (atomic.AddInt64(&x.n, 1) style); accesses
// inside them are atomic by construction.
func atomicCallRanges(pkg *ir.SourcePackage, node ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				out = append(out, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
	return out
}

func inRanges(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// normalizeHeld rewrites lock names rooted at the shared variable to
// a side-independent form, so `t.mu` held in a method goroutine
// matches `s.mu` held in the spawner when t and s name the same
// object.
func normalizeHeld(held map[string]bool, rootName string) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		switch {
		case k == rootName:
			out["@"] = true
		case strings.HasPrefix(k, rootName+"."):
			out["@"+k[len(rootName):]] = true
		default:
			out[k] = true
		}
	}
	return out
}

// objVarOf resolves an identifier against an ir.SourcePackage.
func objVarOf(pkg *ir.SourcePackage, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// selfSyncType reports whether t is a sync or sync/atomic type (or a
// pointer to one): such values synchronize themselves.
func selfSyncType(t types.Type) bool {
	switch x := t.(type) {
	case *types.Pointer:
		return selfSyncType(x.Elem())
	case *types.Named:
		if p := x.Obj().Pkg(); p != nil {
			path := p.Path()
			return path == "sync" || path == "sync/atomic"
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isRefLikeType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}
