package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is the stable machine-readable rendering of one
// Finding; the flat shape keeps consumers free of go/token types.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array (always an array — an
// empty run prints [], not null).
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// WriteAnnotations renders findings as GitHub Actions workflow
// commands, so a CI lint job surfaces each one inline on the PR diff:
//
//	::error file=internal/x/x.go,line=12,col=3,title=repolint/wallclock::message
func WriteAnnotations(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=repolint/%s::%s\n",
			escapeAnnotationProperty(f.Pos.Filename), f.Pos.Line, f.Pos.Column,
			escapeAnnotationProperty(f.Analyzer), escapeAnnotationData(f.Message))
		if err != nil {
			return err
		}
	}
	return nil
}

// SARIF 2.1.0 skeleton, reduced to the subset GitHub code scanning
// ingests: one run, one driver, one rule per analyzer, one result per
// finding. Each analyzer surfaces as its own rule so suppression and
// severity can be managed per-analyzer in the code-scanning UI.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log for GitHub code
// scanning upload. The rule table is built from the analyzer set that
// ran (not just the analyzers that fired), plus the "lint" pseudo-rule
// the suppression-hygiene checks report under, so every result's
// ruleId resolves. Finding filenames are expected to be repo-relative
// with forward slashes — the form the cache and text outputs already
// use — since code scanning matches artifact URIs against the checkout.
func WriteSARIF(w io.Writer, analyzers []Analyzer, fs []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	rules = append(rules, sarifRule{
		ID:               "lint",
		ShortDescription: sarifMessage{Text: "suppression hygiene: stale, bare, or unknown //lint:ignore directives"},
	})

	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "repolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(&log)
}

// escapeAnnotationData escapes the message part of a workflow command
// per the Actions runner's rules.
func escapeAnnotationData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeAnnotationProperty escapes a property value, which
// additionally cannot contain the property and command delimiters.
func escapeAnnotationProperty(s string) string {
	s = escapeAnnotationData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
