package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonFinding is the stable machine-readable rendering of one
// Finding; the flat shape keeps consumers free of go/token types.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array (always an array — an
// empty run prints [], not null).
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// WriteAnnotations renders findings as GitHub Actions workflow
// commands, so a CI lint job surfaces each one inline on the PR diff:
//
//	::error file=internal/x/x.go,line=12,col=3,title=repolint/wallclock::message
func WriteAnnotations(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=repolint/%s::%s\n",
			escapeAnnotationProperty(f.Pos.Filename), f.Pos.Line, f.Pos.Column,
			escapeAnnotationProperty(f.Analyzer), escapeAnnotationData(f.Message))
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeAnnotationData escapes the message part of a workflow command
// per the Actions runner's rules.
func escapeAnnotationData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeAnnotationProperty escapes a property value, which
// additionally cannot contain the property and command delimiters.
func escapeAnnotationProperty(s string) string {
	s = escapeAnnotationData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
