package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/ir"
)

// DeadlineFlow verifies that every net.Conn read or write reachable
// from a dial or accept runs under a deadline. A peer that accepts
// the TCP connection and then never sends a byte ("never-ACK", the
// hostile peer faultnet ships) pins an undeadlined reader goroutine
// and its dial slot forever; the paper's crawler survives only
// because every I/O path is armed.
//
// The analysis is interprocedural and deliberately *may*-path: an
// I/O operation is fine when SOME path from function entry arms a
// deadline first, because the codebase's arming idiom is conditional
// ("if timeout > 0 { SetReadDeadline(...) }" — zero disables the
// deadline on purpose, with the caller holding a budget deadline
// instead). What the analyzer hunts is the bug class where NO arming
// exists anywhere on the path from the dial to the read.
//
// Mechanics, per function in the configured packages:
//
//   - conn-tainted values: net.Conn-typed locals fed by *dial*/
//     *accept* calls, net.Conn-ish parameters, and "conn fields" —
//     struct fields of interface type that some module code assigns a
//     net.Conn (e.g. rlpx's frameRW.conn).
//   - arming: a Set{,Read,Write}Deadline call, a call to a module
//     function that (transitively) arms one on a conn argument (e.g.
//     rlpx.armHandshakeDeadline), or a clock AfterFunc watchdog whose
//     callback closes the conn.
//   - an unarmed I/O on a conn from a local dial is a finding; an
//     unarmed I/O on a parameter or receiver field becomes an
//     obligation the analyzer carries to every call site up the call
//     graph, where it must meet arming or another dial.
//
// Methods named like net.Conn's own methods on types that implement
// net.Conn are exempt pass-throughs: wrappers (faultnet's fault-
// injecting conn) forward deadlines to the wrapped conn, so arming
// the wrapper arms the real socket.
type DeadlineFlow struct {
	// Packages restricts where findings are reported; obligation
	// propagation crosses the whole module.
	Packages []string
}

// Name implements Analyzer.
func (d *DeadlineFlow) Name() string { return "deadlineflow" }

// Doc implements Analyzer.
func (d *DeadlineFlow) Doc() string {
	return "conn I/O reachable from dial/accept must run under a deadline"
}

// dfSource identifies where an unarmed conn flowed from, within one
// function.
type dfSource struct {
	kind  int // dfLocal, dfParam, dfRecv
	param int // parameter index for dfParam
	pos   token.Pos
	desc  string
}

const (
	dfLocal = iota // from a dial/accept call in this function
	dfParam
	dfRecv
)

// dfSummary is one function's unarmed-I/O obligations.
type dfSummary struct {
	// obligations lists the parameter/receiver sources with unarmed
	// I/O (findings for dfLocal are emitted immediately, not carried).
	obligations []dfSource
}

type dflowChecker struct {
	prog       *ir.Program
	analyzer   string
	packages   []string
	connIface  *types.Interface
	connFields map[*types.Var]bool
	armCache   *ir.SummaryCache
	memo       map[*ir.Func]*dfSummary
	visiting   map[*ir.Func]bool
	defuse     map[*ir.Func]*ir.DefUse
	findings   []Finding
}

func (dc *dflowChecker) defUseOf(f *ir.Func) *ir.DefUse {
	if du, ok := dc.defuse[f]; ok {
		return du
	}
	du := ir.BuildDefUse(f)
	dc.defuse[f] = du
	return du
}

// Run implements Analyzer.
func (d *DeadlineFlow) Run(l *Loader, pkgs []*Package) []Finding {
	connType, err := l.StdType("net", "Conn")
	if err != nil {
		return []Finding{{Analyzer: d.Name(), Message: fmt.Sprintf("cannot resolve net.Conn: %v", err)}}
	}
	connIface, ok := connType.Underlying().(*types.Interface)
	if !ok {
		return []Finding{{Analyzer: d.Name(), Message: "net.Conn is not an interface?"}}
	}
	dc := &dflowChecker{
		prog:      l.Program(pkgs),
		analyzer:  d.Name(),
		packages:  d.Packages,
		connIface: connIface,
		armCache:  ir.NewSummaryCache(),
		memo:      make(map[*ir.Func]*dfSummary),
		visiting:  make(map[*ir.Func]bool),
		defuse:    make(map[*ir.Func]*ir.DefUse),
	}
	dc.connFields = collectConnFields(pkgs, connIface)

	// Summarize every function in the configured packages; the
	// summary computation emits dfLocal findings as it goes, and
	// obligations that reach a configured-package function with no
	// module caller at all are reported there (the conn enters the
	// module here; nothing upstream can arm it).
	for _, f := range dc.prog.Funcs {
		if !matchesAny(f.Pkg.Path, d.Packages) {
			continue
		}
		dc.summarize(f)
	}
	return dc.findings
}

// collectConnFields finds struct fields of interface type that any
// module code assigns a net.Conn-implementing value — the "wrapped
// socket" fields like rlpx frameRW.conn through which raw I/O flows.
func collectConnFields(pkgs []*Package, conn *types.Interface) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	addIfConn := func(pkg *Package, field types.Object, val ast.Expr) {
		v, ok := field.(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		if _, isIface := v.Type().Underlying().(*types.Interface); !isIface {
			return
		}
		if t := pkg.Info.TypeOf(val); t != nil && implementsConn(t, conn) {
			fields[v] = true
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if obj := pkg.Info.Uses[key]; obj != nil {
							addIfConn(pkg, obj, kv.Value)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						sel, ok := unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
							addIfConn(pkg, obj, n.Rhs[i])
						}
					}
				}
				return true
			})
		}
	}
	return fields
}

// summarize computes (memoized) the unarmed-I/O obligations of f,
// emitting findings for obligations that bottom out at a local dial.
func (dc *dflowChecker) summarize(f *ir.Func) *dfSummary {
	if s, ok := dc.memo[f]; ok {
		return s
	}
	if dc.visiting[f] {
		return &dfSummary{} // call-graph cycle: no obligations
	}
	dc.visiting[f] = true
	s := dc.compute(f)
	delete(dc.visiting, f)
	dc.memo[f] = s
	return s
}

func (dc *dflowChecker) compute(f *ir.Func) *dfSummary {
	sum := &dfSummary{}
	if dc.isConnWrapperMethod(f) {
		return sum
	}

	armedIn := dc.armedFacts(f)
	armedAt := func(b *ir.Block) bool {
		// Coarse within-block ordering: a block that contains an
		// arming statement anywhere counts as armed for its own ops.
		return armedIn[b.Index].Has(0) || dc.blockArms(f, b)
	}

	report := func(src dfSource, b *ir.Block, what string, pos token.Pos) {
		switch src.kind {
		case dfLocal:
			if matchesAny(f.Pkg.Path, dc.packages) {
				dc.findings = append(dc.findings, Finding{
					Pos:      f.Position(pos),
					Analyzer: dc.analyzer,
					Message: fmt.Sprintf("%s on conn from %s runs with no deadline on any path: arm SetDeadline (or a close watchdog) between the dial and the I/O",
						what, src.desc),
				})
			}
		case dfParam, dfRecv:
			sum.obligations = append(sum.obligations, src)
		}
	}

	for _, b := range f.Blocks {
		if b.Unreachable() {
			continue
		}
		for _, s := range b.Nodes {
			inspectShallow(s, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				// Direct I/O on a tainted value.
				if target, what := dc.ioTarget(f, call); target != nil {
					if armedAt(b) {
						return
					}
					if src, ok := dc.classify(f, target, 0); ok {
						report(src, b, what, call.Pos())
					}
					return
				}
				// Obligations of a resolved module callee.
				obj := ir.CalleeOf(f.Pkg, call)
				if obj == nil {
					return
				}
				callee := dc.prog.FuncOf[obj]
				if callee == nil || callee == f {
					return
				}
				sub := dc.summarize(callee)
				if len(sub.obligations) == 0 || armedAt(b) {
					return
				}
				for _, ob := range sub.obligations {
					var arg ast.Expr
					switch ob.kind {
					case dfParam:
						if ob.param < len(call.Args) {
							arg = call.Args[ob.param]
						}
					case dfRecv:
						if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
							arg = sel.X
						}
					}
					if arg == nil {
						continue
					}
					if src, ok := dc.classify(f, arg, 0); ok {
						report(src, b, fmt.Sprintf("call to %s (which reads/writes without arming)", callee.Name), call.Pos())
					}
				}
			})
		}
	}
	return sum
}

// isConnWrapperMethod: a method on a type that itself implements
// net.Conn, named after one of net.Conn's methods — a pass-through
// wrapper whose deadline calls reach the wrapped socket.
func (dc *dflowChecker) isConnWrapperMethod(f *ir.Func) bool {
	if f.Decl == nil || f.Decl.Recv == nil || len(f.Decl.Recv.List) == 0 {
		return false
	}
	switch f.Decl.Name.Name {
	case "Read", "Write", "Close", "LocalAddr", "RemoteAddr",
		"SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return false
	}
	recv := f.Pkg.Info.TypeOf(f.Decl.Recv.List[0].Type)
	return recv != nil && implementsConn(recv, dc.connIface)
}

// armedFacts solves the single-bit forward may-problem "a deadline
// was armed on some path to here".
func (dc *dflowChecker) armedFacts(f *ir.Func) []*ir.BitSet {
	in, _ := ir.Solve(f, ir.Problem{
		Dir:       ir.Forward,
		MeetUnion: true,
		Bits:      1,
		Transfer: func(b *ir.Block, facts *ir.BitSet) *ir.BitSet {
			if dc.blockArms(f, b) {
				facts.Set(0)
			}
			return facts
		},
	})
	return in
}

// blockArms reports whether the block contains an arming statement.
func (dc *dflowChecker) blockArms(f *ir.Func, b *ir.Block) bool {
	for _, s := range b.Nodes {
		arms := false
		inspectShallow(s, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || arms {
				return
			}
			if dc.callArms(f, call, 0) {
				arms = true
			}
		})
		if arms {
			return true
		}
		// A clock watchdog: AfterFunc whose callback closes the conn
		// bounds the I/O exactly like a deadline (the simclock idiom
		// for code driven by the virtual clock).
		if isCloseWatchdog(s) {
			return true
		}
	}
	return false
}

// callArms: a Set*Deadline method call, or a call into a module
// function that (transitively) arms a deadline on a conn-ish
// argument.
func (dc *dflowChecker) callArms(f *ir.Func, call *ast.CallExpr, depth int) bool {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			return true
		}
	}
	if depth > 8 {
		return false
	}
	obj := ir.CalleeOf(f.Pkg, call)
	if obj == nil {
		return false
	}
	callee := dc.prog.FuncOf[obj]
	if callee == nil {
		return false
	}
	// Only count the callee's arming when a conn-ish value is passed
	// in (otherwise it arms some unrelated conn).
	connArg := false
	for _, arg := range call.Args {
		if t := f.Pkg.Info.TypeOf(arg); t != nil {
			if implementsConn(t, dc.connIface) || isIOInterface(t) {
				connArg = true
				break
			}
		}
	}
	if !connArg {
		return false
	}
	return dc.armCache.Memo(callee, "dflow.arms", false, func() bool {
		for _, b := range callee.Blocks {
			for _, s := range b.Nodes {
				arms := false
				inspectShallow(s, func(n ast.Node) {
					if c, ok := n.(*ast.CallExpr); ok && !arms && dc.callArms(callee, c, depth+1) {
						arms = true
					}
				})
				if arms {
					return true
				}
			}
		}
		return false
	})
}

// isCloseWatchdog matches `x := clk.AfterFunc(d, func() { conn.Close() })`
// style statements.
func isCloseWatchdog(s ast.Stmt) bool {
	found := false
	inspectShallowIncludingLits(s, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AfterFunc" {
			return
		}
		for _, arg := range call.Args {
			lit, ok := unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if s2, ok := unparen(c.Fun).(*ast.SelectorExpr); ok && s2.Sel.Name == "Close" {
						found = true
					}
				}
				return !found
			})
		}
	})
	return found
}

// inspectShallowIncludingLits is inspectShallow but it does enter
// function literals at the top level of the statement (needed to see
// the AfterFunc callback's body).
func inspectShallowIncludingLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		visit(n)
		return true
	})
}

// ioTarget decides whether call is a raw I/O operation on a conn-ish
// value and returns that value's expression.
func (dc *dflowChecker) ioTarget(f *ir.Func, call *ast.CallExpr) (ast.Expr, string) {
	// x.Read(...) / x.Write(...) where x is conn-ish.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if name == "Read" || name == "Write" {
			if dc.connish(f, sel.X) {
				return sel.X, "conn." + name
			}
		}
		// io.ReadFull(conn, buf) and friends.
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := f.Pkg.Info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "io" {
				var idx int
				switch name {
				case "ReadFull", "ReadAtLeast", "ReadAll", "Copy", "CopyN", "WriteString":
					if name == "Copy" || name == "CopyN" || name == "WriteString" {
						idx = 0 // dst/src position varies; check both below
					}
				default:
					return nil, ""
				}
				for i := idx; i < len(call.Args) && i < 2; i++ {
					if dc.connish(f, call.Args[i]) {
						return call.Args[i], "io." + name
					}
				}
			}
		}
	}
	return nil, ""
}

// connish: the expression's type implements net.Conn, or it selects a
// known conn field.
func (dc *dflowChecker) connish(f *ir.Func, e ast.Expr) bool {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if v, ok := f.Pkg.Info.Uses[sel.Sel].(*types.Var); ok && dc.connFields[v] {
			return true
		}
	}
	t := f.Pkg.Info.TypeOf(e)
	return t != nil && implementsConn(t, dc.connIface)
}

// classify traces a conn-ish expression back to its source within f:
// a local dial/accept, a parameter, or the receiver. Untraceable
// values (package state, channel receives, captured variables) return
// ok=false and are conservatively not reported.
func (dc *dflowChecker) classify(f *ir.Func, e ast.Expr, depth int) (dfSource, bool) {
	if depth > 8 {
		return dfSource{}, false
	}
	e = unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := f.Pkg.Info.Uses[e]
		if obj == nil {
			obj = f.Pkg.Info.Defs[e]
		}
		if obj == nil {
			return dfSource{}, false
		}
		if idx, isRecv, ok := paramIndex(f, obj); ok {
			if isRecv {
				return dfSource{kind: dfRecv, pos: e.Pos(), desc: "receiver"}, true
			}
			return dfSource{kind: dfParam, param: idx, pos: e.Pos(), desc: "parameter " + obj.Name()}, true
		}
		// Local: look at everything ever assigned to it.
		du := dc.defUseOf(f)
		if v, ok := obj.(*types.Var); ok {
			for _, rhs := range du.AllRHS(v) {
				if rhs == nil {
					continue
				}
				if src, ok := dc.classify(f, rhs, depth+1); ok {
					return src, true
				}
			}
		}
		return dfSource{}, false
	case *ast.CallExpr:
		name := strings.ToLower(calleeName(e))
		if strings.Contains(name, "dial") || strings.Contains(name, "accept") {
			return dfSource{kind: dfLocal, pos: e.Pos(), desc: calleeName(e)}, true
		}
		return dfSource{}, false
	case *ast.SelectorExpr:
		// A conn field: classify the base (receiver fields become
		// receiver obligations).
		if v, ok := f.Pkg.Info.Uses[e.Sel].(*types.Var); ok && dc.connFields[v] {
			if base, ok := unparen(e.X).(*ast.Ident); ok {
				obj := f.Pkg.Info.Uses[base]
				if _, isRecv, ok := paramIndex(f, obj); ok && isRecv {
					return dfSource{kind: dfRecv, pos: e.Pos(), desc: "receiver field " + e.Sel.Name}, true
				}
			}
		}
		return dfSource{}, false
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return dc.classify(f, e.X, depth+1)
		}
		return dfSource{}, false
	case *ast.CompositeLit:
		// Wrapping a conn in a struct: trace the first classifiable
		// element (&wrapper{c: fd} carries fd's source).
		for _, elt := range e.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if t := f.Pkg.Info.TypeOf(val); t == nil || (!implementsConn(t, dc.connIface) && !isIOInterface(t)) {
				continue
			}
			if src, ok := dc.classify(f, val, depth+1); ok {
				return src, true
			}
		}
		return dfSource{}, false
	}
	return dfSource{}, false
}

// paramIndex locates obj among f's parameters (index) or receiver.
func paramIndex(f *ir.Func, obj types.Object) (idx int, isRecv, ok bool) {
	if obj == nil {
		return 0, false, false
	}
	var ftype *ast.FuncType
	if f.Decl != nil {
		ftype = f.Decl.Type
		if f.Decl.Recv != nil {
			for _, fld := range f.Decl.Recv.List {
				for _, name := range fld.Names {
					if f.Pkg.Info.Defs[name] == obj {
						return 0, true, true
					}
				}
			}
		}
	} else if f.Lit != nil {
		ftype = f.Lit.Type
	}
	if ftype == nil || ftype.Params == nil {
		return 0, false, false
	}
	i := 0
	for _, fld := range ftype.Params.List {
		if len(fld.Names) == 0 {
			i++
			continue
		}
		for _, name := range fld.Names {
			if f.Pkg.Info.Defs[name] == obj {
				return i, false, true
			}
			i++
		}
	}
	return 0, false, false
}

// isIOInterface: io.Reader / io.Writer / io.ReadWriter and friends —
// the interface shapes conns hide behind in wrappers.
func isIOInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasRead, hasWrite := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Read":
			hasRead = true
		case "Write":
			hasWrite = true
		}
	}
	return hasRead || hasWrite
}
