// Package lint is a from-scratch static-analysis driver for this
// repository, built only on the standard library's go/parser, go/ast,
// and go/types (no golang.org/x/tools — the build environment is
// offline). It enforces the repo-wide contracts the runtime test
// suites can only check probabilistically:
//
//   - boundedalloc: every wire-derived length is capped before memory
//     is allocated for it (the bug class behind the 16 MiB-frame and
//     rlp size-overflow fixes).
//   - wallclock: clocked packages observe time only through
//     simclock.Clock, keeping simulated 82-day crawls deterministic.
//   - errtaxonomy: every transport sentinel error is classifiable by
//     nodefinder's OutcomeClass, and enum-style switches are
//     exhaustive, so no failure disappears from the census taxonomy.
//   - locknet: no mutex is held across net.Conn I/O or blocking
//     channel operations (the stall shape chaos tests find only by
//     luck).
//   - connclose: every net.Conn acquired from a dialer has Close
//     reachable on all exit paths of the acquiring function.
//
// Findings can be suppressed with a justified inline directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on, or on the line above, the offending line. The reason is
// mandatory; a bare suppression is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders a finding as file:line:col: analyzer: message, with
// the file path left exactly as the loader resolved it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Run receives every loaded module
// package at once because some contracts (errtaxonomy) are inherently
// cross-package.
type Analyzer interface {
	// Name is the identifier used in output and suppression comments.
	Name() string
	// Doc is a one-line description of the contract enforced.
	Doc() string
	// Run reports all violations found in pkgs.
	Run(l *Loader, pkgs []*Package) []Finding
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "lint:ignore"

// suppression is one parsed //lint:ignore directive. used records
// whether it matched at least one raw finding this run (stale
// detection).
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	col      int
	used     bool
}

// Run executes the analyzers over pkgs, filters findings through
// //lint:ignore directives, appends findings for malformed or stale
// suppressions, and returns everything sorted and deduplicated.
func Run(l *Loader, pkgs []*Package, analyzers []Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	var all []Finding
	for _, a := range analyzers {
		known[a.Name()] = true
		all = append(all, a.Run(l, pkgs)...)
	}

	sups, bad := collectSuppressions(pkgs, known)
	kept := all[:0]
	for _, f := range all {
		if !markSuppressed(sups, f) {
			kept = append(kept, f)
		}
	}
	kept = append(kept, bad...)
	// A justified suppression that no longer silences anything is
	// itself a finding: suppressions rot as analyzers and code evolve,
	// and a stale one hides the next real bug on that line.
	for i := range sups {
		if !sups[i].used {
			kept = append(kept, Finding{
				Pos:      token.Position{Filename: sups[i].file, Line: sups[i].line, Column: sups[i].col},
				Analyzer: "lint",
				Message: fmt.Sprintf("suppression of %q no longer suppresses any finding; delete the stale //lint:ignore",
					sups[i].analyzer),
			})
		}
	}
	return SortFindings(kept)
}

// SortFindings orders findings by file, line, column, analyzer, and
// message, then drops exact duplicates. Interprocedural analyzers can
// legitimately reach one offending statement through several
// call-graph paths; the report should still name it once.
func SortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 {
			p := fs[i-1]
			if p.Pos.Filename == f.Pos.Filename && p.Pos.Line == f.Pos.Line &&
				p.Pos.Column == f.Pos.Column && p.Analyzer == f.Analyzer && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// collectSuppressions parses every //lint:ignore directive in pkgs.
// Directives missing a reason, or naming an unknown analyzer, are
// returned as findings instead of suppressions: the policy is that a
// silence must always carry a written justification.
func collectSuppressions(pkgs []*Package, known map[string]bool) ([]suppression, []Finding) {
	var sups []suppression
	var bad []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) == 0 {
						bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
							Message: "suppression names no analyzer: //lint:ignore <analyzer> <reason>"})
						continue
					}
					name := fields[0]
					if !known[name] {
						bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
							Message: fmt.Sprintf("suppression references unknown analyzer %q", name)})
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(text, ignorePrefix+" "+name), name))
					if reason == "" {
						bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
							Message: fmt.Sprintf("suppression of %q carries no reason; a justification is required", name)})
						continue
					}
					sups = append(sups, suppression{analyzer: name, reason: reason, file: pos.Filename, line: pos.Line, col: pos.Column})
				}
			}
		}
	}
	return sups, bad
}

// markSuppressed reports whether f is covered by a directive on the
// same line or the line directly above it, marking every matching
// directive as used.
func markSuppressed(sups []suppression, f Finding) bool {
	hit := false
	for i := range sups {
		s := &sups[i]
		if s.analyzer != f.Analyzer || s.file != f.Pos.Filename {
			continue
		}
		if s.line == f.Pos.Line || s.line == f.Pos.Line-1 {
			s.used = true
			hit = true
		}
	}
	return hit
}

// funcBodies returns every function body in the file — declarations
// and literals — so statement-flow analyzers treat closures as
// independent functions.
func funcBodies(file *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		case *ast.FuncLit:
			if fn.Body != nil {
				bodies = append(bodies, fn.Body)
			}
		}
		return true
	})
	return bodies
}

// hasPrefixPath reports whether path equals prefix or sits below it.
func hasPrefixPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// matchesAny reports whether path matches any import-path prefix.
func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if hasPrefixPath(path, p) {
			return true
		}
	}
	return false
}
