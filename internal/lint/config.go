package lint

// RepoAnalyzers returns the twelve invariant analyzers configured for
// this repository's contracts. module is the module path from go.mod
// ("repro"); taking it as a parameter keeps the analyzers themselves
// reusable against the golden testdata trees, which load under a
// different module path.
func RepoAnalyzers(module string) []Analyzer {
	return []Analyzer{
		&BoundedAlloc{
			// Packages that parse bytes a remote peer controls. An
			// unchecked make() here converts a forged length field into
			// an allocation the attacker sizes.
			Packages: []string{
				module + "/internal/rlp",
				module + "/internal/rlpx",
				module + "/internal/devp2p",
				module + "/internal/eth",
				module + "/internal/snappy",
				module + "/internal/discv4",
			},
		},
		&Wallclock{
			// Packages driven by simclock.Clock in simulated 82-day
			// runs. A stray time.Now here silently decouples a
			// component from the virtual clock and corrupts the crawl
			// timeline.
			Packages: []string{
				module + "/internal/simnet",
				module + "/internal/discv4",
				module + "/internal/nodefinder",
				module + "/internal/faultnet",
				module + "/internal/ethnode",
				module + "/internal/rlpx",
				// The census daemon and HTTP layer tick and timestamp on
				// an injected clock so whole-crawl soak tests (and the
				// served epoch grid) are deterministic in virtual time.
				module + "/internal/census",
			},
			// Whole files excused from clock injection, each with the
			// reason printed when -v is set. Individual lines elsewhere
			// use //lint:ignore wallclock <reason>.
			AllowFiles: map[string]string{
				"internal/discv4/udp.go": "discv4 speaks wall-clock Unix expirations on the real UDP wire; " +
					"the transport is never driven by the simulated clock (simnet simulates discovery instead)",
				"internal/discv4/maintenance.go": "bucket revalidation/refresh tickers pace the real UDP transport, " +
					"which only runs against live sockets",
				"internal/ethnode/ethnode.go": "ethnode is the in-process honest peer for real-socket integration " +
					"tests; it deliberately runs on wall time like the remote peers it stands in for",
			},
		},
		&ErrTaxonomy{
			Transports: []string{
				module + "/internal/rlpx",
				module + "/internal/devp2p",
				module + "/internal/eth",
				module + "/internal/snappy",
				module + "/internal/faultnet",
			},
			ClassifierPkg:  module + "/internal/nodefinder",
			ClassifierFunc: "OutcomeClass",
			EnumTypes: []string{
				module + "/internal/nodefinder/mlog.ConnType",
			},
		},
		&LockNet{},
		&ConnClose{},
		&GoroutineLife{
			// Packages that spawn long-lived goroutines next to the
			// connection machinery. A loop with no shutdown signal here
			// outlives its dial slot and leaks for the rest of an
			// 82-day crawl.
			Packages: []string{
				module + "/internal/nodefinder",
				module + "/internal/discv4",
				module + "/internal/ethnode",
				module + "/internal/faultnet",
				module + "/internal/simnet",
				module + "/internal/census",
			},
		},
		&DeadlineFlow{
			// Packages whose functions perform conn I/O reachable from a
			// dial or accept. An unarmed read here hangs a crawler slot
			// on the first peer that stops talking mid-handshake.
			Packages: []string{
				module + "/internal/rlpx",
				module + "/internal/nodefinder",
				module + "/internal/faultnet",
				module + "/internal/ethnode",
			},
		},
		&WireSym{
			// Packages that define RLP wire messages. Encode without a
			// shape-matching bounded decode corrupts the census silently:
			// the peer answers, we mis-parse, the node vanishes from the
			// measurement as a fake protocol error.
			Packages: []string{
				module + "/internal/devp2p",
				module + "/internal/eth",
				module + "/internal/discv4",
			},
			RLPPkg: module + "/internal/rlp",
		},
		// Published values are frozen everywhere: the census Snapshot
		// contract (write, publish via atomic.Pointer.Store or channel
		// send, never touch again) is the only way lock-free readers
		// stay coherent, and nothing outside the census should violate
		// it either.
		&FrozenPublish{},
		&SharedState{
			// Packages that spawn goroutines around mutable crawl state.
			// A field reached from two goroutines without a common guard
			// is a data race the -race CI job only catches when a test
			// happens to interleave it; the lockset pass catches the
			// shape statically.
			Packages: []string{
				module + "/internal/nodefinder",
				module + "/internal/discv4",
				module + "/internal/rlpx",
				module + "/internal/simnet",
				module + "/internal/faultnet",
				module + "/internal/ethnode",
				module + "/internal/census",
			},
		},
		// Queue discipline is repo-wide: every buffered channel is a
		// bounded queue, and bounded queues drop-or-degrade instead of
		// stalling their producer (the Finder shard-queue contract).
		&BoundedChan{},
		&WireTaint{
			// The wire codecs: their exported decode APIs are taint
			// sources at every cross-package call site, and their own
			// decode entry-point []byte parameters are wire at entry.
			SourcePackages: []string{
				module + "/internal/rlp",
				module + "/internal/rlpx",
				module + "/internal/devp2p",
				module + "/internal/eth",
				module + "/internal/snappy",
				module + "/internal/discv4",
			},
			// Where wire-tainted sinks are reported: the codecs plus the
			// long-lived stores peer-derived values land in (the node
			// database, the Finder's suppression tables, enode records).
			ReportPackages: []string{
				module + "/internal/rlp",
				module + "/internal/rlpx",
				module + "/internal/devp2p",
				module + "/internal/eth",
				module + "/internal/snappy",
				module + "/internal/discv4",
				module + "/internal/nodefinder",
				module + "/internal/nodedb",
				module + "/internal/enode",
			},
			// Entropy and digest readers are not peer input: without
			// this, GenerateKey's io.ReadFull(rand, ...) would taint
			// every key-carrying config in the module.
			EntropyPackages: []string{
				"crypto",
				"math/rand",
				"hash",
				module + "/internal/crypto",
			},
		},
	}
}
