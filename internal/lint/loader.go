package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/ir"
)

// Package bundles everything an analyzer needs about one type-checked
// module package: syntax with comments, the type-checked object graph,
// and resolved use/def information.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds identifier resolution and expression types.
	Info *types.Info
}

// Loader loads and type-checks every package of one module using only
// the standard library: module packages are located by mapping import
// paths under ModulePath onto directories below RootDir, and standard
// library dependencies are type-checked from $GOROOT source. Nothing
// touches the network or the build cache, so the loader works in a
// fully offline container.
type Loader struct {
	// ModulePath is the module's import path prefix (from go.mod).
	ModulePath string
	// RootDir is the absolute module root directory.
	RootDir string
	// Fset is shared by every parsed file.
	Fset *token.FileSet

	ctx     build.Context
	modPkgs map[string]*Package
	stdPkgs map[string]*types.Package
	loading map[string]bool

	irProg *ir.Program
	irFor  []*Package
}

// Program returns the module-wide IR (CFGs + call graph) for pkgs,
// building it on first use and sharing it between the dataflow
// analyzers of one run.
func (l *Loader) Program(pkgs []*Package) *ir.Program {
	if l.irProg != nil && len(l.irFor) == len(pkgs) {
		same := true
		for i := range pkgs {
			if l.irFor[i] != pkgs[i] {
				same = false
				break
			}
		}
		if same {
			return l.irProg
		}
	}
	srcs := make([]*ir.SourcePackage, len(pkgs))
	for i, p := range pkgs {
		srcs[i] = &ir.SourcePackage{
			Path:  p.Path,
			Fset:  p.Fset,
			Files: p.Files,
			Info:  p.Info,
			Types: p.Types,
		}
	}
	l.irProg = ir.BuildProgram(srcs)
	l.irFor = pkgs
	return l.irProg
}

// NewLoader creates a loader for the module rooted at root. Cgo is
// disabled so the pure-Go variants of std packages (net, os/user) are
// selected; type checking never needs the C toolchain.
func NewLoader(root, modulePath string) *Loader {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		ModulePath: modulePath,
		RootDir:    root,
		Fset:       token.NewFileSet(),
		ctx:        ctx,
		modPkgs:    make(map[string]*Package),
		stdPkgs:    make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
}

// ModuleRoot walks upward from dir to the nearest go.mod and returns
// the directory and the module path declared there.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ListPackages discovers every package import path under the module
// root (skipping testdata, hidden directories, and directories with no
// non-test Go files), sorted, without parsing or type-checking
// anything — the cache layer uses it to hash file sets cheaply.
func (l *Loader) ListPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.RootDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if !l.dirHasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.RootDir, path)
		if err != nil {
			return err
		}
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, importPath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// SourceFiles returns the absolute paths of one module package's
// non-test Go files, in build order, without parsing them.
func (l *Loader) SourceFiles(importPath string) ([]string, error) {
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.RootDir, filepath.FromSlash(rel))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	files := make([]string, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		files = append(files, filepath.Join(dir, name))
	}
	return files, nil
}

// LoadAll returns every module package type-checked, sorted by path.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths, err := l.ListPackages()
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.LoadPackage(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) dirHasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}

// LoadPackage loads one module package by import path, reusing the
// cache across calls.
func (l *Loader) LoadPackage(path string) (*Package, error) {
	if p, ok := l.modPkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(path, l.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(l.RootDir, filepath.FromSlash(rel))
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.modPkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module-local paths load as full
// packages, everything else resolves against $GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.LoadPackage(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.loadStd(path)
}

// loadStd type-checks a standard-library package from $GOROOT source.
// No detailed type info is recorded; analyzers only need the exported
// object graph (e.g. the net.Conn interface) from std.
func (l *Loader) loadStd(path string) (*types.Package, error) {
	if p, ok := l.stdPkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.Import(path, l.RootDir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(bp.Dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	// Std sources can use compiler intrinsics or build-system tricks a
	// plain checker flags; collect errors but keep the (possibly
	// incomplete) package usable as long as a package object exists.
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking std %s: %w", path, firstErr)
	}
	tpkg.MarkComplete()
	l.stdPkgs[path] = tpkg
	return tpkg, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// StdType looks up a named type exported by a standard-library
// package, e.g. StdType("net", "Conn"). Analyzers use it to compare
// against interfaces like net.Conn without importing them at lint
// runtime.
func (l *Loader) StdType(pkgPath, name string) (types.Type, error) {
	p, err := l.loadStd(pkgPath)
	if err != nil {
		return nil, err
	}
	obj := p.Scope().Lookup(name)
	if obj == nil {
		return nil, fmt.Errorf("lint: %s.%s not found", pkgPath, name)
	}
	return obj.Type(), nil
}

// RelPath renders an absolute file path relative to the module root,
// for allowlist matching and stable output.
func (l *Loader) RelPath(abs string) string {
	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil {
		return abs
	}
	return filepath.ToSlash(rel)
}
