package lint

import "testing"

// TestRepoInvariants runs the full analyzer suite over this module —
// the same check CI's lint job performs with cmd/repolint — so a
// contract regression fails `go test` even where the lint job is not
// wired up.
func TestRepoInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	root, module, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, module)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	for _, f := range Run(l, pkgs, RepoAnalyzers(module)) {
		t.Errorf("%s:%d:%d: %s: %s", l.RelPath(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
}
