package lint

import (
	"fmt"

	"repro/internal/lint/ir"
)

// BoundedAlloc flags allocations whose size flows from a wire-decoded
// value without a dominating cap check — the class of bug where a
// peer's forged length field ("this frame is 4 GiB") becomes a real
// allocation before a single payload byte arrives. It is the static
// twin of the 16 MiB-frame and rlp size-overflow regression tests.
//
// The analysis is ir.TaintAnalysis in pessimistic mode — the shared
// wire-taint engine with sources disabled, so every value the engine
// cannot prove bounded counts as attacker-sized:
//
//   - Constants, len/cap results, and values of small fixed-width
//     integer types (≤ 16 bits — a 2-byte prefix cannot exceed 65535)
//     are bounded.
//   - Arithmetic over bounded values stays bounded; v % c and v & c
//     are bounded by c alone; v >> c and v / c by v alone.
//   - A variable becomes bounded after a guard that either aborts on
//     the oversize branch (if v > cap { return err }) or clamps it
//     (if v > cap { v = cap }).
//   - A module-local call resolves through the callee's memoized
//     summary, so a clamp inside a helper bounds every call site.
//   - Everything else — external results, struct fields, parameters —
//     is unbounded, because the analyzer cannot see where it came
//     from, and in a wire-parsing package "unknown" means "the peer
//     picked it".
//
// make([]T, n[, c]) with any unbounded size argument is a finding, as
// is any io.ReadAll call (it trusts the reader for a bound the wire
// does not provide).
type BoundedAlloc struct {
	// Packages are import-path prefixes of wire-parsing packages.
	Packages []string
}

// Name implements Analyzer.
func (b *BoundedAlloc) Name() string { return "boundedalloc" }

// Doc implements Analyzer.
func (b *BoundedAlloc) Doc() string {
	return "wire-derived lengths must be capped before sizing an allocation"
}

// Run implements Analyzer.
func (b *BoundedAlloc) Run(l *Loader, pkgs []*Package) []Finding {
	prog := l.Program(pkgs)
	eng := &ir.TaintAnalysis{Prog: prog, Mode: ir.ModePessimistic}
	var findings []Finding
	for _, sink := range eng.Run() {
		if !matchesAny(sink.Fn.Pkg.Path, b.Packages) {
			continue
		}
		switch sink.Kind {
		case ir.SinkAlloc:
			findings = append(findings, Finding{
				Pos:      sink.Fn.Pkg.Fset.Position(sink.Pos),
				Analyzer: b.Name(),
				Message: fmt.Sprintf("make sized by %s, which is not provably capped: bound it before allocating",
					sink.Expr),
			})
		case ir.SinkReadAll:
			findings = append(findings, Finding{
				Pos:      sink.Fn.Pkg.Fset.Position(sink.Pos),
				Analyzer: b.Name(),
				Message:  "io.ReadAll reads until EOF with no size bound: use io.LimitReader or a length-checked buffer",
			})
		}
	}
	return findings
}
