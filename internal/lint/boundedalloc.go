package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedAlloc flags allocations whose size flows from a wire-decoded
// value without a dominating cap check — the class of bug where a
// peer's forged length field ("this frame is 4 GiB") becomes a real
// allocation before a single payload byte arrives. It is the static
// twin of the 16 MiB-frame and rlp size-overflow regression tests.
//
// The analysis is a per-function, flow-sensitive boundedness walk:
//
//   - Constants, len/cap results, and values of small fixed-width
//     integer types (≤ 16 bits — a 2-byte prefix cannot exceed 65535)
//     are bounded.
//   - Arithmetic over bounded values stays bounded; v % c and v & c
//     are bounded by c alone; v >> c and v / c by v alone.
//   - A variable becomes bounded after a guard that either aborts on
//     the oversize branch (if v > cap { return err }) or clamps it
//     (if v > cap { v = cap }).
//   - Everything else — function results, struct fields, parameters —
//     is unbounded, because the analyzer cannot see where it came
//     from, and in a wire-parsing package "unknown" means "the peer
//     picked it".
//
// make([]T, n[, c]) with any unbounded size argument is a finding, as
// is any io.ReadAll call (it trusts the reader for a bound the wire
// does not provide).
type BoundedAlloc struct {
	// Packages are import-path prefixes of wire-parsing packages.
	Packages []string
}

// Name implements Analyzer.
func (b *BoundedAlloc) Name() string { return "boundedalloc" }

// Doc implements Analyzer.
func (b *BoundedAlloc) Doc() string {
	return "wire-derived lengths must be capped before sizing an allocation"
}

// Run implements Analyzer.
func (b *BoundedAlloc) Run(l *Loader, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if !matchesAny(pkg.Path, b.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, body := range funcBodies(file) {
				w := &boundWalker{pkg: pkg, analyzer: b.Name()}
				w.walkStmts(body.List, newBoundSet())
				findings = append(findings, w.findings...)
			}
		}
	}
	return findings
}

// boundSet tracks which local objects are currently known bounded.
type boundSet map[types.Object]bool

func newBoundSet() boundSet { return make(boundSet) }

func (s boundSet) clone() boundSet {
	c := make(boundSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only objects bounded in both sets.
func intersect(a, b boundSet) boundSet {
	out := newBoundSet()
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

type boundWalker struct {
	pkg      *Package
	analyzer string
	findings []Finding

	// check, when set, replaces the default make-slice/ReadAll checks:
	// checkExpr hands every call plus the current bound state to it.
	// boundedchan reuses the walker's guard/clamp tracking this way.
	check func(call *ast.CallExpr, capped boundSet)
}

// walkStmts processes a statement list sequentially, mutating capped
// in place as facts are established.
func (w *boundWalker) walkStmts(list []ast.Stmt, capped boundSet) {
	for _, stmt := range list {
		w.walkStmt(stmt, capped)
	}
}

func (w *boundWalker) walkStmt(stmt ast.Stmt, capped boundSet) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, capped)
		}
		w.applyAssign(s, capped)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.checkExpr(v, capped)
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						if obj := w.pkg.Info.Defs[name]; obj != nil {
							if w.bounded(vs.Values[i], capped) {
								capped[obj] = true
							}
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		w.walkIf(s, capped)
	case *ast.ForStmt:
		inner := capped.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, inner)
			for _, fact := range condFacts(w.pkg, s.Cond, true) {
				inner[fact] = true
			}
		}
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
		w.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, capped)
		w.walkStmts(s.Body.List, capped.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, capped)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, capped)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				inner := capped.clone()
				if s.Tag == nil {
					// Tagless switch: a clause body runs under its own
					// condition's truth.
					for _, cond := range clause.List {
						for _, fact := range condFacts(w.pkg, cond, true) {
							inner[fact] = true
						}
					}
				}
				w.walkStmts(clause.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CaseClause); ok {
				w.walkStmts(inner.Body, capped.clone())
				return false
			}
			return true
		})
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				if clause.Comm != nil {
					w.walkStmt(clause.Comm, capped.clone())
				}
				w.walkStmts(clause.Body, capped.clone())
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, capped)
	case *ast.ExprStmt:
		w.checkExpr(s.X, capped)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, capped)
		}
	case *ast.DeferStmt:
		w.checkExpr(s.Call, capped)
	case *ast.GoStmt:
		w.checkExpr(s.Call, capped)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, capped)
		w.checkExpr(s.Value, capped)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, capped)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, capped)
	}
}

// walkIf handles the two guard idioms that establish boundedness:
// abort-on-oversize and clamp. The post-state is the intersection of
// the branch exit states, where a terminating branch (return, panic,
// break/continue/goto) contributes nothing.
func (w *boundWalker) walkIf(s *ast.IfStmt, capped boundSet) {
	if s.Init != nil {
		w.walkStmt(s.Init, capped)
	}
	w.checkExpr(s.Cond, capped)

	bodySet := capped.clone()
	for _, fact := range condFacts(w.pkg, s.Cond, true) {
		bodySet[fact] = true
	}
	w.walkStmts(s.Body.List, bodySet)

	elseSet := capped.clone()
	for _, fact := range condFacts(w.pkg, s.Cond, false) {
		elseSet[fact] = true
	}
	if s.Else != nil {
		w.walkStmt(s.Else, elseSet)
	}

	bodyTerm := terminates(s.Body)
	elseTerm := s.Else != nil && stmtTerminates(s.Else)

	var after boundSet
	switch {
	case bodyTerm && elseTerm:
		after = elseSet // unreachable fallthrough; keep something sane
	case bodyTerm:
		after = elseSet
	case elseTerm:
		after = bodySet
	default:
		after = intersect(bodySet, elseSet)
	}
	// Write the merged facts back into the caller's set.
	for k := range capped {
		if !after[k] {
			delete(capped, k)
		}
	}
	for k := range after {
		capped[k] = true
	}
}

// applyAssign updates boundedness for an assignment.
func (w *boundWalker) applyAssign(s *ast.AssignStmt, capped boundSet) {
	// Multi-value from a single call (x, err := f()): everything
	// becomes unbounded.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if _, ok := s.Rhs[0].(*ast.CallExpr); ok {
			for _, lhs := range s.Lhs {
				if obj := w.lhsObject(lhs); obj != nil {
					delete(capped, obj)
				}
			}
			return
		}
	}
	for i, lhs := range s.Lhs {
		obj := w.lhsObject(lhs)
		if obj == nil {
			continue
		}
		if i >= len(s.Rhs) {
			delete(capped, obj)
			continue
		}
		rhs := s.Rhs[i]
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if w.bounded(rhs, capped) {
				capped[obj] = true
			} else {
				delete(capped, obj)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.SHL_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// x op= y stays bounded only if both sides already were.
			if !(capped[obj] && w.bounded(rhs, capped)) {
				delete(capped, obj)
			}
		case token.REM_ASSIGN, token.AND_ASSIGN:
			// x %= y and x &= y are bounded whenever y is.
			if !(capped[obj] || w.bounded(rhs, capped)) {
				delete(capped, obj)
			} else {
				capped[obj] = true
			}
		case token.QUO_ASSIGN, token.SHR_ASSIGN:
			// x /= y and x >>= y never increase x.
		default:
			delete(capped, obj)
		}
	}
}

func (w *boundWalker) lhsObject(lhs ast.Expr) types.Object {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return w.pkg.Info.Uses[id]
}

// checkExpr scans an expression tree for make() calls and io.ReadAll,
// reporting unbounded sizes. Function literals are skipped here; the
// driver walks their bodies as independent functions.
func (w *boundWalker) checkExpr(expr ast.Expr, capped boundSet) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.check != nil {
			w.check(call, capped)
			return true
		}
		if w.isMakeSlice(call) {
			for _, arg := range call.Args[1:] {
				if !w.bounded(arg, capped) {
					w.findings = append(w.findings, Finding{
						Pos:      w.pkg.Fset.Position(call.Pos()),
						Analyzer: w.analyzer,
						Message: fmt.Sprintf("make sized by %s, which is not provably capped: bound it before allocating",
							types.ExprString(arg)),
					})
					break
				}
			}
		}
		if w.isReadAll(call) {
			w.findings = append(w.findings, Finding{
				Pos:      w.pkg.Fset.Position(call.Pos()),
				Analyzer: w.analyzer,
				Message:  "io.ReadAll reads until EOF with no size bound: use io.LimitReader or a length-checked buffer",
			})
		}
		return true
	})
}

// isMakeSlice reports whether call is make of a slice type.
func (w *boundWalker) isMakeSlice(call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	tv, ok := w.pkg.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// isReadAll reports whether call invokes io.ReadAll (or the legacy
// io/ioutil.ReadAll).
func (w *boundWalker) isReadAll(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "ReadAll" || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "io" || fn.Pkg().Path() == "io/ioutil"
}

// bounded reports whether expr's value is provably bounded in the
// current state.
func (w *boundWalker) bounded(expr ast.Expr, capped boundSet) bool {
	expr = unparen(expr)
	if tv, ok := w.pkg.Info.Types[expr]; ok {
		// Compile-time constants are bounded by definition.
		if tv.Value != nil {
			return true
		}
		// Small fixed-width integers cannot express an attacker-sized
		// length: a byte tops out at 255, a uint16 at 65535.
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok {
			switch basic.Kind() {
			case types.Bool, types.Int8, types.Uint8, types.Int16, types.Uint16:
				return true
			}
		}
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return capped[obj]
		}
		return false
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM, token.AND:
			// v % c ∈ [0, c); v & c ≤ c.
			return w.bounded(e.Y, capped) || (w.bounded(e.X, capped) && w.bounded(e.Y, capped))
		case token.QUO, token.SHR:
			// v / c ≤ v; v >> c ≤ v.
			return w.bounded(e.X, capped)
		case token.ADD, token.SUB, token.MUL, token.SHL, token.OR, token.XOR, token.AND_NOT:
			return w.bounded(e.X, capped) && w.bounded(e.Y, capped)
		default:
			return false
		}
	case *ast.UnaryExpr:
		return w.bounded(e.X, capped)
	case *ast.CallExpr:
		// Builtins len/cap are bounded by in-memory data; min is
		// bounded if any argument is. A type conversion is as bounded
		// as its operand.
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap":
					return true
				case "min":
					for _, arg := range e.Args {
						if w.bounded(arg, capped) {
							return true
						}
					}
					return false
				}
				return false
			}
		}
		if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.bounded(e.Args[0], capped)
		}
		return false
	}
	return false
}

// condFacts extracts the objects proven bounded when cond evaluates
// to the given truth value. For truth=true it decomposes && chains
// (all operands hold); for truth=false it decomposes || chains (all
// negations hold). A comparison bounds the variable on its small
// side: `v < cap` bounds v when true; `v > cap` bounds v when false.
func condFacts(pkg *Package, cond ast.Expr, truth bool) []types.Object {
	cond = unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if truth {
				return append(condFacts(pkg, e.X, true), condFacts(pkg, e.Y, true)...)
			}
			return nil
		case token.LOR:
			if !truth {
				return append(condFacts(pkg, e.X, false), condFacts(pkg, e.Y, false)...)
			}
			return nil
		case token.LSS, token.LEQ:
			// x < y: true bounds x, false bounds y.
			if truth {
				return identObjects(pkg, e.X)
			}
			return identObjects(pkg, e.Y)
		case token.GTR, token.GEQ:
			// x > y: true bounds y, false bounds x.
			if truth {
				return identObjects(pkg, e.Y)
			}
			return identObjects(pkg, e.X)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return condFacts(pkg, e.X, !truth)
		}
	}
	return nil
}

// identObjects returns the object behind expr if it is a plain
// identifier (possibly through a conversion like uint64(v)).
func identObjects(pkg *Package, expr ast.Expr) []types.Object {
	expr = unparen(expr)
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			expr = unparen(call.Args[0])
		}
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return []types.Object{obj}
		}
	}
	return nil
}

// terminates reports whether a block always transfers control away
// (return, panic, or branch) at its end.
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	return stmtTerminates(block.List[len(block.List)-1])
}

func stmtTerminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}
