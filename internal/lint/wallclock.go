package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Wallclock forbids direct wall-clock observation in packages that
// must be drivable by simclock.Clock. The paper's measurements span 82
// days; the repo reproduces them in seconds by injecting a simulated
// clock everywhere, and a single stray time.Now() silently detaches a
// component from the virtual timeline, making "82-day" census runs
// both slow and non-deterministic.
type Wallclock struct {
	// Packages lists import-path prefixes of clocked packages.
	Packages []string
	// AllowFiles maps module-root-relative file paths to the written
	// reason the whole file is excused (e.g. a transport that only
	// runs against real sockets).
	AllowFiles map[string]string
}

// wallclockForbidden are the time-package functions that observe or
// schedule against the wall clock. time.Duration arithmetic and
// time.Time values remain fine — only the *sources* of real time are
// banned.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Name implements Analyzer.
func (w *Wallclock) Name() string { return "wallclock" }

// Doc implements Analyzer.
func (w *Wallclock) Doc() string {
	return "clocked packages must observe time only through simclock.Clock"
}

// Run implements Analyzer.
func (w *Wallclock) Run(l *Loader, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if !matchesAny(pkg.Path, w.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			rel := l.RelPath(pkg.Fset.Position(file.Pos()).Filename)
			if _, ok := w.AllowFiles[rel]; ok {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockForbidden[fn.Name()] {
					return true
				}
				// Methods like time.Time.After/Sub are pure value
				// arithmetic, not clock reads; only package-level
				// functions observe the wall clock.
				if fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: w.Name(),
					Message: fmt.Sprintf("time.%s in clocked package %s: inject simclock.Clock instead",
						fn.Name(), pkg.Types.Name()),
				})
				return true
			})
		}
	}
	return findings
}
