package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkFinding(file string, line, col int, analyzer, msg string) Finding {
	return Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestSortFindingsDeterminism is the regression test for report
// stability: any input permutation sorts to the same sequence, and
// identical findings reached through different call-graph paths
// collapse to one.
func TestSortFindingsDeterminism(t *testing.T) {
	base := []Finding{
		mkFinding("b.go", 4, 1, "wallclock", "m1"),
		mkFinding("a.go", 10, 2, "connclose", "m2"),
		mkFinding("a.go", 10, 2, "connclose", "m2"), // duplicate path
		mkFinding("a.go", 10, 2, "boundedalloc", "m3"),
		mkFinding("a.go", 2, 9, "wiresym", "m4"),
		mkFinding("a.go", 10, 1, "wiresym", "m5"),
		mkFinding("b.go", 4, 1, "wallclock", "m0"),
	}
	want := []string{
		"a.go:2:9: wiresym: m4",
		"a.go:10:1: wiresym: m5",
		"a.go:10:2: boundedalloc: m3",
		"a.go:10:2: connclose: m2",
		"b.go:4:1: wallclock: m0",
		"b.go:4:1: wallclock: m1",
	}
	// Exercise several permutations, including reversed.
	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 6, 0, 2, 5, 1, 4},
	}
	for _, perm := range perms {
		in := make([]Finding, len(perm))
		for i, j := range perm {
			in[i] = base[j]
		}
		got := SortFindings(in)
		if len(got) != len(want) {
			t.Fatalf("perm %v: got %d findings, want %d (dedupe failed?)", perm, len(got), len(want))
		}
		for i, f := range got {
			if f.String() != want[i] {
				t.Errorf("perm %v: position %d = %q, want %q", perm, i, f.String(), want[i])
			}
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	fs := []Finding{mkFinding("x/y.go", 3, 7, "locknet", `mutex "mu" held`)}
	if err := WriteJSON(&sb, fs); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d entries, want 1", len(decoded))
	}
	e := decoded[0]
	if e["file"] != "x/y.go" || e["line"] != float64(3) || e["col"] != float64(7) ||
		e["analyzer"] != "locknet" || e["message"] != `mutex "mu" held` {
		t.Errorf("unexpected entry: %#v", e)
	}

	// The empty run must be an array, not null.
	sb.Reset()
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("empty findings render as %q, want []", sb.String())
	}
}

func TestWriteAnnotations(t *testing.T) {
	var sb strings.Builder
	fs := []Finding{
		mkFinding("p/q.go", 12, 5, "deadlineflow", "line one\nline two, 100% sure"),
	}
	if err := WriteAnnotations(&sb, fs); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(sb.String(), "\n")
	want := "::error file=p/q.go,line=12,col=5,title=repolint/deadlineflow::line one%0Aline two, 100%25 sure"
	if got != want {
		t.Errorf("annotation:\n got %q\nwant %q", got, want)
	}
	if strings.Count(sb.String(), "\n") != 1 {
		t.Errorf("annotation must be a single line, got %q", sb.String())
	}
}

// TestWriteSARIF pins the code-scanning contract: a valid SARIF 2.1.0
// envelope, a rule per analyzer plus the "lint" pseudo-rule, and each
// finding rendered as an error result with a slash-normalized URI.
func TestWriteSARIF(t *testing.T) {
	var sb strings.Builder
	analyzers := []Analyzer{&Wallclock{}, &WireTaint{}}
	fs := []Finding{
		mkFinding("internal/x/x.go", 12, 5, "wiretaint", "wire-tainted allocation size: n"),
	}
	if err := WriteSARIF(&sb, analyzers, fs); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("envelope: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "repolint" {
		t.Errorf("driver name = %q, want repolint", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"wallclock", "wiretaint", "lint"} {
		if !ruleIDs[want] {
			t.Errorf("rule table is missing %q: %v", want, ruleIDs)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "wiretaint" || res.Level != "error" ||
		res.Message.Text != "wire-tainted allocation size: n" {
		t.Errorf("unexpected result: %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/x/x.go" ||
		loc.Region.StartLine != 12 || loc.Region.StartColumn != 5 {
		t.Errorf("unexpected location: %+v", loc)
	}

	// The empty run still carries the full rule table, so an upload
	// from a clean tree closes previously open alerts.
	sb.Reset()
	if err := WriteSARIF(&sb, analyzers, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"results": []`) {
		t.Errorf("empty run must render an empty results array:\n%s", sb.String())
	}
}

// TestCacheConfigToolchain pins the stale-cache fix: the config
// fingerprint embeds the toolchain identity, so findings cached under
// one Go release can never be replayed under another.
func TestCacheConfigToolchain(t *testing.T) {
	fp := ToolchainFingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q: want 16 hex chars", fp)
	}
	if fp2 := ToolchainFingerprint(); fp2 != fp {
		t.Errorf("fingerprint is not deterministic: %q then %q", fp, fp2)
	}
	config := CacheConfig("example.com/mod", []Analyzer{&Wallclock{}})
	if !strings.Contains(config, fp) {
		t.Errorf("CacheConfig %q does not embed the toolchain fingerprint %q", config, fp)
	}
	if !strings.Contains(config, "wallclock") || !strings.Contains(config, "example.com/mod") {
		t.Errorf("CacheConfig %q lost the analyzer set or module path", config)
	}
}

// TestCacheRoundTrip checks the digest/hit/save/load cycle: identical
// content hits, any content change misses, and the persisted findings
// survive the round trip.
func TestCacheRoundTrip(t *testing.T) {
	root := t.TempDir()
	writeFile := func(rel, content string) {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module cachetest\n")
	writeFile("a/a.go", "package a\n\nfunc A() int { return 1 }\n")
	writeFile("b/b.go", "package b\n\nfunc B() int { return 2 }\n")

	l := NewLoader(root, "cachetest")
	digests, err := DigestPackages(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 2 {
		t.Fatalf("digested %d packages, want 2: %v", len(digests), digests)
	}

	config := "test-config"
	cachePath := filepath.Join(root, ".repolint.cache")
	findings := []Finding{mkFinding("a/a.go", 3, 1, "wallclock", "msg")}
	if err := SaveCache(cachePath, config, digests, findings); err != nil {
		t.Fatal(err)
	}

	prev := LoadCache(cachePath)
	if prev == nil {
		t.Fatal("cache did not load back")
	}
	hits, total, ok := prev.Hits(config, digests)
	if !ok || hits != 2 || total != 2 {
		t.Fatalf("unchanged tree: hits=%d total=%d ok=%v, want 2/2 true", hits, total, ok)
	}
	if len(prev.Findings) != 1 || prev.Findings[0].String() != findings[0].String() {
		t.Fatalf("findings did not survive the round trip: %+v", prev.Findings)
	}

	// A config change alone invalidates.
	if _, _, ok := prev.Hits("other-config", digests); ok {
		t.Error("config change still hit")
	}

	// Touch one file's content: that package misses, the other hits,
	// and reuse is refused.
	writeFile("b/b.go", "package b\n\nfunc B() int { return 3 }\n")
	l2 := NewLoader(root, "cachetest")
	digests2, err := DigestPackages(l2)
	if err != nil {
		t.Fatal(err)
	}
	hits, total, ok = prev.Hits(config, digests2)
	if ok || hits != 1 || total != 2 {
		t.Fatalf("after edit: hits=%d total=%d ok=%v, want 1/2 false", hits, total, ok)
	}

	// A new package also invalidates even though every cached package
	// still matches.
	writeFile("b/b.go", "package b\n\nfunc B() int { return 2 }\n")
	writeFile("c/c.go", "package c\n\nfunc C() int { return 4 }\n")
	l3 := NewLoader(root, "cachetest")
	digests3, err := DigestPackages(l3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := prev.Hits(config, digests3); ok {
		t.Error("added package still hit")
	}
}
