// Package leakcheck provides a goroutine-leak checker for integration
// tests: it snapshots the goroutines alive when a test starts and, at
// cleanup, fails the test if new ones are still running after a retry
// window.
//
// The crawler's robustness story depends on this: a hostile peer that
// stalls a handshake or trickles bytes must cost the crawler a
// bounded amount of time, never a leaked goroutine. Every integration
// test that opens sockets (nodefinder, rlpx, ethnode, simnet,
// faultnet) installs the checker so a regression in any teardown path
// is caught where it is introduced.
//
// The comparison is a snapshot diff of runtime stacks keyed by
// creation site, filtered against an allowlist of runtime- and
// testing-owned goroutines that come and go on their own. Goroutines
// need time to unwind after Close, so the checker polls until the
// diff is empty or the retry window (default 5 s) elapses.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// ignoredSubstrings mark goroutine stacks that are not leaks: the
// runtime's own workers, the testing framework, and net pollers that
// the runtime parks lazily.
var ignoredSubstrings = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.runFuzzing",
	"testing.tRunner",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime/trace.Start",
	"signal.signal_recv",
	"created by runtime.gc",
	"created by testing.RunTests",
}

// interestingGoroutines returns the stack header line ("goroutine N
// [state]:" stripped to the creation identity) of every goroutine
// that is not on the allowlist, keyed so identical stacks compare
// equal across snapshots.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
nextG:
	for _, g := range strings.Split(string(buf), "\n\n") {
		stack := strings.TrimSpace(g)
		if stack == "" {
			continue
		}
		for _, ignore := range ignoredSubstrings {
			if strings.Contains(stack, ignore) {
				continue nextG
			}
		}
		// Key by everything after the header line: the header's
		// goroutine ID and run state churn between snapshots for the
		// same (possibly parked) goroutine.
		if i := strings.Index(stack, "\n"); i >= 0 {
			stack = stack[i+1:]
		}
		out = append(out, stack)
	}
	sort.Strings(out)
	return out
}

// TB is the subset of *testing.T the checker needs; it keeps the
// package usable from fuzz targets and benchmarks too.
type TB interface {
	Cleanup(func())
	Errorf(format string, args ...any)
	Helper()
}

// Option tweaks a Check.
type Option func(*opts)

type opts struct {
	window time.Duration
}

// Window overrides how long the checker retries before declaring the
// surviving goroutines leaked.
func Window(d time.Duration) Option {
	return func(o *opts) { o.window = d }
}

// Check snapshots the current goroutines and registers a cleanup that
// fails t if goroutines created during the test outlive it. Call it
// first thing in any test that starts listeners, dialers, or nodes.
func Check(t TB, options ...Option) {
	t.Helper()
	o := opts{window: 5 * time.Second}
	for _, opt := range options {
		opt(&o)
	}
	before := interestingGoroutines()
	t.Cleanup(func() {
		leaked := diffRetry(before, o.window)
		if len(leaked) == 0 {
			return
		}
		t.Errorf("leakcheck: %s", FormatLeaks(leaked))
	})
}

// FormatLeaks renders leaked stacks for a test failure. Stacks whose
// creator is the runtime's timer machinery ("created by time.goFunc")
// get an extra header naming the callback frame that is actually
// stuck: the creation site the runtime reports for timer goroutines
// is inside package time and points at no repo code, which makes raw
// dumps of leaked AfterFunc callbacks nearly undebuggable.
func FormatLeaks(leaked []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d goroutine(s) leaked:", len(leaked))
	for _, stack := range leaked {
		b.WriteString("\n\n")
		if site, ok := timerCallbackSite(stack); ok {
			fmt.Fprintf(&b, "[timer-driven goroutine; stuck callback: %s]\n", site)
		}
		b.WriteString(stack)
	}
	return b.String()
}

// timerCallbackSite extracts "func (file:line)" for the top frame of
// a stack created by time.goFunc — the timer callback itself.
func timerCallbackSite(stack string) (string, bool) {
	if !strings.Contains(stack, "created by time.goFunc") {
		return "", false
	}
	lines := strings.Split(stack, "\n")
	if len(lines) < 2 {
		return "", false
	}
	fn := strings.TrimSpace(lines[0])
	if i := strings.Index(fn, "("); i > 0 {
		fn = fn[:i]
	}
	loc := strings.TrimSpace(lines[1])
	if i := strings.Index(loc, " +0x"); i > 0 {
		loc = loc[:i]
	}
	return fmt.Sprintf("%s (%s)", fn, loc), true
}

// diffRetry polls the goroutine diff until it drains or the window
// elapses, returning the survivors.
func diffRetry(before []string, window time.Duration) []string {
	deadline := time.Now().Add(window)
	for {
		leaked := diff(before, interestingGoroutines())
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// diff returns the stacks in after that have no matching stack left
// in before (multiset subtraction).
func diff(before, after []string) []string {
	remaining := make(map[string]int, len(before))
	for _, s := range before {
		remaining[s]++
	}
	var leaked []string
	for _, s := range after {
		if remaining[s] > 0 {
			remaining[s]--
			continue
		}
		leaked = append(leaked, s)
	}
	return leaked
}

// Snapshot returns the current interesting goroutine count; tests
// asserting absolute hygiene (e.g. the chaos harness between phases)
// can log it.
func Snapshot() int { return len(interestingGoroutines()) }

// String renders the current interesting goroutines for debugging.
func String() string {
	return fmt.Sprintf("%d interesting goroutines:\n%s",
		len(interestingGoroutines()), strings.Join(interestingGoroutines(), "\n\n"))
}
