package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder implements TB and captures failures instead of failing.
type recorder struct {
	cleanups []func()
	failures []string
}

func (r *recorder) Cleanup(fn func()) { r.cleanups = append(r.cleanups, fn) }
func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, fmt.Sprintf(format, args...))
}
func (r *recorder) Helper() {}
func (r *recorder) runCleanups() {
	for _, fn := range r.cleanups {
		fn()
	}
}

func TestCleanTestPasses(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(100*time.Millisecond))
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", rec.failures)
	}
}

func TestLeakedGoroutineDetected(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(200*time.Millisecond))
	stop := make(chan struct{})
	go func() { <-stop }() // deliberately outlives the "test"
	rec.runCleanups()
	close(stop)
	if len(rec.failures) == 0 {
		t.Fatal("leaked goroutine not detected")
	}
}

func TestSlowExitWithinWindowPasses(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(2*time.Second))
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond) // unwinds during the retry window
		close(done)
	}()
	<-done
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("goroutine that exited within the window flagged: %v", rec.failures)
	}
}

func TestTimerLeakNamesCallback(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(200*time.Millisecond))
	stop := make(chan struct{})
	fired := make(chan struct{})
	time.AfterFunc(time.Millisecond, func() {
		close(fired)
		<-stop // the callback goroutine outlives the "test"
	})
	<-fired
	rec.runCleanups()
	close(stop)
	if len(rec.failures) == 0 {
		t.Fatal("stuck timer callback not detected")
	}
	msg := rec.failures[0]
	if !strings.Contains(msg, "timer-driven goroutine") {
		t.Errorf("timer leak not annotated as timer-driven:\n%s", msg)
	}
	// The annotation must name the callback (this test function's
	// closure), not time.goFunc.
	if !strings.Contains(msg, "stuck callback: repro/internal/testutil/leakcheck.TestTimerLeakNamesCallback") {
		t.Errorf("annotation does not name the leaking callback:\n%s", msg)
	}
	if !strings.Contains(msg, "leakcheck_test.go") {
		t.Errorf("annotation does not name the creation file:\n%s", msg)
	}
}

func TestFormatLeaksSyntheticStacks(t *testing.T) {
	timer := "repro/internal/foo.Run.func1()\n" +
		"\t/root/repo/internal/foo/foo.go:42 +0x1d\n" +
		"created by time.goFunc\n" +
		"\t/usr/local/go/src/time/sleep.go:177 +0x2d"
	plain := "repro/internal/bar.loop()\n" +
		"\t/root/repo/internal/bar/bar.go:10 +0x11\n" +
		"created by repro/internal/bar.Start\n" +
		"\t/root/repo/internal/bar/bar.go:5 +0x22"
	out := FormatLeaks([]string{timer, plain})
	if !strings.HasPrefix(out, "2 goroutine(s) leaked:") {
		t.Errorf("missing leak count header:\n%s", out)
	}
	want := "[timer-driven goroutine; stuck callback: repro/internal/foo.Run.func1 (/root/repo/internal/foo/foo.go:42)]"
	if !strings.Contains(out, want) {
		t.Errorf("timer stack not annotated with %q:\n%s", want, out)
	}
	if strings.Count(out, "timer-driven") != 1 {
		t.Errorf("non-timer stack annotated too:\n%s", out)
	}
	if !strings.Contains(out, plain) {
		t.Errorf("plain stack dropped from the dump:\n%s", out)
	}
}

func TestDiffIsMultiset(t *testing.T) {
	before := []string{"a", "a", "b"}
	after := []string{"a", "b", "b", "c"}
	got := diff(before, after)
	want := []string{"b", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("diff = %v, want %v", got, want)
	}
}
