package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder implements TB and captures failures instead of failing.
type recorder struct {
	cleanups []func()
	failures []string
}

func (r *recorder) Cleanup(fn func())                 { r.cleanups = append(r.cleanups, fn) }
func (r *recorder) Errorf(format string, args ...any) { r.failures = append(r.failures, format) }
func (r *recorder) Helper()                           {}
func (r *recorder) runCleanups() {
	for _, fn := range r.cleanups {
		fn()
	}
}

func TestCleanTestPasses(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(100*time.Millisecond))
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", rec.failures)
	}
}

func TestLeakedGoroutineDetected(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(200*time.Millisecond))
	stop := make(chan struct{})
	go func() { <-stop }() // deliberately outlives the "test"
	rec.runCleanups()
	close(stop)
	if len(rec.failures) == 0 {
		t.Fatal("leaked goroutine not detected")
	}
}

func TestSlowExitWithinWindowPasses(t *testing.T) {
	rec := &recorder{}
	Check(rec, Window(2*time.Second))
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond) // unwinds during the retry window
		close(done)
	}()
	<-done
	rec.runCleanups()
	if len(rec.failures) != 0 {
		t.Fatalf("goroutine that exited within the window flagged: %v", rec.failures)
	}
}

func TestDiffIsMultiset(t *testing.T) {
	before := []string{"a", "a", "b"}
	after := []string{"a", "b", "b", "c"}
	got := diff(before, after)
	want := []string{"b", "c"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("diff = %v, want %v", got, want)
	}
}
