package snappy

import (
	"bytes"
	"testing"
)

// FuzzDecode attacks the snappy decoder with arbitrary compressed
// streams. Invariants: no panic; the announced-length cap holds (a
// decode that succeeds under DecodeCapped never exceeds its cap);
// and anything our encoder produced round-trips exactly.
func FuzzDecode(f *testing.F) {
	for _, src := range [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello hello hello hello hello"),
		bytes.Repeat([]byte{0x00}, 1000),
		bytes.Repeat([]byte("abcd"), 500),
	} {
		enc, err := Encode(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Hostile shapes: bomb headers announcing huge lengths, truncated
	// varints, copies reaching before the start of the buffer.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})       // ~4 GiB announced, no body
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80}) // unterminated varint
	f.Add([]byte{0x04, 0x0C, 0x61, 0x61, 0x61})       // literal then nothing
	f.Add([]byte{0x02, 0x01, 0x00})                   // copy with offset beyond start

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decode(data)
		if err == nil {
			if len(out) > MaxBlockSize {
				t.Fatalf("decode produced %d bytes, above MaxBlockSize", len(out))
			}
			// Compress-decompress must reproduce the decoder's output.
			enc, err := Encode(out)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := Decode(enc)
			if err != nil {
				t.Fatalf("re-decode of our own encoding failed: %v", err)
			}
			if !bytes.Equal(rt, out) {
				t.Fatal("round trip mismatch")
			}
		}
		// The capped variant must enforce its bound no matter what.
		capped, cerr := DecodeCapped(data, 64)
		if cerr == nil && len(capped) > 64 {
			t.Fatalf("DecodeCapped(64) returned %d bytes", len(capped))
		}
	})
}
