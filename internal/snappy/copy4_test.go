package snappy

import (
	"bytes"
	"math/rand"
	"testing"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// The encoder never emits copy-4 elements (offsets stay under 64 KiB),
// but the decoder must accept them for wire compatibility with other
// implementations. These tests hand-craft copy-4 inputs.

func TestDecodeCopy4(t *testing.T) {
	// "abcd" literal, then copy-4 of length 4 at offset 4 → "abcdabcd".
	src := []byte{
		8,                 // decoded length 8
		3<<2 | tagLiteral, // literal, length 4
		'a', 'b', 'c', 'd',
		3<<2 | tagCopy4, // copy, length 4
		4, 0, 0, 0,      // offset 4 little-endian
	}
	got, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("abcdabcd")) {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeCopy4Truncated(t *testing.T) {
	src := []byte{8, 3<<2 | tagCopy4, 4, 0} // header cut short
	if _, err := Decode(src); err == nil {
		t.Fatal("truncated copy-4 accepted")
	}
}

func TestDecodeCopy4BadOffset(t *testing.T) {
	src := []byte{
		8,
		3<<2 | tagLiteral, 'a', 'b', 'c', 'd',
		3<<2 | tagCopy4, 200, 0, 0, 0, // offset beyond output
	}
	if _, err := Decode(src); err == nil {
		t.Fatal("out-of-range copy-4 offset accepted")
	}
}

func TestDecodeCopy2Truncated(t *testing.T) {
	src := []byte{4, 1<<2 | tagCopy2, 1} // missing offset byte
	if _, err := Decode(src); err == nil {
		t.Fatal("truncated copy-2 accepted")
	}
}

func TestDecodeCopy1Truncated(t *testing.T) {
	src := []byte{4, tagCopy1} // missing offset byte
	if _, err := Decode(src); err == nil {
		t.Fatal("truncated copy-1 accepted")
	}
}

func TestDecodedLenErrors(t *testing.T) {
	if _, err := DecodedLen(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if n, err := DecodedLen([]byte{42, 0xFF}); err != nil || n != 42 {
		t.Fatalf("got %d, %v", n, err)
	}
}

func TestDecodeNeverPanicsOnRandomInput(t *testing.T) {
	// The decoder must reject, not panic on, arbitrary bytes.
	rng := newTestRand(7)
	for i := 0; i < 20000; i++ {
		n := rng.Intn(48)
		b := make([]byte, n)
		rng.Read(b)
		Decode(b) //nolint:errcheck // looking for panics only
	}
}

func TestMaxEncodedLenMonotonic(t *testing.T) {
	prev := 0
	for _, n := range []int{0, 1, 100, 10000, MaxBlockSize} {
		m := MaxEncodedLen(n)
		if m <= prev || m < n {
			t.Fatalf("MaxEncodedLen(%d) = %d not sane", n, m)
		}
		prev = m
	}
}
