// Package snappy implements the Snappy block compression format.
//
// DEVp2p version 5 (the version clients of the paper's era advertise
// in HELLO) compresses every message payload with Snappy before RLPx
// framing. This is a from-scratch, dependency-free implementation of
// the block format — *not* the framing/stream format — sufficient for
// wire compatibility: a varint-encoded uncompressed length followed
// by literal and copy elements.
//
// Reference: google/snappy format_description.txt.
package snappy

import (
	"errors"
	"fmt"
)

// Tag values for the low two bits of each element's first byte.
const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03
)

// MaxBlockSize is the largest input Encode accepts; devp2p caps
// messages well below this.
const MaxBlockSize = 1 << 24

// Decode errors.
var (
	ErrCorrupt  = errors.New("snappy: corrupt input")
	ErrTooLarge = errors.New("snappy: decoded block is too large")
)

// uvarint appends x as an unsigned varint.
func uvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// readUvarint parses an unsigned varint, returning the value and the
// number of bytes consumed (0 on error).
func readUvarint(src []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, b := range src {
		if i >= 10 {
			return 0, 0
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, 0
			}
			return x | uint64(b)<<s, i + 1
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

// MaxEncodedLen returns the worst-case output size for an input of
// length n: varint header plus incompressible literals.
func MaxEncodedLen(n int) int {
	return 10 + n + n/6 + 1
}

// Encode compresses src using a greedy hash-table matcher. The output
// decodes with any standard Snappy implementation.
func Encode(src []byte) ([]byte, error) {
	if len(src) > MaxBlockSize {
		return nil, fmt.Errorf("snappy: input of %d bytes exceeds block limit", len(src))
	}
	dst := uvarint(make([]byte, 0, MaxEncodedLen(len(src))), uint64(len(src)))
	if len(src) == 0 {
		return dst, nil
	}
	if len(src) < 16 {
		// Too short for matching: one literal.
		return emitLiteral(dst, src), nil
	}

	// Hash table of recent 4-byte sequences.
	const tableBits = 14
	var table [1 << tableBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(u uint32) uint32 {
		return (u * 0x1e35a7bd) >> (32 - tableBits)
	}
	load32 := func(i int) uint32 {
		return uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
	}

	var (
		s        = 0 // iterator
		litStart = 0 // start of pending literal run
		sLimit   = len(src) - 4
	)
	for s < sLimit {
		h := hash(load32(s))
		cand := table[h]
		table[h] = int32(s)
		if cand >= 0 && s-int(cand) <= 0xFFFF && load32(int(cand)) == load32(s) {
			// Emit pending literals, then extend the match.
			if s > litStart {
				dst = emitLiteral(dst, src[litStart:s])
			}
			base := s
			s += 4
			m := int(cand) + 4
			for s < len(src) && src[s] == src[m] {
				s++
				m++
			}
			dst = emitCopy(dst, base-int(cand), s-base)
			litStart = s
			continue
		}
		s++
	}
	if litStart < len(src) {
		dst = emitLiteral(dst, src[litStart:])
	}
	return dst, nil
}

// emitLiteral appends a literal element.
func emitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|tagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// emitCopy appends copy elements for a match of the given offset and
// length.
func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches: emit 64-byte copy-2 chunks.
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Leave at least 4 for the final copy.
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 12 || offset >= 2048 || length < 4 {
		dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		return dst
	}
	// Copy-1: 4..11 length, offset < 2048.
	dst = append(dst, byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1, byte(offset))
	return dst
}

// DecodedLen returns the uncompressed length announced by a block.
func DecodedLen(src []byte) (int, error) {
	n, consumed := readUvarint(src)
	if consumed == 0 {
		return 0, ErrCorrupt
	}
	if n > MaxBlockSize {
		return 0, ErrTooLarge
	}
	return int(n), nil
}

// Decode decompresses a Snappy block, accepting any announced length
// up to MaxBlockSize.
func Decode(src []byte) ([]byte, error) {
	return DecodeCapped(src, MaxBlockSize)
}

// DecodeCapped decompresses a Snappy block whose announced
// uncompressed length is at most maxLen. The check runs before any
// allocation, so a "snappy bomb" — a few bytes advertising a huge
// decoded length — fails fast without reserving the claimed space.
// Transports should pass their own message-size limit here.
func DecodeCapped(src []byte, maxLen int) ([]byte, error) {
	dLen64, consumed := readUvarint(src)
	if consumed == 0 {
		return nil, ErrCorrupt
	}
	if maxLen > MaxBlockSize {
		maxLen = MaxBlockSize
	}
	if dLen64 > uint64(maxLen) {
		return nil, ErrTooLarge
	}
	dLen := int(dLen64)
	src = src[consumed:]
	dst := make([]byte, 0, dLen)

	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case tagLiteral:
			n := int(tag >> 2)
			var hdr int
			switch {
			case n < 60:
				hdr = 1
			case n == 60:
				if len(src) < 2 {
					return nil, ErrCorrupt
				}
				n = int(src[1])
				hdr = 2
			case n == 61:
				if len(src) < 3 {
					return nil, ErrCorrupt
				}
				n = int(src[1]) | int(src[2])<<8
				hdr = 3
			case n == 62:
				if len(src) < 4 {
					return nil, ErrCorrupt
				}
				n = int(src[1]) | int(src[2])<<8 | int(src[3])<<16
				hdr = 4
			default:
				if len(src) < 5 {
					return nil, ErrCorrupt
				}
				n = int(src[1]) | int(src[2])<<8 | int(src[3])<<16 | int(src[4])<<24
				hdr = 5
			}
			n++ // stored as length-1
			if n < 0 || len(src) < hdr+n {
				return nil, ErrCorrupt
			}
			dst = append(dst, src[hdr:hdr+n]...)
			src = src[hdr+n:]

		case tagCopy1:
			if len(src) < 2 {
				return nil, ErrCorrupt
			}
			length := 4 + int(tag>>2)&0x07
			offset := int(tag&0xE0)<<3 | int(src[1])
			src = src[2:]
			var err error
			dst, err = copyFrom(dst, offset, length)
			if err != nil {
				return nil, err
			}

		case tagCopy2:
			if len(src) < 3 {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(src[1]) | int(src[2])<<8
			src = src[3:]
			var err error
			dst, err = copyFrom(dst, offset, length)
			if err != nil {
				return nil, err
			}

		case tagCopy4:
			if len(src) < 5 {
				return nil, ErrCorrupt
			}
			length := 1 + int(tag>>2)
			offset := int(src[1]) | int(src[2])<<8 | int(src[3])<<16 | int(src[4])<<24
			src = src[5:]
			var err error
			dst, err = copyFrom(dst, offset, length)
			if err != nil {
				return nil, err
			}
		}
		if len(dst) > dLen {
			return nil, ErrCorrupt
		}
	}
	if len(dst) != dLen {
		return nil, ErrCorrupt
	}
	return dst, nil
}

// copyFrom appends length bytes starting offset back from the end of
// dst, allowing overlapping (run-length) copies.
func copyFrom(dst []byte, offset, length int) ([]byte, error) {
	if offset <= 0 || offset > len(dst) || length <= 0 {
		return nil, ErrCorrupt
	}
	pos := len(dst) - offset
	for i := 0; i < length; i++ {
		dst = append(dst, dst[pos+i])
	}
	return dst, nil
}
