package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc, err := Encode(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n, err := DecodedLen(enc); err != nil || n != len(src) {
		t.Fatalf("DecodedLen = %d, %v; want %d", n, err, len(src))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(dec))
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x01},
		[]byte("a"),
		[]byte("ab"),
		[]byte("hello world"),
		[]byte(strings.Repeat("a", 100)),
		[]byte(strings.Repeat("ab", 1000)),
		[]byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50)),
		bytes.Repeat([]byte{0}, 65536),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	src := []byte(strings.Repeat("DEVp2p snappy compression test payload. ", 200))
	enc, err := Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(src)/2 {
		t.Errorf("repetitive input compressed to %d/%d bytes only", len(enc), len(src))
	}
}

func TestIncompressibleInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4096)
	rng.Read(src)
	enc, err := Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Errorf("encoded %d > MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
	roundTrip(t, src)
}

func TestQuickRoundTripRandom(t *testing.T) {
	f := func(src []byte) bool {
		enc, err := Encode(src)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripStructured(t *testing.T) {
	// Structured inputs with long repeats exercise the copy paths.
	rng := rand.New(rand.NewSource(2))
	words := []string{"transaction", "0x00", "block", "header", "eth/63", "deadbeef"}
	for i := 0; i < 200; i++ {
		var b bytes.Buffer
		for b.Len() < 200+rng.Intn(5000) {
			b.WriteString(words[rng.Intn(len(words))])
		}
		roundTrip(t, b.Bytes())
	}
}

func TestLongMatches(t *testing.T) {
	// Matches of every length class: 4..11 (copy1), 12..64 (copy2),
	// >64 (chunked).
	for _, matchLen := range []int{4, 5, 11, 12, 60, 64, 65, 67, 68, 69, 128, 129, 1000} {
		prefix := []byte("0123456789abcdefprefix-unique-")
		src := append(append([]byte{}, prefix...), bytes.Repeat([]byte("Z"), matchLen)...)
		src = append(src, prefix...) // back-reference to the start
		roundTrip(t, src)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                                   // no varint
		{0xFF},                               // truncated varint
		{0x05},                               // announces 5 bytes, no body
		{0x05, 0x00},                         // literal runs past end
		{0x02, 0xFD, 0x01},                   // huge literal header, short input
		{0x01, 0x01, 0x01},                   // copy with no prior output
		{0x03, 0x00, 0x61, 0x09, 0x00, 0x00}, // copy2 offset 0
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	enc, _ := Encode([]byte("hello world, hello world"))
	// Tamper with the announced length.
	enc[0] = 5
	if _, err := Decode(enc); err == nil {
		t.Error("wrong announced length accepted")
	}
}

func TestDecodeTooLarge(t *testing.T) {
	hdr := uvarint(nil, MaxBlockSize+1)
	if _, err := Decode(hdr); err != ErrTooLarge {
		t.Errorf("got %v", err)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	if _, err := Encode(make([]byte, MaxBlockSize+1)); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestOverlappingCopy(t *testing.T) {
	// Run-length-style: offset 1, long length (decoder must copy
	// byte-by-byte).
	src := append([]byte("x"), bytes.Repeat([]byte("y"), 300)...)
	roundTrip(t, src)
}

func TestVarint(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1 << 24} {
		enc := uvarint(nil, v)
		got, n := readUvarint(enc)
		if n != len(enc) || got != v {
			t.Errorf("varint %d: got %d (consumed %d/%d)", v, got, n, len(enc))
		}
	}
	if _, n := readUvarint([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}); n != 0 {
		t.Error("overlong varint accepted")
	}
}

func BenchmarkEncode4K(b *testing.B) {
	src := []byte(strings.Repeat("transaction payload with some repetition ", 100))[:4096]
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode4K(b *testing.B) {
	src := []byte(strings.Repeat("transaction payload with some repetition ", 100))[:4096]
	enc, _ := Encode(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
