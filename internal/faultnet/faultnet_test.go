package faultnet

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp4", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestPlanIsDeterministic(t *testing.T) {
	leakcheck.Check(t)
	draws := func() []Kind {
		p := NewPlan(99)
		out := make([]Kind, 50)
		for i := range out {
			out[i], _ = p.draw()
		}
		return out
	}
	a, b := draws(), draws()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault sequences:\n%v\n%v", a, b)
	}
	seen := map[Kind]bool{}
	for _, k := range a {
		seen[k] = true
	}
	if len(seen) < 4 {
		t.Fatalf("50 draws hit only %d kinds: %v", len(seen), a)
	}
}

// wrapAs forces a specific fault kind onto one end of a TCP pair.
func wrapAs(t *testing.T, kind Kind, p *Plan) (faulted, peer net.Conn) {
	t.Helper()
	client, server := tcpPair(t)
	fc := newConn(client, p, kind, 7)
	t.Cleanup(func() { fc.Close() })
	return fc, server
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	leakcheck.Check(t)
	fc, peer := wrapAs(t, Corrupt, NewPlan(1))
	msg := bytes.Repeat([]byte{0x00}, 256)
	if _, err := fc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
}

func TestDuplicateWritesTwice(t *testing.T) {
	leakcheck.Check(t)
	fc, peer := wrapAs(t, Duplicate, NewPlan(1))
	msg := []byte("frame")
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatal(n, err)
	}
	got := make([]byte, 2*len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append([]byte("frame"), []byte("frame")...)) {
		t.Fatalf("wire bytes %q", got)
	}
}

func TestReorderSwapsWrites(t *testing.T) {
	leakcheck.Check(t)
	fc, peer := wrapAs(t, Reorder, NewPlan(1))
	fc.Write([]byte("first-"))  //nolint:errcheck
	fc.Write([]byte("second-")) //nolint:errcheck
	got := make([]byte, len("second-first-"))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "second-first-" {
		t.Fatalf("wire order %q", got)
	}
}

func TestTruncateCutsAndCloses(t *testing.T) {
	leakcheck.Check(t)
	p := NewPlan(1)
	// Keep writing messages through fresh conns until the truncation
	// fires (it triggers on a random write), then verify the peer saw
	// a short stream followed by EOF.
	for attempt := 0; attempt < 20; attempt++ {
		fc, peer := wrapAs(t, Truncate, p)
		msg := bytes.Repeat([]byte{0xAB}, 64)
		var cut bool
		for i := 0; i < 10; i++ {
			if _, err := fc.Write(msg); err != nil {
				cut = true
				break
			}
		}
		if !cut {
			continue
		}
		total := 0
		buf := make([]byte, 1024)
		for {
			n, err := peer.Read(buf)
			total += n
			if err != nil {
				break
			}
		}
		if total%len(msg) == 0 {
			t.Fatalf("peer read %d bytes — no partial write observed", total)
		}
		return
	}
	t.Fatal("truncation never fired in 20 connections")
}

func TestLatencyDelaysIO(t *testing.T) {
	leakcheck.Check(t)
	p := NewPlan(1)
	p.Latency = 80 * time.Millisecond
	fc, peer := wrapAs(t, Latency, p)
	start := time.Now()
	fc.Write([]byte("x")) //nolint:errcheck
	one := make([]byte, 1)
	io.ReadFull(peer, one) //nolint:errcheck
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("write arrived after %v, want >= latency", d)
	}
}

func TestStallFreezesThenCloseReleases(t *testing.T) {
	leakcheck.Check(t)
	p := NewPlan(1)
	p.StallFor = time.Hour // effectively forever; Close must release
	fc, _ := wrapAs(t, Stall, p)
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("hello"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("released write reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the stalled write")
	}
}

func TestResetAbortsConnection(t *testing.T) {
	leakcheck.Check(t)
	p := NewPlan(1)
	p.ResetAfter = 16
	fc, peer := wrapAs(t, Reset, p)
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		_, err = fc.Write(bytes.Repeat([]byte{0x01}, 8))
	}
	if err == nil {
		t.Fatal("reset never fired")
	}
	// The peer eventually observes reset or EOF, never a clean stream.
	peer.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1024)
	for {
		if _, rerr := peer.Read(buf); rerr != nil {
			return
		}
	}
}

func TestSlowLorisTrickles(t *testing.T) {
	leakcheck.Check(t)
	p := NewPlan(1)
	p.LorisChunk = 1
	p.LorisDelay = 10 * time.Millisecond
	fc, peer := wrapAs(t, SlowLoris, p)
	go fc.Write([]byte("abcdefgh")) //nolint:errcheck
	start := time.Now()
	got := make([]byte, 8)
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("8 bytes arrived in %v — not trickled", d)
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("content mangled: %q", got)
	}
}

func TestDialerAndListenerWrap(t *testing.T) {
	leakcheck.Check(t)
	p := &Plan{Seed: 3, Weights: map[Kind]int{Latency: 1}, Latency: 20 * time.Millisecond}
	ln, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := p.Listener(ln)
	defer wrapped.Close()
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c) //nolint:errcheck // echo
	}()
	dial := p.Dialer(nil)
	c, err := dial("tcp4", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping")) //nolint:errcheck
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatal(err, buf)
	}
	counts := p.Counts()
	if counts[Latency] < 2 {
		t.Fatalf("expected both directions faulted, counts = %v", counts)
	}
}
