package faultnet_test

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/ethnode"
	"repro/internal/faultnet"
	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
	"repro/internal/testutil/leakcheck"
)

func testKey(t testing.TB, seed int64) *secp256k1.PrivateKey {
	t.Helper()
	k, err := secp256k1.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// pagedDiscovery deterministically pages through a fixed world, 16
// nodes per lookup, so a finite number of rounds surfaces every node
// — the chaos test wants full coverage, not discovery realism.
type pagedDiscovery struct {
	self   enode.ID
	mu     sync.Mutex
	nodes  []*enode.Node
	cursor int
}

func (d *pagedDiscovery) Self() enode.ID { return d.self }

func (d *pagedDiscovery) Lookup(target enode.ID, done func([]*enode.Node)) {
	go func() {
		d.mu.Lock()
		batch := make([]*enode.Node, 0, 16)
		for i := 0; i < 16; i++ {
			batch = append(batch, d.nodes[d.cursor%len(d.nodes)])
			d.cursor++
		}
		d.mu.Unlock()
		done(batch)
	}()
}

// TestHostileTaxonomy dials every hostile peer model with the real
// hardened dialer and pins each attack to its expected bucket in the
// metrics error taxonomy — the acceptance criterion that every
// failure class the chaos world can produce is observable.
func TestHostileTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	leakcheck.Check(t, leakcheck.Window(10*time.Second))

	cases := []struct {
		kind    faultnet.HostileKind
		classes []string // acceptable OutcomeClass values
	}{
		{faultnet.HostileNeverAck, []string{"handshake-timeout"}},
		{faultnet.HostileHangAfterHandshake, []string{"tcp-timeout", "handshake-timeout"}},
		{faultnet.HostileWrongMAC, []string{"rlpx-bad-mac"}},
		{faultnet.HostileGiantFrame, []string{"frame-oversize"}},
		{faultnet.HostileOversizedHello, []string{"msg-oversize"}},
		{faultnet.HostileBadRLPHello, []string{"rlp-malformed"}},
		{faultnet.HostileSnappyBomb, []string{"snappy-corrupt"}},
		{faultnet.HostileStatusFlood, []string{"eth-handshake"}},
		{faultnet.HostileImmediateReset, []string{"tcp-reset", "rlpx-error", "error-other"}},
		{faultnet.HostileGarbage, []string{"rlpx-bad-handshake", "rlpx-error"}},
	}

	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "taxonomy", DAOFork: true, Length: 8})
	dialer := &nodefinder.RealDialer{
		Key: testKey(t, 1000),
		Hello: devp2p.Hello{
			Version:    devp2p.Version,
			Name:       "NodeFinder/chaos",
			Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
			ListenPort: 30303,
		},
		Status:      ethnode.MainnetStatusFor(c),
		DialTimeout: 2 * time.Second,
		Budget:      1500 * time.Millisecond,
	}

	type outcome struct {
		kind faultnet.HostileKind
		res  *nodefinder.DialResult
	}
	results := make(chan outcome, len(cases))
	for i, tc := range cases {
		srv, err := faultnet.StartHostile(tc.kind, testKey(t, 2000+int64(i)), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		kind := tc.kind
		dialer.Dial(srv.Node(), mlog.ConnDynamicDial, func(res *nodefinder.DialResult) {
			results <- outcome{kind, res}
		})
	}

	got := make(map[faultnet.HostileKind]string, len(cases))
	for range cases {
		select {
		case o := <-results:
			got[o.kind] = nodefinder.OutcomeClass(o.res)
		case <-time.After(20 * time.Second):
			t.Fatal("dials did not complete — a hostile peer defeated the dial budget")
		}
	}
	for _, tc := range cases {
		class, ok := got[tc.kind]
		if !ok {
			t.Errorf("%v: no result", tc.kind)
			continue
		}
		matched := false
		for _, want := range tc.classes {
			if class == want {
				matched = true
			}
		}
		if !matched {
			t.Errorf("%v classified as %q, want one of %v", tc.kind, class, tc.classes)
		}
	}
}

// TestChaosCrawl is the tentpole integration test: a full crawl of a
// mixed world — an event-driven simnet population whose honest nodes
// promote to live in-memory servers on dial, with ≥30% of the world
// conscripted into faultnet's hostile peer models — through a
// fault-injecting dialer. Idle nodes are pure state machines (no
// goroutine, no listener); only in-flight dials own real conn
// machinery. The crawler must build a complete census of the honest
// eth population, classify the hostile one in its error taxonomy,
// and finish with zero leaked goroutines and zero panics.
func TestChaosCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration test")
	}
	leakcheck.Check(t, leakcheck.Window(20*time.Second))

	const (
		baseNodes      = 220
		hostilePerKind = 7 // × NumHostileKinds = 70 hostile, ≥30% of the world
	)

	// The event-driven world: identities minted with real secp256k1
	// keys so promoted servers pass the crawler's RLPx identity check.
	// Everyone reachable with a free peer slot — the crawler is being
	// tested, not the census made unreachable.
	wcfg := simnet.DefaultConfig(77)
	wcfg.BaseNodes = baseNodes
	wcfg.AbusiveIPs = 0
	wcfg.UnreachableFraction = 0
	wcfg.WireFidelity = true
	w := simnet.NewWorld(wcfg)
	t.Cleanup(w.CloseWire)

	// Conscript every attack kind onto live nodes; the rest of the
	// population serves honest protocol when promoted.
	hostileAddrs := make(map[string]bool)
	hostileKind := make(map[string]faultnet.HostileKind)
	hostile := 0
	for _, n := range w.Nodes {
		if hostile < hostilePerKind*int(faultnet.NumHostileKinds) {
			n.Hostile = true
			n.HostileKind = faultnet.HostileKind(hostile % int(faultnet.NumHostileKinds))
			hostileAddrs[n.Node.TCPAddr().String()] = true
			hostileKind[n.Node.ID.String()] = n.HostileKind
			hostile++
			continue
		}
		n.Occupancy = 0
	}

	honestIDs := make(map[enode.ID]bool)
	var world []*enode.Node
	for _, n := range w.Nodes {
		world = append(world, n.Node)
		if !n.Hostile && n.Service == simnet.SvcEth {
			honestIDs[n.Node.ID] = true
		}
	}
	honestCount := len(honestIDs)
	total := len(world)
	if frac := float64(hostile) / float64(total); frac < 0.30 {
		t.Fatalf("hostile fraction %.2f below the 30%% the test contracts", frac)
	}
	if honestCount < 50 {
		t.Fatalf("only %d honest eth nodes in a %d-node world", honestCount, total)
	}

	mainnet := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "chaos-mainnet", DAOFork: true, Length: 8})

	// Wire faults on the crawler's own dials: benign delays toward
	// everyone, the full destructive schedule toward hostile peers
	// (honest conns must stay deliverable or the census cannot
	// converge).
	mild := &faultnet.Plan{
		Seed:       71,
		Weights:    map[faultnet.Kind]int{faultnet.None: 5, faultnet.Latency: 2, faultnet.SlowLoris: 1},
		Latency:    20 * time.Millisecond,
		LorisChunk: 256,
		LorisDelay: time.Millisecond,
	}
	harsh := faultnet.NewPlan(72)
	dialFunc := func(network, address string, timeout time.Duration) (net.Conn, error) {
		fd, err := w.DialWire(network, address, timeout)
		if err != nil {
			return nil, err
		}
		if hostileAddrs[address] {
			return harsh.Wrap(fd), nil
		}
		return mild.Wrap(fd), nil
	}

	reg := metrics.New()
	col := mlog.NewCollector()
	shuffled := append([]*enode.Node(nil), world...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	crawlKey := testKey(t, 9999)
	finder, err := nodefinder.New(nodefinder.Config{
		Discovery: &pagedDiscovery{self: enode.PubkeyID(&crawlKey.Pub), nodes: shuffled},
		Dialer: &nodefinder.RealDialer{
			Key: crawlKey,
			Hello: devp2p.Hello{
				Version:    devp2p.Version,
				Name:       "NodeFinder/chaos",
				Caps:       []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
				ListenPort: 30303,
			},
			Status:      ethnode.MainnetStatusFor(mainnet),
			DialTimeout: 5 * time.Second,
			// Generous budget: a timed-out honest dial costs a 5-minute
			// backoff, far past this test's horizon. On one loaded core,
			// 16 concurrent handshakes (client and server crypto both
			// in-process) need the headroom; the hostile stall attacks
			// are classified by the same budget, just slower.
			Budget:   8 * time.Second,
			DialFunc: dialFunc,
			Metrics:  nodefinder.NewDialerMetrics(reg),
		},
		Log:             col,
		Metrics:         reg,
		LookupInterval:  150 * time.Millisecond,
		StaticInterval:  time.Hour,
		MaxDynamicDials: 16,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	finder.Start()
	defer finder.Stop()

	// Convergence: every honest node appears in the census with a
	// completed eth handshake.
	censusHonest := func() int {
		seen := make(map[string]bool)
		for _, e := range col.Entries() {
			if e.Hello != nil && e.Status != nil {
				seen[e.NodeID] = true
			}
		}
		n := 0
		for id := range honestIDs {
			if seen[id.String()] {
				n++
			}
		}
		return n
	}
	// Wait for the honest census to converge AND for every node in
	// the world (hostile included) to have a recorded attempt — the
	// slow attacks take the full dial budget to classify.
	deadline := time.Now().Add(90 * time.Second)
	converged := 0
	for time.Now().Before(deadline) {
		converged = censusHonest()
		if converged == honestCount && reg.Snapshot().CounterSum("finder.conns") >= uint64(total) {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	// Allow a node or two lost to loopback scheduling under -race;
	// anything more means the hostile 30% starved the honest crawl.
	if converged < honestCount-3 {
		seen := make(map[string][]string)
		for _, e := range col.Entries() {
			detail := "ok"
			if e.Err != "" {
				detail = e.Err
			}
			seen[e.NodeID] = append(seen[e.NodeID], detail)
		}
		for id := range honestIDs {
			if n := w.NodeByID(id); n != nil {
				if entries := seen[id.String()]; len(entries) == 0 || entries[len(entries)-1] != "ok" {
					t.Logf("missing honest node %s svc=%v net=%v entries=%v", id.String()[:8], n.Service, n.Network != nil, entries)
				}
			}
		}
		t.Fatalf("census converged on %d/%d honest nodes", converged, honestCount)
	}
	t.Logf("census: %d/%d honest nodes, %d total entries, fault draws: dialer=%v hostile-side=%v",
		converged, honestCount, col.Len(), mild.Counts(), harsh.Counts())
	if testing.Verbose() {
		for _, e := range col.Entries() {
			if k, ok := hostileKind[e.NodeID]; ok {
				t.Logf("hostile %-20v err=%q hello=%v status=%v", k, e.Err, e.Hello != nil, e.Status != nil)
			}
		}
	}

	// Every hostile attack the world mounts must be visible in the
	// error taxonomy — the metrics layer is how an operator would
	// notice a real-world attack.
	snap := reg.Snapshot()
	for _, class := range []string{
		"rlpx-bad-mac", "frame-oversize", "msg-oversize",
		"snappy-corrupt", "rlp-malformed", "handshake-timeout",
	} {
		if snap.Counter("finder.conn_errors{"+class+"}") == 0 {
			t.Errorf("error taxonomy never recorded %q", class)
		}
	}
	// The crawler must have attempted substantially the whole world.
	if attempts := snap.CounterSum("finder.conns"); attempts < uint64(total) {
		t.Errorf("only %d connection attempts for a %d-node world", attempts, total)
	}
	finder.Stop()
}
