package faultnet

import (
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/rlp"
	"repro/internal/rlpx"
)

// HostileKind selects which protocol attack a HostileServer mounts.
type HostileKind int

// Hostile peer behaviors. Each targets one layer of the crawler's
// establishment chain; together they cover every parser that sees
// attacker-controlled bytes.
const (
	// HostileNeverAck reads the RLPx auth message and never answers —
	// the half-open handshake that wedges an unhardened dialer.
	HostileNeverAck HostileKind = iota
	// HostileHangAfterHandshake completes RLPx, then goes silent
	// before HELLO.
	HostileHangAfterHandshake
	// HostileWrongMAC completes RLPx, then emits bytes that fail the
	// frame MAC.
	HostileWrongMAC
	// HostileGiantFrame completes RLPx, then announces a frame far
	// above the reader's cap.
	HostileGiantFrame
	// HostileOversizedHello sends a HELLO payload above
	// devp2p.MaxHelloSize.
	HostileOversizedHello
	// HostileBadRLPHello sends a HELLO whose payload is not valid
	// RLP.
	HostileBadRLPHello
	// HostileSnappyBomb negotiates snappy, then sends a payload whose
	// snappy header announces gigabytes.
	HostileSnappyBomb
	// HostileStatusFlood handshakes honestly, then floods STATUS
	// messages as fast as the socket accepts them.
	HostileStatusFlood
	// HostileImmediateReset accepts and resets the connection.
	HostileImmediateReset
	// HostileGarbage spews random bytes with no handshake at all.
	HostileGarbage

	NumHostileKinds
)

var hostileNames = map[HostileKind]string{
	HostileNeverAck:           "never-ack",
	HostileHangAfterHandshake: "hang-after-handshake",
	HostileWrongMAC:           "wrong-mac",
	HostileGiantFrame:         "giant-frame",
	HostileOversizedHello:     "oversized-hello",
	HostileBadRLPHello:        "bad-rlp-hello",
	HostileSnappyBomb:         "snappy-bomb",
	HostileStatusFlood:        "status-flood",
	HostileImmediateReset:     "immediate-reset",
	HostileGarbage:            "garbage",
}

func (k HostileKind) String() string {
	if n, ok := hostileNames[k]; ok {
		return n
	}
	return "unknown"
}

// hostileConnDeadline bounds every hostile connection's lifetime so
// the attacker side cannot leak goroutines either — the leak checker
// watches both ends of the chaos test.
const hostileConnDeadline = 30 * time.Second

// HostileServer is a TCP peer that executes one attack per accepted
// connection. It has a real node identity, so a crawler discovers
// and dials it like any other peer.
type HostileServer struct {
	kind HostileKind
	key  *secp256k1.PrivateKey
	ln   net.Listener
	node *enode.Node
	rng  *rand.Rand

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// StartHostile listens on an ephemeral loopback port and serves the
// given attack. The seed drives any randomness in the attack bytes.
func StartHostile(kind HostileKind, key *secp256k1.PrivateKey, seed int64) (*HostileServer, error) {
	ln, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: hostile listen: %w", err)
	}
	addr := ln.Addr().(*net.TCPAddr)
	s := &HostileServer{
		kind:  kind,
		key:   key,
		ln:    ln,
		node:  enode.New(enode.PubkeyID(&key.Pub), addr.IP, uint16(addr.Port), uint16(addr.Port)),
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Node returns the server's discoverable identity.
func (s *HostileServer) Node() *enode.Node { return s.node }

// Kind returns the attack this server mounts.
func (s *HostileServer) Kind() HostileKind { return s.kind }

// Close stops accepting, severs every live connection, and waits for
// all serving goroutines to exit.
func (s *HostileServer) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *HostileServer) acceptLoop() {
	defer s.wg.Done()
	for {
		fd, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			fd.Close()
			return
		}
		s.conns[fd] = struct{}{}
		seed := s.rng.Int63()
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				fd.Close()
				s.mu.Lock()
				delete(s.conns, fd)
				s.mu.Unlock()
			}()
			ServeConn(s.kind, s.key, seed, fd)
		}()
	}
}

// ServeConn mounts one hostile attack on an already-established
// connection, then returns when the victim hangs up (or the
// connection deadline expires). It is the per-connection core of
// HostileServer, exported so simulated populations can project a
// hostile node onto any net.Conn — e.g. an in-memory pipe created
// when simnet promotes an event-driven node for one dial — and
// produce byte-identical attacks without a TCP listener.
//
// Errors are irrelevant: the victim hanging up on us IS the desired
// outcome.
func ServeConn(kind HostileKind, key *secp256k1.PrivateKey, seed int64, fd net.Conn) {
	now := time.Now()                            //lint:ignore wallclock the socket deadline must be an absolute wall-clock instant the kernel compares against real time
	fd.SetDeadline(now.Add(hostileConnDeadline)) //nolint:errcheck
	serveConn(kind, key, fd, rand.New(rand.NewSource(seed)))
}

func serveConn(kind HostileKind, key *secp256k1.PrivateKey, fd net.Conn, rng *rand.Rand) {
	switch kind {
	case HostileNeverAck:
		// Drain whatever the initiator sends, answer nothing. The
		// conn deadline (or the victim's dial budget, whichever fires
		// first) ends it.
		buf := make([]byte, 4096)
		for {
			if _, err := fd.Read(buf); err != nil {
				return
			}
		}
	case HostileImmediateReset:
		if tc, ok := fd.(*net.TCPConn); ok {
			tc.SetLinger(0) //nolint:errcheck
		}
		return // deferred Close sends the RST
	case HostileGarbage:
		buf := make([]byte, 1024)
		for {
			rng.Read(buf) //nolint:errcheck
			if _, err := fd.Write(buf); err != nil {
				return
			}
		}
	}

	// Every remaining attack first completes a genuine RLPx
	// handshake; the victim's own key proves nothing about good
	// faith.
	conn, err := rlpx.AcceptTimeout(fd, key, 10*time.Second)
	if err != nil {
		return
	}
	switch kind {
	case HostileHangAfterHandshake:
		// Say nothing; read and discard so the victim's HELLO write
		// succeeds and it commits to waiting for ours. Keep draining
		// until the victim (or the conn deadline) hangs up — returning
		// early would close the socket and turn the hang into an EOF.
		for {
			if _, _, err := conn.ReadMsg(); err != nil {
				return
			}
		}
	case HostileWrongMAC:
		// 32 bytes of junk where an authenticated header belongs.
		junk := make([]byte, 32)
		rng.Read(junk) //nolint:errcheck
		fd.Write(junk) //nolint:errcheck
		conn.ReadMsg() //nolint:errcheck // hold until the victim hangs up
	case HostileGiantFrame:
		// A legally-framed message far above the victim's read cap:
		// rejected from the header alone.
		conn.WriteMsg(devp2p.HelloMsg, make([]byte, 2*1024*1024)) //nolint:errcheck
		conn.ReadMsg()                                            //nolint:errcheck
	case HostileOversizedHello:
		payload := validHelloPayload(key, devp2p.MaxHelloSize*4)
		conn.WriteMsg(devp2p.HelloMsg, payload) //nolint:errcheck
		conn.ReadMsg()                          //nolint:errcheck
	case HostileBadRLPHello:
		// A size header announcing 2^64-1 bytes: the overflow shape
		// the fuzzer found in the RLP splitter.
		conn.WriteMsg(devp2p.HelloMsg, []byte{0xBF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) //nolint:errcheck
		conn.ReadMsg()                                                                               //nolint:errcheck
	case HostileSnappyBomb:
		serveSnappyBomb(conn, key)
	case HostileStatusFlood:
		serveStatusFlood(conn, key)
	}
}

// validHelloPayload RLP-encodes a well-formed HELLO inflated past
// minSize by an absurd client name — syntactically perfect, just too
// big to be worth parsing.
func validHelloPayload(key *secp256k1.PrivateKey, minSize int) []byte {
	name := make([]byte, minSize)
	for i := range name {
		name[i] = 'A'
	}
	h := devp2p.Hello{
		Version:    devp2p.Version,
		Name:       string(name),
		Caps:       []devp2p.Cap{{Name: eth.ProtocolName, Version: 63}},
		ListenPort: 30303,
		ID:         enode.PubkeyID(&key.Pub),
	}
	payload, err := rlp.EncodeToBytes(&h)
	if err != nil {
		return name // raw garbage is an acceptable fallback
	}
	return payload
}

// serveSnappyBomb negotiates devp2p v5 honestly so the victim
// enables snappy, then sends a payload whose snappy length header
// announces 2 GiB. The victim must reject it from the header without
// allocating.
func serveSnappyBomb(conn *rlpx.Conn, key *secp256k1.PrivateKey) {
	theirs, err := exchangeHello(conn, key)
	if err != nil || theirs.Version < devp2p.Version {
		return
	}
	// NOTE: our side deliberately does NOT enable snappy compression
	// for writes — the victim will treat the raw payload below as a
	// snappy stream and read its poisoned length header.
	bomb := []byte{0x80, 0x80, 0x80, 0x80, 0x08} // uvarint(2 GiB)
	bomb = append(bomb, 0xFF, 0xFF, 0xFF, 0xFF)
	conn.WriteMsg(devp2p.BaseProtocolLength+eth.StatusMsg, bomb) //nolint:errcheck
	conn.ReadMsg()                                               //nolint:errcheck
}

// serveStatusFlood handshakes honestly, then streams STATUS messages
// until the victim hangs up — a peer stuck in a protocol loop.
func serveStatusFlood(conn *rlpx.Conn, key *secp256k1.PrivateKey) {
	theirs, err := exchangeHello(conn, key)
	if err != nil {
		return
	}
	if theirs.Version >= devp2p.Version {
		// Unlike the snappy bomb, the flood compresses honestly: the
		// attack is volume, not framing.
		conn.SetSnappy(true)
	}
	status := &eth.Status{
		ProtocolVersion: 63,
		NetworkID:       99, // not Mainnet: keeps the victim's DAO check out of the loop
		TD:              big.NewInt(1),
	}
	for {
		if err := eth.SendStatus(conn, devp2p.BaseProtocolLength, status); err != nil {
			return
		}
	}
}

// exchangeHello sends a plausible HELLO (eth/63, devp2p v5) and
// reads the victim's.
func exchangeHello(conn *rlpx.Conn, key *secp256k1.PrivateKey) (*devp2p.Hello, error) {
	ours := &devp2p.Hello{
		Version:    devp2p.Version,
		Name:       "faultnet/hostile",
		Caps:       []devp2p.Cap{{Name: eth.ProtocolName, Version: 62}, {Name: eth.ProtocolName, Version: 63}},
		ListenPort: 30303,
		ID:         enode.PubkeyID(&key.Pub),
	}
	return devp2p.ExchangeHello(conn, ours)
}
