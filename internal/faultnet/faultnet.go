// Package faultnet is a deterministic fault-injection layer for the
// crawler's transport stack: net.Conn, dialer, and listener wrappers
// that misbehave on a seed-driven schedule, plus hostile peer servers
// that speak deliberately broken protocol.
//
// The paper's crawler talks to tens of thousands of strangers (§5);
// a measurable fraction of them stall handshakes, trickle bytes,
// send garbage, or reset mid-frame — sometimes adversarially (§5.4's
// identity spam came from someone probing the network with custom
// software). This package makes those behaviors reproducible so the
// hardening in rlpx/devp2p/eth/nodefinder is pinned by tests rather
// than discovered in production: a FaultPlan with a fixed seed
// produces the identical fault sequence on every run.
//
// Two layers compose:
//
//   - Wire faults (this file, conn.go): a Plan decides per
//     connection whether to reset, stall, slow-loris, truncate,
//     corrupt, duplicate, reorder, or delay traffic. Wrap a dial
//     function with Plan.Dialer or a listener with Plan.Listener.
//   - Protocol hostility (hostile.go): HostileServer speaks RLPx
//     just far enough to attack a specific parser — never-ACK auth,
//     handshake-then-hang, forged frame MACs, oversized HELLOs,
//     snappy bombs, STATUS floods.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Kind enumerates the wire faults a connection can draw.
type Kind int

// Wire fault kinds.
const (
	// None leaves the connection healthy.
	None Kind = iota
	// Reset closes the connection abruptly (with SO_LINGER 0 on TCP,
	// so the peer sees ECONNRESET) after ResetAfter bytes have moved.
	Reset
	// Stall freezes the first I/O operation for StallFor before
	// letting it proceed — the "accepted but silent" peer.
	Stall
	// SlowLoris delivers writes one LorisChunk at a time with
	// LorisDelay pauses, the classic slot-exhaustion attack.
	SlowLoris
	// Truncate cuts one write short and closes the connection,
	// leaving the peer holding a partial frame.
	Truncate
	// Corrupt flips one bit somewhere in each write.
	Corrupt
	// Duplicate transmits one write's bytes twice.
	Duplicate
	// Reorder holds a write back and emits it after the next one.
	Reorder
	// Latency injects a fixed delay before every read and write.
	Latency

	numKinds
)

var kindNames = map[Kind]string{
	None: "none", Reset: "reset", Stall: "stall",
	SlowLoris: "slow-loris", Truncate: "truncate", Corrupt: "corrupt",
	Duplicate: "duplicate", Reorder: "reorder", Latency: "latency",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "unknown"
}

// Plan is a deterministic fault schedule. Each wrapped connection
// draws a fault kind from Weights and a private RNG stream from
// Seed, so the same seed reproduces the same faults in the same
// order regardless of wall-clock timing.
type Plan struct {
	// Seed drives every random decision the plan makes.
	Seed int64
	// Weights are the relative draw weights per fault kind; absent
	// kinds (including None) have weight zero. A plan with only
	// {None: 1} is a transparent wrapper.
	Weights map[Kind]int

	// StallFor is how long a Stall connection freezes (default 5s).
	StallFor time.Duration
	// LorisChunk / LorisDelay shape SlowLoris writes (default 1 byte
	// every 50ms).
	LorisChunk int
	LorisDelay time.Duration
	// Latency is the per-operation delay for Latency conns (default
	// 100ms).
	Latency time.Duration
	// ResetAfter is roughly how many bytes flow before a Reset conn
	// closes (default 64).
	ResetAfter int

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[Kind]int64
}

// NewPlan returns a plan with every fault kind weighted equally
// against a 50% healthy baseline, tuned for fast tests.
func NewPlan(seed int64) *Plan {
	weights := map[Kind]int{None: int(numKinds) - 1}
	for k := Reset; k < numKinds; k++ {
		weights[k] = 1
	}
	return &Plan{
		Seed:       seed,
		Weights:    weights,
		StallFor:   5 * time.Second,
		LorisChunk: 1,
		LorisDelay: 50 * time.Millisecond,
		Latency:    100 * time.Millisecond,
		ResetAfter: 64,
	}
}

// draw picks the fault kind and private RNG seed for the next
// connection.
func (p *Plan) draw() (Kind, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
		p.counts = make(map[Kind]int64)
	}
	total := 0
	for _, w := range p.Weights {
		total += w
	}
	kind := None
	if total > 0 {
		n := p.rng.Intn(total)
		for k := None; k < numKinds; k++ {
			w := p.Weights[k]
			if n < w {
				kind = k
				break
			}
			n -= w
		}
	}
	p.counts[kind]++
	return kind, p.rng.Int63()
}

// Counts reports how many connections drew each fault so far.
func (p *Plan) Counts() map[Kind]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Kind]int64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// stallFor returns the configured or default stall duration.
func (p *Plan) stallFor() time.Duration {
	if p.StallFor > 0 {
		return p.StallFor
	}
	return 5 * time.Second
}

func (p *Plan) lorisChunk() int {
	if p.LorisChunk > 0 {
		return p.LorisChunk
	}
	return 1
}

func (p *Plan) lorisDelay() time.Duration {
	if p.LorisDelay > 0 {
		return p.LorisDelay
	}
	return 50 * time.Millisecond
}

func (p *Plan) latency() time.Duration {
	if p.Latency > 0 {
		return p.Latency
	}
	return 100 * time.Millisecond
}

func (p *Plan) resetAfter() int {
	if p.ResetAfter > 0 {
		return p.ResetAfter
	}
	return 64
}

// Wrap applies the plan's next fault draw to fd.
func (p *Plan) Wrap(fd net.Conn) net.Conn {
	kind, seed := p.draw()
	return newConn(fd, p, kind, seed)
}

// DialFunc matches nodefinder.RealDialer's DialFunc hook.
type DialFunc func(network, address string, timeout time.Duration) (net.Conn, error)

// Dialer wraps next so every successful dial's connection carries
// one of the plan's faults. Nil next uses net.DialTimeout.
func (p *Plan) Dialer(next DialFunc) DialFunc {
	if next == nil {
		next = net.DialTimeout
	}
	return func(network, address string, timeout time.Duration) (net.Conn, error) {
		fd, err := next(network, address, timeout)
		if err != nil {
			return nil, err
		}
		return p.Wrap(fd), nil
	}
}

// Listener wraps ln so every accepted connection carries one of the
// plan's faults. A Stall draw additionally delays the accept itself,
// modeling a backlogged or deliberately slow accept loop.
func (p *Plan) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, plan: p}
}

type listener struct {
	net.Listener
	plan *Plan
}

func (l *listener) Accept() (net.Conn, error) {
	fd, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(fd), nil
}
