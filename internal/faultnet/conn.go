package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// conn is a net.Conn that misbehaves according to one fault draw.
// All sleeps select against the done channel so Close always
// releases a blocked peer promptly — the fault layer must never be
// the thing that leaks a goroutine.
type conn struct {
	net.Conn
	plan *Plan
	kind Kind

	mu      sync.Mutex // guards rng and the fault state below
	rng     *rand.Rand
	moved   int    // total bytes read+written (Reset bookkeeping)
	stalled bool   // Stall fired already
	cut     bool   // Truncate fired already
	held    []byte // Reorder's withheld write

	closeOnce sync.Once
	done      chan struct{}
}

func newConn(fd net.Conn, p *Plan, kind Kind, seed int64) net.Conn {
	return &conn{
		Conn: fd,
		plan: p,
		kind: kind,
		rng:  rand.New(rand.NewSource(seed)),
		done: make(chan struct{}),
	}
}

// errInjected marks failures the fault layer itself manufactured.
type errInjected struct{ kind Kind }

func (e errInjected) Error() string {
	return fmt.Sprintf("faultnet: injected %s: connection reset", e.kind)
}

// sleep pauses for d but returns early (false) if the conn closes.
func (c *conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d) //lint:ignore wallclock the injected-latency timer emulates real network delay on real sockets; tests keep it sub-millisecond
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.done:
		return false
	}
}

// maybeStall freezes the first I/O operation of a Stall conn.
func (c *conn) maybeStall() bool {
	c.mu.Lock()
	fire := c.kind == Stall && !c.stalled
	c.stalled = true
	c.mu.Unlock()
	if fire {
		return c.sleep(c.plan.stallFor())
	}
	return true
}

// abort closes with SO_LINGER 0 when possible so the peer observes a
// genuine TCP RST, exactly what a crashing or firewalled remote
// produces.
func (c *conn) abort() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck
	}
	c.Close()
}

func (c *conn) Read(b []byte) (int, error) {
	switch c.kind {
	case Latency:
		if !c.sleep(c.plan.latency()) {
			return 0, net.ErrClosed
		}
	case Stall:
		if !c.maybeStall() {
			return 0, net.ErrClosed
		}
	}
	n, err := c.Conn.Read(b)
	if c.kind == Reset {
		c.mu.Lock()
		c.moved += n
		trip := c.moved >= c.plan.resetAfter()
		c.mu.Unlock()
		if trip {
			c.abort()
			return n, errInjected{Reset}
		}
	}
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	switch c.kind {
	case None:
		return c.Conn.Write(b)
	case Latency:
		if !c.sleep(c.plan.latency()) {
			return 0, net.ErrClosed
		}
		return c.Conn.Write(b)
	case Stall:
		if !c.maybeStall() {
			return 0, net.ErrClosed
		}
		return c.Conn.Write(b)
	case Reset:
		c.mu.Lock()
		c.moved += len(b)
		trip := c.moved >= c.plan.resetAfter()
		c.mu.Unlock()
		if trip {
			c.abort()
			return 0, errInjected{Reset}
		}
		return c.Conn.Write(b)
	case SlowLoris:
		return c.writeLoris(b)
	case Truncate:
		return c.writeTruncate(b)
	case Corrupt:
		return c.writeCorrupt(b)
	case Duplicate:
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		c.Conn.Write(b) //nolint:errcheck // best-effort duplicate
		return len(b), nil
	case Reorder:
		return c.writeReorder(b)
	default:
		return c.Conn.Write(b)
	}
}

// writeLoris trickles b out chunk by chunk.
func (c *conn) writeLoris(b []byte) (int, error) {
	chunk := c.plan.lorisChunk()
	written := 0
	for written < len(b) {
		end := written + chunk
		if end > len(b) {
			end = len(b)
		}
		n, err := c.Conn.Write(b[written:end])
		written += n
		if err != nil {
			return written, err
		}
		if written < len(b) && !c.sleep(c.plan.lorisDelay()) {
			return written, net.ErrClosed
		}
	}
	return written, nil
}

// writeTruncate picks one write, sends only half of it, and slams
// the connection shut — a mid-frame disappearance.
func (c *conn) writeTruncate(b []byte) (int, error) {
	c.mu.Lock()
	fire := !c.cut && c.rng.Intn(3) == 0
	if fire {
		c.cut = true
	}
	c.mu.Unlock()
	if !fire || len(b) < 2 {
		return c.Conn.Write(b)
	}
	c.Conn.Write(b[:len(b)/2]) //nolint:errcheck
	c.abort()
	return len(b) / 2, errInjected{Truncate}
}

// writeCorrupt flips one bit per write. The input is copied first:
// callers own their buffers.
func (c *conn) writeCorrupt(b []byte) (int, error) {
	if len(b) == 0 {
		return c.Conn.Write(b)
	}
	c.mu.Lock()
	i := c.rng.Intn(len(b))
	bit := byte(1 << c.rng.Intn(8))
	c.mu.Unlock()
	dirty := make([]byte, len(b))
	copy(dirty, b)
	dirty[i] ^= bit
	return c.Conn.Write(dirty)
}

// writeReorder withholds every other write and emits it after its
// successor — a stream-order violation no real TCP stack produces,
// which is exactly why the framing layer must catch it as MAC
// failure rather than trust it.
func (c *conn) writeReorder(b []byte) (int, error) {
	c.mu.Lock()
	if c.held == nil {
		c.held = make([]byte, len(b))
		copy(c.held, b)
		c.mu.Unlock()
		return len(b), nil
	}
	held := c.held
	c.held = nil
	c.mu.Unlock()
	if _, err := c.Conn.Write(b); err != nil {
		return 0, err
	}
	if _, err := c.Conn.Write(held); err != nil {
		return len(b), err
	}
	return len(b), nil
}

func (c *conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		// Flush any withheld reorder bytes so a graceful close does
		// not silently swallow data the caller believes was sent.
		c.mu.Lock()
		held := c.held
		c.held = nil
		c.mu.Unlock()
		if held != nil {
			c.Conn.Write(held) //nolint:errcheck
		}
		err = c.Conn.Close()
	})
	return err
}
