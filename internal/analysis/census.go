package analysis

import (
	"sort"
	"strings"

	"repro/internal/chain"
)

// Share is one row of a ranked distribution.
type Share struct {
	Key      string
	Count    int
	Fraction float64
}

// rank converts a count map to rows sorted by count descending (ties
// by key for determinism).
func rank(counts map[string]int) []Share {
	total := 0
	for _, c := range counts {
		total += c
	}
	rows := make([]Share, 0, len(counts))
	for k, c := range counts {
		f := 0.0
		if total > 0 {
			f = float64(c) / float64(total)
		}
		rows = append(rows, Share{Key: k, Count: c, Fraction: f})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

// knownServices are the Table 3 capability names.
var knownServices = []string{"eth", "bzz", "les", "exp", "istanbul", "shh", "dbix", "pip", "mc", "ele"}

// PrimaryService classifies a node's service from its capability
// list, the way Table 3 does: eth wins if present, then the other
// known services, otherwise the first capability name.
func PrimaryService(caps []string) string {
	names := map[string]bool{}
	var first string
	for _, c := range caps {
		name := c
		if i := strings.IndexByte(c, '/'); i >= 0 {
			name = c[:i]
		}
		if first == "" {
			first = name
		}
		names[name] = true
	}
	for _, s := range knownServices {
		if names[s] {
			return s
		}
	}
	if first == "" {
		return "unknown"
	}
	return "other:" + first
}

// ServiceCensus computes Table 3 from per-node observations.
func ServiceCensus(nodes map[string]*NodeObservation) []Share {
	counts := map[string]int{}
	for _, o := range nodes {
		if len(o.Caps) == 0 {
			continue // no HELLO: not part of the DEVp2p census
		}
		counts[PrimaryService(o.Caps)]++
	}
	return rank(counts)
}

// NetworkCensus captures Figure 9.
type NetworkCensus struct {
	// Networks ranks network IDs by node count.
	Networks []Share
	// GenesisHashes ranks genesis hashes by node count.
	GenesisHashes []Share
	// DistinctNetworks and DistinctGenesis are the headline counts
	// (the paper: 4,076 and 18,829).
	DistinctNetworks int
	DistinctGenesis  int
	// SinglePeerNetworks is how many networks were seen at exactly
	// one peer (the paper: 1,402).
	SinglePeerNetworks int
	// MainnetGenesisImpostors counts non-network-1 peers advertising
	// the Mainnet genesis hash (the paper: 10,497 instances).
	MainnetGenesisImpostors int
}

// Networks computes Figure 9 from observations with STATUS data.
func Networks(nodes map[string]*NodeObservation) *NetworkCensus {
	netCounts := map[string]int{}
	genCounts := map[string]int{}
	impostors := 0
	mainnetGenesis := chain.MainnetGenesisHash.Hex()
	for _, o := range nodes {
		if !o.HasStatus {
			continue
		}
		netCounts[netKey(o.NetworkID)]++
		genCounts[o.GenesisHash]++
		if o.NetworkID != 1 && o.GenesisHash == mainnetGenesis {
			impostors++
		}
	}
	nc := &NetworkCensus{
		Networks:                rank(netCounts),
		GenesisHashes:           rank(genCounts),
		DistinctNetworks:        len(netCounts),
		DistinctGenesis:         len(genCounts),
		MainnetGenesisImpostors: impostors,
	}
	for _, c := range netCounts {
		if c == 1 {
			nc.SinglePeerNetworks++
		}
	}
	return nc
}

func netKey(id uint64) string {
	switch id {
	case 1:
		return "1 (Mainnet/Classic)"
	case 3:
		return "3 (Ropsten)"
	default:
		return uitoa(id)
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// IsMainnet reports whether an observation is a verified non-Classic
// Mainnet node: network 1, Mainnet genesis, and a pro-fork DAO check.
func IsMainnet(o *NodeObservation) bool {
	return IsMainnetLike(o, chain.MainnetGenesisHash.Hex())
}

// IsMainnetLike is IsMainnet against a caller-supplied genesis hash,
// for test networks whose "Mainnet" has a synthetic genesis.
func IsMainnetLike(o *NodeObservation, genesisHex string) bool {
	return o.HasStatus &&
		o.NetworkID == 1 &&
		o.GenesisHash == genesisHex &&
		o.DAOFork == "supported"
}

// MainnetSubset filters to verified Mainnet nodes (§6.2's population).
func MainnetSubset(nodes map[string]*NodeObservation) map[string]*NodeObservation {
	out := map[string]*NodeObservation{}
	for id, o := range nodes {
		if IsMainnet(o) {
			out[id] = o
		}
	}
	return out
}

// ClientCensus computes Table 4: implementation shares among the
// given (typically Mainnet) observations.
func ClientCensus(nodes map[string]*NodeObservation) []Share {
	counts := map[string]int{}
	for _, o := range nodes {
		if o.ClientName == "" {
			continue
		}
		impl := o.ClientName
		if i := strings.IndexByte(impl, '/'); i >= 0 {
			impl = impl[:i]
		}
		counts[impl]++
	}
	return rank(counts)
}

// VersionCensus captures Table 5 for one client.
type VersionCensus struct {
	Client      string
	Total       int
	StableCount int
	StableShare float64
	// Versions ranks version strings.
	Versions []Share
}

// Versions computes Table 5 for the named client prefix ("Geth",
// "Parity").
func Versions(nodes map[string]*NodeObservation, client string) *VersionCensus {
	counts := map[string]int{}
	stable := 0
	total := 0
	for _, o := range nodes {
		if !strings.HasPrefix(o.ClientName, client+"/") {
			continue
		}
		parts := strings.SplitN(o.ClientName, "/", 3)
		if len(parts) < 2 {
			continue
		}
		v := parts[1]
		counts[v]++
		total++
		if strings.Contains(v, "stable") {
			stable++
		}
	}
	vc := &VersionCensus{Client: client, Total: total, StableCount: stable, Versions: rank(counts)}
	if total > 0 {
		vc.StableShare = float64(stable) / float64(total)
	}
	return vc
}

// DisconnectTable computes Table 1 style shares from reason counts.
func DisconnectTable(counts map[uint64]uint64) []Share {
	m := map[string]int{}
	for reason, c := range counts {
		m[reasonName(reason)] = int(c)
	}
	return rank(m)
}

func reasonName(r uint64) string {
	names := map[uint64]string{
		0x00: "Disconnect requested",
		0x03: "Useless peer",
		0x04: "Too many peers",
		0x05: "Already connected",
		0x08: "Client quitting",
		0x0b: "Read timeout",
		0x10: "Subprotocol error",
	}
	if n, ok := names[r]; ok {
		return n
	}
	return "Other"
}
