package analysis

import (
	"testing"
	"time"

	"repro/internal/nodefinder/mlog"
)

const epochInterval = 30 * time.Minute

func disconnectEntry(id, ip string, at time.Time) *mlog.Entry {
	e := entry(id, ip, at)
	reason := uint64(0x04)
	e.DisconnectReason = &reason
	return e
}

// TestEpochSeriesEmptyFirstSnapshot: a series whose opening window has
// no responsive entries yields an all-zero first point, and the first
// populated window counts everything as arrivals.
func TestEpochSeriesEmptyFirstSnapshot(t *testing.T) {
	caps := []string{"eth/63"}
	entries := []*mlog.Entry{
		helloEntry("a", "1.0.0.1", "Geth/v1", caps, t0.Add(epochInterval+time.Minute)),
		helloEntry("b", "1.0.0.2", "Geth/v1", caps, t0.Add(epochInterval+2*time.Minute)),
	}
	points := EpochSeries(entries, t0, epochInterval, 2)
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if p := points[0]; p.Alive != 0 || p.Arrived != 0 || p.Departed != 0 || p.Changed != 0 {
		t.Errorf("empty first window not all-zero: %+v", p)
	}
	if p := points[1]; p.Alive != 2 || p.Arrived != 2 || p.Departed != 0 {
		t.Errorf("first populated window: %+v, want 2 alive / 2 arrived", p)
	}
}

// TestEpochSeriesFlapping: a node that flaps — responds, disappears,
// responds again all inside one interval — is live exactly once in
// that window (no double count), and a node whose whole life fits in
// one window arrives and departs in consecutive points.
func TestEpochSeriesFlapping(t *testing.T) {
	caps := []string{"eth/63"}
	var entries []*mlog.Entry
	// f flaps within window 0: hello at +1m, failed dial at +10m,
	// hello again at +20m.
	entries = append(entries, helloEntry("f", "1.0.0.9", "Geth/v1", caps, t0.Add(time.Minute)))
	failed := entry("f", "1.0.0.9", t0.Add(10*time.Minute))
	failed.Err = "connection refused"
	entries = append(entries, failed)
	entries = append(entries, helloEntry("f", "1.0.0.9", "Geth/v1", caps, t0.Add(20*time.Minute)))
	// s is a steady node live in both windows.
	entries = append(entries, helloEntry("s", "1.0.0.8", "Geth/v1", caps, t0.Add(2*time.Minute)))
	entries = append(entries, helloEntry("s", "1.0.0.8", "Geth/v1", caps, t0.Add(epochInterval+2*time.Minute)))

	points := EpochSeries(entries, t0, epochInterval, 2)
	if p := points[0]; p.Alive != 2 || p.Arrived != 2 {
		t.Errorf("window 0: %+v, want 2 alive / 2 arrived (flapper counted once)", p)
	}
	if p := points[1]; p.Alive != 1 || p.Departed != 1 || p.Arrived != 0 {
		t.Errorf("window 1: %+v, want 1 alive / 1 departed", p)
	}
}

// TestEpochSeriesIdentityReuse: the same node ID re-appearing with a
// changed client version or from a new IP is a "changed" identity,
// not an arrival or departure — the daemon must not count an upgrade
// as churn.
func TestEpochSeriesIdentityReuse(t *testing.T) {
	caps := []string{"eth/63"}
	entries := []*mlog.Entry{
		// u upgrades its client between windows.
		helloEntry("u", "1.0.0.1", "Geth/v1.8.10-stable", caps, t0.Add(time.Minute)),
		helloEntry("u", "1.0.0.1", "Geth/v1.8.11-stable", caps, t0.Add(epochInterval+time.Minute)),
		// m moves to a new IP (ENR change) between windows.
		helloEntry("m", "1.0.0.2", "Parity/v1.10.6", caps, t0.Add(time.Minute)),
		helloEntry("m", "9.9.9.9", "Parity/v1.10.6", caps, t0.Add(epochInterval+time.Minute)),
		// k keeps the same fingerprint.
		helloEntry("k", "1.0.0.3", "Geth/v1.8.11-stable", caps, t0.Add(time.Minute)),
		helloEntry("k", "1.0.0.3", "Geth/v1.8.11-stable", caps, t0.Add(epochInterval+time.Minute)),
	}
	points := EpochSeries(entries, t0, epochInterval, 2)
	if p := points[1]; p.Changed != 2 || p.Arrived != 0 || p.Departed != 0 || p.Alive != 3 {
		t.Errorf("window 1: %+v, want 2 changed / 0 arrived / 0 departed / 3 alive", p)
	}
}

// TestLiveFingerprintsLatestWins: within one window the latest entry
// defines the fingerprint; DISCONNECT-only entries are responsive but
// carry no client name, and entries outside the window are ignored.
func TestLiveFingerprintsLatestWins(t *testing.T) {
	caps := []string{"eth/63"}
	entries := []*mlog.Entry{
		helloEntry("a", "1.0.0.1", "Geth/v1.8.10", caps, t0.Add(1*time.Minute)),
		helloEntry("a", "1.0.0.1", "Geth/v1.8.11", caps, t0.Add(5*time.Minute)),
		disconnectEntry("d", "1.0.0.2", t0.Add(2*time.Minute)),
		helloEntry("late", "1.0.0.3", "Geth/v1", caps, t0.Add(epochInterval)), // at `until`: excluded
	}
	live := LiveFingerprints(entries, t0, t0.Add(epochInterval))
	if len(live) != 2 {
		t.Fatalf("%d live, want 2: %v", len(live), live)
	}
	if live["a"] != "1.0.0.1|Geth/v1.8.11" {
		t.Errorf("a = %q, want latest hello fingerprint", live["a"])
	}
	if live["d"] != "1.0.0.2" {
		t.Errorf("d = %q, want bare-IP fingerprint for DISCONNECT-only", live["d"])
	}
}

// TestDiffEpochDegenerate pins the boundary diffs the daemon hits on
// its first and last ticks.
func TestDiffEpochDegenerate(t *testing.T) {
	a, d, c := DiffEpoch(map[string]string{}, map[string]string{"x": "1"})
	if a != 1 || d != 0 || c != 0 {
		t.Errorf("empty prev: %d/%d/%d", a, d, c)
	}
	a, d, c = DiffEpoch(map[string]string{"x": "1"}, map[string]string{})
	if a != 0 || d != 1 || c != 0 {
		t.Errorf("empty cur: %d/%d/%d", a, d, c)
	}
	if pts := EpochSeries(nil, t0, epochInterval, 0); pts != nil {
		t.Errorf("zero epochs: %v", pts)
	}
}
