package analysis

import (
	"sort"
	"time"
)

// Churn quantifies node availability dynamics, the dimension the
// paper compares against the file-sharing measurement literature
// (Saroiu et al., Pouwelse et al.; §7, §9): how long nodes stay
// responsive, how they disappear and return, and what fraction of
// identities are one-shot visitors.
type ChurnResult struct {
	// SessionCDF is the distribution of responsive-session lengths
	// in minutes. A session is a maximal run of responsive
	// observations with no gap over SessionGap.
	SessionCDF *CDF
	// InterSessionCDF is the distribution of offline gaps between a
	// node's sessions, in minutes.
	InterSessionCDF *CDF
	// OneShotFraction is the share of identities responsive exactly
	// once — the paper's abusive IP population was 80% one-shot.
	OneShotFraction float64
	// MedianSessionsPerNode is the median session count.
	MedianSessionsPerNode float64
	// ReturningFraction is the share of nodes with 2+ sessions.
	ReturningFraction float64
}

// SessionGap is the silence that ends a responsive session. The
// crawler re-dials every 30 minutes, so two consecutive successful
// probes are at most ~35 minutes apart on a continuously-online node.
const SessionGap = 45 * time.Minute

// Churn computes availability dynamics over per-node observations.
func Churn(nodes map[string]*NodeObservation) *ChurnResult {
	var sessions []float64
	var gaps []float64
	oneShot, returning, total := 0, 0, 0
	var sessionCounts []float64

	for _, o := range nodes {
		var times []time.Time
		for _, e := range o.Entries {
			if e.Hello != nil || e.DisconnectReason != nil {
				times = append(times, e.Time)
			}
		}
		if len(times) == 0 {
			continue
		}
		total++
		sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
		if len(times) == 1 {
			oneShot++
			sessions = append(sessions, 0)
			sessionCounts = append(sessionCounts, 1)
			continue
		}
		// Split into sessions at gaps over SessionGap.
		count := 1
		start := times[0]
		prev := times[0]
		for _, t := range times[1:] {
			if t.Sub(prev) > SessionGap {
				sessions = append(sessions, prev.Sub(start).Minutes())
				gaps = append(gaps, t.Sub(prev).Minutes())
				start = t
				count++
			}
			prev = t
		}
		sessions = append(sessions, prev.Sub(start).Minutes())
		sessionCounts = append(sessionCounts, float64(count))
		if count > 1 {
			returning++
		}
	}

	res := &ChurnResult{
		SessionCDF:      NewCDF(sessions),
		InterSessionCDF: NewCDF(gaps),
	}
	if total > 0 {
		res.OneShotFraction = float64(oneShot) / float64(total)
		res.ReturningFraction = float64(returning) / float64(total)
	}
	res.MedianSessionsPerNode = NewCDF(sessionCounts).P(0.5)
	return res
}
