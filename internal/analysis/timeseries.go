package analysis

import (
	"sort"
	"strings"
	"time"

	"repro/internal/nodefinder/mlog"
)

// dayIndex buckets a timestamp into a day number from start.
func dayIndex(start, t time.Time) int {
	return int(t.Sub(start) / (24 * time.Hour))
}

// DialSeries builds the Figures 6-7 daily series from log entries:
// unique nodes dynamic-dialed per day, and unique nodes responding
// (HELLO exchanged) per day.
func DialSeries(entries []*mlog.Entry, start time.Time, days int) (dialed, responded *DailySeries) {
	dialedSets := make([]map[string]bool, days)
	respSets := make([]map[string]bool, days)
	for i := range dialedSets {
		dialedSets[i] = map[string]bool{}
		respSets[i] = map[string]bool{}
	}
	for _, e := range entries {
		if e.ConnType != mlog.ConnDynamicDial {
			continue
		}
		d := dayIndex(start, e.Time)
		if d < 0 || d >= days {
			continue
		}
		dialedSets[d][e.NodeID] = true
		if e.Succeeded() || e.DisconnectReason != nil {
			// The paper counts a node as responding when a DEVp2p
			// message (HELLO or DISCONNECT) came back.
			respSets[d][e.NodeID] = true
		}
	}
	dialed = &DailySeries{Start: start, Days: make([]float64, days)}
	responded = &DailySeries{Start: start, Days: make([]float64, days)}
	for i := 0; i < days; i++ {
		dialed.Days[i] = float64(len(dialedSets[i]))
		responded.Days[i] = float64(len(respSets[i]))
	}
	return dialed, responded
}

// DialAttemptSeries builds Figure 5's daily dial-attempt counts (not
// unique nodes) split by type, plus Figure 8's per-node dial counts.
func DialAttemptSeries(entries []*mlog.Entry, start time.Time, days int) (dynamic, static *DailySeries) {
	dynamic = &DailySeries{Start: start, Days: make([]float64, days)}
	static = &DailySeries{Start: start, Days: make([]float64, days)}
	for _, e := range entries {
		d := dayIndex(start, e.Time)
		if d < 0 || d >= days {
			continue
		}
		switch e.ConnType {
		case mlog.ConnDynamicDial:
			dynamic.Days[d]++
		case mlog.ConnStaticDial:
			static.Days[d]++
		case mlog.ConnIncoming:
			// Figures 5 and 8 chart outbound dials only; inbound
			// sessions are deliberately excluded here.
		}
	}
	return dynamic, static
}

// NodeDialSeries builds Figure 8: daily dials to one specific node,
// split by connection type.
func NodeDialSeries(entries []*mlog.Entry, nodeID string, start time.Time, days int) (dynamic, static *DailySeries) {
	dynamic = &DailySeries{Start: start, Days: make([]float64, days)}
	static = &DailySeries{Start: start, Days: make([]float64, days)}
	for _, e := range entries {
		if e.NodeID != nodeID {
			continue
		}
		d := dayIndex(start, e.Time)
		if d < 0 || d >= days {
			continue
		}
		switch e.ConnType {
		case mlog.ConnDynamicDial:
			dynamic.Days[d]++
		case mlog.ConnStaticDial:
			static.Days[d]++
		case mlog.ConnIncoming:
			// Figures 5 and 8 chart outbound dials only; inbound
			// sessions are deliberately excluded here.
		}
	}
	return dynamic, static
}

// VersionSeries is Figure 10: per-day node counts for each version of
// one client.
type VersionSeries struct {
	Start    time.Time
	Versions []string
	// Counts[v][d] is the number of distinct nodes running version v
	// seen on day d.
	Counts map[string][]float64
}

// VersionAdoption builds Figure 10 for the given client prefix.
func VersionAdoption(entries []*mlog.Entry, client string, start time.Time, days int) *VersionSeries {
	perDay := make([]map[string]map[string]bool, days) // day -> version -> node set
	for i := range perDay {
		perDay[i] = map[string]map[string]bool{}
	}
	versions := map[string]bool{}
	for _, e := range entries {
		if e.Hello == nil || !strings.HasPrefix(e.Hello.ClientName, client+"/") {
			continue
		}
		d := dayIndex(start, e.Time)
		if d < 0 || d >= days {
			continue
		}
		parts := strings.SplitN(e.Hello.ClientName, "/", 3)
		if len(parts) < 2 {
			continue
		}
		v := parts[1]
		versions[v] = true
		set, ok := perDay[d][v]
		if !ok {
			set = map[string]bool{}
			perDay[d][v] = set
		}
		set[e.NodeID] = true
	}
	vs := &VersionSeries{Start: start, Counts: map[string][]float64{}}
	for v := range versions {
		vs.Versions = append(vs.Versions, v)
	}
	sort.Strings(vs.Versions)
	for _, v := range vs.Versions {
		row := make([]float64, days)
		for d := 0; d < days; d++ {
			row[d] = float64(len(perDay[d][v]))
		}
		vs.Counts[v] = row
	}
	return vs
}

// OlderThanShare computes §6.2's "68.3% were running versions older
// than 2 iterations" style metric: the share of client nodes on the
// final day running a version below cutoff (lexicographic semver-ish
// comparison over the provided ordered release list).
func OlderThanShare(entries []*mlog.Entry, client string, releases []string, cutoff string, onDay time.Time) float64 {
	rankOf := map[string]int{}
	for i, r := range releases {
		rankOf[r] = i
	}
	cutoffRank, ok := rankOf[cutoff]
	if !ok {
		return 0
	}
	dayStart := onDay.Truncate(24 * time.Hour)
	dayEnd := dayStart.Add(24 * time.Hour)
	old := map[string]bool{}
	all := map[string]bool{}
	for _, e := range entries {
		if e.Hello == nil || !strings.HasPrefix(e.Hello.ClientName, client+"/") {
			continue
		}
		if e.Time.Before(dayStart) || !e.Time.Before(dayEnd) {
			continue
		}
		parts := strings.SplitN(e.Hello.ClientName, "/", 3)
		if len(parts) < 2 {
			continue
		}
		all[e.NodeID] = true
		if r, ok := rankOf[parts[1]]; ok && r < cutoffRank {
			old[e.NodeID] = true
		} else if !ok {
			// Unknown (ancient) versions count as old.
			old[e.NodeID] = true
		}
	}
	if len(all) == 0 {
		return 0
	}
	return float64(len(old)) / float64(len(all))
}
