package analysis

import (
	"net"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
)

// Historical P2P network sizes the paper compares against (Table 6).
// These are quoted constants, exactly as the paper quotes them.
var (
	PaperEthereumNodeFinder = 15454 // 04/23/2018, this work
	PaperEthereumEthernodes = 4717  // 04/23/2018, ethernodes.org
	PaperEthereumGencer     = 4302  // Gencer et al.
	PaperBitcoinBitnodes    = 10454 // 04/23/2018, bitnodes.earn.com
	PaperGnutellaSNAP       = 62586 // 08/31/2002, SNAP dataset
)

// SizeRow is one Table 6 row.
type SizeRow struct {
	Network string
	Date    string
	Size    int
}

// NetworkSizeTable assembles Table 6 around a measured NodeFinder
// count, keeping the literature constants for context.
func NetworkSizeTable(nodeFinderCount, ethernodesCount int) []SizeRow {
	return []SizeRow{
		{"Ethereum (NodeFinder)", "04/23/2018", nodeFinderCount},
		{"Ethereum (Ethernodes)", "04/23/2018", ethernodesCount},
		{"Ethereum (Gencer et al., paper constant)", "-", PaperEthereumGencer},
		{"Bitcoin (Bitnodes, paper constant)", "04/23/2018", PaperBitcoinBitnodes},
		{"Gnutella (SNAP, paper constant)", "08/31/2002", PaperGnutellaSNAP},
	}
}

// UniqueInWindow counts node identities observed in [from, to).
func UniqueInWindow(nodes map[string]*NodeObservation, from, to time.Time) int {
	n := 0
	for _, o := range nodes {
		if o.LastSeen.Before(from) || !o.FirstSeen.Before(to) {
			continue
		}
		n++
	}
	return n
}

// GeoCensus is Figure 12.
type GeoCensus struct {
	Countries []Share
	ASes      []Share
	// Top8ASShare is the cumulative share of the eight largest ASes
	// (paper: 44.8%, all cloud).
	Top8ASShare float64
	// Top8AllCloud reports whether those eight are all cloud
	// providers.
	Top8AllCloud bool
}

// Geography resolves node IPs through the geo database.
func Geography(nodes map[string]*NodeObservation, db *geo.DB) *GeoCensus {
	countries := map[string]int{}
	ases := map[string]int{}
	cloudByAS := map[string]bool{}
	for _, o := range nodes {
		ip := net.ParseIP(o.IP)
		if ip == nil {
			continue
		}
		countries[string(db.Country(ip))]++
		as := db.ASOf(ip)
		ases[as.Name]++
		cloudByAS[as.Name] = as.Cloud
	}
	gc := &GeoCensus{Countries: rank(countries), ASes: rank(ases)}
	gc.Top8AllCloud = true
	top := gc.ASes
	// "OTHER" aggregates the long tail; skip it when ranking real
	// ASes.
	real := make([]Share, 0, len(top))
	for _, s := range top {
		if s.Key != "OTHER" {
			real = append(real, s)
		}
	}
	for i, s := range real {
		if i >= 8 {
			break
		}
		gc.Top8ASShare += s.Fraction
		if !cloudByAS[s.Key] {
			gc.Top8AllCloud = false
		}
	}
	return gc
}

// CDF is an empirical distribution.
type CDF struct {
	// Values are sorted ascending.
	Values []float64
}

// NewCDF builds a CDF from samples.
func NewCDF(samples []float64) *CDF {
	vs := append([]float64(nil), samples...)
	sort.Float64s(vs)
	return &CDF{Values: vs}
}

// P returns the value at quantile q in [0,1].
func (c *CDF) P(q float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	i := int(q * float64(len(c.Values)))
	if i >= len(c.Values) {
		i = len(c.Values) - 1
	}
	if i < 0 {
		i = 0
	}
	return c.Values[i]
}

// FracBelow returns the fraction of samples ≤ x.
func (c *CDF) FracBelow(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.Values, x)
	// Include equal values.
	for i < len(c.Values) && c.Values[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.Values))
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.Values) }

// LatencyCDF builds Figure 13's distribution (milliseconds) from
// observations that carried an RTT estimate.
func LatencyCDF(nodes map[string]*NodeObservation) *CDF {
	var samples []float64
	for _, o := range nodes {
		if o.LatencyUS > 0 {
			samples = append(samples, float64(o.LatencyUS)/1000)
		}
	}
	return NewCDF(samples)
}

// FreshnessResult is Figure 14.
type FreshnessResult struct {
	// LagCDF is the distribution of head-minus-best block lags.
	LagCDF *CDF
	// StaleFraction is the share of nodes more than staleThreshold
	// blocks behind (paper: 32.7%).
	StaleFraction float64
	// StuckAtByzantium counts nodes exactly at block 4,370,001
	// (paper: 141).
	StuckAtByzantium int
}

// StaleThresholdBlocks is the lag beyond which a node cannot have
// validated or propagated recent transactions (≈25 minutes of
// blocks).
const StaleThresholdBlocks = 100

// Freshness computes Figure 14. headAt must return the chain head at
// a given time; each node's lag is judged against the head when its
// STATUS was recorded.
func Freshness(nodes map[string]*NodeObservation, headAt func(time.Time) uint64) *FreshnessResult {
	var lags []float64
	stale := 0
	stuck := 0
	total := 0
	for _, o := range nodes {
		if !o.HasStatus || o.BestBlock == 0 {
			continue
		}
		total++
		head := headAt(o.LastStatusTime)
		var lag uint64
		if o.BestBlock < head {
			lag = head - o.BestBlock
		}
		lags = append(lags, float64(lag))
		if lag > StaleThresholdBlocks {
			stale++
		}
		if o.BestBlock == chain.ByzantiumForkBlock+1 {
			stuck++
		}
	}
	fr := &FreshnessResult{LagCDF: NewCDF(lags), StuckAtByzantium: stuck}
	if total > 0 {
		fr.StaleFraction = float64(stale) / float64(total)
	}
	return fr
}

// Intersection computes Table 2's 2x2 set comparison.
type Intersection struct {
	ENTotal    int // Ethernodes genesis-filtered count
	NFTotal    int // NodeFinder verified Mainnet count
	Overlap    int // in both
	ENOnly     int // Ethernodes-only (NodeFinder missed)
	NFOnly     int // NodeFinder-only (Ethernodes missed)
	ENCoverage float64
}

// Intersect compares ID sets.
func Intersect(en, nf []string) *Intersection {
	enSet := map[string]bool{}
	for _, id := range en {
		enSet[id] = true
	}
	nfSet := map[string]bool{}
	for _, id := range nf {
		nfSet[id] = true
	}
	res := &Intersection{ENTotal: len(enSet), NFTotal: len(nfSet)}
	for id := range enSet {
		if nfSet[id] {
			res.Overlap++
		} else {
			res.ENOnly++
		}
	}
	res.NFOnly = res.NFTotal - res.Overlap
	if res.ENTotal > 0 {
		res.ENCoverage = float64(res.Overlap) / float64(res.ENTotal)
	}
	return res
}

// DailySeries buckets per-day counts for the Figure 5-8 time series.
type DailySeries struct {
	Start time.Time
	// Days[i] is the value for day i.
	Days []float64
}

// Mean returns the series average.
func (s *DailySeries) Mean() float64 {
	if len(s.Days) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Days {
		sum += v
	}
	return sum / float64(len(s.Days))
}
