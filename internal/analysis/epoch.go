package analysis

import (
	"time"

	"repro/internal/nodefinder/mlog"
)

// Epoch snapshot-diff logic: the longitudinal census daemon
// (internal/census) slices the measurement log into fixed intervals
// ("epochs") and diffs consecutive intervals' live-identity sets into
// arrival/departure/change series. The functions here are pure over
// mlog entries, so a served series can be reconciled bit-for-bit
// against the raw log: the daemon and the auditor run the same code
// over the same records.

// EpochPoint is one finalized interval of the churn series.
type EpochPoint struct {
	// Epoch is the zero-based window index from the series start.
	Epoch int `json:"epoch"`
	// Start/End bound the window: [Start, End).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Alive is the number of identities responsive in the window.
	Alive int `json:"alive"`
	// Arrived counts identities responsive in this window but not the
	// previous one (for epoch 0: all live identities).
	Arrived int `json:"arrived"`
	// Departed counts identities responsive in the previous window
	// but silent in this one.
	Departed int `json:"departed"`
	// Changed counts identities live in both windows whose observable
	// fingerprint (IP or client version) changed between them —
	// identity reuse with a new ENR address or an upgraded client.
	Changed int `json:"changed"`
}

// LiveFingerprints scans entries and returns, for every identity with
// a responsive record (HELLO or DISCONNECT, the paper's "responding"
// criterion) in [since, until), a fingerprint of how it last
// presented itself in the window: "ip|clientName" when a HELLO was
// decoded, bare "ip" otherwise. Later entries win; among equal
// timestamps, later log order wins, so the result is deterministic
// for a fixed entry sequence.
func LiveFingerprints(entries []*mlog.Entry, since, until time.Time) map[string]string {
	out := map[string]string{}
	latest := map[string]time.Time{}
	for _, e := range entries {
		if e.NodeID == "" || e.Time.Before(since) || !e.Time.Before(until) {
			continue
		}
		if e.Hello == nil && e.DisconnectReason == nil {
			continue
		}
		if t, ok := latest[e.NodeID]; ok && e.Time.Before(t) {
			continue
		}
		latest[e.NodeID] = e.Time
		fp := e.IP
		if e.Hello != nil {
			fp += "|" + e.Hello.ClientName
		}
		out[e.NodeID] = fp
	}
	return out
}

// DiffEpoch compares consecutive live-fingerprint sets: identities in
// cur but not prev arrived, identities in prev but not cur departed,
// and identities in both whose fingerprint differs changed.
func DiffEpoch(prev, cur map[string]string) (arrived, departed, changed int) {
	for id, fp := range cur {
		pfp, ok := prev[id]
		switch {
		case !ok:
			arrived++
		case pfp != fp:
			changed++
		}
	}
	for id := range prev {
		if _, ok := cur[id]; !ok {
			departed++
		}
	}
	return arrived, departed, changed
}

// EpochSeries slices entries into `epochs` fixed intervals from start
// and produces the full churn series. Window i covers
// [start+i*interval, start+(i+1)*interval). The first window diffs
// against an empty set, so a crawl's opening burst shows up as
// arrivals; an empty first window yields an all-zero point, not an
// error.
func EpochSeries(entries []*mlog.Entry, start time.Time, interval time.Duration, epochs int) []EpochPoint {
	if epochs <= 0 || interval <= 0 {
		return nil
	}
	points := make([]EpochPoint, 0, epochs)
	prev := map[string]string{}
	for i := 0; i < epochs; i++ {
		since := start.Add(time.Duration(i) * interval)
		until := start.Add(time.Duration(i+1) * interval)
		cur := LiveFingerprints(entries, since, until)
		arrived, departed, changed := DiffEpoch(prev, cur)
		points = append(points, EpochPoint{
			Epoch:    i,
			Start:    since,
			End:      until,
			Alive:    len(cur),
			Arrived:  arrived,
			Departed: departed,
			Changed:  changed,
		})
		prev = cur
	}
	return points
}
