package analysis

import (
	"testing"
	"time"

	"repro/internal/nodefinder/mlog"
)

func TestChurnSessions(t *testing.T) {
	js := []string{"eth/63"}
	var entries []*mlog.Entry
	// Node A: two sessions — 2h of half-hourly probes, a 6h gap,
	// then 1h more.
	for m := 0; m <= 120; m += 30 {
		entries = append(entries, helloEntry("a", "1.0.0.1", "Geth/v1", js, t0.Add(time.Duration(m)*time.Minute)))
	}
	for m := 0; m <= 60; m += 30 {
		entries = append(entries, helloEntry("a", "1.0.0.1", "Geth/v1", js, t0.Add(8*time.Hour+time.Duration(m)*time.Minute)))
	}
	// Node B: one-shot.
	entries = append(entries, helloEntry("b", "1.0.0.2", "Geth/v1", js, t0))
	// Node C: failed dials only — not part of churn population.
	failed := entry("c", "1.0.0.3", t0)
	failed.Err = "refused"
	entries = append(entries, failed)

	res := Churn(Aggregate(entries))
	if res.SessionCDF.Len() != 3 { // a's two sessions + b's zero-length
		t.Fatalf("sessions: %d", res.SessionCDF.Len())
	}
	if res.InterSessionCDF.Len() != 1 {
		t.Fatalf("gaps: %d", res.InterSessionCDF.Len())
	}
	gap := res.InterSessionCDF.P(0.5)
	if gap < 5*60 || gap > 7*60 {
		t.Errorf("gap %f minutes, want ≈360", gap)
	}
	if res.OneShotFraction != 0.5 { // b of {a, b}
		t.Errorf("one-shot %f", res.OneShotFraction)
	}
	if res.ReturningFraction != 0.5 { // a of {a, b}
		t.Errorf("returning %f", res.ReturningFraction)
	}
}

func TestChurnEmpty(t *testing.T) {
	res := Churn(map[string]*NodeObservation{})
	if res.OneShotFraction != 0 || res.SessionCDF.Len() != 0 {
		t.Fatal("non-zero churn from empty input")
	}
}

// TestChurnFlapWithinGap: probes separated by less than SessionGap
// belong to one session even when the node briefly refused a dial in
// between — the census daemon's per-interval flapping must not
// fragment the session statistics.
func TestChurnFlapWithinGap(t *testing.T) {
	js := []string{"eth/63"}
	var entries []*mlog.Entry
	entries = append(entries, helloEntry("f", "1.0.0.9", "Geth/v1", js, t0))
	// A failed dial mid-session is not a responsive observation and
	// must not split or extend anything.
	failed := entry("f", "1.0.0.9", t0.Add(20*time.Minute))
	failed.Err = "connection refused"
	entries = append(entries, failed)
	entries = append(entries, helloEntry("f", "1.0.0.9", "Geth/v1", js, t0.Add(40*time.Minute)))

	res := Churn(Aggregate(entries))
	if res.SessionCDF.Len() != 1 {
		t.Fatalf("sessions: %d, want 1 (flap within SessionGap)", res.SessionCDF.Len())
	}
	if got := res.SessionCDF.P(0.5); got != 40 {
		t.Errorf("session length %f minutes, want 40", got)
	}
	if res.ReturningFraction != 0 {
		t.Errorf("returning %f, want 0", res.ReturningFraction)
	}
}

// TestChurnIdentityReuseNewVersion: one identity observed under two
// client versions is still one identity in the churn population; the
// version change alone does not open a new session.
func TestChurnIdentityReuseNewVersion(t *testing.T) {
	js := []string{"eth/63"}
	entries := []*mlog.Entry{
		helloEntry("u", "1.0.0.1", "Geth/v1.8.10-stable", js, t0),
		helloEntry("u", "1.0.0.1", "Geth/v1.8.11-stable", js, t0.Add(30*time.Minute)),
	}
	res := Churn(Aggregate(entries))
	if res.SessionCDF.Len() != 1 || res.OneShotFraction != 0 {
		t.Fatalf("sessions=%d oneShot=%f, want one continuous session",
			res.SessionCDF.Len(), res.OneShotFraction)
	}
}
