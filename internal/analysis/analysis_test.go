package analysis

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/nodefinder/mlog"
)

var t0 = time.Date(2018, 4, 18, 0, 0, 0, 0, time.UTC)

func entry(id, ip string, at time.Time) *mlog.Entry {
	return &mlog.Entry{Time: at, NodeID: id, IP: ip, ConnType: mlog.ConnDynamicDial}
}

func helloEntry(id, ip, client string, caps []string, at time.Time) *mlog.Entry {
	e := entry(id, ip, at)
	e.Hello = &mlog.HelloInfo{Version: 5, ClientName: client, Caps: caps, ListenPort: 30303}
	return e
}

func statusEntry(id, ip, client string, networkID uint64, genesis string, best uint64, dao string, at time.Time) *mlog.Entry {
	e := helloEntry(id, ip, client, []string{"eth/63"}, at)
	e.Status = &mlog.StatusInfo{ProtocolVersion: 63, NetworkID: networkID, GenesisHash: genesis, BestBlock: best}
	e.DAOFork = dao
	e.LatencyUS = 50000
	return e
}

func TestAggregate(t *testing.T) {
	entries := []*mlog.Entry{
		entry("n1", "1.1.1.1", t0.Add(time.Hour)),
		helloEntry("n1", "1.1.1.1", "Geth/v1.8.11-stable/linux", []string{"eth/63"}, t0),
		statusEntry("n2", "2.2.2.2", "Parity/v1.10.6-stable/x86", 1, "aa", 100, "supported", t0),
	}
	nodes := Aggregate(entries)
	if len(nodes) != 2 {
		t.Fatalf("%d nodes", len(nodes))
	}
	n1 := nodes["n1"]
	if n1.FirstSeen != t0 || n1.LastSeen != t0.Add(time.Hour) {
		t.Error("time bounds wrong")
	}
	if n1.ClientName != "Geth/v1.8.11-stable/linux" {
		t.Error("client not extracted")
	}
	if n1.Active() != time.Hour {
		t.Error("active wrong")
	}
	if !nodes["n2"].HasStatus || nodes["n2"].DAOFork != "supported" {
		t.Error("status not extracted")
	}
	// Entries sorted by time.
	if !n1.Entries[0].Time.Equal(t0) {
		t.Error("entries unsorted")
	}
}

func TestSanitizeFiveSteps(t *testing.T) {
	entries := []*mlog.Entry{}
	js := []string{"eth/63"}
	// Abusive IP: 10 short-lived identities minted every 10 minutes,
	// each responsive for 5 minutes.
	for i := 0; i < 10; i++ {
		born := t0.Add(time.Duration(i) * 10 * time.Minute)
		id := fmt.Sprintf("spam%d", i)
		entries = append(entries, helloEntry(id, "9.9.9.9", "ethereumjs-devp2p/v1.0.0", js, born))
		entries = append(entries, helloEntry(id, "9.9.9.9", "ethereumjs-devp2p/v1.0.0", js, born.Add(5*time.Minute)))
		// Dead-address re-dials long after must NOT hide the node
		// from the filter.
		dead := entry(id, "9.9.9.9", born.Add(10*time.Hour))
		dead.Err = "connection refused"
		entries = append(entries, dead)
	}
	// Benign IP with 2 short-lived nodes (below step-3 threshold).
	entries = append(entries, helloEntry("b1", "8.8.8.8", "Geth/v1", js, t0))
	entries = append(entries, helloEntry("b2", "8.8.8.8", "Geth/v1", js, t0.Add(time.Minute)))
	// Benign long-lived node at a busy IP.
	entries = append(entries, helloEntry("long1", "9.9.9.9", "Geth/v1", js, t0))
	entries = append(entries, helloEntry("long1", "9.9.9.9", "Geth/v1", js, t0.Add(48*time.Hour)))
	// Slow generator: 5 short-lived nodes over 20 hours (1 per 5h).
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("slow%d", i)
		entries = append(entries, helloEntry(id, "7.7.7.7", "Geth/v1", js, t0.Add(time.Duration(i)*5*time.Hour)))
	}

	res := Sanitize(Aggregate(entries))
	if len(res.AbusiveIPs) != 1 {
		t.Fatalf("abusive IPs: %v", res.AbusiveIPs)
	}
	if len(res.AbusiveIPs["9.9.9.9"]) != 10 {
		t.Fatalf("flagged %d nodes at 9.9.9.9", len(res.AbusiveIPs["9.9.9.9"]))
	}
	if res.AbusiveNodes["long1"] {
		t.Error("long-lived node flagged")
	}
	if res.AbusiveNodes["b1"] || res.AbusiveNodes["slow0"] {
		t.Error("benign nodes flagged")
	}
	if len(res.Kept) != len(Aggregate(entries))-10 {
		t.Errorf("kept %d", len(res.Kept))
	}
}

func TestPrimaryService(t *testing.T) {
	tests := []struct {
		caps []string
		want string
	}{
		{[]string{"eth/62", "eth/63"}, "eth"},
		{[]string{"bzz/2", "eth/63"}, "eth"}, // eth wins
		{[]string{"bzz/2"}, "bzz"},
		{[]string{"les/2"}, "les"},
		{[]string{"pip/1"}, "pip"},
		{[]string{"weird/9"}, "other:weird"},
		{nil, "unknown"},
	}
	for _, test := range tests {
		if got := PrimaryService(test.caps); got != test.want {
			t.Errorf("%v -> %s, want %s", test.caps, got, test.want)
		}
	}
}

func TestServiceCensus(t *testing.T) {
	entries := []*mlog.Entry{
		helloEntry("e1", "1.1.1.1", "Geth/v1", []string{"eth/63"}, t0),
		helloEntry("e2", "1.1.1.2", "Geth/v1", []string{"eth/63"}, t0),
		helloEntry("s1", "1.1.1.3", "swarm/v0.3", []string{"bzz/2"}, t0),
	}
	rows := ServiceCensus(Aggregate(entries))
	if rows[0].Key != "eth" || rows[0].Count != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Fraction < 0.66 || rows[0].Fraction > 0.67 {
		t.Errorf("eth fraction %f", rows[0].Fraction)
	}
}

func TestNetworksCensus(t *testing.T) {
	mg := chain.MainnetGenesisHash.Hex()
	entries := []*mlog.Entry{
		statusEntry("m1", "1.0.0.1", "Geth/v1", 1, mg, 100, "supported", t0),
		statusEntry("m2", "1.0.0.2", "Geth/v1", 1, mg, 100, "supported", t0),
		statusEntry("c1", "1.0.0.3", "Geth/v1", 1, mg, 100, "opposed", t0),
		statusEntry("r1", "1.0.0.4", "Geth/v1", 3, "ropstenhash", 5, "", t0),
		statusEntry("x1", "1.0.0.5", "Geth/v1", 999, mg, 5, "", t0), // impostor
		statusEntry("y1", "1.0.0.6", "Geth/v1", 777, "yhash", 5, "", t0),
	}
	nc := Networks(Aggregate(entries))
	if nc.DistinctNetworks != 4 {
		t.Errorf("networks %d", nc.DistinctNetworks)
	}
	if nc.DistinctGenesis != 3 {
		t.Errorf("genesis %d", nc.DistinctGenesis)
	}
	if nc.MainnetGenesisImpostors != 1 {
		t.Errorf("impostors %d", nc.MainnetGenesisImpostors)
	}
	if nc.SinglePeerNetworks != 3 {
		t.Errorf("single-peer networks %d", nc.SinglePeerNetworks)
	}
	if nc.Networks[0].Key != "1 (Mainnet/Classic)" || nc.Networks[0].Count != 3 {
		t.Errorf("top network %+v", nc.Networks[0])
	}
}

func TestMainnetSubset(t *testing.T) {
	mg := chain.MainnetGenesisHash.Hex()
	entries := []*mlog.Entry{
		statusEntry("m1", "1.0.0.1", "Geth/v1", 1, mg, 100, "supported", t0),
		statusEntry("c1", "1.0.0.2", "Geth/v1", 1, mg, 100, "opposed", t0),        // Classic
		statusEntry("w1", "1.0.0.3", "Geth/v1", 1, "other", 100, "supported", t0), // wrong genesis
		statusEntry("r1", "1.0.0.4", "Geth/v1", 3, "ropsten", 5, "", t0),
		helloEntry("h1", "1.0.0.5", "swarm/v0.3", []string{"bzz/2"}, t0),
	}
	sub := MainnetSubset(Aggregate(entries))
	if len(sub) != 1 {
		t.Fatalf("subset %d", len(sub))
	}
	if _, ok := sub["m1"]; !ok {
		t.Fatal("wrong member")
	}
}

func TestClientAndVersionCensus(t *testing.T) {
	entries := []*mlog.Entry{
		helloEntry("g1", "1.0.0.1", "Geth/v1.8.11-stable/linux-amd64/go1.10", nil, t0),
		helloEntry("g2", "1.0.0.2", "Geth/v1.8.11-stable/linux-amd64/go1.10", nil, t0),
		helloEntry("g3", "1.0.0.3", "Geth/v1.7.3-stable/linux-amd64/go1.9", nil, t0),
		helloEntry("p1", "1.0.0.4", "Parity/v1.10.7-beta/x86_64-linux-gnu/rustc1.26.0", nil, t0),
		helloEntry("p2", "1.0.0.5", "Parity/v1.10.6-stable/x86_64-linux-gnu/rustc1.26.0", nil, t0),
	}
	nodes := Aggregate(entries)
	clients := ClientCensus(nodes)
	if clients[0].Key != "Geth" || clients[0].Count != 3 {
		t.Fatalf("clients %+v", clients)
	}
	geth := Versions(nodes, "Geth")
	if geth.Total != 3 || geth.StableCount != 3 {
		t.Errorf("geth versions %+v", geth)
	}
	parity := Versions(nodes, "Parity")
	if parity.Total != 2 || parity.StableCount != 1 || parity.StableShare != 0.5 {
		t.Errorf("parity versions %+v", parity)
	}
	if geth.Versions[0].Key != "v1.8.11-stable" || geth.Versions[0].Count != 2 {
		t.Errorf("top geth version %+v", geth.Versions[0])
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if c.Len() != 5 {
		t.Fatal("len")
	}
	if c.P(0) != 1 || c.P(0.99) != 5 {
		t.Errorf("quantiles: %f %f", c.P(0), c.P(0.99))
	}
	if got := c.FracBelow(3); got != 0.6 {
		t.Errorf("FracBelow(3) = %f", got)
	}
	if got := c.FracBelow(0.5); got != 0 {
		t.Errorf("FracBelow(0.5) = %f", got)
	}
	if got := c.FracBelow(99); got != 1 {
		t.Errorf("FracBelow(99) = %f", got)
	}
	empty := NewCDF(nil)
	if empty.P(0.5) != 0 || empty.FracBelow(1) != 0 {
		t.Error("empty CDF")
	}
}

func TestFreshness(t *testing.T) {
	mg := chain.MainnetGenesisHash.Hex()
	head := uint64(5_500_000)
	entries := []*mlog.Entry{
		statusEntry("fresh", "1.0.0.1", "Geth/v1", 1, mg, head, "supported", t0),
		statusEntry("nearfresh", "1.0.0.2", "Geth/v1", 1, mg, head-5, "supported", t0),
		statusEntry("stale", "1.0.0.3", "Geth/v1", 1, mg, head-100000, "supported", t0),
		statusEntry("byz", "1.0.0.4", "Geth/v1", 1, mg, chain.ByzantiumForkBlock+1, "supported", t0),
	}
	fr := Freshness(Aggregate(entries), func(time.Time) uint64 { return head })
	if fr.StuckAtByzantium != 1 {
		t.Errorf("stuck %d", fr.StuckAtByzantium)
	}
	if fr.StaleFraction != 0.5 {
		t.Errorf("stale %f", fr.StaleFraction)
	}
	if fr.LagCDF.Len() != 4 {
		t.Error("cdf size")
	}
}

func TestIntersect(t *testing.T) {
	en := []string{"a", "b", "c", "d"}
	nf := []string{"b", "c", "d", "e", "f", "g"}
	ix := Intersect(en, nf)
	if ix.Overlap != 3 || ix.ENOnly != 1 || ix.NFOnly != 3 {
		t.Fatalf("%+v", ix)
	}
	if ix.ENCoverage != 0.75 {
		t.Errorf("coverage %f", ix.ENCoverage)
	}
}

func TestGeography(t *testing.T) {
	db := geo.NewDB()
	entries := []*mlog.Entry{}
	for i := 0; i < 4000; i++ {
		ip := fmt.Sprintf("%d.%d.%d.%d", 11+i%200, i%251, (i*7)%251, 1+(i*13)%250)
		entries = append(entries, helloEntry(fmt.Sprintf("n%d", i), ip, "Geth/v1", nil, t0))
	}
	gc := Geography(Aggregate(entries), db)
	if len(gc.Countries) == 0 || len(gc.ASes) == 0 {
		t.Fatal("empty census")
	}
	if gc.Countries[0].Key != "US" {
		t.Errorf("top country %s", gc.Countries[0].Key)
	}
	if gc.Top8ASShare < 0.3 || gc.Top8ASShare > 0.6 {
		t.Errorf("top8 AS share %f", gc.Top8ASShare)
	}
	if !gc.Top8AllCloud {
		t.Error("top 8 not all cloud")
	}
}

func TestDialSeries(t *testing.T) {
	entries := []*mlog.Entry{}
	// Day 0: 3 dialed, 2 respond; day 1: 1 dialed, 0 respond.
	e1 := helloEntry("a", "1.0.0.1", "Geth/v1", nil, t0.Add(time.Hour))
	e2 := helloEntry("b", "1.0.0.2", "Geth/v1", nil, t0.Add(2*time.Hour))
	e3 := entry("c", "1.0.0.3", t0.Add(3*time.Hour))
	e3.Err = "timeout"
	e4 := entry("d", "1.0.0.4", t0.Add(25*time.Hour))
	e4.Err = "refused"
	entries = append(entries, e1, e2, e3, e4)
	dialed, resp := DialSeries(entries, t0, 2)
	if dialed.Days[0] != 3 || dialed.Days[1] != 1 {
		t.Errorf("dialed %v", dialed.Days)
	}
	if resp.Days[0] != 2 || resp.Days[1] != 0 {
		t.Errorf("responded %v", resp.Days)
	}
	if dialed.Mean() != 2 {
		t.Errorf("mean %f", dialed.Mean())
	}
}

func TestNodeDialSeries(t *testing.T) {
	var entries []*mlog.Entry
	for i := 0; i < 44; i++ {
		e := entry("boot", "1.0.0.1", t0.Add(time.Duration(i)*30*time.Minute))
		e.ConnType = mlog.ConnStaticDial
		entries = append(entries, e)
	}
	e := entry("boot", "1.0.0.1", t0.Add(time.Hour))
	entries = append(entries, e) // one dynamic dial
	dyn, stat := NodeDialSeries(entries, "boot", t0, 1)
	if stat.Days[0] != 44 || dyn.Days[0] != 1 {
		t.Errorf("static %v dynamic %v", stat.Days, dyn.Days)
	}
}

func TestVersionAdoption(t *testing.T) {
	entries := []*mlog.Entry{
		helloEntry("a", "1.0.0.1", "Geth/v1.8.10-stable/linux", nil, t0),
		helloEntry("a", "1.0.0.1", "Geth/v1.8.11-stable/linux", nil, t0.Add(25*time.Hour)),
		helloEntry("b", "1.0.0.2", "Geth/v1.8.10-stable/linux", nil, t0.Add(26*time.Hour)),
	}
	vs := VersionAdoption(entries, "Geth", t0, 2)
	if len(vs.Versions) != 2 {
		t.Fatalf("versions %v", vs.Versions)
	}
	if vs.Counts["v1.8.10-stable"][0] != 1 || vs.Counts["v1.8.10-stable"][1] != 1 {
		t.Errorf("v1.8.10 %v", vs.Counts["v1.8.10-stable"])
	}
	if vs.Counts["v1.8.11-stable"][1] != 1 {
		t.Errorf("v1.8.11 %v", vs.Counts["v1.8.11-stable"])
	}
}

func TestOlderThanShare(t *testing.T) {
	releases := []string{"v1.8.10-stable", "v1.8.11-stable", "v1.8.12-stable"}
	entries := []*mlog.Entry{
		helloEntry("a", "1.0.0.1", "Geth/v1.8.10-stable/linux", nil, t0),
		helloEntry("b", "1.0.0.2", "Geth/v1.8.12-stable/linux", nil, t0),
		helloEntry("c", "1.0.0.3", "Geth/v1.6.0-stable/linux", nil, t0), // unknown/ancient
		helloEntry("d", "1.0.0.4", "Geth/v1.8.11-stable/linux", nil, t0),
	}
	share := OlderThanShare(entries, "Geth", releases, "v1.8.11-stable", t0)
	if share != 0.5 {
		t.Errorf("share %f", share)
	}
}

func TestDisconnectTable(t *testing.T) {
	rows := DisconnectTable(map[uint64]uint64{4: 90, 3: 5, 16: 3, 0: 2})
	if rows[0].Key != "Too many peers" || rows[0].Fraction != 0.9 {
		t.Fatalf("%+v", rows[0])
	}
}

func TestNetworkSizeTable(t *testing.T) {
	rows := NetworkSizeTable(15454, 4717)
	if rows[0].Size != 15454 || rows[1].Size != 4717 {
		t.Fatal("measured rows wrong")
	}
	if rows[4].Size != PaperGnutellaSNAP {
		t.Fatal("constants wrong")
	}
}

func TestUniqueInWindow(t *testing.T) {
	entries := []*mlog.Entry{
		entry("a", "1.0.0.1", t0),
		entry("b", "1.0.0.2", t0.Add(30*time.Hour)),
	}
	nodes := Aggregate(entries)
	if got := UniqueInWindow(nodes, t0, t0.Add(24*time.Hour)); got != 1 {
		t.Errorf("window count %d", got)
	}
	if got := UniqueInWindow(nodes, t0, t0.Add(48*time.Hour)); got != 2 {
		t.Errorf("wide window %d", got)
	}
}
