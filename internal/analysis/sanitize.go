// Package analysis implements the paper's data analyses over
// NodeFinder measurement logs: the §5.4 sanitization filter, the
// ecosystem censuses of §6 (services, networks, clients, versions),
// and the §7 network comparisons (size, geography, latency,
// freshness).
package analysis

import (
	"sort"
	"time"

	"repro/internal/nodefinder/mlog"
)

// NodeObservation aggregates everything the log saw about one node
// identity.
type NodeObservation struct {
	ID        string
	IP        string
	FirstSeen time.Time
	LastSeen  time.Time
	// FirstResponsive/LastResponsive bound the node's *responsive*
	// activity: entries where it actually answered (HELLO or
	// DISCONNECT). Failed re-dials to a dead address extend
	// LastSeen but not LastResponsive; the §5.4 liveness filter
	// works on the responsive span.
	FirstResponsive time.Time
	LastResponsive  time.Time
	Responsive      bool
	// Entries are this node's log records, in time order.
	Entries []*mlog.Entry

	// Convenience fields extracted from the most recent useful
	// entries.
	ClientName  string
	Caps        []string
	NetworkID   uint64
	GenesisHash string
	BestBlock   uint64
	// LastStatusTime is when BestBlock was reported; freshness must
	// be judged against the chain head at that moment.
	LastStatusTime time.Time
	HasStatus      bool
	DAOFork        string // "", "supported", "opposed", "unknown"
	LatencyUS      int64
}

// Active returns how long the identity was observed.
func (o *NodeObservation) Active() time.Duration { return o.LastSeen.Sub(o.FirstSeen) }

// ResponsiveSpan returns how long the identity actually answered.
func (o *NodeObservation) ResponsiveSpan() time.Duration {
	if !o.Responsive {
		return 0
	}
	return o.LastResponsive.Sub(o.FirstResponsive)
}

// Aggregate groups log entries into per-node observations.
func Aggregate(entries []*mlog.Entry) map[string]*NodeObservation {
	nodes := make(map[string]*NodeObservation)
	for _, e := range entries {
		if e.NodeID == "" {
			continue
		}
		o, ok := nodes[e.NodeID]
		if !ok {
			o = &NodeObservation{ID: e.NodeID, FirstSeen: e.Time, LastSeen: e.Time}
			nodes[e.NodeID] = o
		}
		if e.Time.Before(o.FirstSeen) {
			o.FirstSeen = e.Time
		}
		if e.Time.After(o.LastSeen) {
			o.LastSeen = e.Time
		}
		if e.Hello != nil || e.DisconnectReason != nil {
			if !o.Responsive || e.Time.Before(o.FirstResponsive) {
				o.FirstResponsive = e.Time
			}
			if !o.Responsive || e.Time.After(o.LastResponsive) {
				o.LastResponsive = e.Time
			}
			o.Responsive = true
		}
		o.Entries = append(o.Entries, e)
		if e.IP != "" {
			o.IP = e.IP
		}
		if e.Hello != nil {
			o.ClientName = e.Hello.ClientName
			o.Caps = e.Hello.Caps
		}
		if e.Status != nil && !e.Time.Before(o.LastStatusTime) {
			o.NetworkID = e.Status.NetworkID
			o.GenesisHash = e.Status.GenesisHash
			o.BestBlock = e.Status.BestBlock
			o.LastStatusTime = e.Time
			o.HasStatus = true
		}
		if e.DAOFork != "" {
			o.DAOFork = e.DAOFork
		}
		if e.LatencyUS > 0 {
			o.LatencyUS = e.LatencyUS
		}
	}
	for _, o := range nodes {
		sort.Slice(o.Entries, func(i, j int) bool { return o.Entries[i].Time.Before(o.Entries[j].Time) })
	}
	return nodes
}

// SanitizeResult reports the §5.4 filter outcome.
type SanitizeResult struct {
	// AbusiveIPs maps each flagged IP to the node IDs it minted.
	AbusiveIPs map[string][]string
	// AbusiveNodes is the set of removed node IDs.
	AbusiveNodes map[string]bool
	// Kept is the sanitized observation set.
	Kept map[string]*NodeObservation
}

// Sanitize applies the paper's exact five-step abusive-IP filter:
//
//  1. Choose nodes active for less than 30 minutes.
//  2. Group the chosen nodes by IP.
//  3. Exclude IPs that map to fewer than 3 nodes.
//  4. Calculate each IP's new-node generation rate.
//  5. Flag IPs that generate new nodes every 30 minutes or faster on
//     average.
//
// Nodes from flagged IPs are removed from the dataset.
func Sanitize(nodes map[string]*NodeObservation) *SanitizeResult {
	const shortLived = 30 * time.Minute

	// Steps 1-2. "Active" means responsive activity: a dead address
	// that keeps refusing re-dials is not active.
	byIP := map[string][]*NodeObservation{}
	for _, o := range nodes {
		if o.Responsive && o.ResponsiveSpan() < shortLived && o.IP != "" {
			byIP[o.IP] = append(byIP[o.IP], o)
		}
	}

	res := &SanitizeResult{
		AbusiveIPs:   map[string][]string{},
		AbusiveNodes: map[string]bool{},
		Kept:         map[string]*NodeObservation{},
	}
	for ip, group := range byIP {
		// Step 3.
		if len(group) < 3 {
			continue
		}
		// Step 4: generation rate = span of first-contact times /
		// (n-1) new IDs.
		first, last := group[0].FirstResponsive, group[0].FirstResponsive
		for _, o := range group {
			if o.FirstResponsive.Before(first) {
				first = o.FirstResponsive
			}
			if o.FirstResponsive.After(last) {
				last = o.FirstResponsive
			}
		}
		span := last.Sub(first)
		interval := span / time.Duration(len(group)-1)
		// Step 5.
		if interval <= shortLived {
			ids := make([]string, 0, len(group))
			for _, o := range group {
				ids = append(ids, o.ID)
				res.AbusiveNodes[o.ID] = true
			}
			sort.Strings(ids)
			res.AbusiveIPs[ip] = ids
		}
	}
	for id, o := range nodes {
		if !res.AbusiveNodes[id] {
			res.Kept[id] = o
		}
	}
	return res
}
