package nodefinder

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/enode"
	"repro/internal/metrics"
	"repro/internal/nodedb"
	"repro/internal/simclock"
)

func testScheduler(shards, queueCap, maxActive int, reg *metrics.Registry) *dialScheduler {
	if reg == nil {
		reg = metrics.New()
	}
	return newDialScheduler(shards, queueCap, maxActive,
		rand.New(rand.NewSource(1)), newFinderMetrics(reg, nodedb.New()), reg)
}

func nodeWithFirstByte(b byte, i int) *enode.Node {
	var id enode.ID
	id[0] = b
	id[1] = byte(i >> 8)
	id[2] = byte(i)
	id[31] = 0xAA
	return enode.New(id, net.IP{127, 0, 0, 1}, uint16(30000+i%1000), uint16(30000+i%1000))
}

// TestShardQueueBounded is the bounded-memory property: no shard's
// queue ever exceeds the cap no matter how many candidates discovery
// bursts in, and every rejected candidate is counted.
func TestShardQueueBounded(t *testing.T) {
	const (
		shards   = 4
		queueCap = 8
		burst    = 500
	)
	reg := metrics.New()
	s := testScheduler(shards, queueCap, 16, reg)

	admitted := 0
	for i := 0; i < burst; i++ {
		if s.enqueueLocked(nodeWithFirstByte(byte(i), i)) {
			admitted++
		}
		for j := range s.shards {
			if depth := len(s.shards[j].queue); depth > queueCap {
				t.Fatalf("shard %d depth %d exceeds cap %d", j, depth, queueCap)
			}
		}
	}
	if want := shards * queueCap; admitted != want {
		t.Fatalf("admitted %d candidates, want exactly %d (shards×cap)", admitted, want)
	}
	if got := reg.Snapshot().Counter("finder.queue_dropped"); got != uint64(burst-admitted) {
		t.Fatalf("queue_dropped %d, want %d", got, burst-admitted)
	}
	if got := s.queuedLocked(); got != admitted {
		t.Fatalf("queuedLocked %d, want %d", got, admitted)
	}

	// Unbounded mode (cap<=0) admits everything.
	u := testScheduler(1, 0, 16, nil)
	for i := 0; i < burst; i++ {
		if !u.enqueueLocked(nodeWithFirstByte(0, i)) {
			t.Fatal("unbounded queue rejected a candidate")
		}
	}
}

// TestFillRespectsBudget: fillLocked never exceeds the concurrency
// budget, marks launched nodes in-flight, and drains round-robin
// across shards rather than exhausting one first.
func TestFillRespectsBudget(t *testing.T) {
	s := testScheduler(4, 0, 6, nil)
	now := time.Unix(0, 0)
	for i := 0; i < 40; i++ {
		s.enqueueLocked(nodeWithFirstByte(byte(i%4), i))
	}

	launch := s.fillLocked(now)
	if len(launch) != 6 || s.active != 6 {
		t.Fatalf("launched %d active=%d, want budget 6", len(launch), s.active)
	}
	// Round-robin: the first budget's worth comes from distinct shards
	// in rotation, not one shard drained first.
	shardsSeen := map[byte]int{}
	for _, n := range launch {
		shardsSeen[n.ID[0]%4]++
	}
	if len(shardsSeen) != 4 {
		t.Fatalf("first fill drew from %d shards, want all 4: %v", len(shardsSeen), shardsSeen)
	}
	for _, n := range launch {
		if !s.dialing[n.ID] {
			t.Fatalf("launched node %x not marked dialing", n.ID[:4])
		}
	}
	// Nothing more launches until a slot frees.
	if extra := s.fillLocked(now); len(extra) != 0 {
		t.Fatalf("over-budget launch of %d", len(extra))
	}
	s.completeLocked(launch[0].ID, true, true, now)
	if refill := s.fillLocked(now); len(refill) != 1 {
		t.Fatalf("freed one slot, refilled %d", len(refill))
	}
}

// TestSchedulerAdmission pins the per-node gates in the original
// Finder's order: in-flight, redial suppression, backoff.
func TestSchedulerAdmission(t *testing.T) {
	s := testScheduler(1, 0, 16, nil)
	now := time.Unix(1000, 0)
	id := nodeWithFirstByte(1, 1).ID

	if !s.admissibleLocked(id, now) {
		t.Fatal("fresh node not admissible")
	}
	s.dialing[id] = true
	if s.admissibleLocked(id, now) {
		t.Fatal("in-flight node admissible")
	}
	delete(s.dialing, id)

	// A successful dial suppresses redial for redialSuppression.
	s.completeLocked(id, true, true, now)
	s.active++ // completeLocked decremented past the test's synthetic zero
	if s.admissibleLocked(id, now.Add(redialSuppression-time.Second)) {
		t.Fatal("admissible inside the suppression window")
	}
	if !s.admissibleLocked(id, now.Add(redialSuppression+time.Second)) {
		t.Fatal("not admissible after the suppression window")
	}

	// A failure adds backoff on top: at minimum 0.8×redialSuppression,
	// so just past suppression the node is still gated.
	s.completeLocked(id, true, false, now)
	if s.admissibleLocked(id, now.Add(redialSuppression+time.Second)) {
		t.Fatal("failed node admissible before backoff expires")
	}
	if !s.admissibleLocked(id, now.Add(3*redialSuppression)) {
		t.Fatal("failed node still gated after backoff expired")
	}
}

// TestBackoffDelayTable pins the backoff policy to the pre-refactor
// Finder's exact shape: redialSuppression doubled per consecutive
// failure, capped at maxDialBackoff, with ±20% jitter.
func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		streak int
		base   time.Duration
	}{
		{1, redialSuppression},
		{2, 2 * redialSuppression},
		{3, 4 * redialSuppression},
		{4, 8 * redialSuppression},
		{5, 16 * redialSuppression},
		{6, maxDialBackoff},  // 160m caps to 120m
		{7, maxDialBackoff},  // stays capped
		{20, maxDialBackoff}, // deep streaks cannot overflow
	}
	s := testScheduler(1, 0, 16, nil)
	for _, tc := range cases {
		for trial := 0; trial < 200; trial++ {
			d := s.backoffDelayLocked(tc.streak)
			lo := time.Duration(0.8 * float64(tc.base))
			hi := time.Duration(1.2 * float64(tc.base))
			if d < lo || d > hi {
				t.Fatalf("streak %d: delay %v outside [%v, %v]", tc.streak, d, lo, hi)
			}
		}
	}
}

// TestBackoffPrune: state for long-expired nodes is dropped, live
// backoff state is kept — the spam-identity memory bound.
func TestBackoffPrune(t *testing.T) {
	s := testScheduler(1, 0, 16, nil)
	now := time.Unix(0, 0).Add(10 * maxDialBackoff)
	stale := nodeWithFirstByte(1, 1).ID
	live := nodeWithFirstByte(2, 2).ID
	s.failStreak[stale], s.backoffUntil[stale] = 3, now.Add(-maxDialBackoff-time.Minute)
	s.failStreak[live], s.backoffUntil[live] = 3, now.Add(-time.Minute)

	s.pruneLocked(now)
	if _, ok := s.backoffUntil[stale]; ok {
		t.Fatal("stale backoff state survived prune")
	}
	if _, ok := s.backoffUntil[live]; !ok {
		t.Fatal("live backoff state pruned")
	}
}

// TestShardedFinderDeterministic: the full Finder over the sharded
// pipeline (multiple shards AND multiple lookup workers) is still a
// pure function of its seed under the simulated clock.
func TestShardedFinderDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		clk := simclock.NewSimulated(t0)
		w := newFakeWorld(clk, 200)
		f, err := New(Config{
			Clock:         clk,
			Discovery:     w,
			Dialer:        w,
			Seed:          7,
			LookupWorkers: 3,
			DialShards:    4,
			ShardQueueCap: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		clk.Advance(2 * time.Hour)
		f.Stop()
		st := f.Stats()
		return st.DynamicDials, st.SuccessfulConns
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("sharded crawl not deterministic: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
	if d1 == 0 || s1 == 0 {
		t.Fatalf("sharded crawl did nothing: dials=%d successes=%d", d1, s1)
	}
}
