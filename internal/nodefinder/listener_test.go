package nodefinder

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlpx"
	"repro/internal/simclock"
	"repro/internal/testutil/leakcheck"
)

func listenerFixture(t *testing.T) (*Listener, *Finder, *mlog.Collector, *chain.Chain) {
	t.Helper()
	c := chain.New(chain.Config{NetworkID: 1, GenesisSeed: "listener-main", DAOFork: true, Length: 8})
	key, err := secp256k1.GenerateKey(rand.New(rand.NewSource(500)))
	if err != nil {
		t.Fatal(err)
	}
	col := mlog.NewCollector()
	clock := simclock.NewSimulated(t0)
	w := newFakeWorld(clock, 0)
	f := newTestFinder(t, clock, w, col)

	hello := devp2p.Hello{
		Version: devp2p.Version,
		Name:    "NodeFinder/test",
		Caps:    []devp2p.Cap{{Name: "eth", Version: 62}, {Name: "eth", Version: 63}},
	}
	status := eth.Status{ProtocolVersion: uint32(eth.Version63), NetworkID: 1,
		TD: c.TD(), BestHash: c.GenesisHash(), GenesisHash: c.GenesisHash()}
	l, err := ListenIncoming("", key, hello, status, f)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l, f, col, c
}

// inboundClient dials the listener and completes the handshake chain
// from the peer's side.
func inboundClient(t *testing.T, l *Listener, name string, caps []devp2p.Cap, c *chain.Chain, sendStatus bool) {
	t.Helper()
	key, err := secp256k1.GenerateKey(rand.New(rand.NewSource(501)))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := net.DialTimeout("tcp", l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	conn, err := rlpx.Initiate(fd, key, l.Hello.ID)
	if err != nil {
		t.Fatal(err)
	}
	hello := &devp2p.Hello{
		Version: devp2p.Version, Name: name, Caps: caps,
		ID: enode.PubkeyID(&key.Pub),
	}
	theirs, err := devp2p.ExchangeHello(conn, hello)
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	if hello.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}
	if !sendStatus {
		devp2p.SendDisconnect(conn, devp2p.DiscQuitting) //nolint:errcheck
		return
	}
	offset := devp2p.BaseProtocolLength
	st := &eth.Status{ProtocolVersion: uint32(eth.Version63), NetworkID: 1,
		TD: c.TD(), BestHash: c.HeadHash(), GenesisHash: c.GenesisHash()}
	if err := eth.SendStatus(conn, offset, st); err != nil {
		t.Fatal(err)
	}
	if _, err := eth.ReadStatus(conn, offset); err != nil {
		t.Fatalf("status: %v", err)
	}
	// Wait for the listener's polite disconnect.
	conn.ReadMsg() //nolint:errcheck
}

func waitIncoming(t *testing.T, f *Finder, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.Stats().IncomingConns >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("incoming count never reached %d (have %d)", want, f.Stats().IncomingConns)
}

func TestListenerRecordsEthPeer(t *testing.T) {
	leakcheck.Check(t)
	l, f, col, c := listenerFixture(t)
	inboundClient(t, l, "Geth/v1.8.10-stable/linux", []devp2p.Cap{{Name: "eth", Version: 63}}, c, true)
	waitIncoming(t, f, 1)

	entries := col.Entries()
	if len(entries) != 1 {
		t.Fatalf("%d entries", len(entries))
	}
	e := entries[0]
	if e.ConnType != mlog.ConnIncoming {
		t.Error("wrong conn type")
	}
	if e.Hello == nil || e.Hello.ClientName != "Geth/v1.8.10-stable/linux" {
		t.Fatalf("hello: %+v", e.Hello)
	}
	if e.Status == nil || e.Status.GenesisHash != c.GenesisHash().Hex() {
		t.Fatalf("status: %+v", e.Status)
	}
	if e.DurationUS <= 0 {
		t.Error("duration missing")
	}
}

func TestListenerRecordsNonEthPeer(t *testing.T) {
	leakcheck.Check(t)
	l, f, col, c := listenerFixture(t)
	inboundClient(t, l, "swarm/v0.3", []devp2p.Cap{{Name: "bzz", Version: 2}}, c, false)
	waitIncoming(t, f, 1)
	e := col.Entries()[0]
	if e.Hello == nil || e.Hello.ClientName != "swarm/v0.3" {
		t.Fatalf("hello: %+v", e.Hello)
	}
	if e.Status != nil {
		t.Error("phantom status for bzz-only peer")
	}
}

func TestListenerSurvivesGarbage(t *testing.T) {
	leakcheck.Check(t)
	l, f, _, c := listenerFixture(t)
	// Raw junk: handshake fails, nothing recorded, listener lives.
	fd, err := net.DialTimeout("tcp", l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fd.Write([]byte("definitely not an RLPx auth packet")) //nolint:errcheck
	fd.Close()
	time.Sleep(100 * time.Millisecond)

	// A well-formed session still works afterwards.
	inboundClient(t, l, "Geth/v1.8.11-stable/linux", []devp2p.Cap{{Name: "eth", Version: 63}}, c, true)
	waitIncoming(t, f, 1)
}

func TestListenerCloseIdempotent(t *testing.T) {
	leakcheck.Check(t)
	l, _, _, _ := listenerFixture(t)
	l.Close()
	l.Close()
}
