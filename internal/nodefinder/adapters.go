package nodefinder

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"

	"repro/internal/chain"
	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/discv4"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlpx"
	"repro/internal/simclock"
)

// RealDiscovery adapts a discv4.Transport to the Discovery interface.
type RealDiscovery struct {
	T *discv4.Transport
}

// Self implements Discovery.
func (d RealDiscovery) Self() enode.ID { return d.T.Self() }

// Lookup implements Discovery; the lookup runs on its own goroutine.
func (d RealDiscovery) Lookup(target enode.ID, done func([]*enode.Node)) {
	go func() {
		done(d.T.Lookup(target))
	}()
}

// RealDialer performs the paper's connection-establishment chain over
// real TCP: RLPx handshake, DEVp2p HELLO, eth STATUS, DAO-fork header
// check, then immediate disconnect.
type RealDialer struct {
	Key *secp256k1.PrivateKey
	// Hello is the HELLO NodeFinder announces. Its ID field is
	// filled automatically.
	Hello devp2p.Hello
	// Status is the eth STATUS NodeFinder announces (it mirrors
	// Mainnet identity so peers complete the exchange).
	Status eth.Status
	// DialTimeout bounds TCP connection establishment (the paper
	// keeps Geth's 15 s default).
	DialTimeout time.Duration
	// Budget bounds the whole post-connect establishment chain (RLPx
	// handshake through disconnect) with a single socket deadline, so
	// a peer that stalls mid-handshake or trickles bytes one at a
	// time ("slow loris") cannot hold a dial slot longer than this.
	// Zero applies DefaultDialBudget; negative disables the budget
	// and falls back to per-message deadlines only.
	Budget time.Duration
	// CheckDAO controls whether the fork check runs after a
	// compatible STATUS.
	CheckDAO bool
	// DialFunc overrides TCP connection establishment; the chaos
	// harness injects transport faults here. Nil uses
	// net.DialTimeout.
	DialFunc func(network, address string, timeout time.Duration) (net.Conn, error)
	// Metrics, when non-nil, receives per-outcome dial telemetry.
	Metrics *DialerMetrics
	// Clock supplies timestamps and durations; nil uses the system
	// clock. Simulation harnesses inject simclock.Simulated here so
	// dial timings land on the virtual timeline.
	Clock simclock.Clock
}

func (d *RealDialer) clock() simclock.Clock {
	if d.Clock != nil {
		return d.Clock
	}
	return simclock.System{}
}

// DefaultDialTimeout is Geth's defaultDialTimeout (§4).
const DefaultDialTimeout = 15 * time.Second

// DefaultDialBudget bounds one connection's establishment chain. The
// chain is at most three message exchanges (§4), each of which
// completes in a handful of RTTs against an honest peer; 30 s is
// generous for the slowest real link while still guaranteeing dial
// slots turn over under adversarial stalling.
const DefaultDialBudget = 30 * time.Second

// Dial implements Dialer.
func (d *RealDialer) Dial(n *enode.Node, kind mlog.ConnType, done func(*DialResult)) {
	go func() {
		res := d.dial(n, kind)
		d.Metrics.Observe(res)
		done(res)
	}()
}

func (d *RealDialer) dial(n *enode.Node, kind mlog.ConnType) *DialResult {
	clk := d.clock()
	res := &DialResult{Node: n, Kind: kind, Start: clk.Now()}
	timeout := d.DialTimeout
	if timeout == 0 {
		timeout = DefaultDialTimeout
	}

	dialFn := d.DialFunc
	if dialFn == nil {
		dialFn = net.DialTimeout
	}
	tcpStart := clk.Now()
	fd, err := dialFn("tcp", n.TCPAddr().String(), timeout)
	if err != nil {
		res.Err = fmt.Errorf("tcp dial: %w", err)
		res.Duration = clk.Since(res.Start)
		return res
	}
	res.RTT = clk.Since(tcpStart) // SYN round trip approximates sRTT
	defer fd.Close()

	// The per-dial budget is one absolute deadline covering every
	// read and write that follows; rlpx's own handshake timeout and
	// per-message deadlines are disabled so they cannot extend it.
	budget := d.Budget
	if budget == 0 {
		budget = DefaultDialBudget
	}
	handshakeTimeout := rlpx.HandshakeTimeout
	if budget > 0 {
		fd.SetDeadline(clk.Now().Add(budget)) //nolint:errcheck
		handshakeTimeout = 0
	}

	conn, err := rlpx.InitiateTimeout(fd, d.Key, n.ID, handshakeTimeout)
	if err != nil {
		res.Err = fmt.Errorf("rlpx: %w", err)
		res.Duration = clk.Since(res.Start)
		return res
	}
	if budget > 0 {
		conn.SetTimeouts(0, 0)
	}

	// DEVp2p HELLO exchange.
	hello := d.Hello
	hello.ID = enode.PubkeyID(&d.Key.Pub)
	theirs, err := devp2p.ExchangeHello(conn, &hello)
	if err != nil {
		var de devp2p.DisconnectError
		if errors.As(err, &de) {
			res.Disconnect = &de.Reason
		} else {
			res.Err = err
		}
		res.Duration = clk.Since(res.Start)
		return res
	}
	res.Hello = theirs
	// devp2p v5: both sides compress subsequent payloads with snappy.
	if hello.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}

	// Without a shared eth capability there is nothing more to learn.
	caps := devp2p.MatchCaps(hello.Caps, theirs.Caps, map[string]uint64{eth.ProtocolName: eth.ProtocolLength})
	var ethCap *devp2p.NegotiatedCap
	for i := range caps {
		if caps[i].Name == eth.ProtocolName {
			ethCap = &caps[i]
		}
	}
	if ethCap == nil {
		devp2p.SendDisconnect(conn, devp2p.DiscUselessPeer) //nolint:errcheck
		res.Duration = clk.Since(res.Start)
		return res
	}

	// eth STATUS exchange.
	status := d.Status
	status.ProtocolVersion = uint32(ethCap.Version)
	if status.TD == nil {
		status.TD = new(big.Int)
	}
	if err := eth.SendStatus(conn, ethCap.Offset, &status); err != nil {
		res.Err = err
		res.Duration = clk.Since(res.Start)
		return res
	}
	theirStatus, err := eth.ReadStatus(conn, ethCap.Offset)
	if err != nil {
		var de devp2p.DisconnectError
		if errors.As(err, &de) {
			res.Disconnect = &de.Reason
		} else {
			res.Err = err
		}
		res.Duration = clk.Since(res.Start)
		return res
	}
	res.Status = theirStatus

	// DAO-fork verification for compatible Mainnet peers.
	if d.CheckDAO && theirStatus.NetworkID == chain.MainnetNetworkID {
		support, err := eth.VerifyDAOFork(conn, ethCap.Offset)
		if err == nil {
			res.DAOFork = support
			res.DAOChecked = true
		}
	}

	// Done collecting: free the peer slot immediately (§4).
	devp2p.SendDisconnect(conn, devp2p.DiscRequested) //nolint:errcheck
	res.Duration = clk.Since(res.Start)
	return res
}
