package nodefinder

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/crypto/secp256k1"
	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/nodefinder/mlog"
	"repro/internal/rlpx"
	"repro/internal/simclock"
)

// Listener accepts inbound RLPx connections for a Finder. NodeFinder
// "accepts all incoming connections and never sends out Too many
// peers disconnects" (§3 observation 3 / §4): every inbound session
// is handshaken, its HELLO and (when offered) STATUS are recorded,
// and the connection is released.
type Listener struct {
	Key    *secp256k1.PrivateKey
	Hello  devp2p.Hello
	Status eth.Status
	Finder *Finder
	// Clock supplies timestamps; nil uses the system clock.
	Clock simclock.Clock

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// ListenIncoming starts accepting inbound connections on addr (empty
// means an ephemeral loopback port). f may be nil at creation and
// assigned to Finder before the address is announced; sessions that
// complete with no Finder attached are dropped.
func ListenIncoming(addr string, key *secp256k1.PrivateKey, hello devp2p.Hello, status eth.Status, f *Finder) (*Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("nodefinder: listen: %w", err)
	}
	l := &Listener{Key: key, Hello: hello, Status: status, Finder: f, ln: ln, closed: make(chan struct{})}
	l.Hello.ID = enode.PubkeyID(&key.Pub)
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listening address.
func (l *Listener) Addr() *net.TCPAddr { return l.ln.Addr().(*net.TCPAddr) }

// Close stops the listener and waits for in-flight sessions.
func (l *Listener) Close() {
	l.once.Do(func() {
		close(l.closed)
		l.ln.Close()
	})
	l.wg.Wait()
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		fd, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.handle(fd)
		}()
	}
}

// handle runs the inbound measurement session: RLPx accept, HELLO,
// optional STATUS, then release.
func (l *Listener) handle(fd net.Conn) {
	defer fd.Close()
	if l.Finder == nil {
		return
	}
	clk := l.Clock
	if clk == nil {
		clk = simclock.System{}
	}
	start := clk.Now()
	res := &DialResult{Kind: mlog.ConnIncoming, Start: start}

	conn, err := rlpx.Accept(fd, l.Key)
	if err != nil {
		// Without an identity there is nothing useful to record.
		return
	}
	remoteIP := net.IPv4zero
	var remotePort uint16
	if tcp, ok := fd.RemoteAddr().(*net.TCPAddr); ok {
		remoteIP = tcp.IP
		remotePort = uint16(tcp.Port)
	}
	res.Node = enode.New(conn.RemoteID(), remoteIP, remotePort, remotePort)

	theirs, err := devp2p.ExchangeHello(conn, &l.Hello)
	if err != nil {
		var de devp2p.DisconnectError
		if errors.As(err, &de) {
			res.Disconnect = &de.Reason
		} else {
			res.Err = err
		}
		res.Duration = clk.Since(start)
		l.Finder.HandleIncoming(res)
		return
	}
	res.Hello = theirs
	if l.Hello.Version >= devp2p.Version && theirs.Version >= devp2p.Version {
		conn.SetSnappy(true)
	}

	// If the peer shares eth, exchange STATUS to learn its chain.
	caps := devp2p.MatchCaps(l.Hello.Caps, theirs.Caps, map[string]uint64{eth.ProtocolName: eth.ProtocolLength})
	for i := range caps {
		if caps[i].Name != eth.ProtocolName {
			continue
		}
		st := l.Status
		st.ProtocolVersion = uint32(caps[i].Version)
		if err := eth.SendStatus(conn, caps[i].Offset, &st); err == nil {
			if theirStatus, err := eth.ReadStatus(conn, caps[i].Offset); err == nil {
				res.Status = theirStatus
			}
		}
		break
	}

	// Done collecting: free the slot (the peer may keep talking; we
	// politely disconnect instead).
	devp2p.SendDisconnect(conn, devp2p.DiscRequested) //nolint:errcheck
	res.Duration = clk.Since(start)
	res.RTT = conn.SmoothedRTT()
	l.Finder.HandleIncoming(res)
}
