package nodefinder_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/nodefinder"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simnet"
	"repro/internal/testutil/leakcheck"
)

// TestMetricsReconcileWithMlog runs a simulated crawl and checks the
// acceptance property of the metrics layer: the live telemetry and
// the measurement log describe the same events. Every finder.conns
// increment corresponds to exactly one mlog entry, per connection
// type, and the dialer-level outcome counters cover every outbound
// attempt.
func TestMetricsReconcileWithMlog(t *testing.T) {
	leakcheck.Check(t)
	const seed = 7
	reg := metrics.New()
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = 300
	w := simnet.NewWorld(cfg)

	col := mlog.NewCollector()
	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(reg)
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer,
		Log:       col,
		Metrics:   reg,
		Seed:      seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := w.StartIncoming(f, 30*time.Second, seed+4)
	f.Start()
	w.Clock.Advance(8 * time.Hour)
	f.Stop()
	gen.Stop()

	entries := col.Entries()
	if len(entries) == 0 {
		t.Fatal("simulated crawl produced no mlog entries")
	}
	byType := map[mlog.ConnType]uint64{}
	var okEntries uint64
	for _, e := range entries {
		byType[e.ConnType]++
		if e.Hello != nil {
			okEntries++
		}
	}

	snap := reg.Snapshot()
	if got, want := snap.CounterSum("finder.conns"), uint64(len(entries)); got != want {
		t.Errorf("finder.conns total = %d, want %d (mlog entries)", got, want)
	}
	for _, ct := range []mlog.ConnType{mlog.ConnDynamicDial, mlog.ConnStaticDial, mlog.ConnIncoming} {
		name := "finder.conns{" + string(ct) + "}"
		if got, want := snap.Counter(name), byType[ct]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got, want := snap.CounterSum("finder.conns_ok"), okEntries; got != want {
		t.Errorf("finder.conns_ok total = %d, want %d (entries with HELLO)", got, want)
	}
	if got, want := snap.CounterSum("finder.conns_failed"), uint64(len(entries))-okEntries; got != want {
		t.Errorf("finder.conns_failed total = %d, want %d", got, want)
	}

	// The simulated dialer observes every outbound attempt through
	// the shared DialerMetrics taxonomy; incoming connections bypass
	// the dialer, so the family sums to dials only.
	outbound := byType[mlog.ConnDynamicDial] + byType[mlog.ConnStaticDial]
	if got := snap.CounterSum("dialer.outcomes"); got != outbound {
		t.Errorf("dialer.outcomes total = %d, want %d (outbound dials)", got, outbound)
	}

	// Scheduling counters agree with the Finder's own stats.
	st := f.Stats()
	if got := snap.Counter("finder.lookups"); got != st.DiscoveryAttempts {
		t.Errorf("finder.lookups = %d, want %d", got, st.DiscoveryAttempts)
	}
	if got := snap.Gauges["finder.known_nodes"]; got != int64(st.KnownNodes) {
		t.Errorf("finder.known_nodes gauge = %d, want %d", got, st.KnownNodes)
	}
	if got := snap.Gauges["finder.static_nodes"]; got != int64(st.StaticListSize) {
		t.Errorf("finder.static_nodes gauge = %d, want %d", got, st.StaticListSize)
	}

	// Latency histograms observed every completed connection.
	if h := snap.Histograms["finder.conn_duration_us"]; h.Count != uint64(len(entries)) {
		t.Errorf("conn_duration_us count = %d, want %d", h.Count, len(entries))
	}

	// The snapshot must survive a JSON round trip (what the
	// -metrics-interval flag emits).
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded metrics.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON did not round-trip: %v", err)
	}
	if decoded.Counter("finder.conns{dynamic-dial}") != snap.Counter("finder.conns{dynamic-dial}") {
		t.Error("round-tripped snapshot lost counter values")
	}
}

// TestMetricsDisabled runs the same crawl with no registry: all
// instrument paths must no-op without panicking.
func TestMetricsDisabled(t *testing.T) {
	leakcheck.Check(t)
	const seed = 11
	cfg := simnet.DefaultConfig(seed)
	cfg.BaseNodes = 100
	w := simnet.NewWorld(cfg)
	dialer := w.NewDialer(seed + 2)
	dialer.Metrics = nodefinder.NewDialerMetrics(nil) // nil registry
	f, err := nodefinder.New(nodefinder.Config{
		Clock:     w.Clock,
		Discovery: w.NewDiscovery(seed + 1),
		Dialer:    dialer, // and nil Config.Metrics
		Seed:      seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	w.Clock.Advance(time.Hour)
	f.Stop()
	if f.Stats().DiscoveryAttempts == 0 {
		t.Error("crawl did not run")
	}
}
