// Package nodefinder implements the paper's primary contribution:
// NodeFinder, a measurement crawler for the DEVp2p ecosystem (§4).
//
// NodeFinder departs from a normal Ethereum client in four ways:
//
//  1. It ignores the maximum peer limit, at both the DEVp2p and
//     Ethereum layers, so discovery and incoming connections never
//     stop.
//  2. It disconnects from peers as soon as peer-connection
//     establishment is complete: DEVp2p HELLO, Ethereum STATUS, and
//     the DAO-fork block check — at most three message exchanges.
//  3. Successful dynamic dials are added to a StaticNodes list and
//     re-dialed every 30 minutes to track liveness and churn; stale
//     addresses (no successful TCP connection in 24 h) are removed.
//  4. Every connection's decoded messages and timing are logged.
//
// The crawler is written against two small interfaces — Discovery and
// Dialer — so the identical scheduling logic runs over the real
// discv4/RLPx stack (see RealDiscovery/RealDialer) or over the
// simulated world in internal/simnet, driven by a virtual clock.
package nodefinder

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/devp2p"
	"repro/internal/enode"
	"repro/internal/eth"
	"repro/internal/metrics"
	"repro/internal/nodedb"
	"repro/internal/nodefinder/mlog"
	"repro/internal/simclock"
)

// Scheduling constants from §4 (Geth 1.7.3 defaults NodeFinder keeps).
const (
	DefaultLookupInterval  = 4 * time.Second
	DefaultStaticInterval  = 30 * time.Minute
	DefaultMaxDynamicDials = 16
	DefaultStaleAfter      = 24 * time.Hour
	// redialSuppression avoids dynamic re-dialing a node too soon
	// after any dial attempt.
	redialSuppression = 5 * time.Minute
	// maxDialBackoff caps the exponential backoff applied to nodes
	// that fail establishment repeatedly. Gossip keeps returning dead
	// and hostile addresses for days (§5.2); doubling the suppression
	// window per consecutive failure, up to this cap, keeps the dial
	// budget pointed at responsive nodes without ever giving up on an
	// address that might come back.
	maxDialBackoff = 2 * time.Hour
)

// Discovery abstracts the RLPx node-discovery service.
//
// Lookup MUST NOT invoke done synchronously: real implementations run
// the lookup on a goroutine; simulated ones schedule done on the
// virtual clock. This keeps the Finder's state machine re-entrant.
type Discovery interface {
	// Self returns the local node ID.
	Self() enode.ID
	// Lookup starts an iterative lookup toward target; done is
	// invoked later (from any goroutine) with the nodes learned.
	Lookup(target enode.ID, done func(found []*enode.Node))
}

// Dialer performs the full connection-establishment chain against one
// node and reports the decoded results. Like Discovery.Lookup, Dial
// MUST NOT invoke done synchronously.
type Dialer interface {
	// Dial starts a connection attempt; done is invoked later (from
	// any goroutine) with the result.
	Dial(n *enode.Node, kind mlog.ConnType, done func(*DialResult))
}

// DialResult is everything one connection attempt yielded.
type DialResult struct {
	Node     *enode.Node
	Kind     mlog.ConnType
	Start    time.Time
	Duration time.Duration
	RTT      time.Duration

	// Err is the transport or handshake error, if any.
	Err error
	// Hello is the peer's DEVp2p handshake, when one was received.
	Hello *devp2p.Hello
	// Disconnect is set when the peer sent DISCONNECT.
	Disconnect *devp2p.DisconnectReason
	// Status is the peer's eth STATUS, when received.
	Status *eth.Status
	// BestBlock is the peer's head block number when the transport
	// could learn it (simulation aid for freshness analysis).
	BestBlock uint64
	// DAOFork is the fork-check outcome, when the check ran.
	DAOFork eth.DAOForkSupport
	// DAOChecked reports whether the fork check was performed.
	DAOChecked bool
}

// Config configures a Finder.
type Config struct {
	Clock     simclock.Clock
	Discovery Discovery
	Dialer    Dialer
	DB        *nodedb.DB
	Log       mlog.Sink
	// Metrics, when non-nil, receives live crawl-health telemetry
	// (dial outcomes by type, error taxonomy, table gauges, latency
	// histograms). Nil disables instrumentation at near-zero cost.
	Metrics *metrics.Registry

	LookupInterval  time.Duration
	StaticInterval  time.Duration
	MaxDynamicDials int
	StaleAfter      time.Duration
	Seed            int64

	// LookupWorkers is the number of concurrent discovery lookup
	// chains. Each worker paces itself on LookupInterval, so the
	// aggregate lookup rate scales with the worker count. Zero means
	// one worker — the original single-chain crawler.
	LookupWorkers int
	// DialShards is the number of bounded dial queues candidates are
	// sharded into by node ID. Zero means DefaultDialShards (one
	// shard, the original single-queue behavior).
	DialShards int
	// ShardQueueCap bounds each shard's queue; candidates beyond the
	// cap are dropped (and counted in finder.queue_dropped) rather
	// than growing memory without bound during a discovery burst.
	// Zero means DefaultShardQueueCap; negative disables the bound.
	ShardQueueCap int
}

// Stats are cumulative crawler counters, the raw material for
// Figures 5-8.
type Stats struct {
	DiscoveryAttempts uint64
	DynamicDials      uint64
	StaticDials       uint64
	IncomingConns     uint64
	SuccessfulConns   uint64 // HELLO exchanged
	FailedConns       uint64
	StaticListSize    int
	KnownNodes        int
}

// Finder is the crawler.
type Finder struct {
	cfg     Config
	clock   simclock.Clock
	rng     *rand.Rand
	metrics *finderMetrics

	mu          sync.Mutex
	running     bool
	stopped     bool
	staticTimer map[enode.ID]simclock.Timer
	stats       Stats

	// sched owns the sharded dial queues and all per-node admission
	// state (in-flight set, suppression windows, backoff).
	sched *dialScheduler

	// onIdle, if set, is called (locked) whenever the dynamic queue
	// drains; tests use it.
	onIdle func()
}

// New validates the config and creates a Finder.
func New(cfg Config) (*Finder, error) {
	if cfg.Discovery == nil || cfg.Dialer == nil {
		return nil, fmt.Errorf("nodefinder: config requires Discovery and Dialer")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.System{}
	}
	if cfg.DB == nil {
		cfg.DB = nodedb.New()
	}
	if cfg.Log == nil {
		cfg.Log = mlog.NewCollector()
	}
	if cfg.LookupInterval == 0 {
		cfg.LookupInterval = DefaultLookupInterval
	}
	if cfg.StaticInterval == 0 {
		cfg.StaticInterval = DefaultStaticInterval
	}
	if cfg.MaxDynamicDials == 0 {
		cfg.MaxDynamicDials = DefaultMaxDynamicDials
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	if cfg.LookupWorkers <= 0 {
		cfg.LookupWorkers = 1
	}
	if cfg.DialShards <= 0 {
		cfg.DialShards = DefaultDialShards
	}
	switch {
	case cfg.ShardQueueCap == 0:
		cfg.ShardQueueCap = DefaultShardQueueCap
	case cfg.ShardQueueCap < 0:
		cfg.ShardQueueCap = 0 // unbounded
	}
	f := &Finder{
		cfg:         cfg,
		clock:       cfg.Clock,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		metrics:     newFinderMetrics(cfg.Metrics, cfg.DB),
		staticTimer: make(map[enode.ID]simclock.Timer),
	}
	f.sched = newDialScheduler(cfg.DialShards, cfg.ShardQueueCap, cfg.MaxDynamicDials, f.rng, f.metrics, cfg.Metrics)
	return f, nil
}

// DB exposes the node database.
func (f *Finder) DB() *nodedb.DB { return f.cfg.DB }

// Stats returns a snapshot of the counters.
func (f *Finder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.StaticListSize = len(f.cfg.DB.StaticNodes())
	s.KnownNodes = f.cfg.DB.Len()
	return s
}

// Start begins the discovery and maintenance loops.
func (f *Finder) Start() {
	f.mu.Lock()
	if f.running || f.stopped {
		f.mu.Unlock()
		return
	}
	f.running = true
	f.mu.Unlock()
	// Each lookup worker is an independent self-perpetuating chain:
	// runLookup → Discovery.Lookup → onLookupDone → scheduleLookup.
	// One worker (the default) is the original crawler cadence.
	for i := 0; i < f.cfg.LookupWorkers; i++ {
		f.scheduleLookup(0)
	}
	f.scheduleStaleSweep()
}

// Stop halts scheduling. In-flight operations may still complete.
func (f *Finder) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = true
	f.running = false
	for id, t := range f.staticTimer {
		t.Stop()
		delete(f.staticTimer, id)
	}
}

// AddStatic seeds the static list directly (bootstrap nodes are added
// this way, per §4: "Bootstrap nodes are added to the StaticNodes
// list and periodically re-dialed like any other nodes").
func (f *Finder) AddStatic(n *enode.Node) {
	now := f.clock.Now()
	f.cfg.DB.RecordSuccess(n, now)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armStaticTimerLocked(n, f.cfg.StaticInterval)
}

// scheduleLookup arms the next discovery round after delay.
func (f *Finder) scheduleLookup(delay time.Duration) {
	f.clock.AfterFunc(delay, f.runLookup)
}

// runLookup performs one discovery round and schedules the next so
// that rounds start no closer than LookupInterval apart ("based on
// start time", §4).
func (f *Finder) runLookup() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stats.DiscoveryAttempts++
	target := enode.RandomID(f.rng) // f.rng needs f.mu: backoff jitter shares it
	f.mu.Unlock()
	f.metrics.lookups.Inc()

	start := f.clock.Now()
	f.cfg.Discovery.Lookup(target, func(found []*enode.Node) {
		f.onLookupDone(start, found)
	})
}

func (f *Finder) onLookupDone(start time.Time, found []*enode.Node) {
	f.metrics.lookupNodes.Add(uint64(len(found)))
	now := f.clock.Now()
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	for _, n := range found {
		if n.ID == f.cfg.Discovery.Self() {
			continue
		}
		if !f.sched.admissibleLocked(n.ID, now) {
			continue
		}
		// Static-list members are managed by the static scheduler;
		// excluding them here mirrors Geth's dial state, and is why
		// Figure 8 sees mostly static (not dynamic) dials to a
		// long-known node.
		if rec := f.cfg.DB.Get(n.ID); rec != nil && rec.Static {
			continue
		}
		f.sched.enqueueLocked(n)
	}
	launch := f.fillDynamicLocked()
	f.mu.Unlock()
	for _, n := range launch {
		f.dial(n, mlog.ConnDynamicDial)
	}
	for _, n := range found {
		f.cfg.DB.Ensure(n, now)
	}

	// Next round: LookupInterval after this round STARTED.
	next := start.Add(f.cfg.LookupInterval)
	delay := next.Sub(now)
	if delay < 0 {
		delay = 0
	}
	f.scheduleLookup(delay)
}

// fillDynamicLocked asks the scheduler to dequeue candidates up to
// the concurrency budget and returns the nodes the caller must launch
// after releasing f.mu.
func (f *Finder) fillDynamicLocked() []*enode.Node {
	launch := f.sched.fillLocked(f.clock.Now())
	f.stats.DynamicDials += uint64(len(launch))
	if f.sched.active == 0 && f.sched.queuedLocked() == 0 && f.onIdle != nil {
		f.onIdle()
	}
	return launch
}

// dial runs one outbound attempt.
func (f *Finder) dial(n *enode.Node, kind mlog.ConnType) {
	f.cfg.DB.RecordDial(n, f.clock.Now())
	f.cfg.Dialer.Dial(n, kind, func(res *DialResult) {
		f.onDialDone(n, kind, res)
	})
}

func (f *Finder) onDialDone(n *enode.Node, kind mlog.ConnType, res *DialResult) {
	now := f.clock.Now()
	f.record(res)

	success := res.Hello != nil
	if success {
		f.cfg.DB.RecordSuccess(n, now)
	}

	f.mu.Lock()
	f.sched.completeLocked(n.ID, kind == mlog.ConnDynamicDial, success, now)
	if success {
		f.stats.SuccessfulConns++
	} else {
		f.stats.FailedConns++
	}
	if f.stopped {
		f.mu.Unlock()
		return
	}
	// Any completed outbound attempt re-arms the node's static timer
	// ("NodeFinder re-schedules next static-dial upon completion of
	// any type of outbound connection attempt", §5.2) — provided the
	// node is on the static list.
	if rec := f.cfg.DB.Get(n.ID); rec != nil && rec.Static {
		f.armStaticTimerLocked(n, f.cfg.StaticInterval)
	}
	var launch []*enode.Node
	if kind == mlog.ConnDynamicDial {
		launch = f.fillDynamicLocked()
	}
	f.mu.Unlock()
	for _, next := range launch {
		f.dial(next, mlog.ConnDynamicDial)
	}
}

// armStaticTimerLocked (re)schedules a static re-dial. Caller holds
// f.mu.
func (f *Finder) armStaticTimerLocked(n *enode.Node, delay time.Duration) {
	if t, ok := f.staticTimer[n.ID]; ok {
		t.Stop()
	}
	n = enode.New(n.ID, n.IP, n.UDP, n.TCP)
	f.staticTimer[n.ID] = f.clock.AfterFunc(delay, func() {
		f.runStaticDial(n)
	})
}

func (f *Finder) runStaticDial(n *enode.Node) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	rec := f.cfg.DB.Get(n.ID)
	if rec == nil || !rec.Static {
		// Dropped from the static list (stale) since scheduling.
		delete(f.staticTimer, n.ID)
		f.mu.Unlock()
		return
	}
	if f.sched.dialing[n.ID] {
		// Already being dialed; re-arm rather than double-dial.
		f.armStaticTimerLocked(n, f.cfg.StaticInterval)
		f.mu.Unlock()
		return
	}
	f.sched.beginStaticLocked(n.ID, f.clock.Now())
	f.stats.StaticDials++
	f.mu.Unlock()
	f.dial(n, mlog.ConnStaticDial)
}

// scheduleStaleSweep arms the periodic 24-hour staleness sweep.
func (f *Finder) scheduleStaleSweep() {
	f.clock.AfterFunc(10*time.Minute, func() {
		f.mu.Lock()
		stopped := f.stopped
		f.mu.Unlock()
		if stopped {
			return
		}
		expired := f.cfg.DB.ExpireStale(f.clock.Now(), f.cfg.StaleAfter)
		f.metrics.staleExpired.Add(uint64(expired))
		f.pruneBackoff(f.clock.Now())
		f.scheduleStaleSweep()
	})
}

// pruneBackoff drops backoff state for nodes whose window has been
// over for a full maxDialBackoff — long-quiet addresses the crawler
// may never hear about again — so §5.4-style identity spam cannot
// grow the failure maps without bound.
func (f *Finder) pruneBackoff(now time.Time) {
	f.mu.Lock()
	f.sched.pruneLocked(now)
	f.mu.Unlock()
}

// HandleIncoming records an inbound connection result (NodeFinder
// accepts all incoming connections and never sends Too many peers).
func (f *Finder) HandleIncoming(res *DialResult) {
	f.mu.Lock()
	f.stats.IncomingConns++
	if res.Hello != nil {
		f.stats.SuccessfulConns++
	} else {
		f.stats.FailedConns++
	}
	f.mu.Unlock()
	now := f.clock.Now()
	if res.Node != nil {
		f.cfg.DB.Ensure(res.Node, now)
		if res.Hello != nil {
			// An inbound peer proved its TCP reachability of us, not
			// ours of it; record success only for bookkeeping of
			// liveness, not static membership.
			rec := f.cfg.DB.Ensure(res.Node, now)
			rec.LastSuccess = now
		}
	}
	f.record(res)
}

// record converts a DialResult to a log entry. The metrics observe
// call lives here so the finder.conns counters increment exactly
// once per mlog entry, keeping telemetry and log reconcilable.
func (f *Finder) record(res *DialResult) {
	f.metrics.observe(res)
	e := &mlog.Entry{
		Time:       res.Start,
		ConnType:   res.Kind,
		LatencyUS:  res.RTT.Microseconds(),
		DurationUS: res.Duration.Microseconds(),
	}
	if res.Node != nil {
		e.NodeID = res.Node.ID.String()
		e.IP = res.Node.IP.String()
		e.Port = res.Node.TCP
	}
	if res.Err != nil {
		e.Err = res.Err.Error()
	}
	if res.Hello != nil {
		caps := make([]string, len(res.Hello.Caps))
		for i, c := range res.Hello.Caps {
			caps[i] = c.String()
		}
		e.Hello = &mlog.HelloInfo{
			Version:    res.Hello.Version,
			ClientName: res.Hello.Name,
			Caps:       caps,
			ListenPort: res.Hello.ListenPort,
		}
	}
	if res.Disconnect != nil {
		r := uint64(*res.Disconnect)
		e.DisconnectReason = &r
	}
	if res.Status != nil {
		e.Status = &mlog.StatusInfo{
			ProtocolVersion: res.Status.ProtocolVersion,
			NetworkID:       res.Status.NetworkID,
			BestHash:        res.Status.BestHash.Hex(),
			GenesisHash:     res.Status.GenesisHash.Hex(),
			BestBlock:       res.BestBlock,
		}
		if res.Status.TD != nil {
			e.Status.TD = res.Status.TD.String()
		}
	}
	if res.DAOChecked {
		switch res.DAOFork {
		case eth.DAOForkSupported:
			e.DAOFork = "supported"
		case eth.DAOForkOpposed:
			e.DAOFork = "opposed"
		default:
			e.DAOFork = "unknown"
		}
	}
	f.cfg.Log.Record(e)
}
