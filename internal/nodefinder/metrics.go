package nodefinder

import (
	"errors"
	"strings"

	"repro/internal/devp2p"
	"repro/internal/eth"
	"repro/internal/metrics"
	"repro/internal/nodedb"
	"repro/internal/rlpx"
	"repro/internal/snappy"
)

// finderMetrics holds the Finder's resolved instruments. It is always
// constructed (instruments are nil when no registry is configured),
// so scheduling code instruments unconditionally.
type finderMetrics struct {
	lookups     *metrics.Counter
	lookupNodes *metrics.Counter

	// conns counts every recorded connection result by
	// mlog.ConnType — by construction exactly one increment per mlog
	// entry, which is what lets an operator cross-check live
	// telemetry against the measurement log.
	conns       *metrics.CounterVec
	connsOK     *metrics.CounterVec
	connsFailed *metrics.CounterVec
	// errors taxonomizes failed establishment attempts by stage
	// (tcp-refused, tcp-timeout, rlpx, too-many-peers, ...).
	errors *metrics.CounterVec

	dialDuration *metrics.Histogram
	rtt          *metrics.Histogram
	staleExpired *metrics.Counter
	backoffSkips *metrics.Counter
	// queueDropped counts discovered candidates rejected because their
	// dial shard was full (bounded-queue overload shedding).
	queueDropped *metrics.Counter
}

// newFinderMetrics resolves the Finder's instruments against r (nil
// r disables them all) and registers DB-backed gauges.
func newFinderMetrics(r *metrics.Registry, db *nodedb.DB) *finderMetrics {
	if r != nil {
		r.GaugeFunc("finder.known_nodes", func() int64 { return int64(db.Len()) })
		r.GaugeFunc("finder.static_nodes", func() int64 { return int64(len(db.StaticNodes())) })
	}
	return &finderMetrics{
		lookups:      r.Counter("finder.lookups"),
		lookupNodes:  r.Counter("finder.lookup_nodes"),
		conns:        r.CounterVec("finder.conns"),
		connsOK:      r.CounterVec("finder.conns_ok"),
		connsFailed:  r.CounterVec("finder.conns_failed"),
		errors:       r.CounterVec("finder.conn_errors"),
		dialDuration: r.Histogram("finder.conn_duration_us"),
		rtt:          r.Histogram("finder.rtt_us"),
		staleExpired: r.Counter("finder.stale_expired"),
		backoffSkips: r.Counter("finder.backoff_suppressed"),
		queueDropped: r.Counter("finder.queue_dropped"),
	}
}

// observe records one finished connection attempt. Called from
// Finder.record, i.e. exactly once per mlog entry.
func (m *finderMetrics) observe(res *DialResult) {
	kind := string(res.Kind)
	m.conns.Inc(kind)
	if res.Hello != nil {
		m.connsOK.Inc(kind)
	} else {
		m.connsFailed.Inc(kind)
	}
	// Taxonomize every attempt that ended in an error, including ones
	// where the peer completed HELLO and then turned hostile (snappy
	// bombs, giant frames) — those failures are exactly the ones an
	// operator needs to see.
	if res.Err != nil || res.Hello == nil {
		m.errors.Inc(OutcomeClass(res))
	}
	m.dialDuration.ObserveDuration(res.Duration)
	if res.RTT > 0 {
		m.rtt.ObserveDuration(res.RTT)
	}
}

// OutcomeClass buckets a connection result into the paper's failure
// taxonomy (§5.2: dead addresses, NAT timeouts, peer-limit
// rejections, non-eth services, productive handshakes), extended
// with the adversarial failure classes the hardened transport can
// now distinguish: forged frame MACs, oversized frames and messages,
// corrupt snappy payloads, stalled handshakes, and protocol-order
// violations. Both the real dialer and the simulated one classify
// through this single function, so their telemetry is comparable.
func OutcomeClass(res *DialResult) string {
	switch {
	case res.Err != nil:
		err := res.Err
		msg := err.Error()
		switch {
		case errors.Is(err, rlpx.ErrBadHeaderMAC) || errors.Is(err, rlpx.ErrBadFrameMAC):
			return "rlpx-bad-mac"
		case errors.Is(err, rlpx.ErrFrameTooBig):
			return "frame-oversize"
		case errors.Is(err, devp2p.ErrMsgTooBig) || errors.Is(err, eth.ErrMsgTooBig):
			return "msg-oversize"
		case errors.Is(err, snappy.ErrCorrupt) || errors.Is(err, snappy.ErrTooLarge):
			return "snappy-corrupt"
		case errors.Is(err, devp2p.ErrUnexpectedMessage) || errors.Is(err, eth.ErrNoStatus):
			return "protocol-violation"
		case errors.Is(err, devp2p.ErrNoCommonProtocol):
			return "no-common-caps"
		case errors.Is(err, eth.ErrNetworkMismatch) || errors.Is(err, eth.ErrGenesisMismatch) || errors.Is(err, eth.ErrProtocolMismatch):
			return "status-mismatch"
		case errors.Is(err, rlpx.ErrBadHandshake):
			return "rlpx-bad-handshake"
		case strings.Contains(msg, "rlpx") && strings.Contains(msg, "timeout"):
			return "handshake-timeout"
		case strings.Contains(msg, "timeout"):
			return "tcp-timeout"
		case strings.Contains(msg, "refused"):
			return "tcp-refused"
		case strings.Contains(msg, "reset"):
			return "tcp-reset"
		case strings.Contains(msg, "rlpx"):
			return "rlpx-error"
		case strings.Contains(msg, "decoding hello") || strings.Contains(msg, "rlp"):
			return "rlp-malformed"
		default:
			return "error-other"
		}
	case res.Disconnect != nil:
		if *res.Disconnect == devp2p.DiscTooManyPeers {
			return "too-many-peers"
		}
		return "disconnected"
	case res.Status != nil:
		return "eth-handshake"
	case res.Hello != nil:
		return "hello-no-eth"
	default:
		return "no-handshake"
	}
}

// DialerMetrics instruments connection-establishment outcomes at the
// dialer level, shared verbatim by RealDialer and simnet's SimDialer
// so simulated 82-day runs emit the same counters as a real crawl.
// A nil *DialerMetrics (or one built from a nil registry) no-ops.
type DialerMetrics struct {
	outcomes   *metrics.CounterVec
	daoChecked *metrics.Counter
}

// NewDialerMetrics resolves dialer instruments against r.
func NewDialerMetrics(r *metrics.Registry) *DialerMetrics {
	return &DialerMetrics{
		outcomes:   r.CounterVec("dialer.outcomes"),
		daoChecked: r.Counter("dialer.dao_checked"),
	}
}

// Observe records one finished dial attempt.
func (m *DialerMetrics) Observe(res *DialResult) {
	if m == nil {
		return
	}
	m.outcomes.Inc(OutcomeClass(res))
	if res.DAOChecked {
		m.daoChecked.Inc()
	}
}
